#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/ps/partition.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

// Property sweep over (rows, partitions) shapes, including non-divisible splits.
class RowPartitionParamTest
    : public ::testing::TestWithParam<std::pair<int64_t, int>> {};

TEST_P(RowPartitionParamTest, PiecesCoverAllRowsExactly) {
  auto [rows, parts] = GetParam();
  RowPartition partition(rows, parts);
  int64_t total = 0;
  for (int p = 0; p < parts; ++p) {
    EXPECT_GE(partition.RowsIn(p), rows / parts);
    EXPECT_LE(partition.RowsIn(p), rows / parts + 1);
    total += partition.RowsIn(p);
  }
  EXPECT_EQ(total, rows);
  EXPECT_EQ(partition.RowBegin(0), 0);
  EXPECT_EQ(partition.RowBegin(parts), rows);
}

TEST_P(RowPartitionParamTest, PartitionOfRowIsConsistentWithRanges) {
  auto [rows, parts] = GetParam();
  RowPartition partition(rows, parts);
  for (int64_t row = 0; row < rows; ++row) {
    int p = partition.PartitionOfRow(row);
    EXPECT_GE(row, partition.RowBegin(p));
    EXPECT_LT(row, partition.RowBegin(p + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RowPartitionParamTest,
                         ::testing::Values(std::make_pair(int64_t{10}, 1),
                                           std::make_pair(int64_t{10}, 3),
                                           std::make_pair(int64_t{10}, 10),
                                           std::make_pair(int64_t{97}, 8),
                                           std::make_pair(int64_t{128}, 128),
                                           std::make_pair(int64_t{1000}, 7)));

TEST(RowPartitionTest, RejectsMorePartitionsThanRows) {
  EXPECT_DEATH(RowPartition(4, 5), "more partitions than rows");
}

TEST(PartitionTest, SplitStitchRoundTrip) {
  Rng rng(31);
  Tensor value = RandomNormal(TensorShape({23, 5}), rng);
  RowPartition partition(23, 4);
  std::vector<Tensor> pieces = SplitRowsByPartition(value, partition);
  EXPECT_TRUE(AllClose(StitchPartitions(pieces, partition), value, 0.0f));
}

TEST(PartitionTest, SplitSlicesRoutesRowsAndReindexes) {
  // Variable of 10 rows split 2 ways: rows 0-4 -> piece 0, rows 5-9 -> piece 1.
  IndexedSlices slices({1, 7, 4, 5},
                       Tensor::FromVector({1, 1, 2, 2, 3, 3, 4, 4}, TensorShape({4, 2})),
                       TensorShape({10, 2}));
  RowPartition partition(10, 2);
  std::vector<IndexedSlices> pieces = SplitSlicesByPartition(slices, partition);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].nnz_rows(), 2);
  EXPECT_EQ(pieces[1].nnz_rows(), 2);
  // Piece-local indices.
  EXPECT_EQ(pieces[0].indices()[0], 1);  // global row 1
  EXPECT_EQ(pieces[0].indices()[1], 4);  // global row 4
  EXPECT_EQ(pieces[1].indices()[0], 2);  // global row 7 - 5
  EXPECT_EQ(pieces[1].indices()[1], 0);  // global row 5 - 5
}

TEST(PartitionTest, SplitSlicesPreservesDenseEquivalent) {
  Rng rng(32);
  std::vector<int64_t> indices;
  for (int i = 0; i < 40; ++i) {
    indices.push_back(static_cast<int64_t>(rng.NextBounded(17)));
  }
  IndexedSlices slices(indices, RandomNormal(TensorShape({40, 3}), rng),
                       TensorShape({17, 3}));
  RowPartition partition(17, 5);
  std::vector<IndexedSlices> pieces = SplitSlicesByPartition(slices, partition);
  // Reassemble: apply each piece to its row range of a zero tensor.
  Tensor reassembled = Tensor::Zeros(TensorShape({17, 3}));
  for (int p = 0; p < 5; ++p) {
    Tensor piece = pieces[static_cast<size_t>(p)].ToDense();
    auto src = piece.floats();
    auto dst = reassembled.mutable_floats();
    int64_t offset = partition.RowBegin(p) * 3;
    for (size_t i = 0; i < src.size(); ++i) {
      dst[static_cast<size_t>(offset) + i] += src[i];
    }
  }
  EXPECT_TRUE(AllClose(reassembled, slices.ToDense(), 1e-5f));
}

TEST(PartitionTest, EmptyPiecesAreRepresented) {
  IndexedSlices slices({0}, Tensor::FromVector({1, 2}, TensorShape({1, 2})),
                       TensorShape({9, 2}));
  RowPartition partition(9, 3);
  std::vector<IndexedSlices> pieces = SplitSlicesByPartition(slices, partition);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].nnz_rows(), 1);
  EXPECT_EQ(pieces[1].nnz_rows(), 0);
  EXPECT_EQ(pieces[2].nnz_rows(), 0);
}

}  // namespace
}  // namespace parallax
