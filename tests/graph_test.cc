#include <gtest/gtest.h>

#include <cmath>

#include "src/base/rng.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

// A graph exercising every op: two sparse-accessed embeddings, dense hidden weights.
struct TestNet {
  Graph graph;
  NodeId ids, prev, cand, labels;
  NodeId emb, emb2, w1, b1, out_emb;
  NodeId loss;

  explicit TestNet(uint64_t seed = 77) {
    Rng rng(seed);
    ids = graph.Placeholder("ids", DataType::kInt64);
    prev = graph.Placeholder("prev", DataType::kInt64);
    cand = graph.Placeholder("cand", DataType::kInt64);
    labels = graph.Placeholder("labels", DataType::kInt64);
    {
      PartitionerScope scope(graph);
      emb = graph.Variable("emb", RandomNormal(TensorShape({12, 4}), rng, 0.5f));
      emb2 = graph.Variable("emb2", RandomNormal(TensorShape({12, 4}), rng, 0.5f));
    }
    w1 = graph.Variable("w1", RandomNormal(TensorShape({8, 6}), rng, 0.4f));
    b1 = graph.Variable("b1", RandomNormal(TensorShape({6}), rng, 0.1f));
    out_emb = graph.Variable("out_emb", RandomNormal(TensorShape({12, 6}), rng, 0.5f));
    NodeId joined = graph.ConcatCols(graph.Gather(emb, ids), graph.Gather(emb2, prev));
    NodeId h = graph.Tanh(graph.BiasAdd(graph.MatMul(joined, w1), b1));
    NodeId logits = graph.GatherDotT(h, out_emb, cand);
    loss = graph.SoftmaxXentMean(logits, labels);
  }

};

FeedMap MakeFeeds(const TestNet& net) {
  FeedMap feeds;
  feeds[net.ids] = Tensor::FromIndices({0, 3, 3, 7}, TensorShape({4}));
  feeds[net.prev] = Tensor::FromIndices({1, 1, 5, 9}, TensorShape({4}));
  feeds[net.cand] = Tensor::FromIndices({2, 4, 6, 8, 10}, TensorShape({5}));
  feeds[net.labels] = Tensor::FromIndices({0, 1, 2, 3}, TensorShape({4}));
  return feeds;
}

TEST(GraphTest, GradientKindAnalysis) {
  TestNet net;
  auto kinds = net.graph.AnalyzeGradientKinds(net.loss);
  const auto& vars = net.graph.variables();
  for (size_t v = 0; v < vars.size(); ++v) {
    GradKind kind = kinds[static_cast<int>(v)];
    if (vars[v].name == "emb" || vars[v].name == "emb2" || vars[v].name == "out_emb") {
      EXPECT_EQ(kind, GradKind::kSparse) << vars[v].name;
    } else {
      EXPECT_EQ(kind, GradKind::kDense) << vars[v].name;
    }
  }
}

TEST(GraphTest, PartitionerScopeMarksVariables) {
  TestNet net;
  for (const VariableDef& def : net.graph.variables()) {
    if (def.name == "emb" || def.name == "emb2") {
      EXPECT_TRUE(def.partitioner_scope) << def.name;
      EXPECT_EQ(def.partitioner_id, 0);
    } else {
      EXPECT_FALSE(def.partitioner_scope) << def.name;
    }
  }
  EXPECT_EQ(net.graph.num_partitioner_scopes(), 1);
}

TEST(GraphTest, SequentialPartitionerScopesGetDistinctIds) {
  Graph graph;
  Rng rng(1);
  {
    PartitionerScope scope(graph);
    graph.Variable("a", RandomNormal(TensorShape({4, 2}), rng));
  }
  {
    PartitionerScope scope(graph);
    graph.Variable("b", RandomNormal(TensorShape({4, 2}), rng));
  }
  EXPECT_EQ(graph.variables()[0].partitioner_id, 0);
  EXPECT_EQ(graph.variables()[1].partitioner_id, 1);
}

TEST(GraphTest, VariableUsedDenselyIsDense) {
  Graph graph;
  Rng rng(2);
  NodeId x = graph.Placeholder("x", DataType::kFloat32);
  NodeId labels = graph.Placeholder("labels", DataType::kInt64);
  NodeId ids = graph.Placeholder("ids", DataType::kInt64);
  NodeId w = graph.Variable("w", RandomNormal(TensorShape({3, 3}), rng));
  // w is gathered AND matmul'ed: the combined gradient must be dense.
  NodeId g = graph.Gather(w, ids);
  NodeId m = graph.MatMul(x, w);
  NodeId loss = graph.SoftmaxXentMean(graph.ConcatCols(g, m), labels);
  auto kinds = graph.AnalyzeGradientKinds(loss);
  EXPECT_EQ(kinds[0], GradKind::kDense);
}

TEST(ExecutorTest, ForwardLossIsFinite) {
  TestNet net;
  Executor executor(&net.graph);
  VariableStore store = VariableStore::InitFrom(net.graph);
  Tensor loss = executor.RunForward(store, MakeFeeds(net), net.loss);
  EXPECT_TRUE(std::isfinite(loss.at(0)));
  EXPECT_GT(loss.at(0), 0.0f);
}

TEST(ExecutorTest, BackwardProducesGradsForAllVariables) {
  TestNet net;
  Executor executor(&net.graph);
  VariableStore store = VariableStore::InitFrom(net.graph);
  StepResult result = executor.RunStep(store, MakeFeeds(net), net.loss);
  EXPECT_EQ(result.grads.size(), net.graph.variables().size());
  for (size_t v = 0; v < net.graph.variables().size(); ++v) {
    const std::string& name = net.graph.variables()[v].name;
    const GradValue& g = result.grads.at(static_cast<int>(v));
    bool expect_sparse = (name == "emb" || name == "emb2" || name == "out_emb");
    EXPECT_EQ(g.is_sparse(), expect_sparse) << name;
  }
}

// The definitive autodiff check: every variable's gradient matches central finite
// differences of the loss. This covers the VJPs of every op in the graph at once.
TEST(ExecutorTest, GradientsMatchFiniteDifferences) {
  TestNet net;
  Executor executor(&net.graph);
  VariableStore store = VariableStore::InitFrom(net.graph);
  FeedMap feeds = MakeFeeds(net);
  StepResult result = executor.RunStep(store, feeds, net.loss);

  const float eps = 1e-2f;
  for (size_t v = 0; v < net.graph.variables().size(); ++v) {
    const VariableDef& def = net.graph.variables()[v];
    Tensor analytic = result.grads.at(static_cast<int>(v)).ToDense(def.shape);
    // Probe a handful of elements per variable (finite differences are expensive).
    Rng rng(100 + v);
    for (int probe = 0; probe < 6; ++probe) {
      int64_t index = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(def.shape.num_elements())));
      VariableStore perturbed = store.Clone();
      perturbed.GetMutable(static_cast<int>(v)).mutable_floats()[static_cast<size_t>(index)] +=
          eps;
      float up = executor.RunForward(perturbed, feeds, net.loss).at(0);
      perturbed.GetMutable(static_cast<int>(v)).mutable_floats()[static_cast<size_t>(index)] -=
          2 * eps;
      float down = executor.RunForward(perturbed, feeds, net.loss).at(0);
      float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic.at(index), numeric, 2e-2f)
          << def.name << " element " << index;
    }
  }
}

TEST(ExecutorTest, DuplicateGatherIndicesAccumulate) {
  Graph graph;
  Rng rng(5);
  NodeId ids = graph.Placeholder("ids", DataType::kInt64);
  NodeId labels = graph.Placeholder("labels", DataType::kInt64);
  NodeId emb = graph.Variable("emb", RandomNormal(TensorShape({6, 3}), rng));
  NodeId loss = graph.SoftmaxXentMean(graph.Gather(emb, ids), labels);
  Executor executor(&graph);
  VariableStore store = VariableStore::InitFrom(graph);
  FeedMap feeds;
  feeds[ids] = Tensor::FromIndices({2, 2, 2}, TensorShape({3}));
  feeds[labels] = Tensor::FromIndices({0, 1, 2}, TensorShape({3}));
  StepResult result = executor.RunStep(store, feeds, loss);
  const GradValue& g = result.grads.at(0);
  ASSERT_TRUE(g.is_sparse());
  EXPECT_EQ(g.sparse().nnz_rows(), 3);       // raw, uncoalesced (like TF)
  EXPECT_NEAR(g.sparse().AccessRatio(), 1.0 / 6.0, 1e-9);
}

TEST(ExecutorTest, SgdStepReducesLoss) {
  TestNet net;
  Executor executor(&net.graph);
  VariableStore store = VariableStore::InitFrom(net.graph);
  FeedMap feeds = MakeFeeds(net);
  float initial = executor.RunForward(store, feeds, net.loss).at(0);
  for (int iteration = 0; iteration < 20; ++iteration) {
    StepResult result = executor.RunStep(store, feeds, net.loss);
    for (const auto& [v, grad] : result.grads) {
      store.ApplySgd(v, grad, 0.5f);
    }
  }
  float trained = executor.RunForward(store, feeds, net.loss).at(0);
  EXPECT_LT(trained, initial * 0.5f);
}

TEST(VariableStoreTest, CloneIsDeep) {
  TestNet net;
  VariableStore a = VariableStore::InitFrom(net.graph);
  VariableStore b = a.Clone();
  b.GetMutable(0).mutable_floats()[0] += 100.0f;
  EXPECT_NE(a.Get(0).at(0), b.Get(0).at(0));
}

TEST(GraphTest, GatherRequiresVariableInput) {
  Graph graph;
  NodeId x = graph.Placeholder("x", DataType::kFloat32);
  NodeId ids = graph.Placeholder("ids", DataType::kInt64);
  EXPECT_DEATH(graph.Gather(x, ids), "must be a variable");
}

TEST(GraphTest, DebugStringListsOps) {
  TestNet net;
  std::string text = net.graph.DebugString();
  EXPECT_NE(text.find("Gather"), std::string::npos);
  EXPECT_NE(text.find("SoftmaxXentMean"), std::string::npos);
}

}  // namespace
}  // namespace parallax
