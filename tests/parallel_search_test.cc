// Parallel candidate evaluation inside the partition searches (docs/perf.md
// "Parallel partition search"):
//  - SearchPartitionPlan with a batch measure adopts a plan BIT-IDENTICAL to the
//    serial search at every worker count — plan, placements, seconds, uniform trail,
//    fit thetas, rounds, evaluations, warm_started — across the uniform-seeded,
//    warm-started (drifted-subset), and placement-searched paths,
//  - the uniform SearchPartitions overload is likewise bit-identical (samples trail,
//    best P, fit, prediction),
//  - memo consistency: the batched provider returns, slot for slot, exactly what the
//    serial measure returns for the same candidate (simulated times are
//    arena-independent),
//  - speculation stats are reported on parallel searches and all-zero on serial ones,
//  - ArenaPool checkout/return and a warmed leased-arena simulation iteration perform
//    zero heap allocations — the steady-state cost of one batched candidate,
//  - nested ParallelFor on one pool runs inline (no deadlock, right answer), which is
//    what lets PlanMany fan-out and intra-search batches share the service pool,
//  - DefaultWorkerCount applies the hardware_concurrency()==0 fallback and the cap,
//  - a PlannerService with workers answers bit-identically to a serial service and to
//    the private-arena oracle, and reports batched-evaluation stats.
//
// Allocation counting replaces global operator new/delete for this binary; the
// counters are only inspected inside explicit single-threaded windows.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <numeric>
#include <thread>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/core/cost_model.h"
#include "src/core/iteration_sim.h"
#include "src/core/parallel_measure.h"
#include "src/service/planner_service.h"
#include "src/sim/arena_pool.h"
#include "src/sim/cluster.h"

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

// GCC pairs the replaced operator new (malloc-backed) with the replaced operator
// delete (free-backed) across inlining and then warns about the very pairing these
// replacements establish; the combination is intentional.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace parallax {
namespace {

size_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

// ---- Word-LM-shaped hybrid workload (the per-variable bench's scenario) --------------
// One heavy low-alpha embedding and one small hot "wide" variable, both searchable,
// over dense AR ballast and a sparse AllGatherv softmax.

std::vector<PartitionSearchVariable> HybridTargets() {
  return {{.name = "embedding", .alpha = 0.02, .num_elements = 8'000'000},
          {.name = "wide", .alpha = 0.6, .num_elements = 500'000}};
}

IterationSimConfig HybridSimConfig() {
  IterationSimConfig config;
  config.ps_local_aggregation = true;
  config.ps_machine_level_pulls = true;
  config.gatherv_algorithm = GathervAlgorithm::kRing;
  return config;
}

std::vector<VariableSync> HybridPlanVariables(const PartitionPlan& plan) {
  std::vector<VariableSync> vars;
  VariableSync embedding;
  embedding.spec = {"embedding", 8'000'000, 512, true, 0.02};
  embedding.method = SyncMethod::kPs;
  embedding.partitions = plan.For("embedding");
  vars.push_back(embedding);
  for (int i = 0; i < 4; ++i) {
    VariableSync dense;
    dense.spec = {"dense" + std::to_string(i), 2'000'000, 1, false, 1.0};
    dense.method = SyncMethod::kArAllReduce;
    vars.push_back(dense);
  }
  VariableSync softmax;
  softmax.spec = {"softmax", 4'000'000, 512, true, 0.05};
  softmax.method = SyncMethod::kArAllGatherv;
  vars.push_back(softmax);
  VariableSync wide;
  wide.spec = {"wide", 500'000, 256, true, 0.6};
  wide.method = SyncMethod::kPs;
  wide.partitions = plan.For("wide");
  vars.push_back(wide);
  return vars;
}

PartitionSearchOptions HybridOptions() {
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 256;
  options.warmup_iterations = 2;
  options.measured_iterations = 2;
  return options;
}

double MeasureHybridPlan(const PartitionPlan& plan, SimulationArena* arena) {
  IterationSimulator sim(ClusterSpec::Paper(), HybridPlanVariables(plan), 4e-3, 4,
                         HybridSimConfig(), arena);
  return sim.MeasureIterationSeconds(2, 2);
}

// A ThreadPool + ArenaPool + the batch measure wired over them, the way the runner and
// the planner service wire theirs (src/core/parallel_measure.h).
struct ParallelHarness {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<ArenaPool> arenas;
  PlanBatchMeasure batch;
};

ParallelHarness MakeHybridHarness(int workers) {
  ParallelHarness h;
  h.pool = std::make_unique<ThreadPool>(workers);
  h.arenas = std::make_unique<ArenaPool>();
  ParallelMeasureSpec spec;
  spec.cluster = ClusterSpec::Paper();
  spec.apply_plan = [](const PartitionPlan& plan) { return HybridPlanVariables(plan); };
  spec.gpu_compute_seconds = 4e-3;
  spec.compute_chunks = 4;
  spec.sim_config = HybridSimConfig();
  spec.warmup_iterations = 2;
  spec.measured_iterations = 2;
  h.batch = MakeParallelPlanMeasure(std::move(spec),
                                    SearchConcurrency{h.pool.get(), 0}, h.arenas.get());
  return h;
}

// Bit-for-bit equality of two search results — every field the serial search fills,
// down to the sweep trail and the fitted thetas. batch stats are deliberately NOT
// compared: they are the one thing the parallel path is allowed to change.
void ExpectResultsBitIdentical(const PartitionPlanSearchResult& got,
                               const PartitionPlanSearchResult& want) {
  EXPECT_TRUE(got.plan == want.plan);
  EXPECT_EQ(got.plan.ToString(), want.plan.ToString());
  EXPECT_EQ(got.plan.placements(), want.plan.placements());
  EXPECT_EQ(got.seconds, want.seconds);
  EXPECT_EQ(got.uniform_seconds, want.uniform_seconds);
  EXPECT_EQ(got.unplaced_seconds, want.unplaced_seconds);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.evaluations, want.evaluations);
  EXPECT_EQ(got.warm_started, want.warm_started);
  EXPECT_EQ(got.uniform.best_partitions, want.uniform.best_partitions);
  EXPECT_EQ(got.uniform.samples, want.uniform.samples);
  EXPECT_EQ(got.uniform.predicted_seconds, want.uniform.predicted_seconds);
  EXPECT_EQ(got.uniform.fit.ok, want.uniform.fit.ok);
  EXPECT_EQ(got.uniform.fit.theta0, want.uniform.fit.theta0);
  EXPECT_EQ(got.uniform.fit.theta1, want.uniform.fit.theta1);
  EXPECT_EQ(got.uniform.fit.theta2, want.uniform.fit.theta2);
  EXPECT_EQ(got.uniform.fit.rmse, want.uniform.fit.rmse);
}

TEST(ParallelSearchTest, PerVariableBitIdenticalAtEveryWorkerCount) {
  const PartitionSearchOptions options = HybridOptions();
  SimulationArena arena;
  auto measure = [&](const PartitionPlan& plan) {
    return MeasureHybridPlan(plan, &arena);
  };
  const PartitionPlanSearchResult serial =
      SearchPartitionPlan(measure, HybridTargets(), options);
  ASSERT_FALSE(serial.plan.uniform());
  EXPECT_EQ(serial.batch.batches, 0);
  EXPECT_EQ(serial.batch.batched_evaluations, 0);
  EXPECT_EQ(serial.batch.speculative_waste, 0);

  for (int workers : {1, 2, 3, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ParallelHarness h = MakeHybridHarness(workers);
    SimulationArena serial_arena;  // the replay's own measure still needs one
    auto replay_measure = [&](const PartitionPlan& plan) {
      return MeasureHybridPlan(plan, &serial_arena);
    };
    PartitionSearchOptions batched_options = options;
    batched_options.concurrency = {h.pool.get(), 0};  // sizes the speculation waves
    PartitionPlanSearchResult parallel =
        SearchPartitionPlan(replay_measure, h.batch, HybridTargets(), batched_options);
    ExpectResultsBitIdentical(parallel, serial);
    if (workers >= 2) {
      // One lane buys no parallelism, so the provider is null below 2 workers; at 2+
      // the speculative batches must have run and been accounted.
      EXPECT_GT(parallel.batch.batches, 0);
      EXPECT_GT(parallel.batch.batched_evaluations, 0);
      EXPECT_GT(parallel.batch.max_batch_size, 0);
      EXPECT_GE(parallel.batch.speculative_waste, 0);
      EXPECT_LE(parallel.batch.speculative_waste, parallel.batch.batched_evaluations);
    } else {
      EXPECT_EQ(parallel.batch.batches, 0);
    }
  }
}

TEST(ParallelSearchTest, WarmStartDriftedSubsetBitIdentical) {
  const PartitionSearchOptions options = HybridOptions();
  SimulationArena arena;
  auto measure = [&](const PartitionPlan& plan) {
    return MeasureHybridPlan(plan, &arena);
  };
  const PartitionPlanSearchResult cold =
      SearchPartitionPlan(measure, HybridTargets(), options);

  // The adaptive runner's re-search: previous counts from the adopted plan, only the
  // embedding's alpha drifted, warm start on.
  std::vector<PartitionSearchVariable> warm_targets = HybridTargets();
  for (PartitionSearchVariable& target : warm_targets) {
    target.previous_partitions = cold.plan.For(target.name);
    target.drifted = target.name == "embedding";
  }
  PartitionSearchOptions warm_options = options;
  warm_options.warm_start = true;

  const PartitionPlanSearchResult serial =
      SearchPartitionPlan(measure, warm_targets, warm_options);
  ASSERT_TRUE(serial.warm_started);

  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ParallelHarness h = MakeHybridHarness(workers);
    SimulationArena replay_arena;
    auto replay_measure = [&](const PartitionPlan& plan) {
      return MeasureHybridPlan(plan, &replay_arena);
    };
    PartitionSearchOptions batched_options = warm_options;
    batched_options.concurrency = {h.pool.get(), 0};
    PartitionPlanSearchResult parallel =
        SearchPartitionPlan(replay_measure, h.batch, warm_targets, batched_options);
    ExpectResultsBitIdentical(parallel, serial);
  }
}

TEST(ParallelSearchTest, UniformSearchBitIdentical) {
  SimulationArena arena;
  auto measure_plan = [&](const PartitionPlan& plan) {
    return MeasureHybridPlan(plan, &arena);
  };
  auto measure = [&](int p) { return measure_plan(PartitionPlan::Uniform(p)); };
  const PartitionSearchOptions options = HybridOptions();
  const PartitionSearchResult serial = SearchPartitions(measure, options);

  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ParallelHarness h = MakeHybridHarness(workers);
    SimulationArena replay_arena;
    auto replay_plan = [&](const PartitionPlan& plan) {
      return MeasureHybridPlan(plan, &replay_arena);
    };
    auto replay = [&](int p) { return replay_plan(PartitionPlan::Uniform(p)); };
    PartitionSearchOptions batched_options = options;
    batched_options.concurrency = {h.pool.get(), 0};
    PartitionSearchResult parallel =
        SearchPartitions(replay, MakeUniformBatchMeasure(h.batch), batched_options);
    EXPECT_EQ(parallel.best_partitions, serial.best_partitions);
    EXPECT_EQ(parallel.samples, serial.samples);
    EXPECT_EQ(parallel.predicted_seconds, serial.predicted_seconds);
    EXPECT_EQ(parallel.fit.theta0, serial.fit.theta0);
    EXPECT_EQ(parallel.fit.theta1, serial.fit.theta1);
    EXPECT_EQ(parallel.fit.theta2, serial.fit.theta2);
    // Waves: every batch holds at most `workers` fresh rungs, every serial sample was
    // served from a wave, and waste is exactly the rungs the sweep never requested.
    EXPECT_GE(parallel.batch.batches, 1);
    EXPECT_LE(parallel.batch.max_batch_size, workers);
    EXPECT_GE(parallel.batch.batched_evaluations,
              static_cast<int>(serial.samples.size()));
    EXPECT_EQ(parallel.batch.speculative_waste,
              parallel.batch.batched_evaluations -
                  static_cast<int>(serial.samples.size()));
  }
}

// ---- Placement search on a racked topology (the 2-rack skewed-embedding demo) --------

ClusterSpec TwoRackSpec() {
  ClusterSpec spec;
  spec.num_machines = 4;
  spec.gpus_per_machine = 2;
  spec.cores_per_machine = 4;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 1e-6;
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 1e-6;
  spec.topology.num_racks = 2;
  spec.topology.spine_bandwidth = 1e9;
  spec.topology.spine_latency = 5e-6;
  return spec;
}

std::vector<PartitionSearchVariable> TwoRackTargets() {
  return {{.name = "emb", .alpha = 0.3, .num_elements = 4'000'000, .max_partitions = 3},
          {.name = "softmax", .alpha = 0.5, .num_elements = 600'000, .max_partitions = 2}};
}

IterationSimConfig TwoRackSimConfig() {
  IterationSimConfig config;
  config.ps_local_aggregation = true;
  config.ps_machine_level_pulls = true;
  return config;
}

// The searched variables as PS shards, counts row-capped and placement applied when
// its length matches — identical in the serial measure and the batch measure's
// apply_plan, as the determinism contract requires.
std::vector<VariableSync> TwoRackPlanVariables(const PartitionPlan& plan) {
  std::vector<VariableSync> variables;
  for (const PartitionSearchVariable& searched : TwoRackTargets()) {
    VariableSync sync;
    sync.spec = {searched.name, searched.num_elements, 64, true, searched.alpha};
    sync.method = SyncMethod::kPs;
    sync.partitions = RowCappedPartitions(plan.For(searched.name), searched.max_partitions);
    const std::vector<int>* placement = plan.PlacementFor(searched.name);
    if (placement != nullptr &&
        static_cast<int>(placement->size()) == sync.partitions) {
      sync.placement = *placement;
    }
    variables.push_back(std::move(sync));
  }
  return variables;
}

double MeasureTwoRackPlan(const PartitionPlan& plan, SimulationArena* arena) {
  IterationSimulator sim(TwoRackSpec(), TwoRackPlanVariables(plan), 2e-3, 4,
                         TwoRackSimConfig(), arena);
  return sim.MeasureIterationSeconds(3, 3);
}

PartitionSearchOptions TwoRackOptions() {
  PartitionSearchOptions options;
  options.initial_partitions = 4;
  options.max_partitions = 16;
  options.warmup_iterations = 3;
  options.measured_iterations = 3;
  options.placement.enabled = true;
  options.placement.num_machines = 4;
  options.placement.num_racks = 2;
  options.placement.nic_bandwidth = 1e9;
  options.placement.spine_bandwidth = 1e9;
  return options;
}

TEST(ParallelSearchTest, PlacementSearchBitIdenticalOnRackedTopology) {
  const PartitionSearchOptions options = TwoRackOptions();
  SimulationArena arena;
  auto measure = [&](const PartitionPlan& plan) {
    return MeasureTwoRackPlan(plan, &arena);
  };
  const PartitionPlanSearchResult serial =
      SearchPartitionPlan(measure, TwoRackTargets(), options);
  // The scenario is built so a placement is adopted — otherwise this test would not
  // exercise the swap-trial speculation at all.
  ASSERT_FALSE(serial.plan.placements().empty()) << serial.plan.ToString();
  ASSERT_LT(serial.seconds, serial.unplaced_seconds);

  for (int workers : {2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    auto pool = std::make_unique<ThreadPool>(workers);
    ArenaPool arenas;
    ParallelMeasureSpec spec;
    spec.cluster = TwoRackSpec();
    spec.apply_plan = [](const PartitionPlan& plan) { return TwoRackPlanVariables(plan); };
    spec.gpu_compute_seconds = 2e-3;
    spec.compute_chunks = 4;
    spec.sim_config = TwoRackSimConfig();
    spec.warmup_iterations = 3;
    spec.measured_iterations = 3;
    PlanBatchMeasure batch = MakeParallelPlanMeasure(
        std::move(spec), SearchConcurrency{pool.get(), 0}, &arenas);
    ASSERT_TRUE(batch);

    SimulationArena replay_arena;
    auto replay_measure = [&](const PartitionPlan& plan) {
      return MeasureTwoRackPlan(plan, &replay_arena);
    };
    PartitionSearchOptions batched_options = options;
    batched_options.concurrency = {pool.get(), 0};
    PartitionPlanSearchResult parallel =
        SearchPartitionPlan(replay_measure, batch, TwoRackTargets(), batched_options);
    ExpectResultsBitIdentical(parallel, serial);
    EXPECT_GT(parallel.batch.batches, 0);
  }
}

// ---- Memo consistency ----------------------------------------------------------------

TEST(ParallelSearchTest, BatchedProviderMatchesSerialMeasureSlotForSlot) {
  std::vector<PartitionPlan> candidates;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    candidates.push_back(PartitionPlan::Uniform(p));
  }
  for (int emb : {4, 16, 64}) {
    for (int wide : {1, 2, 8}) {
      PartitionPlan plan;
      plan.Set("embedding", emb);
      plan.Set("wide", wide);
      candidates.push_back(plan);
    }
  }
  // A duplicate: same-plan slots must get the same (still correct) answer.
  candidates.push_back(PartitionPlan::Uniform(8));

  ParallelHarness h = MakeHybridHarness(4);
  ASSERT_TRUE(h.batch);
  std::vector<double> batched = h.batch(candidates);
  ASSERT_EQ(batched.size(), candidates.size());

  SimulationArena arena;
  for (size_t i = 0; i < candidates.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i) + ": " + candidates[i].ToString());
    EXPECT_EQ(batched[i], MeasureHybridPlan(candidates[i], &arena));
  }
}

TEST(ParallelSearchTest, EffectiveWorkersHonorsPoolCapAndCandidates) {
  EXPECT_EQ(EffectiveSearchWorkers(SearchConcurrency{}, 16), 1);
  ThreadPool pool(4);
  EXPECT_EQ(EffectiveSearchWorkers({&pool, 0}, 16), 4);
  EXPECT_EQ(EffectiveSearchWorkers({&pool, 2}, 16), 2);
  EXPECT_EQ(EffectiveSearchWorkers({&pool, 0}, 3), 3);
  EXPECT_EQ(EffectiveSearchWorkers({&pool, 0}, 0), 1);
}

// ---- Steady-state allocations --------------------------------------------------------

TEST(ParallelSearchTest, WarmArenaCheckoutAndSimulationAreAllocationFree) {
  ArenaPool arenas;
  const ClusterSpec spec = ClusterSpec::Paper();
  Cluster cluster(spec);
  SimTime t = 0.0;
  {
    ArenaPool::Lease lease = arenas.Acquire();  // grows the pool: allocates
    IterationSimulator sim(spec, HybridPlanVariables(PartitionPlan::Uniform(16)),
                           4e-3, 4, HybridSimConfig(), lease.get());
    t = sim.SimulateIteration(cluster, t);
    t = sim.SimulateIteration(cluster, t);  // warm: task storage + schedule cache built

    const size_t before = AllocCount();
    t = sim.SimulateIteration(cluster, t);
    EXPECT_EQ(AllocCount() - before, 0u)
        << "warmed leased-arena simulation iteration allocated";
  }  // release pools the arena (and reserves the free-list slot)

  const size_t before = AllocCount();
  {
    ArenaPool::Lease lease = arenas.Acquire();  // pops the pooled arena
    EXPECT_NE(lease.get(), nullptr);
  }  // returns it to the reserved slot
  EXPECT_EQ(AllocCount() - before, 0u) << "warm arena checkout/return allocated";
  EXPECT_EQ(arenas.pooled(), 1u);
  EXPECT_EQ(arenas.total(), 1u);
}

// ---- ThreadPool seams ----------------------------------------------------------------

TEST(ThreadPoolTest, NestedParallelForOnSamePoolRunsInline) {
  ThreadPool pool(3);
  constexpr int kOuter = 4;
  constexpr int kInner = 8;
  std::vector<int> values(kOuter * kInner, 0);
  pool.ParallelFor(kOuter, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // The nested call must run inline on this lane instead of deadlocking on the
      // pool's submission lock — the seam PlanMany's fan-out + intra-search batches
      // rely on.
      pool.ParallelFor(kInner, 1, [&](int64_t ib, int64_t ie) {
        for (int64_t j = ib; j < ie; ++j) {
          values[i * kInner + j] = static_cast<int>(i * kInner + j);
        }
      });
    }
  });
  for (int i = 0; i < kOuter * kInner; ++i) {
    ASSERT_EQ(values[i], i);
  }
}

// Regression for the PlanMany/Plan coalescing deadlock: a ParallelFor body that
// blocks waiting on work another thread can only finish via its own ParallelFor on
// the same pool. Submission must not serialize behind a running batch — the second
// submitter has to drain its own batch even with pool lanes occupied/blocked.
TEST(ThreadPoolTest, BlockedBatchDoesNotGateConcurrentSubmitters) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool outer_running = false;  // guarded by mu
  bool release = false;        // guarded by mu
  std::thread blocked([&] {
    pool.ParallelFor(2, 1, [&](int64_t begin, int64_t) {
      if (begin == 0) {
        std::unique_lock<std::mutex> lock(mu);
        outer_running = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      }
    });
  });
  {
    // Make sure the blocked batch is published and occupying a lane before the
    // second submission — the old design held the submission lock across execution
    // and would deadlock from here on.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outer_running; });
  }
  std::vector<int> out(8, 0);
  pool.ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out[i] = static_cast<int>(i) + 1;
    }
  });
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], i + 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  blocked.join();
}

TEST(ThreadPoolTest, DefaultWorkerCountFallsBackAndClamps) {
  const int workers = DefaultWorkerCount();
  EXPECT_GE(workers, 1);  // hardware_concurrency()==0 must not produce 0 lanes
  EXPECT_LE(workers, 16);
  EXPECT_EQ(DefaultWorkerCount(1), 1);
  EXPECT_LE(DefaultWorkerCount(4), 4);
  EXPECT_GE(DefaultWorkerCount(4), 1);
}

// ---- PlannerService integration ------------------------------------------------------

ClusterSpec ServiceSpec() {
  ClusterSpec spec;
  spec.num_machines = 4;
  spec.gpus_per_machine = 2;
  spec.cores_per_machine = 4;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 1e-6;
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 1e-6;
  return spec;
}

PlannerQuery ServiceQuery(double embedding_alpha) {
  PlannerQuery query;
  VariableSync embedding;
  embedding.spec = {"embedding", 640'000, 64, true, embedding_alpha};
  embedding.method = SyncMethod::kPs;
  query.variables.push_back({embedding, /*partitioned=*/true, /*rows=*/10'000});
  VariableSync dense;
  dense.spec = {"dense", 500'000, 1, false, 1.0};
  dense.method = SyncMethod::kArAllReduce;
  query.variables.push_back({dense, /*partitioned=*/false, /*rows=*/1});

  PartitionSearchVariable target;
  target.name = "embedding";
  target.alpha = embedding_alpha;
  target.num_elements = 640'000;
  target.max_partitions = 10'000;
  query.targets.push_back(target);

  query.cluster = ServiceSpec();
  query.sim_config.ps_local_aggregation = true;
  query.sim_config.ps_machine_level_pulls = true;
  query.gpu_compute_seconds = 4e-3;
  query.compute_chunks = 4;
  query.options.initial_partitions = 4;
  query.options.warmup_iterations = 2;
  query.options.measured_iterations = 2;
  return query;
}

TEST(ParallelSearchTest, PlannerServiceParallelPlanMatchesSerialServiceAndOracle) {
  PlannerServiceOptions parallel_options;
  parallel_options.max_workers = 4;
  PlannerService parallel_service(parallel_options);
  PlannerServiceOptions serial_options;
  serial_options.max_workers = 1;
  PlannerService serial_service(serial_options);

  PlannerQuery query = ServiceQuery(0.02);
  PlannerResult parallel = parallel_service.Plan(query);
  PlannerResult serial = serial_service.Plan(query);

  EXPECT_TRUE(parallel.plan == serial.plan);
  EXPECT_EQ(parallel.plan.ToString(), serial.plan.ToString());
  EXPECT_EQ(parallel.seconds, serial.seconds);
  EXPECT_EQ(parallel.uniform_seconds, serial.uniform_seconds);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);

  // And both match the private-arena oracle on a fresh arena.
  PlannerQuery canonical = query;
  parallel_service.Canonicalize(&canonical);
  SimulationArena arena;
  auto measure = [&](const PartitionPlan& plan) {
    IterationSimulator sim(canonical.cluster,
                           ApplyPlanToVariables(canonical.variables, plan),
                           canonical.gpu_compute_seconds, canonical.compute_chunks,
                           canonical.sim_config, &arena);
    return sim.MeasureIterationSeconds(canonical.options.warmup_iterations,
                                       canonical.options.measured_iterations);
  };
  PartitionPlanSearchResult oracle =
      SearchPartitionPlan(measure, canonical.targets, canonical.options);
  EXPECT_TRUE(parallel.plan == oracle.plan);
  EXPECT_EQ(parallel.seconds, oracle.seconds);
  EXPECT_EQ(parallel.evaluations, oracle.evaluations);

  // Single Plan() misses get intra-search parallelism (not just PlanMany), and the
  // stats show it; the one-lane service stays entirely serial.
  PlannerServiceStats parallel_stats = parallel_service.stats();
  EXPECT_GT(parallel_stats.batched_evaluations, 0u);
  EXPECT_LE(parallel_stats.speculative_waste, parallel_stats.batched_evaluations);
  PlannerServiceStats serial_stats = serial_service.stats();
  EXPECT_EQ(serial_stats.batched_evaluations, 0u);
  EXPECT_EQ(serial_stats.speculative_waste, 0u);
}

TEST(ParallelSearchTest, PlannerServicePlanManyMatchesPerQueryPlans) {
  PlannerServiceOptions options;
  options.max_workers = 4;
  PlannerService service(options);

  std::vector<PlannerQuery> queries;
  for (double alpha : {0.02, 0.1, 0.3, 0.02}) {  // one duplicate key
    queries.push_back(ServiceQuery(alpha));
  }
  std::vector<PlannerResult> batched = service.PlanMany(queries);
  ASSERT_EQ(batched.size(), queries.size());

  PlannerService reference;  // defaults; answers must match regardless of its workers
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    PlannerResult single = reference.Plan(queries[i]);
    EXPECT_TRUE(batched[i].plan == single.plan);
    EXPECT_EQ(batched[i].seconds, single.seconds);
    EXPECT_EQ(batched[i].uniform_seconds, single.uniform_seconds);
  }
  // The duplicate coalesced onto its representative's search.
  EXPECT_EQ(service.stats().searches, 3u);
}

}  // namespace
}  // namespace parallax
