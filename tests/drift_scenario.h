// The canonical sparsity-drift scenario shared by the adaptive-loop tests
// (adaptive_partition_test.cc) and the monitoring bit-identity invariant
// (engine_equivalence_test.cc): a word LM whose active vocabulary jumps from 2% to
// 100% at a chosen step, under accumulation-dominated server costs. Single-sourced so
// that a future retuning keeps every consumer actually repartitioning — the
// equivalence invariant is only meaningful when a mid-training Repartition fires.
#ifndef PARALLAX_TESTS_DRIFT_SCENARIO_H_
#define PARALLAX_TESTS_DRIFT_SCENARIO_H_

#include "src/models/calibration.h"
#include "src/models/trainable.h"

namespace parallax {

// A word LM whose active vocabulary jumps from 2% to 100% at `drift_step` — the
// vocabulary-warm-up drift. The wide embedding makes the server-side accumulation
// cost (the theta1 the partition search divides by P) scale visibly with the rows a
// step actually touches, so the optimal P genuinely moves when alpha does.
// Near-uniform token frequencies (small Zipf exponent) keep worker accesses
// independent, the regime the monitor's union inversion models exactly.
inline WordLmModel::Options DriftingLm(uint64_t seed, int64_t drift_step) {
  return {.vocab_size = 250,
          .embedding_dim = 512,
          .hidden_dim = 16,
          .batch_per_rank = 64,
          .zipf_exponent = 0.05,
          .seed = seed,
          .active_vocab_fraction = AlphaSchedule::StepChange(drift_step, 0.02, 1.0)};
}

// Accumulation-dominated server costs — the paper's LM regime, where iterating the
// touched rows one by one is what partitioning parallelizes. With the (alpha-blind)
// per-piece flush cost kept small, the optimal P moves strongly when alpha does,
// which is exactly the situation the adaptive loop exists for. Pair with
// RunnerBuilder::WithCompute(2e-3, 4) so synchronization dominates the iteration.
inline SyncCostParams AccumulationDominatedCosts() {
  SyncCostParams costs;
  costs.sparse_agg_seconds_per_element = 100e-9;
  costs.sparse_update_seconds_per_element = 20e-9;
  costs.sparse_flush_seconds_per_element = 2e-9;
  return costs;
}

}  // namespace parallax

#endif  // PARALLAX_TESTS_DRIFT_SCENARIO_H_
