// The canonical sparsity-drift scenario shared by the adaptive-loop tests
// (adaptive_partition_test.cc) and the monitoring bit-identity invariant
// (engine_equivalence_test.cc): a word LM whose active vocabulary jumps from 2% to
// 100% at a chosen step, under accumulation-dominated server costs. Single-sourced so
// that a future retuning keeps every consumer actually repartitioning — the
// equivalence invariant is only meaningful when a mid-training Repartition fires.
#ifndef PARALLAX_TESTS_DRIFT_SCENARIO_H_
#define PARALLAX_TESTS_DRIFT_SCENARIO_H_

#include "src/models/calibration.h"
#include "src/models/trainable.h"

namespace parallax {

// A word LM whose active vocabulary jumps from 2% to 100% at `drift_step` — the
// vocabulary-warm-up drift. The wide embedding makes the server-side accumulation
// cost (the theta1 the partition search divides by P) scale visibly with the rows a
// step actually touches, so the optimal P genuinely moves when alpha does.
// Near-uniform token frequencies (small Zipf exponent) keep worker accesses
// independent, the regime the monitor's union inversion models exactly.
inline WordLmModel::Options DriftingLm(uint64_t seed, int64_t drift_step) {
  return {.vocab_size = 250,
          .embedding_dim = 512,
          .hidden_dim = 16,
          .batch_per_rank = 64,
          .zipf_exponent = 0.05,
          .seed = seed,
          .active_vocab_fraction = AlphaSchedule::StepChange(drift_step, 0.02, 1.0)};
}

// Accumulation-dominated server costs — the paper's LM regime, where iterating the
// touched rows one by one is what partitioning parallelizes. With the (alpha-blind)
// per-piece flush cost kept small, the optimal P moves strongly when alpha does,
// which is exactly the situation the adaptive loop exists for. Pair with
// RunnerBuilder::WithCompute(2e-3, 4) so synchronization dominates the iteration.
inline SyncCostParams AccumulationDominatedCosts() {
  SyncCostParams costs;
  costs.sparse_agg_seconds_per_element = 100e-9;
  costs.sparse_update_seconds_per_element = 20e-9;
  costs.sparse_flush_seconds_per_element = 2e-9;
  return costs;
}

// The canonical *skewed-alpha* scenario behind the per-variable partition plan tests
// (adaptive_partition_test.cc) and examples/per_variable_partition.cpp: an
// EmbeddingSkewModel (src/models/trainable.h) — one hot embedding whose workers touch
// a handful of rows, one near-dense softmax table whose aggregated gradient touches
// almost every row — under accumulation-dominated servers AND an expensive TF-era
// client (per-piece session dispatch), so the two variables' optima genuinely differ:
// the wide table wants many pieces (its serial accumulation divides by P), while every
// piece added to the hot embedding only lengthens each rank's serial dispatch prologue.
// On the paper cluster shape "m0:0,1;m1:0,1" with WithCompute(1e-3, 4), the landscape's
// optimum is {hot:1, wide:~13} at ~4.9 ms/iter vs ~6.1 ms/iter for the best uniform P
// (~8) — the first workload where no single global P is competitive. Single-sourced so
// the tests, the example, and the CI smoke grep all exercise the same economics.
inline EmbeddingSkewModel::Options SkewedTwoVarModel(uint64_t seed) {
  EmbeddingSkewModel::Options options;
  options.seed = seed;
  return options;
}

inline SyncCostParams SkewedPartitionCosts() {
  SyncCostParams costs;
  costs.sparse_agg_seconds_per_element = 400e-9;
  costs.sparse_update_seconds_per_element = 20e-9;
  costs.sparse_flush_seconds_per_element = 2e-9;
  // Client-side per-piece op dispatch is serial per rank and alpha-blind: pieces the
  // hot embedding does not need are pure loss here, which is what splits its optimum
  // away from the wide table's.
  costs.worker_dispatch_seconds_per_piece = 150e-6;
  return costs;
}

}  // namespace parallax

#endif  // PARALLAX_TESTS_DRIFT_SCENARIO_H_
