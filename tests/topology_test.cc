// The hierarchical machine model: Topology's level arithmetic, the flat cluster as a
// verified degenerate two-level tree (ScheduleTransfer == ScheduleStoreAndForward,
// bit for bit), cross-rack transfers serializing through oversubscribed spine links,
// spine byte accounting, and the single shard-ownership rule (ResolveShardServers)
// that keeps round-robin assignments stable when one variable is placed.
#include <gtest/gtest.h>

#include <limits>

#include "src/core/iteration_sim.h"
#include "src/sim/cluster.h"

namespace parallax {
namespace {

ClusterSpec RackedSpec(int machines, int racks) {
  ClusterSpec spec;
  spec.num_machines = machines;
  spec.gpus_per_machine = 2;
  spec.cores_per_machine = 4;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 1e-6;
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 1e-6;
  spec.topology.num_racks = racks;
  spec.topology.spine_bandwidth = 5e8;  // 2:1 oversubscribed vs the NIC
  spec.topology.spine_latency = 5e-6;
  return spec;
}

TEST(TopologyTest, LevelArithmetic) {
  Topology topology(RackedSpec(6, 3));
  EXPECT_FALSE(topology.flat());
  EXPECT_EQ(topology.num_racks(), 3);
  EXPECT_EQ(topology.machines_per_rack(), 2);
  EXPECT_EQ(topology.RackOfMachine(0), 0);
  EXPECT_EQ(topology.RackOfMachine(1), 0);
  EXPECT_EQ(topology.RackOfMachine(2), 1);
  EXPECT_EQ(topology.RackOfMachine(5), 2);
  EXPECT_EQ(topology.LeaderOfRack(0), 0);
  EXPECT_EQ(topology.LeaderOfRack(1), 2);
  EXPECT_EQ(topology.LeaderOfRack(2), 4);
}

TEST(TopologyTest, PathBandwidthPicksTheBottleneckLevel) {
  ClusterSpec spec = RackedSpec(4, 2);
  Topology topology(spec);
  EXPECT_EQ(topology.PathBandwidth(1, 1), std::numeric_limits<double>::infinity());
  EXPECT_EQ(topology.PathBandwidth(0, 1), spec.nic_bandwidth);        // same rack
  EXPECT_EQ(topology.PathBandwidth(0, 2), spec.topology.spine_bandwidth);  // cross rack
  EXPECT_EQ(topology.PathBandwidth(3, 0), spec.topology.spine_bandwidth);

  // A fast spine never makes a path faster than the NICs at its ends.
  spec.topology.spine_bandwidth = 4e9;
  Topology fast_spine(spec);
  EXPECT_EQ(fast_spine.PathBandwidth(0, 2), spec.nic_bandwidth);
}

TEST(TopologyTest, FlatSpecIsDegenerateTree) {
  ClusterSpec spec = RackedSpec(4, 1);
  Topology topology(spec);
  EXPECT_TRUE(topology.flat());
  EXPECT_EQ(topology.machines_per_rack(), 4);
  EXPECT_EQ(topology.RackOfMachine(3), 0);
  EXPECT_EQ(topology.PathBandwidth(0, 3), spec.nic_bandwidth);
}

TEST(TopologyTest, FlatScheduleTransferMatchesStoreAndForwardExactly) {
  // On a flat cluster the topology route must be the historical two-queue path, bit
  // for bit, including under queueing from earlier traffic.
  ClusterSpec spec = RackedSpec(4, 1);
  Cluster routed(spec);
  Cluster manual(spec);
  const int64_t bytes[] = {1'000'000, 250'000, 4'096, 1'000'000};
  SimTime ready = 0.0;
  for (int i = 0; i < 4; ++i) {
    int src = i % 2;
    int dst = 2 + i % 2;
    SimTime a = routed.ScheduleTransfer(src, dst, ready, bytes[i]);
    SimTime b = ScheduleStoreAndForward(manual.machine(src).nic_out,
                                        manual.machine(dst).nic_in, ready, bytes[i]);
    EXPECT_EQ(a, b) << "transfer " << i;
    ready = a * 0.5;  // overlap the next transfer with the queue still busy
  }
  EXPECT_EQ(routed.SpineBytes(0), 0);
}

TEST(TopologyTest, CrossRackTransferSerializesThroughTheSpine) {
  ClusterSpec spec = RackedSpec(4, 2);
  Cluster cluster(spec);
  const int64_t bytes = 1'000'000;
  // Intra-rack: NIC out + NIC in + one propagation latency.
  SimTime intra = cluster.ScheduleTransfer(0, 1, 0.0, bytes);
  double nic_leg = static_cast<double>(bytes) / spec.nic_bandwidth;
  double spine_leg = static_cast<double>(bytes) / spec.topology.spine_bandwidth;
  EXPECT_DOUBLE_EQ(intra, 2 * nic_leg + spec.nic_latency);
  // Cross-rack from idle machines: NIC out, spine up, spine down, NIC in, with one
  // latency per leg (machine->switch, switch->switch, switch->machine).
  SimTime cross = cluster.ScheduleTransfer(2, 0, 0.0, bytes);
  EXPECT_DOUBLE_EQ(cross, 2 * nic_leg + 2 * spine_leg +
                              2 * spec.nic_latency + spec.topology.spine_latency);
  EXPECT_GT(cross, intra);
  // Byte accounting: the cross-rack payload crossed both racks' spines once.
  EXPECT_EQ(cluster.SpineBytes(0), bytes);
  EXPECT_EQ(cluster.SpineBytes(1), bytes);
  cluster.ResetByteAccounting();
  EXPECT_EQ(cluster.SpineBytes(0), 0);
  EXPECT_EQ(cluster.SpineBytes(1), 0);
}

TEST(TopologyTest, ConcurrentCrossRackTransfersQueueAtTheSharedSpine) {
  // Two same-direction cross-rack transfers from different senders contend on the
  // source rack's single spine uplink, so the second finishes a full spine leg later
  // than it would alone.
  ClusterSpec spec = RackedSpec(4, 2);
  Cluster contended(spec);
  Cluster alone(spec);
  const int64_t bytes = 1'000'000;
  contended.ScheduleTransfer(0, 2, 0.0, bytes);
  SimTime second = contended.ScheduleTransfer(1, 3, 0.0, bytes);
  SimTime solo = alone.ScheduleTransfer(1, 3, 0.0, bytes);
  double spine_leg = static_cast<double>(bytes) / spec.topology.spine_bandwidth;
  EXPECT_DOUBLE_EQ(second, solo + spine_leg);
}

std::vector<VariableSync> ThreePsVariables() {
  std::vector<VariableSync> vars(3);
  vars[0].spec = {"a", 1'000'000, 64, true, 0.1};
  vars[0].method = SyncMethod::kPs;
  vars[0].partitions = 3;
  vars[1].spec = {"b", 500'000, 1, false, 1.0};
  vars[1].method = SyncMethod::kArAllReduce;  // not a PS shard: owns no server
  vars[2].spec = {"c", 800'000, 64, true, 0.2};
  vars[2].method = SyncMethod::kPs;
  vars[2].partitions = 2;
  return vars;
}

TEST(ResolveShardServersTest, RoundRobinSkipsNonPsAndWrapsMachines) {
  std::vector<int> servers = ResolveShardServers(ThreePsVariables(), 4);
  EXPECT_EQ(servers, (std::vector<int>{0, 1, 2, 3, 0}));
}

TEST(ResolveShardServersTest, PlacingOneVariableNeverShiftsItsNeighbors) {
  std::vector<VariableSync> vars = ThreePsVariables();
  vars[0].placement = {3, 3, 0};  // pin a's shards; rr counter still advances past them
  std::vector<int> servers = ResolveShardServers(vars, 4);
  EXPECT_EQ(servers, (std::vector<int>{3, 3, 0, 3, 0}));
}

TEST(ResolveShardServersTest, LengthMismatchedPlacementFallsBackToRoundRobin) {
  std::vector<VariableSync> vars = ThreePsVariables();
  vars[2].placement = {1};  // stale vector from before a re-split: ignored
  std::vector<int> servers = ResolveShardServers(vars, 4);
  EXPECT_EQ(servers, (std::vector<int>{0, 1, 2, 3, 0}));
}

}  // namespace
}  // namespace parallax
