#include <gtest/gtest.h>

#include <unordered_set>

#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/models/model_spec.h"
#include "src/models/model_zoo.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

TEST(ZipfTextTest, SamplesWithinVocabulary) {
  ZipfBigramText text({.vocab_size = 100, .seed = 1});
  Rng rng(2);
  TokenBatch batch = text.Sample(500, rng);
  for (int64_t id : batch.ids.ints()) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 100);
  }
}

TEST(ZipfTextTest, LabelsFollowPermutationMostly) {
  ZipfBigramText text({.vocab_size = 50, .noise = 0.1, .seed = 3});
  Rng rng(4);
  TokenBatch batch = text.Sample(1000, rng);
  int matches = 0;
  auto ids = batch.ids.ints();
  auto labels = batch.labels.ints();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (labels[i] == text.TrueNext(ids[i])) {
      ++matches;
    }
  }
  EXPECT_GT(matches, 850);  // ~90% + chance collisions
}

TEST(ZipfTextTest, UniqueTokenFractionGrowsSublinearly) {
  // The Zipf head means a bigger batch touches proportionally fewer *new* rows — the
  // mechanism behind per-worker alpha and its growth with batch size (section 2.2).
  ZipfBigramText text({.vocab_size = 1000, .seed = 5});
  Rng rng(6);
  auto unique_count = [&](int64_t n) {
    TokenBatch batch = text.Sample(n, rng);
    std::unordered_set<int64_t> unique(batch.ids.ints().begin(), batch.ids.ints().end());
    return unique.size();
  };
  size_t u_small = unique_count(100);
  size_t u_large = unique_count(800);
  EXPECT_GT(u_large, u_small);
  EXPECT_LT(u_large, 8 * u_small);  // far from linear growth
}

TEST(ClusteredImagesTest, FeaturesNearTheirClassCenter) {
  ClusteredImages images({.feature_dims = 8, .num_classes = 4, .cluster_stddev = 0.1,
                          .seed = 7});
  Rng rng(8);
  ImageBatch batch = images.Sample(100, rng);
  EXPECT_EQ(batch.features.shape().dim(0), 100);
  EXPECT_EQ(batch.features.shape().dim(1), 8);
  for (int64_t label : batch.labels.ints()) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(ShardTest, TensorShardsCoverAllRows) {
  Tensor t = Tensor::FromIndices({0, 1, 2, 3, 4, 5, 6}, TensorShape({7}));
  std::vector<Tensor> shards = ShardTensor(t, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].shape().dim(0), 3);  // 7 = 3 + 2 + 2
  EXPECT_EQ(shards[1].shape().dim(0), 2);
  EXPECT_EQ(shards[2].shape().dim(0), 2);
  EXPECT_EQ(shards[0].ints()[0], 0);
  EXPECT_EQ(shards[2].ints()[1], 6);
}

TEST(ShardTest, FeedsShardedConsistently) {
  FeedMap feeds;
  feeds[0] = Tensor::FromIndices({10, 11, 12, 13}, TensorShape({4}));
  feeds[1] = Tensor::FromVector({1, 2, 3, 4, 5, 6, 7, 8}, TensorShape({4, 2}));
  std::vector<FeedMap> shards = ShardFeeds(feeds, 2);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0][0].ints()[0], 10);
  EXPECT_EQ(shards[1][0].ints()[0], 12);
  EXPECT_EQ(shards[1][1].at(0), 5.0f);
}

TEST(ShardTest, MismatchedBatchDimsRejected) {
  FeedMap feeds;
  feeds[0] = Tensor::FromIndices({1, 2, 3}, TensorShape({3}));
  feeds[1] = Tensor::FromVector({1, 2}, TensorShape({2}));
  EXPECT_DEATH(ShardFeeds(feeds, 2), "batch dimension");
}

TEST(ModelZooTest, Table1ElementCounts) {
  ModelSpec resnet = ResNet50Spec();
  EXPECT_FALSE(resnet.variables.empty());
  EXPECT_EQ(resnet.SparseElements(), 0);
  EXPECT_NEAR(static_cast<double>(resnet.TotalElements()), 23.8e6, 0.8e6);
  EXPECT_DOUBLE_EQ(resnet.AlphaModel(), 1.0);

  ModelSpec inception = InceptionV3Spec();
  EXPECT_NEAR(static_cast<double>(inception.TotalElements()), 25.6e6, 0.8e6);

  ModelSpec lm = LmSpec();
  EXPECT_NEAR(static_cast<double>(lm.DenseElements()), 9.4e6, 0.3e6);
  EXPECT_NEAR(static_cast<double>(lm.SparseElements()), 813.3e6, 3e6);
  EXPECT_NEAR(lm.AlphaModel(), 0.02, 0.002);

  ModelSpec nmt = NmtSpec();
  EXPECT_NEAR(static_cast<double>(nmt.DenseElements()), 94.1e6, 1.5e6);
  EXPECT_NEAR(static_cast<double>(nmt.SparseElements()), 74.9e6, 1e6);
  EXPECT_NEAR(nmt.AlphaModel(), 0.65, 0.02);
}

TEST(ModelZooTest, LargestDenseVariableIsTheFcLayer) {
  // "the largest variable in the dense model Inception-V3 ... has 2.05 million elements"
  ModelSpec inception = InceptionV3Spec();
  int64_t largest = 0;
  for (const VariableSpec& v : inception.variables) {
    largest = std::max(largest, v.num_elements);
  }
  EXPECT_NEAR(static_cast<double>(largest), 2.05e6, 0.01e6);
}

TEST(ModelZooTest, ConstructedLmAlphaMatchesTable6) {
  const std::pair<int, double> expectations[] = {
      {120, 1.0}, {60, 0.52}, {30, 0.28}, {15, 0.16}, {8, 0.1}, {4, 0.07}, {1, 0.04}};
  for (const auto& [length, alpha] : expectations) {
    ModelSpec spec = ConstructedLmSpec(length);
    EXPECT_NEAR(spec.AlphaModel(), alpha, 0.01) << "length " << length;
    EXPECT_DOUBLE_EQ(spec.items_per_iteration_per_gpu, 128.0 * length);
  }
}

TEST(ModelSpecTest, UnionAlphaProperties) {
  EXPECT_DOUBLE_EQ(UnionAlpha(0.5, 1), 0.5);
  EXPECT_NEAR(UnionAlpha(0.5, 2), 0.75, 1e-12);
  EXPECT_NEAR(UnionAlpha(0.02, 48), 1.0 - std::pow(0.98, 48), 1e-12);
  EXPECT_DOUBLE_EQ(UnionAlpha(1.0, 7), 1.0);
  EXPECT_DOUBLE_EQ(UnionAlpha(0.0, 7), 0.0);
}

TEST(ModelSpecTest, WorkerGradBytesIncludesIndices) {
  VariableSpec v;
  v.num_elements = 1000;
  v.row_elements = 10;
  v.is_sparse = true;
  v.alpha = 0.1;
  // 100 touched elements = 10 rows: 400 value bytes + 80 index bytes.
  EXPECT_EQ(v.worker_elements(), 100);
  EXPECT_EQ(v.worker_grad_bytes(), 480);
}

}  // namespace
}  // namespace parallax
