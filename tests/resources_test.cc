#include <gtest/gtest.h>

#include "src/core/resources.h"

namespace parallax {
namespace {

TEST(ResourcesTest, ParseWellFormedSpec) {
  auto result = ParseResourceSpec("host-a:0,1,2;host-b:0,1,2");
  ASSERT_TRUE(result.ok());
  const ResourceSpec& spec = result.value();
  EXPECT_EQ(spec.num_machines(), 2);
  EXPECT_EQ(spec.total_gpus(), 6);
  EXPECT_TRUE(spec.IsHomogeneous());
  EXPECT_EQ(spec.machines[0].hostname, "host-a");
  EXPECT_EQ(spec.machines[1].gpu_ids[2], 2);
}

TEST(ResourcesTest, ParseSingleMachine) {
  auto result = ParseResourceSpec("localhost:0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_gpus(), 1);
}

TEST(ResourcesTest, RejectsEmpty) {
  EXPECT_FALSE(ParseResourceSpec("").ok());
}

TEST(ResourcesTest, RejectsMissingColon) {
  EXPECT_FALSE(ParseResourceSpec("hostonly").ok());
}

TEST(ResourcesTest, RejectsEmptyHostname) {
  EXPECT_FALSE(ParseResourceSpec(":0,1").ok());
}

TEST(ResourcesTest, RejectsMalformedGpuId) {
  EXPECT_FALSE(ParseResourceSpec("host:0,x").ok());
}

TEST(ResourcesTest, RejectsNoGpus) {
  EXPECT_FALSE(ParseResourceSpec("host:").ok());
}

TEST(ResourcesTest, HeterogeneousDetected) {
  auto result = ParseResourceSpec("a:0,1;b:0");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().IsHomogeneous());
}

TEST(ResourcesTest, ToClusterSpecInheritsHardware) {
  ResourceSpec spec = ResourceSpec::Homogeneous(4, 2);
  ClusterSpec base = ClusterSpec::Paper();
  base.nic_bandwidth = 5e9;
  ClusterSpec cluster = spec.ToClusterSpec(base);
  EXPECT_EQ(cluster.num_machines, 4);
  EXPECT_EQ(cluster.gpus_per_machine, 2);
  EXPECT_DOUBLE_EQ(cluster.nic_bandwidth, 5e9);
}

TEST(ResourcesTest, HomogeneousFactory) {
  ResourceSpec spec = ResourceSpec::Homogeneous(8, 6);
  EXPECT_EQ(spec.num_machines(), 8);
  EXPECT_EQ(spec.total_gpus(), 48);
  EXPECT_TRUE(spec.IsHomogeneous());
}

}  // namespace
}  // namespace parallax
