#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/models/trainable.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

// GraphRunner::Rescale — elastic membership changes mid-training (docs/elasticity.md).
// The contract under test: values are preserved bit-for-bit across any rescale, an
// immediate N -> M -> N round trip is a numeric no-op, the re-search runs against the
// NEW topology (never adopting a layout worse than the incumbent there), the shard
// migration is charged to the simulated clock, and the whole trajectory — losses,
// bits, clock — is deterministic.
//
// What is deliberately NOT promised: stepping *at* M ranks matches stepping at N. A
// different rank count re-shards the batch, so gradients differ by construction (same
// reason real AR jobs renegotiate their ring); bit-equality claims here are always
// about immediate round trips or restored replays, never across a differently-sized
// step.

WordLmModel::Options SmallLm(uint64_t seed) {
  return {.vocab_size = 120, .embedding_dim = 8, .hidden_dim = 12,
          .batch_per_rank = 16, .seed = seed};
}

ParallaxConfig FastConfig() {
  ParallaxConfig config;
  config.learning_rate = 0.4f;
  config.search.warmup_iterations = 2;
  config.search.measured_iterations = 2;
  return config;
}

void ExpectBitIdentical(const VariableStore& a, const VariableStore& b,
                        const Graph& graph) {
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    EXPECT_TRUE(AllClose(a.Get(static_cast<int>(v)), b.Get(static_cast<int>(v)), 0.0f))
        << graph.variables()[v].name;
  }
}

TEST(ElasticRescaleTest, GrowPreservesValuesBitForBit) {
  WordLmModel model(SmallLm(701));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     FastConfig());
  Rng rng(71);
  for (int i = 0; i < 4; ++i) {
    runner.Step(model.TrainShards(2, rng));
  }
  VariableStore before = runner.WorkerView();
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 1)).ok());
  EXPECT_EQ(runner.num_ranks(), 4);
  EXPECT_EQ(runner.resources().num_machines(), 4);
  ExpectBitIdentical(before, runner.WorkerView(), *model.graph());
}

TEST(ElasticRescaleTest, ShrinkPreservesValuesBitForBit) {
  WordLmModel model(SmallLm(702));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(4, 1),
                     FastConfig());
  Rng rng(72);
  for (int i = 0; i < 4; ++i) {
    runner.Step(model.TrainShards(4, rng));
  }
  VariableStore before = runner.WorkerView();
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(2, 1)).ok());
  EXPECT_EQ(runner.num_ranks(), 2);
  ExpectBitIdentical(before, runner.WorkerView(), *model.graph());
}

TEST(ElasticRescaleTest, PsRoundTripIsBitIdentical) {
  // N -> M -> N with no intervening steps: the PS shards re-split twice and must land
  // exactly where they started — partitioning and membership never touch the numerics.
  WordLmModel model(SmallLm(703));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(73);
  for (int i = 0; i < 5; ++i) {
    runner.Step(model.TrainShards(4, rng));
  }
  VariableStore before = runner.WorkerView();
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 2)).ok());
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(2, 2)).ok());
  ExpectBitIdentical(before, runner.WorkerView(), *model.graph());
}

TEST(ElasticRescaleTest, ArRoundTripIsBitIdentical) {
  // All-AR runner: growing clones the incumbent replica (the join broadcast),
  // shrinking truncates. Replicas are identical between steps, so the round trip is
  // exact. (Stepping AT the larger size is the documented exception — a different
  // rank count re-shards the batch, so trajectories legitimately diverge there.)
  WordLmModel model(SmallLm(704));
  ParallaxConfig config = FastConfig();
  config.engine_overrides.push_back({"*", "ar"});
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     config);
  Rng rng(74);
  for (int i = 0; i < 5; ++i) {
    runner.Step(model.TrainShards(2, rng));
  }
  VariableStore before = runner.WorkerView();
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 1)).ok());
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(2, 1)).ok());
  ExpectBitIdentical(before, runner.WorkerView(), *model.graph());
  // And the shrunken runner still trains.
  float loss = runner.Step(model.TrainShards(2, rng));
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(ElasticRescaleTest, ShrinkToOneAndGrowFromOneStaysTrainable) {
  WordLmModel model(SmallLm(705));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(75);
  for (int i = 0; i < 3; ++i) {
    runner.Step(model.TrainShards(4, rng));
  }
  VariableStore at_four = runner.WorkerView();
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(1, 1)).ok());
  EXPECT_EQ(runner.num_ranks(), 1);
  ExpectBitIdentical(at_four, runner.WorkerView(), *model.graph());
  float solo_loss = runner.Step(model.TrainShards(1, rng));
  EXPECT_TRUE(std::isfinite(solo_loss));

  VariableStore at_one = runner.WorkerView();
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(2, 2)).ok());
  EXPECT_EQ(runner.num_ranks(), 4);
  ExpectBitIdentical(at_one, runner.WorkerView(), *model.graph());
  float grown_loss = runner.Step(model.TrainShards(4, rng));
  EXPECT_TRUE(std::isfinite(grown_loss));
}

TEST(ElasticRescaleTest, RescaleBeforeFirstStepIsFailedPrecondition) {
  WordLmModel model(SmallLm(706));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     FastConfig());
  Status status = runner.Rescale(ResourceSpec::Homogeneous(4, 1));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ElasticRescaleTest, RejectsInvalidTargets) {
  WordLmModel model(SmallLm(707));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     FastConfig());
  Rng rng(77);
  runner.Step(model.TrainShards(2, rng));

  EXPECT_EQ(runner.Rescale(ResourceSpec{}).code(), StatusCode::kInvalidArgument);
  ResourceSpec lopsided;
  lopsided.machines.push_back({"a", {0, 1}});
  lopsided.machines.push_back({"b", {0}});
  EXPECT_EQ(runner.Rescale(lopsided).code(), StatusCode::kInvalidArgument);
  // The failed attempts changed nothing.
  EXPECT_EQ(runner.num_ranks(), 2);
  EXPECT_EQ(runner.rescales(), 0);
}

TEST(ElasticRescaleTest, SameShapeRescaleIsNoOp) {
  WordLmModel model(SmallLm(708));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(78);
  runner.Step(model.TrainShards(4, rng));
  VariableStore before = runner.WorkerView();
  const double clock_before = runner.simulated_seconds();
  ResourceSpec renamed = ResourceSpec::Homogeneous(2, 2);
  renamed.machines[0].hostname = "replacement-host";
  ASSERT_TRUE(runner.Rescale(renamed).ok());
  EXPECT_EQ(runner.rescales(), 0);
  EXPECT_EQ(runner.simulated_seconds(), clock_before);
  EXPECT_EQ(runner.resources().machines[0].hostname, "replacement-host");
  ExpectBitIdentical(before, runner.WorkerView(), *model.graph());
}

TEST(ElasticRescaleTest, MigrationChargedToSimulatedClock) {
  WordLmModel model(SmallLm(709));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     FastConfig());
  Rng rng(79);
  for (int i = 0; i < 3; ++i) {
    runner.Step(model.TrainShards(2, rng));
  }
  const double clock_before = runner.simulated_seconds();
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 1)).ok());
  ASSERT_EQ(runner.rescales(), 1);
  const RescaleEvent& event = runner.rescale_trail().front();
  EXPECT_GE(event.migration_seconds, 0.0);
  // Rescale's only clock charge is the migration itself.
  EXPECT_DOUBLE_EQ(runner.simulated_seconds(), clock_before + event.migration_seconds);
  // Best-of guarantee: the adopted layout never simulates slower on the new topology
  // than the incumbent does.
  EXPECT_LE(event.adopted_seconds, event.incumbent_seconds);
}

TEST(ElasticRescaleTest, RescaleTrailRecordsBothDirections) {
  WordLmModel model(SmallLm(710));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(80);
  for (int i = 0; i < 3; ++i) {
    runner.Step(model.TrainShards(4, rng));
  }
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 2)).ok());
  for (int i = 0; i < 2; ++i) {
    runner.Step(model.TrainShards(8, rng));
  }
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(2, 2)).ok());
  ASSERT_EQ(runner.rescales(), 2);

  const RescaleEvent& grow = runner.rescale_trail()[0];
  EXPECT_EQ(grow.step, 3);
  EXPECT_EQ(grow.from_machines, 2);
  EXPECT_EQ(grow.to_machines, 4);
  EXPECT_EQ(grow.from_ranks, 4);
  EXPECT_EQ(grow.to_ranks, 8);
  const RescaleEvent& shrink = runner.rescale_trail()[1];
  EXPECT_EQ(shrink.step, 5);
  EXPECT_EQ(shrink.from_machines, 4);
  EXPECT_EQ(shrink.to_machines, 2);
  EXPECT_LE(shrink.adopted_seconds, shrink.incumbent_seconds);
}

TEST(ElasticRescaleTest, StepsContinueWithNewRankCount) {
  WordLmModel model(SmallLm(711));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     FastConfig());
  Rng rng(81);
  float loss = 0.0f;
  for (int i = 0; i < 10; ++i) {
    loss = runner.Step(model.TrainShards(2, rng));
  }
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 1)).ok());
  const double clock_at_rescale = runner.simulated_seconds();
  float grown = 0.0f;
  for (int i = 0; i < 10; ++i) {
    grown = runner.Step(model.TrainShards(4, rng));
  }
  EXPECT_TRUE(std::isfinite(grown));
  EXPECT_LT(grown, loss * 1.5f);  // training did not blow up across the rescale
  EXPECT_EQ(runner.iterations(), 20);
  EXPECT_GT(runner.simulated_seconds(), clock_at_rescale);
}

TEST(ElasticRescaleTest, StalePlacementsClearedOnShrink) {
  // A placement naming a departed server must not survive the rescale — it would hand
  // ResolveShardServers an out-of-range machine index.
  WordLmModel model(SmallLm(712));
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(4, 1),
                     FastConfig());
  Rng rng(82);
  runner.Step(model.TrainShards(4, rng));
  PartitionPlan pinned = runner.partition_plan();
  pinned.Set("embedding", 2);
  pinned.SetPlacement("embedding", {3, 1});  // piece 0 on the machine about to leave
  runner.Repartition(pinned);
  ASSERT_NE(runner.partition_plan().PlacementFor("embedding"), nullptr);

  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(2, 1)).ok());
  EXPECT_EQ(runner.partition_plan().PlacementFor("embedding"), nullptr);
  for (const VariableSync& sync : runner.assignment()) {
    for (int server : sync.placement) {
      EXPECT_LT(server, 2) << sync.spec.name;
    }
  }
  float loss = runner.Step(model.TrainShards(2, rng));
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(ElasticRescaleTest, PlacementSearchOnNewTopologyStaysInRange) {
  // Racked cluster + per-variable placement search: every placement the post-rescale
  // plan carries must reference a machine of the NEW membership, grow and shrink.
  WordLmModel model(SmallLm(713));
  ParallaxConfig config = FastConfig();
  config.search_mode = PartitionSearchMode::kPerVariable;
  config.search_placement = true;
  config.hardware.topology.num_racks = 2;
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(4, 1),
                     config);
  Rng rng(83);
  runner.Step(model.TrainShards(4, rng));

  for (int machines : {2, 4}) {
    ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(machines, 1)).ok());
    for (const auto& [name, placement] : runner.partition_plan().placements()) {
      for (int server : placement) {
        EXPECT_GE(server, 0) << name;
        EXPECT_LT(server, machines) << name;
      }
    }
    for (const VariableSync& sync : runner.assignment()) {
      for (int server : sync.placement) {
        EXPECT_LT(server, machines) << sync.spec.name;
      }
    }
    float loss = runner.Step(model.TrainShards(machines, rng));
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(ElasticRescaleTest, TrajectoryIsDeterministic) {
  // Two identical runs with the same rescale schedule: identical losses, identical
  // final bits, identical simulated clock. Elasticity adds no hidden nondeterminism.
  auto train = [] {
    WordLmModel model(SmallLm(714));
    GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                       FastConfig());
    Rng rng(84);
    std::vector<float> losses;
    for (int i = 0; i < 3; ++i) {
      losses.push_back(runner.Step(model.TrainShards(2, rng)));
    }
    EXPECT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 1)).ok());
    for (int i = 0; i < 3; ++i) {
      losses.push_back(runner.Step(model.TrainShards(4, rng)));
    }
    EXPECT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(2, 1)).ok());
    for (int i = 0; i < 3; ++i) {
      losses.push_back(runner.Step(model.TrainShards(2, rng)));
    }
    return std::make_tuple(losses, runner.WorkerView(), runner.simulated_seconds());
  };
  auto [losses_a, view_a, clock_a] = train();
  auto [losses_b, view_b, clock_b] = train();
  EXPECT_EQ(losses_a, losses_b);
  EXPECT_EQ(clock_a, clock_b);
  WordLmModel reference(SmallLm(714));
  ExpectBitIdentical(view_a, view_b, *reference.graph());
}

TEST(ElasticRescaleTest, MonitorSurvivesRescale) {
  // The adaptive loop and elasticity compose: a rescale re-anchors the monitor's
  // baselines (membership change is drift by another name) and monitoring continues.
  WordLmModel model(SmallLm(715));
  ParallaxConfig config = FastConfig();
  AdaptivePartitioningPolicy policy;
  policy.warmup_steps = 2;
  policy.check_interval = 2;
  policy.cooldown_steps = 2;
  config.adaptive_partitioning = policy;
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     config);
  Rng rng(85);
  for (int i = 0; i < 6; ++i) {
    runner.Step(model.TrainShards(2, rng));
  }
  ASSERT_NE(runner.sparsity_monitor(), nullptr);
  ASSERT_TRUE(runner.Rescale(ResourceSpec::Homogeneous(4, 1)).ok());
  // Re-anchored: right after the rescale, measured == baseline for every tracked
  // variable, so the rescale's own re-search is never re-litigated as drift.
  for (int v : runner.sparsity_monitor()->tracked()) {
    EXPECT_DOUBLE_EQ(runner.sparsity_monitor()->baseline_alpha(v),
                     runner.sparsity_monitor()->measured_alpha(v));
  }
  for (int i = 0; i < 6; ++i) {
    float loss = runner.Step(model.TrainShards(4, rng));
    EXPECT_TRUE(std::isfinite(loss));
  }
  EXPECT_EQ(runner.sparsity_monitor()->steps(), 12);
}

}  // namespace
}  // namespace parallax
