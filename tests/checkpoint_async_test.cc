#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/graph/checkpoint.h"
#include "src/models/trainable.h"
#include "src/ps/ps_async.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// The on-disk header layout of a v2 checkpoint (src/graph/checkpoint.cc): the
// corruption tests below craft hostile files word by word.
constexpr uint64_t kMagic = 0x70784c4158ull;
constexpr uint64_t kVersion = 2;

void WriteWords(const std::string& path, const std::vector<uint64_t>& words) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(words.data(), sizeof(uint64_t), words.size(), f), words.size());
  std::fclose(f);
}

WordLmModel::Options TinyLm(uint64_t seed) {
  return {.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
          .batch_per_rank = 8, .seed = seed};
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  WordLmModel model({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 901});
  VariableStore store = VariableStore::InitFrom(*model.graph());
  // Perturb so the checkpoint differs from the initializers.
  store.GetMutable(0).mutable_floats()[3] = 42.5f;
  std::string path = TempPath("ckpt_roundtrip.px");
  ASSERT_TRUE(SaveCheckpoint(*model.graph(), store, path).ok());
  auto loaded = LoadCheckpoint(*model.graph(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(loaded.value().Get(static_cast<int>(v)),
                         store.Get(static_cast<int>(v)), 0.0f));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsMissingFile) {
  WordLmModel model({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 902});
  EXPECT_FALSE(LoadCheckpoint(*model.graph(), TempPath("does_not_exist.px")).ok());
}

TEST(CheckpointTest, LoadRejectsWrongGraph) {
  WordLmModel small({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 903});
  WordLmModel big({.vocab_size = 80, .embedding_dim = 4, .hidden_dim = 6,
                   .batch_per_rank = 8, .seed = 903});
  std::string path = TempPath("ckpt_mismatch.px");
  ASSERT_TRUE(
      SaveCheckpoint(*small.graph(), VariableStore::InitFrom(*small.graph()), path).ok());
  auto loaded = LoadCheckpoint(*big.graph(), path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsGarbage) {
  WordLmModel model({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 904});
  std::string path = TempPath("ckpt_garbage.px");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  EXPECT_FALSE(LoadCheckpoint(*model.graph(), path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MetaRoundTrip) {
  WordLmModel model(TinyLm(907));
  VariableStore store = VariableStore::InitFrom(*model.graph());
  std::string path = TempPath("ckpt_meta.px");
  CheckpointMeta saved;
  saved.step = 12345;
  saved.simulated_seconds = 67.875;  // exactly representable: bits must round-trip
  ASSERT_TRUE(SaveCheckpoint(*model.graph(), store, path, saved).ok());
  CheckpointMeta loaded_meta;
  auto loaded = LoadCheckpoint(*model.graph(), path, &loaded_meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded_meta.step, 12345);
  EXPECT_EQ(loaded_meta.simulated_seconds, 67.875);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsTruncatedDataSection) {
  // Cut a valid checkpoint mid-data: the loader must return a clean Status for every
  // possible truncation point — never UB, never a partial store.
  WordLmModel model(TinyLm(908));
  VariableStore store = VariableStore::InitFrom(*model.graph());
  std::string path = TempPath("ckpt_truncated.px");
  ASSERT_TRUE(SaveCheckpoint(*model.graph(), store, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(full, CheckpointFileBytes(*model.graph()));
  for (long keep : {full - 1, full / 2, full / 4, 5 * 8L, 3 * 8L, 8L, 1L}) {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    std::vector<char> bytes(static_cast<size_t>(keep));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
    std::fclose(in);
    std::string cut = TempPath("ckpt_cut.px");
    std::FILE* out = std::fopen(cut.c_str(), "wb");
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    std::fclose(out);
    auto loaded = LoadCheckpoint(*model.graph(), cut);
    EXPECT_FALSE(loaded.ok()) << "accepted a checkpoint truncated to " << keep << " bytes";
    std::remove(cut.c_str());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsDimsOverflow) {
  // A crafted header whose dims would overflow num_elements (or stall the allocator)
  // must fail the bounds check BEFORE any shape or tensor is built.
  WordLmModel model(TinyLm(909));
  const uint64_t count = model.graph()->variables().size();
  std::string path = TempPath("ckpt_overflow.px");
  WriteWords(path, {kMagic, kVersion, /*step=*/0, /*seconds bits=*/0, count,
                    /*index=*/0, /*rank=*/2, /*dims=*/1ull << 62, 1ull << 62});
  auto loaded = LoadCheckpoint(*model.graph(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsAbsurdRank) {
  WordLmModel model(TinyLm(910));
  const uint64_t count = model.graph()->variables().size();
  std::string path = TempPath("ckpt_rank.px");
  // rank = 2^40: without the rank cap, the loader would try to read a trillion dims.
  WriteWords(path, {kMagic, kVersion, 0, 0, count, /*index=*/0, /*rank=*/1ull << 40});
  auto loaded = LoadCheckpoint(*model.graph(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsVariableCountMismatch) {
  // A syntactically valid header whose variable count disagrees with the graph is a
  // checkpoint from a different model — a precondition failure, not a parse error.
  WordLmModel model(TinyLm(911));
  const uint64_t count = model.graph()->variables().size();
  std::string path = TempPath("ckpt_count.px");
  WriteWords(path, {kMagic, kVersion, 0, 0, count + 3});
  auto loaded = LoadCheckpoint(*model.graph(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsUnsupportedVersion) {
  WordLmModel model(TinyLm(912));
  std::string path = TempPath("ckpt_version.px");
  WriteWords(path, {kMagic, /*version=*/99, 0, 0, 0});
  auto loaded = LoadCheckpoint(*model.graph(), path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, FailedSaveLeavesPreviousCheckpointIntact) {
  // The atomic-write property the recovery path relies on: when a save cannot
  // complete, the previous checkpoint at the target path survives untouched.
  WordLmModel model(TinyLm(913));
  VariableStore store = VariableStore::InitFrom(*model.graph());
  store.GetMutable(0).mutable_floats()[0] = 7.25f;
  std::string path = TempPath("ckpt_atomic.px");
  ASSERT_TRUE(SaveCheckpoint(*model.graph(), store, path).ok());
  // A save to an unwritable location fails cleanly...
  EXPECT_FALSE(
      SaveCheckpoint(*model.graph(), store, "/nonexistent-dir/nope.px").ok());
  // ...and the original is still loadable with the original bits.
  auto loaded = LoadCheckpoint(*model.graph(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Get(0).floats()[0], 7.25f);
  std::remove(path.c_str());
}

TEST(AsyncPsTest, TrainingConvergesWithoutBarrier) {
  WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 16, .seed = 905});
  AsyncPsEngine engine(model.graph(), PsNumericConfig{.sparse_partitions = 4});
  Executor executor(model.graph());
  Rng rng(95);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 80; ++step) {
    // Two workers pushing in turn, each against possibly-stale values (the defining
    // property of asynchronous training, paper section 2.1).
    for (const FeedMap& feeds : model.TrainShards(2, rng)) {
      StepResult grads = executor.RunStep(engine.CurrentValues(), feeds, model.loss());
      if (step == 0 && first_loss == 0.0f) {
        first_loss = grads.loss;
      }
      last_loss = grads.loss;
      engine.PushGradients(grads, 0.4f);
    }
  }
  EXPECT_EQ(engine.pushes_applied(), 160);
  EXPECT_LT(last_loss, first_loss * 0.8f);
}

TEST(AsyncPsTest, StaleUpdatesDivergeFromSynchronousTrajectory) {
  // Async applies each worker's gradient against different parameter versions, so after
  // one "round" the values differ from the synchronous (aggregated) step — the staleness
  // that motivates synchronous training in the paper.
  WordLmModel model({.vocab_size = 60, .embedding_dim = 6, .hidden_dim = 8,
                     .batch_per_rank = 12, .seed = 906});
  Executor executor(model.graph());
  AsyncPsEngine async_engine(model.graph(), PsNumericConfig{});
  PsNumericConfig sync_config;
  sync_config.dense_aggregation = AggregationMethod::kSum;
  sync_config.sparse_aggregation = AggregationMethod::kSum;
  PsNumericEngine sync_engine(model.graph(), sync_config);

  Rng rng(96);
  std::vector<FeedMap> shards = model.TrainShards(2, rng);
  // Synchronous: both grads from the same version, applied together.
  std::vector<StepResult> sync_grads;
  for (const FeedMap& feeds : shards) {
    sync_grads.push_back(executor.RunStep(sync_engine.CurrentValues(), feeds, model.loss()));
  }
  sync_engine.ApplyStep(sync_grads, 0.2f);
  // Asynchronous: second worker computes against the first worker's update.
  for (const FeedMap& feeds : shards) {
    StepResult grads = executor.RunStep(async_engine.CurrentValues(), feeds, model.loss());
    async_engine.PushGradients(grads, 0.4f);
  }
  float max_diff = 0.0f;
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    max_diff = std::max(max_diff,
                        MaxAbsDiff(async_engine.CurrentValues().Get(static_cast<int>(v)),
                                   sync_engine.CurrentValues().Get(static_cast<int>(v))));
  }
  EXPECT_GT(max_diff, 1e-6f);
}

}  // namespace
}  // namespace parallax
