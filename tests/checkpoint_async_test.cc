#include <gtest/gtest.h>

#include <cstdio>

#include "src/base/rng.h"
#include "src/graph/checkpoint.h"
#include "src/models/trainable.h"
#include "src/ps/ps_async.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  WordLmModel model({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 901});
  VariableStore store = VariableStore::InitFrom(*model.graph());
  // Perturb so the checkpoint differs from the initializers.
  store.GetMutable(0).mutable_floats()[3] = 42.5f;
  std::string path = TempPath("ckpt_roundtrip.px");
  ASSERT_TRUE(SaveCheckpoint(*model.graph(), store, path).ok());
  auto loaded = LoadCheckpoint(*model.graph(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(loaded.value().Get(static_cast<int>(v)),
                         store.Get(static_cast<int>(v)), 0.0f));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsMissingFile) {
  WordLmModel model({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 902});
  EXPECT_FALSE(LoadCheckpoint(*model.graph(), TempPath("does_not_exist.px")).ok());
}

TEST(CheckpointTest, LoadRejectsWrongGraph) {
  WordLmModel small({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 903});
  WordLmModel big({.vocab_size = 80, .embedding_dim = 4, .hidden_dim = 6,
                   .batch_per_rank = 8, .seed = 903});
  std::string path = TempPath("ckpt_mismatch.px");
  ASSERT_TRUE(
      SaveCheckpoint(*small.graph(), VariableStore::InitFrom(*small.graph()), path).ok());
  auto loaded = LoadCheckpoint(*big.graph(), path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsGarbage) {
  WordLmModel model({.vocab_size = 40, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 904});
  std::string path = TempPath("ckpt_garbage.px");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  EXPECT_FALSE(LoadCheckpoint(*model.graph(), path).ok());
  std::remove(path.c_str());
}

TEST(AsyncPsTest, TrainingConvergesWithoutBarrier) {
  WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 16, .seed = 905});
  AsyncPsEngine engine(model.graph(), PsNumericConfig{.sparse_partitions = 4});
  Executor executor(model.graph());
  Rng rng(95);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 80; ++step) {
    // Two workers pushing in turn, each against possibly-stale values (the defining
    // property of asynchronous training, paper section 2.1).
    for (const FeedMap& feeds : model.TrainShards(2, rng)) {
      StepResult grads = executor.RunStep(engine.CurrentValues(), feeds, model.loss());
      if (step == 0 && first_loss == 0.0f) {
        first_loss = grads.loss;
      }
      last_loss = grads.loss;
      engine.PushGradients(grads, 0.4f);
    }
  }
  EXPECT_EQ(engine.pushes_applied(), 160);
  EXPECT_LT(last_loss, first_loss * 0.8f);
}

TEST(AsyncPsTest, StaleUpdatesDivergeFromSynchronousTrajectory) {
  // Async applies each worker's gradient against different parameter versions, so after
  // one "round" the values differ from the synchronous (aggregated) step — the staleness
  // that motivates synchronous training in the paper.
  WordLmModel model({.vocab_size = 60, .embedding_dim = 6, .hidden_dim = 8,
                     .batch_per_rank = 12, .seed = 906});
  Executor executor(model.graph());
  AsyncPsEngine async_engine(model.graph(), PsNumericConfig{});
  PsNumericConfig sync_config;
  sync_config.dense_aggregation = AggregationMethod::kSum;
  sync_config.sparse_aggregation = AggregationMethod::kSum;
  PsNumericEngine sync_engine(model.graph(), sync_config);

  Rng rng(96);
  std::vector<FeedMap> shards = model.TrainShards(2, rng);
  // Synchronous: both grads from the same version, applied together.
  std::vector<StepResult> sync_grads;
  for (const FeedMap& feeds : shards) {
    sync_grads.push_back(executor.RunStep(sync_engine.CurrentValues(), feeds, model.loss()));
  }
  sync_engine.ApplyStep(sync_grads, 0.2f);
  // Asynchronous: second worker computes against the first worker's update.
  for (const FeedMap& feeds : shards) {
    StepResult grads = executor.RunStep(async_engine.CurrentValues(), feeds, model.loss());
    async_engine.PushGradients(grads, 0.4f);
  }
  float max_diff = 0.0f;
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    max_diff = std::max(max_diff,
                        MaxAbsDiff(async_engine.CurrentValues().Get(static_cast<int>(v)),
                                   sync_engine.CurrentValues().Get(static_cast<int>(v))));
  }
  EXPECT_GT(max_diff, 1e-6f);
}

}  // namespace
}  // namespace parallax
