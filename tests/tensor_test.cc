#include <gtest/gtest.h>

#include <cmath>

#include "src/base/rng.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

TEST(ShapeTest, Basics) {
  TensorShape s({3, 4, 5});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.num_elements(), 60);
  EXPECT_EQ(s.row_elements(), 20);
  EXPECT_EQ(s.WithDim0(7).dim(0), 7);
  EXPECT_EQ(s.ToString(), "[3, 4, 5]");
  EXPECT_TRUE(TensorShape({2}) == TensorShape({2}));
  EXPECT_TRUE(TensorShape({2}) != TensorShape({3}));
}

TEST(ShapeTest, ScalarShape) {
  TensorShape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t = Tensor::Zeros(TensorShape({2, 3}));
  for (float v : t.floats()) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(TensorTest, SharedBufferSemantics) {
  Tensor a = Tensor::Filled(TensorShape({4}), 2.0f);
  Tensor b = a;  // shares storage
  EXPECT_TRUE(a.SharesBufferWith(b));
  Tensor c = a.Clone();
  EXPECT_FALSE(a.SharesBufferWith(c));
  c.mutable_floats()[0] = 9.0f;
  EXPECT_EQ(a.at(0), 2.0f);
}

TEST(TensorTest, IntTensor) {
  Tensor t = Tensor::FromIndices({5, 6, 7}, TensorShape({3}));
  EXPECT_TRUE(t.is_int());
  EXPECT_EQ(t.ints()[2], 7);
}

TEST(TensorOpsTest, AddSubMulScale) {
  Tensor a = Tensor::FromVector({1, 2, 3}, TensorShape({3}));
  Tensor b = Tensor::FromVector({10, 20, 30}, TensorShape({3}));
  EXPECT_EQ(Add(a, b).at(1), 22.0f);
  EXPECT_EQ(Sub(b, a).at(2), 27.0f);
  EXPECT_EQ(Mul(a, b).at(0), 10.0f);
  EXPECT_EQ(Scale(a, 2.5f).at(2), 7.5f);
  Tensor c = a.Clone();
  AxpyInPlace(c, -2.0f, b);
  EXPECT_EQ(c.at(0), -19.0f);
}

TEST(TensorOpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, TensorShape({2, 2}));
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, TensorShape({2, 2}));
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0), 19.0f);
  EXPECT_EQ(c.at(1), 22.0f);
  EXPECT_EQ(c.at(2), 43.0f);
  EXPECT_EQ(c.at(3), 50.0f);
}

TEST(TensorOpsTest, MatMulTransposesAgree) {
  Rng rng(1);
  Tensor a = RandomNormal(TensorShape({4, 6}), rng);
  Tensor b = RandomNormal(TensorShape({6, 5}), rng);
  Tensor expected = MatMul(a, b);
  // A x B == (A^T)^T x B via MatMulTransposeA.
  EXPECT_TRUE(AllClose(MatMulTransposeA(Transpose2D(a), b), expected, 1e-5f));
  // A x B == A x (B^T)^T via MatMulTransposeB.
  EXPECT_TRUE(AllClose(MatMulTransposeB(a, Transpose2D(b)), expected, 1e-5f));
}

TEST(TensorOpsTest, TransposeInvolution) {
  Rng rng(2);
  Tensor a = RandomNormal(TensorShape({3, 7}), rng);
  EXPECT_TRUE(AllClose(Transpose2D(Transpose2D(a)), a, 0.0f));
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor logits = RandomNormal(TensorShape({5, 9}), rng, 3.0f);
  Tensor probs = SoftmaxRows(logits);
  auto p = probs.floats();
  for (int64_t r = 0; r < 5; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 9; ++c) {
      float v = p[static_cast<size_t>(r * 9 + c)];
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TensorOpsTest, SoftmaxCrossEntropyGradientMatchesFiniteDifference) {
  Rng rng(4);
  Tensor logits = RandomNormal(TensorShape({3, 5}), rng);
  Tensor labels = Tensor::FromIndices({1, 4, 0}, TensorShape({3}));
  Tensor grad;
  float loss = SoftmaxCrossEntropy(logits, labels, &grad);
  EXPECT_GT(loss, 0.0f);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.num_elements(); ++i) {
    Tensor perturbed = logits.Clone();
    perturbed.mutable_floats()[static_cast<size_t>(i)] += eps;
    float loss_up = SoftmaxCrossEntropy(perturbed, labels, nullptr);
    perturbed.mutable_floats()[static_cast<size_t>(i)] -= 2 * eps;
    float loss_down = SoftmaxCrossEntropy(perturbed, labels, nullptr);
    float numeric = (loss_up - loss_down) / (2 * eps);
    EXPECT_NEAR(grad.at(i), numeric, 5e-3f) << "logit index " << i;
  }
}

TEST(TensorOpsTest, GatherRows) {
  Tensor params = Tensor::FromVector({0, 1, 10, 11, 20, 21}, TensorShape({3, 2}));
  std::vector<int64_t> indices = {2, 0, 2};
  Tensor out = GatherRows(params, indices);
  EXPECT_EQ(out.shape().dim(0), 3);
  EXPECT_EQ(out.at(0), 20.0f);
  EXPECT_EQ(out.at(2), 0.0f);
  EXPECT_EQ(out.at(4), 20.0f);
}

TEST(TensorOpsTest, ScatterAddAccumulatesDuplicates) {
  Tensor params = Tensor::Zeros(TensorShape({4, 2}));
  IndexedSlices slices({1, 1, 3}, Tensor::FromVector({1, 2, 3, 4, 5, 6}, TensorShape({3, 2})),
                       TensorShape({4, 2}));
  ScatterAddInPlace(params, slices);
  EXPECT_EQ(params.at(2), 4.0f);  // row 1 col 0: 1 + 3
  EXPECT_EQ(params.at(3), 6.0f);  // row 1 col 1: 2 + 4
  EXPECT_EQ(params.at(6), 5.0f);  // row 3 col 0
}

TEST(TensorOpsTest, ScatterSgdUpdateMatchesDenseUpdate) {
  Rng rng(5);
  Tensor dense_var = RandomNormal(TensorShape({6, 3}), rng);
  Tensor sparse_var = dense_var.Clone();
  IndexedSlices grad({0, 2, 2, 5},
                     RandomNormal(TensorShape({4, 3}), rng), TensorShape({6, 3}));
  // Dense path: densify then axpy.
  AxpyInPlace(dense_var, -0.5f, grad.ToDense());
  // Sparse path.
  ScatterSgdUpdate(sparse_var, grad, 0.5f);
  EXPECT_TRUE(AllClose(dense_var, sparse_var, 1e-6f));
}

TEST(TensorOpsTest, SliceAndConcatRowsRoundTrip) {
  Rng rng(6);
  Tensor t = RandomNormal(TensorShape({7, 3}), rng);
  std::vector<Tensor> pieces = {SliceRows(t, 0, 2), SliceRows(t, 2, 5), SliceRows(t, 5, 7)};
  EXPECT_TRUE(AllClose(ConcatRows(pieces), t, 0.0f));
}

TEST(TensorOpsTest, SliceRowsIntTensor) {
  Tensor t = Tensor::FromIndices({9, 8, 7, 6}, TensorShape({4}));
  Tensor s = SliceRows(t, 1, 3);
  ASSERT_TRUE(s.is_int());
  EXPECT_EQ(s.ints()[0], 8);
  EXPECT_EQ(s.ints()[1], 7);
}

TEST(TensorOpsTest, SliceColsAndConcatColsRoundTrip) {
  Rng rng(7);
  Tensor t = RandomNormal(TensorShape({4, 6}), rng);
  Tensor left = SliceCols(t, 0, 2);
  Tensor right = SliceCols(t, 2, 6);
  EXPECT_TRUE(AllClose(ConcatColsPair(left, right), t, 0.0f));
}

TEST(TensorOpsTest, ColumnSum) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, TensorShape({2, 3}));
  Tensor sums = ColumnSum(t);
  EXPECT_EQ(sums.at(0), 5.0f);
  EXPECT_EQ(sums.at(1), 7.0f);
  EXPECT_EQ(sums.at(2), 9.0f);
}

TEST(TensorOpsTest, ActivationGradients) {
  Rng rng(8);
  Tensor x = RandomNormal(TensorShape({10}), rng);
  Tensor y = Tanh(x);
  Tensor ones = Tensor::Filled(TensorShape({10}), 1.0f);
  Tensor g = TanhGrad(y, ones);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(g.at(i), 1.0f - y.at(i) * y.at(i), 1e-6f);
  }
  Tensor r = Relu(x);
  Tensor rg = ReluGrad(x, ones);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.at(i), std::max(x.at(i), 0.0f));
    EXPECT_EQ(rg.at(i), x.at(i) > 0.0f ? 1.0f : 0.0f);
  }
}

TEST(TensorOpsTest, GlorotUniformWithinLimit) {
  Rng rng(9);
  Tensor w = GlorotUniform(TensorShape({30, 20}), rng);
  float limit = std::sqrt(6.0f / 50.0f);
  for (float v : w.floats()) {
    EXPECT_LE(std::fabs(v), limit);
  }
}

}  // namespace
}  // namespace parallax
