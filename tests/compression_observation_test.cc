// Post-compression sparsity observation (satellite of docs/compression.md): an
// observer attached to a compression engine must see the nnz that actually rides the
// wire — the selected rows — not the raw backward output, and the adaptive loop must
// compose with compression: plan alphas reflect the compressed volume, the re-search
// adopts a plan priced at it, and the ratio-inversion recovers the raw alpha for the
// engine-independent VariableSpec.
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/models/trainable.h"
#include "src/sync/topk_ps.h"
#include "tests/drift_scenario.h"

namespace parallax {
namespace {

constexpr double kRatio = 0.25;

struct RecordingObserver : SparseAccessObserver {
  // Every aggregated-gradient observation and every per-rank tap, per variable.
  std::unordered_map<int, std::vector<int64_t>> step_rows;
  std::unordered_map<int, std::vector<int64_t>> rank_rows;
  void ObserveSparseStep(int variable, int64_t unique_rows, int contributions) override {
    EXPECT_GE(contributions, 1);
    step_rows[variable].push_back(unique_rows);
  }
  void ObserveRankAccess(int variable, int64_t unique_rows) override {
    rank_rows[variable].push_back(unique_rows);
  }
};

TEST(CompressionObservationTest, ObserverSeesSelectedRowsNotRawNnz) {
  // Every rank gets the SAME feed, so each rank selects the same k rows and every
  // aggregated observation — whatever the engine's grouping — must equal k exactly,
  // where k = ceil(ratio * incoming unique rows). The raw nnz never appears.
  WordLmModel model({.vocab_size = 100, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 24, .seed = 870});
  const int num_ranks = 4;
  SyncPlan plan;
  plan.variables.resize(model.graph()->variables().size());
  plan.engines.assign(model.graph()->variables().size(), "topk_ps");
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    plan.variables[v].spec.name = model.graph()->variables()[v].name;
  }
  plan.num_ranks = num_ranks;
  plan.ranks_per_machine = 2;

  TopKPsEngine engine(model.graph(), {.ratio = kRatio, .error_feedback = true});
  RecordingObserver observer;
  engine.set_observer(&observer);
  engine.Prepare(plan);

  Executor executor(model.graph());
  Rng rng(871);
  for (int step = 0; step < 3; ++step) {
    VariableStore view = engine.View();
    FeedMap feed = model.TrainShards(1, rng)[0];
    std::vector<StepResult> per_rank;
    for (int r = 0; r < num_ranks; ++r) {
      per_rank.push_back(executor.RunStep(view, feed, model.loss()));
    }

    // Expected per-variable k from the raw gradient the engine is about to compress.
    std::unordered_map<int, int64_t> expected_k;
    std::unordered_map<int, int64_t> raw_rows;
    int64_t total_k = 0;
    for (const auto& [key, grad] : per_rank.front().grads) {
      if (!grad.is_sparse()) {
        continue;
      }
      const int64_t raw = grad.sparse().unique_rows();
      const int64_t k = std::max<int64_t>(
          1, static_cast<int64_t>(std::ceil(kRatio * static_cast<double>(raw))));
      expected_k[key] = k;
      raw_rows[key] = raw;
      total_k += k * num_ranks;
      ASSERT_LT(k, raw) << "batch too small to demonstrate compression, key " << key;
    }
    ASSERT_FALSE(expected_k.empty());

    observer.step_rows.clear();
    observer.rank_rows.clear();
    engine.ApplyStep(per_rank, 0.3f);

    EXPECT_EQ(engine.last_selected_rows(), total_k) << "step " << step;
    for (const auto& [key, k] : expected_k) {
      ASSERT_FALSE(observer.step_rows[key].empty()) << "key " << key;
      for (int64_t observed : observer.step_rows[key]) {
        EXPECT_EQ(observed, k) << "aggregated observation saw raw nnz (" << raw_rows[key]
                               << ") instead of the selected " << k;
      }
      for (int64_t observed : observer.rank_rows[key]) {
        EXPECT_EQ(observed, k) << "rank tap saw raw nnz for key " << key;
      }
    }
  }
}

// The adaptive loop under compression, against the identical uncompressed run: the
// monitored plan alpha must track the COMPRESSED access ratio (~ ratio * raw), the
// drift re-search must still fire and adopt after the vocabulary opens up, and the
// ratio-inversion must restore the raw alpha into the adopted plan's VariableSpec.
struct AdaptiveRun {
  double plan_alpha = 0.0;    // monitor's plan estimator for the embedding
  double spec_alpha = 0.0;    // the embedding's spec.alpha in the plan in force
  int repartitions = 0;
  int64_t first_adopted_step = -1;
};

AdaptiveRun RunAdaptive(const std::string& engine, uint64_t seed, int64_t drift_step) {
  WordLmModel model(DriftingLm(seed, drift_step));
  AdaptivePartitioningPolicy policy;
  policy.ewma_decay = 0.5;
  policy.drift_threshold = 0.1;
  policy.hysteresis = 0.0;
  policy.warmup_steps = 2;
  policy.check_interval = 2;
  policy.cooldown_steps = 2;
  auto runner = RunnerBuilder(model.graph(), model.loss())
                    .WithResources("m0:0,1;m1:0,1")
                    .WithLearningRate(0.3f)
                    .WithSyncCosts(AccumulationDominatedCosts())
                    .WithCompute(2e-3, 4)
                    .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                    .WithAdaptivePartitioning(policy)
                    .WithEngine("*", engine)
                    .Build();
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  AdaptiveRun out;
  if (!runner.ok()) {
    return out;
  }
  Rng rng(seed);
  for (int step = 0; step < 16; ++step) {
    runner.value()->Step(model.TrainShards(4, rng, step));
  }
  int embedding = -1;
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    if (model.graph()->variables()[v].name == "embedding") {
      embedding = static_cast<int>(v);
    }
  }
  EXPECT_GE(embedding, 0);
  const SparsityMonitor* monitor = runner.value()->sparsity_monitor();
  EXPECT_NE(monitor, nullptr);
  out.plan_alpha = monitor->plan_alpha(embedding);
  out.repartitions = runner.value()->adaptive_repartitions();
  for (const AdaptationVerdict& verdict : monitor->trail()) {
    if (verdict.adopted && out.first_adopted_step < 0) {
      out.first_adopted_step = verdict.step;
    }
  }
  for (const VariableSync& sync : runner.value()->assignment()) {
    if (sync.spec.name == "embedding") {
      out.spec_alpha = sync.spec.alpha;
    }
  }
  return out;
}

TEST(CompressionObservationTest, AdaptiveLoopPricesTheCompressedVolume) {
  const std::string engine = "topk_obs_q4";
  if (!SyncEngineRegistry::Global().Contains(engine)) {
    Status status =
        RegisterTopKPsEngine(engine, {.ratio = kRatio, .error_feedback = true});
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  AdaptiveRun compressed = RunAdaptive(engine, /*seed=*/872, /*drift_step=*/6);
  AdaptiveRun raw = RunAdaptive("ps", /*seed=*/872, /*drift_step=*/6);

  // Both monitored runs crossed a mid-training re-search and adopted, after the drift.
  EXPECT_GE(compressed.repartitions, 1);
  EXPECT_GE(raw.repartitions, 1);
  EXPECT_GT(compressed.first_adopted_step, 6);

  // The monitor measured the wire: the compressed run's plan alpha is the raw run's
  // scaled by ~ratio (k = ceil(ratio * nnz) per rank, same data stream).
  ASSERT_GT(raw.plan_alpha, 0.0);
  const double measured_ratio = compressed.plan_alpha / raw.plan_alpha;
  EXPECT_GT(measured_ratio, kRatio * 0.6);
  EXPECT_LT(measured_ratio, kRatio * 1.4);

  // ...and the adopted plan's spec carries the INVERTED alpha — the engine-independent
  // raw access ratio — so the simulator's PushAlpha prices the compressed volume
  // exactly once (spec.alpha * ratio), not twice.
  ASSERT_GT(raw.spec_alpha, 0.0);
  EXPECT_GT(compressed.spec_alpha, raw.spec_alpha * 0.5);
  EXPECT_LT(compressed.spec_alpha, raw.spec_alpha * 2.0);
}

}  // namespace
}  // namespace parallax
