#include <gtest/gtest.h>

#include "src/core/frameworks.h"
#include "src/models/model_zoo.h"

namespace parallax {
namespace {

TEST(FrameworksTest, TfPsPutsEverythingOnServers) {
  FrameworkOptions options;
  options.sparse_partitions = 32;
  std::vector<VariableSync> assignment =
      AssignVariables(Framework::kTfPs, LmSpec(), options);
  for (const VariableSync& sync : assignment) {
    EXPECT_EQ(sync.method, SyncMethod::kPs);
    if (sync.spec.is_sparse) {
      EXPECT_EQ(sync.partitions, 32);
    } else {
      EXPECT_EQ(sync.partitions, 1);
    }
  }
}

TEST(FrameworksTest, HorovodSplitsByGradientType) {
  std::vector<VariableSync> assignment =
      AssignVariables(Framework::kHorovod, NmtSpec(), FrameworkOptions{});
  for (const VariableSync& sync : assignment) {
    if (sync.spec.is_sparse) {
      EXPECT_EQ(sync.method, SyncMethod::kArAllGatherv) << sync.spec.name;
    } else {
      EXPECT_EQ(sync.method, SyncMethod::kArAllReduce) << sync.spec.name;
    }
  }
}

TEST(FrameworksTest, ParallaxHybridRoutesPaperModels) {
  // For the paper's models the hybrid rule lands on: dense -> AR, LM/NMT embeddings
  // (alpha 0.0087 / 0.21) -> PS.
  FrameworkOptions options;
  options.sparse_partitions = 64;
  for (const ModelSpec& model : {LmSpec(), NmtSpec()}) {
    std::vector<VariableSync> assignment =
        AssignVariables(Framework::kParallax, model, options);
    for (const VariableSync& sync : assignment) {
      if (sync.spec.is_sparse) {
        EXPECT_EQ(sync.method, SyncMethod::kPs) << model.name << "/" << sync.spec.name;
      } else {
        EXPECT_EQ(sync.method, SyncMethod::kArAllReduce)
            << model.name << "/" << sync.spec.name;
      }
    }
  }
}

TEST(FrameworksTest, CostBasedDecisionFlipsToArNearAlphaOne) {
  VariableSpec emb;
  emb.name = "emb";
  emb.num_elements = 100'000'000;
  emb.row_elements = 1024;
  emb.is_sparse = true;
  SyncCostParams costs;
  ClusterSpec cluster = ClusterSpec::Paper();
  emb.alpha = 0.02;
  EXPECT_LT(EstimatePsSeconds(emb, cluster, costs, 64),
            EstimateArSeconds(emb, cluster, costs));
  emb.alpha = 0.9;
  EXPECT_GT(EstimatePsSeconds(emb, cluster, costs, 64),
            EstimateArSeconds(emb, cluster, costs));
}

TEST(FrameworksTest, PartitionsClampToRowCount) {
  ModelSpec model;
  model.name = "tiny";
  VariableSpec emb;
  emb.name = "emb";
  emb.num_elements = 16 * 4;
  emb.row_elements = 4;  // 16 rows
  emb.is_sparse = true;
  emb.alpha = 0.1;
  model.variables.push_back(emb);
  FrameworkOptions options;
  options.sparse_partitions = 64;
  std::vector<VariableSync> assignment =
      AssignVariables(Framework::kTfPs, model, options);
  EXPECT_LE(assignment[0].partitions, 16);
}

TEST(FrameworksTest, SimConfigMatchesFrameworkSemantics) {
  FrameworkOptions options;
  IterationSimConfig naive = SimConfigFor(Framework::kTfPs, options);
  EXPECT_FALSE(naive.ps_local_aggregation);
  EXPECT_FALSE(naive.ps_machine_level_pulls);
  IterationSimConfig opt = SimConfigFor(Framework::kOptPs, options);
  EXPECT_TRUE(opt.ps_local_aggregation);
  EXPECT_TRUE(opt.ps_machine_level_pulls);
  IterationSimConfig px = SimConfigFor(Framework::kParallax, options);
  EXPECT_TRUE(px.ps_local_aggregation);
}

TEST(FrameworksTest, NamesAreStable) {
  EXPECT_STREQ(FrameworkName(Framework::kTfPs), "TF-PS");
  EXPECT_STREQ(FrameworkName(Framework::kHorovod), "Horovod");
  EXPECT_STREQ(FrameworkName(Framework::kOptPs), "OptPS");
  EXPECT_STREQ(FrameworkName(Framework::kParallax), "Parallax");
}

}  // namespace
}  // namespace parallax
