#include <gtest/gtest.h>

#include "src/ar/ar_numeric.h"
#include "src/base/rng.h"
#include "src/models/trainable.h"
#include "src/ps/ps_numeric.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

constexpr float kLr = 0.2f;

std::vector<StepResult> ComputeGrads(NmtSurrogateModel& model, const VariableStore& values,
                                     int ranks, Rng& rng) {
  Executor executor(model.graph());
  std::vector<FeedMap> shards = model.TrainShards(ranks, rng);
  std::vector<StepResult> results;
  for (int r = 0; r < ranks; ++r) {
    results.push_back(executor.RunStep(values, shards[static_cast<size_t>(r)], model.loss()));
  }
  return results;
}

TEST(ArNumericTest, ReplicasStayIdentical) {
  NmtSurrogateModel model({.vocab_size = 40, .embedding_dim = 5, .hidden_dim = 7,
                           .batch_per_rank = 10, .seed = 201});
  ArNumericEngine engine(model.graph(), 4);
  Rng rng(21);
  for (int step = 0; step < 4; ++step) {
    std::vector<StepResult> grads = ComputeGrads(model, engine.replica(0), 4, rng);
    // ApplyStep internally checks replica consistency and aborts on divergence.
    engine.ApplyStep(grads, kLr);
  }
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(engine.replica(0).Get(static_cast<int>(v)),
                         engine.replica(3).Get(static_cast<int>(v)), 0.0f));
  }
}

TEST(ArNumericTest, MatchesPsEngineTrajectory) {
  // The paper's implicit claim: PS and AR are different *mechanisms* for the same
  // synchronous-SGD math. Both engines, fed the same per-rank gradients, must produce
  // the same parameter values (modulo float summation order).
  NmtSurrogateModel model({.vocab_size = 40, .embedding_dim = 5, .hidden_dim = 7,
                           .batch_per_rank = 10, .seed = 202});
  ArNumericEngine ar(model.graph(), 4);
  PsNumericConfig ps_config;
  ps_config.sparse_partitions = 4;
  ps_config.local_aggregation = true;
  ps_config.ranks_per_machine = 2;
  PsNumericEngine ps(model.graph(), ps_config);

  Rng rng(22);
  for (int step = 0; step < 5; ++step) {
    std::vector<StepResult> grads = ComputeGrads(model, ar.replica(0), 4, rng);
    ar.ApplyStep(grads, kLr);
    ps.ApplyStep(grads, kLr);
    VariableStore ps_values = ps.CurrentValues();
    for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
      EXPECT_TRUE(AllClose(ar.replica(0).Get(static_cast<int>(v)),
                           ps_values.Get(static_cast<int>(v)), 3e-4f))
          << model.graph()->variables()[v].name << " step " << step;
    }
  }
}

TEST(ArNumericTest, SparseAggregationIsConcatenation) {
  // AllGatherv semantics: the aggregated sparse gradient applied to replicas is the
  // concatenation of per-rank slices (scaled for averaging) — verified against a manual
  // dense computation.
  NmtSurrogateModel model({.vocab_size = 30, .embedding_dim = 4, .hidden_dim = 6,
                           .batch_per_rank = 8, .seed = 203});
  ArNumericEngine engine(model.graph(), 2);
  Rng rng(23);
  VariableStore before = engine.replica(0).Clone();
  std::vector<StepResult> grads = ComputeGrads(model, engine.replica(0), 2, rng);
  engine.ApplyStep(grads, kLr);

  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    int key = static_cast<int>(v);
    const TensorShape& shape = model.graph()->variables()[v].shape;
    Tensor mean_grad = Tensor::Zeros(shape);
    AddInPlace(mean_grad, grads[0].grads.at(key).ToDense(shape));
    AddInPlace(mean_grad, grads[1].grads.at(key).ToDense(shape));
    ScaleInPlace(mean_grad, 0.5f);
    Tensor expected = before.Get(key).Clone();
    AxpyInPlace(expected, -kLr, mean_grad);
    EXPECT_TRUE(AllClose(engine.replica(0).Get(key), expected, 1e-5f))
        << model.graph()->variables()[v].name;
  }
}

TEST(ArNumericTest, ManagedVariablesLeaveOthersUntouched) {
  NmtSurrogateModel model({.vocab_size = 30, .embedding_dim = 4, .hidden_dim = 6,
                           .batch_per_rank = 8, .seed = 204});
  ArNumericConfig config;
  config.managed_variables = {3, 4};  // dense weights only
  ArNumericEngine engine(model.graph(), 2, config);
  VariableStore before = engine.replica(0).Clone();
  Rng rng(24);
  std::vector<StepResult> grads = ComputeGrads(model, engine.replica(0), 2, rng);
  engine.ApplyStep(grads, kLr);
  // Unmanaged embedding unchanged; managed dense weight changed.
  EXPECT_EQ(MaxAbsDiff(engine.replica(0).Get(0), before.Get(0)), 0.0f);
  EXPECT_GT(MaxAbsDiff(engine.replica(0).Get(3), before.Get(3)), 0.0f);
}

}  // namespace
}  // namespace parallax
