#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/analysis.h"
#include "src/models/trainable.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

TEST(AnalysisTest, ClassifiesLmVariables) {
  WordLmModel model({.vocab_size = 50, .embedding_dim = 6, .hidden_dim = 8,
                     .batch_per_rank = 16, .seed = 301});
  Executor executor(model.graph());
  VariableStore store = VariableStore::InitFrom(*model.graph());
  Rng rng(31);
  std::vector<StepResult> samples;
  for (const FeedMap& feeds : model.TrainShards(3, rng)) {
    samples.push_back(executor.RunStep(store, feeds, model.loss()));
  }
  auto info = AnalyzeSparsity(*model.graph(), model.loss(), samples);
  const auto& vars = model.graph()->variables();
  for (size_t v = 0; v < vars.size(); ++v) {
    const VariableSparsity& s = info.at(static_cast<int>(v));
    if (vars[v].name == "embedding" || vars[v].name == "softmax_emb") {
      EXPECT_EQ(s.kind, GradKind::kSparse) << vars[v].name;
      // 16 draws from a 50-symbol Zipf vocabulary touch well under half the rows.
      EXPECT_GT(s.alpha, 0.0);
      EXPECT_LT(s.alpha, 0.5);
    } else {
      EXPECT_EQ(s.kind, GradKind::kDense) << vars[v].name;
      EXPECT_DOUBLE_EQ(s.alpha, 1.0);
    }
  }
}

TEST(AnalysisTest, AlphaGrowsWithBatchSize) {
  // Table 6's mechanism: more tokens per instance => higher alpha.
  auto measure_alpha = [](int64_t batch) {
    WordLmModel model({.vocab_size = 100, .embedding_dim = 4, .hidden_dim = 6,
                       .batch_per_rank = batch, .seed = 302});
    Executor executor(model.graph());
    VariableStore store = VariableStore::InitFrom(*model.graph());
    Rng rng(32);
    std::vector<StepResult> samples;
    for (const FeedMap& feeds : model.TrainShards(4, rng)) {
      samples.push_back(executor.RunStep(store, feeds, model.loss()));
    }
    return AnalyzeSparsity(*model.graph(), model.loss(), samples).at(0).alpha;
  };
  double alpha_small = measure_alpha(4);
  double alpha_large = measure_alpha(64);
  EXPECT_LT(alpha_small, alpha_large);
}

TEST(AnalysisTest, ToVariableSpecsCarriesStructure) {
  WordLmModel model({.vocab_size = 50, .embedding_dim = 6, .hidden_dim = 8,
                     .batch_per_rank = 16, .seed = 303});
  Executor executor(model.graph());
  VariableStore store = VariableStore::InitFrom(*model.graph());
  Rng rng(33);
  std::vector<StepResult> samples;
  for (const FeedMap& feeds : model.TrainShards(2, rng)) {
    samples.push_back(executor.RunStep(store, feeds, model.loss()));
  }
  auto info = AnalyzeSparsity(*model.graph(), model.loss(), samples);
  std::vector<VariableSpec> specs = ToVariableSpecs(*model.graph(), info);
  ASSERT_EQ(specs.size(), model.graph()->variables().size());
  EXPECT_EQ(specs[0].num_elements, 50 * 6);
  EXPECT_EQ(specs[0].row_elements, 6);
  EXPECT_TRUE(specs[0].is_sparse);
}

TEST(AnalysisTest, HybridDecisionRules) {
  HybridOptions options{.alpha_dense_threshold = 0.8};
  VariableSparsity dense{.kind = GradKind::kDense, .alpha = 1.0};
  EXPECT_EQ(DecideSyncMethod(dense, options), SyncMethod::kArAllReduce);
  VariableSparsity sparse_low{.kind = GradKind::kSparse, .alpha = 0.05};
  EXPECT_EQ(DecideSyncMethod(sparse_low, options), SyncMethod::kPs);
  // The alpha-close-to-1 escape hatch (end of section 3.1).
  VariableSparsity sparse_high{.kind = GradKind::kSparse, .alpha = 0.95};
  EXPECT_EQ(DecideSyncMethod(sparse_high, options), SyncMethod::kArAllReduce);
}

TEST(AnalysisTest, AssignmentHonorsPartitionerScope) {
  WordLmModel model({.vocab_size = 60, .embedding_dim = 6, .hidden_dim = 8,
                     .batch_per_rank = 16, .seed = 304});
  Executor executor(model.graph());
  VariableStore store = VariableStore::InitFrom(*model.graph());
  Rng rng(34);
  std::vector<StepResult> samples;
  for (const FeedMap& feeds : model.TrainShards(2, rng)) {
    samples.push_back(executor.RunStep(store, feeds, model.loss()));
  }
  auto info = AnalyzeSparsity(*model.graph(), model.loss(), samples);
  std::vector<VariableSync> assignment =
      AssignGraphVariables(*model.graph(), info, HybridOptions{}, 8);
  const auto& vars = model.graph()->variables();
  for (size_t v = 0; v < vars.size(); ++v) {
    if (vars[v].partitioner_scope) {
      EXPECT_EQ(assignment[v].method, SyncMethod::kPs);
      EXPECT_EQ(assignment[v].partitions, 8) << vars[v].name;
    } else if (assignment[v].method == SyncMethod::kPs) {
      EXPECT_EQ(assignment[v].partitions, 1) << vars[v].name;
    }
  }
}

TEST(AnalysisTest, PartitionCountClampedToRows) {
  // A 5-row variable cannot be split 8 ways.
  Graph graph;
  Rng rng(35);
  NodeId ids = graph.Placeholder("ids", DataType::kInt64);
  NodeId labels = graph.Placeholder("labels", DataType::kInt64);
  NodeId emb;
  {
    PartitionerScope scope(graph);
    emb = graph.Variable("tiny", RandomNormal(TensorShape({5, 4}), rng));
  }
  NodeId loss = graph.SoftmaxXentMean(graph.Gather(emb, ids), labels);
  Executor executor(&graph);
  VariableStore store = VariableStore::InitFrom(graph);
  FeedMap feeds;
  feeds[ids] = Tensor::FromIndices({0, 1}, TensorShape({2}));
  feeds[labels] = Tensor::FromIndices({1, 3}, TensorShape({2}));
  std::vector<StepResult> samples = {executor.RunStep(store, feeds, loss)};
  auto info = AnalyzeSparsity(graph, loss, samples);
  std::vector<VariableSync> assignment =
      AssignGraphVariables(graph, info, HybridOptions{}, 8);
  EXPECT_EQ(assignment[0].partitions, 5);
}

}  // namespace
}  // namespace parallax
