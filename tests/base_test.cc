#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/strings.h"

namespace parallax {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(21);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextBounded(8)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(33);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng parent(5);
  Rng childa = parent.Fork(1);
  Rng childb = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childa.NextUint64() == childb.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, HeadHeavierThanTail) {
  ZipfSampler sampler(1000, 1.1);
  Rng rng(3);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sampler.Sample(rng) < 10) {
      ++head;
    }
  }
  // With exponent ~1 the top 10 of 1000 symbols carry a large probability mass.
  EXPECT_GT(head, n / 5);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  ZipfSampler sampler(100, 0.0);
  Rng rng(4);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(sampler.Sample(rng))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 100, n / 100 * 0.3);
  }
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_NEAR(StdDev(values), std::sqrt(1.25), 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 2.5);
}

TEST(StatsTest, Solve3x3Identity) {
  std::array<std::array<double, 3>, 3> a = {{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};
  std::array<double, 3> b = {3.0, -2.0, 7.5};
  std::array<double, 3> x = {};
  ASSERT_TRUE(Solve3x3(a, b, x));
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
  EXPECT_DOUBLE_EQ(x[2], 7.5);
}

TEST(StatsTest, Solve3x3Singular) {
  std::array<std::array<double, 3>, 3> a = {{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}}};
  std::array<double, 3> b = {1.0, 2.0, 3.0};
  std::array<double, 3> x = {};
  EXPECT_FALSE(Solve3x3(a, b, x));
}

TEST(StatsTest, FitLinear3RecoversCoefficients) {
  // y = 2 + 3*f1 + 0.5*f2 exactly.
  std::vector<std::array<double, 3>> features;
  std::vector<double> targets;
  for (int i = 1; i <= 12; ++i) {
    double f1 = 1.0 / i;
    double f2 = static_cast<double>(i);
    features.push_back({1.0, f1, f2});
    targets.push_back(2.0 + 3.0 * f1 + 0.5 * f2);
  }
  LeastSquaresFit fit = FitLinear3(features, targets);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.theta[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.theta[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.theta[2], 0.5, 1e-9);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.ToString().find("nope"), std::string::npos);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, Formatting) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(HumanBytes(1536.0), "1.50 KB");
  EXPECT_EQ(HumanCount(98900.0), "98.9k");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, GlobMatch) {
  EXPECT_TRUE(GlobMatch("embedding", "embedding"));
  EXPECT_TRUE(GlobMatch("embedding", "emb*"));
  EXPECT_TRUE(GlobMatch("softmax_emb", "*emb"));
  EXPECT_TRUE(GlobMatch("anything", "*"));
  EXPECT_TRUE(GlobMatch("", "*"));
  EXPECT_TRUE(GlobMatch("w1", "w?"));
  EXPECT_TRUE(GlobMatch("emb_enc", "emb*enc"));
  EXPECT_TRUE(GlobMatch("a_b_c", "a*b*c"));
  EXPECT_FALSE(GlobMatch("embedding", "emb"));
  EXPECT_FALSE(GlobMatch("emb", "embedding"));
  EXPECT_FALSE(GlobMatch("w12", "w?"));
  EXPECT_FALSE(GlobMatch("softmax_emb", "emb*"));
  EXPECT_FALSE(GlobMatch("abc", ""));
  EXPECT_TRUE(GlobMatch("", ""));
}

}  // namespace
}  // namespace parallax
