#include <gtest/gtest.h>

#include "src/core/frameworks.h"
#include "src/core/iteration_sim.h"
#include "src/models/model_zoo.h"

namespace parallax {
namespace {

// Cost-free configuration: isolates pure byte accounting so the Table 3 closed forms
// hold exactly (no index bytes, no CPU work, no latency contributions to counting).
IterationSimConfig ByteCountingConfig(bool machine_level = false) {
  IterationSimConfig config;
  config.include_index_bytes = false;
  config.ps_local_aggregation = machine_level;
  config.ps_machine_level_pulls = machine_level;
  config.costs = SyncCostParams{};
  return config;
}

VariableSync PsVar(int64_t elements, bool sparse, double alpha, int partitions = 1) {
  VariableSync sync;
  sync.spec.name = "v";
  sync.spec.num_elements = elements;
  sync.spec.row_elements = 1;
  sync.spec.is_sparse = sparse;
  sync.spec.alpha = sparse ? alpha : 1.0;
  sync.method = SyncMethod::kPs;
  sync.partitions = partitions;
  return sync;
}

// Table 3 property check, "m variables" rows: per-machine NIC bytes in the
// 1-worker-per-machine setting of the paper's analysis. Parameterized over
// (N machines, m variables, sparse?, alpha).
struct Table3Case {
  int machines;
  int num_variables;
  bool sparse;
  double alpha;
};

class Table3PsTest : public ::testing::TestWithParam<Table3Case> {};

TEST_P(Table3PsTest, PerMachineBytesMatchClosedForm) {
  const Table3Case c = GetParam();
  const int64_t w_elements = 1'000'000;  // w = 4MB
  ClusterSpec spec = ClusterSpec::SingleGpuMachines(c.machines);
  std::vector<VariableSync> vars;
  for (int i = 0; i < c.num_variables; ++i) {
    vars.push_back(PsVar(w_elements, c.sparse, c.alpha));
  }
  IterationSimulator sim(spec, vars, 0.01, 2, ByteCountingConfig());
  Cluster cluster(spec);
  sim.SimulateIteration(cluster, 0.0);

  const double w = static_cast<double>(w_elements) * 4;
  const double n = c.machines;
  const double m = c.num_variables;
  const double alpha = c.sparse ? c.alpha : 1.0;
  // Table 3, PS rows: 4*alpha*w*m*(N-1)/N per machine, aggregated over the cluster
  // (individual machines deviate when m % N != 0; totals match exactly).
  double expected_total = n * 4.0 * alpha * w * m * (n - 1) / n;
  double actual_total = 0.0;
  for (int machine = 0; machine < c.machines; ++machine) {
    actual_total += static_cast<double>(cluster.NicBytes(machine));
  }
  EXPECT_NEAR(actual_total, expected_total, expected_total * 0.01 + 1024);
  // With m a multiple of N, every machine matches the formula individually.
  if (c.num_variables % c.machines == 0) {
    for (int machine = 0; machine < c.machines; ++machine) {
      EXPECT_NEAR(static_cast<double>(cluster.NicBytes(machine)),
                  4.0 * alpha * w * m * (n - 1) / n,
                  expected_total * 0.01 / n + 1024)
          << "machine " << machine;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Table3PsTest,
    ::testing::Values(Table3Case{2, 2, false, 1.0}, Table3Case{4, 4, false, 1.0},
                      Table3Case{8, 8, false, 1.0}, Table3Case{8, 16, false, 1.0},
                      Table3Case{4, 6, false, 1.0}, Table3Case{2, 2, true, 0.1},
                      Table3Case{4, 8, true, 0.05}, Table3Case{8, 8, true, 0.02},
                      Table3Case{8, 24, true, 0.5}, Table3Case{5, 10, true, 0.3}));

TEST(Table3Test, SingleDenseVariableOwnerCarries2WNMinus1) {
  // Table 3 "One Variable" row, PS dense: the owning machine transfers 2w(N-1); every
  // other machine transfers only 2w. This asymmetry is the paper's incast argument.
  const int n = 8;
  const int64_t w_elements = 1'000'000;
  ClusterSpec spec = ClusterSpec::SingleGpuMachines(n);
  IterationSimulator sim(spec, {PsVar(w_elements, false, 1.0)}, 0.01, 2,
                         ByteCountingConfig());
  Cluster cluster(spec);
  sim.SimulateIteration(cluster, 0.0);
  const int64_t w = w_elements * 4;
  // Shard placement is round-robin starting at machine 0.
  EXPECT_EQ(cluster.NicBytes(0), 2 * w * (n - 1));
  for (int m = 1; m < n; ++m) {
    EXPECT_EQ(cluster.NicBytes(m), 2 * w);
  }
}

TEST(Table3Test, SingleSparseVariableScalesWithAlpha) {
  const int n = 4;
  const int64_t w_elements = 1'000'000;
  const double alpha = 0.25;
  ClusterSpec spec = ClusterSpec::SingleGpuMachines(n);
  IterationSimulator sim(spec, {PsVar(w_elements, true, alpha)}, 0.01, 2,
                         ByteCountingConfig());
  Cluster cluster(spec);
  sim.SimulateIteration(cluster, 0.0);
  const double w = static_cast<double>(w_elements) * 4;
  EXPECT_NEAR(static_cast<double>(cluster.NicBytes(0)), 2 * alpha * w * (n - 1),
              alpha * w * 0.01);
}

TEST(IterationSimTest, PartitioningParallelizesAggregation) {
  // Table 2's mechanism: at P=num_machines the per-shard accumulator chain serializes on
  // one core; more partitions spread it across cores and servers. Iteration time must
  // drop substantially from P=8 to P=128 and stop improving (or worsen) by P=1024.
  ClusterSpec spec = ClusterSpec::Paper();
  ModelSpec lm = LmSpec();
  FrameworkOptions options;
  auto time_at = [&](int partitions) {
    options.sparse_partitions = partitions;
    IterationSimulator sim = MakeFrameworkSimulator(Framework::kTfPs, spec, lm, options);
    return sim.MeasureIterationSeconds(3, 5);
  };
  double t8 = time_at(8);
  double t128 = time_at(128);
  double t1024 = time_at(1024);
  EXPECT_GT(t8, t128 * 1.3) << "partitioning should speed up LM substantially";
  EXPECT_GT(t1024, t128 * 0.99) << "past the optimum, overhead dominates";
}

TEST(IterationSimTest, ArBeatsNaivePsOnDenseModel) {
  // Table 1's dense rows: Horovod (AR) > TF-PS for ResNet-50/Inception-v3.
  ClusterSpec spec = ClusterSpec::Paper();
  ModelSpec resnet = ResNet50Spec();
  FrameworkOptions options;
  double ps = MeasureFrameworkThroughput(Framework::kTfPs, spec, resnet, options, 3, 5);
  double ar = MeasureFrameworkThroughput(Framework::kHorovod, spec, resnet, options, 3, 5);
  EXPECT_GT(ar, ps * 1.1);
}

TEST(IterationSimTest, PsBeatsArOnSparseModel) {
  // Table 1's sparse rows: TF-PS > Horovod for LM.
  ClusterSpec spec = ClusterSpec::Paper();
  ModelSpec lm = LmSpec();
  FrameworkOptions options;
  options.sparse_partitions = 128;
  double ps = MeasureFrameworkThroughput(Framework::kTfPs, spec, lm, options, 3, 5);
  double ar = MeasureFrameworkThroughput(Framework::kHorovod, spec, lm, options, 3, 5);
  EXPECT_GT(ps, ar * 1.3);
}

TEST(IterationSimTest, HybridAtLeastMatchesBothPureArchitectures) {
  // Section 6.3: "Parallax always outperforms or gives performance equal to both
  // TF-PS and Horovod" — checked on both model families.
  ClusterSpec spec = ClusterSpec::Paper();
  FrameworkOptions options;
  options.sparse_partitions = 64;
  for (const ModelSpec& model : {ResNet50Spec(), LmSpec(), NmtSpec()}) {
    double ps = MeasureFrameworkThroughput(Framework::kTfPs, spec, model, options, 3, 5);
    double ar = MeasureFrameworkThroughput(Framework::kHorovod, spec, model, options, 3, 5);
    double hybrid =
        MeasureFrameworkThroughput(Framework::kParallax, spec, model, options, 3, 5);
    EXPECT_GE(hybrid, ps * 0.98) << model.name;
    EXPECT_GE(hybrid, ar * 0.98) << model.name;
  }
}

TEST(IterationSimTest, LocalAggregationReducesServerTraffic) {
  // OptPS vs NaivePS on a sparse model: one push per machine instead of one per GPU.
  ClusterSpec spec = ClusterSpec::Paper();
  ModelSpec lm = LmSpec();
  FrameworkOptions options;
  options.sparse_partitions = 128;
  double naive = MeasureFrameworkThroughput(Framework::kTfPs, spec, lm, options, 3, 5);
  double opt = MeasureFrameworkThroughput(Framework::kOptPs, spec, lm, options, 3, 5);
  EXPECT_GT(opt, naive * 1.2);
}

TEST(IterationSimTest, IterationTimesReachSteadyState) {
  ClusterSpec spec = ClusterSpec::Paper();
  ModelSpec resnet = ResNet50Spec();
  FrameworkOptions options;
  IterationSimulator sim = MakeFrameworkSimulator(Framework::kParallax, spec, resnet, options);
  std::vector<double> durations = sim.RunIterations(10);
  // After warmup, consecutive iterations take (nearly) identical time — determinism.
  for (size_t i = 6; i < durations.size(); ++i) {
    EXPECT_NEAR(durations[i], durations[5], durations[5] * 0.02);
  }
}

TEST(IterationSimTest, ThroughputScalesWithMachines) {
  // Figure 8 shape: adding machines increases aggregate throughput for every framework
  // on the dense model.
  ModelSpec resnet = ResNet50Spec();
  FrameworkOptions options;
  for (Framework framework : {Framework::kTfPs, Framework::kHorovod, Framework::kParallax}) {
    double previous = 0.0;
    for (int machines : {1, 2, 4, 8}) {
      ClusterSpec spec = ClusterSpec::Paper();
      spec.num_machines = machines;
      double throughput =
          MeasureFrameworkThroughput(framework, spec, resnet, options, 3, 5);
      EXPECT_GT(throughput, previous) << FrameworkName(framework) << " @ " << machines;
      previous = throughput;
    }
  }
}

}  // namespace
}  // namespace parallax
