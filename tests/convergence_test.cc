// The convergence-envelope harness (tests/convergence_harness.h) applied to the
// compression engines: deterministic loss-vs-step trajectories on two models, compared
// against the uncompressed "ps" baseline. The envelope tolerances are regression
// bounds on a fully deterministic pipeline — loosening one to make a change pass IS
// the convergence regression the harness exists to catch (docs/compression.md).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/models/trainable.h"
#include "tests/convergence_harness.h"

namespace parallax {
namespace {

constexpr size_t kWindow = 8;

WordLmModel::Options ConvergenceLm(uint64_t seed) {
  return {.vocab_size = 100, .embedding_dim = 8, .hidden_dim = 12,
          .batch_per_rank = 16, .seed = seed};
}

TEST(ConvergenceEnvelopeTest, WordLmTopKWithErrorFeedbackStaysInEnvelope) {
  // Default "topk_ps": k/nnz ~= 0.1, error feedback on. Ten percent of the rows on
  // the wire every step, yet the residual accumulation keeps the trajectory inside a
  // tight envelope of the exact-gradient baseline.
  WordLmModel model(ConvergenceLm(860));
  std::vector<float> baseline = RunTrajectory(model, "ps");
  std::vector<float> compressed = RunTrajectory(model, "topk_ps");
  ExpectWithinEnvelope(compressed, baseline, kWindow, 0.05, "topk_ps/word_lm");
}

TEST(ConvergenceEnvelopeTest, WordLmInt8StaysInEnvelope) {
  // Per-row int8 is a much milder distortion than top-k (bounded by scale/2 per
  // element, no rows dropped): the envelope is correspondingly tighter.
  WordLmModel model(ConvergenceLm(861));
  std::vector<float> baseline = RunTrajectory(model, "ps");
  std::vector<float> compressed = RunTrajectory(model, "int8_ps");
  ExpectWithinEnvelope(compressed, baseline, kWindow, 0.01, "int8_ps/word_lm");
}

TEST(ConvergenceEnvelopeTest, EmbeddingSkewTopKAndInt8StayInEnvelope) {
  // The second model: skewed access ratios (a hot embedding plus a near-dense softmax
  // table) — the workload where per-variable compression meets per-variable
  // partitioning. Same envelope discipline.
  TrajectoryOptions options;
  options.steps = 30;
  EmbeddingSkewModel model(EmbeddingSkewModel::Options{.seed = 862});
  std::vector<float> baseline = RunTrajectory(model, "ps", options);
  std::vector<float> topk = RunTrajectory(model, "topk_ps", options);
  std::vector<float> int8 = RunTrajectory(model, "int8_ps", options);
  ExpectWithinEnvelope(topk, baseline, kWindow, 0.05, "topk_ps/embedding_skew");
  ExpectWithinEnvelope(int8, baseline, kWindow, 0.01, "int8_ps/embedding_skew");
}

TEST(ConvergenceEnvelopeTest, ErrorFeedbackBeatsNaiveTopK) {
  // The ablation the residual exists for: at the same ratio, dropping unsent rows
  // (naive) must converge strictly worse than accumulating them (error feedback).
  // Both runs are deterministic, so a strict < is a stable assertion.
  EnsureTopKEngine("topk_naive_cv", {.ratio = 0.1, .error_feedback = false});
  EnsureTopKEngine("topk_ef_cv", {.ratio = 0.1, .error_feedback = true});
  WordLmModel model(ConvergenceLm(863));
  std::vector<float> naive = RunTrajectory(model, "topk_naive_cv");
  std::vector<float> ef = RunTrajectory(model, "topk_ef_cv");
  ASSERT_FALSE(naive.empty());
  ASSERT_FALSE(ef.empty());
  EXPECT_LT(FinalWindowMean(ef, kWindow), FinalWindowMean(naive, kWindow));
}

TEST(ConvergenceEnvelopeTest, AggressiveRatioStillLearnsWithErrorFeedback) {
  // 3% of rows per step: far outside any useful envelope for this step budget, but
  // error feedback must still produce monotone-ish learning (final window strictly
  // below the start) — the DGC claim the residual mechanism reproduces.
  EnsureTopKEngine("topk_aggressive_cv", {.ratio = 0.03, .error_feedback = true});
  WordLmModel model(ConvergenceLm(864));
  std::vector<float> losses = RunTrajectory(model, "topk_aggressive_cv");
  ASSERT_FALSE(losses.empty());
  EXPECT_LT(FinalWindowMean(losses, kWindow), static_cast<double>(losses.front()));
}

TEST(ConvergenceEnvelopeTest, CompressedTrajectoriesAreDeterministic) {
  // The property every envelope above leans on: identical seeds produce bit-identical
  // loss curves, compression included (deterministic selection tie-break, pure
  // quantizer, engine-owned buffers).
  TrajectoryOptions options;
  options.steps = 12;
  for (const char* engine : {"topk_ps", "int8_ps"}) {
    WordLmModel model_a(ConvergenceLm(865));
    WordLmModel model_b(ConvergenceLm(865));
    EXPECT_EQ(RunTrajectory(model_a, engine, options),
              RunTrajectory(model_b, engine, options))
        << engine;
  }
}

}  // namespace
}  // namespace parallax
