// Naive reference implementations of the sparse aggregation kernels — the seed's
// semantics, kept verbatim in spirit as (a) the bit-for-bit oracle for the property
// tests and (b) the baseline the micro-benchmarks measure the fused path against.
// Shared by tests/sparse_fused_test.cc and bench/bench_micro.cc so the oracle and the
// benchmark baseline cannot drift apart.
#ifndef PARALLAX_TESTS_NAIVE_REFERENCE_H_
#define PARALLAX_TESTS_NAIVE_REFERENCE_H_

#include <algorithm>
#include <map>
#include <vector>

#include "src/ps/partition.h"
#include "src/tensor/indexed_slices.h"

namespace parallax {

// The seed Coalesced: std::map slot assignment, accumulation in input order.
inline IndexedSlices NaiveCoalesce(const IndexedSlices& slices) {
  int64_t row = slices.row_elements();
  std::map<int64_t, int64_t> first_slot;
  for (int64_t index : slices.indices()) {
    first_slot.emplace(index, 0);
  }
  std::vector<int64_t> out_indices;
  out_indices.reserve(first_slot.size());
  for (auto& [index, slot] : first_slot) {
    slot = static_cast<int64_t>(out_indices.size());
    out_indices.push_back(index);
  }
  Tensor out_values = Tensor::Zeros(
      slices.values().shape().WithDim0(static_cast<int64_t>(out_indices.size())));
  auto out = out_values.mutable_floats();
  auto in = slices.values().floats();
  for (int64_t i = 0; i < slices.nnz_rows(); ++i) {
    int64_t slot = first_slot[slices.indices()[static_cast<size_t>(i)]];
    for (int64_t j = 0; j < row; ++j) {
      out[static_cast<size_t>(slot * row + j)] += in[static_cast<size_t>(i * row + j)];
    }
  }
  return IndexedSlices(std::move(out_indices), std::move(out_values),
                       slices.dense_shape());
}

// The seed Sum: materialize the concatenation, then coalesce it.
inline IndexedSlices NaiveSum(const std::vector<IndexedSlices>& slices) {
  return NaiveCoalesce(IndexedSlices::Concat(slices));
}

// The seed ScatterSgdUpdate: one sequential pass in input order.
inline void NaiveScatterSgd(Tensor& params, const IndexedSlices& grad,
                            float learning_rate) {
  int64_t row = params.shape().row_elements();
  auto dst = params.mutable_floats();
  auto src = grad.values().floats();
  for (int64_t i = 0; i < grad.nnz_rows(); ++i) {
    int64_t base = grad.indices()[static_cast<size_t>(i)] * row;
    for (int64_t j = 0; j < row; ++j) {
      dst[static_cast<size_t>(base + j)] -=
          learning_rate * src[static_cast<size_t>(i * row + j)];
    }
  }
}

// The seed SplitSlicesByPartition: per-piece push_back growth, then a copy pass.
inline std::vector<IndexedSlices> NaiveSplit(const IndexedSlices& slices,
                                             const RowPartition& partition) {
  const int p_count = partition.num_partitions();
  const int64_t row = slices.row_elements();
  std::vector<std::vector<int64_t>> piece_indices(static_cast<size_t>(p_count));
  std::vector<std::vector<int64_t>> piece_source_rows(static_cast<size_t>(p_count));
  for (int64_t i = 0; i < slices.nnz_rows(); ++i) {
    int64_t global_row = slices.indices()[static_cast<size_t>(i)];
    int p = partition.PartitionOfRow(global_row);
    piece_indices[static_cast<size_t>(p)].push_back(global_row - partition.RowBegin(p));
    piece_source_rows[static_cast<size_t>(p)].push_back(i);
  }
  auto values = slices.values().floats();
  std::vector<IndexedSlices> pieces;
  for (int p = 0; p < p_count; ++p) {
    int64_t nnz = static_cast<int64_t>(piece_indices[static_cast<size_t>(p)].size());
    Tensor piece_values = Tensor::Zeros(slices.values().shape().WithDim0(nnz));
    auto dst = piece_values.mutable_floats();
    for (int64_t i = 0; i < nnz; ++i) {
      int64_t src_row = piece_source_rows[static_cast<size_t>(p)][static_cast<size_t>(i)];
      std::copy_n(values.begin() + static_cast<ptrdiff_t>(src_row * row), row,
                  dst.begin() + static_cast<ptrdiff_t>(i * row));
    }
    pieces.emplace_back(std::move(piece_indices[static_cast<size_t>(p)]),
                        std::move(piece_values),
                        slices.dense_shape().WithDim0(partition.RowsIn(p)));
  }
  return pieces;
}

}  // namespace parallax

#endif  // PARALLAX_TESTS_NAIVE_REFERENCE_H_
