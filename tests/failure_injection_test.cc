#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/core/frameworks.h"
#include "src/models/model_zoo.h"
#include "src/models/trainable.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

// Degraded-hardware scenarios: slow NIC, weak CPUs, fewer cores. The invariant: the
// numeric plane is untouched (same parameter values), only the simulated time shifts —
// and it shifts in the direction physics says it should.

TEST(FailureInjectionTest, DegradedNicSlowsIterationButStaysLive) {
  ModelSpec model = LmSpec();
  FrameworkOptions options;
  options.sparse_partitions = 64;
  ClusterSpec healthy = ClusterSpec::Paper();
  ClusterSpec degraded = healthy;
  degraded.nic_bandwidth /= 10.0;  // 10 Gbps instead of 100
  for (Framework framework : {Framework::kTfPs, Framework::kHorovod, Framework::kParallax}) {
    double fast = MakeFrameworkSimulator(framework, healthy, model, options)
                      .MeasureIterationSeconds(3, 4);
    double slow = MakeFrameworkSimulator(framework, degraded, model, options)
                      .MeasureIterationSeconds(3, 4);
    EXPECT_GT(slow, fast) << FrameworkName(framework);
    EXPECT_LT(slow, fast * 40) << FrameworkName(framework) << " (no livelock)";
  }
}

TEST(FailureInjectionTest, FewerCoresHurtsPsMoreThanAr) {
  // Server CPU is the PS bottleneck resource; AR barely uses it.
  ModelSpec model = LmSpec();
  FrameworkOptions options;
  options.sparse_partitions = 128;
  ClusterSpec healthy = ClusterSpec::Paper();
  ClusterSpec weak = healthy;
  weak.cores_per_machine = 4;
  double ps_ratio = MakeFrameworkSimulator(Framework::kTfPs, weak, model, options)
                        .MeasureIterationSeconds(3, 4) /
                    MakeFrameworkSimulator(Framework::kTfPs, healthy, model, options)
                        .MeasureIterationSeconds(3, 4);
  double ar_ratio = MakeFrameworkSimulator(Framework::kHorovod, weak, model, options)
                        .MeasureIterationSeconds(3, 4) /
                    MakeFrameworkSimulator(Framework::kHorovod, healthy, model, options)
                        .MeasureIterationSeconds(3, 4);
  EXPECT_GT(ps_ratio, ar_ratio);
}

TEST(FailureInjectionTest, SlowPcieHurtsLocalAggregationPath) {
  ModelSpec model = NmtSpec();
  FrameworkOptions options;
  options.sparse_partitions = 64;
  ClusterSpec healthy = ClusterSpec::Paper();
  ClusterSpec slow_pcie = healthy;
  slow_pcie.pcie_bandwidth /= 8.0;
  double healthy_s = MakeFrameworkSimulator(Framework::kOptPs, healthy, model, options)
                         .MeasureIterationSeconds(3, 4);
  double degraded_s = MakeFrameworkSimulator(Framework::kOptPs, slow_pcie, model, options)
                          .MeasureIterationSeconds(3, 4);
  EXPECT_GT(degraded_s, healthy_s * 1.2);
}

TEST(FailureInjectionTest, NumericsUnaffectedByHardwareDegradation) {
  // Train the same model on healthy and degraded hardware profiles: the learning
  // trajectory must be bit-identical; only the simulated clock differs.
  auto train = [](double nic_bandwidth) {
    WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                       .batch_per_rank = 12, .seed = 801});
    ParallaxConfig config;
    config.learning_rate = 0.4f;
    config.hardware.nic_bandwidth = nic_bandwidth;
    config.search.warmup_iterations = 2;
    config.search.measured_iterations = 2;
    GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                       config);
    Rng rng(81);
    float loss = 0.0f;
    for (int i = 0; i < 6; ++i) {
      loss = runner.Step(model.TrainShards(4, rng));
    }
    return std::make_pair(loss, runner.simulated_seconds());
  };
  auto [healthy_loss, healthy_time] = train(12.5e9);
  auto [degraded_loss, degraded_time] = train(1.25e9);
  EXPECT_EQ(healthy_loss, degraded_loss);
  EXPECT_GT(degraded_time, healthy_time);
}

TEST(FailureInjectionTest, RankDeathRecoversFromLastCheckpointWithBoundedReplay) {
  // The crash-recovery contract (docs/elasticity.md): a run that dies between
  // checkpoints resumes from the LAST checkpoint via a fresh runner + RestoreFrom and
  // replays at most interval_steps steps — and because partition layout never touches
  // the numerics, the replayed steps reproduce the uninterrupted run bit-for-bit on
  // the same sample sequence. The recovery is also honestly charged: the recovered
  // clock ends strictly above the uninterrupted one (it paid the checkpoint read).
  WordLmModel model({.vocab_size = 100, .embedding_dim = 8, .hidden_dim = 12,
                     .batch_per_rank = 16, .seed = 811});
  constexpr int kSteps = 12;
  constexpr int kInterval = 4;
  constexpr int kDeathStep = 10;  // dies 2 steps after the checkpoint at step 8
  Rng feed_rng(91);
  std::vector<std::vector<FeedMap>> feed_log;
  feed_log.reserve(kSteps);
  for (int i = 0; i < kSteps; ++i) {
    feed_log.push_back(model.TrainShards(2, feed_rng));
  }
  auto build = [&](const std::string& path) {
    auto runner = RunnerBuilder(model.graph(), model.loss())
                      .WithResources(ResourceSpec::Homogeneous(2, 1))
                      .WithLearningRate(0.4f)
                      .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                      .WithCheckpoint(path, kInterval)
                      .Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    return std::move(runner).value();
  };

  const std::string path_a = std::string(::testing::TempDir()) + "/fi_uninterrupted.px";
  auto uninterrupted = build(path_a);
  std::vector<float> reference_losses;
  for (int i = 0; i < kSteps; ++i) {
    reference_losses.push_back(uninterrupted->Step(feed_log[i]));
  }

  const std::string path_b = std::string(::testing::TempDir()) + "/fi_interrupted.px";
  {
    auto doomed = build(path_b);
    for (int i = 0; i < kDeathStep; ++i) {
      doomed->Step(feed_log[i]);
    }
    // Rank death: the runner is destroyed here with 2 steps of progress never saved.
  }

  auto recovered = build(path_b);
  ASSERT_TRUE(recovered->RestoreFrom(path_b).ok());
  ASSERT_EQ(recovered->last_checkpoint_step(), 8);
  const int replayed = kSteps - static_cast<int>(recovered->last_checkpoint_step());
  EXPECT_LE(replayed, kInterval);  // bounded replay: never more than one interval
  std::vector<float> replay_losses;
  for (int i = static_cast<int>(recovered->last_checkpoint_step()); i < kSteps; ++i) {
    replay_losses.push_back(recovered->Step(feed_log[i]));
  }
  EXPECT_EQ(recovered->iterations(), kSteps);
  for (int k = 0; k < replayed; ++k) {
    EXPECT_EQ(replay_losses[static_cast<size_t>(k)],
              reference_losses[static_cast<size_t>(kSteps - replayed + k)])
        << "replayed step " << kSteps - replayed + k;
  }
  VariableStore recovered_view = recovered->WorkerView();
  VariableStore reference_view = uninterrupted->WorkerView();
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(recovered_view.Get(static_cast<int>(v)),
                         reference_view.Get(static_cast<int>(v)), 0.0f))
        << model.graph()->variables()[v].name;
  }
  EXPECT_GT(recovered->simulated_seconds(), uninterrupted->simulated_seconds());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(FailureInjectionTest, RestoreOntoLiveRunnerRewindsToTheCheckpoint) {
  // The non-deferred restore path: RestoreFrom on an already-initialized runner swaps
  // the live engine values and rewinds the step counter to the checkpoint's.
  WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 812});
  ParallaxConfig config;
  config.learning_rate = 0.4f;
  config.search.warmup_iterations = 2;
  config.search.measured_iterations = 2;
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 1),
                     config);
  Rng rng(92);
  std::vector<std::vector<FeedMap>> feed_log;
  for (int i = 0; i < 8; ++i) {
    feed_log.push_back(model.TrainShards(2, rng));
  }
  for (int i = 0; i < 4; ++i) {
    runner.Step(feed_log[static_cast<size_t>(i)]);
  }
  const std::string path = std::string(::testing::TempDir()) + "/fi_rewind.px";
  ASSERT_TRUE(runner.CheckpointTo(path).ok());
  VariableStore at_checkpoint = runner.WorkerView();
  std::vector<float> first_pass;
  for (int i = 4; i < 8; ++i) {
    first_pass.push_back(runner.Step(feed_log[static_cast<size_t>(i)]));
  }

  ASSERT_TRUE(runner.RestoreFrom(path).ok());
  EXPECT_EQ(runner.iterations(), 4);
  VariableStore rewound = runner.WorkerView();
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(rewound.Get(static_cast<int>(v)),
                         at_checkpoint.Get(static_cast<int>(v)), 0.0f))
        << model.graph()->variables()[v].name;
  }
  // Replaying the same feeds reproduces the same losses, bit-for-bit.
  std::vector<float> second_pass;
  for (int i = 4; i < 8; ++i) {
    second_pass.push_back(runner.Step(feed_log[static_cast<size_t>(i)]));
  }
  EXPECT_EQ(first_pass, second_pass);
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, StragglerGpuStretchesEveryIteration) {
  // Synchronous training runs at the pace of the slowest worker: doubling one model's
  // compute on a uniform cluster vs making the whole cluster 2x slower should both
  // stretch iterations — the barrier semantics the chief-worker protocol implies.
  ModelSpec model = ResNet50Spec();
  FrameworkOptions options;
  ClusterSpec cluster = ClusterSpec::Paper();
  double base = MakeFrameworkSimulator(Framework::kParallax, cluster, model, options)
                    .MeasureIterationSeconds(3, 4);
  ModelSpec slow_model = model;
  slow_model.gpu_compute_seconds *= 2.0;
  double slow = MakeFrameworkSimulator(Framework::kParallax, cluster, slow_model, options)
                    .MeasureIterationSeconds(3, 4);
  EXPECT_GT(slow, base * 1.8);
}

}  // namespace
}  // namespace parallax
