#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/core/frameworks.h"
#include "src/models/model_zoo.h"
#include "src/models/trainable.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

// Degraded-hardware scenarios: slow NIC, weak CPUs, fewer cores. The invariant: the
// numeric plane is untouched (same parameter values), only the simulated time shifts —
// and it shifts in the direction physics says it should.

TEST(FailureInjectionTest, DegradedNicSlowsIterationButStaysLive) {
  ModelSpec model = LmSpec();
  FrameworkOptions options;
  options.sparse_partitions = 64;
  ClusterSpec healthy = ClusterSpec::Paper();
  ClusterSpec degraded = healthy;
  degraded.nic_bandwidth /= 10.0;  // 10 Gbps instead of 100
  for (Framework framework : {Framework::kTfPs, Framework::kHorovod, Framework::kParallax}) {
    double fast = MakeFrameworkSimulator(framework, healthy, model, options)
                      .MeasureIterationSeconds(3, 4);
    double slow = MakeFrameworkSimulator(framework, degraded, model, options)
                      .MeasureIterationSeconds(3, 4);
    EXPECT_GT(slow, fast) << FrameworkName(framework);
    EXPECT_LT(slow, fast * 40) << FrameworkName(framework) << " (no livelock)";
  }
}

TEST(FailureInjectionTest, FewerCoresHurtsPsMoreThanAr) {
  // Server CPU is the PS bottleneck resource; AR barely uses it.
  ModelSpec model = LmSpec();
  FrameworkOptions options;
  options.sparse_partitions = 128;
  ClusterSpec healthy = ClusterSpec::Paper();
  ClusterSpec weak = healthy;
  weak.cores_per_machine = 4;
  double ps_ratio = MakeFrameworkSimulator(Framework::kTfPs, weak, model, options)
                        .MeasureIterationSeconds(3, 4) /
                    MakeFrameworkSimulator(Framework::kTfPs, healthy, model, options)
                        .MeasureIterationSeconds(3, 4);
  double ar_ratio = MakeFrameworkSimulator(Framework::kHorovod, weak, model, options)
                        .MeasureIterationSeconds(3, 4) /
                    MakeFrameworkSimulator(Framework::kHorovod, healthy, model, options)
                        .MeasureIterationSeconds(3, 4);
  EXPECT_GT(ps_ratio, ar_ratio);
}

TEST(FailureInjectionTest, SlowPcieHurtsLocalAggregationPath) {
  ModelSpec model = NmtSpec();
  FrameworkOptions options;
  options.sparse_partitions = 64;
  ClusterSpec healthy = ClusterSpec::Paper();
  ClusterSpec slow_pcie = healthy;
  slow_pcie.pcie_bandwidth /= 8.0;
  double healthy_s = MakeFrameworkSimulator(Framework::kOptPs, healthy, model, options)
                         .MeasureIterationSeconds(3, 4);
  double degraded_s = MakeFrameworkSimulator(Framework::kOptPs, slow_pcie, model, options)
                          .MeasureIterationSeconds(3, 4);
  EXPECT_GT(degraded_s, healthy_s * 1.2);
}

TEST(FailureInjectionTest, NumericsUnaffectedByHardwareDegradation) {
  // Train the same model on healthy and degraded hardware profiles: the learning
  // trajectory must be bit-identical; only the simulated clock differs.
  auto train = [](double nic_bandwidth) {
    WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                       .batch_per_rank = 12, .seed = 801});
    ParallaxConfig config;
    config.learning_rate = 0.4f;
    config.hardware.nic_bandwidth = nic_bandwidth;
    config.search.warmup_iterations = 2;
    config.search.measured_iterations = 2;
    GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                       config);
    Rng rng(81);
    float loss = 0.0f;
    for (int i = 0; i < 6; ++i) {
      loss = runner.Step(model.TrainShards(4, rng));
    }
    return std::make_pair(loss, runner.simulated_seconds());
  };
  auto [healthy_loss, healthy_time] = train(12.5e9);
  auto [degraded_loss, degraded_time] = train(1.25e9);
  EXPECT_EQ(healthy_loss, degraded_loss);
  EXPECT_GT(degraded_time, healthy_time);
}

TEST(FailureInjectionTest, StragglerGpuStretchesEveryIteration) {
  // Synchronous training runs at the pace of the slowest worker: doubling one model's
  // compute on a uniform cluster vs making the whole cluster 2x slower should both
  // stretch iterations — the barrier semantics the chief-worker protocol implies.
  ModelSpec model = ResNet50Spec();
  FrameworkOptions options;
  ClusterSpec cluster = ClusterSpec::Paper();
  double base = MakeFrameworkSimulator(Framework::kParallax, cluster, model, options)
                    .MeasureIterationSeconds(3, 4);
  ModelSpec slow_model = model;
  slow_model.gpu_compute_seconds *= 2.0;
  double slow = MakeFrameworkSimulator(Framework::kParallax, cluster, slow_model, options)
                    .MeasureIterationSeconds(3, 4);
  EXPECT_GT(slow, base * 1.8);
}

}  // namespace
}  // namespace parallax
