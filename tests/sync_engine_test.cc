// The SyncEngine seam: registry round-trips, builder validation, per-variable engine
// routing, the async engine reached through the runner, and elastic re-partitioning
// via re-Prepare.
#include <gtest/gtest.h>

#include "src/ar/ar_numeric.h"
#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/models/trainable.h"
#include "src/ps/ps_async.h"
#include "src/ps/ps_numeric.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

WordLmModel::Options SmallLm(uint64_t seed) {
  return {.vocab_size = 100, .embedding_dim = 6, .hidden_dim = 10,
          .batch_per_rank = 12, .seed = seed};
}

RunnerBuilder SmallBuilder(WordLmModel& model) {
  RunnerBuilder builder(model.graph(), model.loss());
  builder.WithResources("m0:0,1;m1:0,1")
      .WithLearningRate(0.3f)
      .WithSearch({.warmup_iterations = 2, .measured_iterations = 2});
  return builder;
}

TEST(SyncEngineRegistryTest, BuiltinsAreRegistered) {
  SyncEngineRegistry& registry = SyncEngineRegistry::Global();
  EXPECT_TRUE(registry.Contains("ps"));
  EXPECT_TRUE(registry.Contains("ar"));
  EXPECT_TRUE(registry.Contains("async_ps"));
  EXPECT_TRUE(registry.Contains("topk_ps"));
  EXPECT_TRUE(registry.Contains("int8_ps"));
  EXPECT_FALSE(registry.Contains("nccl"));
}

TEST(SyncEngineRegistryTest, CreateNamesTheEngineAndRejectsUnknown) {
  WordLmModel model(SmallLm(920));
  SyncEngineEnv env{model.graph(), 4};
  std::unique_ptr<SyncEngine> engine = SyncEngineRegistry::Global().Create("ps", env);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), "ps");
  EXPECT_EQ(engine->CostMethod(GradKind::kSparse), SyncMethod::kPs);
  EXPECT_EQ(SyncEngineRegistry::Global().Create("does_not_exist", env), nullptr);
}

TEST(SyncEngineRegistryTest, CreateCheckedNamesTheUnknownEngineAndTheAlternatives) {
  // The checked factory turns a typo into an actionable Status: NotFound, carrying the
  // offending name and the registered alternatives, instead of a bare nullptr.
  WordLmModel model(SmallLm(931));
  SyncEngineEnv env{model.graph(), 4};
  auto engine = SyncEngineRegistry::Global().CreateChecked("warp_drive", env);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
  EXPECT_NE(engine.status().ToString().find("warp_drive"), std::string::npos);
  EXPECT_NE(engine.status().ToString().find("ps"), std::string::npos);

  auto ok = SyncEngineRegistry::Global().CreateChecked("ps", env);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value()->name(), "ps");
}

TEST(SyncEngineRegistryTest, DuplicateRegistrationIsRejectedWithTheOffendingName) {
  Status status = SyncEngineRegistry::Global().Register(
      "ps", [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
        return std::make_unique<PsNumericEngine>(env.graph);
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("'ps'"), std::string::npos);
  // The original registration is untouched.
  WordLmModel model(SmallLm(932));
  SyncEngineEnv env{model.graph(), 2};
  auto engine = SyncEngineRegistry::Global().Create("ps", env);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->CostMethod(GradKind::kSparse), SyncMethod::kPs);
}

TEST(SyncEngineRegistryTest, RejectsEmptyNameAndNullFactory) {
  Status empty_name = SyncEngineRegistry::Global().Register(
      "", [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
        return std::make_unique<PsNumericEngine>(env.graph);
      });
  EXPECT_EQ(empty_name.code(), StatusCode::kInvalidArgument);
  Status null_factory = SyncEngineRegistry::Global().Register("null_factory", nullptr);
  ASSERT_FALSE(null_factory.ok());
  EXPECT_EQ(null_factory.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(null_factory.ToString().find("null_factory"), std::string::npos);
  EXPECT_FALSE(SyncEngineRegistry::Global().Contains("null_factory"));
}

TEST(SyncEngineRegistryTest, RegisteredStrategyRoundTripsThroughBuilder) {
  // A custom registration is reachable by name from RunnerBuilder::WithEngine and
  // trains exactly like the engine it wraps.
  const std::string name = "ps_roundtrip";
  if (!SyncEngineRegistry::Global().Contains(name)) {
    ASSERT_TRUE(SyncEngineRegistry::Global()
                    .Register(name,
                              [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
                                return std::make_unique<PsNumericEngine>(env.graph);
                              })
                    .ok());
  }
  std::vector<std::string> names = SyncEngineRegistry::Global().Names();
  EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());

  auto train = [&](const std::string& engine) {
    WordLmModel model(SmallLm(921));
    auto runner = SmallBuilder(model).WithEngine("*", engine).Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    Rng rng(91);
    float loss = 0.0f;
    for (int i = 0; i < 4; ++i) {
      loss = runner.value()->Step(model.TrainShards(4, rng));
    }
    for (size_t v = 0; v < runner.value()->plan().engines.size(); ++v) {
      EXPECT_EQ(runner.value()->plan().engines[v], engine);
    }
    return std::make_pair(loss, runner.value()->simulated_seconds());
  };
  auto [loss_custom, time_custom] = train(name);
  auto [loss_ps, time_ps] = train("ps");
  EXPECT_EQ(loss_custom, loss_ps);
  EXPECT_EQ(time_custom, time_ps);
}

TEST(RunnerBuilderTest, ValidatesInputs) {
  WordLmModel model(SmallLm(922));
  EXPECT_FALSE(RunnerBuilder(nullptr, model.loss()).WithResources("a:0").Build().ok());
  EXPECT_FALSE(RunnerBuilder(model.graph(), model.loss()).Build().ok());  // no resources
  EXPECT_FALSE(
      RunnerBuilder(model.graph(), model.loss()).WithResources("not-a-spec").Build().ok());
  EXPECT_FALSE(RunnerBuilder(model.graph(), model.loss())
                   .WithResources("a:0,1;b:0")  // heterogeneous
                   .Build()
                   .ok());
  auto unknown_engine = RunnerBuilder(model.graph(), model.loss())
                            .WithResources("a:0,1;b:0,1")
                            .WithEngine("emb*", "warp_drive")
                            .Build();
  ASSERT_FALSE(unknown_engine.ok());
  EXPECT_NE(unknown_engine.status().ToString().find("warp_drive"), std::string::npos);
  EXPECT_TRUE(RunnerBuilder(model.graph(), model.loss())
                  .WithResources("a:0,1;b:0,1")
                  .WithEngine("emb*", "async_ps")
                  .Build()
                  .ok());
}

TEST(AsyncEngineTest, ReachableFromRunnerAndAppliesEveryPush) {
  // The satellite fix: PushGradients is now on the runner's step path. One runner step
  // with R ranks performs R pushes in rank order; values move (training progresses) and
  // the run is deterministic.
  auto train = [] {
    WordLmModel model(SmallLm(923));
    auto runner = SmallBuilder(model).WithEngine("*", "async_ps").Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    Rng rng(93);
    float first = runner.value()->Step(model.TrainShards(4, rng));
    float last = first;
    for (int i = 0; i < 39; ++i) {
      last = runner.value()->Step(model.TrainShards(4, rng));
    }
    auto* engine = dynamic_cast<AsyncPsEngine*>(runner.value()->engine("async_ps"));
    EXPECT_NE(engine, nullptr);
    EXPECT_EQ(engine->pushes_applied(), 40 * 4);
    EXPECT_LT(last, first * 0.8f);  // async SGD still learns
    return last;
  };
  EXPECT_EQ(train(), train());  // deterministic arrival order => deterministic run
}

TEST(AsyncEngineTest, StepDiffersFromSynchronousPsTrajectory) {
  // Rank r+1's push lands on values rank r already moved — after one step the values
  // must differ from the synchronous aggregated update (the staleness of section 2.1).
  WordLmModel async_model(SmallLm(924));
  WordLmModel sync_model(SmallLm(924));
  auto async_runner = SmallBuilder(async_model).WithEngine("*", "async_ps").Build();
  auto sync_runner = SmallBuilder(sync_model)
                         .WithEngine("*", "ps")
                         .WithAggregation(AggregationMethod::kSum, AggregationMethod::kSum)
                         .Build();
  ASSERT_TRUE(async_runner.ok() && sync_runner.ok());
  Rng rng(94);
  std::vector<FeedMap> shards = async_model.TrainShards(4, rng);
  async_runner.value()->Step(shards);
  sync_runner.value()->Step(shards);
  VariableStore async_view = async_runner.value()->WorkerView();
  VariableStore sync_view = sync_runner.value()->WorkerView();
  float max_diff = 0.0f;
  for (size_t v = 0; v < async_model.graph()->variables().size(); ++v) {
    max_diff = std::max(max_diff, MaxAbsDiff(async_view.Get(static_cast<int>(v)),
                                             sync_view.Get(static_cast<int>(v))));
  }
  EXPECT_GT(max_diff, 1e-6f);
}

TEST(RepartitionTest, RePrepareSwapsPartitionsAndPreservesValues) {
  WordLmModel model(SmallLm(925));
  auto runner = SmallBuilder(model).WithManualPartitions(2).Build();
  ASSERT_TRUE(runner.ok());
  Rng rng(95);
  for (int i = 0; i < 3; ++i) {
    runner.value()->Step(model.TrainShards(4, rng));
  }
  VariableStore before = runner.value()->WorkerView();

  runner.value()->Repartition(5);

  EXPECT_EQ(runner.value()->chosen_sparse_partitions(), 5);
  VariableStore after = runner.value()->WorkerView();
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(before.Get(static_cast<int>(v)), after.Get(static_cast<int>(v)),
                         0.0f))
        << "re-Prepare must preserve values: " << model.graph()->variables()[v].name;
  }
  // The new layout shows up in the plan and the transformed graph.
  for (const VariableSync& sync : runner.value()->assignment()) {
    if (sync.method == SyncMethod::kPs && sync.spec.name == "embedding") {
      EXPECT_EQ(sync.partitions, 5);
    }
  }
  EXPECT_NE(runner.value()->distributed_graph().FindPiece(0, 4), nullptr);
}

TEST(RepartitionTest, TrainingTrajectoryUnchangedAcrossRepartition) {
  // Partitioning is layout, not math: a run that re-partitions mid-training must keep
  // producing the exact losses of an untouched run.
  auto train = [](bool repartition) {
    WordLmModel model(SmallLm(926));
    auto runner = RunnerBuilder(model.graph(), model.loss())
                      .WithResources("m0:0,1;m1:0,1")
                      .WithLearningRate(0.3f)
                      .WithManualPartitions(2)
                      .Build();
    EXPECT_TRUE(runner.ok());
    Rng rng(96);
    std::vector<float> losses;
    for (int i = 0; i < 8; ++i) {
      if (repartition && i == 4) {
        runner.value()->Repartition(7);
      }
      losses.push_back(runner.value()->Step(model.TrainShards(4, rng)));
    }
    return losses;
  };
  EXPECT_EQ(train(true), train(false));
}

TEST(RepartitionTest, PlacementRoundTripPreservesValuesAndStampsAssignment) {
  // A placement is layout metadata: pinning the embedding's shards to explicit
  // servers, moving them, and releasing them back to round-robin must preserve every
  // variable bit-for-bit at each hop, and the placement must be visible in the
  // SyncPlan exactly while a plan carries it.
  WordLmModel model(SmallLm(929));
  auto runner = SmallBuilder(model).WithManualPartitions(2).Build();
  ASSERT_TRUE(runner.ok());
  Rng rng(98);
  for (int i = 0; i < 3; ++i) {
    runner.value()->Step(model.TrainShards(4, rng));
  }
  VariableStore before = runner.value()->WorkerView();

  auto expect_unchanged = [&](const char* hop) {
    VariableStore view = runner.value()->WorkerView();
    for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
      EXPECT_TRUE(AllClose(before.Get(static_cast<int>(v)),
                           view.Get(static_cast<int>(v)), 0.0f))
          << hop << ": " << model.graph()->variables()[v].name;
    }
  };
  auto embedding_placement = [&]() -> const std::vector<int>& {
    for (const VariableSync& sync : runner.value()->assignment()) {
      if (sync.spec.name == "embedding") {
        return sync.placement;
      }
    }
    static const std::vector<int> none;
    return none;
  };

  PartitionPlan pinned = PartitionPlan::Uniform(2);
  pinned.SetPlacement("embedding", {1, 0});  // both pieces, swapped vs round-robin
  runner.value()->Repartition(pinned);
  expect_unchanged("pin");
  EXPECT_EQ(embedding_placement(), (std::vector<int>{1, 0}));

  PartitionPlan moved = PartitionPlan::Uniform(2);
  moved.SetPlacement("embedding", {1, 1});  // migrate piece 1 across machines
  runner.value()->Repartition(moved);
  expect_unchanged("move");
  EXPECT_EQ(embedding_placement(), (std::vector<int>{1, 1}));

  runner.value()->Repartition(PartitionPlan::Uniform(2));  // release to round-robin
  expect_unchanged("release");
  EXPECT_TRUE(embedding_placement().empty());

  // The layout metadata round-trips through the runner's adopted plan too.
  EXPECT_EQ(runner.value()->partition_plan().PlacementFor("embedding"), nullptr);
}

TEST(RepartitionTest, TrajectoryUnchangedAcrossPlacementRoundTrip) {
  // Placement changes mid-training must never touch the math: a run that pins, moves,
  // and releases shard placements produces the exact losses of an untouched run.
  auto train = [](bool place) {
    WordLmModel model(SmallLm(930));
    auto runner = RunnerBuilder(model.graph(), model.loss())
                      .WithResources("m0:0,1;m1:0,1")
                      .WithLearningRate(0.3f)
                      .WithManualPartitions(2)
                      .Build();
    EXPECT_TRUE(runner.ok());
    Rng rng(99);
    std::vector<float> losses;
    for (int i = 0; i < 9; ++i) {
      if (place && (i == 3 || i == 6)) {
        PartitionPlan plan = PartitionPlan::Uniform(2);
        if (i == 3) {
          plan.SetPlacement("embedding", {1, 0});
        }  // i == 6 releases the placement again
        runner.value()->Repartition(plan);
      }
      losses.push_back(runner.value()->Step(model.TrainShards(4, rng)));
    }
    return losses;
  };
  EXPECT_EQ(train(true), train(false));
}

TEST(SyncEngineInterfaceTest, PreparedEnginesExposeManagedViews) {
  // Direct interface use: Prepare routes, View exposes exactly the managed variables.
  WordLmModel model(SmallLm(927));
  SyncPlan plan;
  plan.variables.resize(model.graph()->variables().size());
  plan.engines.assign(model.graph()->variables().size(), "ar");
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    plan.variables[v].spec.name = model.graph()->variables()[v].name;
    if (model.graph()->variables()[v].name == "embedding") {
      plan.engines[v] = "ps";
    }
  }
  plan.num_ranks = 2;

  SyncEngineEnv env{model.graph(), 2};
  auto ps = SyncEngineRegistry::Global().Create("ps", env);
  auto ar = SyncEngineRegistry::Global().Create("ar", env);
  ps->Prepare(plan);
  ar->Prepare(plan);
  VariableStore ps_view = ps->View();
  VariableStore ar_view = ar->View();
  size_t total = 0;
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    int key = static_cast<int>(v);
    bool is_embedding = model.graph()->variables()[v].name == "embedding";
    EXPECT_EQ(ps_view.Contains(key), is_embedding);
    EXPECT_EQ(ar_view.Contains(key), !is_embedding);
    total += ps_view.Contains(key) + ar_view.Contains(key);
  }
  EXPECT_EQ(total, model.graph()->variables().size());
}

TEST(PartitionPlanShimTest, IntEntryPointsAreExactUniformPlanShims) {
  // Every int-P entry point must produce literally the uniform plan: same layout, same
  // introspection, bit-identical training. WithManualPartitions(p) vs
  // WithPartitionPlan(Uniform(p)), then Repartition(int) vs Repartition(plan).
  WordLmModel model(SmallLm(928));
  auto build = [&](bool via_plan) {
    RunnerBuilder builder(model.graph(), model.loss());
    builder.WithResources("m0:0,1;m1:0,1").WithLearningRate(0.3f);
    if (via_plan) {
      builder.WithPartitionPlan(PartitionPlan::Uniform(5));
    } else {
      builder.WithManualPartitions(5);
    }
    auto runner = builder.Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    return std::move(runner.value());
  };
  std::unique_ptr<GraphRunner> via_int = build(false);
  std::unique_ptr<GraphRunner> via_plan = build(true);

  Rng rng(97);
  std::vector<std::vector<FeedMap>> shards;
  for (int s = 0; s < 4; ++s) {
    shards.push_back(model.TrainShards(4, rng));
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(via_int->Step(shards[static_cast<size_t>(s)]),
              via_plan->Step(shards[static_cast<size_t>(s)]));
    if (s == 1) {
      via_int->Repartition(3);
      via_plan->Repartition(PartitionPlan::Uniform(3));
    }
  }
  EXPECT_EQ(via_int->partition_plan(), via_plan->partition_plan());
  EXPECT_TRUE(via_int->partition_plan().uniform());
  EXPECT_EQ(via_int->partition_plan().default_partitions(), 3);
  EXPECT_EQ(via_int->chosen_sparse_partitions(), 3);
  ASSERT_EQ(via_int->assignment().size(), via_plan->assignment().size());
  for (size_t v = 0; v < via_int->assignment().size(); ++v) {
    EXPECT_EQ(via_int->assignment()[v].partitions, via_plan->assignment()[v].partitions);
  }
  VariableStore int_view = via_int->WorkerView();
  VariableStore plan_view = via_plan->WorkerView();
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(int_view.Get(static_cast<int>(v)),
                         plan_view.Get(static_cast<int>(v)), 0.0f));
  }
}

}  // namespace
}  // namespace parallax
