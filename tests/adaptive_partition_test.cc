// The adaptive re-partitioning loop (docs/adaptivity.md): alpha schedules produce
// drift, the SparsityMonitor measures it from the engines' nnz observations, and the
// runner re-searches + Repartitions when the measured state warrants it. Covers the
// estimator (union inversion, EWMA convergence), the policy gates (warmup / interval /
// cooldown / hysteresis), the end-to-end adaptive-vs-pinned demo, and determinism of
// the whole trajectory.
#include <gtest/gtest.h>

#include <cmath>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/core/sparsity_monitor.h"
#include "src/data/synthetic.h"
#include "src/models/trainable.h"
#include "src/tensor/tensor_ops.h"
#include "tests/drift_scenario.h"

namespace parallax {
namespace {

// ---- AlphaSchedule -------------------------------------------------------------------

TEST(AlphaScheduleTest, EmptyMeansConstantOne) {
  AlphaSchedule schedule;
  EXPECT_EQ(schedule.ValueAt(0), 1.0);
  EXPECT_EQ(schedule.ValueAt(1'000'000), 1.0);
}

TEST(AlphaScheduleTest, InterpolatesBetweenKnotsAndClampsOutside) {
  AlphaSchedule schedule{{{10, 0.2}, {20, 0.6}, {40, 0.6}}};
  EXPECT_DOUBLE_EQ(schedule.ValueAt(0), 0.2);    // clamped before the first knot
  EXPECT_DOUBLE_EQ(schedule.ValueAt(10), 0.2);
  EXPECT_DOUBLE_EQ(schedule.ValueAt(15), 0.4);   // halfway between 0.2 and 0.6
  EXPECT_DOUBLE_EQ(schedule.ValueAt(20), 0.6);
  EXPECT_DOUBLE_EQ(schedule.ValueAt(30), 0.6);   // flat plateau
  EXPECT_DOUBLE_EQ(schedule.ValueAt(99), 0.6);   // clamped after the last knot
}

TEST(AlphaScheduleTest, StepChangeSwitchesHard) {
  AlphaSchedule schedule = AlphaSchedule::StepChange(10, 0.1, 0.9);
  EXPECT_DOUBLE_EQ(schedule.ValueAt(0), 0.1);
  EXPECT_DOUBLE_EQ(schedule.ValueAt(9), 0.1);
  EXPECT_DOUBLE_EQ(schedule.ValueAt(10), 0.9);
  EXPECT_DOUBLE_EQ(schedule.ValueAt(50), 0.9);
}

TEST(ZipfBigramTextTest, ActiveFractionRestrictsSampledIds) {
  ZipfBigramText text({.vocab_size = 200,
                       .zipf_exponent = 0.5,
                       .noise = 0.0,
                       .seed = 5,
                       .active_fraction = AlphaSchedule::StepChange(10, 0.1, 1.0)});
  EXPECT_EQ(text.ActiveVocab(0), 20);
  EXPECT_EQ(text.ActiveVocab(10), 200);
  Rng rng(17);
  TokenBatch early = text.Sample(256, rng, 0);
  int64_t early_max = 0;
  for (int64_t id : early.ids.ints()) {
    early_max = std::max(early_max, id);
  }
  EXPECT_LT(early_max, 20);
  TokenBatch late = text.Sample(256, rng, 10);
  int64_t late_max = 0;
  for (int64_t id : late.ids.ints()) {
    late_max = std::max(late_max, id);
  }
  EXPECT_GE(late_max, 20);  // the full vocabulary is active again
}

// ---- SparsityMonitor estimation ------------------------------------------------------

TEST(SparsityMonitorTest, PerWorkerObservationsConvergeExactly) {
  // contributions == 1 observations are direct ratios: the EWMA converges
  // geometrically onto the true alpha from any baseline.
  SparsityMonitor monitor({.ewma_decay = 0.25, .warmup_steps = 8});
  monitor.Track(0, 1000, /*baseline_alpha=*/0.5);
  double expected_at_warmup = 0.5;
  for (int step = 0; step < 60; ++step) {
    monitor.ObserveSparseStep(0, 120, 1);
    monitor.EndStep();
    if (step < 8) {
      expected_at_warmup = 0.75 * expected_at_warmup + 0.25 * 0.12;
    }
  }
  EXPECT_NEAR(monitor.measured_alpha(0), 0.12, 1e-6);
  // The baseline self-calibrated to the EWMA at the end of warmup and stays there
  // until a verdict re-anchors it.
  EXPECT_NEAR(monitor.baseline_alpha(0), expected_at_warmup, 1e-12);
}

TEST(SparsityMonitorTest, UnionObservationsInvertToPerWorkerAlpha) {
  // k-rank unions are inverted through 1-(1-u)^(1/k). Feed the exact union of the
  // independent-access model and expect the true per-worker alpha back.
  const double alpha = 0.12;
  const int ranks = 4;
  const int64_t rows = 10'000;
  const double union_ratio = 1.0 - std::pow(1.0 - alpha, ranks);
  const auto union_rows = static_cast<int64_t>(std::llround(union_ratio * rows));
  SparsityMonitor monitor({.ewma_decay = 0.3});
  monitor.Track(7, rows, /*baseline_alpha=*/0.5);
  for (int step = 0; step < 80; ++step) {
    monitor.ObserveSparseStep(7, union_rows, ranks);
    monitor.EndStep();
  }
  EXPECT_NEAR(monitor.measured_alpha(7), alpha, 1e-3);
}

TEST(SparsityMonitorTest, UntrackedVariablesAreIgnored) {
  SparsityMonitor monitor({.ewma_decay = 0.5});
  monitor.Track(3, 100, 0.2);
  monitor.ObserveSparseStep(99, 100, 1);  // never registered: no effect, no crash
  monitor.EndStep();
  EXPECT_FALSE(monitor.Tracks(99));
  EXPECT_DOUBLE_EQ(monitor.measured_alpha(3), 0.2);  // no observation, EWMA untouched
}

TEST(SparsityMonitorTest, DriftGatesHonorWarmupIntervalAndCooldown) {
  // Decay 1 pins the EWMA to the newest observation, so the gate arithmetic is the
  // only moving part.
  SparsityMonitor monitor(
      {.ewma_decay = 1.0, .warmup_steps = 4, .check_interval = 3, .cooldown_steps = 6});
  monitor.Track(0, 100, 0.5);
  auto run_steps = [&](int n) {
    for (int i = 0; i < n; ++i) {
      monitor.ObserveSparseStep(0, 10, 1);
      monitor.EndStep();
    }
  };
  run_steps(3);
  EXPECT_FALSE(monitor.DriftCheckDue());  // still in warmup
  run_steps(1);
  EXPECT_TRUE(monitor.DriftCheckDue());   // warmup over, interval satisfied
  monitor.NoteCheck();
  EXPECT_FALSE(monitor.DriftCheckDue());  // interval restarts after a check
  run_steps(3);
  EXPECT_TRUE(monitor.DriftCheckDue());
  AdaptationVerdict verdict;
  verdict.adopted = true;
  monitor.RecordVerdict(verdict);
  EXPECT_EQ(monitor.repartition_count(), 1);
  run_steps(3);
  EXPECT_FALSE(monitor.DriftCheckDue());  // cooldown (6) outlasts the interval (3)
  run_steps(3);
  EXPECT_TRUE(monitor.DriftCheckDue());
  // RecordVerdict re-anchored the baseline onto the EWMA: measured drift collapses.
  int argmax = -1;
  EXPECT_LT(monitor.MaxRelativeDrift(&argmax), 0.2);
  EXPECT_EQ(argmax, 0);
}

// ---- Runner integration --------------------------------------------------------------

// DriftingLm / AccumulationDominatedCosts — the canonical drift scenario — live in
// tests/drift_scenario.h, shared with the equivalence suite's monitoring invariant.

AdaptivePartitioningPolicy TestPolicy(bool repartition) {
  AdaptivePartitioningPolicy policy;
  policy.ewma_decay = 0.5;  // settle fast: tests run tens of steps, not thousands
  policy.drift_threshold = 0.3;
  policy.hysteresis = 0.02;
  policy.warmup_steps = 4;
  policy.check_interval = 4;
  policy.cooldown_steps = 100;  // at most one verdict per run: trajectories stay small
  policy.repartition = repartition;
  return policy;
}

struct AdaptiveRun {
  std::vector<float> losses;
  std::vector<AdaptationVerdict> trail;
  double simulated_seconds = 0.0;
  int chosen_partitions = 0;
  int repartitions = 0;
  double measured_alpha_embedding = 0.0;
};

AdaptiveRun TrainDriftingLm(uint64_t seed, int steps, int64_t drift_step,
                            bool adaptive, bool repartition) {
  WordLmModel model(DriftingLm(seed, drift_step));
  RunnerBuilder builder(model.graph(), model.loss());
  builder.WithResources("m0:0,1;m1:0,1")
      .WithLearningRate(0.3f)
      .WithSyncCosts(AccumulationDominatedCosts())
      .WithCompute(2e-3, 4)
      .WithSearch({.warmup_iterations = 2, .measured_iterations = 2});
  if (adaptive) {
    builder.WithAdaptivePartitioning(TestPolicy(repartition));
  }
  auto runner = builder.Build();
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  AdaptiveRun run;
  Rng rng(seed * 31 + 7);
  for (int step = 0; step < steps; ++step) {
    run.losses.push_back(runner.value()->Step(model.TrainShards(4, rng, step)));
  }
  run.simulated_seconds = runner.value()->simulated_seconds();
  run.chosen_partitions = runner.value()->chosen_sparse_partitions();
  run.repartitions = runner.value()->adaptive_repartitions();
  if (const SparsityMonitor* monitor = runner.value()->sparsity_monitor()) {
    run.trail = monitor->trail();
    for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
      if (model.graph()->variables()[v].name == "embedding") {
        run.measured_alpha_embedding = monitor->measured_alpha(static_cast<int>(v));
      }
    }
  }
  return run;
}

TEST(AdaptiveRunnerTest, MeasuredAlphaConvergesToTheDataDistribution) {
  // Constant full-vocabulary distribution: the closed-form per-worker access ratio of
  // B near-uniform draws over V rows is 1-(1-1/V)^B. The monitor's EWMA (fed by union
  // observations through the inversion) must land within a few percent of it.
  const int64_t vocab = 250;
  const int64_t batch = 64;
  AdaptiveRun run = TrainDriftingLm(/*seed=*/41, /*steps=*/30,
                                    /*drift_step=*/0,  // full vocab from step 0
                                    /*adaptive=*/true, /*repartition=*/false);
  const double expected =
      1.0 - std::pow(1.0 - 1.0 / static_cast<double>(vocab), static_cast<double>(batch));
  EXPECT_GT(run.measured_alpha_embedding, expected * 0.85);
  EXPECT_LT(run.measured_alpha_embedding, expected * 1.15);
}

TEST(AdaptiveRunnerTest, DriftTriggersRepartitionThatLowersSimulatedTime) {
  // The end-to-end demo: same data, same drift, same policy cadence — one run may
  // repartition, the control is pinned to its startup layout. The adaptive run must
  // (a) actually repartition, (b) beat the pinned run on the simulated clock, and
  // (c) produce bit-identical losses (partitioning is layout, never math).
  const int kSteps = 40;
  const int64_t kDriftStep = 10;
  AdaptiveRun adaptive = TrainDriftingLm(42, kSteps, kDriftStep, true, true);
  AdaptiveRun pinned = TrainDriftingLm(42, kSteps, kDriftStep, true, false);

  ASSERT_EQ(adaptive.repartitions, 1);
  ASSERT_EQ(adaptive.trail.size(), 1u);
  const AdaptationVerdict& verdict = adaptive.trail.front();
  EXPECT_TRUE(verdict.adopted);
  EXPECT_GT(verdict.step, kDriftStep);  // reacted to the drift, not the startup state
  EXPECT_NE(verdict.to_partitions, verdict.from_partitions);
  EXPECT_EQ(adaptive.chosen_partitions, verdict.to_partitions);
  // The hysteresis contract, on the simulated numbers the decision actually used.
  EXPECT_LT(verdict.best_seconds, verdict.current_seconds * (1.0 - 0.02));
  EXPECT_GT(verdict.drift, 0.3);

  EXPECT_EQ(pinned.repartitions, 0);
  EXPECT_EQ(pinned.chosen_partitions, verdict.from_partitions);
  // Both runs' timing planes track the measured alphas (the pinned run records the
  // same drift verdicts, it just never swaps the layout), so the clock comparison is
  // apples to apples — and the adaptive layout must win.
  ASSERT_EQ(pinned.trail.size(), 1u);
  EXPECT_FALSE(pinned.trail.front().adopted);
  EXPECT_LT(adaptive.simulated_seconds, pinned.simulated_seconds);

  // Layout never touches the numerics.
  ASSERT_EQ(adaptive.losses.size(), pinned.losses.size());
  for (size_t s = 0; s < adaptive.losses.size(); ++s) {
    EXPECT_EQ(adaptive.losses[s], pinned.losses[s]) << "loss diverged at step " << s;
  }
}

TEST(AdaptiveRunnerTest, TrajectoryIsDeterministic) {
  AdaptiveRun first = TrainDriftingLm(43, 32, 10, true, true);
  AdaptiveRun second = TrainDriftingLm(43, 32, 10, true, true);
  EXPECT_EQ(first.losses, second.losses);
  EXPECT_EQ(first.simulated_seconds, second.simulated_seconds);
  EXPECT_EQ(first.chosen_partitions, second.chosen_partitions);
  ASSERT_EQ(first.trail.size(), second.trail.size());
  for (size_t i = 0; i < first.trail.size(); ++i) {
    EXPECT_EQ(first.trail[i].step, second.trail[i].step);
    EXPECT_EQ(first.trail[i].variable, second.trail[i].variable);
    EXPECT_EQ(first.trail[i].from_partitions, second.trail[i].from_partitions);
    EXPECT_EQ(first.trail[i].to_partitions, second.trail[i].to_partitions);
    EXPECT_EQ(first.trail[i].adopted, second.trail[i].adopted);
    EXPECT_EQ(first.trail[i].current_seconds, second.trail[i].current_seconds);
    EXPECT_EQ(first.trail[i].best_seconds, second.trail[i].best_seconds);
  }
}

TEST(AdaptiveRunnerTest, HysteresisSuppressesFlappingUnderNoisyAlpha) {
  // A noisy (oscillating) schedule keeps crossing the drift threshold, but an
  // unattainable hysteresis margin must veto every adoption: the layout never moves,
  // while the trail records the vetoed verdicts.
  WordLmModel::Options options = DriftingLm(44, 0);
  options.active_vocab_fraction =
      AlphaSchedule{{{0, 0.06}, {6, 1.0}, {12, 0.06}, {18, 1.0}, {24, 0.06}}};
  WordLmModel model(options);
  AdaptivePartitioningPolicy policy = TestPolicy(true);
  policy.hysteresis = 1.0;   // nothing can improve by 100%
  policy.cooldown_steps = 4; // re-check often: give flapping every chance to happen
  auto runner = RunnerBuilder(model.graph(), model.loss())
                    .WithResources("m0:0,1;m1:0,1")
                    .WithLearningRate(0.3f)
                    .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                    .WithAdaptivePartitioning(policy)
                    .Build();
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  Rng rng(91);
  const int initial_partitions = [&] {
    runner.value()->Step(model.TrainShards(4, rng, 0));
    return runner.value()->chosen_sparse_partitions();
  }();
  for (int step = 1; step < 30; ++step) {
    runner.value()->Step(model.TrainShards(4, rng, step));
  }
  EXPECT_EQ(runner.value()->adaptive_repartitions(), 0);
  EXPECT_EQ(runner.value()->chosen_sparse_partitions(), initial_partitions);
  const SparsityMonitor* monitor = runner.value()->sparsity_monitor();
  ASSERT_NE(monitor, nullptr);
  EXPECT_GE(monitor->trail().size(), 1u);  // drift was seen...
  for (const AdaptationVerdict& verdict : monitor->trail()) {
    EXPECT_FALSE(verdict.adopted);         // ...but never acted on
    EXPECT_EQ(verdict.to_partitions, verdict.from_partitions);
  }
}

TEST(AdaptiveRunnerTest, MonitorAbsentWithoutPolicyAndHarmlessWithoutSparseVars) {
  // No policy -> no monitor.
  WordLmModel model(DriftingLm(45, 0));
  auto plain = RunnerBuilder(model.graph(), model.loss())
                   .WithResources("m0:0,1;m1:0,1")
                   .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                   .Build();
  ASSERT_TRUE(plain.ok());
  Rng rng(92);
  plain.value()->Step(model.TrainShards(4, rng));
  EXPECT_EQ(plain.value()->sparsity_monitor(), nullptr);
  EXPECT_EQ(plain.value()->adaptive_repartitions(), 0);

  // Dense-only model: policy requested, nothing observable -> monitor disabled, runs fine.
  MlpClassifierModel dense({.feature_dims = 10, .num_classes = 5, .hidden_dim = 12,
                            .batch_per_rank = 12, .seed = 46});
  auto runner = RunnerBuilder(dense.graph(), dense.loss())
                    .WithResources("m0:0,1;m1:0,1")
                    .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                    .WithAdaptivePartitioning(TestPolicy(true))
                    .Build();
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  Rng dense_rng(93);
  for (int step = 0; step < 6; ++step) {
    runner.value()->Step(dense.TrainShards(4, dense_rng));
  }
  EXPECT_EQ(runner.value()->sparsity_monitor(), nullptr);
  EXPECT_EQ(runner.value()->adaptive_repartitions(), 0);
}

// ---- Per-variable partition plans ----------------------------------------------------

TEST(PerVariablePlanTest, SkewedModelAdoptsHeterogeneousPlanBeatingBestUniform) {
  // The acceptance scenario: one hot embedding (alpha ~ 0.004) + one near-dense
  // softmax table (alpha ~ 0.6). The per-variable search must adopt a heterogeneous
  // plan — few pieces for the hot table, many for the wide one — whose simulated
  // iteration time beats the best *uniform* P by a clear margin.
  EmbeddingSkewModel model(SkewedTwoVarModel(29));
  auto runner = RunnerBuilder(model.graph(), model.loss())
                    .WithResources("m0:0,1;m1:0,1")
                    .WithSearchMode(PartitionSearchMode::kPerVariable)
                    .WithSyncCosts(SkewedPartitionCosts())
                    .WithCompute(1e-3, 4)
                    .Build();
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  Rng rng(41);
  runner.value()->Step(model.TrainShards(4, rng));

  const PartitionPlan& plan = runner.value()->partition_plan();
  const int hot = plan.For("hot_embedding");
  const int wide = plan.For("wide_softmax");
  EXPECT_LT(hot, wide) << "plan " << plan.ToString();   // heterogeneous, right shape
  EXPECT_LE(hot, 2) << "hot embedding wants (nearly) whole";
  EXPECT_GE(wide, 6) << "wide table wants many pieces";
  // The deprecated single-number accessor reports the max over the plan.
  EXPECT_EQ(runner.value()->chosen_sparse_partitions(), plan.MaxPartitions());
  // The adopted counts flow into the SyncPlan (and so into every engine's shards).
  for (const VariableSync& sync : runner.value()->assignment()) {
    if (sync.spec.name == "hot_embedding") {
      EXPECT_EQ(sync.partitions, hot);
    }
    if (sync.spec.name == "wide_softmax") {
      EXPECT_EQ(sync.partitions, wide);
    }
  }

  const auto& search = runner.value()->plan_search();
  ASSERT_TRUE(search.has_value());
  EXPECT_EQ(search->plan, plan);
  // Beats the best uniform layout on the simulated clock — by at least 5% here
  // (measured gap in this scenario is ~20%; see docs/perf.md).
  EXPECT_LT(search->seconds, search->uniform_seconds * (1.0 - 0.05));
}

TEST(PerVariablePlanTest, PerVariableSearchIsDeterministic) {
  auto run_once = [] {
    EmbeddingSkewModel model(SkewedTwoVarModel(29));
    auto runner = RunnerBuilder(model.graph(), model.loss())
                      .WithResources("m0:0,1;m1:0,1")
                      .WithSearchMode(PartitionSearchMode::kPerVariable)
                      .WithSyncCosts(SkewedPartitionCosts())
                      .WithCompute(1e-3, 4)
                      .Build();
    EXPECT_TRUE(runner.ok());
    Rng rng(41);
    runner.value()->Step(model.TrainShards(4, rng));
    return std::make_pair(runner.value()->partition_plan(),
                          runner.value()->plan_search()->seconds);
  };
  auto [first_plan, first_seconds] = run_once();
  auto [second_plan, second_seconds] = run_once();
  EXPECT_EQ(first_plan, second_plan);
  EXPECT_EQ(first_seconds, second_seconds);
}

TEST(PerVariablePlanTest, AdaptiveLoopResearchesPerVariableOnDriftAndChargesMigration) {
  // Drift under PartitionSearchMode::kPerVariable: the re-search runs at the monitor's
  // measured alphas, adopts a plan (not just a shared P), and the adoption step's clock
  // delta exceeds a steady-state iteration by exactly the verdict's migration cost.
  WordLmModel model(DriftingLm(48, /*drift_step=*/10));
  auto runner = RunnerBuilder(model.graph(), model.loss())
                    .WithResources("m0:0,1;m1:0,1")
                    .WithLearningRate(0.3f)
                    .WithSyncCosts(AccumulationDominatedCosts())
                    .WithCompute(2e-3, 4)
                    .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                    .WithSearchMode(PartitionSearchMode::kPerVariable)
                    .WithAdaptivePartitioning(TestPolicy(true))
                    .Build();
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  Rng rng(48 * 31 + 7);
  double previous_delta = 0.0;
  double adoption_delta = -1.0;
  double before = 0.0;
  for (int step = 0; step < 40; ++step) {
    const int repartitions_before = runner.value()->adaptive_repartitions();
    runner.value()->Step(model.TrainShards(4, rng, step));
    const double delta = runner.value()->simulated_seconds() - before;
    before = runner.value()->simulated_seconds();
    if (runner.value()->adaptive_repartitions() > repartitions_before) {
      adoption_delta = delta;
      break;
    }
    previous_delta = delta;
  }
  ASSERT_GT(adoption_delta, 0.0) << "drift never produced an adopted repartition";

  const SparsityMonitor* monitor = runner.value()->sparsity_monitor();
  ASSERT_NE(monitor, nullptr);
  const AdaptationVerdict& verdict = monitor->trail().back();
  EXPECT_TRUE(verdict.adopted);
  EXPECT_TRUE(verdict.amortized);
  EXPECT_GT(verdict.migration_seconds, 0.0);
  EXPECT_NE(verdict.from_plan, verdict.to_plan);
  EXPECT_EQ(runner.value()->partition_plan(), verdict.to_plan);
  // The clock charge: the adoption step simulated the *old* layout (MaybeAdapt runs
  // after the clock advanced) and then paid the migration on top. The step before ran
  // the same layout in steady state, so the difference is exactly the migration.
  EXPECT_NEAR(adoption_delta - previous_delta, verdict.migration_seconds,
              1e-9 + 0.01 * verdict.migration_seconds);
}

TEST(PerVariablePlanTest, UnamortizedMigrationVetoesAdoption) {
  // Same drift, same win — but a short revisit window (max(cooldown_steps=1,
  // check_interval=4) = 4 steps) cannot amortize a migration inflated by expensive
  // per-piece request handling (the request cost parallelizes across server cores
  // inside an iteration, so the win itself barely moves). The verdict must record
  // hysteresis-clearing improvement that is vetoed purely by amortization.
  auto run = [](int cooldown_steps) {
    WordLmModel model(DriftingLm(49, /*drift_step=*/10));
    SyncCostParams costs = AccumulationDominatedCosts();
    costs.request_overhead_seconds = 300e-6;
    AdaptivePartitioningPolicy policy = TestPolicy(true);
    policy.cooldown_steps = cooldown_steps;
    auto runner = RunnerBuilder(model.graph(), model.loss())
                      .WithResources("m0:0,1;m1:0,1")
                      .WithLearningRate(0.3f)
                      .WithSyncCosts(costs)
                      .WithCompute(2e-3, 4)
                      .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                      .WithAdaptivePartitioning(policy)
                      .Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    Rng rng(49 * 31 + 7);
    for (int step = 0; step < 40; ++step) {
      runner.value()->Step(model.TrainShards(4, rng, step));
    }
    return std::move(runner.value());
  };

  std::unique_ptr<GraphRunner> starved = run(/*cooldown_steps=*/1);
  const SparsityMonitor* monitor = starved->sparsity_monitor();
  ASSERT_NE(monitor, nullptr);
  ASSERT_GE(monitor->trail().size(), 1u);
  const AdaptationVerdict& vetoed = monitor->trail().front();
  EXPECT_FALSE(vetoed.adopted);
  EXPECT_FALSE(vetoed.amortized);
  EXPECT_GT(vetoed.migration_seconds, 0.0);
  // The candidate was good enough on pure iteration time — amortization is what said no.
  EXPECT_LT(vetoed.best_seconds, vetoed.current_seconds * (1.0 - 0.02));
  EXPECT_EQ(starved->adaptive_repartitions(), 0);

  // A realistic window amortizes the same migration and adopts.
  std::unique_ptr<GraphRunner> patient = run(/*cooldown_steps=*/100);
  ASSERT_GE(patient->sparsity_monitor()->trail().size(), 1u);
  const AdaptationVerdict& adopted = patient->sparsity_monitor()->trail().front();
  EXPECT_TRUE(adopted.amortized);
  EXPECT_TRUE(adopted.adopted);
  EXPECT_EQ(patient->adaptive_repartitions(), 1);
}

TEST(AdaptiveRunnerTest, BuilderValidatesPolicy) {
  WordLmModel model(DriftingLm(47, 0));
  auto bad = [&](AdaptivePartitioningPolicy policy) {
    return RunnerBuilder(model.graph(), model.loss())
        .WithResources("m0:0,1;m1:0,1")
        .WithAdaptivePartitioning(policy)
        .Build();
  };
  AdaptivePartitioningPolicy policy;
  policy.ewma_decay = 0.0;
  EXPECT_FALSE(bad(policy).ok());
  policy = {};
  policy.check_interval = 0;
  EXPECT_FALSE(bad(policy).ok());
  policy = {};
  policy.hysteresis = -0.1;
  EXPECT_FALSE(bad(policy).ok());
  EXPECT_TRUE(bad(AdaptivePartitioningPolicy{}).ok());
}

}  // namespace
}  // namespace parallax
