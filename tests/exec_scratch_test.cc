// The executor's gradient buffer plan (ExecScratch):
//  - RunStep with a persistent scratch is bit-identical to scratch-free execution,
//  - once warm, the backward pass reuses its gradient buffers: steady-state steps with
//    a scratch allocate measurably less than scratch-free steps,
//  - gradients escaping into the StepResult never alias the scratch (mutating a
//    returned gradient cannot corrupt the next step).
//
// Allocation counting replaces global operator new/delete for this binary; the counters
// are only inspected inside explicit windows, so gtest's own allocations don't matter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/base/rng.h"
#include "src/graph/executor.h"
#include "src/models/trainable.h"
#include "src/tensor/tensor_ops.h"

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

// GCC pairs the replaced operator new (malloc-backed) with the replaced operator
// delete (free-backed) across inlining and then warns about the very pairing these
// replacements establish; the combination is intentional.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace parallax {
namespace {

size_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

constexpr int kSteps = 8;

std::vector<FeedMap> FixedFeeds(WordLmModel& model, int steps) {
  Rng rng(77);
  std::vector<FeedMap> feeds;
  for (int s = 0; s < steps; ++s) {
    feeds.push_back(model.TrainShards(1, rng)[0]);
  }
  return feeds;
}

TEST(ExecScratchTest, BitIdenticalToScratchFreeExecution) {
  WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 551});
  Executor executor(model.graph());
  VariableStore store_scratch = VariableStore::InitFrom(*model.graph());
  VariableStore store_plain = VariableStore::InitFrom(*model.graph());
  ExecScratch scratch;
  std::vector<FeedMap> feeds = FixedFeeds(model, kSteps);

  for (int s = 0; s < kSteps; ++s) {
    StepResult with = executor.RunStep(store_scratch, feeds[static_cast<size_t>(s)],
                                       model.loss(), &scratch);
    StepResult without =
        executor.RunStep(store_plain, feeds[static_cast<size_t>(s)], model.loss());
    EXPECT_EQ(with.loss, without.loss) << "step " << s;
    ASSERT_EQ(with.grads.size(), without.grads.size());
    for (const auto& [v, grad] : without.grads) {
      auto it = with.grads.find(v);
      ASSERT_NE(it, with.grads.end());
      const TensorShape& shape = model.graph()->variables()[static_cast<size_t>(v)].shape;
      EXPECT_TRUE(
          AllClose(it->second.ToDense(shape), grad.ToDense(shape), 0.0f))
          << "grad of " << model.graph()->variables()[static_cast<size_t>(v)].name
          << " at step " << s;
      // Apply so later steps run on evolving values.
      store_plain.ApplySgd(v, grad, 0.3f);
      store_scratch.ApplySgd(v, it->second, 0.3f);
    }
  }
}

TEST(ExecScratchTest, SteadyStateAllocatesLessThanScratchFree) {
  WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 552});
  Executor executor(model.graph());
  VariableStore store = VariableStore::InitFrom(*model.graph());
  std::vector<FeedMap> feeds = FixedFeeds(model, kSteps);
  ExecScratch scratch;
  // Warm the plan: first step sizes every buffer.
  executor.RunStep(store, feeds[0], model.loss(), &scratch);
  executor.RunStep(store, feeds[0], model.loss());

  size_t before = AllocCount();
  for (int s = 0; s < kSteps; ++s) {
    executor.RunStep(store, feeds[static_cast<size_t>(s)], model.loss(), &scratch);
  }
  size_t with_scratch = AllocCount() - before;

  before = AllocCount();
  for (int s = 0; s < kSteps; ++s) {
    executor.RunStep(store, feeds[static_cast<size_t>(s)], model.loss());
  }
  size_t without_scratch = AllocCount() - before;

  // The escaping gradients (variable nodes, sparse slices) still allocate; the interior
  // backward pass must not. Half is a loose bound — the observed ratio is far lower.
  std::fprintf(stderr, "allocs with=%zu without=%zu\n", with_scratch, without_scratch);
  EXPECT_LT(with_scratch, without_scratch / 2)
      << "with=" << with_scratch << " without=" << without_scratch;
}

TEST(ExecScratchTest, EscapedGradientsDoNotAliasTheScratch) {
  WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 553});
  Executor executor(model.graph());
  VariableStore store = VariableStore::InitFrom(*model.graph());
  ExecScratch scratch;
  std::vector<FeedMap> feeds = FixedFeeds(model, 2);

  StepResult first = executor.RunStep(store, feeds[0], model.loss(), &scratch);
  // Corrupt every returned gradient, then re-run the same feed: if the scratch aliased
  // the escaped tensors, the poison would leak into the next step's results.
  StepResult probe = executor.RunStep(store, feeds[0], model.loss(), &scratch);
  for (auto& [v, grad] : first.grads) {
    Tensor& values = grad.is_sparse() ? grad.mutable_sparse().mutable_values()
                                      : grad.mutable_dense();
    for (float& x : values.mutable_floats()) {
      x = 1e30f;
    }
  }
  StepResult clean = executor.RunStep(store, feeds[0], model.loss(), &scratch);
  EXPECT_EQ(clean.loss, probe.loss);
  for (const auto& [v, grad] : probe.grads) {
    const TensorShape& shape = model.graph()->variables()[static_cast<size_t>(v)].shape;
    EXPECT_TRUE(AllClose(clean.grads.at(v).ToDense(shape), grad.ToDense(shape), 0.0f));
  }
}

}  // namespace
}  // namespace parallax
