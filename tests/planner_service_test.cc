// PlannerService correctness:
//  - a service plan is byte-identical (ToString + placements) to a private-arena
//    SearchPartitionPlan at the same canonicalized key — the cache never changes the
//    answer, only who pays for it,
//  - a cache hit returns the same plan state as the search that populated it,
//  - N threads issuing the same query coalesce onto ONE simulation; distinct keys
//    search separately,
//  - LRU eviction respects the configured capacity,
//  - ApplyPlanToVariables replicates the runner's row-cap/placement gate,
//  - a runner using the shared planner trains bit-identically to a private-search
//    runner (monitored and unmonitored alike).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/models/trainable.h"
#include "src/service/planner_service.h"

namespace parallax {
namespace {

ClusterSpec TinySpec() {
  ClusterSpec spec;
  spec.num_machines = 4;
  spec.gpus_per_machine = 2;
  spec.cores_per_machine = 4;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 1e-6;
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 1e-6;
  return spec;
}

// A hybrid two-sparse-one-dense model, embedding searchable per-variable.
PlannerQuery MakeQuery(double embedding_alpha, double softmax_alpha = 0.05) {
  PlannerQuery query;
  VariableSync embedding;
  embedding.spec = {"embedding", 640'000, 64, true, embedding_alpha};
  embedding.method = SyncMethod::kPs;
  query.variables.push_back({embedding, /*partitioned=*/true, /*rows=*/10'000});
  VariableSync softmax;
  softmax.spec = {"softmax", 320'000, 64, true, softmax_alpha};
  softmax.method = SyncMethod::kPs;
  query.variables.push_back({softmax, /*partitioned=*/true, /*rows=*/5'000});
  VariableSync dense;
  dense.spec = {"dense", 500'000, 1, false, 1.0};
  dense.method = SyncMethod::kArAllReduce;
  query.variables.push_back({dense, /*partitioned=*/false, /*rows=*/1});

  PartitionSearchVariable emb_target;
  emb_target.name = "embedding";
  emb_target.alpha = embedding_alpha;
  emb_target.num_elements = 640'000;
  emb_target.max_partitions = 10'000;
  query.targets.push_back(emb_target);
  PartitionSearchVariable sm_target;
  sm_target.name = "softmax";
  sm_target.alpha = softmax_alpha;
  sm_target.num_elements = 320'000;
  sm_target.max_partitions = 5'000;
  query.targets.push_back(sm_target);

  query.cluster = TinySpec();
  query.sim_config.ps_local_aggregation = true;
  query.sim_config.ps_machine_level_pulls = true;
  query.gpu_compute_seconds = 4e-3;
  query.compute_chunks = 4;
  query.options.initial_partitions = 4;
  query.options.warmup_iterations = 2;
  query.options.measured_iterations = 2;
  return query;
}

// The private-arena oracle: exactly the search the service would run for the
// canonicalized query, on a fresh arena with no cache anywhere.
PartitionPlanSearchResult PrivateSearch(const PlannerQuery& canonical) {
  SimulationArena arena;
  auto measure_plan = [&](const PartitionPlan& plan) {
    IterationSimulator sim(canonical.cluster,
                           ApplyPlanToVariables(canonical.variables, plan),
                           canonical.gpu_compute_seconds, canonical.compute_chunks,
                           canonical.sim_config, &arena);
    return sim.MeasureIterationSeconds(canonical.options.warmup_iterations,
                                       canonical.options.measured_iterations);
  };
  return SearchPartitionPlan(measure_plan, canonical.targets, canonical.options);
}

void ExpectPlansIdentical(const PartitionPlan& a, const PartitionPlan& b) {
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.placements(), b.placements());
  EXPECT_TRUE(a == b);
}

TEST(PlannerServiceTest, PlanMatchesPrivateArenaSearchByteForByte) {
  PlannerService service;
  PlannerQuery query = MakeQuery(0.02);
  PlannerResult result = service.Plan(query);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_FALSE(result.uniform);

  PlannerQuery canonical = query;
  service.Canonicalize(&canonical);
  PartitionPlanSearchResult oracle = PrivateSearch(canonical);
  ExpectPlansIdentical(result.plan, oracle.plan);
  EXPECT_EQ(result.seconds, oracle.seconds);
  EXPECT_EQ(result.uniform_seconds, oracle.uniform_seconds);
  EXPECT_EQ(result.evaluations, oracle.evaluations);
}

TEST(PlannerServiceTest, CacheHitReturnsIdenticalPlanState) {
  PlannerService service;
  PlannerQuery query = MakeQuery(0.02);
  PlannerResult first = service.Plan(query);
  PlannerResult second = service.Plan(query);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  ExpectPlansIdentical(first.plan, second.plan);
  EXPECT_EQ(first.seconds, second.seconds);
  EXPECT_EQ(first.uniform_seconds, second.uniform_seconds);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(service.stats().searches, 1u);
  EXPECT_EQ(service.stats().cache.hits, 1u);
}

TEST(PlannerServiceTest, NearbyAlphasShareABucketDistantOnesDoNot) {
  PlannerService service;  // default alpha_quantum = 0.05
  PlannerQuery a = MakeQuery(0.0200);
  PlannerQuery b = MakeQuery(0.0201);  // within one bucket of a
  PlannerQuery c = MakeQuery(0.0800);  // far outside
  service.Canonicalize(&a);
  service.Canonicalize(&b);
  service.Canonicalize(&c);
  EXPECT_EQ(service.KeyFor(a), service.KeyFor(b));
  EXPECT_FALSE(service.KeyFor(a) == service.KeyFor(c));
  // Canonicalize is idempotent: the representative maps to itself.
  PlannerQuery twice = a;
  service.Canonicalize(&twice);
  EXPECT_EQ(twice.variables[0].sync.spec.alpha, a.variables[0].sync.spec.alpha);
  EXPECT_EQ(twice.targets[0].alpha, a.targets[0].alpha);
  // The representative stays within ~quantum/2 relative error of the raw alpha.
  EXPECT_NEAR(a.variables[0].sync.spec.alpha, 0.02, 0.02 * 0.05);
}

TEST(PlannerServiceTest, ConcurrentIdenticalQueriesCoalesceToOneSearch) {
  PlannerService service;
  PlannerQuery query = MakeQuery(0.02);
  constexpr int kThreads = 8;
  std::vector<PlannerResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { results[static_cast<size_t>(t)] = service.Plan(query); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    ExpectPlansIdentical(results[0].plan, results[static_cast<size_t>(t)].plan);
    EXPECT_EQ(results[0].seconds, results[static_cast<size_t>(t)].seconds);
  }
  PlannerServiceStats stats = service.stats();
  EXPECT_EQ(stats.searches, 1u) << "duplicate in-flight queries must share one search";
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.coalesced + stats.cache.hits + stats.searches,
            static_cast<uint64_t>(kThreads));
}

TEST(PlannerServiceTest, ConcurrentDistinctQueriesSearchSeparatelyAndMatchOracles) {
  PlannerService service;
  const std::vector<double> alphas = {0.01, 0.03, 0.1, 0.3};
  std::vector<PlannerResult> results(alphas.size());
  std::vector<std::thread> threads;
  threads.reserve(alphas.size());
  for (size_t t = 0; t < alphas.size(); ++t) {
    threads.emplace_back(
        [&, t] { results[t] = service.Plan(MakeQuery(alphas[t])); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(service.stats().searches, alphas.size());
  for (size_t t = 0; t < alphas.size(); ++t) {
    PlannerQuery canonical = MakeQuery(alphas[t]);
    service.Canonicalize(&canonical);
    ExpectPlansIdentical(results[t].plan, PrivateSearch(canonical).plan);
  }
}

TEST(PlannerServiceTest, PlanManyCoalescesDuplicatesWithinTheBatch) {
  PlannerService service;
  std::vector<PlannerQuery> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(MakeQuery(i % 2 == 0 ? 0.02 : 0.2));  // two distinct keys
  }
  std::vector<PlannerResult> results = service.PlanMany(queries);
  ASSERT_EQ(results.size(), queries.size());
  EXPECT_EQ(service.stats().searches, 2u);
  EXPECT_EQ(service.stats().queries, 6u);
  for (size_t i = 2; i < results.size(); ++i) {
    ExpectPlansIdentical(results[i].plan, results[i - 2].plan);
  }
}

TEST(PlannerServiceTest, EvictionRespectsCapacity) {
  PlannerServiceOptions options;
  options.cache_capacity = 2;
  PlannerService service(options);
  service.Plan(MakeQuery(0.01));
  service.Plan(MakeQuery(0.05));
  service.Plan(MakeQuery(0.3));  // evicts the 0.01 entry (LRU)
  PlanCacheStats cache = service.stats().cache;
  EXPECT_EQ(cache.size, 2u);
  EXPECT_EQ(cache.capacity, 2u);
  EXPECT_EQ(cache.evictions, 1u);
  // The evicted key misses (and re-searches); the most recent keys still hit.
  PlannerResult again = service.Plan(MakeQuery(0.3));
  EXPECT_TRUE(again.cache_hit);
  PlannerResult evicted = service.Plan(MakeQuery(0.01));
  EXPECT_FALSE(evicted.cache_hit);
  EXPECT_EQ(service.stats().searches, 4u);
}

TEST(PlannerServiceTest, ApplyPlanToVariablesReplicatesRowCapAndPlacementGate) {
  PlannerQuery query = MakeQuery(0.02);
  PartitionPlan plan = PartitionPlan::Uniform(1);
  plan.Set("embedding", 20'000);  // above the 10'000-row cap
  plan.Set("softmax", 4);
  plan.SetPlacement("softmax", {0, 1, 2, 3});
  plan.SetPlacement("embedding", {0, 1});  // stale length: must be dropped by the cap
  std::vector<VariableSync> applied = ApplyPlanToVariables(query.variables, plan);
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0].partitions, 10'000);  // row-capped
  EXPECT_TRUE(applied[0].placement.empty());
  EXPECT_EQ(applied[1].partitions, 4);
  EXPECT_EQ(applied[1].placement, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(applied[2].partitions, 1);  // non-partitioned passes through
}

TEST(PlannerServiceTest, ArenaPoolGrowsOnDemandAndRetainsUpToCap) {
  PlannerServiceOptions options;
  options.max_pooled_arenas = 2;
  PlannerService service(options);
  {
    PlannerService::ArenaLease a = service.AcquireArena();
    PlannerService::ArenaLease b = service.AcquireArena();
    PlannerService::ArenaLease c = service.AcquireArena();
    EXPECT_NE(a.get(), nullptr);
    EXPECT_NE(b.get(), nullptr);
    EXPECT_NE(c.get(), nullptr);
    EXPECT_EQ(service.stats().total_arenas, 3u);
    EXPECT_EQ(service.stats().pooled_arenas, 0u);
  }
  // Releases past the cap are dropped, not pooled.
  EXPECT_EQ(service.stats().pooled_arenas, 2u);
  EXPECT_EQ(service.stats().total_arenas, 2u);
  // A pooled arena is reused, not reallocated.
  PlannerService::ArenaLease reused = service.AcquireArena();
  EXPECT_NE(reused.get(), nullptr);
  EXPECT_EQ(service.stats().total_arenas, 2u);
  EXPECT_EQ(service.stats().pooled_arenas, 1u);
}

// ---- runner integration ----

WordLmModel::Options SmallLm(uint64_t seed) {
  return {.vocab_size = 120, .embedding_dim = 8, .hidden_dim = 12,
          .batch_per_rank = 16, .seed = seed};
}

ParallaxConfig FastConfig() {
  ParallaxConfig config;
  config.learning_rate = 0.4f;
  config.search.warmup_iterations = 2;
  config.search.measured_iterations = 2;
  config.search_mode = PartitionSearchMode::kPerVariable;
  return config;
}

TEST(PlannerServiceRunnerTest, SharedPlannerRunnerIsBitIdenticalToPrivateSearch) {
  // Two identical sessions, one routed through a shared planner: every loss must match
  // bitwise (plans never affect numerics; the service must not either), and the second
  // tenant's startup search must be served from the cache.
  auto service = std::make_shared<PlannerService>();
  WordLmModel model_private(SmallLm(601));
  WordLmModel model_shared(SmallLm(601));
  GraphRunner private_runner(model_private.graph(), model_private.loss(),
                             ResourceSpec::Homogeneous(2, 2), FastConfig());
  ParallaxConfig shared_config = FastConfig();
  shared_config.planner = service;
  GraphRunner shared_runner(model_shared.graph(), model_shared.loss(),
                            ResourceSpec::Homogeneous(2, 2), shared_config);
  Rng rng_a(61);
  Rng rng_b(61);
  for (int step = 0; step < 12; ++step) {
    float a = private_runner.Step(model_private.TrainShards(4, rng_a));
    float b = shared_runner.Step(model_shared.TrainShards(4, rng_b));
    EXPECT_EQ(a, b) << "step " << step;
  }
  EXPECT_EQ(shared_runner.partition_plan().ToString(),
            private_runner.partition_plan().ToString());
  EXPECT_EQ(service->stats().searches, 1u);

  // A third tenant with the same model shape hits the cache outright.
  WordLmModel model_third(SmallLm(601));
  GraphRunner third_runner(model_third.graph(), model_third.loss(),
                           ResourceSpec::Homogeneous(2, 2), shared_config);
  Rng rng_c(61);
  third_runner.Step(model_third.TrainShards(4, rng_c));
  EXPECT_EQ(service->stats().searches, 1u);
  EXPECT_GE(service->stats().cache.hits, 1u);
  EXPECT_EQ(third_runner.partition_plan().ToString(),
            shared_runner.partition_plan().ToString());
}

TEST(PlannerServiceRunnerTest, MonitoredSharedPlannerRunnerMatchesUnmonitoredPrivate) {
  // The adaptive loop re-searches through the service; numerics must stay bit-identical
  // to an unmonitored private-search run regardless of what the planner answers.
  auto service = std::make_shared<PlannerService>();
  WordLmModel model_plain(SmallLm(602));
  WordLmModel model_monitored(SmallLm(602));
  GraphRunner plain(model_plain.graph(), model_plain.loss(),
                    ResourceSpec::Homogeneous(2, 2), FastConfig());
  ParallaxConfig monitored_config = FastConfig();
  monitored_config.planner = service;
  AdaptivePartitioningPolicy policy;
  policy.check_interval = 4;
  policy.warmup_steps = 4;
  monitored_config.adaptive_partitioning = policy;
  GraphRunner monitored(model_monitored.graph(), model_monitored.loss(),
                        ResourceSpec::Homogeneous(2, 2), monitored_config);
  Rng rng_a(62);
  Rng rng_b(62);
  for (int step = 0; step < 16; ++step) {
    float a = plain.Step(model_plain.TrainShards(4, rng_a));
    float b = monitored.Step(model_monitored.TrainShards(4, rng_b));
    EXPECT_EQ(a, b) << "step " << step;
  }
}

}  // namespace
}  // namespace parallax
