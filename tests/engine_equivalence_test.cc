#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/ar/ar_numeric.h"
#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/models/trainable.h"
#include "src/ps/ps_numeric.h"
#include "src/sync/int8_ps.h"
#include "src/sync/topk_ps.h"
#include "src/tensor/tensor_ops.h"
#include "tests/drift_scenario.h"

namespace parallax {
namespace {

// The master correctness property (DESIGN.md): every synchronization architecture is a
// different *mechanism* for the same synchronous-SGD math. Training any model with the
// PS engine, the AR engine, or the full Parallax runner must track the single-device
// gradient-accumulation reference trajectory.
constexpr float kLr = 0.3f;
constexpr int kRanks = 4;
constexpr int kSteps = 6;

// Reference: accumulate shard gradients on one device (mean), apply plain SGD.
void ReferenceApply(const Graph& graph, const std::vector<StepResult>& per_rank,
                    VariableStore& store) {
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    int key = static_cast<int>(v);
    if (per_rank.front().grads.find(key) == per_rank.front().grads.end()) {
      continue;
    }
    Tensor mean = Tensor::Zeros(graph.variables()[v].shape);
    for (const StepResult& r : per_rank) {
      AddInPlace(mean, r.grads.at(key).ToDense(graph.variables()[v].shape));
    }
    ScaleInPlace(mean, 1.0f / static_cast<float>(per_rank.size()));
    AxpyInPlace(store.GetMutable(key), -kLr, mean);
  }
}

template <typename Model>
void ExpectTrajectoriesMatch(Model& model, float tolerance) {
  const Graph& graph = *model.graph();
  Executor executor(model.graph());

  // Engines under test.
  PsNumericConfig ps_config;
  ps_config.sparse_partitions = 4;
  ps_config.local_aggregation = true;
  ps_config.ranks_per_machine = 2;
  PsNumericEngine ps(model.graph(), ps_config);
  ArNumericEngine ar(model.graph(), kRanks);
  ParallaxConfig px_config;
  px_config.learning_rate = kLr;
  px_config.search.warmup_iterations = 2;
  px_config.search.measured_iterations = 2;
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     px_config);
  VariableStore reference = VariableStore::InitFrom(graph);

  Rng rng(77);
  for (int step = 0; step < kSteps; ++step) {
    // Identical shards for every engine: same data, same step.
    std::vector<FeedMap> shards = model.TrainShards(kRanks, rng);
    std::vector<StepResult> grads;
    for (int r = 0; r < kRanks; ++r) {
      grads.push_back(executor.RunStep(reference, shards[static_cast<size_t>(r)],
                                       model.loss()));
    }
    ReferenceApply(graph, grads, reference);
    ps.ApplyStep(grads, kLr);
    ar.ApplyStep(grads, kLr);
    runner.Step(shards);

    VariableStore ps_values = ps.CurrentValues();
    VariableStore px_values = runner.WorkerView();
    for (size_t v = 0; v < graph.variables().size(); ++v) {
      int key = static_cast<int>(v);
      const std::string& name = graph.variables()[v].name;
      EXPECT_TRUE(AllClose(ps_values.Get(key), reference.Get(key), tolerance))
          << "PS diverged on " << name << " at step " << step;
      EXPECT_TRUE(AllClose(ar.replica(0).Get(key), reference.Get(key), tolerance))
          << "AR diverged on " << name << " at step " << step;
      EXPECT_TRUE(AllClose(px_values.Get(key), reference.Get(key), tolerance))
          << "Parallax diverged on " << name << " at step " << step;
    }
  }
}

TEST(EngineEquivalenceTest, WordLmAllEnginesTrackReference) {
  WordLmModel model({.vocab_size = 60, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 701});
  ExpectTrajectoriesMatch(model, 5e-4f);
}

TEST(EngineEquivalenceTest, NmtSurrogateAllEnginesTrackReference) {
  NmtSurrogateModel model({.vocab_size = 50, .embedding_dim = 6, .hidden_dim = 10,
                           .batch_per_rank = 12, .seed = 702});
  ExpectTrajectoriesMatch(model, 5e-4f);
}

TEST(EngineEquivalenceTest, MlpClassifierAllEnginesTrackReference) {
  MlpClassifierModel model({.feature_dims = 10, .num_classes = 5, .hidden_dim = 12,
                            .batch_per_rank = 12, .seed = 703});
  ExpectTrajectoriesMatch(model, 5e-4f);
}

// ---- Bit-identity against the pre-SyncEngine runner ---------------------------------
//
// The redesigned runner routes every step through SyncEngine::ApplyStep and composes
// worker views from engine View()s; the seed runner hardwired a PsNumericEngine +
// ArNumericEngine pair, cloned per-rank AR replicas, and overlaid PS pulls. This
// reference replays the seed's exact step semantics (per-variable sparse aggregation,
// no fusion) over any ps/ar managed split, so both the default hybrid assignment and
// builder-forced mixed assignments can be compared bit-for-bit.
class LegacyRunnerReference {
 public:
  LegacyRunnerReference(const Graph* graph, NodeId loss, int num_ranks,
                        int ranks_per_machine, int sparse_partitions,
                        std::vector<int> ps_vars, std::vector<int> ar_vars, float lr)
      : graph_(graph), loss_(loss), executor_(graph), ps_vars_(std::move(ps_vars)), lr_(lr) {
    PsNumericConfig ps_config;
    ps_config.sparse_partitions = sparse_partitions;
    ps_config.local_aggregation = true;
    ps_config.ranks_per_machine = ranks_per_machine;
    ps_config.managed_variables = ps_vars_;
    ps_config.fuse_sparse_variables = false;  // the seed's per-variable pipeline
    ps_ = std::make_unique<PsNumericEngine>(graph, ps_config);
    ArNumericConfig ar_config;
    ar_config.managed_variables = std::move(ar_vars);
    ar_ = std::make_unique<ArNumericEngine>(graph, num_ranks, ar_config);
  }

  float Step(const std::vector<FeedMap>& shards) {
    VariableStore ps_values = ps_->CurrentValues();
    std::vector<StepResult> per_rank;
    float loss_sum = 0.0f;
    for (size_t r = 0; r < shards.size(); ++r) {
      VariableStore view = ar_->replica(static_cast<int>(r)).Clone();
      for (int v : ps_vars_) {
        view.Set(v, ps_values.Get(v));
      }
      StepResult result = executor_.RunStep(view, shards[r], loss_);
      loss_sum += result.loss;
      per_rank.push_back(std::move(result));
    }
    ps_->ApplyStep(per_rank, lr_);
    ar_->ApplyStep(per_rank, lr_);
    return loss_sum / static_cast<float>(shards.size());
  }

  VariableStore WorkerView() const {
    VariableStore view = ar_->replica(0).Clone();
    VariableStore ps_values = ps_->CurrentValues();
    for (int v : ps_vars_) {
      view.Set(v, ps_values.Get(v));
    }
    return view;
  }

 private:
  const Graph* graph_;
  NodeId loss_;
  Executor executor_;
  std::vector<int> ps_vars_;
  float lr_;
  std::unique_ptr<PsNumericEngine> ps_;
  std::unique_ptr<ArNumericEngine> ar_;
};

// Pre-generates the shards so the runner under test and the legacy reference consume
// identical feeds, then checks bit-identical losses and worker views step by step.
void ExpectBitIdenticalToLegacy(GraphRunner& runner, WordLmModel& model, int num_ranks,
                                int ranks_per_machine, float lr, int steps) {
  Rng rng(4242);
  std::vector<std::vector<FeedMap>> shards;
  shards.reserve(static_cast<size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    shards.push_back(model.TrainShards(num_ranks, rng));
  }

  // First step initializes the runner (analysis + search + plan); the legacy reference
  // is then built from the resulting plan and replays every step from scratch.
  float first_loss = runner.Step(shards[0]);
  const SyncPlan& plan = runner.plan();
  std::vector<int> ps_vars;
  std::vector<int> ar_vars;
  for (size_t v = 0; v < plan.engines.size(); ++v) {
    (plan.engines[v] == "ps" ? ps_vars : ar_vars).push_back(static_cast<int>(v));
  }
  LegacyRunnerReference legacy(model.graph(), model.loss(), num_ranks, ranks_per_machine,
                               runner.chosen_sparse_partitions(), ps_vars, ar_vars, lr);

  for (int s = 0; s < steps; ++s) {
    float loss_new = s == 0 ? first_loss : runner.Step(shards[static_cast<size_t>(s)]);
    float loss_legacy = legacy.Step(shards[static_cast<size_t>(s)]);
    EXPECT_EQ(loss_new, loss_legacy) << "loss diverged at step " << s;
    VariableStore view_new = runner.WorkerView();
    VariableStore view_legacy = legacy.WorkerView();
    for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
      EXPECT_TRUE(AllClose(view_new.Get(static_cast<int>(v)),
                           view_legacy.Get(static_cast<int>(v)), 0.0f))
          << model.graph()->variables()[v].name << " diverged at step " << s;
    }
  }
}

TEST(EngineEquivalenceTest, GetRunnerShimBitIdenticalToLegacyRunner) {
  WordLmModel model({.vocab_size = 90, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 710});
  ParallaxConfig config;
  config.learning_rate = kLr;
  config.search.warmup_iterations = 2;
  config.search.measured_iterations = 2;
  auto runner = GetRunner(model.graph(), model.loss(), "m0:0,1;m1:0,1", config);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  ExpectBitIdenticalToLegacy(*runner.value(), model, 4, 2, kLr, kSteps);
}

TEST(EngineEquivalenceTest, MixedEngineAssignmentBitIdenticalToLegacyRunner) {
  // Force a routing the hybrid rule would never pick — a sparse variable through AR
  // (AllGatherv) and a dense one through PS — and check the redesigned runner still
  // matches the seed engines managing the same split, bit for bit.
  WordLmModel model({.vocab_size = 90, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 711});
  auto runner = RunnerBuilder(model.graph(), model.loss())
                    .WithResources("m0:0,1;m1:0,1")
                    .WithEngine("softmax_emb", "ar")
                    .WithEngine("w1", "ps")
                    .WithLearningRate(kLr)
                    .WithManualPartitions(5)  // partitioned shards in the PS engine
                    .Build();
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  ExpectBitIdenticalToLegacy(*runner.value(), model, 4, 2, kLr, kSteps);

  // The overrides must be reflected in the plan and in the timing-plane methods.
  const SyncPlan& plan = runner.value()->plan();
  for (size_t v = 0; v < plan.variables.size(); ++v) {
    if (plan.variables[v].spec.name == "softmax_emb") {
      EXPECT_EQ(plan.engines[v], "ar");
      EXPECT_EQ(plan.variables[v].method, SyncMethod::kArAllGatherv);
    }
    if (plan.variables[v].spec.name == "w1") {
      EXPECT_EQ(plan.engines[v], "ps");
      EXPECT_EQ(plan.variables[v].method, SyncMethod::kPs);
    }
  }
}

TEST(EngineEquivalenceTest, FusedSparseAggregationBitIdenticalToPerVariable) {
  // The multi-variable fused workspace pass is the default; a runner with fusion off
  // takes the per-variable Sum pipeline. Both must produce identical bits.
  WordLmModel fused_model({.vocab_size = 90, .embedding_dim = 6, .hidden_dim = 10,
                           .batch_per_rank = 12, .seed = 712});
  WordLmModel plain_model({.vocab_size = 90, .embedding_dim = 6, .hidden_dim = 10,
                           .batch_per_rank = 12, .seed = 712});
  auto build = [](WordLmModel& model, bool fuse) {
    auto runner = RunnerBuilder(model.graph(), model.loss())
                      .WithResources("m0:0,1;m1:0,1")
                      .WithLearningRate(kLr)
                      .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                      .WithSparseFusion(fuse)
                      .Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    return std::move(runner).value();
  };
  auto fused = build(fused_model, true);
  auto plain = build(plain_model, false);
  Rng rng(4343);
  for (int s = 0; s < kSteps; ++s) {
    std::vector<FeedMap> shards = fused_model.TrainShards(4, rng);
    float loss_fused = fused->Step(shards);
    float loss_plain = plain->Step(shards);
    EXPECT_EQ(loss_fused, loss_plain) << "step " << s;
    VariableStore view_fused = fused->WorkerView();
    VariableStore view_plain = plain->WorkerView();
    for (size_t v = 0; v < fused_model.graph()->variables().size(); ++v) {
      EXPECT_TRUE(AllClose(view_fused.Get(static_cast<int>(v)),
                           view_plain.Get(static_cast<int>(v)), 0.0f))
          << fused_model.graph()->variables()[v].name << " at step " << s;
    }
  }
}

TEST(EngineEquivalenceTest, SparsityMonitoringNeverTouchesTheNumerics) {
  // The adaptive loop is layout and measurement only: a run with the monitor attached
  // — including one that actually fires a mid-training Repartition — must produce the
  // exact losses and variable bits of a monitor-free run on the same feeds. (This also
  // pins the converse: a monitor-disabled runner IS the pre-monitor runner.)
  // The canonical drift scenario (tests/drift_scenario.h): a wide embedding,
  // accumulation-dominated server costs, and a vocabulary that opens up at step 6, so
  // the monitored run's re-search genuinely moves P mid-training. Returns (losses,
  // repartitions, final worker view snapshot); the view is a deep clone, safe after
  // the model and runner go out of scope.
  auto train = [](bool monitored, std::vector<float>* losses, int* repartitions) {
    WordLmModel model(DriftingLm(/*seed=*/713, /*drift_step=*/6));
    RunnerBuilder builder(model.graph(), model.loss());
    builder.WithResources("m0:0,1;m1:0,1")
        .WithLearningRate(kLr)
        .WithSyncCosts(AccumulationDominatedCosts())
        .WithCompute(2e-3, 4)
        .WithSearch({.warmup_iterations = 2, .measured_iterations = 2});
    if (monitored) {
      AdaptivePartitioningPolicy policy;
      policy.ewma_decay = 0.5;
      policy.drift_threshold = 0.1;
      policy.hysteresis = 0.0;  // adopt any improvement: maximize layout churn
      policy.warmup_steps = 2;
      policy.check_interval = 2;
      policy.cooldown_steps = 2;
      builder.WithAdaptivePartitioning(policy);
    }
    auto runner = builder.Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    Rng rng(4444);
    for (int step = 0; step < 16; ++step) {
      losses->push_back(runner.value()->Step(model.TrainShards(4, rng, step)));
    }
    *repartitions = runner.value()->adaptive_repartitions();
    return runner.value()->WorkerView();
  };
  std::vector<float> monitored_losses;
  std::vector<float> plain_losses;
  int monitored_repartitions = 0;
  int plain_repartitions = 0;
  VariableStore monitored_view = train(true, &monitored_losses, &monitored_repartitions);
  VariableStore plain_view = train(false, &plain_losses, &plain_repartitions);
  // The invariant is only meaningful if the monitored run actually crossed a
  // mid-training Repartition — assert it did.
  EXPECT_GE(monitored_repartitions, 1);
  EXPECT_EQ(plain_repartitions, 0);
  EXPECT_EQ(monitored_losses, plain_losses);
  for (size_t v = 0; v < monitored_view.size(); ++v) {
    EXPECT_TRUE(AllClose(monitored_view.Get(static_cast<int>(v)),
                         plain_view.Get(static_cast<int>(v)), 0.0f))
        << "variable " << v << " diverged under monitoring";
  }
}

TEST(EngineEquivalenceTest, HeterogeneousPlanBitIdenticalToUniformRunRepartitionedOntoIt) {
  // A heterogeneous PartitionPlan is layout, never math: a run built on the plan from
  // step 0 must be bit-identical — losses and variable bits — to a run that starts
  // uniform (every int-based entry point) and swaps to the same per-variable counts
  // via Repartition(plan) mid-training.
  WordLmModel model({.vocab_size = 90, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 714});
  PartitionPlan plan;
  plan.Set("embedding", 3);
  plan.Set("softmax_emb", 7);

  auto build = [&](bool planned) {
    RunnerBuilder builder(model.graph(), model.loss());
    builder.WithResources("m0:0,1;m1:0,1").WithLearningRate(kLr);
    if (planned) {
      builder.WithPartitionPlan(plan);
    } else {
      builder.WithManualPartitions(1);
    }
    auto runner = builder.Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    return std::move(runner.value());
  };
  std::unique_ptr<GraphRunner> planned = build(true);
  std::unique_ptr<GraphRunner> uniform = build(false);

  Rng rng(714);
  std::vector<std::vector<FeedMap>> shards;
  for (int s = 0; s < kSteps; ++s) {
    shards.push_back(model.TrainShards(kRanks, rng));
  }

  for (int s = 0; s < kSteps; ++s) {
    float planned_loss = planned->Step(shards[static_cast<size_t>(s)]);
    float uniform_loss = uniform->Step(shards[static_cast<size_t>(s)]);
    EXPECT_EQ(planned_loss, uniform_loss) << "loss diverged at step " << s;
    if (s == 0) {
      // Mid-training swap onto the heterogeneous layout (values preserved).
      uniform->Repartition(plan);
      EXPECT_EQ(uniform->partition_plan(), plan);
    }
    VariableStore planned_view = planned->WorkerView();
    VariableStore uniform_view = uniform->WorkerView();
    for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
      EXPECT_TRUE(AllClose(planned_view.Get(static_cast<int>(v)),
                           uniform_view.Get(static_cast<int>(v)), 0.0f))
          << model.graph()->variables()[v].name << " diverged at step " << s;
    }
  }

  // Both runners now hold the same per-variable layout, and the plan's counts reached
  // the SyncPlan entries (row caps would apply, but 90 rows > 7 pieces).
  for (const GraphRunner* runner : {planned.get(), uniform.get()}) {
    EXPECT_EQ(runner->chosen_sparse_partitions(), 7);  // deprecated: max over plan
    for (const VariableSync& sync : runner->assignment()) {
      if (sync.spec.name == "embedding") {
        EXPECT_EQ(sync.partitions, 3);
      }
      if (sync.spec.name == "softmax_emb") {
        EXPECT_EQ(sync.partitions, 7);
      }
    }
  }
}

TEST(EngineEquivalenceTest, IdentityCompressionEnginesBitIdenticalToPs) {
  // The compression engines' escape hatch is EXACT: a top-k engine at ratio >= 1.0
  // and an int8 engine in identity mode must delegate untouched — bit-identical
  // losses and variable bits against "ps", including float summation order. (This is
  // why the pass-through hands the ORIGINAL per-rank results to the inner engine
  // instead of round-tripping through the compression buffers.) Registering the two
  // extra engines must also leave the built-in routings untouched — the runs below
  // build after the registrations.
  if (!SyncEngineRegistry::Global().Contains("topk_identity")) {
    ASSERT_TRUE(RegisterTopKPsEngine("topk_identity", {.ratio = 1.0}).ok());
  }
  if (!SyncEngineRegistry::Global().Contains("int8_identity")) {
    ASSERT_TRUE(RegisterInt8PsEngine("int8_identity", {.identity = true}).ok());
  }

  auto train = [](const std::string& engine, VariableStore* view) {
    WordLmModel model({.vocab_size = 90, .embedding_dim = 6, .hidden_dim = 10,
                       .batch_per_rank = 12, .seed = 715});
    auto runner = RunnerBuilder(model.graph(), model.loss())
                      .WithResources("m0:0,1;m1:0,1")
                      .WithLearningRate(kLr)
                      .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                      .WithEngine("*", engine)
                      .Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    Rng rng(715);
    std::vector<float> losses;
    for (int s = 0; s < kSteps; ++s) {
      losses.push_back(runner.value()->Step(model.TrainShards(kRanks, rng)));
    }
    *view = runner.value()->WorkerView();
    return losses;
  };

  VariableStore ps_view;
  std::vector<float> ps_losses = train("ps", &ps_view);
  for (const char* engine : {"topk_identity", "int8_identity", "async_ps"}) {
    // async_ps rides along as the registration-isolation control: its trajectory was
    // never bit-equal to "ps", but it must still build and train after the new
    // registrations (the satellite invariant is "registering engines changes nothing
    // for anyone else").
    VariableStore view;
    std::vector<float> losses = train(engine, &view);
    if (std::string(engine) == "async_ps") {
      EXPECT_EQ(losses.size(), ps_losses.size());
      continue;
    }
    EXPECT_EQ(losses, ps_losses) << engine;
    for (size_t v = 0; v < view.size(); ++v) {
      EXPECT_TRUE(AllClose(view.Get(static_cast<int>(v)),
                           ps_view.Get(static_cast<int>(v)), 0.0f))
          << engine << " variable " << v;
    }
  }
}

TEST(EngineEquivalenceTest, DistributedBatchEqualsBigBatchForDenseModel) {
  // For a plain mean-loss model, K shards of size b with average aggregation equal one
  // device running the concatenated K*b batch — the textbook data-parallel identity.
  MlpClassifierModel model({.feature_dims = 8, .num_classes = 4, .hidden_dim = 10,
                            .batch_per_rank = 16, .seed = 704});
  const Graph& graph = *model.graph();
  Executor executor(model.graph());
  VariableStore distributed = VariableStore::InitFrom(graph);
  VariableStore big_batch = VariableStore::InitFrom(graph);

  Rng rng(78);
  std::vector<FeedMap> shards = model.TrainShards(kRanks, rng);
  // Concatenate the shards into one big feed.
  FeedMap concat;
  for (const auto& [node, tensor] : shards[0]) {
    std::vector<Tensor> parts;
    for (int r = 0; r < kRanks; ++r) {
      parts.push_back(shards[static_cast<size_t>(r)].at(node));
    }
    if (tensor.is_float()) {
      concat[node] = ConcatRows(parts);
    } else {
      std::vector<int64_t> values;
      for (const Tensor& part : parts) {
        values.insert(values.end(), part.ints().begin(), part.ints().end());
      }
      concat[node] = Tensor::FromIndices(
          values, tensor.shape().WithDim0(static_cast<int64_t>(values.size())));
    }
  }

  // Distributed: mean of shard grads. Big batch: one backward pass.
  std::vector<StepResult> grads;
  for (int r = 0; r < kRanks; ++r) {
    grads.push_back(executor.RunStep(distributed, shards[static_cast<size_t>(r)],
                                     model.loss()));
  }
  ReferenceApply(graph, grads, distributed);
  StepResult big = executor.RunStep(big_batch, concat, model.loss());
  for (const auto& [v, grad] : big.grads) {
    big_batch.ApplySgd(v, grad, kLr);
  }
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    EXPECT_TRUE(AllClose(distributed.Get(static_cast<int>(v)),
                         big_batch.Get(static_cast<int>(v)), 1e-5f))
        << graph.variables()[v].name;
  }
}

TEST(EngineEquivalenceTest, CheckpointingNeverTouchesTheNumerics) {
  // The elasticity counterpart of the monitoring invariant above: a monitored,
  // periodically-checkpointed, never-rescaled run must produce the exact losses and
  // variable bits of a plain run on the same feeds. Checkpoint writes charge only the
  // simulated clock — so the checkpointed clock runs AHEAD of the plain one while the
  // learning curve stays bit-identical.
  auto train = [](bool checkpointed, std::vector<float>* losses, double* clock) {
    WordLmModel model(DriftingLm(/*seed=*/719, /*drift_step=*/6));
    RunnerBuilder builder(model.graph(), model.loss());
    builder.WithResources("m0:0,1;m1:0,1")
        .WithLearningRate(kLr)
        .WithSyncCosts(AccumulationDominatedCosts())
        .WithCompute(2e-3, 4)
        .WithSearch({.warmup_iterations = 2, .measured_iterations = 2});
    AdaptivePartitioningPolicy policy;
    policy.warmup_steps = 2;
    policy.check_interval = 2;
    policy.cooldown_steps = 2;
    builder.WithAdaptivePartitioning(policy);
    std::string path;
    if (checkpointed) {
      path = std::string(::testing::TempDir()) + "/equiv_ckpt.px";
      builder.WithCheckpoint(path, /*interval_steps=*/3);
    }
    auto runner = builder.Build();
    EXPECT_TRUE(runner.ok()) << runner.status().ToString();
    Rng rng(5555);
    for (int step = 0; step < 12; ++step) {
      losses->push_back(runner.value()->Step(model.TrainShards(4, rng, step)));
    }
    if (checkpointed) {
      EXPECT_EQ(runner.value()->checkpoints_written(), 4);
      std::remove(path.c_str());
    }
    *clock = runner.value()->simulated_seconds();
    return runner.value()->WorkerView();
  };
  std::vector<float> checkpointed_losses;
  std::vector<float> plain_losses;
  double checkpointed_clock = 0.0;
  double plain_clock = 0.0;
  VariableStore checkpointed_view =
      train(true, &checkpointed_losses, &checkpointed_clock);
  VariableStore plain_view = train(false, &plain_losses, &plain_clock);
  EXPECT_EQ(checkpointed_losses, plain_losses);
  EXPECT_GT(checkpointed_clock, plain_clock);
  for (size_t v = 0; v < checkpointed_view.size(); ++v) {
    EXPECT_TRUE(AllClose(checkpointed_view.Get(static_cast<int>(v)),
                         plain_view.Get(static_cast<int>(v)), 0.0f))
        << "variable " << v << " diverged under checkpointing";
  }
}

}  // namespace
}  // namespace parallax
