#include <gtest/gtest.h>

#include "src/ar/ar_numeric.h"
#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/models/trainable.h"
#include "src/ps/ps_numeric.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

// The master correctness property (DESIGN.md): every synchronization architecture is a
// different *mechanism* for the same synchronous-SGD math. Training any model with the
// PS engine, the AR engine, or the full Parallax runner must track the single-device
// gradient-accumulation reference trajectory.
constexpr float kLr = 0.3f;
constexpr int kRanks = 4;
constexpr int kSteps = 6;

// Reference: accumulate shard gradients on one device (mean), apply plain SGD.
void ReferenceApply(const Graph& graph, const std::vector<StepResult>& per_rank,
                    VariableStore& store) {
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    int key = static_cast<int>(v);
    if (per_rank.front().grads.find(key) == per_rank.front().grads.end()) {
      continue;
    }
    Tensor mean = Tensor::Zeros(graph.variables()[v].shape);
    for (const StepResult& r : per_rank) {
      AddInPlace(mean, r.grads.at(key).ToDense(graph.variables()[v].shape));
    }
    ScaleInPlace(mean, 1.0f / static_cast<float>(per_rank.size()));
    AxpyInPlace(store.GetMutable(key), -kLr, mean);
  }
}

template <typename Model>
void ExpectTrajectoriesMatch(Model& model, float tolerance) {
  const Graph& graph = *model.graph();
  Executor executor(model.graph());

  // Engines under test.
  PsNumericConfig ps_config;
  ps_config.sparse_partitions = 4;
  ps_config.local_aggregation = true;
  ps_config.ranks_per_machine = 2;
  PsNumericEngine ps(model.graph(), ps_config);
  ArNumericEngine ar(model.graph(), kRanks);
  ParallaxConfig px_config;
  px_config.learning_rate = kLr;
  px_config.search.warmup_iterations = 2;
  px_config.search.measured_iterations = 2;
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     px_config);
  VariableStore reference = VariableStore::InitFrom(graph);

  Rng rng(77);
  for (int step = 0; step < kSteps; ++step) {
    // Identical shards for every engine: same data, same step.
    std::vector<FeedMap> shards = model.TrainShards(kRanks, rng);
    std::vector<StepResult> grads;
    for (int r = 0; r < kRanks; ++r) {
      grads.push_back(executor.RunStep(reference, shards[static_cast<size_t>(r)],
                                       model.loss()));
    }
    ReferenceApply(graph, grads, reference);
    ps.ApplyStep(grads, kLr);
    ar.ApplyStep(grads, kLr);
    runner.Step(shards);

    VariableStore ps_values = ps.CurrentValues();
    VariableStore px_values = runner.WorkerView();
    for (size_t v = 0; v < graph.variables().size(); ++v) {
      int key = static_cast<int>(v);
      const std::string& name = graph.variables()[v].name;
      EXPECT_TRUE(AllClose(ps_values.Get(key), reference.Get(key), tolerance))
          << "PS diverged on " << name << " at step " << step;
      EXPECT_TRUE(AllClose(ar.replica(0).Get(key), reference.Get(key), tolerance))
          << "AR diverged on " << name << " at step " << step;
      EXPECT_TRUE(AllClose(px_values.Get(key), reference.Get(key), tolerance))
          << "Parallax diverged on " << name << " at step " << step;
    }
  }
}

TEST(EngineEquivalenceTest, WordLmAllEnginesTrackReference) {
  WordLmModel model({.vocab_size = 60, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 701});
  ExpectTrajectoriesMatch(model, 5e-4f);
}

TEST(EngineEquivalenceTest, NmtSurrogateAllEnginesTrackReference) {
  NmtSurrogateModel model({.vocab_size = 50, .embedding_dim = 6, .hidden_dim = 10,
                           .batch_per_rank = 12, .seed = 702});
  ExpectTrajectoriesMatch(model, 5e-4f);
}

TEST(EngineEquivalenceTest, MlpClassifierAllEnginesTrackReference) {
  MlpClassifierModel model({.feature_dims = 10, .num_classes = 5, .hidden_dim = 12,
                            .batch_per_rank = 12, .seed = 703});
  ExpectTrajectoriesMatch(model, 5e-4f);
}

TEST(EngineEquivalenceTest, DistributedBatchEqualsBigBatchForDenseModel) {
  // For a plain mean-loss model, K shards of size b with average aggregation equal one
  // device running the concatenated K*b batch — the textbook data-parallel identity.
  MlpClassifierModel model({.feature_dims = 8, .num_classes = 4, .hidden_dim = 10,
                            .batch_per_rank = 16, .seed = 704});
  const Graph& graph = *model.graph();
  Executor executor(model.graph());
  VariableStore distributed = VariableStore::InitFrom(graph);
  VariableStore big_batch = VariableStore::InitFrom(graph);

  Rng rng(78);
  std::vector<FeedMap> shards = model.TrainShards(kRanks, rng);
  // Concatenate the shards into one big feed.
  FeedMap concat;
  for (const auto& [node, tensor] : shards[0]) {
    std::vector<Tensor> parts;
    for (int r = 0; r < kRanks; ++r) {
      parts.push_back(shards[static_cast<size_t>(r)].at(node));
    }
    if (tensor.is_float()) {
      concat[node] = ConcatRows(parts);
    } else {
      std::vector<int64_t> values;
      for (const Tensor& part : parts) {
        values.insert(values.end(), part.ints().begin(), part.ints().end());
      }
      concat[node] = Tensor::FromIndices(
          values, tensor.shape().WithDim0(static_cast<int64_t>(values.size())));
    }
  }

  // Distributed: mean of shard grads. Big batch: one backward pass.
  std::vector<StepResult> grads;
  for (int r = 0; r < kRanks; ++r) {
    grads.push_back(executor.RunStep(distributed, shards[static_cast<size_t>(r)],
                                     model.loss()));
  }
  ReferenceApply(graph, grads, distributed);
  StepResult big = executor.RunStep(big_batch, concat, model.loss());
  for (const auto& [v, grad] : big.grads) {
    big_batch.ApplySgd(v, grad, kLr);
  }
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    EXPECT_TRUE(AllClose(distributed.Get(static_cast<int>(v)),
                         big_batch.Get(static_cast<int>(v)), 1e-5f))
        << graph.variables()[v].name;
  }
}

}  // namespace
}  // namespace parallax
