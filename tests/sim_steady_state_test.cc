// Steady-state guarantees of the simulation hot path:
//  - TaskGraph::Execute is repeatable and deterministic (identical makespans across
//    repeated runs on a reused graph),
//  - the Reset/rebuild/Execute cycle and SimulateIteration perform zero heap
//    allocations once warm (the property the partition search relies on),
//  - sharing a SimulationArena across simulators changes nothing about the results,
//  - a full training RunStep (forward + backward + escaping gradients, via
//    Executor::RunStepInto with recycled StepResult storage) is allocation-free once
//    warm — the numeric twin of the simulation guarantee.
//
// Allocation counting replaces global operator new/delete for this binary; the counters
// are only inspected inside explicit windows, so gtest's own allocations don't matter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/base/rng.h"
#include "src/core/iteration_sim.h"
#include "src/graph/executor.h"
#include "src/models/trainable.h"

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

// GCC pairs the replaced operator new (malloc-backed) with the replaced operator
// delete (free-backed) across inlining and then warns about the very pairing these
// replacements establish; the combination is intentional.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace parallax {
namespace {

size_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

ClusterSpec TinySpec() {
  ClusterSpec spec;
  spec.num_machines = 4;
  spec.gpus_per_machine = 2;
  spec.cores_per_machine = 4;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 1e-6;
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 1e-6;
  return spec;
}

// A PS-shaped DAG: fan-out transfers plus serial accumulator chains.
void BuildPsShapedDag(TaskGraph& graph, int shards, int ranks) {
  for (int s = 0; s < shards; ++s) {
    TaskId acc = kNoTask;
    for (int r = 0; r < ranks; ++r) {
      int machine = r / 2;
      int server = s % 4;
      TaskId push = machine == server ? graph.AddLocalTransfer(machine, 100'000)
                                      : graph.AddTransfer(machine, server, 100'000);
      TaskId deps[2] = {push, acc};
      acc = graph.AddCpuWork(server, 1e-5,
                             std::span<const TaskId>(deps, acc == kNoTask ? 1u : 2u));
    }
  }
}

std::vector<VariableSync> HybridVariables(int partitions) {
  std::vector<VariableSync> vars;
  VariableSync embedding;
  embedding.spec = {"embedding", 1'000'000, 64, true, 0.02};
  embedding.method = SyncMethod::kPs;
  embedding.partitions = partitions;
  vars.push_back(embedding);
  VariableSync dense;
  dense.spec = {"dense", 500'000, 1, false, 1.0};
  dense.method = SyncMethod::kArAllReduce;
  vars.push_back(dense);
  VariableSync softmax;
  softmax.spec = {"softmax", 800'000, 64, true, 0.05};
  softmax.method = SyncMethod::kArAllGatherv;
  vars.push_back(softmax);
  return vars;
}

IterationSimConfig HybridSimConfig(GathervAlgorithm gatherv) {
  IterationSimConfig config;
  config.ps_local_aggregation = true;
  config.ps_machine_level_pulls = true;
  config.gatherv_algorithm = gatherv;
  return config;
}

TEST(TaskGraphSteadyStateTest, RepeatedExecuteIsDeterministic) {
  TaskGraph graph;
  BuildPsShapedDag(graph, 16, 8);
  Cluster first(TinySpec());
  Cluster second(TinySpec());
  Cluster third(TinySpec());
  TaskResult a = graph.Execute(first);
  TaskResult b = graph.Execute(second);
  TaskResult c = graph.Execute(third);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.makespan, c.makespan);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

TEST(TaskGraphSteadyStateTest, RepeatedExecuteAllocatesNothing) {
  TaskGraph graph;
  BuildPsShapedDag(graph, 16, 8);
  Cluster warm_cluster(TinySpec());
  graph.Execute(warm_cluster);  // sizes the run-state arrays

  Cluster cluster(TinySpec());
  size_t before = AllocCount();
  graph.Execute(cluster);
  EXPECT_EQ(AllocCount() - before, 0u);
}

TEST(TaskGraphSteadyStateTest, ResetRebuildExecuteAllocatesNothingAndIsDeterministic) {
  TaskGraph graph;
  BuildPsShapedDag(graph, 16, 8);
  Cluster warm_cluster(TinySpec());
  SimTime reference = graph.Execute(warm_cluster).makespan;

  for (int round = 0; round < 3; ++round) {
    Cluster cluster(TinySpec());
    size_t before = AllocCount();
    graph.Reset();
    BuildPsShapedDag(graph, 16, 8);
    TaskResult result = graph.Execute(cluster);
    EXPECT_EQ(AllocCount() - before, 0u) << "round " << round;
    EXPECT_EQ(result.makespan, reference) << "round " << round;
  }
}

TEST(TaskGraphSteadyStateTest, ResetPreservesFingerprintOfIdenticalRebuild) {
  TaskGraph graph;
  BuildPsShapedDag(graph, 8, 8);
  uint64_t fingerprint = graph.StructuralFingerprint();
  graph.Reset();
  EXPECT_EQ(graph.num_tasks(), 0u);
  BuildPsShapedDag(graph, 8, 8);
  EXPECT_EQ(graph.StructuralFingerprint(), fingerprint);
}

class SimulatorSteadyStateTest : public ::testing::TestWithParam<GathervAlgorithm> {};

TEST_P(SimulatorSteadyStateTest, SimulateIterationIsAllocationFreeOnceWarm) {
  IterationSimulator sim(TinySpec(), HybridVariables(6), 4e-3, 4,
                         HybridSimConfig(GetParam()));
  Cluster cluster(TinySpec());
  SimTime t = 0.0;
  for (int i = 0; i < 2; ++i) {
    t = sim.SimulateIteration(cluster, t);  // warm: sizes scratch, builds plans
  }
  size_t before = AllocCount();
  for (int i = 0; i < 5; ++i) {
    t = sim.SimulateIteration(cluster, t);
  }
  EXPECT_EQ(AllocCount() - before, 0u);
}

INSTANTIATE_TEST_SUITE_P(Gatherv, SimulatorSteadyStateTest,
                         ::testing::Values(GathervAlgorithm::kRing,
                                           GathervAlgorithm::kBroadcast));

TEST(SimulatorSteadyStateTest, RackedPlacedIterationIsAllocationFreeOnceWarm) {
  // The hierarchical plans (spine links, rack-aware rings, pinned shard placements)
  // must keep the zero-steady-state-allocation invariant the search relies on.
  ClusterSpec spec = TinySpec();
  spec.topology.num_racks = 2;
  spec.topology.spine_bandwidth = 2e9;
  spec.topology.spine_latency = 5e-6;
  std::vector<VariableSync> vars = HybridVariables(6);
  vars[0].placement = {0, 2, 1, 3, 0, 2};  // pin embedding shards across both racks
  IterationSimulator sim(spec, std::move(vars), 4e-3, 4,
                         HybridSimConfig(GathervAlgorithm::kRing));
  Cluster cluster(spec);
  SimTime t = 0.0;
  for (int i = 0; i < 2; ++i) {
    t = sim.SimulateIteration(cluster, t);
  }
  size_t before = AllocCount();
  for (int i = 0; i < 5; ++i) {
    t = sim.SimulateIteration(cluster, t);
  }
  EXPECT_EQ(AllocCount() - before, 0u);
}

TEST(SimulatorSteadyStateTest, RepeatedRunsAreIdentical) {
  IterationSimulator sim(TinySpec(), HybridVariables(6), 4e-3, 4,
                         HybridSimConfig(GathervAlgorithm::kRing));
  std::vector<double> first = sim.RunIterations(5);
  std::vector<double> second = sim.RunIterations(5);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "iteration " << i;
  }
}

TEST(SimulatorSteadyStateTest, SharedArenaMatchesPrivateArenas) {
  // The partition-search usage pattern: one arena, a fresh simulator per sampled P.
  // Results must match simulators that each own a private arena.
  SimulationArena arena;
  for (int partitions : {4, 8, 16, 4}) {  // revisit P=4 to exercise cache reuse
    IterationSimulator shared(TinySpec(), HybridVariables(partitions), 4e-3, 4,
                              HybridSimConfig(GathervAlgorithm::kRing), &arena);
    IterationSimulator private_arena(TinySpec(), HybridVariables(partitions), 4e-3, 4,
                                     HybridSimConfig(GathervAlgorithm::kRing));
    std::vector<double> a = shared.RunIterations(4);
    std::vector<double> b = private_arena.RunIterations(4);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "P=" << partitions << " iteration " << i;
    }
  }
}

TEST(SimulatorSteadyStateTest, SharedArenaSearchSteadyStateIsAllocationFree) {
  // After one full pass over the candidate set, re-simulating any candidate through the
  // shared arena allocates nothing (the RunIterations wrapper itself allocates a
  // Cluster and result vector, so drive SimulateIteration directly).
  SimulationArena arena;
  IterationSimConfig config = HybridSimConfig(GathervAlgorithm::kRing);
  for (int partitions : {4, 8, 16}) {
    IterationSimulator sim(TinySpec(), HybridVariables(partitions), 4e-3, 4, config,
                           &arena);
    Cluster cluster(TinySpec());
    SimTime t = 0.0;
    for (int i = 0; i < 2; ++i) {
      t = sim.SimulateIteration(cluster, t);
    }
  }
  for (int partitions : {4, 8, 16}) {
    IterationSimConfig local_config = config;
    std::vector<VariableSync> vars = HybridVariables(partitions);
    Cluster cluster(TinySpec());
    IterationSimulator sim(TinySpec(), std::move(vars), 4e-3, 4, local_config, &arena);
    SimTime t = sim.SimulateIteration(cluster, 0.0);
    size_t before = AllocCount();
    for (int i = 0; i < 4; ++i) {
      t = sim.SimulateIteration(cluster, t);
    }
    EXPECT_EQ(AllocCount() - before, 0u) << "P=" << partitions;
  }
}

TEST(ExecutorSteadyStateTest, FullRunStepIsAllocationFreeOnceWarm) {
  // The gather-bearing WordLM graph produces every gradient flavour: sparse slices for
  // the embedding, dense tensors for the MLP, and a softmax that concatenates two
  // gather contributions. RunStepInto must recycle the StepResult's map nodes and
  // gradient storage so the whole step — not just the interior backward pass — stays
  // off the allocator in steady state.
  WordLmModel model({.vocab_size = 80, .embedding_dim = 6, .hidden_dim = 10,
                     .batch_per_rank = 12, .seed = 907});
  Executor executor(model.graph());
  VariableStore store = VariableStore::InitFrom(*model.graph());
  ExecScratch scratch;
  StepResult result;
  Rng rng(31);
  std::vector<FeedMap> feeds;
  for (int s = 0; s < 4; ++s) {
    feeds.push_back(model.TrainShards(1, rng)[0]);
  }

  // Warm: the first steps size every buffer (temps, node gradients, slice storage).
  for (int s = 0; s < 4; ++s) {
    executor.RunStepInto(store, feeds[static_cast<size_t>(s)], model.loss(), &scratch,
                         &result);
  }

  size_t before = AllocCount();
  for (int round = 0; round < 3; ++round) {
    for (int s = 0; s < 4; ++s) {
      executor.RunStepInto(store, feeds[static_cast<size_t>(s)], model.loss(), &scratch,
                           &result);
    }
  }
  EXPECT_EQ(AllocCount() - before, 0u);
  EXPECT_GT(result.grads.size(), 0u);
}

}  // namespace
}  // namespace parallax
