#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/comm/collectives.h"
#include "src/comm/reduce.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

ClusterSpec FlatSpec(int machines) {
  ClusterSpec spec;
  spec.num_machines = machines;
  spec.gpus_per_machine = 1;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 0.0;  // latency-free: byte formulas become exact
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 0.0;
  return spec;
}

std::vector<int> AllMachines(int n) {
  std::vector<int> machines(static_cast<size_t>(n));
  for (int m = 0; m < n; ++m) {
    machines[static_cast<size_t>(m)] = m;
  }
  return machines;
}

// Parameterized over machine count: the paper's ring formulas (Table 3) must hold for
// every N.
class RingParamTest : public ::testing::TestWithParam<int> {};

TEST_P(RingParamTest, AllReducePerMachineBytesMatchTable3) {
  const int n = GetParam();
  const int64_t w = 8'000'000;  // divisible by all tested n
  Cluster cluster(FlatSpec(n));
  TaskGraph graph;
  CollectiveOptions options;
  options.step_overhead = 0.0;
  std::vector<TaskId> deps(static_cast<size_t>(n), kNoTask);
  AddRingAllReduce(graph, AllMachines(n), w, deps, options);
  graph.Execute(cluster);
  // Table 3, AR row, one dense variable: 4w(N-1)/N per machine (in + out).
  int64_t expected = n == 1 ? 0 : 4 * w * (n - 1) / n;
  for (int m = 0; m < n; ++m) {
    EXPECT_EQ(cluster.NicBytes(m), expected) << "machine " << m << " of " << n;
  }
}

TEST_P(RingParamTest, AllGathervPerMachineBytesMatchTable3) {
  const int n = GetParam();
  const int64_t alpha_w = 1'000'000;  // every machine contributes the same block
  Cluster cluster(FlatSpec(n));
  TaskGraph graph;
  CollectiveOptions options;
  options.step_overhead = 0.0;
  std::vector<TaskId> deps(static_cast<size_t>(n), kNoTask);
  std::vector<int64_t> blocks(static_cast<size_t>(n), alpha_w);
  AddRingAllGatherv(graph, AllMachines(n), blocks, deps, options);
  graph.Execute(cluster);
  // Table 3, AR row, one sparse variable: 2*alpha*w*(N-1) per machine.
  int64_t expected = n == 1 ? 0 : 2 * alpha_w * (n - 1);
  for (int m = 0; m < n; ++m) {
    EXPECT_EQ(cluster.NicBytes(m), expected) << "machine " << m << " of " << n;
  }
}

TEST_P(RingParamTest, AllReduceTimeNearBandwidthOptimal) {
  const int n = GetParam();
  if (n == 1) {
    return;
  }
  const int64_t w = 80'000'000;
  Cluster cluster(FlatSpec(n));
  TaskGraph graph;
  CollectiveOptions options;
  options.step_overhead = 0.0;
  std::vector<TaskId> deps(static_cast<size_t>(n), kNoTask);
  CollectiveSchedule schedule = AddRingAllReduce(graph, AllMachines(n), w, deps, options);
  graph.Execute(cluster);
  double finish = graph.FinishTime(schedule.all_done);
  // Ring optimum: 2(N-1)/N * w / B. The store-and-forward link model serializes each
  // hop through two queues, so the simulated schedule lands within ~2.3x of optimal
  // while preserving the N-scaling shape.
  double optimal = 2.0 * (n - 1) / n * static_cast<double>(w) / 1e9;
  EXPECT_GE(finish, optimal * 0.99);
  EXPECT_LE(finish, optimal * 2.3);
}

INSTANTIATE_TEST_SUITE_P(MachineCounts, RingParamTest, ::testing::Values(1, 2, 4, 5, 8, 16));

TEST(CollectivesTest, AllReduceRespectsDependencies) {
  const int n = 4;
  Cluster cluster(FlatSpec(n));
  TaskGraph graph;
  // Machine 2's gradient is only ready at t=1s; nobody can finish before that.
  std::vector<TaskId> deps(static_cast<size_t>(n), kNoTask);
  deps[2] = graph.AddDelay(1.0);
  CollectiveSchedule schedule =
      AddRingAllReduce(graph, AllMachines(n), 4'000'000, deps, CollectiveOptions{0.0});
  graph.Execute(cluster);
  for (int m = 0; m < n; ++m) {
    EXPECT_GE(graph.FinishTime(schedule.done[static_cast<size_t>(m)]), 1.0);
  }
}

TEST(CollectivesTest, SingleMachineIsFree) {
  Cluster cluster(FlatSpec(1));
  TaskGraph graph;
  CollectiveSchedule schedule =
      AddRingAllReduce(graph, {0}, 1'000'000, {kNoTask}, CollectiveOptions{0.0});
  graph.Execute(cluster);
  EXPECT_DOUBLE_EQ(graph.FinishTime(schedule.all_done), 0.0);
  EXPECT_EQ(cluster.NicBytes(0), 0);
}

TEST(CollectivesTest, HierarchicalUsesPcieLocallyAndNicAcross) {
  ClusterSpec spec = FlatSpec(2);
  spec.gpus_per_machine = 4;
  Cluster cluster(spec);
  TaskGraph graph;
  RankLayout layout{2, 4};
  std::vector<TaskId> deps(8, kNoTask);
  const int64_t bytes = 4'000'000;
  CollectiveSchedule schedule =
      AddHierarchicalAllReduce(graph, layout, bytes, deps, CollectiveOptions{0.0});
  graph.Execute(cluster);
  EXPECT_EQ(static_cast<int>(schedule.done.size()), 8);
  // NIC carries only the inter-machine ring (4w(N-1)/N with N=2 machines => 2w each).
  EXPECT_EQ(cluster.NicBytes(0), 2 * bytes);
  EXPECT_EQ(cluster.NicBytes(1), 2 * bytes);
  // PCIe carried the local reduce + broadcast.
  EXPECT_GT(cluster.machine(0).pcie_out.total_bytes(), 0);
}

TEST(CollectivesTest, RankRingGathervCrossesEachNicOncePerStep) {
  ClusterSpec spec = FlatSpec(2);
  spec.gpus_per_machine = 2;
  Cluster cluster(spec);
  TaskGraph graph;
  RankLayout layout{2, 2};
  const int64_t block = 1'000'000;
  std::vector<int64_t> blocks(4, block);
  std::vector<TaskId> deps(4, kNoTask);
  AddRankRingAllGatherv(graph, layout, blocks, deps, CollectiveOptions{0.0});
  graph.Execute(cluster);
  // Ring over ranks 0,1 | 2,3: boundary hops 1->2 and 3->0 cross the NIC, once per step,
  // 3 steps => 3 blocks out + 3 blocks in per machine.
  EXPECT_EQ(cluster.NicBytes(0), 6 * block);
  EXPECT_EQ(cluster.NicBytes(1), 6 * block);
}

TEST(ReduceTest, AllReduceSumAndAverage) {
  std::vector<Tensor> xs = {Tensor::Filled(TensorShape({3}), 1.0f),
                            Tensor::Filled(TensorShape({3}), 2.0f),
                            Tensor::Filled(TensorShape({3}), 3.0f)};
  EXPECT_EQ(AllReduceSum(xs).at(0), 6.0f);
  EXPECT_EQ(AllReduceAggregate(xs, AggregationMethod::kAverage).at(0), 2.0f);
}

TEST(ReduceTest, AllGathervConcatAndAverage) {
  Rng rng(15);
  std::vector<IndexedSlices> parts;
  for (int i = 0; i < 3; ++i) {
    parts.emplace_back(std::vector<int64_t>{i, 2 * i},
                       RandomNormal(TensorShape({2, 2}), rng), TensorShape({6, 2}));
  }
  IndexedSlices concat = AllGathervConcat(parts);
  EXPECT_EQ(concat.nnz_rows(), 6);
  IndexedSlices averaged = AllGathervAggregate(parts, AggregationMethod::kAverage);
  Tensor expected = concat.ToDense();
  ScaleInPlace(expected, 1.0f / 3.0f);
  EXPECT_TRUE(AllClose(averaged.ToDense(), expected, 1e-6f));
}

}  // namespace
}  // namespace parallax
