#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/core/transform.h"
#include "src/models/trainable.h"

namespace parallax {
namespace {

// Builds a transformed LM graph: 2 machines x 3 GPUs, embeddings on PS with 4 pieces,
// dense weights on AR.
struct TransformFixture {
  WordLmModel model{{.vocab_size = 50, .embedding_dim = 6, .hidden_dim = 8,
                     .batch_per_rank = 16, .seed = 401}};
  ResourceSpec resources = ResourceSpec::Homogeneous(2, 3);
  DistributedGraph dist;

  explicit TransformFixture(bool local_agg = true) {
    Executor executor(model.graph());
    VariableStore store = VariableStore::InitFrom(*model.graph());
    Rng rng(41);
    std::vector<StepResult> samples;
    for (const FeedMap& feeds : model.TrainShards(2, rng)) {
      samples.push_back(executor.RunStep(store, feeds, model.loss()));
    }
    auto info = AnalyzeSparsity(*model.graph(), model.loss(), samples);
    std::vector<VariableSync> assignment =
        AssignGraphVariables(*model.graph(), info, HybridOptions{}, 4);
    dist = TransformGraph(*model.graph(), assignment, resources, local_agg);
  }
};

TEST(TransformTest, OneModelReplicaPerGpu) {
  TransformFixture fx;
  auto replicas = fx.dist.OpsWithRole(DistOpRole::kModelReplica);
  EXPECT_EQ(replicas.size(), 6u);
  // Every (machine, gpu) pair appears exactly once.
  std::map<std::pair<int, int>, int> seen;
  for (const DistOp* op : replicas) {
    EXPECT_EQ(op->placement.kind, DeviceKind::kWorkerGpu);
    ++seen[{op->placement.machine, op->placement.gpu}];
  }
  EXPECT_EQ(seen.size(), 6u);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(TransformTest, SparseVariablePiecesDistributedRoundRobin) {
  TransformFixture fx;
  auto pieces = fx.dist.OpsWithRole(DistOpRole::kVariablePiece);
  // 2 sparse variables x 4 partitions.
  EXPECT_EQ(pieces.size(), 8u);
  std::map<int, int> per_machine;
  for (const DistOp* op : pieces) {
    EXPECT_EQ(op->placement.kind, DeviceKind::kServerCpu);
    ++per_machine[op->placement.machine];
  }
  // Round-robin across 2 machines => perfectly balanced.
  EXPECT_EQ(per_machine[0], 4);
  EXPECT_EQ(per_machine[1], 4);
}

TEST(TransformTest, UpdateAndGlobalAggColocatedWithPiece) {
  // The placement rule of section 4.3: "Parallax places a global aggregation operation
  // on the same server with the variable" and assigns update ops likewise.
  TransformFixture fx;
  for (const DistOp* update : fx.dist.OpsWithRole(DistOpRole::kUpdate)) {
    const DistOp* piece = fx.dist.FindPiece(update->variable, update->piece);
    ASSERT_NE(piece, nullptr);
    EXPECT_TRUE(update->placement == piece->placement) << update->name;
  }
  for (const DistOp* agg : fx.dist.OpsWithRole(DistOpRole::kGlobalAgg)) {
    const DistOp* piece = fx.dist.FindPiece(agg->variable, agg->piece);
    ASSERT_NE(piece, nullptr);
    EXPECT_TRUE(agg->placement == piece->placement) << agg->name;
  }
}

TEST(TransformTest, LocalAggPerMachinePerSparseVariable) {
  TransformFixture fx;
  auto local = fx.dist.OpsWithRole(DistOpRole::kLocalAgg);
  // 2 sparse variables x 2 machines.
  EXPECT_EQ(local.size(), 4u);
  std::map<std::pair<int, int>, int> seen;  // (variable, machine)
  for (const DistOp* op : local) {
    ++seen[{op->variable, op->placement.machine}];
  }
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(TransformTest, NoLocalAggWhenDisabled) {
  TransformFixture fx(false);
  EXPECT_TRUE(fx.dist.OpsWithRole(DistOpRole::kLocalAgg).empty());
}

TEST(TransformTest, DenseVariablesGetReplicasAndAllReduce) {
  TransformFixture fx;
  // w1 and b1 are dense: a replica + an AllReduce instance on each of 6 GPUs.
  auto var_replicas = fx.dist.OpsWithRole(DistOpRole::kVariableReplica);
  auto allreduce = fx.dist.OpsWithRole(DistOpRole::kAllReduce);
  EXPECT_EQ(var_replicas.size(), 2u * 6u);
  EXPECT_EQ(allreduce.size(), 2u * 6u);
  // No PS-side ops for dense variables.
  for (const DistOp* op : fx.dist.OpsWithRole(DistOpRole::kVariablePiece)) {
    const VariableSync& sync = fx.dist.assignment[static_cast<size_t>(op->variable)];
    EXPECT_EQ(sync.method, SyncMethod::kPs);
  }
}

TEST(TransformTest, PullsAndStitchesPerWorker) {
  TransformFixture fx;
  auto pulls = fx.dist.OpsWithRole(DistOpRole::kPull);
  // 6 ranks x 2 sparse variables x 4 pieces.
  EXPECT_EQ(pulls.size(), 6u * 2u * 4u);
  auto stitches = fx.dist.OpsWithRole(DistOpRole::kStitch);
  // One stitch per rank per partitioned variable.
  EXPECT_EQ(stitches.size(), 6u * 2u);
}

TEST(TransformTest, ExactlyOneChiefTrigger) {
  TransformFixture fx;
  auto triggers = fx.dist.OpsWithRole(DistOpRole::kChiefTrigger);
  ASSERT_EQ(triggers.size(), 1u);
  EXPECT_EQ(triggers[0]->rank, fx.dist.chief_rank);
  // Every non-chief worker has a notification queue (section 5).
  auto notifies = fx.dist.OpsWithRole(DistOpRole::kQueueNotify);
  EXPECT_EQ(notifies.size(), 5u);
}

TEST(TransformTest, ArOnlyGraphHasNoServerOps) {
  // A dense-only model transforms into a pure AR graph: no PS ops, no chief trigger.
  MlpClassifierModel model({.feature_dims = 8, .num_classes = 4, .hidden_dim = 8,
                            .batch_per_rank = 8, .seed = 402});
  Executor executor(model.graph());
  VariableStore store = VariableStore::InitFrom(*model.graph());
  Rng rng(42);
  std::vector<StepResult> samples;
  for (const FeedMap& feeds : model.TrainShards(2, rng)) {
    samples.push_back(executor.RunStep(store, feeds, model.loss()));
  }
  auto info = AnalyzeSparsity(*model.graph(), model.loss(), samples);
  std::vector<VariableSync> assignment =
      AssignGraphVariables(*model.graph(), info, HybridOptions{}, 4);
  DistributedGraph dist =
      TransformGraph(*model.graph(), assignment, ResourceSpec::Homogeneous(2, 2), true);
  EXPECT_TRUE(dist.OpsWithRole(DistOpRole::kVariablePiece).empty());
  EXPECT_TRUE(dist.OpsWithRole(DistOpRole::kChiefTrigger).empty());
  EXPECT_TRUE(dist.OpsWithRole(DistOpRole::kGlobalAgg).empty());
  EXPECT_EQ(dist.OpsWithRole(DistOpRole::kAllReduce).size(),
            model.graph()->variables().size() * 4u);
}

}  // namespace
}  // namespace parallax
