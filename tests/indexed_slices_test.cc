#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/tensor/indexed_slices.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

IndexedSlices RandomSlices(Rng& rng, int64_t rows, int64_t width, int64_t nnz) {
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < nnz; ++i) {
    indices.push_back(static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(rows))));
  }
  return IndexedSlices(std::move(indices), RandomNormal(TensorShape({nnz, width}), rng),
                       TensorShape({rows, width}));
}

TEST(IndexedSlicesTest, ToDenseAccumulatesDuplicates) {
  IndexedSlices s({1, 1}, Tensor::FromVector({1, 2, 10, 20}, TensorShape({2, 2})),
                  TensorShape({3, 2}));
  Tensor dense = s.ToDense();
  EXPECT_EQ(dense.at(2), 11.0f);
  EXPECT_EQ(dense.at(3), 22.0f);
  EXPECT_EQ(dense.at(0), 0.0f);
}

TEST(IndexedSlicesTest, CoalescedPreservesDenseEquivalent) {
  Rng rng(11);
  IndexedSlices s = RandomSlices(rng, 20, 4, 50);
  IndexedSlices c = s.Coalesced();
  EXPECT_LE(c.nnz_rows(), s.nnz_rows());
  EXPECT_TRUE(AllClose(c.ToDense(), s.ToDense(), 1e-5f));
  // Coalesced output has sorted, unique indices.
  for (size_t i = 1; i < c.indices().size(); ++i) {
    EXPECT_LT(c.indices()[i - 1], c.indices()[i]);
  }
}

TEST(IndexedSlicesTest, SumEqualsDenseSum) {
  Rng rng(12);
  std::vector<IndexedSlices> parts;
  Tensor expected = Tensor::Zeros(TensorShape({15, 3}));
  for (int i = 0; i < 5; ++i) {
    parts.push_back(RandomSlices(rng, 15, 3, 8));
    AddInPlace(expected, parts.back().ToDense());
  }
  EXPECT_TRUE(AllClose(IndexedSlices::Sum(parts).ToDense(), expected, 1e-4f));
}

TEST(IndexedSlicesTest, ConcatKeepsAllRows) {
  Rng rng(13);
  IndexedSlices a = RandomSlices(rng, 10, 2, 4);
  IndexedSlices b = RandomSlices(rng, 10, 2, 6);
  IndexedSlices c = IndexedSlices::Concat({a, b});
  EXPECT_EQ(c.nnz_rows(), 10);
  // AllGatherv semantics: concatenation preserves the dense-equivalent sum.
  Tensor expected = a.ToDense();
  AddInPlace(expected, b.ToDense());
  EXPECT_TRUE(AllClose(c.ToDense(), expected, 1e-5f));
}

TEST(IndexedSlicesTest, ScaleScalesDense) {
  Rng rng(14);
  IndexedSlices s = RandomSlices(rng, 12, 3, 7);
  Tensor before = s.ToDense();
  s.Scale(0.25f);
  EXPECT_TRUE(AllClose(s.ToDense(), Scale(before, 0.25f), 1e-6f));
}

TEST(IndexedSlicesTest, AccessRatioCountsUniqueRows) {
  IndexedSlices s({0, 0, 3}, Tensor::Zeros(TensorShape({3, 2})), TensorShape({10, 2}));
  EXPECT_DOUBLE_EQ(s.AccessRatio(), 0.2);
}

TEST(IndexedSlicesTest, WireBytesCountsValuesAndIndices) {
  IndexedSlices s({0, 1}, Tensor::Zeros(TensorShape({2, 8})), TensorShape({4, 8}));
  EXPECT_EQ(s.WireBytes(), 2 * 8 * 4 + 2 * 8);
}

TEST(IndexedSlicesTest, RejectsOutOfRangeIndices) {
  EXPECT_DEATH(IndexedSlices({5}, Tensor::Zeros(TensorShape({1, 2})), TensorShape({4, 2})),
               "Check failed");
}

TEST(IndexedSlicesTest, RejectsShapeMismatch) {
  EXPECT_DEATH(IndexedSlices({0}, Tensor::Zeros(TensorShape({1, 3})), TensorShape({4, 2})),
               "Check failed");
}

}  // namespace
}  // namespace parallax
