#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/models/trainable.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

WordLmModel::Options SmallLm() {
  return {.vocab_size = 120, .embedding_dim = 8, .hidden_dim = 12,
          .batch_per_rank = 16, .seed = 601};
}

ParallaxConfig FastConfig() {
  ParallaxConfig config;
  config.learning_rate = 0.4f;
  config.search.warmup_iterations = 2;
  config.search.measured_iterations = 2;
  return config;
}

TEST(RunnerTest, GetRunnerValidatesInputs) {
  WordLmModel model(SmallLm());
  EXPECT_FALSE(GetRunner(nullptr, model.loss(), "a:0").ok());
  EXPECT_FALSE(GetRunner(model.graph(), model.loss(), "not-a-spec").ok());
  EXPECT_FALSE(GetRunner(model.graph(), model.loss(), "a:0,1;b:0").ok());  // heterogeneous
  EXPECT_TRUE(GetRunner(model.graph(), model.loss(), "a:0,1;b:0,1").ok());
}

TEST(RunnerTest, TrainingReducesLossAndAdvancesClock) {
  WordLmModel model(SmallLm());
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(61);
  float first_loss = runner.Step(model.TrainShards(4, rng));
  EXPECT_GT(runner.simulated_seconds(), 0.0);
  double clock_after_one = runner.simulated_seconds();
  float last_loss = first_loss;
  for (int i = 0; i < 80; ++i) {
    last_loss = runner.Step(model.TrainShards(4, rng));
  }
  EXPECT_LT(last_loss, first_loss * 0.8f);
  EXPECT_EQ(runner.iterations(), 81);
  EXPECT_GT(runner.simulated_seconds(), clock_after_one * 50);
}

TEST(RunnerTest, AssignmentRoutesSparseToPs) {
  WordLmModel model(SmallLm());
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(62);
  runner.Step(model.TrainShards(4, rng));
  const auto& vars = model.graph()->variables();
  for (size_t v = 0; v < vars.size(); ++v) {
    const VariableSync& sync = runner.assignment()[v];
    if (vars[v].name == "embedding" || vars[v].name == "softmax_emb") {
      EXPECT_EQ(sync.method, SyncMethod::kPs) << vars[v].name;
    } else {
      EXPECT_EQ(sync.method, SyncMethod::kArAllReduce) << vars[v].name;
    }
  }
}

TEST(RunnerTest, PartitionSearchRunsForPartitionerScopedVariables) {
  WordLmModel model(SmallLm());
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(63);
  runner.Step(model.TrainShards(4, rng));
  ASSERT_TRUE(runner.partition_search().has_value());
  EXPECT_GE(runner.partition_search()->samples.size(), 2u);
  EXPECT_GE(runner.chosen_sparse_partitions(), 1);
}

TEST(RunnerTest, ManualPartitionsRespected) {
  WordLmModel model(SmallLm());
  ParallaxConfig config = FastConfig();
  config.auto_partition = false;
  config.manual_partitions = 6;
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2), config);
  Rng rng(64);
  runner.Step(model.TrainShards(4, rng));
  EXPECT_EQ(runner.chosen_sparse_partitions(), 6);
  EXPECT_FALSE(runner.partition_search().has_value());
  for (const VariableSync& sync : runner.assignment()) {
    if (sync.method == SyncMethod::kPs && sync.spec.name == "embedding") {
      EXPECT_EQ(sync.partitions, 6);
    }
  }
}

TEST(RunnerTest, TransformedGraphMatchesResources) {
  WordLmModel model(SmallLm());
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(3, 2),
                     FastConfig());
  Rng rng(65);
  runner.Step(model.TrainShards(6, rng));
  const DistributedGraph& dist = runner.distributed_graph();
  EXPECT_EQ(dist.num_machines, 3);
  EXPECT_EQ(dist.gpus_per_machine, 2);
  EXPECT_EQ(dist.OpsWithRole(DistOpRole::kModelReplica).size(), 6u);
  EXPECT_EQ(dist.OpsWithRole(DistOpRole::kChiefTrigger).size(), 1u);
}

TEST(RunnerTest, StepRequiresOneFeedPerRank) {
  WordLmModel model(SmallLm());
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(66);
  EXPECT_DEATH(runner.Step(model.TrainShards(3, rng)), "one feed shard per GPU");
}

TEST(RunnerTest, EvaluateUsesTrainedValues) {
  WordLmModel model(SmallLm());
  GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                     FastConfig());
  Rng rng(67);
  std::vector<FeedMap> shards = model.TrainShards(4, rng);
  runner.Step(shards);
  Tensor loss_value = runner.Evaluate(shards[0], model.loss());
  EXPECT_GT(loss_value.at(0), 0.0f);
}

TEST(RunnerTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    WordLmModel model(SmallLm());
    GraphRunner runner(model.graph(), model.loss(), ResourceSpec::Homogeneous(2, 2),
                       FastConfig());
    Rng rng(68);
    float loss = 0.0f;
    for (int i = 0; i < 5; ++i) {
      loss = runner.Step(model.TrainShards(4, rng));
    }
    return std::make_pair(loss, runner.simulated_seconds());
  };
  auto [loss_a, time_a] = run();
  auto [loss_b, time_b] = run();
  EXPECT_EQ(loss_a, loss_b);
  EXPECT_EQ(time_a, time_b);
}

}  // namespace
}  // namespace parallax
