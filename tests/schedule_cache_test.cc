// Cached collective schedules must be byte-identical to freshly built ones: the
// CollectiveScheduleCache replays a stored SchedulePlan into the task graph, and the
// resulting task sequence (kinds, machines, payloads, dependency lists) has to match
// what the uncached builder emits, across layouts, sizes, and dependency shapes.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <utility>

#include "src/comm/collectives.h"

namespace parallax {
namespace {

ClusterSpec FlatSpec(int machines, int gpus) {
  ClusterSpec spec;
  spec.num_machines = machines;
  spec.gpus_per_machine = gpus;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 1e-6;
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 1e-6;
  return spec;
}

std::vector<int> AllMachines(int n) {
  std::vector<int> machines(static_cast<size_t>(n));
  for (int m = 0; m < n; ++m) {
    machines[static_cast<size_t>(m)] = m;
  }
  return machines;
}

// Builds the same collective three ways — no cache, cold cache, warm cache — and
// asserts structural fingerprints, task counts, and executed makespans are identical.
// `add` receives the graph and an optional cache; `make_deps` seeds per-participant
// dependency tasks (identically into every graph).
void ExpectCachedMatchesFresh(
    const ClusterSpec& spec,
    const std::function<std::vector<TaskId>(TaskGraph&)>& make_deps,
    const std::function<CollectiveSchedule(TaskGraph&, const std::vector<TaskId>&,
                                           CollectiveScheduleCache*)>& add) {
  TaskGraph fresh;
  CollectiveSchedule fresh_schedule = add(fresh, make_deps(fresh), nullptr);

  CollectiveScheduleCache cache;
  TaskGraph cold;
  CollectiveSchedule cold_schedule = add(cold, make_deps(cold), &cache);
  EXPECT_EQ(cache.misses(), 1u);

  TaskGraph warm;
  CollectiveSchedule warm_schedule = add(warm, make_deps(warm), &cache);
  EXPECT_GE(cache.hits(), 1u);

  EXPECT_EQ(fresh.num_tasks(), cold.num_tasks());
  EXPECT_EQ(fresh.num_tasks(), warm.num_tasks());
  EXPECT_EQ(fresh.StructuralFingerprint(), cold.StructuralFingerprint());
  EXPECT_EQ(fresh.StructuralFingerprint(), warm.StructuralFingerprint());
  ASSERT_EQ(fresh_schedule.done.size(), warm_schedule.done.size());
  for (size_t i = 0; i < fresh_schedule.done.size(); ++i) {
    EXPECT_EQ(fresh_schedule.done[i], warm_schedule.done[i]) << "done[" << i << "]";
  }
  EXPECT_EQ(fresh_schedule.all_done, warm_schedule.all_done);
  EXPECT_EQ(cold_schedule.all_done, warm_schedule.all_done);

  Cluster fresh_cluster(spec);
  Cluster warm_cluster(spec);
  TaskResult fresh_result = fresh.Execute(fresh_cluster);
  TaskResult warm_result = warm.Execute(warm_cluster);
  EXPECT_EQ(fresh_result.makespan, warm_result.makespan);
  EXPECT_EQ(fresh_result.finish_time, warm_result.finish_time);
}

TEST(ScheduleCacheTest, RingAllReduceAcrossSizes) {
  for (int n : {1, 2, 4, 8}) {
    for (int64_t bytes : {1'000ll, 8'000'003ll}) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " bytes=" << bytes);
      ExpectCachedMatchesFresh(
          FlatSpec(n, 1),
          [n](TaskGraph& graph) {
            std::vector<TaskId> deps;
            for (int i = 0; i < n; ++i) {
              deps.push_back(graph.AddDelay(1e-4 * (i + 1)));
            }
            return deps;
          },
          [n, bytes](TaskGraph& graph, const std::vector<TaskId>& deps,
                     CollectiveScheduleCache* cache) {
            return AddRingAllReduce(graph, AllMachines(n), bytes, deps,
                                    CollectiveOptions{}, cache);
          });
    }
  }
}

TEST(ScheduleCacheTest, RingAllReduceWithAbsentDeps) {
  // kNoTask deps change the emitted structure (no receiver gate barriers); the cached
  // plan must collapse to exactly the shape the direct builder produces.
  const int n = 4;
  ExpectCachedMatchesFresh(
      FlatSpec(n, 1),
      [](TaskGraph&) { return std::vector<TaskId>(n, kNoTask); },
      [](TaskGraph& graph, const std::vector<TaskId>& deps,
         CollectiveScheduleCache* cache) {
        return AddRingAllReduce(graph, AllMachines(n), 4'000'000, deps,
                                CollectiveOptions{}, cache);
      });
}

TEST(ScheduleCacheTest, RingAllReduceWithMixedDeps) {
  const int n = 5;
  ExpectCachedMatchesFresh(
      FlatSpec(n, 1),
      [](TaskGraph& graph) {
        std::vector<TaskId> deps(n, kNoTask);
        deps[1] = graph.AddDelay(0.5);
        deps[3] = graph.AddDelay(0.25);
        return deps;
      },
      [](TaskGraph& graph, const std::vector<TaskId>& deps,
         CollectiveScheduleCache* cache) {
        return AddRingAllReduce(graph, AllMachines(n), 10'000'000, deps,
                                CollectiveOptions{}, cache);
      });
}

TEST(ScheduleCacheTest, RingAllGathervUniformAndSkewedBlocks) {
  const int n = 6;
  for (bool skewed : {false, true}) {
    SCOPED_TRACE(testing::Message() << "skewed=" << skewed);
    std::vector<int64_t> blocks(static_cast<size_t>(n), 1'000'000);
    if (skewed) {
      for (int i = 0; i < n; ++i) {
        blocks[static_cast<size_t>(i)] = 100'000 * (i + 1);
      }
    }
    ExpectCachedMatchesFresh(
        FlatSpec(n, 1),
        [](TaskGraph& graph) {
          std::vector<TaskId> deps;
          for (int i = 0; i < n; ++i) {
            deps.push_back(graph.AddDelay(1e-5));
          }
          return deps;
        },
        [&blocks](TaskGraph& graph, const std::vector<TaskId>& deps,
                  CollectiveScheduleCache* cache) {
          return AddRingAllGatherv(graph, AllMachines(n), blocks, deps,
                                   CollectiveOptions{}, cache);
        });
  }
}

TEST(ScheduleCacheTest, HierarchicalAllReduceAcrossLayouts) {
  for (auto [machines, gpus] : {std::pair{1, 4}, {2, 1}, {2, 4}, {4, 6}}) {
    SCOPED_TRACE(testing::Message() << machines << "x" << gpus);
    RankLayout layout{machines, gpus};
    ExpectCachedMatchesFresh(
        FlatSpec(machines, gpus),
        [layout](TaskGraph& graph) {
          std::vector<TaskId> deps;
          for (int r = 0; r < layout.num_ranks(); ++r) {
            deps.push_back(graph.AddDelay(1e-5 * (r % 3 + 1)));
          }
          return deps;
        },
        [layout](TaskGraph& graph, const std::vector<TaskId>& deps,
                 CollectiveScheduleCache* cache) {
          return AddHierarchicalAllReduce(graph, layout, 4'000'000, deps,
                                          CollectiveOptions{}, cache);
        });
  }
}

TEST(ScheduleCacheTest, RankRingAllGathervAcrossLayouts) {
  for (auto [machines, gpus] : {std::pair{1, 1}, {2, 2}, {3, 4}}) {
    SCOPED_TRACE(testing::Message() << machines << "x" << gpus);
    RankLayout layout{machines, gpus};
    std::vector<int64_t> blocks(static_cast<size_t>(layout.num_ranks()), 500'000);
    ExpectCachedMatchesFresh(
        FlatSpec(machines, gpus),
        [layout](TaskGraph& graph) {
          std::vector<TaskId> deps;
          for (int r = 0; r < layout.num_ranks(); ++r) {
            deps.push_back(graph.AddDelay(2e-5));
          }
          return deps;
        },
        [layout, &blocks](TaskGraph& graph, const std::vector<TaskId>& deps,
                          CollectiveScheduleCache* cache) {
          return AddRankRingAllGatherv(graph, layout, blocks, deps, CollectiveOptions{},
                                       cache);
        });
  }
}

TEST(ScheduleCacheTest, TopologyAllReduceAcrossRackLayouts) {
  // The rack-aware plan replays byte-identically from the cache, across machine/GPU/
  // rack shapes, executed on a cluster whose spine links actually serialize.
  for (auto [machines, gpus, racks] :
       {std::tuple{2, 1, 2}, {4, 2, 2}, {8, 1, 2}, {6, 2, 3}}) {
    SCOPED_TRACE(testing::Message() << machines << "x" << gpus << " racks=" << racks);
    ClusterSpec spec = FlatSpec(machines, gpus);
    spec.topology.num_racks = racks;
    spec.topology.spine_bandwidth = 5e8;
    spec.topology.spine_latency = 5e-6;
    RankLayout layout{machines, gpus};
    const int num_racks = racks;
    ExpectCachedMatchesFresh(
        spec,
        [layout](TaskGraph& graph) {
          std::vector<TaskId> deps;
          for (int r = 0; r < layout.num_ranks(); ++r) {
            deps.push_back(graph.AddDelay(1e-5 * (r % 3 + 1)));
          }
          return deps;
        },
        [layout, num_racks](TaskGraph& graph, const std::vector<TaskId>& deps,
                            CollectiveScheduleCache* cache) {
          return AddTopologyAllReduce(graph, layout, num_racks, 4'000'000, deps,
                                      CollectiveOptions{}, cache);
        });
  }
}

TEST(ScheduleCacheTest, BroadcastAllGathervAcrossLayouts) {
  for (auto [machines, gpus] : {std::pair{1, 2}, {2, 2}, {4, 1}}) {
    SCOPED_TRACE(testing::Message() << machines << "x" << gpus);
    RankLayout layout{machines, gpus};
    ExpectCachedMatchesFresh(
        FlatSpec(machines, gpus),
        [layout](TaskGraph& graph) {
          std::vector<TaskId> deps;
          for (int r = 0; r < layout.num_ranks(); ++r) {
            deps.push_back(graph.AddDelay(1e-5 * (r + 1)));
          }
          return deps;
        },
        [layout](TaskGraph& graph, const std::vector<TaskId>& deps,
                 CollectiveScheduleCache* cache) {
          return AddBroadcastAllGatherv(graph, layout, 250'000, 300'000, deps, cache);
        });
  }
}

TEST(ScheduleCacheTest, DistinctKeysGetDistinctPlans) {
  CollectiveScheduleCache cache;
  CollectiveOptions options;
  cache.RingAllReduce(4, 1000, options);
  cache.RingAllReduce(4, 2000, options);
  cache.RingAllReduce(8, 1000, options);
  CollectiveOptions no_overhead;
  no_overhead.step_overhead = 0.0;
  cache.RingAllReduce(4, 1000, no_overhead);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.RingAllReduce(4, 1000, options);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ScheduleCacheTest, PlanIsRelocatableAcrossMachineLists) {
  // One cached plan serves any machine list of the same size: the ring over machines
  // {0,1,2} and the ring over {3,1,5} replay the same plan through different tables.
  CollectiveScheduleCache cache;
  ClusterSpec spec = FlatSpec(6, 1);
  TaskGraph graph_a;
  std::vector<TaskId> deps(3, kNoTask);
  AddRingAllReduce(graph_a, {0, 1, 2}, 3'000'000, deps, CollectiveOptions{}, &cache);
  TaskGraph graph_b;
  AddRingAllReduce(graph_b, {3, 1, 5}, 3'000'000, deps, CollectiveOptions{}, &cache);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(graph_a.num_tasks(), graph_b.num_tasks());
  // Same schedule, different machines: equal makespans on symmetric clusters.
  Cluster cluster_a(spec);
  Cluster cluster_b(spec);
  EXPECT_EQ(graph_a.Execute(cluster_a).makespan, graph_b.Execute(cluster_b).makespan);
  EXPECT_EQ(cluster_a.NicBytes(0), cluster_b.NicBytes(3));
}

}  // namespace
}  // namespace parallax
