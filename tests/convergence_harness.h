// Convergence-envelope harness for the gradient compression engines
// (docs/compression.md): run a fixed-seed training trajectory through a named engine
// and compare loss curves between compressed runs and the uncompressed "ps" baseline.
//
// Every trajectory is deterministic — same model seed, same data stream, same engine
// routing — so the envelope is a real regression bound, not a statistical one: a
// compressed run that leaves the envelope is a semantics change in the engine, never
// noise. The envelope is asserted on the mean loss over the trajectory's final window
// (single-step losses are batch-noisy even when fully deterministic).
#ifndef PARALLAX_TESTS_CONVERGENCE_HARNESS_H_
#define PARALLAX_TESTS_CONVERGENCE_HARNESS_H_

#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/api.h"
#include "src/sync/int8_ps.h"
#include "src/sync/topk_ps.h"

namespace parallax {

struct TrajectoryOptions {
  int ranks = 4;
  int steps = 40;
  float learning_rate = 0.3f;
  uint64_t data_seed = 8601;
};

// Registers a TopKPsEngine under `name` with `config` unless the name is already
// taken — the global registry outlives gtest repeats, so test registrations must be
// idempotent. (Config mismatches across callers of the same name would silently keep
// the first config; use one name per config.)
inline void EnsureTopKEngine(const std::string& name, TopKPsConfig config) {
  if (!SyncEngineRegistry::Global().Contains(name)) {
    Status status = RegisterTopKPsEngine(name, config);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

inline void EnsureInt8Engine(const std::string& name, Int8PsConfig config) {
  if (!SyncEngineRegistry::Global().Contains(name)) {
    Status status = RegisterInt8PsEngine(name, config);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

// One deterministic training trajectory: every variable routed through
// `engine_name`, fixed cluster shape, fixed data stream. Returns the per-step losses.
template <typename Model>
std::vector<float> RunTrajectory(Model& model, const std::string& engine_name,
                                 const TrajectoryOptions& options = {}) {
  auto runner = RunnerBuilder(model.graph(), model.loss())
                    .WithResources("m0:0,1;m1:0,1")
                    .WithLearningRate(options.learning_rate)
                    .WithSearch({.warmup_iterations = 2, .measured_iterations = 2})
                    .WithEngine("*", engine_name)
                    .Build();
  EXPECT_TRUE(runner.ok()) << engine_name << ": " << runner.status().ToString();
  if (!runner.ok()) {
    return {};
  }
  Rng rng(options.data_seed);
  std::vector<float> losses;
  losses.reserve(static_cast<size_t>(options.steps));
  for (int step = 0; step < options.steps; ++step) {
    losses.push_back(runner.value()->Step(model.TrainShards(options.ranks, rng)));
  }
  return losses;
}

// Mean loss over the last `window` steps — the envelope's unit of comparison.
inline double FinalWindowMean(const std::vector<float>& losses, size_t window) {
  EXPECT_GE(losses.size(), window);
  EXPECT_GT(window, 0u);
  if (losses.size() < window || window == 0) {
    return 0.0;
  }
  return std::accumulate(losses.end() - static_cast<ptrdiff_t>(window), losses.end(),
                         0.0) /
         static_cast<double>(window);
}

// The envelope: the compressed run must (a) actually learn — final window strictly
// below its own starting loss — and (b) land within `relative_slack` of the
// uncompressed baseline's final-window mean.
inline void ExpectWithinEnvelope(const std::vector<float>& compressed,
                                 const std::vector<float>& baseline, size_t window,
                                 double relative_slack, const std::string& label) {
  ASSERT_FALSE(compressed.empty()) << label;
  ASSERT_FALSE(baseline.empty()) << label;
  const double compressed_mean = FinalWindowMean(compressed, window);
  const double baseline_mean = FinalWindowMean(baseline, window);
  EXPECT_LT(compressed_mean, static_cast<double>(compressed.front()))
      << label << ": compressed run never learned";
  EXPECT_LE(compressed_mean, baseline_mean * (1.0 + relative_slack))
      << label << ": final-window mean " << compressed_mean
      << " left the envelope around baseline " << baseline_mean;
}

}  // namespace parallax

#endif  // PARALLAX_TESTS_CONVERGENCE_HARNESS_H_
