// Property tests for the gradient compression kernels (src/sync/compression.h):
// TopKSelectRows is pinned against a naive stable-sort reference across widths, k
// values, duplicate magnitudes, and ties; QuantizeDequantizeInt8Rows against its
// documented per-row error bound.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/sync/compression.h"

namespace parallax {
namespace {

// The reference implementation: stable-sort candidate positions by (score desc,
// row asc), take the first k rows, order the output ascending by row id. The kernel
// under test uses nth_element and must agree on the selected row multiset exactly —
// the (score, row) comparator is a total order over candidate *values*, so equal
// candidates are interchangeable and the multiset is well-defined.
std::vector<int64_t> ReferenceTopK(const std::vector<int64_t>& rows,
                                   const std::vector<float>& scores, int64_t k) {
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) {
      return scores[a] > scores[b];
    }
    return rows[a] < rows[b];
  });
  k = std::clamp<int64_t>(k, 0, static_cast<int64_t>(rows.size()));
  std::vector<int64_t> selected;
  selected.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    selected.push_back(rows[order[static_cast<size_t>(i)]]);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

void ExpectMatchesReference(const std::vector<int64_t>& rows,
                            const std::vector<float>& scores, int64_t k,
                            SparseWorkspace* workspace) {
  std::vector<int64_t> selected;
  TopKSelectRows(rows, scores, k, selected, workspace);
  EXPECT_EQ(selected, ReferenceTopK(rows, scores, k))
      << "n=" << rows.size() << " k=" << k;
  EXPECT_TRUE(std::is_sorted(selected.begin(), selected.end()));
}

TEST(TopKSelectRowsTest, MatchesSortReferenceAcrossWidthsAndK) {
  Rng rng(4201);
  SparseWorkspace workspace;
  for (int64_t n : {1, 2, 3, 7, 16, 63, 128, 1000}) {
    std::vector<int64_t> rows(static_cast<size_t>(n));
    std::vector<float> scores(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      rows[static_cast<size_t>(i)] = static_cast<int64_t>(rng.NextBounded(10000));
      scores[static_cast<size_t>(i)] =
          static_cast<float>(rng.NextUniform(0.0, 100.0));
    }
    for (int64_t k : {int64_t{0}, int64_t{1}, n / 3, n - 1, n, n + 5}) {
      ExpectMatchesReference(rows, scores, k, &workspace);
    }
  }
}

TEST(TopKSelectRowsTest, DuplicateMagnitudesBreakTiesByRowId) {
  // Every candidate scores identically: selection must degenerate to "the k smallest
  // row ids" — the documented (score desc, row asc) tie-break.
  std::vector<int64_t> rows = {42, 7, 99, 3, 55, 21};
  std::vector<float> scores(rows.size(), 2.5f);
  std::vector<int64_t> selected;
  TopKSelectRows(rows, scores, 3, selected);
  EXPECT_EQ(selected, (std::vector<int64_t>{3, 7, 21}));
  ExpectMatchesReference(rows, scores, 3, nullptr);
}

TEST(TopKSelectRowsTest, PartialTiesAtTheCutoff) {
  // Three candidates tie exactly at the k-th score; the tie-break must pick the
  // lowest row ids among them, deterministically.
  std::vector<int64_t> rows = {10, 20, 30, 40, 50};
  std::vector<float> scores = {9.0f, 1.0f, 1.0f, 1.0f, 5.0f};
  std::vector<int64_t> selected;
  TopKSelectRows(rows, scores, 3, selected);
  // 10 (9.0) and 50 (5.0) are in; of the 1.0-tie {20, 30, 40} only row 20 fits.
  EXPECT_EQ(selected, (std::vector<int64_t>{10, 20, 50}));
  ExpectMatchesReference(rows, scores, 3, nullptr);
}

TEST(TopKSelectRowsTest, DuplicateRowIdsCompeteIndependently) {
  // The engine never produces duplicate row ids, but the kernel's contract allows
  // them: each candidate competes on its own, and the selected multiset matches the
  // reference (row 5 appears twice when both its candidates make the cut).
  std::vector<int64_t> rows = {5, 8, 5, 2};
  std::vector<float> scores = {7.0f, 1.0f, 6.0f, 0.5f};
  std::vector<int64_t> selected;
  TopKSelectRows(rows, scores, 2, selected);
  EXPECT_EQ(selected, (std::vector<int64_t>{5, 5}));
  ExpectMatchesReference(rows, scores, 2, nullptr);
  ExpectMatchesReference(rows, scores, 3, nullptr);
}

TEST(TopKSelectRowsTest, KAtOrBeyondCandidateCountSelectsEverything) {
  std::vector<int64_t> rows = {9, 1, 4};
  std::vector<float> scores = {0.1f, 0.2f, 0.3f};
  std::vector<int64_t> selected;
  TopKSelectRows(rows, scores, 3, selected);
  EXPECT_EQ(selected, (std::vector<int64_t>{1, 4, 9}));
  TopKSelectRows(rows, scores, 1000, selected);
  EXPECT_EQ(selected, (std::vector<int64_t>{1, 4, 9}));
}

TEST(TopKSelectRowsTest, NonPositiveKSelectsNothingAndClearsOutput) {
  std::vector<int64_t> rows = {9, 1, 4};
  std::vector<float> scores = {0.1f, 0.2f, 0.3f};
  std::vector<int64_t> selected = {123, 456};  // stale contents must not leak
  TopKSelectRows(rows, scores, 0, selected);
  EXPECT_TRUE(selected.empty());
  selected = {123};
  TopKSelectRows(rows, scores, -3, selected);
  EXPECT_TRUE(selected.empty());
}

TEST(TopKSelectRowsTest, DeterministicAcrossRepeatsAndWorkspaceReuse) {
  Rng rng(4202);
  std::vector<int64_t> rows(500);
  std::vector<float> scores(500);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<int64_t>(rng.NextBounded(300));  // plenty of duplicates
    scores[i] = static_cast<float>(rng.NextBounded(8));    // heavy score ties
  }
  SparseWorkspace workspace;
  std::vector<int64_t> first;
  TopKSelectRows(rows, scores, 77, first, &workspace);
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<int64_t> again;
    TopKSelectRows(rows, scores, 77, again, repeat == 0 ? nullptr : &workspace);
    EXPECT_EQ(again, first);
  }
  EXPECT_EQ(first, ReferenceTopK(rows, scores, 77));
}

TEST(Int8QuantizeTest, ErrorBoundedByHalfScalePerRow) {
  Rng rng(4203);
  const int64_t rows = 37;
  const int64_t width = 24;
  std::vector<float> src(static_cast<size_t>(rows * width));
  for (float& v : src) {
    v = static_cast<float>(rng.NextGaussian());
  }
  std::vector<float> dst(src.size());
  std::vector<float> scales;
  QuantizeDequantizeInt8Rows(src, dst, rows, width, &scales);
  ASSERT_EQ(scales.size(), static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    float maxabs = 0.0f;
    for (int64_t j = 0; j < width; ++j) {
      maxabs = std::max(maxabs, std::fabs(src[static_cast<size_t>(r * width + j)]));
    }
    EXPECT_NEAR(scales[static_cast<size_t>(r)], maxabs / 127.0f, maxabs * 1e-6f);
    for (int64_t j = 0; j < width; ++j) {
      const size_t idx = static_cast<size_t>(r * width + j);
      // Documented bound: |v' - v| <= scale/2 (plus float rounding headroom).
      EXPECT_LE(std::fabs(dst[idx] - src[idx]),
                scales[static_cast<size_t>(r)] * 0.5f * (1.0f + 1e-5f))
          << "row " << r << " col " << j;
    }
  }
}

TEST(Int8QuantizeTest, RowMaximumSurvivesAndZeroRowsStayZero) {
  // Row 0: the maximum magnitude element maps to exactly +/-127 steps, so it survives
  // the round trip up to one float rounding. Row 1: all zeros -> scale 0, stays zero.
  std::vector<float> src = {0.5f, -2.0f, 1.0f, 0.25f,  //
                            0.0f, 0.0f, 0.0f, 0.0f};
  std::vector<float> dst(src.size(), 99.0f);
  std::vector<float> scales;
  QuantizeDequantizeInt8Rows(src, dst, 2, 4, &scales);
  EXPECT_NEAR(dst[1], -2.0f, 2.0f * 1e-6f);
  EXPECT_EQ(scales[1], 0.0f);
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(dst[i], 0.0f);
  }
}

TEST(Int8QuantizeTest, InPlaceAliasingMatchesOutOfPlace) {
  Rng rng(4204);
  std::vector<float> src(96);
  for (float& v : src) {
    v = static_cast<float>(rng.NextUniform(-3.0, 3.0));
  }
  std::vector<float> out(src.size());
  QuantizeDequantizeInt8Rows(src, out, 8, 12);
  std::vector<float> in_place = src;
  QuantizeDequantizeInt8Rows(in_place, in_place, 8, 12);
  EXPECT_EQ(in_place, out);
}

TEST(Int8QuantizeTest, DeterministicAcrossRepeats) {
  Rng rng(4205);
  std::vector<float> src(200);
  for (float& v : src) {
    v = static_cast<float>(rng.NextGaussian() * 0.01);
  }
  std::vector<float> a(src.size());
  std::vector<float> b(src.size());
  QuantizeDequantizeInt8Rows(src, a, 10, 20);
  QuantizeDequantizeInt8Rows(src, b, 10, 20);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace parallax
