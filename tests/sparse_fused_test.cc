// Property tests for the fused sparse aggregation pipeline: the sort-based
// Coalesced/Sum, the counting-sort SplitSlicesByPartition, and the (optionally
// parallel) ScatterSgdUpdate must match the naive reference implementations
// BIT-FOR-BIT — same accumulation order per output row — across randomized nnz, row
// widths, duplicate-index densities, and thread-pool sizes, including nnz=0 and
// all-duplicate edge cases. The references below reproduce the seed implementations
// (std::map slot assignment, Concat-then-coalesce, sequential scatter).
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/base/thread_pool.h"
#include "src/ps/partition.h"
#include "src/tensor/sparse_workspace.h"
#include "src/tensor/tensor_ops.h"
#include "tests/naive_reference.h"

namespace parallax {
namespace {

// ---- Helpers -------------------------------------------------------------------------

// dup_span controls duplicate density: indices are drawn from [0, dup_span); a small
// span forces heavy duplication, dup_span == rows gives mostly-unique indices.
IndexedSlices MakeRandomSlices(int64_t rows, int64_t width, int64_t nnz, int64_t dup_span,
                               Rng& rng) {
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < nnz; ++i) {
    indices.push_back(static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(dup_span))));
  }
  return IndexedSlices(std::move(indices),
                       RandomNormal(TensorShape({nnz, width}), rng),
                       TensorShape({rows, width}));
}

void ExpectBitIdentical(const IndexedSlices& got, const IndexedSlices& want,
                        const std::string& context) {
  ASSERT_EQ(got.nnz_rows(), want.nnz_rows()) << context;
  ASSERT_TRUE(got.dense_shape() == want.dense_shape()) << context;
  ASSERT_EQ(got.indices(), want.indices()) << context;
  auto gv = got.values().floats();
  auto wv = want.values().floats();
  ASSERT_EQ(gv.size(), wv.size()) << context;
  for (size_t i = 0; i < gv.size(); ++i) {
    ASSERT_EQ(gv[i], wv[i]) << context << " at flat element " << i;
  }
}

void ExpectTensorsBitIdentical(const Tensor& got, const Tensor& want,
                               const std::string& context) {
  ASSERT_TRUE(got.shape() == want.shape()) << context;
  auto gv = got.floats();
  auto wv = want.floats();
  for (size_t i = 0; i < gv.size(); ++i) {
    ASSERT_EQ(gv[i], wv[i]) << context << " at flat element " << i;
  }
}

struct Case {
  int64_t rows;
  int64_t width;
  int64_t nnz;
  int64_t dup_span;
};

std::vector<Case> PropertyCases() {
  return {
      {16, 4, 0, 16},          // nnz = 0
      {16, 4, 1, 16},          // single row
      {64, 1, 200, 1},         // all duplicates, width 1
      {64, 8, 500, 3},         // nearly all duplicates
      {1000, 3, 700, 1000},    // mostly unique, odd width
      {1000, 16, 1000, 50},    // heavy duplication, wider rows
      {100000, 8, 5000, 100000},   // radix-sort path, sparse touch
      {100000, 4, 60000, 20000},   // radix-sort path, duplicate-heavy
  };
}

// ---- Properties ----------------------------------------------------------------------

TEST(SparseFusedTest, CoalescedMatchesNaiveBitForBit) {
  Rng rng(101);
  for (int pool_threads : {1, 2, 4}) {
    ThreadPool pool(pool_threads);
    SparseWorkspace ws(&pool);
    for (const Case& c : PropertyCases()) {
      IndexedSlices slices = MakeRandomSlices(c.rows, c.width, c.nnz, c.dup_span, rng);
      IndexedSlices want = NaiveCoalesce(slices);
      std::string context = StrFormat("threads=%d nnz=%lld dup_span=%lld", pool_threads,
                                      static_cast<long long>(c.nnz),
                                      static_cast<long long>(c.dup_span));
      // With and without a workspace, and again on the same workspace (buffer reuse
      // across differing sizes must not leak state between calls).
      ExpectBitIdentical(slices.Coalesced(), want, context + " no-ws");
      ExpectBitIdentical(slices.Coalesced(&ws), want, context + " ws");
      ExpectBitIdentical(slices.Coalesced(&ws), want, context + " ws-reused");
    }
  }
}

TEST(SparseFusedTest, FusedSumMatchesConcatCoalesceBitForBit) {
  Rng rng(202);
  for (int pool_threads : {1, 3}) {
    ThreadPool pool(pool_threads);
    SparseWorkspace ws(&pool);
    for (int k : {1, 2, 5}) {
      for (const Case& c : PropertyCases()) {
        std::vector<IndexedSlices> inputs;
        for (int s = 0; s < k; ++s) {
          // Vary nnz per contribution, including empty contributions.
          int64_t nnz = s == 1 ? 0 : c.nnz;
          inputs.push_back(MakeRandomSlices(c.rows, c.width, nnz, c.dup_span, rng));
        }
        IndexedSlices want = NaiveSum(inputs);
        std::string context = StrFormat("threads=%d k=%d nnz=%lld dup_span=%lld",
                                        pool_threads, k, static_cast<long long>(c.nnz),
                                        static_cast<long long>(c.dup_span));
        ExpectBitIdentical(IndexedSlices::Sum(inputs), want, context + " no-ws");
        ExpectBitIdentical(IndexedSlices::Sum(inputs, &ws), want, context + " ws");
      }
    }
  }
}

TEST(SparseFusedTest, ScatterSgdUpdateMatchesNaiveForAllPoolSizes) {
  Rng rng(303);
  for (int pool_threads : {1, 2, 4}) {
    ThreadPool pool(pool_threads);
    SparseWorkspace ws(&pool);
    for (const Case& c : PropertyCases()) {
      IndexedSlices raw = MakeRandomSlices(c.rows, c.width, c.nnz, c.dup_span, rng);
      // Both the raw (unsorted, duplicate-bearing) gradient and the coalesced
      // (sorted-unique) one, which is what triggers the parallel path.
      for (const IndexedSlices& grad : {raw, raw.Coalesced()}) {
        Tensor params = RandomNormal(TensorShape({c.rows, c.width}), rng);
        Tensor want = params.Clone();
        NaiveScatterSgd(want, grad, 0.05f);
        Tensor got = params.Clone();
        ScatterSgdUpdate(got, grad, 0.05f, &ws);
        ExpectTensorsBitIdentical(
            got, want,
            StrFormat("threads=%d nnz=%lld", pool_threads,
                      static_cast<long long>(grad.nnz_rows())));
      }
    }
  }
}

TEST(SparseFusedTest, SplitSlicesByPartitionMatchesNaive) {
  Rng rng(404);
  SparseWorkspace ws;
  for (int partitions : {1, 3, 8}) {
    for (const Case& c : PropertyCases()) {
      if (c.rows < partitions) {
        continue;
      }
      IndexedSlices slices = MakeRandomSlices(c.rows, c.width, c.nnz, c.dup_span, rng);
      RowPartition partition(c.rows, partitions);
      std::vector<IndexedSlices> want = NaiveSplit(slices, partition);
      std::vector<IndexedSlices> got = SplitSlicesByPartition(slices, partition, &ws);
      ASSERT_EQ(got.size(), want.size());
      for (size_t p = 0; p < got.size(); ++p) {
        ExpectBitIdentical(got[p], want[p],
                           StrFormat("partitions=%d piece=%zu nnz=%lld", partitions, p,
                                     static_cast<long long>(c.nnz)));
      }
    }
  }
}

TEST(SparseFusedTest, SumAfterSplitEqualsSplitAfterSum) {
  // End-to-end PS-shard identity: splitting each worker's gradient then summing per
  // piece must equal summing globally then splitting — the algebra the partitioned
  // accumulators rely on. (Values, not bit-layout: accumulation orders differ.)
  Rng rng(505);
  SparseWorkspace ws;
  const int64_t rows = 300, width = 4;
  RowPartition partition(rows, 4);
  std::vector<IndexedSlices> workers;
  for (int w = 0; w < 3; ++w) {
    workers.push_back(MakeRandomSlices(rows, width, 200, 40, rng));
  }
  IndexedSlices global = IndexedSlices::Sum(workers, &ws);
  std::vector<IndexedSlices> split_of_sum = SplitSlicesByPartition(global, partition, &ws);
  for (int p = 0; p < partition.num_partitions(); ++p) {
    std::vector<IndexedSlices> per_worker_pieces;
    for (const IndexedSlices& w : workers) {
      per_worker_pieces.push_back(
          SplitSlicesByPartition(w, partition, &ws)[static_cast<size_t>(p)]);
    }
    IndexedSlices sum_of_split = IndexedSlices::Sum(per_worker_pieces, &ws);
    ASSERT_EQ(sum_of_split.indices(), split_of_sum[static_cast<size_t>(p)].indices());
    ASSERT_TRUE(AllClose(sum_of_split.values(),
                         split_of_sum[static_cast<size_t>(p)].values(), 1e-5f));
  }
}

TEST(SparseFusedTest, AccessRatioCachedValueMatchesDefinition) {
  Rng rng(606);
  for (const Case& c : PropertyCases()) {
    IndexedSlices slices = MakeRandomSlices(c.rows, c.width, c.nnz, c.dup_span, rng);
    std::unordered_set<int64_t> unique(slices.indices().begin(), slices.indices().end());
    double want = static_cast<double>(unique.size()) / static_cast<double>(c.rows);
    EXPECT_DOUBLE_EQ(slices.AccessRatio(), want);
    EXPECT_DOUBLE_EQ(slices.AccessRatio(), want);  // cached second call
    EXPECT_EQ(slices.unique_rows(), static_cast<int64_t>(unique.size()));
  }
}

TEST(SparseFusedTest, CoalescedOutputIsSortedUnique) {
  Rng rng(707);
  SparseWorkspace ws;
  for (const Case& c : PropertyCases()) {
    IndexedSlices out =
        MakeRandomSlices(c.rows, c.width, c.nnz, c.dup_span, rng).Coalesced(&ws);
    for (int64_t i = 1; i < out.nnz_rows(); ++i) {
      EXPECT_LT(out.indices()[static_cast<size_t>(i - 1)],
                out.indices()[static_cast<size_t>(i)]);
    }
  }
}

}  // namespace
}  // namespace parallax
