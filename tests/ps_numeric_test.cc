#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/models/trainable.h"
#include "src/ps/ps_numeric.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {
namespace {

constexpr float kLr = 0.2f;

// Reference semantics: single-GPU gradient accumulation over the shards (mean), applied
// to a plain store — what the paper's "correct variable updates as done in a single-GPU
// code" means for synchronous training.
VariableStore ReferenceStep(const Graph& graph, const std::vector<StepResult>& per_rank,
                            VariableStore store, float lr) {
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    int key = static_cast<int>(v);
    if (per_rank.front().grads.find(key) == per_rank.front().grads.end()) {
      continue;
    }
    Tensor sum = Tensor::Zeros(graph.variables()[v].shape);
    for (const StepResult& r : per_rank) {
      AddInPlace(sum, r.grads.at(key).ToDense(graph.variables()[v].shape));
    }
    ScaleInPlace(sum, 1.0f / static_cast<float>(per_rank.size()));
    AxpyInPlace(store.GetMutable(key), -lr, sum);
  }
  return store;
}

std::vector<StepResult> ComputeGrads(WordLmModel& model, const VariableStore& values,
                                     int ranks, Rng& rng) {
  Executor executor(model.graph());
  std::vector<FeedMap> shards = model.TrainShards(ranks, rng);
  std::vector<StepResult> results;
  for (int r = 0; r < ranks; ++r) {
    results.push_back(executor.RunStep(values, shards[static_cast<size_t>(r)], model.loss()));
  }
  return results;
}

class PsConfigParamTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PsConfigParamTest, MatchesSingleDeviceReference) {
  auto [partitions, local_agg] = GetParam();
  WordLmModel model({.vocab_size = 40, .embedding_dim = 6, .hidden_dim = 8,
                     .batch_per_rank = 12, .seed = 101});
  PsNumericConfig config;
  config.sparse_partitions = partitions;
  config.local_aggregation = local_agg;
  config.ranks_per_machine = 2;
  PsNumericEngine engine(model.graph(), config);

  VariableStore reference = VariableStore::InitFrom(*model.graph());
  Rng rng(7);
  for (int step = 0; step < 5; ++step) {
    // Workers read the PS values (engine and reference must agree at every step).
    std::vector<StepResult> grads = ComputeGrads(model, engine.CurrentValues(), 4, rng);
    engine.ApplyStep(grads, kLr);
    reference = ReferenceStep(*model.graph(), grads, std::move(reference), kLr);
    VariableStore actual = engine.CurrentValues();
    for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
      EXPECT_TRUE(AllClose(actual.Get(static_cast<int>(v)),
                           reference.Get(static_cast<int>(v)), 2e-4f))
          << "variable " << model.graph()->variables()[v].name << " at step " << step
          << " with P=" << partitions << " local_agg=" << local_agg;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, PsConfigParamTest,
                         ::testing::Combine(::testing::Values(1, 4, 8),
                                            ::testing::Bool()));

TEST(PsVariableTest, MaterializeEqualsInitial) {
  Rng rng(41);
  Tensor initial = RandomNormal(TensorShape({11, 3}), rng);
  PsVariable var(initial, 4);
  EXPECT_TRUE(AllClose(var.Materialize(), initial, 0.0f));
  EXPECT_EQ(var.num_partitions(), 4);
}

TEST(PsVariableTest, PartitionedSparseUpdateEqualsWholeUpdate) {
  Rng rng(42);
  Tensor initial = RandomNormal(TensorShape({20, 4}), rng);
  PsVariable whole(initial, 1);
  PsVariable split(initial, 6);
  std::vector<int64_t> indices = {0, 5, 5, 13, 19};
  IndexedSlices grad(indices, RandomNormal(TensorShape({5, 4}), rng),
                     TensorShape({20, 4}));
  whole.ApplySparseSgd(grad, 0.3f);
  split.ApplySparseSgd(grad, 0.3f);
  EXPECT_TRUE(AllClose(whole.Materialize(), split.Materialize(), 1e-6f));
}

TEST(PsVariableTest, PartitionedDenseUpdateEqualsWholeUpdate) {
  Rng rng(43);
  Tensor initial = RandomNormal(TensorShape({20, 4}), rng);
  PsVariable whole(initial, 1);
  PsVariable split(initial, 5);
  Tensor grad = RandomNormal(TensorShape({20, 4}), rng);
  whole.ApplyDenseSgd(grad, 0.3f);
  split.ApplyDenseSgd(grad, 0.3f);
  EXPECT_TRUE(AllClose(whole.Materialize(), split.Materialize(), 1e-6f));
}

TEST(PsNumericTest, SumAggregationScalesLikeRankCount) {
  WordLmModel model({.vocab_size = 30, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 103});
  PsNumericConfig sum_config;
  sum_config.dense_aggregation = AggregationMethod::kSum;
  sum_config.sparse_aggregation = AggregationMethod::kSum;
  PsNumericEngine sum_engine(model.graph(), sum_config);
  PsNumericEngine avg_engine(model.graph(), PsNumericConfig{});

  Rng rng(9);
  std::vector<StepResult> grads = ComputeGrads(model, sum_engine.CurrentValues(), 2, rng);
  // Applying the sum with lr is the same as applying the average with 2*lr.
  sum_engine.ApplyStep(grads, kLr);
  avg_engine.ApplyStep(grads, 2 * kLr);
  for (size_t v = 0; v < model.graph()->variables().size(); ++v) {
    EXPECT_TRUE(AllClose(sum_engine.CurrentValues().Get(static_cast<int>(v)),
                         avg_engine.CurrentValues().Get(static_cast<int>(v)), 1e-5f));
  }
}

TEST(PsNumericTest, ManagedVariablesFilterUpdates) {
  WordLmModel model({.vocab_size = 30, .embedding_dim = 4, .hidden_dim = 6,
                     .batch_per_rank = 8, .seed = 104});
  PsNumericConfig config;
  config.managed_variables = {0};  // only the input embedding
  PsNumericEngine engine(model.graph(), config);
  VariableStore before = engine.CurrentValues();
  EXPECT_TRUE(before.Contains(0));
  EXPECT_FALSE(before.Contains(1));
  Rng rng(11);
  std::vector<StepResult> grads =
      ComputeGrads(model, VariableStore::InitFrom(*model.graph()), 2, rng);
  engine.ApplyStep(grads, kLr);
  VariableStore after = engine.CurrentValues();
  EXPECT_GT(MaxAbsDiff(before.Get(0), after.Get(0)), 0.0f);
}

}  // namespace
}  // namespace parallax
