#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/sim/task_graph.h"

namespace parallax {
namespace {

ClusterSpec TinySpec(int machines, int gpus) {
  ClusterSpec spec;
  spec.num_machines = machines;
  spec.gpus_per_machine = gpus;
  spec.cores_per_machine = 4;
  spec.nic_bandwidth = 1e9;   // 1 GB/s: easy mental math
  spec.nic_latency = 1e-3;    // 1 ms
  spec.pcie_bandwidth = 2e9;
  spec.pcie_latency = 1e-4;
  return spec;
}

TEST(LinkQueueTest, SerializesFifo) {
  LinkQueue link(1e9, 0.0);
  EXPECT_DOUBLE_EQ(link.ScheduleSerialization(0.0, 500'000'000), 0.5);
  // Second transfer queues behind the first even though it was ready at t=0.
  EXPECT_DOUBLE_EQ(link.ScheduleSerialization(0.0, 500'000'000), 1.0);
  // A transfer ready later starts at its ready time.
  EXPECT_DOUBLE_EQ(link.ScheduleSerialization(2.0, 1'000'000'000), 3.0);
  EXPECT_EQ(link.total_bytes(), 2'000'000'000);
}

TEST(CorePoolTest, ParallelUpToCoreCount) {
  CorePool pool(2);
  EXPECT_DOUBLE_EQ(pool.Schedule(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(pool.Schedule(0.0, 1.0), 1.0);  // second core
  EXPECT_DOUBLE_EQ(pool.Schedule(0.0, 1.0), 2.0);  // queues
  EXPECT_DOUBLE_EQ(pool.total_busy(), 3.0);
}

TEST(GpuDeviceTest, Serializes) {
  GpuDevice gpu;
  EXPECT_DOUBLE_EQ(gpu.Schedule(0.0, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(gpu.Schedule(0.1, 0.25), 0.5);
}

TEST(TaskGraphTest, ChainAccumulatesTime) {
  Cluster cluster(TinySpec(1, 1));
  TaskGraph graph;
  TaskId a = graph.AddGpuCompute(0, 0, 0.1);
  TaskId b = graph.AddGpuCompute(0, 0, 0.2, {a});
  TaskId c = graph.AddGpuCompute(0, 0, 0.3, {b});
  TaskResult result = graph.Execute(cluster);
  EXPECT_NEAR(result.makespan, 0.6, 1e-12);
  EXPECT_NEAR(graph.FinishTime(c), 0.6, 1e-12);
}

TEST(TaskGraphTest, DiamondTakesLongestPath) {
  Cluster cluster(TinySpec(2, 1));
  TaskGraph graph;
  TaskId root = graph.AddDelay(0.1);
  TaskId fast = graph.AddGpuCompute(0, 0, 0.1, {root});
  TaskId slow = graph.AddGpuCompute(1, 0, 0.7, {root});
  TaskId join = graph.AddBarrier({fast, slow});
  TaskResult result = graph.Execute(cluster);
  EXPECT_NEAR(graph.FinishTime(join), 0.8, 1e-12);
  EXPECT_NEAR(result.makespan, 0.8, 1e-12);
}

TEST(TaskGraphTest, TransferTimeIsStoreAndForwardPlusLatency) {
  // Store-and-forward: serialization through the out-link, then the in-link (2x the
  // single-link time when uncontended), plus one propagation latency.
  Cluster cluster(TinySpec(2, 1));
  TaskGraph graph;
  TaskId t = graph.AddTransfer(0, 1, 500'000'000);  // 0.5 s per link at 1 GB/s
  graph.Execute(cluster);
  EXPECT_NEAR(graph.FinishTime(t), 1.0 + 1e-3, 1e-9);
}

TEST(TaskGraphTest, IncastSerializesAtReceiver) {
  // 4 senders to one receiver: sender out-links run in parallel (0.25 s each); the
  // receiver's in-link then serializes all four.
  Cluster cluster(TinySpec(5, 1));
  TaskGraph graph;
  std::vector<TaskId> transfers;
  for (int src = 1; src <= 4; ++src) {
    transfers.push_back(graph.AddTransfer(src, 0, 250'000'000));  // 0.25 s each
  }
  TaskId join = graph.AddBarrier(std::span<const TaskId>(transfers));
  graph.Execute(cluster);
  EXPECT_NEAR(graph.FinishTime(join), 0.25 + 1.0 + 1e-3, 1e-9);
  EXPECT_EQ(cluster.machine(0).nic_in.total_bytes(), 1'000'000'000);
}

TEST(TaskGraphTest, DisjointTransfersRunInParallel) {
  // 0->1 and 2->3 share no link: both finish in one store-and-forward time.
  Cluster cluster(TinySpec(4, 1));
  TaskGraph graph;
  TaskId a = graph.AddTransfer(0, 1, 500'000'000);
  TaskId b = graph.AddTransfer(2, 3, 500'000'000);
  TaskId join = graph.AddBarrier({a, b});
  graph.Execute(cluster);
  EXPECT_NEAR(graph.FinishTime(join), 1.0 + 1e-3, 1e-9);
}

TEST(TaskGraphTest, CpuWorkUsesCorePool) {
  ClusterSpec spec = TinySpec(1, 1);
  spec.cores_per_machine = 2;
  Cluster cluster(spec);
  TaskGraph graph;
  std::vector<TaskId> work;
  for (int i = 0; i < 4; ++i) {
    work.push_back(graph.AddCpuWork(0, 1.0));
  }
  TaskId join = graph.AddBarrier(std::span<const TaskId>(work));
  graph.Execute(cluster);
  // 4 unit tasks on 2 cores => 2 seconds.
  EXPECT_NEAR(graph.FinishTime(join), 2.0, 1e-12);
}

TEST(TaskGraphTest, DeterministicAcrossRuns) {
  auto run = [] {
    Cluster cluster(TinySpec(4, 2));
    TaskGraph graph;
    std::vector<TaskId> all;
    for (int m = 0; m < 4; ++m) {
      TaskId compute = graph.AddGpuCompute(m, m % 2, 0.01 * (m + 1));
      TaskId xfer = graph.AddTransfer(m, (m + 1) % 4, 10'000'000 * (m + 1), {compute});
      all.push_back(xfer);
    }
    TaskId join = graph.AddBarrier(std::span<const TaskId>(all));
    graph.Execute(cluster);
    return graph.FinishTime(join);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TaskGraphTest, LocalTransferUsesPcie) {
  Cluster cluster(TinySpec(1, 2));
  TaskGraph graph;
  TaskId t = graph.AddLocalTransfer(0, 1'000'000'000);  // 0.5 s per link at 2 GB/s
  graph.Execute(cluster);
  EXPECT_NEAR(graph.FinishTime(t), 1.0 + 1e-4, 1e-9);
  EXPECT_EQ(cluster.NicBytes(0), 0);  // local traffic never touches the NIC
}

TEST(TaskGraphTest, RejectsSelfTransfer) {
  TaskGraph graph;
  EXPECT_DEATH(graph.AddTransfer(1, 1, 100), "AddLocalTransfer");
}

TEST(TaskGraphTest, StartTimeOffsetsEverything) {
  Cluster cluster(TinySpec(1, 1));
  TaskGraph graph;
  TaskId a = graph.AddGpuCompute(0, 0, 0.5);
  TaskResult result = graph.Execute(cluster, 10.0);
  EXPECT_NEAR(graph.FinishTime(a), 10.5, 1e-12);
  EXPECT_NEAR(result.makespan, 0.5, 1e-12);
}

TEST(TaskGraphTest, ResourceStateCarriesAcrossGraphs) {
  // Second iteration's compute queues behind the first on the same GPU when started
  // before the first finished.
  Cluster cluster(TinySpec(1, 1));
  TaskGraph first;
  first.AddGpuCompute(0, 0, 1.0);
  first.Execute(cluster, 0.0);
  TaskGraph second;
  TaskId t = second.AddGpuCompute(0, 0, 1.0);
  second.Execute(cluster, 0.5);
  EXPECT_NEAR(second.FinishTime(t), 2.0, 1e-12);
}

TEST(ClusterTest, ByteAccountingResets) {
  Cluster cluster(TinySpec(2, 1));
  TaskGraph graph;
  graph.AddTransfer(0, 1, 1000);
  graph.Execute(cluster);
  EXPECT_EQ(cluster.NicBytes(0), 1000);
  EXPECT_EQ(cluster.NicBytes(1), 1000);
  cluster.ResetByteAccounting();
  EXPECT_EQ(cluster.NicBytes(0), 0);
}

}  // namespace
}  // namespace parallax
