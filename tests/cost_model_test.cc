#include <gtest/gtest.h>

#include <cmath>

#include "src/base/rng.h"
#include "src/core/cost_model.h"

namespace parallax {
namespace {

TEST(CostModelTest, FitRecoversExactThetas) {
  std::vector<std::pair<int, double>> samples;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    samples.emplace_back(p, 0.05 + 1.2 / p + 0.003 * p);
  }
  CostModelFit fit = FitCostModel(samples);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.theta0, 0.05, 1e-9);
  EXPECT_NEAR(fit.theta1, 1.2, 1e-9);
  EXPECT_NEAR(fit.theta2, 0.003, 1e-9);
  EXPECT_NEAR(fit.ContinuousOptimum(), std::sqrt(1.2 / 0.003), 1e-6);
}

TEST(CostModelTest, FitNeedsThreeSamples) {
  EXPECT_FALSE(FitCostModel({{1, 1.0}, {2, 0.8}}).ok);
}

// Property sweep: the search must land within 25% iteration time of the true optimum for
// a range of convex cost landscapes.
class SearchParamTest : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SearchParamTest, FindsNearOptimalPartitionCount) {
  auto [theta0, theta1, theta2] = GetParam();
  auto measure = [=](int p) { return theta0 + theta1 / p + theta2 * p; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 4096;
  PartitionSearchResult result = SearchPartitions(measure, options);
  double best_possible = measure(static_cast<int>(std::round(std::sqrt(theta1 / theta2))));
  EXPECT_LE(measure(result.best_partitions), best_possible * 1.25)
      << "chose P=" << result.best_partitions;
}

INSTANTIATE_TEST_SUITE_P(
    Landscapes, SearchParamTest,
    ::testing::Values(std::make_tuple(0.1, 2.0, 0.001),    // optimum ~45
                      std::make_tuple(0.05, 8.0, 0.0005),  // optimum ~126
                      std::make_tuple(0.2, 0.5, 0.01),     // optimum ~7
                      std::make_tuple(0.3, 0.05, 0.02),    // optimum ~1.6 (small P)
                      std::make_tuple(0.02, 30.0, 0.0002)  // optimum ~387 (large P)
                      ));

TEST(SearchTest, SamplingRunCountIsSmall) {
  // The paper: "Parallax spends at most 20 minutes to get sampling results of at most
  // 5 runs" — the double/halve schedule keeps the sample count logarithmic, not linear.
  auto measure = [](int p) { return 0.05 + 6.0 / p + 0.0008 * p; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  EXPECT_LE(result.samples.size(), 8u);
  EXPECT_GE(result.samples.size(), 3u);
}

TEST(SearchTest, StopsDoublingWhenTimeIncreases) {
  // Sharp minimum at 16: doubling past 32 should stop immediately.
  auto measure = [](int p) { return std::fabs(std::log2(p) - 4.0) + 0.1; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  for (const auto& [p, t] : result.samples) {
    EXPECT_LE(p, 128) << "kept doubling past the rise";
  }
}

TEST(SearchTest, RespectsMinAndMaxBounds) {
  auto measure = [](int p) { return 1.0 / p; };  // monotone decreasing: wants P = inf
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 64;
  PartitionSearchResult result = SearchPartitions(measure, options);
  EXPECT_LE(result.best_partitions, 64);
  for (const auto& [p, t] : result.samples) {
    EXPECT_LE(p, 64);
    EXPECT_GE(p, 1);
  }
}

TEST(SearchTest, NoisyMeasurementsStillConverge) {
  Rng rng(55);
  auto measure = [&](int p) {
    double noise = 1.0 + 0.03 * rng.NextGaussian();
    return (0.1 + 3.0 / p + 0.002 * p) * noise;
  };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  // True optimum ~39; accept a generous band under 3% noise.
  EXPECT_GE(result.best_partitions, 8);
  EXPECT_LE(result.best_partitions, 256);
}

TEST(SearchTest, PredictionInterpolatesWithinSampledRange) {
  auto measure = [](int p) { return 0.1 + 4.0 / p + 0.001 * p; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  int sampled_min = result.samples[0].first;
  int sampled_max = result.samples[0].first;
  for (const auto& [p, t] : result.samples) {
    sampled_min = std::min(sampled_min, p);
    sampled_max = std::max(sampled_max, p);
  }
  EXPECT_GE(result.best_partitions, sampled_min);
  EXPECT_LE(result.best_partitions, sampled_max);
}

}  // namespace
}  // namespace parallax
