#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/base/rng.h"
#include "src/core/cost_model.h"
#include "src/core/iteration_sim.h"
#include "src/sim/cluster.h"

namespace parallax {
namespace {

TEST(CostModelTest, FitRecoversExactThetas) {
  std::vector<std::pair<int, double>> samples;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    samples.emplace_back(p, 0.05 + 1.2 / p + 0.003 * p);
  }
  CostModelFit fit = FitCostModel(samples);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.theta0, 0.05, 1e-9);
  EXPECT_NEAR(fit.theta1, 1.2, 1e-9);
  EXPECT_NEAR(fit.theta2, 0.003, 1e-9);
  EXPECT_NEAR(fit.ContinuousOptimum(), std::sqrt(1.2 / 0.003), 1e-6);
}

TEST(CostModelTest, FitNeedsThreeSamples) {
  EXPECT_FALSE(FitCostModel({{1, 1.0}, {2, 0.8}}).ok);
}

// Property sweep: the search must land within 25% iteration time of the true optimum for
// a range of convex cost landscapes.
class SearchParamTest : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SearchParamTest, FindsNearOptimalPartitionCount) {
  auto [theta0, theta1, theta2] = GetParam();
  auto measure = [=](int p) { return theta0 + theta1 / p + theta2 * p; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 4096;
  PartitionSearchResult result = SearchPartitions(measure, options);
  double best_possible = measure(static_cast<int>(std::round(std::sqrt(theta1 / theta2))));
  EXPECT_LE(measure(result.best_partitions), best_possible * 1.25)
      << "chose P=" << result.best_partitions;
}

INSTANTIATE_TEST_SUITE_P(
    Landscapes, SearchParamTest,
    ::testing::Values(std::make_tuple(0.1, 2.0, 0.001),    // optimum ~45
                      std::make_tuple(0.05, 8.0, 0.0005),  // optimum ~126
                      std::make_tuple(0.2, 0.5, 0.01),     // optimum ~7
                      std::make_tuple(0.3, 0.05, 0.02),    // optimum ~1.6 (small P)
                      std::make_tuple(0.02, 30.0, 0.0002)  // optimum ~387 (large P)
                      ));

TEST(SearchTest, SamplingRunCountIsSmall) {
  // The paper: "Parallax spends at most 20 minutes to get sampling results of at most
  // 5 runs" — the double/halve schedule keeps the sample count logarithmic, not linear.
  auto measure = [](int p) { return 0.05 + 6.0 / p + 0.0008 * p; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  EXPECT_LE(result.samples.size(), 8u);
  EXPECT_GE(result.samples.size(), 3u);
}

TEST(SearchTest, StopsDoublingWhenTimeIncreases) {
  // Sharp minimum at 16: doubling past 32 should stop immediately.
  auto measure = [](int p) { return std::fabs(std::log2(p) - 4.0) + 0.1; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  for (const auto& [p, t] : result.samples) {
    EXPECT_LE(p, 128) << "kept doubling past the rise";
  }
}

TEST(SearchTest, RespectsMinAndMaxBounds) {
  auto measure = [](int p) { return 1.0 / p; };  // monotone decreasing: wants P = inf
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 64;
  PartitionSearchResult result = SearchPartitions(measure, options);
  EXPECT_LE(result.best_partitions, 64);
  for (const auto& [p, t] : result.samples) {
    EXPECT_LE(p, 64);
    EXPECT_GE(p, 1);
  }
}

TEST(SearchTest, NoisyMeasurementsStillConverge) {
  Rng rng(55);
  auto measure = [&](int p) {
    double noise = 1.0 + 0.03 * rng.NextGaussian();
    return (0.1 + 3.0 / p + 0.002 * p) * noise;
  };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  // True optimum ~39; accept a generous band under 3% noise.
  EXPECT_GE(result.best_partitions, 8);
  EXPECT_LE(result.best_partitions, 256);
}

// ---- PartitionPlan -------------------------------------------------------------------

TEST(PartitionPlanTest, UniformPlansAndOverridesRoundTrip) {
  PartitionPlan uniform = PartitionPlan::Uniform(4);
  EXPECT_TRUE(uniform.uniform());
  EXPECT_EQ(uniform.For("anything"), 4);
  EXPECT_EQ(uniform.MaxPartitions(), 4);
  EXPECT_EQ(uniform.ToString(), "P=4");
  EXPECT_EQ(uniform, PartitionPlan::Uniform(4));
  EXPECT_NE(uniform, PartitionPlan::Uniform(5));

  PartitionPlan plan;
  plan.Set("emb", 16);
  plan.Set("softmax", 2);
  plan.Set("softmax", 3);  // last Set wins
  EXPECT_FALSE(plan.uniform());
  EXPECT_EQ(plan.For("emb"), 16);
  EXPECT_EQ(plan.For("softmax"), 3);
  EXPECT_EQ(plan.For("unnamed"), 1);  // default
  EXPECT_EQ(plan.MaxPartitions(), 16);
  EXPECT_EQ(plan.ToString(), "{emb:16, softmax:3; default P=1}");
  EXPECT_NE(plan, uniform);
}

TEST(PartitionPlanTest, PlacementsRoundTripAndPrint) {
  PartitionPlan plan;
  plan.Set("emb", 4);
  plan.SetPlacement("emb", {0, 1, 2, 3});
  EXPECT_FALSE(plan.uniform());
  ASSERT_NE(plan.PlacementFor("emb"), nullptr);
  EXPECT_EQ(*plan.PlacementFor("emb"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plan.PlacementFor("other"), nullptr);
  EXPECT_EQ(plan.ToString(), "{emb:4@(0,1,2,3); default P=1}");

  PartitionPlan copy = plan;
  EXPECT_EQ(copy, plan);
  copy.SetPlacement("emb", {0, 0, 2, 3});
  EXPECT_NE(copy, plan);
  copy.SetPlacement("emb", {});  // empty clears back to round-robin
  EXPECT_EQ(copy.PlacementFor("emb"), nullptr);

  // A placement alone — no count override — is still a deviation from uniform: its
  // shards no longer follow round-robin.
  PartitionPlan placed_only;
  placed_only.SetPlacement("solo", {1});
  EXPECT_FALSE(placed_only.uniform());
  EXPECT_EQ(placed_only.ToString(), "{solo:1@(1); default P=1}");
}

// ---- Per-variable search (SearchPartitionPlan) ---------------------------------------

// A separable synthetic landscape: each variable contributes its own Equation-1 curve,
// so the joint optimum is each variable at its own continuous optimum — exactly the
// structure a single uniform P cannot fit when the theta1s differ.
struct SeparableLandscape {
  std::vector<PartitionSearchVariable> variables;
  std::vector<double> theta1;
  double theta2 = 0.002;

  double operator()(const PartitionPlan& plan) const {
    double seconds = 0.1;
    for (size_t v = 0; v < variables.size(); ++v) {
      double p = plan.For(variables[v].name);
      seconds += theta1[v] / p + theta2 * p;
    }
    return seconds;
  }
};

SeparableLandscape SkewedLandscape() {
  SeparableLandscape landscape;
  // Variable "a" wants sqrt(2.0/0.002) ~ 32 pieces; "b" wants sqrt(0.02/0.002) ~ 3.
  // Weights (alpha * elements) mirror the theta1 ratio, as they do in the simulator.
  landscape.variables = {{.name = "a", .alpha = 0.5, .num_elements = 4'000'000},
                         {.name = "b", .alpha = 0.5, .num_elements = 40'000}};
  landscape.theta1 = {2.0, 0.02};
  return landscape;
}

TEST(SearchPartitionPlanTest, FindsPerVariableOptimaAndBeatsBestUniform) {
  SeparableLandscape landscape = SkewedLandscape();
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 512;
  PartitionPlanSearchResult result =
      SearchPartitionPlan(landscape, landscape.variables, options);

  EXPECT_GE(result.plan.For("a"), 16);
  EXPECT_LE(result.plan.For("a"), 64);
  EXPECT_GE(result.plan.For("b"), 1);
  EXPECT_LE(result.plan.For("b"), 8);

  // Brute-force best uniform P for comparison.
  double best_uniform = landscape(PartitionPlan::Uniform(1));
  for (int p = 2; p <= 512; ++p) {
    best_uniform = std::min(best_uniform, landscape(PartitionPlan::Uniform(p)));
  }
  EXPECT_LT(result.seconds, best_uniform);
  // And the reported uniform baseline is the best uniform the sweep found (the fitted
  // search may land near, not exactly at, the brute-force optimum).
  EXPECT_GE(result.uniform_seconds, best_uniform * 0.999);
  EXPECT_LT(result.seconds, result.uniform_seconds);
}

TEST(SearchPartitionPlanTest, DeterministicAcrossRuns) {
  SeparableLandscape landscape = SkewedLandscape();
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 512;
  PartitionPlanSearchResult first =
      SearchPartitionPlan(landscape, landscape.variables, options);
  PartitionPlanSearchResult second =
      SearchPartitionPlan(landscape, landscape.variables, options);
  EXPECT_EQ(first.plan, second.plan);
  EXPECT_EQ(first.seconds, second.seconds);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.rounds, second.rounds);
}

TEST(SearchPartitionPlanTest, RespectsPerVariableCaps) {
  SeparableLandscape landscape = SkewedLandscape();
  landscape.variables[0].max_partitions = 4;  // "a" wants ~32 but only has 4 rows
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 512;
  PartitionPlanSearchResult result =
      SearchPartitionPlan(landscape, landscape.variables, options);
  EXPECT_LE(result.plan.For("a"), 4);
  for (const auto& [name, partitions] : result.plan.overrides()) {
    EXPECT_GE(partitions, 1);
  }
}

TEST(SearchPartitionPlanTest, SymmetricVariablesStayTogether) {
  // Identical variables: the per-variable search must not invent heterogeneity where
  // none pays (the coordinate margin suppresses noise-chasing moves).
  SeparableLandscape landscape;
  landscape.variables = {{.name = "x", .alpha = 0.3, .num_elements = 1'000'000},
                         {.name = "y", .alpha = 0.3, .num_elements = 1'000'000}};
  landscape.theta1 = {0.5, 0.5};
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 512;
  PartitionPlanSearchResult result =
      SearchPartitionPlan(landscape, landscape.variables, options);
  EXPECT_EQ(result.plan.For("x"), result.plan.For("y"));
}

TEST(SearchPartitionPlanTest, MemoizationKeepsSamplingBudgetSmall) {
  // The whole point of the paper's procedure is a handful of sampling runs; the
  // per-variable generalization must stay in the same regime — a few runs per
  // variable per descent round, with repeats served from the memo.
  SeparableLandscape landscape = SkewedLandscape();
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 512;
  PartitionPlanSearchResult result =
      SearchPartitionPlan(landscape, landscape.variables, options);
  EXPECT_LE(result.evaluations, 40);
  EXPECT_GE(result.evaluations, 5);
}

// ---- Warm start ----------------------------------------------------------------------

TEST(SearchPartitionPlanTest, WarmStartSkipsSweepAndKeepsQuality) {
  SeparableLandscape landscape = SkewedLandscape();
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 512;
  PartitionPlanSearchResult cold =
      SearchPartitionPlan(landscape, landscape.variables, options);
  ASSERT_FALSE(cold.warm_started);

  // Re-search after drift confined to "a": every previous count is known, only "a"
  // is marked drifted — the uniform sweep and the closed-form seed must not run.
  std::vector<PartitionSearchVariable> warm_vars = landscape.variables;
  for (PartitionSearchVariable& v : warm_vars) {
    v.previous_partitions = cold.plan.For(v.name);
    v.drifted = v.name == "a";
  }
  PartitionSearchOptions warm_options = options;
  warm_options.warm_start = true;
  PartitionPlanSearchResult warm = SearchPartitionPlan(landscape, warm_vars, warm_options);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_TRUE(warm.uniform.samples.empty()) << "uniform sweep ran despite warm start";
  EXPECT_LT(warm.evaluations, cold.evaluations);
  // Same landscape, started from the cold optimum: the warm plan cannot be worse.
  EXPECT_LE(warm.seconds, cold.seconds * 1.0001);
}

TEST(SearchPartitionPlanTest, WarmStartNeedsEveryPreviousCount) {
  SeparableLandscape landscape = SkewedLandscape();
  std::vector<PartitionSearchVariable> vars = landscape.variables;
  vars[0].previous_partitions = 32;
  vars[1].previous_partitions = 0;  // unknown: the warm start must disable itself
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  options.max_partitions = 512;
  options.warm_start = true;
  PartitionPlanSearchResult result = SearchPartitionPlan(landscape, vars, options);
  EXPECT_FALSE(result.warm_started);
  EXPECT_FALSE(result.uniform.samples.empty());
}

// ---- Placement search (the 2-rack demo scenario) -------------------------------------

// 2 racks x 2 machines over an oversubscribed spine — the topology of
// examples/topology_placement.cpp. The row caps (3 and 2 pieces) are chosen so the
// historical round-robin necessarily stacks the heavy embedding piece and a softmax
// piece on machine 0 while machine 3 idles: exactly the imbalance a searched placement
// can undo.
ClusterSpec TwoRackSpec() {
  ClusterSpec spec;
  spec.num_machines = 4;
  spec.gpus_per_machine = 2;
  spec.cores_per_machine = 4;
  spec.nic_bandwidth = 1e9;
  spec.nic_latency = 1e-6;
  spec.pcie_bandwidth = 4e9;
  spec.pcie_latency = 1e-6;
  spec.topology.num_racks = 2;
  spec.topology.spine_bandwidth = 1e9;  // 2:1 oversubscription per rack
  spec.topology.spine_latency = 5e-6;
  return spec;
}

std::vector<PartitionSearchVariable> TwoRackSearchVariables() {
  return {{.name = "emb", .alpha = 0.3, .num_elements = 4'000'000, .max_partitions = 3},
          {.name = "softmax", .alpha = 0.5, .num_elements = 600'000, .max_partitions = 2}};
}

// Measures a candidate plan on the simulated clock, the way the runner's search does:
// the searched variables as PS shards (counts row-capped, placement applied when its
// length matches), a fresh simulator per sample over one shared arena.
double MeasureTwoRackPlan(const PartitionPlan& plan, SimulationArena* arena) {
  const ClusterSpec spec = TwoRackSpec();
  std::vector<VariableSync> variables;
  for (const PartitionSearchVariable& searched : TwoRackSearchVariables()) {
    VariableSync sync;
    sync.spec = {searched.name, searched.num_elements, 64, true, searched.alpha};
    sync.method = SyncMethod::kPs;
    sync.partitions = RowCappedPartitions(plan.For(searched.name), searched.max_partitions);
    const std::vector<int>* placement = plan.PlacementFor(searched.name);
    if (placement != nullptr &&
        static_cast<int>(placement->size()) == sync.partitions) {
      sync.placement = *placement;
    }
    variables.push_back(std::move(sync));
  }
  IterationSimConfig config;
  config.ps_local_aggregation = true;
  config.ps_machine_level_pulls = true;
  IterationSimulator sim(spec, std::move(variables), 2e-3, 4, config, arena);
  return sim.MeasureIterationSeconds(3, 3);
}

TEST(PlacementSearchTest, TwoRackPlacedPlanBeatsBestObliviousPlan) {
  PartitionSearchOptions options;
  options.initial_partitions = 4;
  options.max_partitions = 16;
  options.warmup_iterations = 3;
  options.measured_iterations = 3;

  SimulationArena arena;
  auto measure = [&](const PartitionPlan& plan) {
    return MeasureTwoRackPlan(plan, &arena);
  };

  // The placement-oblivious baseline: the identical search with the placement pass off.
  PartitionPlanSearchResult oblivious =
      SearchPartitionPlan(measure, TwoRackSearchVariables(), options);
  EXPECT_TRUE(oblivious.plan.placements().empty());

  PartitionSearchOptions placed_options = options;
  placed_options.placement.enabled = true;
  placed_options.placement.num_machines = 4;
  placed_options.placement.num_racks = 2;
  placed_options.placement.nic_bandwidth = 1e9;
  placed_options.placement.spine_bandwidth = 1e9;
  PartitionPlanSearchResult placed =
      SearchPartitionPlan(measure, TwoRackSearchVariables(), placed_options);

  // The counts phases are identical, so the oblivious optimum IS the placed search's
  // round-robin baseline — and the adopted placement must beat it on the simulated
  // clock by a real margin (the tentpole's payoff).
  ASSERT_FALSE(placed.plan.placements().empty()) << placed.plan.ToString();
  EXPECT_EQ(placed.unplaced_seconds, oblivious.seconds);
  EXPECT_LT(placed.seconds, oblivious.seconds * (1.0 - 0.01))
      << "placed " << placed.plan.ToString() << " at " << placed.seconds
      << "s vs oblivious " << oblivious.plan.ToString() << " at " << oblivious.seconds;

  // Deterministic: the same search twice adopts the same placement.
  SimulationArena second_arena;
  auto second_measure = [&](const PartitionPlan& plan) {
    return MeasureTwoRackPlan(plan, &second_arena);
  };
  PartitionPlanSearchResult again =
      SearchPartitionPlan(second_measure, TwoRackSearchVariables(), placed_options);
  EXPECT_EQ(again.plan, placed.plan);
  EXPECT_EQ(again.seconds, placed.seconds);
}

TEST(SearchTest, PredictionInterpolatesWithinSampledRange) {
  auto measure = [](int p) { return 0.1 + 4.0 / p + 0.001 * p; };
  PartitionSearchOptions options;
  options.initial_partitions = 8;
  PartitionSearchResult result = SearchPartitions(measure, options);
  int sampled_min = result.samples[0].first;
  int sampled_max = result.samples[0].first;
  for (const auto& [p, t] : result.samples) {
    sampled_min = std::min(sampled_min, p);
    sampled_max = std::max(sampled_max, p);
  }
  EXPECT_GE(result.best_partitions, sampled_min);
  EXPECT_LE(result.best_partitions, sampled_max);
}

}  // namespace
}  // namespace parallax
