#!/usr/bin/env python3
"""Fails when README.md or docs/*.md contain relative links to paths that don't exist.

Checks every Markdown inline link `[text](target)`. External targets (http/https/
mailto) and pure in-page anchors (#...) are skipped; everything else is resolved
relative to the file containing the link and must exist in the repo.
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    dead = []
    for md in files:
        if not md.exists():
            dead.append(f"{md.relative_to(root)}: file listed for checking does not exist")
            continue
        for line_number, line in enumerate(md.read_text().splitlines(), start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                if not (md.parent / path).exists():
                    dead.append(f"{md.relative_to(root)}:{line_number}: dead link {target}")
    if dead:
        print("dead relative links found:")
        for entry in dead:
            print(f"  {entry}")
        return 1
    print(f"checked {len(files)} markdown files: no dead relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
