#!/usr/bin/env python3
"""Fails when the repo's Markdown contains relative links to paths that don't exist.

Coverage: every top-level *.md (README, ROADMAP, CHANGES, ...) plus everything under
docs/ (recursively), so a new doc is checked the moment it lands. Checks every
Markdown inline link `[text](target)`. External targets (http/https/mailto) and pure
in-page anchors (#...) are skipped; everything else is resolved relative to the file
containing the link and must exist in the repo.
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    files = sorted(root.glob("*.md")) + sorted((root / "docs").rglob("*.md"))
    if not files:
        print("no markdown files found: refusing to pass vacuously")
        return 1
    dead = []
    for md in files:
        for line_number, line in enumerate(md.read_text().splitlines(), start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                if not (md.parent / path).exists():
                    dead.append(f"{md.relative_to(root)}:{line_number}: dead link {target}")
    if dead:
        print("dead relative links found:")
        for entry in dead:
            print(f"  {entry}")
        return 1
    print(f"checked {len(files)} markdown files: no dead relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
