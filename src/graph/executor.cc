#include "src/graph/executor.h"

#include <algorithm>

#include "src/tensor/tensor_ops.h"

namespace parallax {

GradValue GradValue::MakeDense(Tensor tensor) {
  GradValue g;
  g.is_sparse_ = false;
  g.dense_ = std::move(tensor);
  return g;
}

GradValue GradValue::MakeSparse(IndexedSlices slices) {
  GradValue g;
  g.is_sparse_ = true;
  g.sparse_ = std::move(slices);
  return g;
}

const Tensor& GradValue::dense() const {
  PX_CHECK(!is_sparse_);
  return dense_;
}

const IndexedSlices& GradValue::sparse() const {
  PX_CHECK(is_sparse_);
  return sparse_;
}

Tensor& GradValue::mutable_dense() {
  PX_CHECK(!is_sparse_);
  return dense_;
}

IndexedSlices& GradValue::mutable_sparse() {
  PX_CHECK(is_sparse_);
  return sparse_;
}

int64_t GradValue::WireBytes() const {
  if (is_sparse_) {
    return sparse_.WireBytes();
  }
  return dense_.num_elements() * static_cast<int64_t>(sizeof(float));
}

void GradValue::Scale(float factor) {
  if (is_sparse_) {
    sparse_.Scale(factor);
  } else {
    ScaleInPlace(dense_, factor);
  }
}

Tensor GradValue::ToDense(const TensorShape& dense_shape) const {
  if (is_sparse_) {
    PX_CHECK(sparse_.dense_shape() == dense_shape);
    return sparse_.ToDense();
  }
  PX_CHECK(dense_.shape() == dense_shape);
  return dense_.Clone();
}

VariableStore VariableStore::InitFrom(const Graph& graph) {
  VariableStore store;
  for (size_t i = 0; i < graph.variables().size(); ++i) {
    store.values_[static_cast<int>(i)] = graph.variables()[i].initial_value.Clone();
  }
  return store;
}

const Tensor& VariableStore::Get(int variable_index) const {
  auto it = values_.find(variable_index);
  PX_CHECK(it != values_.end()) << "variable " << variable_index << " not in store";
  return it->second;
}

Tensor& VariableStore::GetMutable(int variable_index) {
  auto it = values_.find(variable_index);
  PX_CHECK(it != values_.end()) << "variable " << variable_index << " not in store";
  return it->second;
}

void VariableStore::Set(int variable_index, Tensor value) {
  values_[variable_index] = std::move(value);
}

bool VariableStore::Contains(int variable_index) const {
  return values_.find(variable_index) != values_.end();
}

void VariableStore::ApplySgd(int variable_index, const GradValue& grad, float learning_rate) {
  Tensor& value = GetMutable(variable_index);
  if (grad.is_sparse()) {
    ScatterSgdUpdate(value, grad.sparse(), learning_rate);
  } else {
    AxpyInPlace(value, -learning_rate, grad.dense());
  }
}

VariableStore VariableStore::Clone() const {
  VariableStore copy;
  for (const auto& [index, value] : values_) {
    copy.values_[index] = value.Clone();
  }
  return copy;
}

void Executor::Forward(const VariableStore& variables, const FeedMap& feeds, NodeId fetch,
                       ExecScratch& scratch) const {
  const auto& nodes = graph_->nodes();
  // Stale tensors in `values` are gated by `computed`; keeping them lets ops reuse
  // nothing here but avoids re-constructing the table every step.
  scratch.values.resize(nodes.size());
  scratch.computed.assign(nodes.size(), 0);
  // Temporaries are acquired in deterministic order across the whole forward+backward
  // pass, so each slot sees one stable shape per step (no realloc ping-pong).
  scratch.temp_cursor = 0;
  std::vector<Tensor>& values = scratch.values;
  std::vector<uint8_t>& computed = scratch.computed;

  // Needed set: backward closure of fetch (node inputs always precede the node).
  // Fetch-dependent but step-independent, so it is cached per scratch.
  std::vector<uint8_t>& needed = scratch.needed;
  if (scratch.needed_fetch != fetch || scratch.needed_graph != graph_ ||
      needed.size() != nodes.size()) {
    needed.assign(nodes.size(), 0);
    needed[static_cast<size_t>(fetch)] = 1;
    for (NodeId id = fetch; id >= 0; --id) {
      if (!needed[static_cast<size_t>(id)]) {
        continue;
      }
      for (NodeId input : nodes[static_cast<size_t>(id)].inputs) {
        needed[static_cast<size_t>(input)] = 1;
      }
    }
    scratch.needed_fetch = fetch;
    scratch.needed_graph = graph_;
  }

  for (NodeId id = 0; id <= fetch; ++id) {
    if (!needed[static_cast<size_t>(id)]) {
      continue;
    }
    const Node& n = nodes[static_cast<size_t>(id)];
    auto in = [&](size_t slot) -> const Tensor& {
      return values[static_cast<size_t>(n.inputs[slot])];
    };
    // Ops write into the node's persistent value slot through the *Into kernels, which
    // reuse its buffer across steps when the shape is stable and it is uniquely owned
    // (slots holding shared feed/variable tensors are swapped, never overwritten).
    Tensor& out = values[static_cast<size_t>(id)];
    switch (n.type) {
      case OpType::kPlaceholder: {
        auto it = feeds.find(id);
        PX_CHECK(it != feeds.end()) << "missing feed for placeholder " << n.name;
        out = it->second;
        break;
      }
      case OpType::kVariable:
        out = variables.Get(n.variable_index);
        break;
      case OpType::kMatMul:
        MatMulInto(out, in(0), in(1));
        break;
      case OpType::kBiasAdd: {
        const Tensor& x = in(0);
        const Tensor& bias = in(1);
        PX_CHECK_EQ(bias.shape().rank(), 1);
        PX_CHECK_EQ(x.shape().dim(1), bias.shape().dim(0));
        CopyInto(out, x);
        auto data = out.mutable_floats();
        auto b = bias.floats();
        int64_t rows = x.shape().dim(0);
        int64_t cols = x.shape().dim(1);
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            data[static_cast<size_t>(r * cols + c)] += b[static_cast<size_t>(c)];
          }
        }
        break;
      }
      case OpType::kTanh:
        TanhInto(out, in(0));
        break;
      case OpType::kRelu:
        ReluInto(out, in(0));
        break;
      case OpType::kConcatCols:
        ConcatColsPairInto(out, in(0), in(1));
        break;
      case OpType::kGather:
        GatherRowsInto(out, in(0), in(1).ints());
        break;
      case OpType::kGatherDotT: {
        Tensor& selected = scratch.NextTemp();
        GatherRowsInto(selected, in(1), in(2).ints());
        MatMulTransposeBInto(out, in(0), selected);
        break;
      }
      case OpType::kSoftmaxXentMean: {
        float loss = SoftmaxCrossEntropy(in(0), in(1), nullptr);
        if (out.is_float() && out.shape().rank() == 0 && out.UniquelyOwned()) {
          out.mutable_floats()[0] = loss;
        } else {
          out = Tensor::Scalar(loss);
        }
        break;
      }
    }
    computed[static_cast<size_t>(id)] = true;
  }
}

Tensor Executor::RunForward(const VariableStore& variables, const FeedMap& feeds,
                            NodeId fetch) const {
  ExecScratch scratch;
  Forward(variables, feeds, fetch, scratch);
  return scratch.values[static_cast<size_t>(fetch)];
}

StepResult Executor::RunStep(const VariableStore& variables, const FeedMap& feeds,
                             NodeId loss, ExecScratch* scratch) const {
  const auto& nodes = graph_->nodes();
  PX_CHECK(nodes[static_cast<size_t>(loss)].type == OpType::kSoftmaxXentMean)
      << "loss must be a SoftmaxXentMean node";

  ExecScratch local;
  ExecScratch& s = scratch != nullptr ? *scratch : local;
  Forward(variables, feeds, loss, s);
  std::vector<Tensor>& values = s.values;
  std::vector<uint8_t>& computed = s.computed;

  StepResult result;
  result.loss = values[static_cast<size_t>(loss)].at(0);

  // Per-node dense upstream gradients; sparse variable gradients accumulate separately.
  // Interior node_grad buffers persist across steps (the gradient buffer plan); variable
  // nodes are reset so their gradients — which escape into the result — are fresh.
  std::vector<Tensor>& node_grad = s.node_grad;
  std::vector<uint8_t>& has_grad = s.has_grad;
  node_grad.resize(nodes.size());
  has_grad.assign(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].type == OpType::kVariable) {
      node_grad[i] = Tensor();
    }
  }
  std::unordered_map<int, std::vector<IndexedSlices>>& sparse_grads = s.sparse_grads;
  sparse_grads.clear();

  // Routes a producer kernel at the accumulation target: the first contribution writes
  // straight into the node's plan buffer; later ones go through a reusable temporary
  // and are added in, preserving the original accumulation order.
  auto emit = [&](NodeId id, auto&& produce) {
    size_t i = static_cast<size_t>(id);
    if (!has_grad[i]) {
      produce(node_grad[i]);
      has_grad[i] = 1;
    } else {
      Tensor& tmp = s.NextTemp();
      produce(tmp);
      AddInPlace(node_grad[i], tmp);
    }
  };
  auto accumulate = [&](NodeId id, Tensor grad) {
    emit(id, [&](Tensor& dst) { dst = std::move(grad); });
  };

  for (NodeId id = loss; id >= 0; --id) {
    size_t i = static_cast<size_t>(id);
    if (!computed[i]) {
      continue;
    }
    const Node& n = nodes[i];
    if (n.type == OpType::kSoftmaxXentMean) {
      // Seed: d(loss)/d(logits); upstream of the loss node itself is 1 (it is the fetch).
      PX_CHECK_EQ(id, loss) << "interior SoftmaxXentMean nodes are not differentiable here";
      Tensor grad_logits;
      SoftmaxCrossEntropy(values[static_cast<size_t>(n.inputs[0])],
                          values[static_cast<size_t>(n.inputs[1])], &grad_logits);
      accumulate(n.inputs[0], std::move(grad_logits));
      continue;
    }
    if (!has_grad[i]) {
      continue;  // node does not influence the loss
    }
    const Tensor& g = node_grad[i];
    switch (n.type) {
      case OpType::kPlaceholder:
      case OpType::kVariable:
        break;  // terminal; variable grads are collected below
      case OpType::kMatMul: {
        const Tensor& a = values[static_cast<size_t>(n.inputs[0])];
        const Tensor& b = values[static_cast<size_t>(n.inputs[1])];
        emit(n.inputs[0], [&](Tensor& dst) { MatMulTransposeBInto(dst, g, b); });
        emit(n.inputs[1], [&](Tensor& dst) { MatMulTransposeAInto(dst, a, g); });
        break;
      }
      case OpType::kBiasAdd:
        emit(n.inputs[0], [&](Tensor& dst) { CopyInto(dst, g); });
        emit(n.inputs[1], [&](Tensor& dst) { ColumnSumInto(dst, g); });
        break;
      case OpType::kTanh:
        emit(n.inputs[0], [&](Tensor& dst) { TanhGradInto(dst, values[i], g); });
        break;
      case OpType::kRelu:
        emit(n.inputs[0], [&](Tensor& dst) {
          ReluGradInto(dst, values[static_cast<size_t>(n.inputs[0])], g);
        });
        break;
      case OpType::kConcatCols: {
        int64_t pa = values[static_cast<size_t>(n.inputs[0])].shape().dim(1);
        int64_t total = g.shape().dim(1);
        emit(n.inputs[0], [&](Tensor& dst) { SliceColsInto(dst, g, 0, pa); });
        emit(n.inputs[1], [&](Tensor& dst) { SliceColsInto(dst, g, pa, total); });
        break;
      }
      case OpType::kGather: {
        const Node& var_node = nodes[static_cast<size_t>(n.inputs[0])];
        const Tensor& ids = values[static_cast<size_t>(n.inputs[1])];
        std::vector<int64_t> indices(ids.ints().begin(), ids.ints().end());
        sparse_grads[var_node.variable_index].emplace_back(std::move(indices), g.Clone(),
                                                           var_node.shape);
        break;
      }
      case OpType::kGatherDotT: {
        const Tensor& x = values[static_cast<size_t>(n.inputs[0])];
        const Node& var_node = nodes[static_cast<size_t>(n.inputs[1])];
        const Tensor& var_value = values[static_cast<size_t>(n.inputs[1])];
        const Tensor& ids = values[static_cast<size_t>(n.inputs[2])];
        // out = x . selected^T  =>  dx = g . selected ; dselected = g^T . x
        Tensor& selected = s.NextTemp();
        GatherRowsInto(selected, var_value, ids.ints());
        emit(n.inputs[0], [&](Tensor& dst) { MatMulInto(dst, g, selected); });
        std::vector<int64_t> indices(ids.ints().begin(), ids.ints().end());
        sparse_grads[var_node.variable_index].emplace_back(std::move(indices),
                                                           MatMulTransposeA(g, x),
                                                           var_node.shape);
        break;
      }
      case OpType::kSoftmaxXentMean:
        break;  // handled above
    }
  }

  // Collect per-variable gradients: dense upstream on the variable node, plus any sparse
  // contributions. A variable with both becomes dense (matching GradKind analysis).
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    const VariableDef& def = graph_->variables()[v];
    size_t node_index = static_cast<size_t>(def.node);
    bool dense_present = has_grad[node_index];
    auto sparse_it = sparse_grads.find(static_cast<int>(v));
    bool sparse_present = sparse_it != sparse_grads.end();
    if (!dense_present && !sparse_present) {
      continue;
    }
    if (dense_present && !sparse_present) {
      result.grads.emplace(static_cast<int>(v), GradValue::MakeDense(node_grad[node_index]));
    } else if (!dense_present && sparse_present) {
      IndexedSlices combined = sparse_it->second.size() == 1
                                   ? std::move(sparse_it->second.front())
                                   : IndexedSlices::Concat(sparse_it->second);
      result.grads.emplace(static_cast<int>(v), GradValue::MakeSparse(std::move(combined)));
    } else {
      Tensor dense = node_grad[node_index].Clone();
      for (const IndexedSlices& slices : sparse_it->second) {
        ScatterAddInPlace(dense, slices);
      }
      result.grads.emplace(static_cast<int>(v), GradValue::MakeDense(std::move(dense)));
    }
  }
  return result;
}

}  // namespace parallax
