#include "src/graph/executor.h"

#include <algorithm>
#include <optional>

#include "src/tensor/tensor_ops.h"

namespace parallax {

GradValue GradValue::MakeDense(Tensor tensor) {
  GradValue g;
  g.is_sparse_ = false;
  g.dense_ = std::move(tensor);
  return g;
}

GradValue GradValue::MakeSparse(IndexedSlices slices) {
  GradValue g;
  g.is_sparse_ = true;
  g.sparse_ = std::move(slices);
  return g;
}

const Tensor& GradValue::dense() const {
  PX_CHECK(!is_sparse_);
  return dense_;
}

const IndexedSlices& GradValue::sparse() const {
  PX_CHECK(is_sparse_);
  return sparse_;
}

Tensor& GradValue::mutable_dense() {
  PX_CHECK(!is_sparse_);
  return dense_;
}

IndexedSlices& GradValue::mutable_sparse() {
  PX_CHECK(is_sparse_);
  return sparse_;
}

int64_t GradValue::WireBytes() const {
  if (is_sparse_) {
    return sparse_.WireBytes();
  }
  return dense_.num_elements() * static_cast<int64_t>(sizeof(float));
}

void GradValue::Scale(float factor) {
  if (is_sparse_) {
    sparse_.Scale(factor);
  } else {
    ScaleInPlace(dense_, factor);
  }
}

Tensor GradValue::ToDense(const TensorShape& dense_shape) const {
  if (is_sparse_) {
    PX_CHECK(sparse_.dense_shape() == dense_shape);
    return sparse_.ToDense();
  }
  PX_CHECK(dense_.shape() == dense_shape);
  return dense_.Clone();
}

VariableStore VariableStore::InitFrom(const Graph& graph) {
  VariableStore store;
  for (size_t i = 0; i < graph.variables().size(); ++i) {
    store.values_[static_cast<int>(i)] = graph.variables()[i].initial_value.Clone();
  }
  return store;
}

const Tensor& VariableStore::Get(int variable_index) const {
  auto it = values_.find(variable_index);
  PX_CHECK(it != values_.end()) << "variable " << variable_index << " not in store";
  return it->second;
}

Tensor& VariableStore::GetMutable(int variable_index) {
  auto it = values_.find(variable_index);
  PX_CHECK(it != values_.end()) << "variable " << variable_index << " not in store";
  return it->second;
}

void VariableStore::Set(int variable_index, Tensor value) {
  values_[variable_index] = std::move(value);
}

bool VariableStore::Contains(int variable_index) const {
  return values_.find(variable_index) != values_.end();
}

void VariableStore::ApplySgd(int variable_index, const GradValue& grad, float learning_rate) {
  Tensor& value = GetMutable(variable_index);
  if (grad.is_sparse()) {
    ScatterSgdUpdate(value, grad.sparse(), learning_rate);
  } else {
    AxpyInPlace(value, -learning_rate, grad.dense());
  }
}

VariableStore VariableStore::Clone() const {
  VariableStore copy;
  for (const auto& [index, value] : values_) {
    copy.values_[index] = value.Clone();
  }
  return copy;
}

void Executor::Forward(const VariableStore& variables, const FeedMap& feeds, NodeId fetch,
                       ExecScratch& scratch) const {
  const auto& nodes = graph_->nodes();
  // Stale tensors in `values` are gated by `computed`; keeping them lets ops reuse
  // nothing here but avoids re-constructing the table every step.
  scratch.values.resize(nodes.size());
  scratch.computed.assign(nodes.size(), 0);
  // Temporaries are acquired in deterministic order across the whole forward+backward
  // pass, so each slot sees one stable shape per step (no realloc ping-pong).
  scratch.temp_cursor = 0;
  std::vector<Tensor>& values = scratch.values;
  std::vector<uint8_t>& computed = scratch.computed;

  // Needed set: backward closure of fetch (node inputs always precede the node).
  // Fetch-dependent but step-independent, so it is cached per scratch.
  std::vector<uint8_t>& needed = scratch.needed;
  if (scratch.needed_fetch != fetch || scratch.needed_graph != graph_ ||
      needed.size() != nodes.size()) {
    needed.assign(nodes.size(), 0);
    needed[static_cast<size_t>(fetch)] = 1;
    for (NodeId id = fetch; id >= 0; --id) {
      if (!needed[static_cast<size_t>(id)]) {
        continue;
      }
      for (NodeId input : nodes[static_cast<size_t>(id)].inputs) {
        needed[static_cast<size_t>(input)] = 1;
      }
    }
    scratch.needed_fetch = fetch;
    scratch.needed_graph = graph_;
  }

  for (NodeId id = 0; id <= fetch; ++id) {
    if (!needed[static_cast<size_t>(id)]) {
      continue;
    }
    const Node& n = nodes[static_cast<size_t>(id)];
    auto in = [&](size_t slot) -> const Tensor& {
      return values[static_cast<size_t>(n.inputs[slot])];
    };
    // Ops write into the node's persistent value slot through the *Into kernels, which
    // reuse its buffer across steps when the shape is stable and it is uniquely owned
    // (slots holding shared feed/variable tensors are swapped, never overwritten).
    Tensor& out = values[static_cast<size_t>(id)];
    switch (n.type) {
      case OpType::kPlaceholder: {
        auto it = feeds.find(id);
        PX_CHECK(it != feeds.end()) << "missing feed for placeholder " << n.name;
        out = it->second;
        break;
      }
      case OpType::kVariable:
        out = variables.Get(n.variable_index);
        break;
      case OpType::kMatMul:
        MatMulInto(out, in(0), in(1));
        break;
      case OpType::kBiasAdd: {
        const Tensor& x = in(0);
        const Tensor& bias = in(1);
        PX_CHECK_EQ(bias.shape().rank(), 1);
        PX_CHECK_EQ(x.shape().dim(1), bias.shape().dim(0));
        CopyInto(out, x);
        auto data = out.mutable_floats();
        auto b = bias.floats();
        int64_t rows = x.shape().dim(0);
        int64_t cols = x.shape().dim(1);
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            data[static_cast<size_t>(r * cols + c)] += b[static_cast<size_t>(c)];
          }
        }
        break;
      }
      case OpType::kTanh:
        TanhInto(out, in(0));
        break;
      case OpType::kRelu:
        ReluInto(out, in(0));
        break;
      case OpType::kConcatCols:
        ConcatColsPairInto(out, in(0), in(1));
        break;
      case OpType::kGather:
        GatherRowsInto(out, in(0), in(1).ints());
        break;
      case OpType::kGatherDotT: {
        Tensor& selected = scratch.NextTemp();
        GatherRowsInto(selected, in(1), in(2).ints());
        MatMulTransposeBInto(out, in(0), selected);
        break;
      }
      case OpType::kSoftmaxXentMean: {
        Tensor& probs = scratch.NextTemp();
        float loss = SoftmaxCrossEntropyInto(probs, in(0), in(1), nullptr);
        if (out.is_float() && out.shape().rank() == 0 && out.UniquelyOwned()) {
          out.mutable_floats()[0] = loss;
        } else {
          out = Tensor::Scalar(loss);
        }
        break;
      }
    }
    computed[static_cast<size_t>(id)] = true;
  }
}

Tensor Executor::RunForward(const VariableStore& variables, const FeedMap& feeds,
                            NodeId fetch) const {
  ExecScratch scratch;
  Forward(variables, feeds, fetch, scratch);
  return scratch.values[static_cast<size_t>(fetch)];
}

StepResult Executor::RunStep(const VariableStore& variables, const FeedMap& feeds,
                             NodeId loss, ExecScratch* scratch) const {
  StepResult result;
  RunStepInto(variables, feeds, loss, scratch, &result);
  return result;
}

void Executor::RunStepInto(const VariableStore& variables, const FeedMap& feeds,
                           NodeId loss, ExecScratch* scratch, StepResult* out) const {
  PX_CHECK(out != nullptr);
  const auto& nodes = graph_->nodes();
  PX_CHECK(nodes[static_cast<size_t>(loss)].type == OpType::kSoftmaxXentMean)
      << "loss must be a SoftmaxXentMean node";

  // The fallback scratch is constructed only when actually needed: ExecScratch's
  // members (the temp deque in particular) allocate on construction, which would
  // charge every scratch-carrying step for a scratch it never uses.
  std::optional<ExecScratch> local;
  ExecScratch& s = scratch != nullptr ? *scratch : local.emplace();
  Forward(variables, feeds, loss, s);
  std::vector<Tensor>& values = s.values;
  std::vector<uint8_t>& computed = s.computed;

  out->loss = values[static_cast<size_t>(loss)].at(0);

  // Per-node dense upstream gradients; sparse variable gradients accumulate separately.
  // Interior node_grad buffers persist across steps (the gradient buffer plan); variable
  // nodes recycle the dense gradient that escaped into `out` last step — moving it back
  // lets the *Into kernels below overwrite it in place. If the caller retained a copy,
  // the kernels' unique-ownership check falls back to fresh storage.
  std::vector<Tensor>& node_grad = s.node_grad;
  std::vector<uint8_t>& has_grad = s.has_grad;
  node_grad.resize(nodes.size());
  has_grad.assign(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].type != OpType::kVariable) {
      continue;
    }
    // No reset for the other variable nodes: whatever the slot holds (a moved-from
    // tensor, or a stale gradient for a variable the loss no longer reaches) is either
    // overwritten by the kernels below or never read — and a default Tensor is not
    // free, its [0] shape and empty buffer both allocate.
    auto it = out->grads.find(nodes[i].variable_index);
    if (it != out->grads.end() && !it->second.is_sparse()) {
      node_grad[i] = std::move(it->second.mutable_dense());
    }
  }
  auto& sparse_grads = s.sparse_grads;
  for (auto& [variable_index, contributions] : sparse_grads) {
    (void)variable_index;
    contributions.clear();
  }

  // Routes a producer kernel at the accumulation target: the first contribution writes
  // straight into the node's plan buffer; later ones go through a reusable temporary
  // and are added in, preserving the original accumulation order.
  auto emit = [&](NodeId id, auto&& produce) {
    size_t i = static_cast<size_t>(id);
    if (!has_grad[i]) {
      produce(node_grad[i]);
      has_grad[i] = 1;
    } else {
      Tensor& tmp = s.NextTemp();
      produce(tmp);
      AddInPlace(node_grad[i], tmp);
    }
  };

  for (NodeId id = loss; id >= 0; --id) {
    size_t i = static_cast<size_t>(id);
    if (!computed[i]) {
      continue;
    }
    const Node& n = nodes[i];
    if (n.type == OpType::kSoftmaxXentMean) {
      // Seed: d(loss)/d(logits); upstream of the loss node itself is 1 (it is the fetch).
      PX_CHECK_EQ(id, loss) << "interior SoftmaxXentMean nodes are not differentiable here";
      Tensor& probs = s.NextTemp();
      emit(n.inputs[0], [&](Tensor& dst) {
        SoftmaxCrossEntropyInto(probs, values[static_cast<size_t>(n.inputs[0])],
                                values[static_cast<size_t>(n.inputs[1])], &dst);
      });
      continue;
    }
    if (!has_grad[i]) {
      continue;  // node does not influence the loss
    }
    const Tensor& g = node_grad[i];
    switch (n.type) {
      case OpType::kPlaceholder:
      case OpType::kVariable:
        break;  // terminal; variable grads are collected below
      case OpType::kMatMul: {
        const Tensor& a = values[static_cast<size_t>(n.inputs[0])];
        const Tensor& b = values[static_cast<size_t>(n.inputs[1])];
        emit(n.inputs[0], [&](Tensor& dst) { MatMulTransposeBInto(dst, g, b); });
        emit(n.inputs[1], [&](Tensor& dst) { MatMulTransposeAInto(dst, a, g); });
        break;
      }
      case OpType::kBiasAdd:
        emit(n.inputs[0], [&](Tensor& dst) { CopyInto(dst, g); });
        emit(n.inputs[1], [&](Tensor& dst) { ColumnSumInto(dst, g); });
        break;
      case OpType::kTanh:
        emit(n.inputs[0], [&](Tensor& dst) { TanhGradInto(dst, values[i], g); });
        break;
      case OpType::kRelu:
        emit(n.inputs[0], [&](Tensor& dst) {
          ReluGradInto(dst, values[static_cast<size_t>(n.inputs[0])], g);
        });
        break;
      case OpType::kConcatCols: {
        int64_t pa = values[static_cast<size_t>(n.inputs[0])].shape().dim(1);
        int64_t total = g.shape().dim(1);
        emit(n.inputs[0], [&](Tensor& dst) { SliceColsInto(dst, g, 0, pa); });
        emit(n.inputs[1], [&](Tensor& dst) { SliceColsInto(dst, g, pa, total); });
        break;
      }
      case OpType::kGather: {
        const Node& var_node = nodes[static_cast<size_t>(n.inputs[0])];
        const Tensor& ids = values[static_cast<size_t>(n.inputs[1])];
        // `g` is final here — every consumer of this node has a higher id — so the
        // contribution just views it; materialization happens at collection.
        sparse_grads[var_node.variable_index].push_back({ids.ints(), &g});
        break;
      }
      case OpType::kGatherDotT: {
        const Tensor& x = values[static_cast<size_t>(n.inputs[0])];
        const Node& var_node = nodes[static_cast<size_t>(n.inputs[1])];
        const Tensor& var_value = values[static_cast<size_t>(n.inputs[1])];
        const Tensor& ids = values[static_cast<size_t>(n.inputs[2])];
        // out = x . selected^T  =>  dx = g . selected ; dselected = g^T . x
        Tensor& selected = s.NextTemp();
        GatherRowsInto(selected, var_value, ids.ints());
        emit(n.inputs[0], [&](Tensor& dst) { MatMulInto(dst, g, selected); });
        Tensor& dselected = s.NextTemp();
        MatMulTransposeAInto(dselected, g, x);
        sparse_grads[var_node.variable_index].push_back({ids.ints(), &dselected});
        break;
      }
      case OpType::kSoftmaxXentMean:
        break;  // handled above
    }
  }

  // Collect per-variable gradients: dense upstream on the variable node, plus any sparse
  // contributions. A variable with both becomes dense (matching GradKind analysis).
  // Results are materialized into `out`'s existing entries — map node, dense buffer, and
  // IndexedSlices index/value storage are all reused in place — then entries for
  // variables that no longer receive a gradient are dropped.
  std::vector<uint8_t>& grad_present = s.grad_present;
  grad_present.assign(graph_->variables().size(), 0);
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    const VariableDef& def = graph_->variables()[v];
    size_t node_index = static_cast<size_t>(def.node);
    bool dense_present = has_grad[node_index];
    auto sparse_it = sparse_grads.find(static_cast<int>(v));
    bool sparse_present = sparse_it != sparse_grads.end() && !sparse_it->second.empty();
    if (!dense_present && !sparse_present) {
      continue;
    }
    grad_present[v] = 1;
    GradValue& gv = out->grads[static_cast<int>(v)];
    // Dense adoption reuses the entry in place when it is already dense — building a
    // fresh GradValue default-constructs a Tensor, which allocates.
    auto adopt_dense = [&gv](Tensor&& tensor) {
      if (gv.is_sparse()) {
        gv = GradValue::MakeDense(std::move(tensor));
      } else {
        gv.mutable_dense() = std::move(tensor);
      }
    };
    if (!sparse_present) {
      adopt_dense(std::move(node_grad[node_index]));
    } else if (!dense_present) {
      if (!gv.is_sparse()) {
        gv = GradValue::MakeSparse(IndexedSlices());
      }
      IndexedSlices& dst = gv.mutable_sparse();
      const auto& contributions = sparse_it->second;
      if (contributions.size() == 1) {
        dst.ResetForReuse(contributions.front().ids, def.shape);
        CopyInto(dst.mutable_values(), *contributions.front().values);
      } else {
        std::vector<int64_t>& indices = s.concat_indices;
        std::vector<const Tensor*>& parts = s.concat_parts;
        indices.clear();
        parts.clear();
        for (const ExecScratch::SparseContribution& c : contributions) {
          indices.insert(indices.end(), c.ids.begin(), c.ids.end());
          parts.push_back(c.values);
        }
        dst.ResetForReuse(indices, def.shape);
        ConcatRowsInto(dst.mutable_values(), parts);
      }
    } else {
      adopt_dense(std::move(node_grad[node_index]));
      auto dense = gv.mutable_dense().mutable_floats();
      int64_t row = def.shape.row_elements();
      // Inline scatter-add (contribution order, then row order) — the same accumulation
      // order as ScatterAddInPlace over the previously materialized slices.
      for (const ExecScratch::SparseContribution& c : sparse_it->second) {
        auto src = c.values->floats();
        for (size_t r = 0; r < c.ids.size(); ++r) {
          float* d = dense.data() + c.ids[r] * row;
          const float* sv = src.data() + static_cast<int64_t>(r) * row;
          for (int64_t e = 0; e < row; ++e) {
            d[e] += sv[e];
          }
        }
      }
    }
  }
  for (auto it = out->grads.begin(); it != out->grads.end();) {
    if (static_cast<size_t>(it->first) < grad_present.size() &&
        grad_present[static_cast<size_t>(it->first)] != 0) {
      ++it;
    } else {
      it = out->grads.erase(it);
    }
  }
}

}  // namespace parallax
