#include "src/graph/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/base/strings.h"

namespace parallax {
namespace {

constexpr uint64_t kMagic = 0x70784c4158ull;  // "pxLAX"
// Format history: v1 (unversioned) was [magic][count][records]; v2 adds the version
// word and the training metadata the crash-recovery path resumes from. No v1 files
// exist outside of tests, so the loader only accepts v2.
constexpr uint64_t kVersion = 2;
// A dimension past this is corruption, not a model: rejecting here keeps a hostile
// dims section from driving TensorShape into signed-overflow territory (UB) or the
// allocator into the ground before the shape check can fail it.
constexpr uint64_t kMaxDim = 1ull << 40;
constexpr uint64_t kMaxRank = 16;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) {
      std::fclose(file);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU64(std::FILE* file, uint64_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

bool ReadU64(std::FILE* file, uint64_t& value) {
  return std::fread(&value, sizeof(value), 1, file) == 1;
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Status WriteBody(std::FILE* file, const Graph& graph, const VariableStore& store,
                 const CheckpointMeta& meta) {
  if (!WriteU64(file, kMagic) || !WriteU64(file, kVersion) ||
      !WriteU64(file, static_cast<uint64_t>(meta.step)) ||
      !WriteU64(file, DoubleBits(meta.simulated_seconds)) ||
      !WriteU64(file, graph.variables().size())) {
    return Status::Internal("checkpoint header write failed");
  }
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    const Tensor& value = store.Get(static_cast<int>(v));
    const TensorShape& shape = value.shape();
    if (!WriteU64(file, v) || !WriteU64(file, static_cast<uint64_t>(shape.rank()))) {
      return Status::Internal("checkpoint variable header write failed");
    }
    for (int d = 0; d < shape.rank(); ++d) {
      if (!WriteU64(file, static_cast<uint64_t>(shape.dim(d)))) {
        return Status::Internal("checkpoint dims write failed");
      }
    }
    auto data = value.floats();
    if (std::fwrite(data.data(), sizeof(float), data.size(), file) != data.size()) {
      return Status::Internal("checkpoint data write failed");
    }
  }
  return Status::Ok();
}

}  // namespace

Status SaveCheckpoint(const Graph& graph, const VariableStore& store,
                      const std::string& path, const CheckpointMeta& meta) {
  // Write to a sibling temp file and rename into place: a crash (or a simulated rank
  // death) mid-save leaves the previous checkpoint intact instead of a torn file —
  // the property the recovery path's "restore from the LAST checkpoint" relies on.
  const std::string tmp = path + ".tmp";
  {
    FilePtr file(std::fopen(tmp.c_str(), "wb"));
    if (file == nullptr) {
      return Status::InvalidArgument("cannot open checkpoint for writing: " + tmp);
    }
    Status written = WriteBody(file.get(), graph, store, meta);
    if (!written.ok()) {
      file.reset();
      std::remove(tmp.c_str());
      return written;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("checkpoint rename failed: " + path);
  }
  return Status::Ok();
}

StatusOr<VariableStore> LoadCheckpoint(const Graph& graph, const std::string& path,
                                       CheckpointMeta* meta) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("checkpoint not found: " + path);
  }
  uint64_t magic = 0;
  if (!ReadU64(file.get(), magic) || magic != kMagic) {
    return Status::InvalidArgument("not a Parallax checkpoint: " + path);
  }
  uint64_t version = 0;
  if (!ReadU64(file.get(), version) || version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint version %llu (expected %llu): %s",
                  static_cast<unsigned long long>(version),
                  static_cast<unsigned long long>(kVersion), path.c_str()));
  }
  uint64_t step = 0;
  uint64_t seconds_bits = 0;
  uint64_t count = 0;
  if (!ReadU64(file.get(), step) || !ReadU64(file.get(), seconds_bits) ||
      !ReadU64(file.get(), count)) {
    return Status::InvalidArgument("truncated checkpoint header: " + path);
  }
  if (count != graph.variables().size()) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint holds %llu variables, graph has %zu — the checkpoint "
                  "belongs to a different model",
                  static_cast<unsigned long long>(count), graph.variables().size()));
  }
  VariableStore store;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t index = 0;
    uint64_t rank = 0;
    if (!ReadU64(file.get(), index) || !ReadU64(file.get(), rank) || rank > kMaxRank) {
      return Status::InvalidArgument("corrupt checkpoint variable header");
    }
    std::vector<int64_t> dims(static_cast<size_t>(rank));
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(file.get(), dim)) {
        return Status::InvalidArgument("corrupt checkpoint dims");
      }
      // Bounds-check BEFORE the shape exists: a dim this large is corruption, and
      // letting it through would overflow num_elements or stall in the allocator.
      if (dim > kMaxDim) {
        return Status::InvalidArgument(
            StrFormat("checkpoint dims overflow: dim[%llu] = %llu for variable %llu",
                      static_cast<unsigned long long>(d),
                      static_cast<unsigned long long>(dim),
                      static_cast<unsigned long long>(index)));
      }
      dims[static_cast<size_t>(d)] = static_cast<int64_t>(dim);
    }
    TensorShape shape(dims);
    if (index >= graph.variables().size() ||
        !(graph.variables()[static_cast<size_t>(index)].shape == shape)) {
      return Status::FailedPrecondition("checkpoint shape mismatch for variable " +
                                        std::to_string(index));
    }
    Tensor value = Tensor::Zeros(shape);
    auto data = value.mutable_floats();
    if (std::fread(data.data(), sizeof(float), data.size(), file.get()) != data.size()) {
      return Status::InvalidArgument("truncated checkpoint data section: " + path);
    }
    store.Set(static_cast<int>(index), std::move(value));
  }
  if (meta != nullptr) {
    meta->step = static_cast<int64_t>(step);
    meta->simulated_seconds = BitsToDouble(seconds_bits);
  }
  return store;
}

int64_t CheckpointFileBytes(const Graph& graph) {
  // Header: magic, version, step, seconds, count.
  int64_t bytes = 5 * static_cast<int64_t>(sizeof(uint64_t));
  for (const VariableDef& def : graph.variables()) {
    bytes += (2 + def.shape.rank()) * static_cast<int64_t>(sizeof(uint64_t));
    bytes += def.shape.num_elements() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

}  // namespace parallax
