#include "src/graph/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "src/base/strings.h"

namespace parallax {
namespace {

constexpr uint64_t kMagic = 0x70784c4158ull;  // "pxLAX"

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) {
      std::fclose(file);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU64(std::FILE* file, uint64_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

bool ReadU64(std::FILE* file, uint64_t& value) {
  return std::fread(&value, sizeof(value), 1, file) == 1;
}

}  // namespace

Status SaveCheckpoint(const Graph& graph, const VariableStore& store,
                      const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open checkpoint for writing: " + path);
  }
  if (!WriteU64(file.get(), kMagic) ||
      !WriteU64(file.get(), graph.variables().size())) {
    return Status::Internal("checkpoint header write failed");
  }
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    const Tensor& value = store.Get(static_cast<int>(v));
    const TensorShape& shape = value.shape();
    if (!WriteU64(file.get(), v) ||
        !WriteU64(file.get(), static_cast<uint64_t>(shape.rank()))) {
      return Status::Internal("checkpoint variable header write failed");
    }
    for (int d = 0; d < shape.rank(); ++d) {
      if (!WriteU64(file.get(), static_cast<uint64_t>(shape.dim(d)))) {
        return Status::Internal("checkpoint dims write failed");
      }
    }
    auto data = value.floats();
    if (std::fwrite(data.data(), sizeof(float), data.size(), file.get()) != data.size()) {
      return Status::Internal("checkpoint data write failed");
    }
  }
  return Status::Ok();
}

StatusOr<VariableStore> LoadCheckpoint(const Graph& graph, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("checkpoint not found: " + path);
  }
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!ReadU64(file.get(), magic) || magic != kMagic || !ReadU64(file.get(), count)) {
    return Status::InvalidArgument("not a Parallax checkpoint: " + path);
  }
  if (count != graph.variables().size()) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint holds %llu variables, graph has %zu",
                  static_cast<unsigned long long>(count), graph.variables().size()));
  }
  VariableStore store;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t index = 0;
    uint64_t rank = 0;
    if (!ReadU64(file.get(), index) || !ReadU64(file.get(), rank) || rank > 16) {
      return Status::InvalidArgument("corrupt checkpoint variable header");
    }
    std::vector<int64_t> dims(static_cast<size_t>(rank));
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(file.get(), dim)) {
        return Status::InvalidArgument("corrupt checkpoint dims");
      }
      dims[static_cast<size_t>(d)] = static_cast<int64_t>(dim);
    }
    TensorShape shape(dims);
    if (index >= graph.variables().size() ||
        !(graph.variables()[static_cast<size_t>(index)].shape == shape)) {
      return Status::FailedPrecondition("checkpoint shape mismatch for variable " +
                                        std::to_string(index));
    }
    Tensor value = Tensor::Zeros(shape);
    auto data = value.mutable_floats();
    if (std::fread(data.data(), sizeof(float), data.size(), file.get()) != data.size()) {
      return Status::InvalidArgument("corrupt checkpoint data");
    }
    store.Set(static_cast<int>(index), std::move(value));
  }
  return store;
}

}  // namespace parallax
