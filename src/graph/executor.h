// Single-device forward/backward execution of a Graph — the reference semantics that
// every distributed engine must match (the paper's transparency guarantee: the
// transformed multi-GPU graph computes "correct variable updates as done in a single-GPU
// code", section 5).
//
// RunStep evaluates the forward pass, then reverse-mode autodiff. Gradients for variables
// reached only through gather-style ops come back as IndexedSlices; all others are dense
// tensors. This mirrors TensorFlow's automatic differentiation typing, which is the
// mechanism Parallax uses to identify sparse variables.
#ifndef PARALLAX_SRC_GRAPH_EXECUTOR_H_
#define PARALLAX_SRC_GRAPH_EXECUTOR_H_

#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/indexed_slices.h"
#include "src/tensor/tensor.h"

namespace parallax {

// A gradient value: dense tensor or IndexedSlices — the runtime counterpart of GradKind.
class GradValue {
 public:
  static GradValue MakeDense(Tensor tensor);
  static GradValue MakeSparse(IndexedSlices slices);

  bool is_sparse() const { return is_sparse_; }
  const Tensor& dense() const;
  const IndexedSlices& sparse() const;
  Tensor& mutable_dense();
  IndexedSlices& mutable_sparse();

  // Bytes this gradient occupies on the wire.
  int64_t WireBytes() const;
  // Scales values by factor (gradient averaging).
  void Scale(float factor);
  // Densifies a sparse gradient (for equivalence checks / mixed accumulation).
  Tensor ToDense(const TensorShape& dense_shape) const;

 private:
  bool is_sparse_ = false;
  Tensor dense_;
  IndexedSlices sparse_;
};

// Variable name/index -> current value. Each simulated process owns one store (AR
// replicas, PS server shards, the single-device reference).
class VariableStore {
 public:
  VariableStore() = default;

  // Clones every variable's initial value from the graph.
  static VariableStore InitFrom(const Graph& graph);

  const Tensor& Get(int variable_index) const;
  Tensor& GetMutable(int variable_index);
  void Set(int variable_index, Tensor value);
  bool Contains(int variable_index) const;
  size_t size() const { return values_.size(); }

  // In-place SGD update: value -= lr * grad (scatter-update for sparse gradients).
  void ApplySgd(int variable_index, const GradValue& grad, float learning_rate);

  // Contents, for composing stores (engine views -> one worker view).
  const std::unordered_map<int, Tensor>& values() const { return values_; }

  // Deep copy.
  VariableStore Clone() const;

 private:
  std::unordered_map<int, Tensor> values_;
};

using FeedMap = std::unordered_map<NodeId, Tensor>;

struct StepResult {
  float loss = 0.0f;
  // variable_index -> gradient. Variables not reached by the loss are absent.
  std::unordered_map<int, GradValue> grads;
};

// Reusable execution scratch — the per-graph gradient buffer plan. Holds the per-node
// value/flag tables, the cached backward closure of the fetch node, and the per-node
// gradient tensors the backward pass writes into. Threading one ExecScratch through a
// training loop makes RunStep reuse the same gradient buffers every step (shapes are
// stable across steps, so after the first step the intermediate backward pass stops
// touching the allocator). Pairing a persistent scratch with a persistent StepResult
// via RunStepInto extends the reuse to the escaping gradients too: the result's dense
// buffers, IndexedSlices storage, and map nodes are recycled, making a steady-state
// step allocation-free end to end.
// Single-owner state, like a SparseWorkspace: one per thread of control.
class ExecScratch {
 public:
  ExecScratch() = default;

 private:
  friend class Executor;

  // Forward tables.
  std::vector<Tensor> values;
  std::vector<uint8_t> computed;
  // Cached backward closure of `needed_fetch` on `needed_graph` (recomputed when the
  // fetch — or the graph this scratch is driven over — changes).
  std::vector<uint8_t> needed;
  NodeId needed_fetch = -1;
  const Graph* needed_graph = nullptr;

  // Backward tables. node_grad entries for interior nodes persist across steps and are
  // reused via the *Into kernels; variable-node entries are recycled from the previous
  // StepResult (RunStepInto moves the escaped dense gradient back in, so the result and
  // scratch buffers ping-pong across steps without touching the allocator).
  std::vector<Tensor> node_grad;
  std::vector<uint8_t> has_grad;
  // Gather/fan-in temporaries, acquired in deterministic order per step. A deque so
  // references stay valid while the pool grows mid-step.
  std::deque<Tensor> temps;
  size_t temp_cursor = 0;
  // A sparse gradient contribution recorded during the backward pass: views into stable
  // per-step storage — the graph's index tensor and a node_grad/temps slot (final by the
  // time it is recorded; every consumer of the producing node has a higher id). Owning
  // IndexedSlices are materialized only at collection time, straight into the reused
  // StepResult storage.
  struct SparseContribution {
    std::span<const int64_t> ids;
    const Tensor* values = nullptr;
  };
  // variable_index -> contributions. Vectors are cleared, never erased, each step, so
  // the map nodes and vector capacity persist across steps.
  std::unordered_map<int, std::vector<SparseContribution>> sparse_grads;
  // Collection staging for multi-contribution concats, plus the per-variable presence
  // set used to drop StepResult entries for variables no longer reached by the loss.
  std::vector<int64_t> concat_indices;
  std::vector<const Tensor*> concat_parts;
  std::vector<uint8_t> grad_present;

  Tensor& NextTemp() {
    if (temp_cursor == temps.size()) {
      temps.emplace_back();
    }
    return temps[temp_cursor++];
  }
};

class Executor {
 public:
  explicit Executor(const Graph* graph) : graph_(graph) { PX_CHECK(graph != nullptr); }

  // Forward evaluation of `fetch` given placeholder feeds and variable values.
  Tensor RunForward(const VariableStore& variables, const FeedMap& feeds, NodeId fetch) const;

  // Forward + backward from the scalar `loss` node. With a null `scratch` a private
  // (per-call) scratch is used; passing a persistent ExecScratch reuses the gradient
  // buffer plan across steps. Results are bit-identical either way.
  StepResult RunStep(const VariableStore& variables, const FeedMap& feeds, NodeId loss,
                     ExecScratch* scratch = nullptr) const;

  // Destination-passing RunStep: recycles `out`'s storage from the previous step — the
  // grads map nodes, dense gradient buffers, and IndexedSlices index/value storage are
  // all reused in place (entries for variables no longer reached by the loss are
  // erased). With a persistent scratch AND a persistent `out`, a steady-state step
  // performs no heap allocation at all. Bit-identical to RunStep, which wraps this.
  // Callers that retain tensors out of a previous result keep correctness (the reuse
  // checks fall back to fresh storage) but lose the allocation-free property.
  void RunStepInto(const VariableStore& variables, const FeedMap& feeds, NodeId loss,
                   ExecScratch* scratch, StepResult* out) const;

 private:
  // Evaluates all nodes needed for `fetch` into the scratch's forward tables.
  void Forward(const VariableStore& variables, const FeedMap& feeds, NodeId fetch,
               ExecScratch& scratch) const;

  const Graph* graph_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_GRAPH_EXECUTOR_H_
