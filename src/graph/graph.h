// Single-device dataflow graph IR — the stand-in for TensorFlow's GraphDef.
//
// Users (and the model zoo) build a *single-GPU* computation graph exactly as in the
// paper's Figure 3: placeholders for a mini-batch, variables, forward ops, and one scalar
// loss. Reverse-mode autodiff is provided by the executor; what the graph itself carries —
// and what Parallax's transformation consumes — is the *static* structure:
//
//  - the variable table,
//  - the variable -> gradient-kind mapping (dense tensor vs IndexedSlices), derived from
//    how each variable is consumed (Gather-style access => sparse), mirroring how
//    TensorFlow types gradient tensors during automatic differentiation (paper section 5),
//  - which variables were declared inside a partitioner() scope (partitioning targets).
//
// The op set is intentionally compact but sufficient to express embedding-based sparse
// models (language model, translation) and dense MLP classifiers end to end.
#ifndef PARALLAX_SRC_GRAPH_GRAPH_H_
#define PARALLAX_SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/tensor/tensor.h"

namespace parallax {

using NodeId = int32_t;
inline constexpr NodeId kNoNode = -1;

enum class OpType : uint8_t {
  kPlaceholder,
  kVariable,
  kMatMul,              // [m,k] x [k,n] -> [m,n]
  kBiasAdd,             // [m,n] + [n] -> [m,n]
  kTanh,
  kRelu,
  kConcatCols,          // [m,p] ++ [m,q] -> [m,p+q]
  kGather,              // (var [V,D...], ids [m]) -> [m,D...]; sparse access
  kGatherDotT,          // (x [m,D], var [V,D], ids [n]) -> [m,n]; sampled-softmax access
  kSoftmaxXentMean,     // (logits [m,n], labels [m]) -> scalar mean cross-entropy
};

const char* OpTypeName(OpType type);

// How a variable's gradient is represented — TensorFlow's Tensor vs IndexedSlices split.
// This is the signal Parallax's sparsity analyzer keys on.
enum class GradKind : uint8_t {
  kNone,     // variable unused by the loss
  kDense,    // gradient is a dense tensor
  kSparse,   // gradient is IndexedSlices (variable accessed only through gathers)
};

struct Node {
  OpType type;
  std::string name;
  std::vector<NodeId> inputs;
  DataType dtype = DataType::kFloat32;
  // Static shape, where known (variables always; op outputs where batch-independent).
  TensorShape shape;
  // kVariable only: index into Graph::variables().
  int variable_index = -1;
};

struct VariableDef {
  std::string name;
  NodeId node = kNoNode;
  TensorShape shape;
  Tensor initial_value;
  // True if declared inside a Partitioner scope (Figure 3 line 9); identifies the
  // variables whose partition count Parallax auto-tunes.
  bool partitioner_scope = false;
  int partitioner_id = -1;  // which partitioner scope, -1 if none
};

class Graph;

// RAII partitioner scope — the parallax.partitioner() context of Figure 3: variables
// declared while the scope is alive become automatic partitioning targets. Scopes do not
// nest; create several sequential scopes to partition variable groups at different
// granularities (paper section 4.1).
class PartitionerScope {
 public:
  explicit PartitionerScope(Graph& graph);
  ~PartitionerScope();

  PartitionerScope(const PartitionerScope&) = delete;
  PartitionerScope& operator=(const PartitionerScope&) = delete;

 private:
  Graph& graph_;
};

class Graph {
 public:
  // ---- construction (the user-facing "single-GPU code") ----
  NodeId Placeholder(const std::string& name, DataType dtype);
  NodeId Variable(const std::string& name, Tensor initial_value);
  NodeId MatMul(NodeId a, NodeId b, const std::string& name = "");
  NodeId BiasAdd(NodeId x, NodeId bias, const std::string& name = "");
  NodeId Tanh(NodeId x, const std::string& name = "");
  NodeId Relu(NodeId x, const std::string& name = "");
  NodeId ConcatCols(NodeId a, NodeId b, const std::string& name = "");
  NodeId Gather(NodeId variable, NodeId indices, const std::string& name = "");
  NodeId GatherDotT(NodeId x, NodeId variable, NodeId indices, const std::string& name = "");
  NodeId SoftmaxXentMean(NodeId logits, NodeId labels, const std::string& name = "");

  // Scopes subsequent Variable() declarations as partitioning targets. Each EnterPartitioner
  // opens a fresh scope (its id is returned); Exit closes it. RAII wrapper in core/api.h.
  int EnterPartitionerScope();
  void ExitPartitionerScope();

  // ---- introspection (what Parallax's transformation reads) ----
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(NodeId id) const;
  const std::vector<VariableDef>& variables() const { return variables_; }
  const VariableDef& variable(int index) const;
  int num_partitioner_scopes() const { return next_partitioner_id_; }

  // The variable -> gradient-kind map for gradients of `loss`, derived statically: a
  // variable has a sparse gradient iff every use on a path to the loss goes through a
  // gather-style access (kGather input 0 / kGatherDotT input 1).
  std::unordered_map<int, GradKind> AnalyzeGradientKinds(NodeId loss) const;

  // All placeholder node ids, in creation order (the input signature of the graph).
  std::vector<NodeId> PlaceholderIds() const;

  std::string DebugString() const;

 private:
  NodeId AddNode(Node node);
  void CheckIsFloat(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<VariableDef> variables_;
  int current_partitioner_id_ = -1;
  int next_partitioner_id_ = 0;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_GRAPH_GRAPH_H_
