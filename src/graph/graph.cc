#include "src/graph/graph.h"

#include "src/base/strings.h"

namespace parallax {

PartitionerScope::PartitionerScope(Graph& graph) : graph_(graph) {
  graph_.EnterPartitionerScope();
}

PartitionerScope::~PartitionerScope() { graph_.ExitPartitionerScope(); }

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kPlaceholder:
      return "Placeholder";
    case OpType::kVariable:
      return "Variable";
    case OpType::kMatMul:
      return "MatMul";
    case OpType::kBiasAdd:
      return "BiasAdd";
    case OpType::kTanh:
      return "Tanh";
    case OpType::kRelu:
      return "Relu";
    case OpType::kConcatCols:
      return "ConcatCols";
    case OpType::kGather:
      return "Gather";
    case OpType::kGatherDotT:
      return "GatherDotT";
    case OpType::kSoftmaxXentMean:
      return "SoftmaxXentMean";
  }
  return "Unknown";
}

NodeId Graph::AddNode(Node node) {
  for (NodeId input : node.inputs) {
    PX_CHECK_GE(input, 0);
    PX_CHECK_LT(static_cast<size_t>(input), nodes_.size())
        << "inputs must be created before the consuming op";
  }
  if (node.name.empty()) {
    node.name = StrFormat("%s_%zu", OpTypeName(node.type), nodes_.size());
  }
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Graph::CheckIsFloat(NodeId id) const {
  PX_CHECK(node(id).dtype == DataType::kFloat32)
      << "node " << node(id).name << " must be float32";
}

NodeId Graph::Placeholder(const std::string& name, DataType dtype) {
  Node n;
  n.type = OpType::kPlaceholder;
  n.name = name;
  n.dtype = dtype;
  return AddNode(std::move(n));
}

NodeId Graph::Variable(const std::string& name, Tensor initial_value) {
  PX_CHECK(initial_value.is_float()) << "variables are float32";
  Node n;
  n.type = OpType::kVariable;
  n.name = name;
  n.shape = initial_value.shape();
  n.variable_index = static_cast<int>(variables_.size());
  NodeId id = AddNode(std::move(n));
  VariableDef def;
  def.name = name;
  def.node = id;
  def.shape = initial_value.shape();
  def.initial_value = std::move(initial_value);
  def.partitioner_scope = current_partitioner_id_ >= 0;
  def.partitioner_id = current_partitioner_id_;
  variables_.push_back(std::move(def));
  return id;
}

NodeId Graph::MatMul(NodeId a, NodeId b, const std::string& name) {
  CheckIsFloat(a);
  CheckIsFloat(b);
  Node n;
  n.type = OpType::kMatMul;
  n.name = name;
  n.inputs = {a, b};
  return AddNode(std::move(n));
}

NodeId Graph::BiasAdd(NodeId x, NodeId bias, const std::string& name) {
  CheckIsFloat(x);
  CheckIsFloat(bias);
  Node n;
  n.type = OpType::kBiasAdd;
  n.name = name;
  n.inputs = {x, bias};
  return AddNode(std::move(n));
}

NodeId Graph::Tanh(NodeId x, const std::string& name) {
  CheckIsFloat(x);
  Node n;
  n.type = OpType::kTanh;
  n.name = name;
  n.inputs = {x};
  return AddNode(std::move(n));
}

NodeId Graph::Relu(NodeId x, const std::string& name) {
  CheckIsFloat(x);
  Node n;
  n.type = OpType::kRelu;
  n.name = name;
  n.inputs = {x};
  return AddNode(std::move(n));
}

NodeId Graph::ConcatCols(NodeId a, NodeId b, const std::string& name) {
  CheckIsFloat(a);
  CheckIsFloat(b);
  Node n;
  n.type = OpType::kConcatCols;
  n.name = name;
  n.inputs = {a, b};
  return AddNode(std::move(n));
}

NodeId Graph::Gather(NodeId variable, NodeId indices, const std::string& name) {
  PX_CHECK(node(variable).type == OpType::kVariable)
      << "Gather input 0 must be a variable (sparse access is what defines a sparse "
         "variable, paper section 2.2)";
  PX_CHECK(node(indices).dtype == DataType::kInt64) << "Gather indices must be int64";
  Node n;
  n.type = OpType::kGather;
  n.name = name;
  n.inputs = {variable, indices};
  return AddNode(std::move(n));
}

NodeId Graph::GatherDotT(NodeId x, NodeId variable, NodeId indices, const std::string& name) {
  CheckIsFloat(x);
  PX_CHECK(node(variable).type == OpType::kVariable)
      << "GatherDotT input 1 must be a variable";
  PX_CHECK(node(indices).dtype == DataType::kInt64) << "GatherDotT indices must be int64";
  Node n;
  n.type = OpType::kGatherDotT;
  n.name = name;
  n.inputs = {x, variable, indices};
  return AddNode(std::move(n));
}

NodeId Graph::SoftmaxXentMean(NodeId logits, NodeId labels, const std::string& name) {
  CheckIsFloat(logits);
  PX_CHECK(node(labels).dtype == DataType::kInt64) << "labels must be int64";
  Node n;
  n.type = OpType::kSoftmaxXentMean;
  n.name = name;
  n.inputs = {logits, labels};
  return AddNode(std::move(n));
}

int Graph::EnterPartitionerScope() {
  PX_CHECK_LT(current_partitioner_id_, 0) << "partitioner scopes do not nest";
  current_partitioner_id_ = next_partitioner_id_++;
  return current_partitioner_id_;
}

void Graph::ExitPartitionerScope() {
  PX_CHECK_GE(current_partitioner_id_, 0) << "no open partitioner scope";
  current_partitioner_id_ = -1;
}

const Node& Graph::node(NodeId id) const {
  PX_CHECK_GE(id, 0);
  PX_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)];
}

const VariableDef& Graph::variable(int index) const {
  PX_CHECK_GE(index, 0);
  PX_CHECK_LT(static_cast<size_t>(index), variables_.size());
  return variables_[static_cast<size_t>(index)];
}

std::unordered_map<int, GradKind> Graph::AnalyzeGradientKinds(NodeId loss) const {
  // Mark nodes on a path to the loss (backward reachability over the DAG).
  std::vector<bool> reaches_loss(nodes_.size(), false);
  reaches_loss[static_cast<size_t>(loss)] = true;
  for (NodeId id = loss; id >= 0; --id) {
    if (!reaches_loss[static_cast<size_t>(id)]) {
      continue;
    }
    for (NodeId input : nodes_[static_cast<size_t>(id)].inputs) {
      reaches_loss[static_cast<size_t>(input)] = true;
    }
  }

  std::unordered_map<int, GradKind> kinds;
  for (size_t var_index = 0; var_index < variables_.size(); ++var_index) {
    const VariableDef& def = variables_[var_index];
    bool used_sparse = false;
    bool used_dense = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      if (!reaches_loss[i]) {
        continue;
      }
      for (size_t slot = 0; slot < n.inputs.size(); ++slot) {
        if (n.inputs[slot] != def.node) {
          continue;
        }
        bool sparse_slot = (n.type == OpType::kGather && slot == 0) ||
                           (n.type == OpType::kGatherDotT && slot == 1);
        if (sparse_slot) {
          used_sparse = true;
        } else {
          used_dense = true;
        }
      }
    }
    GradKind kind = GradKind::kNone;
    if (used_dense) {
      kind = GradKind::kDense;  // any dense use makes the combined gradient dense
    } else if (used_sparse) {
      kind = GradKind::kSparse;
    }
    kinds[static_cast<int>(var_index)] = kind;
  }
  return kinds;
}

std::vector<NodeId> Graph::PlaceholderIds() const {
  std::vector<NodeId> ids;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type == OpType::kPlaceholder) {
      ids.push_back(static_cast<NodeId>(i));
    }
  }
  return ids;
}

std::string Graph::DebugString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    out += StrFormat("%3zu: %-16s %-24s inputs=[", i, OpTypeName(n.type), n.name.c_str());
    for (size_t j = 0; j < n.inputs.size(); ++j) {
      if (j > 0) {
        out += ", ";
      }
      out += StrFormat("%d", n.inputs[j]);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace parallax
