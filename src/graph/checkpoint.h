// Variable checkpointing — the "file path to save trained variables" of the paper's
// ParallaxConfig (section 4.1), grown into the crash-recovery substrate behind
// GraphRunner::Checkpoint/RestoreFrom (docs/elasticity.md).
//
// A checkpoint is a self-describing binary file: magic, format version, training
// metadata (step counter and simulated clock — what bounds replay after a rank death),
// variable count, then per variable: index, rank, dims, float data. Writes go through
// a temp file + rename, so a crash mid-save never leaves a torn file at the target
// path; loads validate every header field before allocating, so a truncated or
// corrupted file is always a clean Status, never UB.
#ifndef PARALLAX_SRC_GRAPH_CHECKPOINT_H_
#define PARALLAX_SRC_GRAPH_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/graph/executor.h"

namespace parallax {

// Training-progress metadata stored alongside the variable values: where the run was
// when the checkpoint was cut. RestoreFrom resumes the step counter and the simulated
// clock from here, which is what makes replay-after-recovery bounded and honestly
// charged (the replayed steps advance the clock again).
struct CheckpointMeta {
  int64_t step = 0;
  double simulated_seconds = 0.0;
};

// Writes every variable of `store` (indices [0, graph.variables().size())) plus `meta`
// to `path`, atomically (temp file + rename).
Status SaveCheckpoint(const Graph& graph, const VariableStore& store,
                      const std::string& path, const CheckpointMeta& meta = {});

// Reads a checkpoint written by SaveCheckpoint. Shapes must match the graph's
// variables; `meta` (when non-null) receives the stored training metadata. Every
// corruption mode — wrong magic/version, truncated header or data section, dims
// overflow, variable-count mismatch (e.g. a checkpoint from a different model) — comes
// back as a clean error Status.
StatusOr<VariableStore> LoadCheckpoint(const Graph& graph, const std::string& path,
                                       CheckpointMeta* meta = nullptr);

// Exact size in bytes of a checkpoint of this graph — what the runner charges to the
// simulated clock per save/load at the configured disk bandwidth.
int64_t CheckpointFileBytes(const Graph& graph);

}  // namespace parallax

#endif  // PARALLAX_SRC_GRAPH_CHECKPOINT_H_
