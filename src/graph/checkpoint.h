// Variable checkpointing — the "file path to save trained variables" of the paper's
// ParallaxConfig (section 4.1). A checkpoint is a simple self-describing binary file:
// magic, variable count, then per variable: index, rank, dims, float data.
#ifndef PARALLAX_SRC_GRAPH_CHECKPOINT_H_
#define PARALLAX_SRC_GRAPH_CHECKPOINT_H_

#include <string>

#include "src/base/status.h"
#include "src/graph/executor.h"

namespace parallax {

// Writes every variable of `store` (indices [0, graph.variables().size())) to `path`.
Status SaveCheckpoint(const Graph& graph, const VariableStore& store,
                      const std::string& path);

// Reads a checkpoint written by SaveCheckpoint. Shapes must match the graph's variables.
StatusOr<VariableStore> LoadCheckpoint(const Graph& graph, const std::string& path);

}  // namespace parallax

#endif  // PARALLAX_SRC_GRAPH_CHECKPOINT_H_
