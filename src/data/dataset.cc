#include "src/data/dataset.h"

#include "src/base/logging.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {

std::vector<Tensor> ShardTensor(const Tensor& batch, int num_shards) {
  PX_CHECK_GE(batch.shape().rank(), 1);
  PX_CHECK_GE(num_shards, 1);
  int64_t rows = batch.shape().dim(0);
  PX_CHECK_GE(rows, static_cast<int64_t>(num_shards)) << "fewer rows than shards";
  int64_t base = rows / num_shards;
  int64_t rem = rows % num_shards;
  std::vector<Tensor> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  int64_t begin = 0;
  for (int s = 0; s < num_shards; ++s) {
    int64_t extent = base + (s < rem ? 1 : 0);
    shards.push_back(SliceRows(batch, begin, begin + extent));
    begin += extent;
  }
  return shards;
}

std::vector<FeedMap> ShardFeeds(const FeedMap& feeds, int num_shards) {
  PX_CHECK(!feeds.empty());
  std::vector<FeedMap> result(static_cast<size_t>(num_shards));
  int64_t expected_rows = -1;
  for (const auto& [node, tensor] : feeds) {
    PX_CHECK_GE(tensor.shape().rank(), 1);
    if (expected_rows < 0) {
      expected_rows = tensor.shape().dim(0);
    }
    PX_CHECK_EQ(tensor.shape().dim(0), expected_rows)
        << "all feeds must share the batch dimension";
    std::vector<Tensor> shards = ShardTensor(tensor, num_shards);
    for (int s = 0; s < num_shards; ++s) {
      result[static_cast<size_t>(s)][node] = std::move(shards[static_cast<size_t>(s)]);
    }
  }
  return result;
}

}  // namespace parallax
