// Data sharding for data-parallel training — the parallax.shard API (Figure 3 line 6):
// a global batch is split into disjoint per-rank shards along the batch dimension.
#ifndef PARALLAX_SRC_DATA_DATASET_H_
#define PARALLAX_SRC_DATA_DATASET_H_

#include <vector>

#include "src/graph/executor.h"
#include "src/tensor/tensor.h"

namespace parallax {

// Splits `batch` (any rank-1+ tensor, float or int) into `num_shards` near-equal row
// ranges; the first rows%num_shards shards get one extra row.
std::vector<Tensor> ShardTensor(const Tensor& batch, int num_shards);

// Shards every feed along dim 0. All feeds must have the same dim-0 extent.
std::vector<FeedMap> ShardFeeds(const FeedMap& feeds, int num_shards);

}  // namespace parallax

#endif  // PARALLAX_SRC_DATA_DATASET_H_
