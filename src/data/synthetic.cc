#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/base/logging.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {

double AlphaSchedule::ValueAt(int64_t step) const {
  if (knots.empty()) {
    return 1.0;
  }
  if (step <= knots.front().step) {
    return knots.front().value;
  }
  if (step >= knots.back().step) {
    return knots.back().value;
  }
  for (size_t k = 1; k < knots.size(); ++k) {
    if (step <= knots[k].step) {
      const Knot& lo = knots[k - 1];
      const Knot& hi = knots[k];
      PX_CHECK_GT(hi.step, lo.step) << "schedule knots must ascend by step";
      const double t = static_cast<double>(step - lo.step) /
                       static_cast<double>(hi.step - lo.step);
      return lo.value + t * (hi.value - lo.value);
    }
  }
  return knots.back().value;  // unreachable: the back() test above covers it
}

ZipfBigramText::ZipfBigramText(Options options)
    : options_(options), sampler_(options.vocab_size, options.zipf_exponent) {
  PX_CHECK_GT(options_.vocab_size, 1);
  permutation_.resize(static_cast<size_t>(options_.vocab_size));
  std::iota(permutation_.begin(), permutation_.end(), 0);
  // Fisher-Yates with the dataset's own deterministic stream.
  Rng rng(options_.seed);
  for (int64_t i = options_.vocab_size - 1; i > 0; --i) {
    int64_t j = static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(i + 1)));
    std::swap(permutation_[static_cast<size_t>(i)], permutation_[static_cast<size_t>(j)]);
  }
}

int64_t ZipfBigramText::ActiveVocab(int64_t step) const {
  const double fraction = options_.active_fraction.ValueAt(step);
  const int64_t active = static_cast<int64_t>(
      std::ceil(fraction * static_cast<double>(options_.vocab_size)));
  return std::clamp<int64_t>(active, 1, options_.vocab_size);
}

TokenBatch ZipfBigramText::Sample(int64_t n, Rng& rng, int64_t step) const {
  const int64_t active = ActiveVocab(step);
  // The truncated sampler is the Zipf conditional on id < active — the head/tail
  // shape *within* the prefix is preserved — at one uniform draw per token however
  // small the active fraction is.
  auto sample_active = [&] { return sampler_.SampleBounded(rng, active); };
  std::vector<int64_t> ids(static_cast<size_t>(n));
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t id = sample_active();
    ids[static_cast<size_t>(i)] = id;
    if (rng.NextDouble() < options_.noise) {
      labels[static_cast<size_t>(i)] = sample_active();
    } else {
      labels[static_cast<size_t>(i)] = permutation_[static_cast<size_t>(id)];
    }
  }
  TokenBatch batch;
  batch.ids = Tensor::FromIndices(std::move(ids), TensorShape({n}));
  batch.labels = Tensor::FromIndices(std::move(labels), TensorShape({n}));
  return batch;
}

int64_t ZipfBigramText::TrueNext(int64_t id) const {
  PX_CHECK_GE(id, 0);
  PX_CHECK_LT(id, options_.vocab_size);
  return permutation_[static_cast<size_t>(id)];
}

ClusteredImages::ClusteredImages(Options options) : options_(options) {
  Rng rng(options_.seed);
  centers_ = RandomNormal(TensorShape({options_.num_classes, options_.feature_dims}), rng,
                          1.0f);
}

ImageBatch ClusteredImages::Sample(int64_t n, Rng& rng) const {
  Tensor features = Tensor::Zeros(TensorShape({n, options_.feature_dims}));
  std::vector<int64_t> labels(static_cast<size_t>(n));
  auto f = features.mutable_floats();
  auto c = centers_.floats();
  for (int64_t i = 0; i < n; ++i) {
    int64_t label = static_cast<int64_t>(rng.NextBounded(
        static_cast<uint64_t>(options_.num_classes)));
    labels[static_cast<size_t>(i)] = label;
    for (int64_t d = 0; d < options_.feature_dims; ++d) {
      f[static_cast<size_t>(i * options_.feature_dims + d)] =
          c[static_cast<size_t>(label * options_.feature_dims + d)] +
          static_cast<float>(rng.NextGaussian()) *
              static_cast<float>(options_.cluster_stddev);
    }
  }
  ImageBatch batch;
  batch.features = std::move(features);
  batch.labels = Tensor::FromIndices(std::move(labels), TensorShape({n}));
  return batch;
}

}  // namespace parallax
