// Synthetic datasets standing in for One Billion Word / WMT / ImageNet (DESIGN.md
// substitution table). What matters to Parallax is the *access pattern*:
//
//  - ZipfBigramText: token ids drawn from a Zipf distribution (a hot head plus a long
//    tail, like natural vocabulary), with a learnable noisy-bigram structure (the next
//    token is a fixed permutation of the current one with probability 1 - noise). The
//    Zipf head/tail shape is what gives embedding gradients their realistic per-batch
//    alpha, and the permutation gives models something real to learn for Figure 7.
//  - ClusteredImages: Gaussian clusters in feature space, one per class — a dense
//    classification task for the image-model convergence surrogate.
#ifndef PARALLAX_SRC_DATA_SYNTHETIC_H_
#define PARALLAX_SRC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/tensor/tensor.h"

namespace parallax {

struct TokenBatch {
  Tensor ids;     // int64 [n]
  Tensor labels;  // int64 [n]
};

// A piecewise-linear scalar schedule over training steps — the data layer's way of
// *producing* sparsity drift (the signal the adaptive re-partitioning loop consumes;
// docs/adaptivity.md). Knots must ascend by step; the value is held flat before the
// first knot and after the last, and linearly interpolated between adjacent knots.
// An empty schedule means "constant 1" (no drift).
struct AlphaSchedule {
  struct Knot {
    int64_t step = 0;
    double value = 1.0;
  };
  std::vector<Knot> knots;

  bool empty() const { return knots.empty(); }
  // The scheduled value at `step` (1.0 when empty).
  double ValueAt(int64_t step) const;

  static AlphaSchedule Constant(double value) { return {{{0, value}}}; }
  // A hard switch: `before` until at_step (exclusive), `after` from there on.
  static AlphaSchedule StepChange(int64_t at_step, double before, double after) {
    return {{{at_step - 1, before}, {at_step, after}}};
  }
};

class ZipfBigramText {
 public:
  struct Options {
    int64_t vocab_size = 2000;
    double zipf_exponent = 1.05;
    // Probability that the label is random (not the permutation of the id).
    double noise = 0.1;
    uint64_t seed = 7;
    // Fraction of the vocabulary that is *active* at a given training step: ids are
    // drawn from the first ceil(fraction * vocab_size) tokens only (vocabulary
    // warm-up / curriculum). This is what makes a batch's embedding access ratio — the
    // paper's per-batch alpha — drift over time. Empty = the whole vocabulary always.
    AlphaSchedule active_fraction{};
  };

  explicit ZipfBigramText(Options options);

  // Samples a batch for training step `step` (the step only matters under an
  // active_fraction schedule). The no-step overload samples at step 0.
  TokenBatch Sample(int64_t n, Rng& rng) const { return Sample(n, rng, 0); }
  TokenBatch Sample(int64_t n, Rng& rng, int64_t step) const;
  // The ground-truth next token for `id` (for accuracy metrics).
  int64_t TrueNext(int64_t id) const;
  int64_t vocab_size() const { return options_.vocab_size; }
  // Tokens the schedule keeps active at `step` (always in [1, vocab_size]).
  int64_t ActiveVocab(int64_t step) const;

 private:
  Options options_;
  ZipfSampler sampler_;
  std::vector<int64_t> permutation_;
};

struct ImageBatch {
  Tensor features;  // float [n, dims]
  Tensor labels;    // int64 [n]
};

class ClusteredImages {
 public:
  struct Options {
    int64_t feature_dims = 32;
    int64_t num_classes = 10;
    double cluster_stddev = 0.35;
    uint64_t seed = 11;
  };

  explicit ClusteredImages(Options options);

  ImageBatch Sample(int64_t n, Rng& rng) const;
  int64_t num_classes() const { return options_.num_classes; }
  int64_t feature_dims() const { return options_.feature_dims; }

 private:
  Options options_;
  Tensor centers_;  // [num_classes, feature_dims]
};

}  // namespace parallax

#endif  // PARALLAX_SRC_DATA_SYNTHETIC_H_
