// Collective communication schedules over the simulated cluster, mirroring the
// NCCL/OpenMPI primitives the paper builds on (section 2.1):
//
//  - Ring AllReduce (reduce-scatter + allgather): 2(N-1) steps, each moving w/N bytes per
//    machine — the schedule behind the paper's 4w(N-1)/N per-machine transfer bound.
//  - Ring AllGatherv: (N-1) steps, each machine forwarding one participant's block — the
//    schedule behind the 2*alpha*w*(N-1) bound for sparse gradients.
//  - Hierarchical AllReduce: intra-machine reduce over PCIe, inter-machine ring over the
//    NICs, intra-machine broadcast — NCCL's topology-aware composition, which is what
//    makes "N" in the ring formulas the machine count rather than the GPU count.
//
// The builders only *schedule* (emit tasks); the numeric payload semantics live in
// reduce.h so that at-paper-scale benches can run cost-only while correctness tests push
// real tensors through identical schedules.
#ifndef PARALLAX_SRC_COMM_COLLECTIVES_H_
#define PARALLAX_SRC_COMM_COLLECTIVES_H_

#include <cstdint>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/task_graph.h"

namespace parallax {

struct CollectiveOptions {
  // Fixed per-step launch overhead (kernel launch + protocol), seconds.
  double step_overhead = 25e-6;
};

struct CollectiveSchedule {
  // Completion task per participant, in the order participants were given.
  std::vector<TaskId> done;
  // Joint completion barrier.
  TaskId all_done = kNoTask;
};

// Ring AllReduce across `machines` (distinct machine ids, ring in the given order) moving
// `bytes` per machine. deps[i] gates machine i's first send (kNoTask = ready at start).
CollectiveSchedule AddRingAllReduce(TaskGraph& graph, const std::vector<int>& machines,
                                    int64_t bytes, const std::vector<TaskId>& deps,
                                    const CollectiveOptions& options = {});

// Ring AllGatherv across `machines`, where machine i contributes bytes_per_machine[i].
// After the collective every machine holds every block (concatenation semantics).
CollectiveSchedule AddRingAllGatherv(TaskGraph& graph, const std::vector<int>& machines,
                                     const std::vector<int64_t>& bytes_per_machine,
                                     const std::vector<TaskId>& deps,
                                     const CollectiveOptions& options = {});

// Hierarchical AllReduce over every rank of `layout`, moving `bytes` per rank replica.
// deps[rank] gates rank r's contribution. Phases: local reduce (PCIe), inter-machine ring
// (NIC), local broadcast (PCIe). done[] is indexed by rank.
CollectiveSchedule AddHierarchicalAllReduce(TaskGraph& graph, const RankLayout& layout,
                                            int64_t bytes, const std::vector<TaskId>& deps,
                                            const CollectiveOptions& options = {});

// Ring AllGatherv across every rank of `layout` (the OpenMPI-style rank-level ring the
// paper inevitably uses for sparse gradients, section 6.1). Adjacent same-machine ranks
// exchange over PCIe; machine-boundary hops cross the NICs. bytes_per_rank[r] is rank r's
// block size. done[] is indexed by rank.
CollectiveSchedule AddRankRingAllGatherv(TaskGraph& graph, const RankLayout& layout,
                                         const std::vector<int64_t>& bytes_per_rank,
                                         const std::vector<TaskId>& deps,
                                         const CollectiveOptions& options = {});

}  // namespace parallax

#endif  // PARALLAX_SRC_COMM_COLLECTIVES_H_
