// Collective communication schedules over the simulated cluster, mirroring the
// NCCL/OpenMPI primitives the paper builds on (section 2.1):
//
//  - Ring AllReduce (reduce-scatter + allgather): 2(N-1) steps, each moving w/N bytes per
//    machine — the schedule behind the paper's 4w(N-1)/N per-machine transfer bound.
//  - Ring AllGatherv: (N-1) steps, each machine forwarding one participant's block — the
//    schedule behind the 2*alpha*w*(N-1) bound for sparse gradients.
//  - Hierarchical AllReduce: intra-machine reduce over PCIe, inter-machine ring over the
//    NICs, intra-machine broadcast — NCCL's topology-aware composition, which is what
//    makes "N" in the ring formulas the machine count rather than the GPU count.
//
// The builders only *schedule* (emit tasks); the numeric payload semantics live in
// reduce.h so that at-paper-scale benches can run cost-only while correctness tests push
// real tensors through identical schedules.
//
// Schedules for a fixed (collective, participants, bytes, overhead) tuple are
// deterministic, so they are built once as a relocatable SchedulePlan and replayed into
// the per-iteration TaskGraph. A CollectiveScheduleCache keyed on that tuple makes the
// replay the steady-state path: the partition search simulates thousands of iterations,
// and after the first one every collective instantiation is an allocation-free copy of a
// cached plan (this is the amortization the paper applies to its hybrid search — the
// communication schedule of a candidate placement never changes across its iterations).
#ifndef PARALLAX_SRC_COMM_COLLECTIVES_H_
#define PARALLAX_SRC_COMM_COLLECTIVES_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/task_graph.h"

namespace parallax {

struct CollectiveOptions {
  // Fixed per-step launch overhead (kernel launch + protocol), seconds.
  double step_overhead = 25e-6;
};

struct CollectiveSchedule {
  // Completion task per participant, in the order participants were given.
  std::vector<TaskId> done;
  // Joint completion barrier.
  TaskId all_done = kNoTask;
};

// A dependency-resolved recipe for one collective's task DAG, independent of the graph
// it will be emitted into. Ops reference dependencies either plan-locally (earlier ops)
// or as external participant slots resolved at instantiation time; machine numbers are
// slots translated through an optional table, so one ring plan serves any machine list
// of the same size. Build once, replay many times.
struct SchedulePlan {
  struct Op {
    TaskKind kind = TaskKind::kBarrier;
    int32_t src = 0;       // machine slot (kTransfer: sender; others: the machine)
    int32_t dst = 0;       // machine slot, kTransfer only
    int64_t bytes = 0;
    double seconds = 0.0;
    int32_t deps_begin = 0;
    int32_t deps_count = 0;
    // Mirrors the builders' "gate on the receiver's dependency only when it exists"
    // shape: when any referenced external dep resolves to kNoTask, the op emits no task
    // and aliases to its first resolved dependency instead.
    bool collapse_when_external_absent = false;
  };

  std::vector<Op> ops;
  // Dep references: >= 0 is a plan-local op index, < 0 encodes external slot ~ref.
  std::vector<int32_t> dep_refs;
  std::vector<int32_t> done_refs;  // per participant, op index of its completion task
  int32_t all_done_ref = -1;
  int num_participants = 0;
  // Exact key payload for block-vector-keyed collectives (collision verification).
  std::vector<int64_t> key_blocks;

  size_t num_ops() const { return ops.size(); }
};

// Scratch for plan replay (plan-local op index -> emitted TaskId, plus a dependency
// staging buffer). Reused across instantiations so replay allocates nothing.
struct PlanScratch {
  std::vector<TaskId> task_of_op;
  std::vector<TaskId> dep_buf;
};

// Replays `plan` into `graph`. machine_of_slot translates plan machine slots to machine
// ids (empty = identity, for plans built over physical machine numbers). deps[i] gates
// participant i's contribution (kNoTask = ready at start). Fills out->done / all_done,
// reusing their capacity. The emitted tasks are byte-identical to what the matching
// builder would emit directly — see tests/schedule_cache_test.cc.
void InstantiatePlan(const SchedulePlan& plan, TaskGraph& graph,
                     std::span<const int> machine_of_slot, std::span<const TaskId> deps,
                     CollectiveSchedule* out, PlanScratch* scratch);

// Plan builders. Participant slots are 0..n-1 for the ring collectives (translated
// through a machine list at instantiation); the layout collectives emit physical machine
// numbers and instantiate with the identity translation.
SchedulePlan BuildRingAllReducePlan(int num_participants, int64_t bytes,
                                    const CollectiveOptions& options);
SchedulePlan BuildRingAllGathervPlan(std::span<const int64_t> bytes_per_machine,
                                     const CollectiveOptions& options);
SchedulePlan BuildHierarchicalAllReducePlan(const RankLayout& layout, int64_t bytes,
                                            const CollectiveOptions& options);
SchedulePlan BuildRankRingAllGathervPlan(const RankLayout& layout,
                                         std::span<const int64_t> bytes_per_rank,
                                         const CollectiveOptions& options);
// Rack-aware AllReduce for a layout whose machines are grouped into `num_racks` equal
// racks (machine-major: machines [r*M/R, (r+1)*M/R) form rack r). Five phases:
// intra-machine reduce (PCIe), per-rack ring reduce-scatter (NIC), one cross-rack ring
// per reduced chunk among the racks' chunk owners (these are the only transfers that
// ride the spine, and each crosses every spine link exactly once per direction per
// step), per-rack ring allgather, intra-machine broadcast. Per spine link this moves
// ~2*(R-1)/R * bytes versus the flat machine-major ring's ~2*(M-1)/M * bytes — the win
// under spine oversubscription. Requires num_racks > 1 and num_machines % num_racks == 0.
SchedulePlan BuildTopologyAllReducePlan(const RankLayout& layout, int num_racks,
                                        int64_t bytes, const CollectiveOptions& options);
// The broadcast-style AllGatherv (every rank ships its block to every other rank;
// cross-machine hops carry `inflated_bytes`, intra-machine hops `block_bytes`) as a
// cached plan. Emits exactly the task sequence the historical inline loop in
// core/iteration_sim.cc produced: all transfers source-major, then one gate barrier per
// rank whose own readiness dep comes last; no joint completion barrier.
SchedulePlan BuildBroadcastAllGathervPlan(const RankLayout& layout, int64_t block_bytes,
                                          int64_t inflated_bytes);

// Keyed plan cache + replay scratch. Single-threaded (one per simulation arena).
class CollectiveScheduleCache {
 public:
  const SchedulePlan& RingAllReduce(int num_participants, int64_t bytes,
                                    const CollectiveOptions& options);
  const SchedulePlan& RingAllGatherv(std::span<const int64_t> bytes_per_machine,
                                     const CollectiveOptions& options);
  const SchedulePlan& HierarchicalAllReduce(const RankLayout& layout, int64_t bytes,
                                            const CollectiveOptions& options);
  const SchedulePlan& RankRingAllGatherv(const RankLayout& layout,
                                         std::span<const int64_t> bytes_per_rank,
                                         const CollectiveOptions& options);
  const SchedulePlan& TopologyAllReduce(const RankLayout& layout, int num_racks,
                                        int64_t bytes, const CollectiveOptions& options);
  const SchedulePlan& BroadcastAllGatherv(const RankLayout& layout, int64_t block_bytes,
                                          int64_t inflated_bytes);

  // Replay with cache-owned scratch. Logically read-only (the plan set is untouched);
  // the replay scratch it reuses is `mutable` state of the owning arena's thread, like
  // everything else here — see the thread-ownership contract below.
  void Instantiate(const SchedulePlan& plan, TaskGraph& graph,
                   std::span<const int> machine_of_slot, std::span<const TaskId> deps,
                   CollectiveSchedule* out) const {
    InstantiatePlan(plan, graph, machine_of_slot, deps, out, &scratch_);
  }

  size_t size() const { return plans_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Key {
    uint8_t kind = 0;
    int32_t a = 0;           // participant / machine count
    int32_t b = 0;           // gpus per machine (layout collectives)
    int64_t bytes = 0;       // scalar payload (0 for block-vector collectives)
    uint64_t blocks_hash = 0;  // fingerprint of the block vector (0 otherwise)
    double overhead = 0.0;

    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  template <typename BuildFn>
  const SchedulePlan& Lookup(Key key, std::span<const int64_t> blocks, BuildFn&& build);

  // Thread-ownership contract: every member below is owned by the one thread driving
  // the enclosing SimulationArena — no internal locking anywhere in this class.
  std::unordered_map<Key, SchedulePlan, KeyHash> plans_;  // owned by the arena's thread
  mutable PlanScratch scratch_;  // replay scratch; reused (and mutated) by const Instantiate
  size_t hits_ = 0;    // owned by the arena's thread
  size_t misses_ = 0;  // owned by the arena's thread
};

// Ring AllReduce across `machines` (distinct machine ids, ring in the given order) moving
// `bytes` per machine. deps[i] gates machine i's first send (kNoTask = ready at start).
// With a cache, the plan is fetched (or built once) and replayed; without one, a one-off
// plan is built and instantiated — both paths emit byte-identical task sequences.
CollectiveSchedule AddRingAllReduce(TaskGraph& graph, const std::vector<int>& machines,
                                    int64_t bytes, const std::vector<TaskId>& deps,
                                    const CollectiveOptions& options = {},
                                    CollectiveScheduleCache* cache = nullptr);

// Ring AllGatherv across `machines`, where machine i contributes bytes_per_machine[i].
// After the collective every machine holds every block (concatenation semantics).
CollectiveSchedule AddRingAllGatherv(TaskGraph& graph, const std::vector<int>& machines,
                                     const std::vector<int64_t>& bytes_per_machine,
                                     const std::vector<TaskId>& deps,
                                     const CollectiveOptions& options = {},
                                     CollectiveScheduleCache* cache = nullptr);

// Hierarchical AllReduce over every rank of `layout`, moving `bytes` per rank replica.
// deps[rank] gates rank r's contribution. Phases: local reduce (PCIe), inter-machine ring
// (NIC), local broadcast (PCIe). done[] is indexed by rank.
CollectiveSchedule AddHierarchicalAllReduce(TaskGraph& graph, const RankLayout& layout,
                                            int64_t bytes, const std::vector<TaskId>& deps,
                                            const CollectiveOptions& options = {},
                                            CollectiveScheduleCache* cache = nullptr);

// Ring AllGatherv across every rank of `layout` (the OpenMPI-style rank-level ring the
// paper inevitably uses for sparse gradients, section 6.1). Adjacent same-machine ranks
// exchange over PCIe; machine-boundary hops cross the NICs. bytes_per_rank[r] is rank r's
// block size. done[] is indexed by rank.
CollectiveSchedule AddRankRingAllGatherv(TaskGraph& graph, const RankLayout& layout,
                                         const std::vector<int64_t>& bytes_per_rank,
                                         const std::vector<TaskId>& deps,
                                         const CollectiveOptions& options = {},
                                         CollectiveScheduleCache* cache = nullptr);

// Rack-aware AllReduce over every rank of `layout` grouped into `num_racks` racks (see
// BuildTopologyAllReducePlan). Executed on a Cluster whose TopologySpec matches, the
// cross-rack ring transfers ride the spine links. done[] is indexed by rank.
CollectiveSchedule AddTopologyAllReduce(TaskGraph& graph, const RankLayout& layout,
                                        int num_racks, int64_t bytes,
                                        const std::vector<TaskId>& deps,
                                        const CollectiveOptions& options = {},
                                        CollectiveScheduleCache* cache = nullptr);

// Broadcast-style AllGatherv over every rank of `layout` (see
// BuildBroadcastAllGathervPlan). done[] is indexed by rank; no joint barrier.
CollectiveSchedule AddBroadcastAllGatherv(TaskGraph& graph, const RankLayout& layout,
                                          int64_t block_bytes, int64_t inflated_bytes,
                                          const std::vector<TaskId>& deps,
                                          CollectiveScheduleCache* cache = nullptr);

}  // namespace parallax

#endif  // PARALLAX_SRC_COMM_COLLECTIVES_H_
