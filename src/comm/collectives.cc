#include "src/comm/collectives.h"

#include <algorithm>

#include "src/base/math.h"

namespace parallax {
namespace {

// Encodes external participant slot `slot` as a negative dep reference.
constexpr int32_t ExternalRef(int slot) { return -1 - slot; }

int32_t AddOp(SchedulePlan& plan, TaskKind kind, int src, int dst, int64_t bytes,
              double seconds, std::span<const int32_t> refs, bool collapse = false) {
  SchedulePlan::Op op;
  op.kind = kind;
  op.src = src;
  op.dst = dst;
  op.bytes = bytes;
  op.seconds = seconds;
  op.deps_begin = static_cast<int32_t>(plan.dep_refs.size());
  op.deps_count = static_cast<int32_t>(refs.size());
  op.collapse_when_external_absent = collapse;
  plan.dep_refs.insert(plan.dep_refs.end(), refs.begin(), refs.end());
  plan.ops.push_back(op);
  return static_cast<int32_t>(plan.ops.size()) - 1;
}

int32_t PlanTransfer(SchedulePlan& plan, int src_slot, int dst_slot, int64_t bytes,
                     std::span<const int32_t> refs) {
  return AddOp(plan, TaskKind::kTransfer, src_slot, dst_slot, bytes, 0.0, refs);
}

int32_t PlanLocalTransfer(SchedulePlan& plan, int slot, int64_t bytes,
                          std::span<const int32_t> refs) {
  return AddOp(plan, TaskKind::kLocalTransfer, slot, 0, bytes, 0.0, refs);
}

int32_t PlanBarrier(SchedulePlan& plan, std::span<const int32_t> refs,
                    bool collapse = false) {
  return AddOp(plan, TaskKind::kBarrier, 0, 0, 0, 0.0, refs, collapse);
}

// Applies the per-step overhead to a transfer op; returns the ref marking chunk
// arrival. The overhead rides the transfer task as a post-completion delay (it never
// occupies the links), so no separate delay task is emitted per ring step.
int32_t WithOverhead(SchedulePlan& plan, int32_t transfer, const CollectiveOptions& options) {
  if (options.step_overhead > 0.0) {
    plan.ops[static_cast<size_t>(transfer)].seconds = options.step_overhead;
  }
  return transfer;
}

// Emits a ring AllReduce over participants 0..n-1, gated by dep_refs. slots[i] is
// participant i's machine slot (empty = participant index, the historical behavior).
// Appends each participant's completion barrier to done_refs and the joint barrier ref
// to *all_done_ref, mirroring the task order of the original direct builder exactly.
void EmitRingAllReduce(SchedulePlan& plan, std::span<const int> slots,
                       std::span<const int32_t> dep_refs, int64_t bytes,
                       const CollectiveOptions& options, std::vector<int32_t>& done_refs,
                       int32_t& all_done_ref) {
  const int n = static_cast<int>(dep_refs.size());
  PX_CHECK_GT(n, 0);
  auto slot = [&slots](int i) { return slots.empty() ? i : slots[static_cast<size_t>(i)]; };

  if (n == 1) {
    int32_t refs[] = {dep_refs[0]};
    done_refs.push_back(PlanBarrier(plan, refs));
    all_done_ref = done_refs.back();
    return;
  }

  // arrivals[i] = ref after which participant i has received *and reduced* the step's
  // chunk. Reduce-scatter: step s, participant i sends chunk (i-s) mod n to i+1. The
  // receiver folds its own contribution into the incoming chunk, so every arrival also
  // gates on the receiver's dependency (a collapsing barrier: absent dep, no barrier).
  std::vector<int32_t> prev_arrival(static_cast<size_t>(n), -1);
  std::vector<int32_t> arrival(static_cast<size_t>(n), -1);
  for (int s = 0; s <= n - 2; ++s) {
    for (int i = 0; i < n; ++i) {
      int chunk = PosMod(i - s, n);
      int recv = PosMod(i + 1, n);
      int32_t send_dep = s == 0 ? dep_refs[static_cast<size_t>(i)]
                                : prev_arrival[static_cast<size_t>(i)];
      int32_t send_refs[] = {send_dep};
      int32_t transfer = PlanTransfer(plan, slot(i), slot(recv),
                                      BalancedSplitSize(bytes, n, chunk), send_refs);
      int32_t arrived = WithOverhead(plan, transfer, options);
      int32_t gate_refs[] = {arrived, dep_refs[static_cast<size_t>(recv)]};
      arrival[static_cast<size_t>(recv)] =
          PlanBarrier(plan, gate_refs, /*collapse=*/true);
    }
    std::swap(prev_arrival, arrival);
  }

  // Allgather: step s, participant i sends chunk (i+1-s) mod n to i+1. Its first send is
  // gated on its final reduce-scatter arrival (the chunk it fully reduced).
  for (int s = 0; s <= n - 2; ++s) {
    for (int i = 0; i < n; ++i) {
      int chunk = PosMod(i + 1 - s, n);
      int32_t send_refs[] = {prev_arrival[static_cast<size_t>(i)]};
      int32_t transfer = PlanTransfer(plan, slot(i), slot(PosMod(i + 1, n)),
                                      BalancedSplitSize(bytes, n, chunk), send_refs);
      arrival[static_cast<size_t>(PosMod(i + 1, n))] = WithOverhead(plan, transfer, options);
    }
    std::swap(prev_arrival, arrival);
  }

  size_t done_begin = done_refs.size();
  for (int i = 0; i < n; ++i) {
    int32_t refs[] = {prev_arrival[static_cast<size_t>(i)]};
    done_refs.push_back(PlanBarrier(plan, refs));
  }
  all_done_ref = PlanBarrier(
      plan, std::span<const int32_t>(done_refs.data() + done_begin, static_cast<size_t>(n)));
}

// The reduce-scatter half of the ring, standalone: after n-1 steps participant i holds
// the fully reduced chunk (i+1) mod n; owned[i] is the ref gating that ownership.
// Chunk c has BalancedSplitSize(bytes, n, c) bytes.
void EmitRingReduceScatter(SchedulePlan& plan, std::span<const int> slots,
                           std::span<const int32_t> dep_refs, int64_t bytes,
                           const CollectiveOptions& options, std::vector<int32_t>& owned) {
  const int n = static_cast<int>(dep_refs.size());
  PX_CHECK_GT(n, 0);
  auto slot = [&slots](int i) { return slots.empty() ? i : slots[static_cast<size_t>(i)]; };
  owned.assign(dep_refs.begin(), dep_refs.end());
  if (n == 1) {
    return;
  }
  std::vector<int32_t> arrival(static_cast<size_t>(n), -1);
  for (int s = 0; s <= n - 2; ++s) {
    for (int i = 0; i < n; ++i) {
      int chunk = PosMod(i - s, n);
      int recv = PosMod(i + 1, n);
      int32_t send_dep = s == 0 ? dep_refs[static_cast<size_t>(i)]
                                : owned[static_cast<size_t>(i)];
      int32_t send_refs[] = {send_dep};
      int32_t transfer = PlanTransfer(plan, slot(i), slot(recv),
                                      BalancedSplitSize(bytes, n, chunk), send_refs);
      int32_t arrived = WithOverhead(plan, transfer, options);
      int32_t gate_refs[] = {arrived, dep_refs[static_cast<size_t>(recv)]};
      arrival[static_cast<size_t>(recv)] =
          PlanBarrier(plan, gate_refs, /*collapse=*/true);
    }
    std::swap(owned, arrival);
  }
}

// The allgather half: participant i starts owning chunk (i+1) mod n (gated by owned[i])
// and after n-1 forwarding steps holds all n chunks; done[i] is the ref after which
// participant i is complete.
void EmitRingAllGather(SchedulePlan& plan, std::span<const int> slots,
                       std::span<const int32_t> owned, int64_t bytes,
                       const CollectiveOptions& options, std::vector<int32_t>& done) {
  const int n = static_cast<int>(owned.size());
  PX_CHECK_GT(n, 0);
  auto slot = [&slots](int i) { return slots.empty() ? i : slots[static_cast<size_t>(i)]; };
  std::vector<int32_t> prev_arrival(owned.begin(), owned.end());
  std::vector<int32_t> arrival(static_cast<size_t>(n), -1);
  for (int s = 0; s <= n - 2; ++s) {
    for (int i = 0; i < n; ++i) {
      int chunk = PosMod(i + 1 - s, n);
      int32_t send_refs[] = {prev_arrival[static_cast<size_t>(i)]};
      int32_t transfer = PlanTransfer(plan, slot(i), slot(PosMod(i + 1, n)),
                                      BalancedSplitSize(bytes, n, chunk), send_refs);
      arrival[static_cast<size_t>(PosMod(i + 1, n))] = WithOverhead(plan, transfer, options);
    }
    std::swap(prev_arrival, arrival);
  }
  done.assign(prev_arrival.begin(), prev_arrival.end());
}

}  // namespace

SchedulePlan BuildRingAllReducePlan(int num_participants, int64_t bytes,
                                    const CollectiveOptions& options) {
  SchedulePlan plan;
  plan.num_participants = num_participants;
  std::vector<int32_t> dep_refs(static_cast<size_t>(num_participants));
  for (int i = 0; i < num_participants; ++i) {
    dep_refs[static_cast<size_t>(i)] = ExternalRef(i);
  }
  EmitRingAllReduce(plan, {}, dep_refs, bytes, options, plan.done_refs, plan.all_done_ref);
  return plan;
}

SchedulePlan BuildRingAllGathervPlan(std::span<const int64_t> bytes_per_machine,
                                     const CollectiveOptions& options) {
  const int n = static_cast<int>(bytes_per_machine.size());
  PX_CHECK_GT(n, 0);
  SchedulePlan plan;
  plan.num_participants = n;

  if (n == 1) {
    int32_t refs[] = {ExternalRef(0)};
    plan.done_refs.push_back(PlanBarrier(plan, refs));
    plan.all_done_ref = plan.done_refs.back();
    return plan;
  }

  // Step s: participant i forwards block (i-s) mod n to participant i+1.
  std::vector<int32_t> prev_arrival(static_cast<size_t>(n), -1);
  std::vector<int32_t> arrival(static_cast<size_t>(n), -1);
  for (int s = 0; s <= n - 2; ++s) {
    for (int i = 0; i < n; ++i) {
      int block = PosMod(i - s, n);
      int32_t send_dep = s == 0 ? ExternalRef(i) : prev_arrival[static_cast<size_t>(i)];
      int32_t send_refs[] = {send_dep};
      int32_t transfer =
          PlanTransfer(plan, i, PosMod(i + 1, n),
                       bytes_per_machine[static_cast<size_t>(block)], send_refs);
      arrival[static_cast<size_t>(PosMod(i + 1, n))] = WithOverhead(plan, transfer, options);
    }
    std::swap(prev_arrival, arrival);
  }

  for (int i = 0; i < n; ++i) {
    int32_t refs[] = {prev_arrival[static_cast<size_t>(i)]};
    plan.done_refs.push_back(PlanBarrier(plan, refs));
  }
  plan.all_done_ref = PlanBarrier(plan, plan.done_refs);
  return plan;
}

SchedulePlan BuildHierarchicalAllReducePlan(const RankLayout& layout, int64_t bytes,
                                            const CollectiveOptions& options) {
  const int num_ranks = layout.num_ranks();
  SchedulePlan plan;
  plan.num_participants = num_ranks;
  plan.done_refs.resize(static_cast<size_t>(num_ranks));

  // Phase 1: intra-machine reduce onto each machine's lead GPU, over PCIe.
  std::vector<int32_t> machine_ready(static_cast<size_t>(layout.num_machines), -1);
  std::vector<int32_t> local_refs(static_cast<size_t>(layout.gpus_per_machine));
  for (int m = 0; m < layout.num_machines; ++m) {
    for (int g = 0; g < layout.gpus_per_machine; ++g) {
      local_refs[static_cast<size_t>(g)] = ExternalRef(layout.RankOf(m, g));
    }
    if (layout.gpus_per_machine > 1) {
      machine_ready[static_cast<size_t>(m)] = PlanLocalTransfer(plan, m, bytes, local_refs);
    } else {
      machine_ready[static_cast<size_t>(m)] = PlanBarrier(plan, local_refs);
    }
  }

  // Phase 2: ring across machines (machine slot = machine id here, so the plan
  // instantiates with the identity translation).
  std::vector<int32_t> ring_done;
  int32_t ring_all_done = -1;
  if (layout.num_machines > 1) {
    EmitRingAllReduce(plan, {}, machine_ready, bytes, options, ring_done, ring_all_done);
  } else {
    ring_done = machine_ready;
  }

  // Phase 3: intra-machine broadcast back to all GPUs.
  for (int m = 0; m < layout.num_machines; ++m) {
    int32_t broadcast = ring_done[static_cast<size_t>(m)];
    if (layout.gpus_per_machine > 1) {
      int32_t refs[] = {ring_done[static_cast<size_t>(m)]};
      broadcast = PlanLocalTransfer(plan, m, bytes, refs);
    }
    for (int g = 0; g < layout.gpus_per_machine; ++g) {
      plan.done_refs[static_cast<size_t>(layout.RankOf(m, g))] = broadcast;
    }
  }
  plan.all_done_ref = PlanBarrier(plan, plan.done_refs);
  return plan;
}

SchedulePlan BuildRankRingAllGathervPlan(const RankLayout& layout,
                                         std::span<const int64_t> bytes_per_rank,
                                         const CollectiveOptions& options) {
  const int r_count = layout.num_ranks();
  PX_CHECK_EQ(bytes_per_rank.size(), static_cast<size_t>(r_count));
  SchedulePlan plan;
  plan.num_participants = r_count;

  if (r_count == 1) {
    int32_t refs[] = {ExternalRef(0)};
    plan.done_refs.push_back(PlanBarrier(plan, refs));
    plan.all_done_ref = plan.done_refs.back();
    return plan;
  }

  std::vector<int32_t> prev_arrival(static_cast<size_t>(r_count), -1);
  std::vector<int32_t> arrival(static_cast<size_t>(r_count), -1);
  for (int s = 0; s <= r_count - 2; ++s) {
    for (int r = 0; r < r_count; ++r) {
      int block = PosMod(r - s, r_count);
      int next = PosMod(r + 1, r_count);
      int32_t send_dep = s == 0 ? ExternalRef(r) : prev_arrival[static_cast<size_t>(r)];
      int32_t send_refs[] = {send_dep};
      int src_machine = layout.MachineOfRank(r);
      int dst_machine = layout.MachineOfRank(next);
      int32_t transfer;
      if (src_machine == dst_machine) {
        transfer = PlanLocalTransfer(plan, src_machine,
                                     bytes_per_rank[static_cast<size_t>(block)], send_refs);
      } else {
        transfer = PlanTransfer(plan, src_machine, dst_machine,
                                bytes_per_rank[static_cast<size_t>(block)], send_refs);
      }
      arrival[static_cast<size_t>(next)] = WithOverhead(plan, transfer, options);
    }
    std::swap(prev_arrival, arrival);
  }

  for (int r = 0; r < r_count; ++r) {
    int32_t refs[] = {prev_arrival[static_cast<size_t>(r)]};
    plan.done_refs.push_back(PlanBarrier(plan, refs));
  }
  plan.all_done_ref = PlanBarrier(plan, plan.done_refs);
  return plan;
}

SchedulePlan BuildTopologyAllReducePlan(const RankLayout& layout, int num_racks,
                                        int64_t bytes, const CollectiveOptions& options) {
  const int num_machines = layout.num_machines;
  PX_CHECK_GT(num_racks, 1);
  PX_CHECK_EQ(num_machines % num_racks, 0)
      << "racks must partition the machines evenly";
  const int per_rack = num_machines / num_racks;
  const int num_ranks = layout.num_ranks();
  SchedulePlan plan;
  plan.num_participants = num_ranks;
  plan.done_refs.resize(static_cast<size_t>(num_ranks));

  // Phase 1: intra-machine reduce onto each machine's lead GPU, over PCIe (identical to
  // the hierarchical builder's first phase).
  std::vector<int32_t> machine_ready(static_cast<size_t>(num_machines), -1);
  std::vector<int32_t> local_refs(static_cast<size_t>(layout.gpus_per_machine));
  for (int m = 0; m < num_machines; ++m) {
    for (int g = 0; g < layout.gpus_per_machine; ++g) {
      local_refs[static_cast<size_t>(g)] = ExternalRef(layout.RankOf(m, g));
    }
    if (layout.gpus_per_machine > 1) {
      machine_ready[static_cast<size_t>(m)] = PlanLocalTransfer(plan, m, bytes, local_refs);
    } else {
      machine_ready[static_cast<size_t>(m)] = PlanBarrier(plan, local_refs);
    }
  }

  // Phase 2: ring reduce-scatter inside each rack. Afterwards the machine with local
  // index j in rack r owns the rack-reduced chunk (j+1) mod per_rack.
  std::vector<int32_t> owned = machine_ready;
  std::vector<int> slots(static_cast<size_t>(per_rack));
  std::vector<int32_t> rack_deps(static_cast<size_t>(per_rack));
  std::vector<int32_t> rack_out;
  if (per_rack > 1) {
    for (int r = 0; r < num_racks; ++r) {
      for (int j = 0; j < per_rack; ++j) {
        slots[static_cast<size_t>(j)] = r * per_rack + j;
        rack_deps[static_cast<size_t>(j)] =
            machine_ready[static_cast<size_t>(r * per_rack + j)];
      }
      EmitRingReduceScatter(plan, slots, rack_deps, bytes, options, rack_out);
      for (int j = 0; j < per_rack; ++j) {
        owned[static_cast<size_t>(r * per_rack + j)] = rack_out[static_cast<size_t>(j)];
      }
    }
  }

  // Phase 3: one cross-rack ring AllReduce per chunk, among each rack's owner of that
  // chunk — the only transfers that leave a rack, so each spine link carries exactly
  // one (R-1)/R-scaled pass per direction per chunk.
  std::vector<int32_t> global_owned = owned;
  std::vector<int> ring_slots(static_cast<size_t>(num_racks));
  std::vector<int32_t> ring_deps(static_cast<size_t>(num_racks));
  std::vector<int32_t> ring_done;
  int32_t ring_all_done = -1;
  for (int c = 0; c < per_rack; ++c) {
    const int j = PosMod(c - 1, per_rack);  // local index of chunk c's owner
    for (int r = 0; r < num_racks; ++r) {
      ring_slots[static_cast<size_t>(r)] = r * per_rack + j;
      ring_deps[static_cast<size_t>(r)] = owned[static_cast<size_t>(r * per_rack + j)];
    }
    ring_done.clear();
    EmitRingAllReduce(plan, ring_slots, ring_deps, BalancedSplitSize(bytes, per_rack, c),
                      options, ring_done, ring_all_done);
    for (int r = 0; r < num_racks; ++r) {
      global_owned[static_cast<size_t>(r * per_rack + j)] =
          ring_done[static_cast<size_t>(r)];
    }
  }

  // Phase 4: ring allgather inside each rack rebuilds the full buffer on every machine.
  std::vector<int32_t> machine_done = global_owned;
  if (per_rack > 1) {
    for (int r = 0; r < num_racks; ++r) {
      for (int j = 0; j < per_rack; ++j) {
        slots[static_cast<size_t>(j)] = r * per_rack + j;
        rack_deps[static_cast<size_t>(j)] =
            global_owned[static_cast<size_t>(r * per_rack + j)];
      }
      EmitRingAllGather(plan, slots, rack_deps, bytes, options, rack_out);
      for (int j = 0; j < per_rack; ++j) {
        machine_done[static_cast<size_t>(r * per_rack + j)] =
            rack_out[static_cast<size_t>(j)];
      }
    }
  }

  // Phase 5: intra-machine broadcast back to all GPUs (identical to hierarchical).
  for (int m = 0; m < num_machines; ++m) {
    int32_t broadcast = machine_done[static_cast<size_t>(m)];
    if (layout.gpus_per_machine > 1) {
      int32_t refs[] = {machine_done[static_cast<size_t>(m)]};
      broadcast = PlanLocalTransfer(plan, m, bytes, refs);
    }
    for (int g = 0; g < layout.gpus_per_machine; ++g) {
      plan.done_refs[static_cast<size_t>(layout.RankOf(m, g))] = broadcast;
    }
  }
  plan.all_done_ref = PlanBarrier(plan, plan.done_refs);
  return plan;
}

SchedulePlan BuildBroadcastAllGathervPlan(const RankLayout& layout, int64_t block_bytes,
                                          int64_t inflated_bytes) {
  const int num_ranks = layout.num_ranks();
  PX_CHECK_GT(num_ranks, 0);
  SchedulePlan plan;
  plan.num_participants = num_ranks;

  // Transfers in the historical source-major order; arrival_ref[dst][src] collects the
  // per-destination fan-in so each gate barrier lists its senders in ascending order.
  std::vector<int32_t> arrival_ref(
      static_cast<size_t>(num_ranks) * static_cast<size_t>(num_ranks), -1);
  for (int src = 0; src < num_ranks; ++src) {
    for (int dst = 0; dst < num_ranks; ++dst) {
      if (src == dst) {
        continue;
      }
      const int src_m = layout.MachineOfRank(src);
      const int dst_m = layout.MachineOfRank(dst);
      int32_t dep[] = {ExternalRef(src)};
      int32_t xfer = src_m == dst_m
                         ? PlanLocalTransfer(plan, src_m, block_bytes, dep)
                         : PlanTransfer(plan, src_m, dst_m, inflated_bytes, dep);
      arrival_ref[static_cast<size_t>(dst) * static_cast<size_t>(num_ranks) +
                  static_cast<size_t>(src)] = xfer;
    }
  }
  std::vector<int32_t> refs;
  refs.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    refs.clear();
    for (int src = 0; src < num_ranks; ++src) {
      int32_t ref = arrival_ref[static_cast<size_t>(r) * static_cast<size_t>(num_ranks) +
                                static_cast<size_t>(src)];
      if (ref >= 0) {
        refs.push_back(ref);
      }
    }
    refs.push_back(ExternalRef(r));  // the rank's own readiness gates last, as before
    plan.done_refs.push_back(PlanBarrier(plan, refs));
  }
  // The historical loop emitted no joint completion barrier; consumers gate on done[r].
  plan.all_done_ref = -1;
  return plan;
}

void InstantiatePlan(const SchedulePlan& plan, TaskGraph& graph,
                     std::span<const int> machine_of_slot, std::span<const TaskId> deps,
                     CollectiveSchedule* out, PlanScratch* scratch) {
  PX_CHECK_EQ(deps.size(), static_cast<size_t>(plan.num_participants));
  std::vector<TaskId>& ids = scratch->task_of_op;
  std::vector<TaskId>& dep_buf = scratch->dep_buf;
  ids.clear();
  auto machine_of = [&machine_of_slot](int32_t slot) {
    return machine_of_slot.empty() ? slot : machine_of_slot[static_cast<size_t>(slot)];
  };

  for (const SchedulePlan::Op& op : plan.ops) {
    dep_buf.clear();
    bool external_absent = false;
    for (int32_t k = 0; k < op.deps_count; ++k) {
      int32_t ref = plan.dep_refs[static_cast<size_t>(op.deps_begin + k)];
      if (ref >= 0) {
        dep_buf.push_back(ids[static_cast<size_t>(ref)]);
      } else {
        TaskId external = deps[static_cast<size_t>(-1 - ref)];
        if (external == kNoTask) {
          external_absent = true;
        } else {
          dep_buf.push_back(external);
        }
      }
    }
    if (op.collapse_when_external_absent && external_absent) {
      PX_CHECK(!dep_buf.empty());
      ids.push_back(dep_buf.front());
      continue;
    }
    TaskId id = kNoTask;
    std::span<const TaskId> dep_span(dep_buf);
    switch (op.kind) {
      case TaskKind::kTransfer:
        id = graph.AddTransfer(machine_of(op.src), machine_of(op.dst), op.bytes, dep_span,
                               op.seconds);
        break;
      case TaskKind::kLocalTransfer:
        id = graph.AddLocalTransfer(machine_of(op.src), op.bytes, dep_span, op.seconds);
        break;
      case TaskKind::kDelay:
        id = graph.AddDelay(op.seconds, dep_span);
        break;
      case TaskKind::kBarrier:
        id = graph.AddBarrier(dep_span);
        break;
      default:
        PX_CHECK(false) << "unsupported plan op kind";
    }
    ids.push_back(id);
  }

  out->done.clear();
  out->done.reserve(plan.done_refs.size());
  for (int32_t ref : plan.done_refs) {
    out->done.push_back(ids[static_cast<size_t>(ref)]);
  }
  out->all_done = plan.all_done_ref >= 0 ? ids[static_cast<size_t>(plan.all_done_ref)]
                                         : kNoTask;
}

size_t CollectiveScheduleCache::KeyHash::operator()(const Key& key) const {
  uint64_t hash = kFnvOffsetBasis;
  auto mix = [&hash](uint64_t value) {
    hash ^= value + 0x9e3779b97f4a7c15ull + (hash << 6) + (hash >> 2);
  };
  mix(key.kind);
  mix(static_cast<uint64_t>(key.a));
  mix(static_cast<uint64_t>(key.b));
  mix(static_cast<uint64_t>(key.bytes));
  mix(key.blocks_hash);
  mix(DoubleBits(key.overhead));
  return static_cast<size_t>(hash);
}

template <typename BuildFn>
const SchedulePlan& CollectiveScheduleCache::Lookup(Key key, std::span<const int64_t> blocks,
                                                    BuildFn&& build) {
  for (;;) {
    auto it = plans_.find(key);
    if (it == plans_.end()) {
      ++misses_;
      SchedulePlan plan = build();
      plan.key_blocks.assign(blocks.begin(), blocks.end());
      return plans_.emplace(key, std::move(plan)).first->second;
    }
    const std::vector<int64_t>& stored = it->second.key_blocks;
    if (std::equal(blocks.begin(), blocks.end(), stored.begin(), stored.end())) {
      ++hits_;
      return it->second;
    }
    // Fingerprint collision between distinct block vectors: probe the next hash slot.
    ++key.blocks_hash;
  }
}

const SchedulePlan& CollectiveScheduleCache::RingAllReduce(int num_participants,
                                                           int64_t bytes,
                                                           const CollectiveOptions& options) {
  Key key;
  key.kind = 1;
  key.a = num_participants;
  key.bytes = bytes;
  key.overhead = options.step_overhead;
  return Lookup(key, {}, [&] { return BuildRingAllReducePlan(num_participants, bytes, options); });
}

const SchedulePlan& CollectiveScheduleCache::RingAllGatherv(
    std::span<const int64_t> bytes_per_machine, const CollectiveOptions& options) {
  Key key;
  key.kind = 2;
  key.a = static_cast<int32_t>(bytes_per_machine.size());
  key.blocks_hash = Fnv64(bytes_per_machine);
  key.overhead = options.step_overhead;
  return Lookup(key, bytes_per_machine,
                [&] { return BuildRingAllGathervPlan(bytes_per_machine, options); });
}

const SchedulePlan& CollectiveScheduleCache::HierarchicalAllReduce(
    const RankLayout& layout, int64_t bytes, const CollectiveOptions& options) {
  Key key;
  key.kind = 3;
  key.a = layout.num_machines;
  key.b = layout.gpus_per_machine;
  key.bytes = bytes;
  key.overhead = options.step_overhead;
  return Lookup(key, {},
                [&] { return BuildHierarchicalAllReducePlan(layout, bytes, options); });
}

const SchedulePlan& CollectiveScheduleCache::RankRingAllGatherv(
    const RankLayout& layout, std::span<const int64_t> bytes_per_rank,
    const CollectiveOptions& options) {
  Key key;
  key.kind = 4;
  key.a = layout.num_machines;
  key.b = layout.gpus_per_machine;
  key.blocks_hash = Fnv64(bytes_per_rank);
  key.overhead = options.step_overhead;
  return Lookup(key, bytes_per_rank,
                [&] { return BuildRankRingAllGathervPlan(layout, bytes_per_rank, options); });
}

const SchedulePlan& CollectiveScheduleCache::TopologyAllReduce(
    const RankLayout& layout, int num_racks, int64_t bytes,
    const CollectiveOptions& options) {
  const int64_t racks_block[] = {num_racks};
  Key key;
  key.kind = 5;
  key.a = layout.num_machines;
  key.b = layout.gpus_per_machine;
  key.bytes = bytes;
  key.blocks_hash = Fnv64(racks_block);
  key.overhead = options.step_overhead;
  return Lookup(key, racks_block, [&] {
    return BuildTopologyAllReducePlan(layout, num_racks, bytes, options);
  });
}

const SchedulePlan& CollectiveScheduleCache::BroadcastAllGatherv(const RankLayout& layout,
                                                                 int64_t block_bytes,
                                                                 int64_t inflated_bytes) {
  const int64_t blocks[] = {block_bytes, inflated_bytes};
  Key key;
  key.kind = 6;
  key.a = layout.num_machines;
  key.b = layout.gpus_per_machine;
  key.blocks_hash = Fnv64(blocks);
  return Lookup(key, blocks, [&] {
    return BuildBroadcastAllGathervPlan(layout, block_bytes, inflated_bytes);
  });
}

CollectiveSchedule AddRingAllReduce(TaskGraph& graph, const std::vector<int>& machines,
                                    int64_t bytes, const std::vector<TaskId>& deps,
                                    const CollectiveOptions& options,
                                    CollectiveScheduleCache* cache) {
  const int n = static_cast<int>(machines.size());
  PX_CHECK_GT(n, 0);
  PX_CHECK_EQ(deps.size(), machines.size());
  CollectiveSchedule schedule;
  if (cache != nullptr) {
    const SchedulePlan& plan = cache->RingAllReduce(n, bytes, options);
    cache->Instantiate(plan, graph, machines, deps, &schedule);
  } else {
    SchedulePlan plan = BuildRingAllReducePlan(n, bytes, options);
    PlanScratch scratch;
    InstantiatePlan(plan, graph, machines, deps, &schedule, &scratch);
  }
  return schedule;
}

CollectiveSchedule AddRingAllGatherv(TaskGraph& graph, const std::vector<int>& machines,
                                     const std::vector<int64_t>& bytes_per_machine,
                                     const std::vector<TaskId>& deps,
                                     const CollectiveOptions& options,
                                     CollectiveScheduleCache* cache) {
  PX_CHECK_GT(machines.size(), 0u);
  PX_CHECK_EQ(deps.size(), machines.size());
  PX_CHECK_EQ(bytes_per_machine.size(), machines.size());
  CollectiveSchedule schedule;
  if (cache != nullptr) {
    const SchedulePlan& plan = cache->RingAllGatherv(bytes_per_machine, options);
    cache->Instantiate(plan, graph, machines, deps, &schedule);
  } else {
    SchedulePlan plan = BuildRingAllGathervPlan(bytes_per_machine, options);
    PlanScratch scratch;
    InstantiatePlan(plan, graph, machines, deps, &schedule, &scratch);
  }
  return schedule;
}

CollectiveSchedule AddHierarchicalAllReduce(TaskGraph& graph, const RankLayout& layout,
                                            int64_t bytes, const std::vector<TaskId>& deps,
                                            const CollectiveOptions& options,
                                            CollectiveScheduleCache* cache) {
  PX_CHECK_EQ(deps.size(), static_cast<size_t>(layout.num_ranks()));
  CollectiveSchedule schedule;
  if (cache != nullptr) {
    const SchedulePlan& plan = cache->HierarchicalAllReduce(layout, bytes, options);
    cache->Instantiate(plan, graph, {}, deps, &schedule);
  } else {
    SchedulePlan plan = BuildHierarchicalAllReducePlan(layout, bytes, options);
    PlanScratch scratch;
    InstantiatePlan(plan, graph, {}, deps, &schedule, &scratch);
  }
  return schedule;
}

CollectiveSchedule AddRankRingAllGatherv(TaskGraph& graph, const RankLayout& layout,
                                         const std::vector<int64_t>& bytes_per_rank,
                                         const std::vector<TaskId>& deps,
                                         const CollectiveOptions& options,
                                         CollectiveScheduleCache* cache) {
  PX_CHECK_EQ(deps.size(), static_cast<size_t>(layout.num_ranks()));
  PX_CHECK_EQ(bytes_per_rank.size(), static_cast<size_t>(layout.num_ranks()));
  CollectiveSchedule schedule;
  if (cache != nullptr) {
    const SchedulePlan& plan = cache->RankRingAllGatherv(layout, bytes_per_rank, options);
    cache->Instantiate(plan, graph, {}, deps, &schedule);
  } else {
    SchedulePlan plan = BuildRankRingAllGathervPlan(layout, bytes_per_rank, options);
    PlanScratch scratch;
    InstantiatePlan(plan, graph, {}, deps, &schedule, &scratch);
  }
  return schedule;
}

CollectiveSchedule AddTopologyAllReduce(TaskGraph& graph, const RankLayout& layout,
                                        int num_racks, int64_t bytes,
                                        const std::vector<TaskId>& deps,
                                        const CollectiveOptions& options,
                                        CollectiveScheduleCache* cache) {
  PX_CHECK_EQ(deps.size(), static_cast<size_t>(layout.num_ranks()));
  CollectiveSchedule schedule;
  if (cache != nullptr) {
    const SchedulePlan& plan = cache->TopologyAllReduce(layout, num_racks, bytes, options);
    cache->Instantiate(plan, graph, {}, deps, &schedule);
  } else {
    SchedulePlan plan = BuildTopologyAllReducePlan(layout, num_racks, bytes, options);
    PlanScratch scratch;
    InstantiatePlan(plan, graph, {}, deps, &schedule, &scratch);
  }
  return schedule;
}

CollectiveSchedule AddBroadcastAllGatherv(TaskGraph& graph, const RankLayout& layout,
                                          int64_t block_bytes, int64_t inflated_bytes,
                                          const std::vector<TaskId>& deps,
                                          CollectiveScheduleCache* cache) {
  PX_CHECK_EQ(deps.size(), static_cast<size_t>(layout.num_ranks()));
  CollectiveSchedule schedule;
  if (cache != nullptr) {
    const SchedulePlan& plan = cache->BroadcastAllGatherv(layout, block_bytes, inflated_bytes);
    cache->Instantiate(plan, graph, {}, deps, &schedule);
  } else {
    SchedulePlan plan = BuildBroadcastAllGathervPlan(layout, block_bytes, inflated_bytes);
    PlanScratch scratch;
    InstantiatePlan(plan, graph, {}, deps, &schedule, &scratch);
  }
  return schedule;
}

}  // namespace parallax
