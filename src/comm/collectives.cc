#include "src/comm/collectives.h"

#include <algorithm>

namespace parallax {
namespace {

// Splits `bytes` into n near-equal chunks (first bytes%n chunks get the extra byte).
std::vector<int64_t> SplitChunks(int64_t bytes, int n) {
  std::vector<int64_t> chunks(static_cast<size_t>(n), bytes / n);
  for (int i = 0; i < static_cast<int>(bytes % n); ++i) {
    ++chunks[static_cast<size_t>(i)];
  }
  return chunks;
}

// Positive modulus.
int Mod(int a, int n) { return ((a % n) + n) % n; }

// Wraps a transfer with the per-step overhead; returns the node marking chunk arrival.
TaskId WithOverhead(TaskGraph& graph, TaskId transfer, const CollectiveOptions& options) {
  if (options.step_overhead <= 0.0) {
    return transfer;
  }
  return graph.AddDelay(options.step_overhead, {transfer});
}

std::vector<TaskId> DepsOrEmpty(TaskId dep) {
  std::vector<TaskId> deps;
  if (dep != kNoTask) {
    deps.push_back(dep);
  }
  return deps;
}

}  // namespace

CollectiveSchedule AddRingAllReduce(TaskGraph& graph, const std::vector<int>& machines,
                                    int64_t bytes, const std::vector<TaskId>& deps,
                                    const CollectiveOptions& options) {
  const int n = static_cast<int>(machines.size());
  PX_CHECK_GT(n, 0);
  PX_CHECK_EQ(deps.size(), machines.size());
  CollectiveSchedule schedule;
  schedule.done.resize(machines.size());

  if (n == 1) {
    schedule.done[0] = graph.AddBarrier(DepsOrEmpty(deps[0]));
    schedule.all_done = schedule.done[0];
    return schedule;
  }

  std::vector<int64_t> chunks = SplitChunks(bytes, n);

  // arrivals[i] = node after which machine i has received *and reduced* the step's
  // chunk. Reduce-scatter: step s, machine i sends chunk (i-s) mod n to machine i+1.
  // The receiver folds its own contribution into the incoming chunk, so every arrival
  // also gates on the receiver's local-gradient dependency.
  std::vector<TaskId> prev_arrival(static_cast<size_t>(n), kNoTask);
  for (int s = 0; s <= n - 2; ++s) {
    std::vector<TaskId> arrival(static_cast<size_t>(n), kNoTask);
    for (int i = 0; i < n; ++i) {
      int chunk = Mod(i - s, n);
      std::vector<TaskId> send_deps;
      if (s == 0) {
        if (deps[static_cast<size_t>(i)] != kNoTask) {
          send_deps.push_back(deps[static_cast<size_t>(i)]);
        }
      } else {
        send_deps.push_back(prev_arrival[static_cast<size_t>(i)]);
      }
      int recv = Mod(i + 1, n);
      TaskId transfer =
          graph.AddTransfer(machines[static_cast<size_t>(i)],
                            machines[static_cast<size_t>(recv)],
                            chunks[static_cast<size_t>(chunk)],
                            std::span<const TaskId>(send_deps));
      TaskId arrived = WithOverhead(graph, transfer, options);
      if (deps[static_cast<size_t>(recv)] != kNoTask) {
        arrived = graph.AddBarrier({arrived, deps[static_cast<size_t>(recv)]});
      }
      arrival[static_cast<size_t>(recv)] = arrived;
    }
    prev_arrival = arrival;
  }

  // Allgather: step s, machine i sends chunk (i+1-s) mod n to machine i+1. Its first send
  // is gated on its final reduce-scatter arrival (the chunk it fully reduced).
  for (int s = 0; s <= n - 2; ++s) {
    std::vector<TaskId> arrival(static_cast<size_t>(n), kNoTask);
    for (int i = 0; i < n; ++i) {
      int chunk = Mod(i + 1 - s, n);
      std::vector<TaskId> send_deps = {prev_arrival[static_cast<size_t>(i)]};
      TaskId transfer =
          graph.AddTransfer(machines[static_cast<size_t>(i)],
                            machines[static_cast<size_t>(Mod(i + 1, n))],
                            chunks[static_cast<size_t>(chunk)],
                            std::span<const TaskId>(send_deps));
      arrival[static_cast<size_t>(Mod(i + 1, n))] = WithOverhead(graph, transfer, options);
    }
    prev_arrival = arrival;
  }

  for (int i = 0; i < n; ++i) {
    schedule.done[static_cast<size_t>(i)] =
        graph.AddBarrier({prev_arrival[static_cast<size_t>(i)]});
  }
  schedule.all_done = graph.AddBarrier(std::span<const TaskId>(schedule.done));
  return schedule;
}

CollectiveSchedule AddRingAllGatherv(TaskGraph& graph, const std::vector<int>& machines,
                                     const std::vector<int64_t>& bytes_per_machine,
                                     const std::vector<TaskId>& deps,
                                     const CollectiveOptions& options) {
  const int n = static_cast<int>(machines.size());
  PX_CHECK_GT(n, 0);
  PX_CHECK_EQ(deps.size(), machines.size());
  PX_CHECK_EQ(bytes_per_machine.size(), machines.size());
  CollectiveSchedule schedule;
  schedule.done.resize(machines.size());

  if (n == 1) {
    schedule.done[0] = graph.AddBarrier(DepsOrEmpty(deps[0]));
    schedule.all_done = schedule.done[0];
    return schedule;
  }

  // Step s: machine i forwards block (i-s) mod n to machine i+1.
  std::vector<TaskId> prev_arrival(static_cast<size_t>(n), kNoTask);
  for (int s = 0; s <= n - 2; ++s) {
    std::vector<TaskId> arrival(static_cast<size_t>(n), kNoTask);
    for (int i = 0; i < n; ++i) {
      int block = Mod(i - s, n);
      std::vector<TaskId> send_deps;
      if (s == 0) {
        if (deps[static_cast<size_t>(i)] != kNoTask) {
          send_deps.push_back(deps[static_cast<size_t>(i)]);
        }
      } else {
        send_deps.push_back(prev_arrival[static_cast<size_t>(i)]);
      }
      TaskId transfer =
          graph.AddTransfer(machines[static_cast<size_t>(i)],
                            machines[static_cast<size_t>(Mod(i + 1, n))],
                            bytes_per_machine[static_cast<size_t>(block)],
                            std::span<const TaskId>(send_deps));
      arrival[static_cast<size_t>(Mod(i + 1, n))] = WithOverhead(graph, transfer, options);
    }
    prev_arrival = arrival;
  }

  for (int i = 0; i < n; ++i) {
    schedule.done[static_cast<size_t>(i)] =
        graph.AddBarrier({prev_arrival[static_cast<size_t>(i)]});
  }
  schedule.all_done = graph.AddBarrier(std::span<const TaskId>(schedule.done));
  return schedule;
}

CollectiveSchedule AddHierarchicalAllReduce(TaskGraph& graph, const RankLayout& layout,
                                            int64_t bytes, const std::vector<TaskId>& deps,
                                            const CollectiveOptions& options) {
  const int num_ranks = layout.num_ranks();
  PX_CHECK_EQ(deps.size(), static_cast<size_t>(num_ranks));
  CollectiveSchedule schedule;
  schedule.done.resize(static_cast<size_t>(num_ranks));

  // Phase 1: intra-machine reduce onto each machine's lead GPU, over PCIe.
  std::vector<TaskId> machine_ready(static_cast<size_t>(layout.num_machines), kNoTask);
  for (int m = 0; m < layout.num_machines; ++m) {
    std::vector<TaskId> local_deps;
    for (int g = 0; g < layout.gpus_per_machine; ++g) {
      TaskId dep = deps[static_cast<size_t>(layout.RankOf(m, g))];
      if (dep != kNoTask) {
        local_deps.push_back(dep);
      }
    }
    if (layout.gpus_per_machine > 1) {
      machine_ready[static_cast<size_t>(m)] =
          graph.AddLocalTransfer(m, bytes, std::span<const TaskId>(local_deps));
    } else {
      machine_ready[static_cast<size_t>(m)] =
          graph.AddBarrier(std::span<const TaskId>(local_deps));
    }
  }

  // Phase 2: ring across machines.
  std::vector<TaskId> ring_done(static_cast<size_t>(layout.num_machines), kNoTask);
  if (layout.num_machines > 1) {
    std::vector<int> machines(static_cast<size_t>(layout.num_machines));
    for (int m = 0; m < layout.num_machines; ++m) {
      machines[static_cast<size_t>(m)] = m;
    }
    CollectiveSchedule ring = AddRingAllReduce(graph, machines, bytes, machine_ready, options);
    ring_done = ring.done;
  } else {
    ring_done = machine_ready;
  }

  // Phase 3: intra-machine broadcast back to all GPUs.
  for (int m = 0; m < layout.num_machines; ++m) {
    TaskId broadcast = ring_done[static_cast<size_t>(m)];
    if (layout.gpus_per_machine > 1) {
      broadcast = graph.AddLocalTransfer(m, bytes, {ring_done[static_cast<size_t>(m)]});
    }
    for (int g = 0; g < layout.gpus_per_machine; ++g) {
      schedule.done[static_cast<size_t>(layout.RankOf(m, g))] = broadcast;
    }
  }
  schedule.all_done = graph.AddBarrier(std::span<const TaskId>(schedule.done));
  return schedule;
}

CollectiveSchedule AddRankRingAllGatherv(TaskGraph& graph, const RankLayout& layout,
                                         const std::vector<int64_t>& bytes_per_rank,
                                         const std::vector<TaskId>& deps,
                                         const CollectiveOptions& options) {
  const int r_count = layout.num_ranks();
  PX_CHECK_EQ(deps.size(), static_cast<size_t>(r_count));
  PX_CHECK_EQ(bytes_per_rank.size(), static_cast<size_t>(r_count));
  CollectiveSchedule schedule;
  schedule.done.resize(static_cast<size_t>(r_count));

  if (r_count == 1) {
    schedule.done[0] = graph.AddBarrier(DepsOrEmpty(deps[0]));
    schedule.all_done = schedule.done[0];
    return schedule;
  }

  std::vector<TaskId> prev_arrival(static_cast<size_t>(r_count), kNoTask);
  for (int s = 0; s <= r_count - 2; ++s) {
    std::vector<TaskId> arrival(static_cast<size_t>(r_count), kNoTask);
    for (int r = 0; r < r_count; ++r) {
      int block = Mod(r - s, r_count);
      int next = Mod(r + 1, r_count);
      std::vector<TaskId> send_deps;
      if (s == 0) {
        if (deps[static_cast<size_t>(r)] != kNoTask) {
          send_deps.push_back(deps[static_cast<size_t>(r)]);
        }
      } else {
        send_deps.push_back(prev_arrival[static_cast<size_t>(r)]);
      }
      int src_machine = layout.MachineOfRank(r);
      int dst_machine = layout.MachineOfRank(next);
      TaskId transfer;
      if (src_machine == dst_machine) {
        transfer = graph.AddLocalTransfer(src_machine, bytes_per_rank[static_cast<size_t>(block)],
                                          std::span<const TaskId>(send_deps));
      } else {
        transfer = graph.AddTransfer(src_machine, dst_machine,
                                     bytes_per_rank[static_cast<size_t>(block)],
                                     std::span<const TaskId>(send_deps));
      }
      arrival[static_cast<size_t>(next)] = WithOverhead(graph, transfer, options);
    }
    prev_arrival = arrival;
  }

  for (int r = 0; r < r_count; ++r) {
    schedule.done[static_cast<size_t>(r)] =
        graph.AddBarrier({prev_arrival[static_cast<size_t>(r)]});
  }
  schedule.all_done = graph.AddBarrier(std::span<const TaskId>(schedule.done));
  return schedule;
}

}  // namespace parallax
