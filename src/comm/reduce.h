// Numeric semantics of the collectives: what values every participant ends up holding.
//
// AllReduce over dense gradients computes an element-wise sum in deterministic
// participant order (so distributed runs compare bit-for-bit against the single-device
// reference). AllGatherv over sparse gradients concatenates the participants' slices —
// exactly the aggregation semantics the paper attributes to each primitive (section 2.1).
#ifndef PARALLAX_SRC_COMM_REDUCE_H_
#define PARALLAX_SRC_COMM_REDUCE_H_

#include <vector>

#include "src/tensor/indexed_slices.h"
#include "src/tensor/tensor.h"

namespace parallax {

// Method for combining per-worker gradients into the applied gradient. Average divides by
// the participant count; Sum applies the raw sum (ParallaxConfig exposes the choice per
// variable kind, mirroring the paper's aggregation-method configuration in section 4.1).
enum class AggregationMethod {
  kSum,
  kAverage,
};

// Sum of dense tensors in index order; result shape equals the inputs'.
Tensor AllReduceSum(const std::vector<Tensor>& contributions);

// Applies the aggregation method: sum, or sum scaled by 1/contributions.
Tensor AllReduceAggregate(const std::vector<Tensor>& contributions, AggregationMethod method);

// Concatenation of sparse contributions in index order (AllGatherv semantics).
IndexedSlices AllGathervConcat(const std::vector<IndexedSlices>& contributions);

// Concatenation followed by the aggregation method (scaling values for kAverage).
IndexedSlices AllGathervAggregate(const std::vector<IndexedSlices>& contributions,
                                  AggregationMethod method);

}  // namespace parallax

#endif  // PARALLAX_SRC_COMM_REDUCE_H_
