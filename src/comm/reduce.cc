#include "src/comm/reduce.h"

#include "src/base/logging.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {

Tensor AllReduceSum(const std::vector<Tensor>& contributions) {
  PX_CHECK(!contributions.empty());
  Tensor result = contributions.front().Clone();
  for (size_t i = 1; i < contributions.size(); ++i) {
    AddInPlace(result, contributions[i]);
  }
  return result;
}

Tensor AllReduceAggregate(const std::vector<Tensor>& contributions, AggregationMethod method) {
  Tensor result = AllReduceSum(contributions);
  if (method == AggregationMethod::kAverage) {
    ScaleInPlace(result, 1.0f / static_cast<float>(contributions.size()));
  }
  return result;
}

IndexedSlices AllGathervConcat(const std::vector<IndexedSlices>& contributions) {
  return IndexedSlices::Concat(contributions);
}

IndexedSlices AllGathervAggregate(const std::vector<IndexedSlices>& contributions,
                                  AggregationMethod method) {
  IndexedSlices result = IndexedSlices::Concat(contributions);
  if (method == AggregationMethod::kAverage) {
    result.Scale(1.0f / static_cast<float>(contributions.size()));
  }
  return result;
}

}  // namespace parallax
