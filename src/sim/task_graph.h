// Dependency-driven virtual-time execution of one training iteration.
//
// Engines (PS / AR / hybrid) describe an iteration as a DAG of resource-consuming tasks:
// GPU compute chunks, CPU work items, network transfers, local (PCIe) transfers, and pure
// delays. Execute() schedules tasks against a Cluster in deterministic order — tasks are
// processed by (ready_time, insertion id) — and returns the makespan. Overlap of
// communication with computation, incast queueing, ring pipelining, and CPU-side
// aggregation parallelism all emerge from the DAG structure plus the FIFO resource
// queues; nothing is closed-form.
//
// A TaskGraph is an arena: task records, the child-edge pool, the ready-heap, and the
// per-run state (dependency counters, ready/finish times) are all owned by the graph and
// reused. Reset() drops the tasks but keeps every buffer's capacity, and Execute() never
// mutates the graph structure, so the steady-state pattern of the partition search —
// Reset, rebuild the same-shaped iteration DAG, Execute, thousands of times — performs
// zero heap allocations after the first iteration (see tests/sim_steady_state_test.cc).
#ifndef PARALLAX_SRC_SIM_TASK_GRAPH_H_
#define PARALLAX_SRC_SIM_TASK_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cluster.h"

namespace parallax {

using TaskId = int32_t;
inline constexpr TaskId kNoTask = -1;

enum class TaskKind : uint8_t {
  kGpuCompute,     // occupies machine.gpus[gpu]
  kCpuWork,        // occupies one core of machine.cores
  kTransfer,       // src machine NIC out + dst machine NIC in (store-and-forward)
  kLocalTransfer,  // machine PCIe out + in (GPU<->host or GPU<->GPU staging)
  kDelay,          // fixed latency, no resource
  kBarrier,        // zero-cost join node
};

struct TaskResult {
  SimTime makespan = 0.0;       // finish of the last task, relative to start time
  SimTime finish_time = 0.0;    // absolute virtual finish time
};

class TaskGraph {
 public:
  TaskId AddGpuCompute(int machine, int gpu, double seconds, std::span<const TaskId> deps);
  TaskId AddCpuWork(int machine, double seconds, std::span<const TaskId> deps);
  // post_delay_seconds is a fixed latency appended after the transfer completes (e.g. a
  // collective's per-step launch overhead) — it delays dependents without occupying the
  // links, replacing a separate kDelay task per transfer in ring schedules.
  TaskId AddTransfer(int src_machine, int dst_machine, int64_t bytes,
                     std::span<const TaskId> deps, double post_delay_seconds = 0.0);
  TaskId AddLocalTransfer(int machine, int64_t bytes, std::span<const TaskId> deps,
                          double post_delay_seconds = 0.0);
  TaskId AddDelay(double seconds, std::span<const TaskId> deps);
  TaskId AddBarrier(std::span<const TaskId> deps);

  // Convenience overloads for brace-list dependencies.
  TaskId AddGpuCompute(int machine, int gpu, double seconds,
                       std::initializer_list<TaskId> deps = {}) {
    return AddGpuCompute(machine, gpu, seconds, std::span<const TaskId>(deps));
  }
  TaskId AddCpuWork(int machine, double seconds, std::initializer_list<TaskId> deps = {}) {
    return AddCpuWork(machine, seconds, std::span<const TaskId>(deps));
  }
  TaskId AddTransfer(int src_machine, int dst_machine, int64_t bytes,
                     std::initializer_list<TaskId> deps = {}) {
    return AddTransfer(src_machine, dst_machine, bytes, std::span<const TaskId>(deps));
  }
  TaskId AddLocalTransfer(int machine, int64_t bytes, std::initializer_list<TaskId> deps = {}) {
    return AddLocalTransfer(machine, bytes, std::span<const TaskId>(deps));
  }
  TaskId AddDelay(double seconds, std::initializer_list<TaskId> deps = {}) {
    return AddDelay(seconds, std::span<const TaskId>(deps));
  }
  TaskId AddBarrier(std::initializer_list<TaskId> deps = {}) {
    return AddBarrier(std::span<const TaskId>(deps));
  }

  size_t num_tasks() const { return tasks_.size(); }

  // Drops every task but keeps the capacity of all internal storage, so rebuilding a
  // same-shaped DAG allocates nothing.
  void Reset();

  // Runs the DAG against the cluster starting at `start_time`. Every task must be
  // reachable (no dependency cycles by construction: deps must precede the task).
  // The graph is not consumed: Execute may be called repeatedly, against the same or
  // different clusters, and returns identical makespans for identical cluster state.
  TaskResult Execute(Cluster& cluster, SimTime start_time = 0.0);

  // Valid after Execute(): absolute finish time of a task in the most recent run.
  // Adding tasks or Reset() invalidates finish times until the next Execute().
  SimTime FinishTime(TaskId id) const;

  // Order-sensitive hash of the full graph structure (task kinds, resources, byte and
  // time payloads, dependency lists). Two graphs built by identical Add* sequences have
  // equal fingerprints; used to assert cached collective schedules replay byte-for-byte
  // identically to freshly built ones.
  uint64_t StructuralFingerprint() const;

 private:
  struct Task {
    TaskKind kind;
    int machine = 0;
    int gpu = 0;
    int dst_machine = 0;
    int64_t bytes = 0;
    double seconds = 0.0;
    int32_t num_deps = 0;
    int32_t first_child = -1;  // head of this task's child list in child_edges_
    int32_t last_child = -1;   // tail, so children stay in dependency-add order
  };
  // Intrusive singly-linked child lists over one pooled edge vector: appending an edge
  // never allocates per-task storage, which is what made the seed's per-task
  // std::vector<TaskId> children the dominant cost of graph construction.
  struct ChildEdge {
    TaskId child = kNoTask;
    int32_t next = -1;
  };

  TaskId AddTask(Task task, std::span<const TaskId> deps);

  // Thread-ownership contract: a TaskGraph (like the SimulationArena that usually owns
  // it) belongs to exactly one simulating thread — Add*/Reset/Execute all mutate the
  // members below without locking. Share nothing; one graph per thread.
  std::vector<Task> tasks_;             // owned by the simulating thread; Reset keeps capacity
  std::vector<ChildEdge> child_edges_;  // owned by the simulating thread; Reset keeps capacity

  // Per-run working state, sized on demand and reused across Execute() calls — mutated
  // by every Execute, so even a structurally frozen graph is single-threaded.
  std::vector<int32_t> deps_remaining_;               // overwritten per Execute
  std::vector<SimTime> ready_time_;                   // overwritten per Execute
  std::vector<SimTime> finish_time_;                  // valid after the most recent Execute
  std::vector<std::pair<SimTime, TaskId>> ready_heap_;  // overwritten per Execute
  bool executed_ = false;                             // guards FinishTime reads
};

}  // namespace parallax

#endif  // PARALLAX_SRC_SIM_TASK_GRAPH_H_
