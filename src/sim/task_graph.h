// Dependency-driven virtual-time execution of one training iteration.
//
// Engines (PS / AR / hybrid) describe an iteration as a DAG of resource-consuming tasks:
// GPU compute chunks, CPU work items, network transfers, local (PCIe) transfers, and pure
// delays. Execute() schedules tasks against a Cluster in deterministic order — tasks are
// processed by (ready_time, insertion id) — and returns the makespan. Overlap of
// communication with computation, incast queueing, ring pipelining, and CPU-side
// aggregation parallelism all emerge from the DAG structure plus the FIFO resource
// queues; nothing is closed-form.
#ifndef PARALLAX_SRC_SIM_TASK_GRAPH_H_
#define PARALLAX_SRC_SIM_TASK_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/sim/cluster.h"

namespace parallax {

using TaskId = int32_t;
inline constexpr TaskId kNoTask = -1;

enum class TaskKind : uint8_t {
  kGpuCompute,     // occupies machine.gpus[gpu]
  kCpuWork,        // occupies one core of machine.cores
  kTransfer,       // src machine NIC out + dst machine NIC in (cut-through)
  kLocalTransfer,  // machine PCIe out + in (GPU<->host or GPU<->GPU staging)
  kDelay,          // fixed latency, no resource
  kBarrier,        // zero-cost join node
};

struct TaskResult {
  SimTime makespan = 0.0;       // finish of the last task, relative to start time
  SimTime finish_time = 0.0;    // absolute virtual finish time
};

class TaskGraph {
 public:
  TaskId AddGpuCompute(int machine, int gpu, double seconds, std::span<const TaskId> deps);
  TaskId AddCpuWork(int machine, double seconds, std::span<const TaskId> deps);
  TaskId AddTransfer(int src_machine, int dst_machine, int64_t bytes,
                     std::span<const TaskId> deps);
  TaskId AddLocalTransfer(int machine, int64_t bytes, std::span<const TaskId> deps);
  TaskId AddDelay(double seconds, std::span<const TaskId> deps);
  TaskId AddBarrier(std::span<const TaskId> deps);

  // Convenience overloads for brace-list dependencies.
  TaskId AddGpuCompute(int machine, int gpu, double seconds,
                       std::initializer_list<TaskId> deps = {}) {
    return AddGpuCompute(machine, gpu, seconds, std::span<const TaskId>(deps));
  }
  TaskId AddCpuWork(int machine, double seconds, std::initializer_list<TaskId> deps = {}) {
    return AddCpuWork(machine, seconds, std::span<const TaskId>(deps));
  }
  TaskId AddTransfer(int src_machine, int dst_machine, int64_t bytes,
                     std::initializer_list<TaskId> deps = {}) {
    return AddTransfer(src_machine, dst_machine, bytes, std::span<const TaskId>(deps));
  }
  TaskId AddLocalTransfer(int machine, int64_t bytes, std::initializer_list<TaskId> deps = {}) {
    return AddLocalTransfer(machine, bytes, std::span<const TaskId>(deps));
  }
  TaskId AddDelay(double seconds, std::initializer_list<TaskId> deps = {}) {
    return AddDelay(seconds, std::span<const TaskId>(deps));
  }
  TaskId AddBarrier(std::initializer_list<TaskId> deps = {}) {
    return AddBarrier(std::span<const TaskId>(deps));
  }

  size_t num_tasks() const { return tasks_.size(); }

  // Runs the DAG against the cluster starting at `start_time`. Every task must be
  // reachable (no dependency cycles by construction: deps must precede the task).
  // May be called once per graph instance.
  TaskResult Execute(Cluster& cluster, SimTime start_time = 0.0);

  // Valid after Execute(): absolute finish time of a task.
  SimTime FinishTime(TaskId id) const;

 private:
  struct Task {
    TaskKind kind;
    int machine = 0;
    int gpu = 0;
    int dst_machine = 0;
    int64_t bytes = 0;
    double seconds = 0.0;
    int32_t deps_remaining = 0;
    SimTime ready_time = 0.0;
    SimTime finish_time = 0.0;
    std::vector<TaskId> children;
  };

  TaskId AddTask(Task task, std::span<const TaskId> deps);

  std::vector<Task> tasks_;
  bool executed_ = false;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_SIM_TASK_GRAPH_H_
