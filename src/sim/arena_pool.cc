#include "src/sim/arena_pool.h"

#include <utility>

#include "src/core/iteration_sim.h"

namespace parallax {

ArenaPool::ArenaPool(size_t max_pooled) : max_pooled_(max_pooled) {}

ArenaPool::~ArenaPool() = default;

ArenaPool::Lease::Lease(ArenaPool* pool, std::unique_ptr<SimulationArena> arena)
    : pool_(pool), arena_(std::move(arena)) {}

ArenaPool::Lease::Lease(Lease&& other) noexcept = default;

ArenaPool::Lease& ArenaPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && arena_ != nullptr) {
      pool_->Release(std::move(arena_));
    }
    pool_ = other.pool_;
    arena_ = std::move(other.arena_);
    other.pool_ = nullptr;
  }
  return *this;
}

ArenaPool::Lease::~Lease() {
  if (pool_ != nullptr && arena_ != nullptr) {
    pool_->Release(std::move(arena_));
  }
}

ArenaPool::Lease ArenaPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<SimulationArena> arena = std::move(free_.back());
      free_.pop_back();
      return Lease(this, std::move(arena));
    }
    ++total_;
  }
  return Lease(this, std::make_unique<SimulationArena>());
}

void ArenaPool::Release(std::unique_ptr<SimulationArena> arena) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() < max_pooled_) {
    free_.push_back(std::move(arena));
  } else {
    --total_;  // dropped instead of pooled
  }
}

size_t ArenaPool::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

size_t ArenaPool::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace parallax
