#include "src/sim/cluster.h"

namespace parallax {

Cluster::Cluster(const ClusterSpec& spec) : spec_(spec) {
  PX_CHECK_GT(spec.num_machines, 0);
  PX_CHECK_GT(spec.gpus_per_machine, 0);
  machines_.reserve(static_cast<size_t>(spec.num_machines));
  for (int m = 0; m < spec.num_machines; ++m) {
    machines_.emplace_back(spec);
  }
}

int64_t Cluster::NicBytes(int m) const {
  const MachineSim& machine_sim = machine(m);
  return machine_sim.nic_in.total_bytes() + machine_sim.nic_out.total_bytes();
}

void Cluster::ResetByteAccounting() {
  for (MachineSim& m : machines_) {
    m.nic_in.ResetAccounting();
    m.nic_out.ResetAccounting();
    m.pcie_in.ResetAccounting();
    m.pcie_out.ResetAccounting();
  }
}

}  // namespace parallax
