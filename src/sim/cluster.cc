#include "src/sim/cluster.h"

#include <algorithm>

namespace parallax {

LinkQueue::LinkQueue(double bandwidth_bytes_per_sec, double latency_sec)
    : bandwidth_(bandwidth_bytes_per_sec), latency_(latency_sec) {
  PX_CHECK_GT(bandwidth_, 0.0);
  PX_CHECK_GE(latency_, 0.0);
}

CorePool::CorePool(int num_cores) {
  PX_CHECK_GT(num_cores, 0);
  cores_.reserve(static_cast<size_t>(num_cores));
  for (int i = 0; i < num_cores; ++i) {
    cores_.emplace_back(0.0, i);
  }
  std::make_heap(cores_.begin(), cores_.end(), std::greater<>{});
}

ClusterSpec ClusterSpec::SingleGpuMachines(int n) {
  ClusterSpec spec;
  spec.num_machines = n;
  spec.gpus_per_machine = 1;
  return spec;
}

MachineSim::MachineSim(const ClusterSpec& spec)
    : nic_in(spec.nic_bandwidth, spec.nic_latency),
      nic_out(spec.nic_bandwidth, spec.nic_latency),
      pcie_in(spec.pcie_bandwidth, spec.pcie_latency),
      pcie_out(spec.pcie_bandwidth, spec.pcie_latency),
      cores(spec.cores_per_machine),
      gpus(static_cast<size_t>(spec.gpus_per_machine)) {}

Cluster::Cluster(const ClusterSpec& spec) : spec_(spec), topology_(spec) {
  PX_CHECK_GT(spec.num_machines, 0);
  PX_CHECK_GT(spec.gpus_per_machine, 0);
  machines_.reserve(static_cast<size_t>(spec.num_machines));
  for (int m = 0; m < spec.num_machines; ++m) {
    machines_.emplace_back(spec);
  }
  if (!topology_.flat()) {
    rack_of_.reserve(static_cast<size_t>(spec.num_machines));
    for (int m = 0; m < spec.num_machines; ++m) {
      rack_of_.push_back(topology_.RackOfMachine(m));
    }
    spine_up_.reserve(static_cast<size_t>(topology_.num_racks()));
    spine_down_.reserve(static_cast<size_t>(topology_.num_racks()));
    for (int r = 0; r < topology_.num_racks(); ++r) {
      spine_up_.emplace_back(spec.topology.spine_bandwidth, spec.topology.spine_latency);
      spine_down_.emplace_back(spec.topology.spine_bandwidth, spec.topology.spine_latency);
    }
  }
}

int64_t Cluster::NicBytes(int m) const {
  const MachineSim& machine_sim = machine(m);
  return machine_sim.nic_in.total_bytes() + machine_sim.nic_out.total_bytes();
}

int64_t Cluster::SpineBytes(int r) const {
  if (spine_up_.empty()) {
    return 0;
  }
  PX_CHECK_GE(r, 0);
  PX_CHECK_LT(r, static_cast<int>(spine_up_.size()));
  return spine_up_[static_cast<size_t>(r)].total_bytes() +
         spine_down_[static_cast<size_t>(r)].total_bytes();
}

void Cluster::ResetByteAccounting() {
  for (MachineSim& m : machines_) {
    m.nic_in.ResetAccounting();
    m.nic_out.ResetAccounting();
    m.pcie_in.ResetAccounting();
    m.pcie_out.ResetAccounting();
  }
  for (LinkQueue& link : spine_up_) {
    link.ResetAccounting();
  }
  for (LinkQueue& link : spine_down_) {
    link.ResetAccounting();
  }
}

}  // namespace parallax
