// A shared pool of SimulationArenas behind RAII leases.
//
// SimulationArena (src/core/iteration_sim.h) is deliberately single-threaded: one
// simulating thread owns the task storage, schedule cache, and scratch tables at a
// time. Anything that simulates concurrently therefore needs one arena per worker.
// This pool is the one mechanism that hands them out — extracted from PlannerService
// so standalone searches (GraphRunner's parallel candidate batches,
// src/core/parallel_measure.h) and the service share it:
//
//   - Acquire() never blocks on a busy arena: the pool grows on demand, so N
//     concurrent leases simply mean N arenas exist.
//   - Release (the Lease destructor) retains up to `max_pooled` arenas for reuse;
//     the excess is destroyed. Reused arenas keep their warm task storage and
//     collective-schedule caches, so steady-state acquire/simulate/release cycles
//     allocate nothing (tests/parallel_search_test.cc).
//
// The pool must outlive every lease. Leases are move-only; the arena pointer stays
// stable for the lease's lifetime.
#ifndef PARALLAX_SRC_SIM_ARENA_POOL_H_
#define PARALLAX_SRC_SIM_ARENA_POOL_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace parallax {

struct SimulationArena;  // src/core/iteration_sim.h; held opaquely here

class ArenaPool {
 public:
  explicit ArenaPool(size_t max_pooled = 16);
  ~ArenaPool();

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    SimulationArena* get() const { return arena_.get(); }

   private:
    friend class ArenaPool;
    Lease(ArenaPool* pool, std::unique_ptr<SimulationArena> arena);

    ArenaPool* pool_ = nullptr;
    std::unique_ptr<SimulationArena> arena_;
  };

  // Contention-free checkout: reuses a pooled arena or grows the pool. Never blocks
  // on a busy arena.
  Lease Acquire();

  // Arenas sitting in the free pool / ever-created-and-still-live (pooled + leased).
  size_t pooled() const;
  size_t total() const;

 private:
  void Release(std::unique_ptr<SimulationArena> arena);

  const size_t max_pooled_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SimulationArena>> free_;  // guarded by mu_
  size_t total_ = 0;                                    // guarded by mu_
};

}  // namespace parallax

#endif  // PARALLAX_SRC_SIM_ARENA_POOL_H_
