// Deterministic cluster model: machines with full-duplex NICs, PCIe-class intra-machine
// links, a CPU core pool, and GPU compute devices.
//
// This is the substitute for the paper's physical testbed (8 machines x 6 TITAN Xp,
// 100 Gbps InfiniBand). Resources are modeled as queueing servers in *virtual time*:
//  - LinkQueue: FIFO byte server. A transfer occupies the sender's out-link and the
//    receiver's in-link (store-and-forward), serializing with other traffic on either
//    link. Many-to-one traffic therefore queues at the receiver's in-link, which is
//    exactly the PS incast asymmetry the paper analyzes in section 3.1.
//  - CorePool: k-server queue; CPU work items (gradient aggregation, update ops, request
//    handling) occupy one core each, so partition-level parallelism and core contention
//    emerge naturally (section 3.2).
//  - GpuDevice: serialized compute device for forward/backward chunks.
//
// All scheduling is deterministic given the order of Schedule() calls; the TaskGraph
// executor (task_graph.h) fixes that order by (ready_time, insertion id).
//
// The per-event schedulers (LinkQueue::ScheduleSerialization, GpuDevice::Schedule,
// CorePool::Schedule, ScheduleStoreAndForward) stay inline in this header on purpose:
// they run once per task inside Execute's event loop — tens of thousands of calls per
// simulated iteration, thousands of iterations per partition search — and out-of-lining
// them costs a measurable fraction of the loop (docs/perf.md). Everything cold
// (constructors, validation, factories, accounting) lives in cluster.cc.
#ifndef PARALLAX_SRC_SIM_CLUSTER_H_
#define PARALLAX_SRC_SIM_CLUSTER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/base/logging.h"

namespace parallax {

using SimTime = double;  // seconds of virtual time

// FIFO byte server with fixed bandwidth and propagation latency.
class LinkQueue {
 public:
  LinkQueue(double bandwidth_bytes_per_sec, double latency_sec);

  // Returns the serialization-complete time for a transfer that becomes ready at `ready`.
  // (Propagation latency is added by the caller once per hop, not per link end.)
  SimTime ScheduleSerialization(SimTime ready, int64_t bytes) {
    SimTime start = ready > busy_until_ ? ready : busy_until_;
    busy_until_ = start + static_cast<double>(bytes) / bandwidth_;
    total_bytes_ += bytes;
    return busy_until_;
  }

  // Earliest time the link is free at or after `ready`.
  SimTime FreeAt(SimTime ready) const { return ready > busy_until_ ? ready : busy_until_; }

  double latency() const { return latency_; }
  double bandwidth() const { return bandwidth_; }
  int64_t total_bytes() const { return total_bytes_; }
  SimTime busy_until() const { return busy_until_; }

  void ResetAccounting() { total_bytes_ = 0; }

 private:
  double bandwidth_;
  double latency_;
  SimTime busy_until_ = 0.0;
  int64_t total_bytes_ = 0;
};

// One store-and-forward hop: the payload serializes through the sender's out-link, then
// through the receiver's in-link, each a FIFO byte queue; the two queues are decoupled
// (no mutual reservation), so many-to-many traffic has no artificial convoy stalls while
// incast still queues honestly at the receiver. One propagation latency per hop. This is
// the single transfer-time rule behind both the NIC and PCIe paths of the task-graph
// executor and therefore behind every collective schedule in comm/collectives.cc.
inline SimTime ScheduleStoreAndForward(LinkQueue& out, LinkQueue& in, SimTime ready,
                                       int64_t bytes) {
  SimTime out_done = out.ScheduleSerialization(ready, bytes);
  SimTime in_done = in.ScheduleSerialization(out_done, bytes);
  return in_done + out.latency();
}

// k-server queue for CPU work. Each work item runs on one core.
class CorePool {
 public:
  explicit CorePool(int num_cores);

  // Earliest-free core, lowest index among ties. The min-heap of (free time, core
  // index) pairs picks exactly the core the seed's linear scan picked — lexicographic
  // minimum — in O(log k) instead of O(k), which matters with thousands of CPU work
  // items per simulated iteration on 36-core machines. The scheduled core goes straight
  // back with its new free time, so one sift-down replaces a pop/push pair.
  SimTime Schedule(SimTime ready, double duration) {
    std::pair<SimTime, int> slot = cores_.front();
    SimTime start = ready > slot.first ? ready : slot.first;
    slot.first = start + duration;
    total_busy_ += duration;
    const size_t n = cores_.size();
    size_t i = 0;
    for (;;) {
      size_t left = 2 * i + 1;
      if (left >= n) {
        break;
      }
      size_t smallest = left;
      size_t right = left + 1;
      if (right < n && cores_[right] < cores_[left]) {
        smallest = right;
      }
      if (cores_[smallest] >= slot) {
        break;
      }
      cores_[i] = cores_[smallest];
      i = smallest;
    }
    cores_[i] = slot;
    return slot.first;
  }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  double total_busy() const { return total_busy_; }

 private:
  std::vector<std::pair<SimTime, int>> cores_;  // (free at, core index)
  double total_busy_ = 0.0;
};

// Serialized compute device.
class GpuDevice {
 public:
  SimTime Schedule(SimTime ready, double duration) {
    SimTime start = ready > busy_until_ ? ready : busy_until_;
    busy_until_ = start + duration;
    total_busy_ += duration;
    return busy_until_;
  }

  SimTime busy_until() const { return busy_until_; }
  double total_busy() const { return total_busy_; }

 private:
  SimTime busy_until_ = 0.0;
  double total_busy_ = 0.0;
};

// Rack level of the hierarchy: machines are grouped into `num_racks` equal racks, and
// rack-to-rack traffic rides a per-rack spine uplink/downlink pair — typically
// oversubscribed (spine_bandwidth < nic_bandwidth), which is exactly the asymmetry a
// topology-aware collective or placement search exploits. num_racks <= 1 is the flat
// cluster: no spine links exist and every transfer takes the two-level {nic, pcie}
// path unchanged, so a flat TopologySpec is a verified degenerate tree.
struct TopologySpec {
  int num_racks = 1;
  double spine_bandwidth = 6.25e9;     // 2:1 oversubscription vs the paper's NIC
  double spine_latency = 10e-6;        // two extra switch hops

  bool flat() const { return num_racks <= 1; }
};

// Static description of the simulated cluster. Defaults model the paper's testbed.
struct ClusterSpec {
  int num_machines = 8;
  int gpus_per_machine = 6;
  int cores_per_machine = 36;          // 2x 18-core Xeon E5-2695
  double nic_bandwidth = 12.5e9;       // 100 Gbps InfiniBand, bytes/sec per direction
  double nic_latency = 5e-6;           // 5 us
  double pcie_bandwidth = 12.0e9;      // intra-machine GPU<->host, bytes/sec
  double pcie_latency = 2e-6;          // 2 us
  TopologySpec topology;               // flat by default (one rack, no spine)

  int total_gpus() const { return num_machines * gpus_per_machine; }

  static ClusterSpec Paper() { return ClusterSpec{}; }
  // n machines with one GPU each: the 1-worker-per-machine setting of the paper's
  // section 3.1 analysis (used to validate Table 3's closed forms).
  static ClusterSpec SingleGpuMachines(int n);
};

// Read-only view of the level structure of a ClusterSpec: which rack a machine lives
// in and what the bottleneck bandwidth of a machine-to-machine path is. Pure
// arithmetic over the spec — cheap to construct anywhere a placement or migration
// decision needs topology awareness (cost model, runner) without a live Cluster.
class Topology {
 public:
  explicit Topology(const ClusterSpec& spec)
      : num_machines_(spec.num_machines),
        num_racks_(spec.topology.flat() ? 1 : spec.topology.num_racks),
        machines_per_rack_(num_machines_ / num_racks_),
        nic_bandwidth_(spec.nic_bandwidth),
        spine_bandwidth_(spec.topology.spine_bandwidth) {
    PX_CHECK_GT(num_machines_, 0);
    PX_CHECK_EQ(num_machines_ % num_racks_, 0)
        << "racks must partition the machines evenly";
  }

  bool flat() const { return num_racks_ <= 1; }
  int num_racks() const { return num_racks_; }
  int machines_per_rack() const { return machines_per_rack_; }
  int RackOfMachine(int m) const { return m / machines_per_rack_; }
  // The rack's designated leader for hierarchical collectives: its first machine.
  int LeaderOfRack(int r) const { return r * machines_per_rack_; }

  // Bottleneck bandwidth of the src -> dst path: the NIC within a rack, the weaker of
  // NIC and spine across racks. Same-machine traffic never touches the fabric.
  double PathBandwidth(int src, int dst) const {
    if (src == dst) {
      return std::numeric_limits<double>::infinity();
    }
    if (RackOfMachine(src) == RackOfMachine(dst)) {
      return nic_bandwidth_;
    }
    return std::min(nic_bandwidth_, spine_bandwidth_);
  }

 private:
  int num_machines_;
  int num_racks_;
  int machines_per_rack_;
  double nic_bandwidth_;
  double spine_bandwidth_;
};

// Global rank <-> (machine, local gpu) mapping. Ranks are laid out machine-major, which
// is also how ring orders group ranks so rings cross each NIC exactly once per direction.
struct RankLayout {
  int num_machines = 0;
  int gpus_per_machine = 0;

  int num_ranks() const { return num_machines * gpus_per_machine; }
  int MachineOfRank(int rank) const { return rank / gpus_per_machine; }
  int LocalGpuOfRank(int rank) const { return rank % gpus_per_machine; }
  int RankOf(int machine, int local_gpu) const { return machine * gpus_per_machine + local_gpu; }
};

// Per-machine mutable resources.
struct MachineSim {
  explicit MachineSim(const ClusterSpec& spec);

  LinkQueue nic_in;
  LinkQueue nic_out;
  LinkQueue pcie_in;
  LinkQueue pcie_out;
  CorePool cores;
  std::vector<GpuDevice> gpus;
};

// The live cluster: resource state plus byte accounting.
class Cluster {
 public:
  explicit Cluster(const ClusterSpec& spec);

  const ClusterSpec& spec() const { return spec_; }
  RankLayout layout() const { return RankLayout{spec_.num_machines, spec_.gpus_per_machine}; }

  MachineSim& machine(int m) {
    PX_CHECK_GE(m, 0);
    PX_CHECK_LT(m, static_cast<int>(machines_.size()));
    return machines_[static_cast<size_t>(m)];
  }
  const MachineSim& machine(int m) const {
    PX_CHECK_GE(m, 0);
    PX_CHECK_LT(m, static_cast<int>(machines_.size()));
    return machines_[static_cast<size_t>(m)];
  }
  int num_machines() const { return spec_.num_machines; }
  const Topology& topology() const { return topology_; }

  // Routes one machine-to-machine transfer through the topology. Same-rack traffic
  // (which is ALL traffic on a flat cluster — rack_of_ is empty then) takes exactly
  // the historical two-queue store-and-forward path, so flat clusters are bit-identical
  // to the pre-topology model. Cross-rack traffic additionally serializes through the
  // source rack's spine uplink and the destination rack's spine downlink, with one
  // propagation latency per leg (machine->switch, switch->switch, switch->machine):
  // 2*nic_latency + spine_latency in total. Inline for the same reason as the
  // schedulers above: one call per transfer task inside Execute's event loop.
  SimTime ScheduleTransfer(int src, int dst, SimTime ready, int64_t bytes) {
    MachineSim& s = machine(src);
    MachineSim& d = machine(dst);
    if (rack_of_.empty() ||
        rack_of_[static_cast<size_t>(src)] == rack_of_[static_cast<size_t>(dst)]) {
      return ScheduleStoreAndForward(s.nic_out, d.nic_in, ready, bytes);
    }
    LinkQueue& up = spine_up_[static_cast<size_t>(rack_of_[static_cast<size_t>(src)])];
    LinkQueue& down = spine_down_[static_cast<size_t>(rack_of_[static_cast<size_t>(dst)])];
    SimTime t = s.nic_out.ScheduleSerialization(ready, bytes);
    t = up.ScheduleSerialization(t, bytes);
    t = down.ScheduleSerialization(t, bytes);
    t = d.nic_in.ScheduleSerialization(t, bytes);
    return t + s.nic_out.latency() + up.latency() + d.nic_in.latency();
  }

  // Total NIC bytes (in + out) that crossed machine m's network interface.
  int64_t NicBytes(int m) const;
  // Total bytes (up + down) that crossed rack r's spine links (0 on flat clusters).
  int64_t SpineBytes(int r) const;
  void ResetByteAccounting();

 private:
  ClusterSpec spec_;
  Topology topology_;
  std::vector<MachineSim> machines_;
  // Rack structure; all three empty on flat clusters so the hot path above stays a
  // single branch away from the historical code.
  std::vector<int> rack_of_;
  std::vector<LinkQueue> spine_up_;
  std::vector<LinkQueue> spine_down_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_SIM_CLUSTER_H_
