#include "src/sim/task_graph.h"

#include <algorithm>
#include <functional>

#include "src/base/math.h"

namespace parallax {
namespace {

// 4-ary min-heap over (ready_time, id) entries. Pops the lexicographic minimum exactly
// like the binary heap it replaces — keys are unique (ids), so any correct min-heap
// yields the same deterministic service order — at roughly half the tree depth, which
// is a measurable win with thousands of simultaneously-ready tasks.
using HeapEntry = std::pair<SimTime, TaskId>;

inline void HeapPush(std::vector<HeapEntry>& heap, HeapEntry entry) {
  size_t i = heap.size();
  heap.push_back(entry);
  while (i > 0) {
    size_t parent = (i - 1) / 4;
    if (heap[parent] <= entry) {
      break;
    }
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = entry;
}

inline HeapEntry HeapPop(std::vector<HeapEntry>& heap) {
  HeapEntry top = heap.front();
  HeapEntry last = heap.back();
  heap.pop_back();
  const size_t n = heap.size();
  if (n > 0) {
    size_t i = 0;
    for (;;) {
      size_t child = 4 * i + 1;
      if (child >= n) {
        break;
      }
      size_t smallest = child;
      size_t end = std::min(child + 4, n);
      for (size_t k = child + 1; k < end; ++k) {
        if (heap[k] < heap[smallest]) {
          smallest = k;
        }
      }
      if (heap[smallest] >= last) {
        break;
      }
      heap[i] = heap[smallest];
      i = smallest;
    }
    heap[i] = last;
  }
  return top;
}

}  // namespace

TaskId TaskGraph::AddTask(Task task, std::span<const TaskId> deps) {
  // Mutating the graph invalidates the previous run's finish times (and would leave
  // the new task without one), so FinishTime requires a fresh Execute after this.
  executed_ = false;
  TaskId id = static_cast<TaskId>(tasks_.size());
  task.num_deps = static_cast<int32_t>(deps.size());
  for (TaskId dep : deps) {
    PX_CHECK_GE(dep, 0);
    PX_CHECK_LT(dep, id) << "dependencies must be created before dependents";
    int32_t edge = static_cast<int32_t>(child_edges_.size());
    child_edges_.push_back(ChildEdge{id, -1});
    Task& parent = tasks_[static_cast<size_t>(dep)];
    if (parent.last_child == -1) {
      parent.first_child = edge;
    } else {
      child_edges_[static_cast<size_t>(parent.last_child)].next = edge;
    }
    parent.last_child = edge;
  }
  tasks_.push_back(task);
  return id;
}

TaskId TaskGraph::AddGpuCompute(int machine, int gpu, double seconds,
                                std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kGpuCompute;
  t.machine = machine;
  t.gpu = gpu;
  t.seconds = seconds;
  return AddTask(t, deps);
}

TaskId TaskGraph::AddCpuWork(int machine, double seconds, std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kCpuWork;
  t.machine = machine;
  t.seconds = seconds;
  return AddTask(t, deps);
}

TaskId TaskGraph::AddTransfer(int src_machine, int dst_machine, int64_t bytes,
                              std::span<const TaskId> deps, double post_delay_seconds) {
  PX_CHECK_NE(src_machine, dst_machine)
      << "same-machine traffic must use AddLocalTransfer (local communication is "
         "NIC-free, as in the paper's section 3.1 analysis)";
  Task t;
  t.kind = TaskKind::kTransfer;
  t.machine = src_machine;
  t.dst_machine = dst_machine;
  t.bytes = bytes;
  t.seconds = post_delay_seconds;
  return AddTask(t, deps);
}

TaskId TaskGraph::AddLocalTransfer(int machine, int64_t bytes, std::span<const TaskId> deps,
                                   double post_delay_seconds) {
  Task t;
  t.kind = TaskKind::kLocalTransfer;
  t.machine = machine;
  t.bytes = bytes;
  t.seconds = post_delay_seconds;
  return AddTask(t, deps);
}

TaskId TaskGraph::AddDelay(double seconds, std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kDelay;
  t.seconds = seconds;
  return AddTask(t, deps);
}

TaskId TaskGraph::AddBarrier(std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kBarrier;
  return AddTask(t, deps);
}

void TaskGraph::Reset() {
  tasks_.clear();
  child_edges_.clear();
  executed_ = false;
}

TaskResult TaskGraph::Execute(Cluster& cluster, SimTime start_time) {
  const size_t n = tasks_.size();
  if (deps_remaining_.size() < n) {
    deps_remaining_.resize(n);
    ready_time_.resize(n);
    finish_time_.resize(n);
  }

  // Min-heap of ready tasks ordered by (ready_time, id): the deterministic service order.
  // Roots arrive in ascending id with equal times, so these pushes are all O(1).
  ready_heap_.clear();
  for (size_t i = 0; i < n; ++i) {
    deps_remaining_[i] = tasks_[i].num_deps;
    ready_time_[i] = start_time;
    finish_time_[i] = start_time;
    if (tasks_[i].num_deps == 0) {
      ready_heap_.emplace_back(start_time, static_cast<TaskId>(i));
    }
  }

  size_t scheduled = 0;
  SimTime last_finish = start_time;
  while (!ready_heap_.empty()) {
    auto [ready, id] = HeapPop(ready_heap_);
    const Task& task = tasks_[static_cast<size_t>(id)];
    SimTime finish = ready;
    switch (task.kind) {
      case TaskKind::kGpuCompute: {
        MachineSim& m = cluster.machine(task.machine);
        PX_CHECK_LT(static_cast<size_t>(task.gpu), m.gpus.size());
        finish = m.gpus[static_cast<size_t>(task.gpu)].Schedule(ready, task.seconds);
        break;
      }
      case TaskKind::kCpuWork: {
        finish = cluster.machine(task.machine).cores.Schedule(ready, task.seconds);
        break;
      }
      case TaskKind::kTransfer: {
        finish = cluster.ScheduleTransfer(task.machine, task.dst_machine, ready,
                                          task.bytes) +
                 task.seconds;
        break;
      }
      case TaskKind::kLocalTransfer: {
        MachineSim& m = cluster.machine(task.machine);
        finish = ScheduleStoreAndForward(m.pcie_out, m.pcie_in, ready, task.bytes) +
                 task.seconds;
        break;
      }
      case TaskKind::kDelay:
        finish = ready + task.seconds;
        break;
      case TaskKind::kBarrier:
        finish = ready;
        break;
    }
    finish_time_[static_cast<size_t>(id)] = finish;
    last_finish = std::max(last_finish, finish);
    ++scheduled;
    for (int32_t edge = task.first_child; edge != -1;
         edge = child_edges_[static_cast<size_t>(edge)].next) {
      TaskId child = child_edges_[static_cast<size_t>(edge)].child;
      SimTime& child_ready = ready_time_[static_cast<size_t>(child)];
      child_ready = std::max(child_ready, finish);
      if (--deps_remaining_[static_cast<size_t>(child)] == 0) {
        HeapPush(ready_heap_, {std::max(child_ready, start_time), child});
      }
    }
  }
  PX_CHECK_EQ(scheduled, tasks_.size()) << "task graph contains unreachable tasks";
  executed_ = true;

  TaskResult result;
  result.finish_time = last_finish;
  result.makespan = last_finish - start_time;
  return result;
}

SimTime TaskGraph::FinishTime(TaskId id) const {
  PX_CHECK(executed_);
  PX_CHECK_GE(id, 0);
  PX_CHECK_LT(static_cast<size_t>(id), tasks_.size());
  return finish_time_[static_cast<size_t>(id)];
}

uint64_t TaskGraph::StructuralFingerprint() const {
  uint64_t hash = kFnvOffsetBasis;
  for (const Task& task : tasks_) {
    hash = FnvMix64(hash, static_cast<uint64_t>(task.kind));
    hash = FnvMix64(hash, static_cast<uint64_t>(task.machine));
    hash = FnvMix64(hash, static_cast<uint64_t>(task.gpu));
    hash = FnvMix64(hash, static_cast<uint64_t>(task.dst_machine));
    hash = FnvMix64(hash, static_cast<uint64_t>(task.bytes));
    hash = FnvMix64(hash, DoubleBits(task.seconds));
    hash = FnvMix64(hash, static_cast<uint64_t>(task.num_deps));
    for (int32_t edge = task.first_child; edge != -1;
         edge = child_edges_[static_cast<size_t>(edge)].next) {
      hash = FnvMix64(hash,
                      static_cast<uint64_t>(child_edges_[static_cast<size_t>(edge)].child));
    }
  }
  return hash;
}

}  // namespace parallax
