#include "src/sim/task_graph.h"

#include <algorithm>
#include <queue>

namespace parallax {

TaskId TaskGraph::AddTask(Task task, std::span<const TaskId> deps) {
  TaskId id = static_cast<TaskId>(tasks_.size());
  task.deps_remaining = 0;
  for (TaskId dep : deps) {
    PX_CHECK_GE(dep, 0);
    PX_CHECK_LT(dep, id) << "dependencies must be created before dependents";
    tasks_[static_cast<size_t>(dep)].children.push_back(id);
    ++task.deps_remaining;
  }
  tasks_.push_back(std::move(task));
  return id;
}

TaskId TaskGraph::AddGpuCompute(int machine, int gpu, double seconds,
                                std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kGpuCompute;
  t.machine = machine;
  t.gpu = gpu;
  t.seconds = seconds;
  return AddTask(std::move(t), deps);
}

TaskId TaskGraph::AddCpuWork(int machine, double seconds, std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kCpuWork;
  t.machine = machine;
  t.seconds = seconds;
  return AddTask(std::move(t), deps);
}

TaskId TaskGraph::AddTransfer(int src_machine, int dst_machine, int64_t bytes,
                              std::span<const TaskId> deps) {
  PX_CHECK_NE(src_machine, dst_machine)
      << "same-machine traffic must use AddLocalTransfer (local communication is "
         "NIC-free, as in the paper's section 3.1 analysis)";
  Task t;
  t.kind = TaskKind::kTransfer;
  t.machine = src_machine;
  t.dst_machine = dst_machine;
  t.bytes = bytes;
  return AddTask(std::move(t), deps);
}

TaskId TaskGraph::AddLocalTransfer(int machine, int64_t bytes, std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kLocalTransfer;
  t.machine = machine;
  t.bytes = bytes;
  return AddTask(std::move(t), deps);
}

TaskId TaskGraph::AddDelay(double seconds, std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kDelay;
  t.seconds = seconds;
  return AddTask(std::move(t), deps);
}

TaskId TaskGraph::AddBarrier(std::span<const TaskId> deps) {
  Task t;
  t.kind = TaskKind::kBarrier;
  return AddTask(std::move(t), deps);
}

TaskResult TaskGraph::Execute(Cluster& cluster, SimTime start_time) {
  PX_CHECK(!executed_) << "TaskGraph::Execute may only be called once";
  executed_ = true;

  // Min-heap of ready tasks ordered by (ready_time, id): the deterministic service order.
  using Entry = std::pair<SimTime, TaskId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;

  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].deps_remaining == 0) {
      tasks_[i].ready_time = start_time;
      ready.emplace(start_time, static_cast<TaskId>(i));
    }
  }

  size_t scheduled = 0;
  SimTime last_finish = start_time;
  while (!ready.empty()) {
    auto [ready_time, id] = ready.top();
    ready.pop();
    Task& task = tasks_[static_cast<size_t>(id)];
    SimTime finish = ready_time;
    switch (task.kind) {
      case TaskKind::kGpuCompute: {
        MachineSim& m = cluster.machine(task.machine);
        PX_CHECK_LT(static_cast<size_t>(task.gpu), m.gpus.size());
        finish = m.gpus[static_cast<size_t>(task.gpu)].Schedule(ready_time, task.seconds);
        break;
      }
      case TaskKind::kCpuWork: {
        finish = cluster.machine(task.machine).cores.Schedule(ready_time, task.seconds);
        break;
      }
      case TaskKind::kTransfer: {
        // Store-and-forward: the transfer serializes through the sender's out-link, then
        // through the receiver's in-link, each a FIFO byte queue. The two queues are
        // decoupled (no mutual reservation), so many-to-many traffic has no artificial
        // convoy stalls while incast still queues honestly at the receiver. One
        // propagation latency per hop.
        LinkQueue& out = cluster.machine(task.machine).nic_out;
        LinkQueue& in = cluster.machine(task.dst_machine).nic_in;
        SimTime out_done = out.ScheduleSerialization(ready_time, task.bytes);
        SimTime in_done = in.ScheduleSerialization(out_done, task.bytes);
        finish = in_done + out.latency();
        break;
      }
      case TaskKind::kLocalTransfer: {
        LinkQueue& out = cluster.machine(task.machine).pcie_out;
        LinkQueue& in = cluster.machine(task.machine).pcie_in;
        SimTime out_done = out.ScheduleSerialization(ready_time, task.bytes);
        SimTime in_done = in.ScheduleSerialization(out_done, task.bytes);
        finish = in_done + out.latency();
        break;
      }
      case TaskKind::kDelay:
        finish = ready_time + task.seconds;
        break;
      case TaskKind::kBarrier:
        finish = ready_time;
        break;
    }
    task.finish_time = finish;
    last_finish = std::max(last_finish, finish);
    ++scheduled;
    for (TaskId child_id : task.children) {
      Task& child = tasks_[static_cast<size_t>(child_id)];
      child.ready_time = std::max(child.ready_time, finish);
      if (--child.deps_remaining == 0) {
        ready.emplace(std::max(child.ready_time, start_time), child_id);
      }
    }
  }
  PX_CHECK_EQ(scheduled, tasks_.size()) << "task graph contains unreachable tasks";

  TaskResult result;
  result.finish_time = last_finish;
  result.makespan = last_finish - start_time;
  return result;
}

SimTime TaskGraph::FinishTime(TaskId id) const {
  PX_CHECK(executed_);
  PX_CHECK_GE(id, 0);
  PX_CHECK_LT(static_cast<size_t>(id), tasks_.size());
  return tasks_[static_cast<size_t>(id)].finish_time;
}

}  // namespace parallax
