// Automatic graph transformation (paper section 4.3): single-GPU graph -> distributed
// hybrid graph, expressed as an explicit, inspectable op/placement structure.
//
// Transformation rules encoded here (each is asserted by tests/transform_test.cc):
//   AR rule      — model forward/backward ops are replicated once per GPU; each dense
//                  variable gets a replica on every GPU and an AllReduce op per replica.
//   PS rule      — each sparse variable is split into partitions; pieces and their update
//                  ops are distributed across the per-machine server processes, with the
//                  update and global-aggregation ops colocated with their piece; each
//                  machine gets a local-aggregation op; each worker gets pull/stitch ops.
//   Hybrid rule  — the union: per-variable routing by the hybrid assignment.
//   Chief rule   — exactly one chief worker triggers updates; every other worker gets a
//                  notification queue (section 5).
#ifndef PARALLAX_SRC_CORE_TRANSFORM_H_
#define PARALLAX_SRC_CORE_TRANSFORM_H_

#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/resources.h"
#include "src/graph/graph.h"

namespace parallax {

enum class DeviceKind : uint8_t {
  kWorkerGpu,  // a GPU-resident worker replica
  kServerCpu,  // the per-machine parameter-server process
};

struct Placement {
  DeviceKind kind = DeviceKind::kWorkerGpu;
  int machine = 0;
  int gpu = 0;  // meaningful for kWorkerGpu only

  bool operator==(const Placement& other) const {
    return kind == other.kind && machine == other.machine &&
           (kind == DeviceKind::kServerCpu || gpu == other.gpu);
  }
};

enum class DistOpRole : uint8_t {
  kModelReplica,    // forward+backward ops of one GPU replica
  kVariableReplica, // dense (AR) variable copy on a GPU
  kAllReduce,       // collective op instance on a GPU replica
  kAllGatherv,      // collective op instance on a GPU replica (AR sparse)
  kVariablePiece,   // one partition of a PS variable on a server
  kPull,            // worker-side read of a PS piece
  kStitch,          // worker-side reassembly of partitioned pulls
  kLocalAgg,        // per-machine gradient aggregation (OptPS)
  kGlobalAgg,       // per-piece accumulator on the server
  kUpdate,          // per-piece update op on the server
  kChiefTrigger,    // the chief worker's update trigger
  kQueueNotify,     // per-worker shared-queue notification
};

const char* DistOpRoleName(DistOpRole role);

struct DistOp {
  DistOpRole role;
  std::string name;
  Placement placement;
  int rank = -1;      // worker rank, where applicable
  int variable = -1;  // graph variable index, where applicable
  int piece = -1;     // partition index, where applicable
};

struct DistributedGraph {
  std::vector<DistOp> ops;
  std::vector<VariableSync> assignment;  // per-variable routing used
  int num_machines = 0;
  int gpus_per_machine = 0;
  int chief_rank = 0;

  std::vector<const DistOp*> OpsWithRole(DistOpRole role) const;
  // The piece op for (variable, piece), or nullptr.
  const DistOp* FindPiece(int variable, int piece) const;
};

// Applies the transformation rules. `assignment` comes from AssignGraphVariables (or any
// manual routing); local aggregation controls whether kLocalAgg ops are materialized.
DistributedGraph TransformGraph(const Graph& graph, const std::vector<VariableSync>& assignment,
                                const ResourceSpec& resources, bool local_aggregation);

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_TRANSFORM_H_
