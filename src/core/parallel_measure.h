// The one batch-measure implementation behind the parallel partition search.
//
// SearchPartitionPlan's batched overload (cost_model.h) wants a PlanBatchMeasure:
// "simulate these candidate plans, return their seconds, index-aligned, bit-identical
// to the serial measure." This file builds that callback out of the pieces the
// serial call sites already hold — the cluster, the plan→variables application, the
// simulator config — plus a ThreadPool to fan candidates across and an ArenaPool to
// lease one SimulationArena per worker. Both GraphRunner's private searches and the
// PlannerService construct their batch measures here, so the concurrency mechanics
// (chunking, leasing, the worker cap) live in exactly one place.
//
// Determinism: each candidate is simulated independently on its own arena, and
// simulated times are arena-independent (the schedule cache only changes wall-clock),
// so seconds[i] is bit-identical to what a serial measure of plans[i] returns — the
// contract PlanBatchMeasure requires. Results are written to disjoint slots of a
// pre-sized vector; no accumulation crosses a chunk boundary.
#ifndef PARALLAX_SRC_CORE_PARALLEL_MEASURE_H_
#define PARALLAX_SRC_CORE_PARALLEL_MEASURE_H_

#include <functional>
#include <vector>

#include "src/core/cost_model.h"
#include "src/core/iteration_sim.h"
#include "src/core/sync_engine.h"
#include "src/sim/cluster.h"

namespace parallax {

class ArenaPool;

// Everything one candidate simulation needs besides the plan itself. `apply_plan`
// must be safe to call concurrently from pool threads (the runner's
// VariablesWithPartitions and the service's ApplyPlanToVariables are both pure reads
// of caller-owned state).
struct ParallelMeasureSpec {
  ClusterSpec cluster;
  std::function<std::vector<VariableSync>(const PartitionPlan&)> apply_plan;
  double gpu_compute_seconds = 0.0;
  int compute_chunks = 1;
  IterationSimConfig sim_config;
  int warmup_iterations = 50;
  int measured_iterations = 50;
};

// Builds the batch-measure callback, or a null function when
// `options.concurrency` cannot buy parallelism (no pool, a one-lane cap, or a null
// arena pool) — callers pass the result straight to the batched search overloads,
// which degrade to serial on null. The returned callback leases one arena per worker
// chunk from `arenas` per call; `arenas` and everything captured by
// `spec.apply_plan` must outlive it.
PlanBatchMeasure MakeParallelPlanMeasure(ParallelMeasureSpec spec,
                                         const SearchConcurrency& concurrency,
                                         ArenaPool* arenas);

// Adapts a plan batch measure to the uniform search's integer candidates
// (P -> PartitionPlan::Uniform(P)). Null in, null out.
UniformBatchMeasure MakeUniformBatchMeasure(PlanBatchMeasure measure_batch);

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_PARALLEL_MEASURE_H_
