// Unified per-iteration timing simulation for every synchronization architecture.
//
// One synchronous training iteration is described as a task DAG over the simulated
// cluster (sim/task_graph.h):
//
//   pulls (PS variables) ──▶ forward chunks ──▶ backward chunks ──▶ per-variable sync
//                                                                    │
//     PS path: push → accumulator chain (serial per shard) → update op on the server
//     AR path: hierarchical ring AllReduce (dense) / AllGatherv (sparse) → GPU apply
//
// Because each variable carries its own SyncMethod, the PS-only (TF-PS), AR-only
// (Horovod) and hybrid (Parallax) architectures are all instances of the same builder —
// exactly the framing of the paper's section 3.1/4.3: the hybrid graph is the composition
// of the per-variable-kind transformation rules.
//
// What emerges mechanistically (nothing here is closed-form):
//  - PS incast at the owning server's NIC (section 3.1's asymmetry argument),
//  - serialization of sparse gradient accumulation per shard — the cost that
//    partitioning parallelizes (section 3.2),
//  - per-partition overheads (requests, bookkeeping, stitch) — the theta2 * P term,
//  - communication/computation overlap from chunked forward/backward,
//  - ring pipelining and the N-1/N factors of Table 3 (validated by bench_table3).
#ifndef PARALLAX_SRC_CORE_ITERATION_SIM_H_
#define PARALLAX_SRC_CORE_ITERATION_SIM_H_

#include <memory>
#include <vector>

#include "src/comm/collectives.h"
#include "src/core/sync_engine.h"
#include "src/models/calibration.h"
#include "src/models/model_spec.h"
#include "src/sim/cluster.h"
#include "src/sim/task_graph.h"

namespace parallax {

// SyncMethod / GathervAlgorithm / VariableSync — the per-variable synchronization
// vocabulary this simulator consumes — live in src/core/sync_engine.h with the engine
// interface, so the numeric engines can implement the seam without including the
// simulator.

struct IterationSimConfig {
  // OptPS: aggregate gradients within each machine before pushing (one push per machine
  // instead of one per GPU) — paper's local aggregation.
  bool ps_local_aggregation = false;
  // OptPS: pull each shard once per machine and broadcast locally over PCIe, instead of
  // once per GPU worker — paper's smart placement of read operations.
  bool ps_machine_level_pulls = false;
  GathervAlgorithm gatherv_algorithm = GathervAlgorithm::kBroadcast;
  // Account 8 bytes/row of index traffic for sparse transfers (the paper's analysis
  // neglects it; Table 3 validation turns it off).
  bool include_index_bytes = true;
  SyncCostParams costs;
};

// Reusable simulation state: the task-graph arena, the collective schedule cache, and
// every DAG-construction scratch table. One arena serves any number of simulators in
// sequence — the partition search constructs a fresh IterationSimulator per sampled P
// but passes the same arena, so cached schedules and task storage persist across the
// whole search and the steady-state iteration performs zero heap allocations
// (tests/sim_steady_state_test.cc).
//
// Thread-ownership contract: NOT thread-safe — every member below is shared mutable
// state owned by exactly one simulating thread at a time, with no internal locking.
// Concurrent simulations take one arena each (the PlannerService's arena pool hands
// them out RAII-style, src/service/planner_service.h); handing an arena to another
// thread requires external synchronization for the transfer and exclusive use after.
struct SimulationArena {
  TaskGraph graph;                  // owned by the simulating thread; rebuilt/executed in place
  CollectiveScheduleCache schedules;  // owned by the simulating thread; grows monotonically

  // DAG build cache bookkeeping: which simulator's iteration DAG currently occupies
  // `graph`, and a serial stamped on every rebuild. A simulator's iteration DAG depends
  // only on its (variables, config, layout), all fixed at construction, so re-simulating
  // with the same simulator skips the rebuild entirely and goes straight to Execute
  // (see IterationSimulator::SimulateIteration).
  const void* built_by = nullptr;  // owned by the simulating thread (cache tag, see above)
  uint64_t build_serial = 0;       // owned by the simulating thread (cache tag, see above)

  // SimulateIteration scratch (iteration_sim.cc). avail/gate/chunk are the rank-major
  // DAG tables; the rest are small per-phase staging buffers. (The broadcast-gatherv
  // fan-in and per-collective done copies that used to live here are folded into
  // cached SchedulePlans — see comm/collectives.h.) All owned by the simulating
  // thread: overwritten by every build, valid only within one SimulateIteration.
  std::vector<std::vector<TaskId>> avail;     // [rank][shard]; per-build scratch
  std::vector<std::vector<TaskId>> gate;      // [rank][variable]; per-build scratch
  std::vector<std::vector<TaskId>> chunk;     // [rank][chunk]; per-build scratch
  std::vector<TaskId> end_tasks;              // per-build scratch
  std::vector<TaskId> deps;                   // per-build scratch
  std::vector<TaskId> collective_deps;        // per-build scratch
  std::vector<TaskId> local_deps;             // per-build scratch
  std::vector<int64_t> blocks;                // per-build scratch
  std::vector<size_t> var_shards;             // per-build scratch
  CollectiveSchedule schedule;                // per-collective replay target
};

// The effective server machine of every PS shard in `variables` (in variable order,
// pieces ascending): piece p of a variable with a matching-length placement vector
// lives on placement[p]; every other shard follows the historical round-robin, whose
// counter advances for EVERY shard so placing one variable never shifts another's
// assignment. This is the single shard-ownership rule — the iteration simulator builds
// its DAG from it and the runner's migration estimate replays it.
std::vector<int> ResolveShardServers(std::span<const VariableSync> variables,
                                     int num_machines);

class IterationSimulator {
 public:
  // With a null `arena` the simulator owns a private one; passing a shared arena lets
  // many short-lived simulators (one per partition-search sample) reuse one set of
  // buffers and one schedule cache.
  IterationSimulator(const ClusterSpec& cluster_spec, std::vector<VariableSync> variables,
                     double gpu_compute_seconds, int compute_chunks,
                     IterationSimConfig config, SimulationArena* arena = nullptr);

  // Builds and executes one iteration DAG. Resource state in `cluster` carries over
  // between calls, so pipelining across iterations reaches steady state naturally.
  SimTime SimulateIteration(Cluster& cluster, SimTime start_time);

  // Runs `iterations` iterations on a fresh cluster; returns each iteration's duration.
  std::vector<double> RunIterations(int iterations);

  // Mean iteration time over `measure` iterations after `warmup` discarded ones —
  // the paper's sampling discipline (run 100, discard the first 50; section 3.2).
  double MeasureIterationSeconds(int warmup, int measure);

  const ClusterSpec& cluster_spec() const { return cluster_spec_; }

 private:
  // A PS shard: one partition of one PS variable, owned by one server machine.
  struct Shard {
    int var = 0;           // index into variables_
    int piece = 0;         // partition index within the variable
    int server = 0;        // owning machine
    int64_t elements = 0;  // elements stored in this piece
  };

  int64_t PullBytesPerWorker(const Shard& shard) const;
  int64_t SparseIndexBytes(int64_t touched_elements, int64_t row_elements) const;

  // Push-side cost plane, honoring the variable's CompressionSpec (pulls always move
  // uncompressed values — forward passes need full precision rows, so only the helpers
  // below diverge from the pull path). With kind == kNone every helper reduces exactly
  // to the historical uncompressed expression, so uncompressed simulations build
  // bit-identical task graphs.
  //
  // Fraction of a sparse shard's elements one worker ships after compression
  // (kTopK: alpha * ratio; otherwise alpha).
  double PushAlpha(const VariableSync& sync) const;
  // Wire bytes for `touched` sparse elements pushed under the variable's compression
  // (kInt8: 1 byte/element + a 4-byte scale per row; otherwise 4 bytes/element).
  int64_t SparseWireBytes(const VariableSync& sync, int64_t touched) const;
  // Wire bytes one worker pushes for this shard (dense or sparse, compressed).
  int64_t PushBytesPerWorker(const Shard& shard) const;
  // Worker-side select/quantize cost for one rank's gradient of this shard: the
  // compression scan reads the RAW (pre-compression) support. 0 when kind == kNone —
  // no task is added, preserving task-graph identity for uncompressed plans.
  double CompressSeconds(const Shard& shard) const;

  ClusterSpec cluster_spec_;
  std::vector<VariableSync> variables_;
  double gpu_compute_seconds_;
  int compute_chunks_;
  IterationSimConfig config_;

  std::vector<Shard> shards_;
  // Per variable: the forward chunk that needs it and the backward chunk that produces
  // its gradient (global chunk indices into the per-rank compute chain).
  std::vector<int> pull_chunk_;
  std::vector<int> grad_chunk_;
  int forward_chunks_ = 1;

  SimulationArena* arena_;
  std::unique_ptr<SimulationArena> owned_arena_;

  // DAG build cache (valid while arena_->built_by == this and the serials match):
  // the finishing task to read the iteration end time from, and the layout the DAG was
  // built for (a different cluster shape forces a rebuild).
  uint64_t built_serial_ = 0;
  int built_num_machines_ = -1;
  int built_gpus_ = -1;
  TaskId final_task_ = kNoTask;
  bool built_multi_rank_ = false;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_ITERATION_SIM_H_
