// PartitionPlan — the partition layout as a first-class value.
//
// Parallax's core observation is that the right sharding of a sparse variable depends
// on *that variable's* access pattern: a hot embedding whose workers hammer a few rows
// wants few pieces (per-piece overhead dominates), while a near-dense table whose
// aggregated gradient touches most rows wants many (accumulator serialization
// dominates). One global `int sparse_partitions` cannot express that, so every layer
// that decides, simulates, or applies a layout passes a PartitionPlan instead:
//
//   search  — SearchPartitionPlan (core/cost_model.h) produces one by per-variable
//             coordinate descent over the simulated clock,
//   assign  — AssignGraphVariables (core/analysis.h) stamps plan.For(name) onto each
//             partitioner-scoped PS variable (row-capped),
//   apply   — the PS-family engines re-split shards from the per-variable counts the
//             SyncPlan carries, and GraphRunner::Repartition(plan) swaps layouts
//             mid-training, re-preparing only what changed.
//
// A plan is a default count plus per-variable overrides keyed by variable *name*
// (names are the stable identity across Graph, SyncPlan, and the cost model's
// VariableSpec). Uniform(p) — every variable at p — is the exact value the legacy
// int-based entry points (GetRunner, Repartition(int), WithManualPartitions) shim to.
#ifndef PARALLAX_SRC_CORE_PARTITION_PLAN_H_
#define PARALLAX_SRC_CORE_PARTITION_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace parallax {

// The structural gate every applier of a partition count shares: a variable cannot
// have more pieces than rows, and never fewer than one. The assigner, the runner's
// re-partitioner, and the PS engine's shard builder all go through this one function —
// if any of them gated differently, the simulator would time a layout the engine never
// builds.
inline int RowCappedPartitions(int requested, int64_t rows) {
  return static_cast<int>(
      std::min<int64_t>(std::max<int64_t>(rows, 1), std::max(requested, 1)));
}

class PartitionPlan {
 public:
  PartitionPlan() = default;

  // The uniform-P convenience constructor: every variable gets `partitions` pieces —
  // exactly what the int-based APIs have always meant.
  static PartitionPlan Uniform(int partitions);

  // Sets the partition count for one variable (by name). Overrides win over the
  // default; setting a variable twice keeps the last value.
  void Set(const std::string& variable, int partitions);

  // The partition count this plan assigns to `variable`: its override if one exists,
  // the default otherwise. Callers apply their own structural gates on top (row caps,
  // partitioner scope) — the plan stores intent, not feasibility.
  int For(const std::string& variable) const;

  // Count every variable without an override gets.
  int default_partitions() const { return default_partitions_; }
  void set_default_partitions(int partitions);

  // Per-variable overrides, ordered by name (deterministic iteration).
  const std::map<std::string, int>& overrides() const { return overrides_; }

  // Sets the shard placement for one variable: placement[p] is the server machine
  // hosting piece p. An empty vector clears the entry (back to round-robin). Placement
  // is intent like the counts are — appliers ignore a vector whose length does not
  // match the variable's row-capped count.
  void SetPlacement(const std::string& variable, std::vector<int> placement);

  // The placement this plan assigns to `variable`, or nullptr for round-robin.
  const std::vector<int>* PlacementFor(const std::string& variable) const;

  // Per-variable placements, ordered by name (deterministic iteration).
  const std::map<std::string, std::vector<int>>& placements() const { return placements_; }

  // True when no variable deviates from the default — the plans the int shims build.
  // A placed variable is a deviation: its shards no longer follow round-robin.
  bool uniform() const { return overrides_.empty() && placements_.empty(); }

  // Largest count the plan assigns to any variable (default included). This is the
  // honest single-number summary of a heterogeneous plan — what the deprecated
  // chosen_sparse_partitions() accessor reports.
  int MaxPartitions() const;

  // "P=4" for uniform plans, "{emb:16, softmax:2; default P=1}" otherwise — the form
  // log lines and examples print so a heterogeneous layout never reads as one number.
  std::string ToString() const;

  friend bool operator==(const PartitionPlan& a, const PartitionPlan& b) {
    return a.default_partitions_ == b.default_partitions_ &&
           a.overrides_ == b.overrides_ && a.placements_ == b.placements_;
  }
  friend bool operator!=(const PartitionPlan& a, const PartitionPlan& b) {
    return !(a == b);
  }

 private:
  int default_partitions_ = 1;
  std::map<std::string, int> overrides_;
  std::map<std::string, std::vector<int>> placements_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_PARTITION_PLAN_H_
