// Sparsity analysis and hybrid architecture assignment (paper sections 3.1, 4.2, 5).
//
// A variable is sparse iff its gradient is IndexedSlices — determined statically from the
// graph (how the variable is consumed) and confirmed by runtime samples, which also
// measure alpha (the per-worker element access ratio). The hybrid assigner then maps
// dense variables to AllReduce and sparse ones to PS, except sparse variables whose alpha
// is close to 1, which ride AllReduce as dense payloads.
#ifndef PARALLAX_SRC_CORE_ANALYSIS_H_
#define PARALLAX_SRC_CORE_ANALYSIS_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/iteration_sim.h"
#include "src/core/partition_plan.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/models/model_spec.h"

namespace parallax {

struct VariableSparsity {
  GradKind kind = GradKind::kNone;
  // Mean fraction of rows a worker touches per iteration (1.0 for dense), measured over
  // the provided sample steps; falls back to 1.0 with no samples.
  double alpha = 1.0;
  int64_t num_elements = 0;
  int64_t row_elements = 1;
};

// Static kind analysis plus alpha measurement from sample backward passes.
std::unordered_map<int, VariableSparsity> AnalyzeSparsity(const Graph& graph, NodeId loss,
                                                          std::span<const StepResult> samples);

// Cost-model workload view of a graph's variables (feeds the partition search and the
// timing plane for runner-managed training).
std::vector<VariableSpec> ToVariableSpecs(const Graph& graph,
                                          const std::unordered_map<int, VariableSparsity>& info);

struct HybridOptions {
  double alpha_dense_threshold = 0.8;
};

// The per-variable architecture decision.
SyncMethod DecideSyncMethod(const VariableSparsity& info, const HybridOptions& options);

// Full assignment for a graph: every variable gets a method; each partitioner-scoped
// PS variable gets the plan's count for its name, capped at its row count.
std::vector<VariableSync> AssignGraphVariables(
    const Graph& graph, const std::unordered_map<int, VariableSparsity>& info,
    const HybridOptions& options, const PartitionPlan& plan);

// Uniform-plan shim: every partitioner-scoped sparse variable gets `sparse_partitions`
// pieces (row-capped). Exactly AssignGraphVariables(PartitionPlan::Uniform(p)).
std::vector<VariableSync> AssignGraphVariables(
    const Graph& graph, const std::unordered_map<int, VariableSparsity>& info,
    const HybridOptions& options, int sparse_partitions);

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_ANALYSIS_H_
