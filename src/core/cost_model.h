// The sparse-variable partitioning cost model and sampling search (paper section 3.2).
//
// Equation 1:   iter_time(P) = theta0 + theta1 * (1/P) + theta2 * P
//
//   theta0 — fixed computation/communication independent of the partition count,
//   theta1 — the cost partitioning parallelizes/amortizes (accumulator serialization),
//   theta2 — per-partition overhead (stitching, per-piece bookkeeping, extra requests).
//
// The search replicates the paper's procedure: start at P = number of machines, measure a
// short real run (first half discarded as warmup), double P until iteration time starts
// to increase, then halve from the start point until it increases again. The model is a
// convex function of P, so the sampled interval brackets the optimum and the fit never
// extrapolates. The fitted optimum is then snapped to the best predicted integer.
//
// SearchPartitionPlan generalizes the procedure to one count *per variable* (a
// PartitionPlan): a uniform sweep seeds the descent, Equation 1's closed form at each
// variable's measured alpha spreads the seed across variables, and coordinate descent —
// the same doubling/halving sweep, one variable at a time — refines until no move wins.
#ifndef PARALLAX_SRC_CORE_COST_MODEL_H_
#define PARALLAX_SRC_CORE_COST_MODEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/partition_plan.h"

namespace parallax {

class ThreadPool;

// Concurrency for candidate evaluation inside the searches. The searches themselves
// never touch the pool — they speculate candidate sets against their memo through a
// caller-supplied batch measure (MakeParallelPlanMeasure, src/core/parallel_measure.h)
// and replay the serial adoption logic over the memoized results, so the adopted plan,
// tie-breaks, and the full sample trail are bit-identical to the serial search at any
// worker count. This struct just carries the knobs from the builder / planner options
// down to wherever the batch measure is constructed.
struct SearchConcurrency {
  ThreadPool* pool = nullptr;  // null = serial (no speculation)
  // Cap on concurrently simulated candidates; 0 = every pool lane. Results do not
  // depend on this (or on pool size) — only wall-clock does.
  int max_workers = 0;
};

// Candidates to simulate per batch, honoring the cap: min(pool lanes, max_workers,
// candidates), and 1 when no pool is configured.
int EffectiveSearchWorkers(const SearchConcurrency& concurrency, size_t candidates);

// Observability for the batched-measure path: how much was speculated and how much of
// it the serial replay never asked for. All zero on a serial search.
struct BatchMeasureStats {
  int batches = 0;              // batch-measure calls issued
  int batched_evaluations = 0;  // candidates simulated speculatively
  int max_batch_size = 0;       // largest single batch
  // Speculative candidates the serial adoption logic never requested (e.g. ladder
  // points past the sweep's early exit, swap trials after the round's first win).
  // The price of the parallel fan-out; bounded by batched_evaluations.
  int speculative_waste = 0;
};

// Batched candidate measurement: returns measured seconds for each plan, index-aligned
// with the input. Contract: element i must be bit-identical to what the serial
// measure would return for plans[i] — simulated times are arena-independent, so any
// implementation that simulates each plan on its own arena satisfies this.
using PlanBatchMeasure =
    std::function<std::vector<double>(const std::vector<PartitionPlan>&)>;
// Same, for the uniform search's integer candidates.
using UniformBatchMeasure = std::function<std::vector<double>(const std::vector<int>&)>;

struct CostModelFit {
  double theta0 = 0.0;
  double theta1 = 0.0;
  double theta2 = 0.0;
  double rmse = 0.0;
  bool ok = false;

  double Predict(double partitions) const {
    return theta0 + theta1 / partitions + theta2 * partitions;
  }
  // Unconstrained continuous minimizer sqrt(theta1/theta2); 1 when degenerate.
  double ContinuousOptimum() const;
};

// Least-squares fit of Equation 1 to (partition count, iteration seconds) samples.
CostModelFit FitCostModel(const std::vector<std::pair<int, double>>& samples);

// PS-shard placement as a searched dimension (SearchPartitionPlan's final phase).
// The greedy seed assigns each piece to the server machine minimizing the bottleneck
// *link utilization* under a static traffic model — every worker machine pushes and
// pulls each piece once per step, loading the server's NIC (incast), each worker's NIC,
// and, across racks, both spine directions — then bounded local swaps refine on the
// measured (simulated) clock. Disabled by default: flat clusters and placement-oblivious
// searches pay nothing.
struct PlacementSearchOptions {
  bool enabled = false;
  // The hierarchical machine view (mirrors sim TopologySpec; plain ints/doubles so the
  // cost model stays independent of the simulator headers). num_machines <= 1 or a rack
  // count that does not divide the machines degrades gracefully (flat / no-op).
  int num_machines = 0;
  int num_racks = 1;
  double nic_bandwidth = 1.25e9;
  double spine_bandwidth = 6.25e9;
  // Local-swap refinement: rounds of busiest-to-idlest piece moves, candidate moves
  // tried per round, and the relative measured-time margin a move must beat.
  int max_swap_rounds = 2;
  int max_swap_trials = 4;
  double swap_margin = 0.002;
};

struct PartitionSearchOptions {
  // Initial sample point; the paper uses the number of machines.
  int initial_partitions = 8;
  int min_partitions = 1;
  int max_partitions = 4096;
  // Iterations per sampling run; the paper runs 100 and discards the first 50.
  int warmup_iterations = 50;
  int measured_iterations = 50;
  // Per-variable search only: a coordinate move is adopted when it beats the incumbent
  // plan's measured time by this relative margin. The margin keeps the descent from
  // chasing simulator noise and guarantees termination on a finite landscape.
  double coordinate_margin = 0.002;
  // Per-variable search only: full passes over the variables before the descent stops
  // even if moves keep winning (each pass re-sweeps every coordinate).
  int max_coordinate_rounds = 4;
  // Per-variable search only: when true AND every variable carries previous_partitions,
  // the uniform sweep and closed-form seed are skipped — coordinate descent starts at
  // the previous counts and its first round sweeps only the variables marked drifted.
  // This is the re-search the adaptive runner performs when alpha drift is confined to
  // one variable: O(one sweep) instead of O(full search).
  bool warm_start = false;
  // Per-variable search only: shard placement search (see PlacementSearchOptions).
  PlacementSearchOptions placement;
  // Candidate-evaluation concurrency. Never changes results (see SearchConcurrency);
  // excluded from planner fingerprints for the same reason.
  SearchConcurrency concurrency;
};

// Which search the runner performs for partitioner-scoped sparse variables.
enum class PartitionSearchMode : uint8_t {
  kUniform,      // one shared P (the paper's section 3.2 procedure)
  kPerVariable,  // a PartitionPlan via coordinate descent (SearchPartitionPlan)
};

struct PartitionSearchResult {
  int best_partitions = 1;
  CostModelFit fit;
  // Every sampling run performed: (P, measured mean iteration seconds).
  std::vector<std::pair<int, double>> samples;
  double predicted_seconds = 0.0;
  BatchMeasureStats batch;
};

// measure(P) must return the mean iteration time at P partitions (the caller decides how:
// simulated training for the benches, or any user-supplied profiler).
PartitionSearchResult SearchPartitions(const std::function<double(int)>& measure,
                                       const PartitionSearchOptions& options);

// Batched variant: ahead of the serial sweep, candidates are simulated speculatively
// through `measure_batch` in WAVES — each memo miss batches the requested P plus the
// next fresh rungs of both sweep arms, nearest first, capped at the worker count
// options.concurrency can run (so callers that supply a measure_batch should fill in
// options.concurrency; a one-lane configuration degrades to waves of one). The serial
// sweep then replays over the results — best_partitions, fit, and the samples trail
// are bit-identical to the serial search; rungs a wave simulated past an early exit
// are reported as batch.speculative_waste, bounded per wave by the worker count. A
// null measure_batch degrades to the serial search.
PartitionSearchResult SearchPartitions(const std::function<double(int)>& measure,
                                       const UniformBatchMeasure& measure_batch,
                                       const PartitionSearchOptions& options);

// One variable the per-variable search may re-shard.
struct PartitionSearchVariable {
  std::string name;
  // Measured per-worker access ratio — the alpha Equation 1's theta1 scales with.
  double alpha = 1.0;
  // Variable size; alpha * num_elements is the closed-form seed's workload weight.
  int64_t num_elements = 0;
  // Per-variable cap (typically the row count: a variable cannot have more pieces than
  // rows). 0 means options.max_partitions.
  int64_t max_partitions = 0;
  // Warm start (options.warm_start): the count this variable held in the previous
  // adopted plan (0 = unknown, which disables the warm start for the whole search) and
  // whether its measured alpha drifted since. Round 0 of a warm-started descent sweeps
  // only drifted variables.
  int previous_partitions = 0;
  bool drifted = true;
};

struct PartitionPlanSearchResult {
  // The adopted per-variable layout (default count 1; one override per searched
  // variable).
  PartitionPlan plan;
  // Measured mean iteration seconds of the adopted plan.
  double seconds = 0.0;
  // Measured seconds at the best *uniform* P (row caps applied) — the baseline the
  // per-variable plan must beat to be worth its extra sampling runs.
  double uniform_seconds = 0.0;
  // The uniform sweep that seeded the descent (fit, samples, best P).
  PartitionSearchResult uniform;
  // Coordinate-descent passes performed (a pass with no winning move terminates).
  int rounds = 0;
  // Distinct plans measured across all phases (memoized; repeats are free).
  int evaluations = 0;
  // True when the uniform sweep and closed-form seed were skipped because every
  // variable carried a previous count (options.warm_start). uniform_seconds then holds
  // the measured time of the previous plan, and `uniform` stays empty.
  bool warm_started = false;
  // Placement search only: the measured seconds of the adopted counts under the
  // historical round-robin placement — the placement-oblivious baseline the placed plan
  // had to beat. Equal to `seconds` when no placement was adopted.
  double unplaced_seconds = 0.0;
  BatchMeasureStats batch;
};

// Per-variable partition search (the PartitionPlan generalization of section 3.2):
//
//   1. uniform sweep — SearchPartitions over measure(Uniform(p)) brackets the shared
//      optimum and fits Equation 1;
//   2. closed-form seed — the fitted continuous optimum sqrt(theta1/theta2) is spread
//      across variables by their share of the serialized work: theta1 scales with the
//      rows a step touches (alpha_v * elements_v), theta2 is per-piece bookkeeping paid
//      by every variable alike, so P_v ~ P* * sqrt(w_v / mean(w));
//   3. coordinate descent — one variable at a time, the doubling/halving sweep of
//      SearchPartitions runs over measure(plan with that coordinate varied); the best
//      candidate is adopted iff it beats the incumbent by coordinate_margin, and the
//      descent stops after a full pass with no winning move (or max_coordinate_rounds).
//
// measure(plan) must return the mean iteration time under that layout. All measurements
// are memoized by the searched variables' counts, so revisited plans cost nothing. The
// procedure is deterministic: same inputs, same plan.
PartitionPlanSearchResult SearchPartitionPlan(
    const std::function<double(const PartitionPlan&)>& measure,
    const std::vector<PartitionSearchVariable>& variables,
    const PartitionSearchOptions& options);

// Batched variant — the parallel-candidate entry point. Inside each
// independent-candidate stage (the uniform sweep, each coordinate sweep, each
// placement round's swap trials), candidates are simulated speculatively through
// `measure_batch` into the memo table in waves sized by options.concurrency (fill it
// in when supplying a measure_batch); the UNMODIFIED serial adoption logic then runs
// in canonical order over memo hits. Search trajectory, tie-breaks, `evaluations`,
// and the full result trail are therefore bit-identical to the serial search at any
// worker count — `measure_batch` only changes wall-clock and fills in `result.batch`,
// whose speculative_waste is bounded per wave by the worker count. A null
// measure_batch degrades to the serial search.
PartitionPlanSearchResult SearchPartitionPlan(
    const std::function<double(const PartitionPlan&)>& measure,
    const PlanBatchMeasure& measure_batch,
    const std::vector<PartitionSearchVariable>& variables,
    const PartitionSearchOptions& options);

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_COST_MODEL_H_
