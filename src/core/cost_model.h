// The sparse-variable partitioning cost model and sampling search (paper section 3.2).
//
// Equation 1:   iter_time(P) = theta0 + theta1 * (1/P) + theta2 * P
//
//   theta0 — fixed computation/communication independent of the partition count,
//   theta1 — the cost partitioning parallelizes/amortizes (accumulator serialization),
//   theta2 — per-partition overhead (stitching, per-piece bookkeeping, extra requests).
//
// The search replicates the paper's procedure: start at P = number of machines, measure a
// short real run (first half discarded as warmup), double P until iteration time starts
// to increase, then halve from the start point until it increases again. The model is a
// convex function of P, so the sampled interval brackets the optimum and the fit never
// extrapolates. The fitted optimum is then snapped to the best predicted integer.
#ifndef PARALLAX_SRC_CORE_COST_MODEL_H_
#define PARALLAX_SRC_CORE_COST_MODEL_H_

#include <functional>
#include <utility>
#include <vector>

namespace parallax {

struct CostModelFit {
  double theta0 = 0.0;
  double theta1 = 0.0;
  double theta2 = 0.0;
  double rmse = 0.0;
  bool ok = false;

  double Predict(double partitions) const {
    return theta0 + theta1 / partitions + theta2 * partitions;
  }
  // Unconstrained continuous minimizer sqrt(theta1/theta2); 1 when degenerate.
  double ContinuousOptimum() const;
};

// Least-squares fit of Equation 1 to (partition count, iteration seconds) samples.
CostModelFit FitCostModel(const std::vector<std::pair<int, double>>& samples);

struct PartitionSearchOptions {
  // Initial sample point; the paper uses the number of machines.
  int initial_partitions = 8;
  int min_partitions = 1;
  int max_partitions = 4096;
  // Iterations per sampling run; the paper runs 100 and discards the first 50.
  int warmup_iterations = 50;
  int measured_iterations = 50;
};

struct PartitionSearchResult {
  int best_partitions = 1;
  CostModelFit fit;
  // Every sampling run performed: (P, measured mean iteration seconds).
  std::vector<std::pair<int, double>> samples;
  double predicted_seconds = 0.0;
};

// measure(P) must return the mean iteration time at P partitions (the caller decides how:
// simulated training for the benches, or any user-supplied profiler).
PartitionSearchResult SearchPartitions(const std::function<double(int)>& measure,
                                       const PartitionSearchOptions& options);

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_COST_MODEL_H_
