#include "src/core/analysis.h"

namespace parallax {

std::unordered_map<int, VariableSparsity> AnalyzeSparsity(const Graph& graph, NodeId loss,
                                                          std::span<const StepResult> samples) {
  std::unordered_map<int, GradKind> kinds = graph.AnalyzeGradientKinds(loss);
  std::unordered_map<int, VariableSparsity> result;
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    const VariableDef& def = graph.variables()[v];
    VariableSparsity info;
    info.kind = kinds[static_cast<int>(v)];
    info.num_elements = def.shape.num_elements();
    info.row_elements = def.shape.rank() >= 1 ? def.shape.row_elements() : 1;
    if (info.kind == GradKind::kSparse) {
      double alpha_sum = 0.0;
      int alpha_count = 0;
      for (const StepResult& step : samples) {
        auto it = step.grads.find(static_cast<int>(v));
        if (it != step.grads.end() && it->second.is_sparse()) {
          alpha_sum += it->second.sparse().AccessRatio();
          ++alpha_count;
        }
      }
      info.alpha = alpha_count > 0 ? alpha_sum / alpha_count : 1.0;
    }
    result[static_cast<int>(v)] = info;
  }
  return result;
}

std::vector<VariableSpec> ToVariableSpecs(
    const Graph& graph, const std::unordered_map<int, VariableSparsity>& info) {
  std::vector<VariableSpec> specs;
  specs.reserve(graph.variables().size());
  for (size_t v = 0; v < graph.variables().size(); ++v) {
    const VariableDef& def = graph.variables()[v];
    const VariableSparsity& sparsity = info.at(static_cast<int>(v));
    VariableSpec spec;
    spec.name = def.name;
    spec.num_elements = sparsity.num_elements;
    spec.row_elements = sparsity.row_elements;
    spec.is_sparse = sparsity.kind == GradKind::kSparse;
    spec.alpha = spec.is_sparse ? sparsity.alpha : 1.0;
    specs.push_back(std::move(spec));
  }
  return specs;
}

SyncMethod DecideSyncMethod(const VariableSparsity& info, const HybridOptions& options) {
  if (info.kind != GradKind::kSparse) {
    return SyncMethod::kArAllReduce;
  }
  if (info.alpha >= options.alpha_dense_threshold) {
    return SyncMethod::kArAllReduce;
  }
  return SyncMethod::kPs;
}

std::vector<VariableSync> AssignGraphVariables(
    const Graph& graph, const std::unordered_map<int, VariableSparsity>& info,
    const HybridOptions& options, const PartitionPlan& plan) {
  std::vector<VariableSpec> specs = ToVariableSpecs(graph, info);
  std::vector<VariableSync> assignment;
  assignment.reserve(specs.size());
  for (size_t v = 0; v < specs.size(); ++v) {
    VariableSync sync;
    sync.spec = specs[v];
    sync.method = DecideSyncMethod(info.at(static_cast<int>(v)), options);
    if (sync.method == SyncMethod::kPs && graph.variables()[v].partitioner_scope) {
      int64_t rows = graph.variables()[v].shape.rank() >= 1
                         ? graph.variables()[v].shape.dim(0)
                         : 1;
      sync.partitions = RowCappedPartitions(plan.For(sync.spec.name), rows);
      // Placement rides along only when its length survives the row cap (same gate as
      // GraphRunner::VariablesWithPartitions — the two appliers must agree).
      const std::vector<int>* placement = plan.PlacementFor(sync.spec.name);
      if (placement != nullptr &&
          static_cast<int>(placement->size()) == sync.partitions) {
        sync.placement = *placement;
      }
    }
    assignment.push_back(std::move(sync));
  }
  return assignment;
}

std::vector<VariableSync> AssignGraphVariables(
    const Graph& graph, const std::unordered_map<int, VariableSparsity>& info,
    const HybridOptions& options, int sparse_partitions) {
  return AssignGraphVariables(graph, info, options,
                              PartitionPlan::Uniform(std::max(sparse_partitions, 1)));
}

}  // namespace parallax
