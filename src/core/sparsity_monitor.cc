#include "src/core/sparsity_monitor.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace parallax {

SparsityMonitor::SparsityMonitor(AdaptivePartitioningPolicy policy) : policy_(policy) {
  PX_CHECK_GT(policy_.ewma_decay, 0.0);
  PX_CHECK_LE(policy_.ewma_decay, 1.0);
  PX_CHECK_GE(policy_.drift_threshold, 0.0);
  PX_CHECK_GE(policy_.hysteresis, 0.0);
  PX_CHECK_GE(policy_.warmup_steps, 0);
  PX_CHECK_GE(policy_.check_interval, 1);
  PX_CHECK_GE(policy_.cooldown_steps, 0);
}

void SparsityMonitor::Track(int variable, int64_t rows, double baseline_alpha) {
  PX_CHECK_GE(variable, 0);
  PX_CHECK_GE(rows, 1);
  PX_CHECK(SlotOf(variable) < 0) << "variable " << variable << " tracked twice";
  TrackedVariable tracked;
  tracked.variable = variable;
  tracked.rows = rows;
  tracked.baseline = baseline_alpha;
  tracked.ewma = baseline_alpha;
  tracked.rank_ewma = baseline_alpha;
  vars_.push_back(tracked);
}

int SparsityMonitor::SlotOf(int variable) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].variable == variable) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void SparsityMonitor::ObserveSparseStep(int variable, int64_t unique_rows,
                                        int contributions) {
  const int slot = SlotOf(variable);
  if (slot < 0) {
    return;  // not a monitored variable (e.g. dense, or AR-routed)
  }
  TrackedVariable& tracked = vars_[static_cast<size_t>(slot)];
  const double union_ratio =
      std::min(1.0, static_cast<double>(unique_rows) / static_cast<double>(tracked.rows));
  // contributions == 1: a per-worker gradient, the access ratio directly. k > 1: the
  // union over k workers; invert u = 1 - (1-a)^k under the independent-access model
  // (model_spec.h's UnionAlpha). The inversion is exact when workers draw rows
  // independently and biases low when they share hot rows — conservative for drift
  // detection, since correlated access keeps the union (and the estimate) stable.
  const double estimate = contributions <= 1
                              ? union_ratio
                              : 1.0 - std::pow(1.0 - union_ratio,
                                               1.0 / static_cast<double>(contributions));
  tracked.pending_sum += estimate;
  ++tracked.pending_count;
  // A single-contribution observation IS one worker's sample: feed the inversion-free
  // rank estimator too (engines skip the explicit per-rank tap in that case).
  if (contributions <= 1) {
    tracked.rank_pending_sum += union_ratio;
    ++tracked.rank_pending_count;
  }
}

void SparsityMonitor::ObserveRankAccess(int variable, int64_t unique_rows) {
  const int slot = SlotOf(variable);
  if (slot < 0) {
    return;
  }
  TrackedVariable& tracked = vars_[static_cast<size_t>(slot)];
  tracked.rank_pending_sum += std::min(
      1.0, static_cast<double>(unique_rows) / static_cast<double>(tracked.rows));
  ++tracked.rank_pending_count;
}

void SparsityMonitor::EndStep() {
  for (TrackedVariable& tracked : vars_) {
    if (tracked.pending_count > 0) {
      const double step_alpha =
          tracked.pending_sum / static_cast<double>(tracked.pending_count);
      tracked.ewma = (1.0 - policy_.ewma_decay) * tracked.ewma +
                     policy_.ewma_decay * step_alpha;
      tracked.pending_sum = 0.0;
      tracked.pending_count = 0;
    }
    if (tracked.rank_pending_count > 0) {
      const double step_alpha =
          tracked.rank_pending_sum / static_cast<double>(tracked.rank_pending_count);
      // Same decay, separate stream: the first rank sample re-seeds the estimator so
      // it never has to forget a baseline it was only parked at.
      tracked.rank_ewma = tracked.any_rank_sample
                              ? (1.0 - policy_.ewma_decay) * tracked.rank_ewma +
                                    policy_.ewma_decay * step_alpha
                              : step_alpha;
      tracked.any_rank_sample = true;
      tracked.rank_pending_sum = 0.0;
      tracked.rank_pending_count = 0;
    }
  }
  ++steps_;
  // Self-calibration at the end of warmup: drift is measured against the estimator's
  // own settled value, never against the (differently biased) startup sample.
  if (!calibrated_ && steps_ >= std::max<int64_t>(policy_.warmup_steps, 1)) {
    for (TrackedVariable& tracked : vars_) {
      tracked.baseline = tracked.ewma;
    }
    calibrated_ = true;
  }
}

bool SparsityMonitor::DriftCheckDue() const {
  if (vars_.empty() || !calibrated_ || steps_ < policy_.warmup_steps) {
    return false;
  }
  if (steps_ - last_check_step_ < policy_.check_interval) {
    return false;
  }
  if (any_verdict_ && steps_ - last_verdict_step_ < policy_.cooldown_steps) {
    return false;
  }
  return true;
}

void SparsityMonitor::NoteCheck() { last_check_step_ = steps_; }

void SparsityMonitor::RecordVerdict(const AdaptationVerdict& verdict) {
  trail_.push_back(verdict);
  last_check_step_ = steps_;
  last_verdict_step_ = steps_;
  any_verdict_ = true;
  // Re-anchor: the plan now describes the measured state (the runner refreshed its
  // alphas), so future drift is deviation from *this* point. Without the re-anchor a
  // below-hysteresis improvement would re-trigger the search every check_interval.
  for (TrackedVariable& tracked : vars_) {
    tracked.baseline = tracked.ewma;
  }
}

void SparsityMonitor::NoteMembershipChange() {
  // A rescale is drift by another name: the layout was just re-searched against the
  // new topology, so the measured state becomes the new baseline and the cooldown
  // starts — otherwise the next check would re-litigate the rescale's own re-search.
  last_check_step_ = steps_;
  last_verdict_step_ = steps_;
  any_verdict_ = true;
  for (TrackedVariable& tracked : vars_) {
    tracked.baseline = tracked.ewma;
  }
}

double SparsityMonitor::MaxRelativeDrift(int* argmax_variable) const {
  double max_drift = -1.0;
  for (const TrackedVariable& tracked : vars_) {
    // Guard against a zero baseline (a variable no sampled step ever touched): any
    // observed access then counts as full drift.
    const double denom = std::max(tracked.baseline, 1e-12);
    const double drift = std::abs(tracked.ewma - tracked.baseline) / denom;
    if (drift > max_drift) {
      max_drift = drift;
      if (argmax_variable != nullptr) {
        *argmax_variable = tracked.variable;
      }
    }
  }
  return std::max(max_drift, 0.0);
}

std::vector<int> SparsityMonitor::tracked() const {
  std::vector<int> variables;
  variables.reserve(vars_.size());
  for (const TrackedVariable& tracked : vars_) {
    variables.push_back(tracked.variable);
  }
  return variables;
}

double SparsityMonitor::measured_alpha(int variable) const {
  const int slot = SlotOf(variable);
  PX_CHECK_GE(slot, 0) << "variable " << variable << " is not monitored";
  return vars_[static_cast<size_t>(slot)].ewma;
}

double SparsityMonitor::plan_alpha(int variable) const {
  const int slot = SlotOf(variable);
  PX_CHECK_GE(slot, 0) << "variable " << variable << " is not monitored";
  const TrackedVariable& tracked = vars_[static_cast<size_t>(slot)];
  return tracked.any_rank_sample ? tracked.rank_ewma : tracked.ewma;
}

double SparsityMonitor::baseline_alpha(int variable) const {
  const int slot = SlotOf(variable);
  PX_CHECK_GE(slot, 0) << "variable " << variable << " is not monitored";
  return vars_[static_cast<size_t>(slot)].baseline;
}

int SparsityMonitor::repartition_count() const {
  int count = 0;
  for (const AdaptationVerdict& verdict : trail_) {
    count += verdict.adopted ? 1 : 0;
  }
  return count;
}

}  // namespace parallax
