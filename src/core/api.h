// The Parallax session API.
//
// RunnerBuilder is the front door: name the resources, optionally route variables to
// synchronization engines by name pattern, tune the search, Build().
//
//   Graph graph;
//   auto ids = graph.Placeholder("ids", DataType::kInt64);
//   {
//     PartitionerScope partitioner(graph);               // parallax.partitioner()
//     emb = graph.Variable("embedding", init);
//   }
//   ... build loss ...
//   auto runner = RunnerBuilder(&graph, loss)
//                     .WithResources("m0:0,1;m1:0,1")
//                     .WithEngine("emb*", "ps")          // optional per-variable routing
//                     .WithLearningRate(0.5f)
//                     .Build();
//   for (...) runner.value()->Step(ShardFeeds(...));
//
// GetRunner — the paper's 3-call get_runner (Figure 3) — remains as a thin
// compatibility shim over the builder: GetRunner(graph, loss, resource_info, config)
// is WithConfig(config) + WithResources(resource_info) + Build().
//
// Data sharding (parallax.shard) lives with the dataset types in src/data/dataset.h.
// PartitionerScope (the parallax.partitioner() context) is defined alongside Graph in
// src/graph/graph.h: it is part of graph *construction*, which is why user code that
// only builds models does not need the runner layers.
#ifndef PARALLAX_SRC_CORE_API_H_
#define PARALLAX_SRC_CORE_API_H_

#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/core/runner.h"

namespace parallax {

// Builder-style session construction. Every With* returns *this for chaining; Build()
// validates (resources present and homogeneous, engine names registered) and returns
// the runner or the first error.
class RunnerBuilder {
 public:
  RunnerBuilder(const Graph* graph, NodeId loss);

  // Resource-info string, "host:gpu,gpu;host:gpu,gpu" (the paper's resource_info_file).
  RunnerBuilder& WithResources(const std::string& resource_info);
  RunnerBuilder& WithResources(ResourceSpec resources);

  // Routes variables whose name matches `variable_pattern` (GlobMatch: '*'/'?') to the
  // engine registered under `engine` ("ps", "ar", "async_ps", or anything registered in
  // SyncEngineRegistry). Later calls win on overlap; unmatched variables follow the
  // hybrid rule.
  RunnerBuilder& WithEngine(const std::string& variable_pattern, const std::string& engine);

  // Partition search options (auto partitioning stays on). Search-mode selection is
  // orthogonal: WithSearchMode picks uniform (one shared P, the default) vs
  // per-variable (a PartitionPlan via coordinate descent at each variable's measured
  // alpha). WithSearch alone keeps the uniform mode — it is an exact shim for the
  // historical behavior.
  RunnerBuilder& WithSearch(const PartitionSearchOptions& search);
  RunnerBuilder& WithSearchMode(PartitionSearchMode mode);
  // Per-variable mode only: also search each variable's shard *placement* against the
  // cluster topology (WithHardware's TopologySpec) — greedy bottleneck-utilization
  // seeding plus simulated-clock swap refinement; the adopted plan carries the chosen
  // servers and the PS engines pin their shards accordingly. Off by default.
  RunnerBuilder& WithPlacementSearch(bool enabled = true);
  // Parallel candidate evaluation inside every search this runner performs (startup,
  // adaptive re-search, rescale): candidate layouts are simulated concurrently on
  // `pool`, one pooled arena per worker, and the serial adoption logic replays over
  // the results — the adopted plan and full search trail are bit-identical to the
  // serial search at any pool size (cost_model.h). max_workers caps the fan-out
  // (0 = every pool lane). The pool must outlive the runner; a null pool restores
  // the serial search.
  RunnerBuilder& WithSearchConcurrency(ThreadPool* pool, int max_workers = 0);
  // Fixed partition count; disables the automatic search.
  RunnerBuilder& WithManualPartitions(int partitions);
  // Fixed per-variable layout; disables the automatic search. The plan's count for
  // each partitioner-scoped PS variable is applied row-capped; variables the plan does
  // not name get its default count. WithManualPartitions(p) is exactly
  // WithPartitionPlan(PartitionPlan::Uniform(p)).
  RunnerBuilder& WithPartitionPlan(PartitionPlan plan);

  // Closes the sparsity loop: the runner monitors each sparse PS variable's measured
  // alpha (EWMA over the nnz the aggregation path observes), re-runs the partition
  // search — uniform or per-variable, per WithSearchMode — when the measurement drifts
  // past the policy threshold, and swaps the partition layout mid-training
  // (GraphRunner::Repartition) when the simulated iteration time improves by more than
  // the hysteresis margin and the win amortizes the layout migration's cost within the
  // cooldown window. Decision trail and measured alphas:
  // GraphRunner::sparsity_monitor(). See docs/adaptivity.md.
  RunnerBuilder& WithAdaptivePartitioning(AdaptivePartitioningPolicy policy = {});

  // Periodic checkpointing (docs/elasticity.md): every `interval_steps` applied steps
  // the runner writes the full variable state + training clock to `path`
  // (interval_steps == 0: on-demand GraphRunner::Checkpoint() only). A dead run
  // resumes via a fresh runner + RestoreFrom(path) and replays at most interval_steps
  // steps, bit-for-bit. Writes/reads charge the file's bytes over `disk_bandwidth`
  // to the *simulated* clock; the numerics are untouched.
  RunnerBuilder& WithCheckpoint(std::string path, int interval_steps,
                                double disk_bandwidth = 2e9);

  // Routes this session's partition searches (startup, adaptive re-search, rescale)
  // through a shared PlannerService: identical queries across sessions hit its plan
  // cache or coalesce onto one in-flight search instead of simulating again. Pass the
  // same service to every session of a multi-tenant process (docs/planner_service.md).
  // Unset keeps the private-arena search — the default and the bit-for-bit oracle.
  RunnerBuilder& WithPlanner(std::shared_ptr<PlannerService> planner);

  RunnerBuilder& WithLearningRate(float learning_rate);
  RunnerBuilder& WithLocalAggregation(bool enabled);
  RunnerBuilder& WithAggregation(AggregationMethod dense, AggregationMethod sparse);
  RunnerBuilder& WithAlphaThreshold(double alpha_dense_threshold);
  RunnerBuilder& WithHardware(const ClusterSpec& hardware);
  // Calibration constants of the timing plane (server-side accumulation/update rates,
  // per-partition overheads, ...) — the knobs that decide where Equation 1's optimum
  // sits for a given workload.
  RunnerBuilder& WithSyncCosts(const SyncCostParams& costs);
  RunnerBuilder& WithCompute(double gpu_compute_seconds, int compute_chunks);
  RunnerBuilder& WithSparseFusion(bool fuse);

  // Replaces every knob with `config` (engine overrides included) — the bridge the
  // GetRunner shim rides on. With* calls after this refine the replaced config.
  RunnerBuilder& WithConfig(ParallaxConfig config);

  StatusOr<std::unique_ptr<GraphRunner>> Build() const;

 private:
  const Graph* graph_;
  NodeId loss_;
  bool has_resources_ = false;
  ResourceSpec resources_;
  Status resources_status_ = Status::Ok();
  ParallaxConfig config_;
};

// Compatibility shim for the paper's 3-call API: builds a runner from a resource-info
// string and a monolithic ParallaxConfig via RunnerBuilder.
StatusOr<std::unique_ptr<GraphRunner>> GetRunner(const Graph* graph, NodeId loss,
                                                 const std::string& resource_info,
                                                 ParallaxConfig config = {});

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_API_H_
