// The 3-call Parallax user API (paper Figure 3): shard the input data, scope variables
// under a partitioner, and get a runner for the single-GPU graph.
//
//   Graph graph;
//   auto ids = graph.Placeholder("ids", DataType::kInt64);
//   {
//     PartitionerScope partitioner(graph);               // parallax.partitioner()
//     emb = graph.Variable("embedding", init);
//   }
//   ... build loss ...
//   auto runner = GetRunner(&graph, loss, "m0:0,1;m1:0,1", config);   // get_runner
//   for (...) runner.value()->Step(ShardFeeds(...));                  // run(train_op)
//
// Data sharding (parallax.shard) lives with the dataset types in src/data/dataset.h.
#ifndef PARALLAX_SRC_CORE_API_H_
#define PARALLAX_SRC_CORE_API_H_

#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/core/runner.h"

namespace parallax {

// PartitionerScope (the parallax.partitioner() context) is defined alongside Graph in
// src/graph/graph.h and re-exported here: it is part of graph *construction*, which is
// why user code that only builds models does not need the runner layers.

// Builds a runner from a resource-info string ("host:gpu,gpu;host:gpu,gpu").
StatusOr<std::unique_ptr<GraphRunner>> GetRunner(const Graph* graph, NodeId loss,
                                                 const std::string& resource_info,
                                                 ParallaxConfig config = {});

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_API_H_
