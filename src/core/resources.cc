#include "src/core/resources.h"

#include "src/base/strings.h"

namespace parallax {

ResourceSpec ResourceSpec::Homogeneous(int num_machines, int gpus_per_machine) {
  ResourceSpec spec;
  for (int m = 0; m < num_machines; ++m) {
    MachineInfo machine;
    machine.hostname = StrFormat("machine-%d", m);
    for (int g = 0; g < gpus_per_machine; ++g) {
      machine.gpu_ids.push_back(g);
    }
    spec.machines.push_back(std::move(machine));
  }
  return spec;
}

int ResourceSpec::total_gpus() const {
  int total = 0;
  for (const MachineInfo& machine : machines) {
    total += static_cast<int>(machine.gpu_ids.size());
  }
  return total;
}

bool ResourceSpec::IsHomogeneous() const {
  if (machines.empty()) {
    return false;
  }
  size_t first = machines.front().gpu_ids.size();
  for (const MachineInfo& machine : machines) {
    if (machine.gpu_ids.size() != first) {
      return false;
    }
  }
  return true;
}

ClusterSpec ResourceSpec::ToClusterSpec(const ClusterSpec& base) const {
  PX_CHECK(IsHomogeneous()) << "heterogeneous GPU counts per machine are unsupported";
  ClusterSpec spec = base;
  spec.num_machines = num_machines();
  spec.gpus_per_machine = static_cast<int>(machines.front().gpu_ids.size());
  // A rack layout the machine count cannot fill collapses to the flat fabric instead
  // of tripping the Topology invariant — the base spec's racks describe the hardware
  // template, not necessarily this job's machine subset.
  if (spec.topology.num_racks > 1 &&
      spec.num_machines % spec.topology.num_racks != 0) {
    spec.topology.num_racks = 1;
  }
  return spec;
}

StatusOr<ResourceSpec> ParseResourceSpec(const std::string& text) {
  ResourceSpec spec;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      continue;
    }
    size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("machine entry missing ':' — " + entry);
    }
    MachineInfo machine;
    machine.hostname = entry.substr(0, colon);
    if (machine.hostname.empty()) {
      return Status::InvalidArgument("empty hostname in resource spec");
    }
    std::string ids = entry.substr(colon + 1);
    size_t id_pos = 0;
    while (id_pos < ids.size()) {
      size_t comma = ids.find(',', id_pos);
      if (comma == std::string::npos) {
        comma = ids.size();
      }
      std::string id_text = ids.substr(id_pos, comma - id_pos);
      id_pos = comma + 1;
      if (id_text.empty()) {
        return Status::InvalidArgument("empty GPU id in resource spec");
      }
      for (char c : id_text) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("malformed GPU id: " + id_text);
        }
      }
      machine.gpu_ids.push_back(std::atoi(id_text.c_str()));
    }
    if (machine.gpu_ids.empty()) {
      return Status::InvalidArgument("machine with no GPUs: " + machine.hostname);
    }
    spec.machines.push_back(std::move(machine));
  }
  if (spec.machines.empty()) {
    return Status::InvalidArgument("resource spec names no machines");
  }
  return spec;
}

}  // namespace parallax
