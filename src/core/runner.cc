#include "src/core/runner.h"

#include "src/base/strings.h"

namespace parallax {

GraphRunner::GraphRunner(const Graph* graph, NodeId loss, const ResourceSpec& resources,
                         ParallaxConfig config)
    : graph_(graph),
      loss_(loss),
      resources_(resources),
      config_(std::move(config)),
      executor_(graph) {
  PX_CHECK(graph != nullptr);
  PX_CHECK(resources_.IsHomogeneous())
      << "every machine must contribute the same number of GPUs";
}

void GraphRunner::InitializeFromSamples(const std::vector<FeedMap>& per_rank_feeds) {
  // 1. Sample backward passes on the initial values to classify variables and measure
  //    alpha (section 5: gradient type identifies sparsity).
  VariableStore initial = VariableStore::InitFrom(*graph_);
  std::vector<StepResult> samples;
  size_t sample_count = std::min<size_t>(per_rank_feeds.size(), 4);
  samples.reserve(sample_count);
  for (size_t r = 0; r < sample_count; ++r) {
    samples.push_back(executor_.RunStep(initial, per_rank_feeds[r], loss_));
  }
  auto sparsity = AnalyzeSparsity(*graph_, loss_, samples);

  ClusterSpec cluster_spec = resources_.ToClusterSpec(config_.hardware);
  HybridOptions hybrid{config_.alpha_dense_threshold};

  // 2. Partition search over the simulated training loop (section 3.2). The measure
  //    function runs short training at candidate P; Equation 1 is fitted over the
  //    samples and the best predicted P is adopted.
  bool has_partitioned_sparse = false;
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    if (graph_->variables()[v].partitioner_scope &&
        sparsity.at(static_cast<int>(v)).kind == GradKind::kSparse) {
      has_partitioned_sparse = true;
    }
  }
  chosen_partitions_ = config_.manual_partitions;
  sim_arena_ = std::make_unique<SimulationArena>();
  if (config_.auto_partition && has_partitioned_sparse) {
    PartitionSearchOptions search = config_.search;
    search.initial_partitions = cluster_spec.num_machines;
    IterationSimConfig sim_config;
    sim_config.ps_local_aggregation = config_.local_aggregation;
    sim_config.ps_machine_level_pulls = config_.local_aggregation;
    sim_config.costs = config_.costs;
    // Every sampled P gets a fresh simulator over the shared arena: task storage and
    // cached collective schedules persist across the whole search, so the thousands of
    // simulated iterations behind SearchPartitions run allocation-free in steady state.
    auto measure = [&](int partitions) {
      std::vector<VariableSync> candidate =
          AssignGraphVariables(*graph_, sparsity, hybrid, partitions);
      IterationSimulator sim(cluster_spec, candidate, config_.gpu_compute_seconds,
                             config_.compute_chunks, sim_config, sim_arena_.get());
      return sim.MeasureIterationSeconds(search.warmup_iterations,
                                         search.measured_iterations);
    };
    search_result_ = SearchPartitions(measure, search);
    chosen_partitions_ = search_result_->best_partitions;
    PX_LOG(Info) << "partition search: P=" << chosen_partitions_ << " after "
                 << search_result_->samples.size() << " sampling runs";
  }

  // 3.+4. Final assignment and graph transformation.
  assignment_ = AssignGraphVariables(*graph_, sparsity, hybrid, chosen_partitions_);
  distributed_graph_.emplace(
      TransformGraph(*graph_, assignment_, resources_, config_.local_aggregation));

  // 5. Numeric engines for the two variable families.
  std::vector<int> ps_vars;
  std::vector<int> ar_vars;
  for (size_t v = 0; v < assignment_.size(); ++v) {
    (assignment_[v].method == SyncMethod::kPs ? ps_vars : ar_vars)
        .push_back(static_cast<int>(v));
  }
  PsNumericConfig ps_config;
  ps_config.sparse_partitions = chosen_partitions_;
  ps_config.local_aggregation = config_.local_aggregation;
  ps_config.dense_aggregation = config_.dense_aggregation;
  ps_config.sparse_aggregation = config_.sparse_aggregation;
  ps_config.ranks_per_machine = cluster_spec.gpus_per_machine;
  ps_config.managed_variables = ps_vars;
  ps_engine_ = std::make_unique<PsNumericEngine>(graph_, ps_config);

  ArNumericConfig ar_config;
  ar_config.dense_aggregation = config_.dense_aggregation;
  ar_config.sparse_aggregation = config_.sparse_aggregation;
  ar_config.managed_variables = ar_vars;
  ar_engine_ = std::make_unique<ArNumericEngine>(graph_, num_ranks(), ar_config);

  // Timing plane for this training job.
  IterationSimConfig sim_config;
  sim_config.ps_local_aggregation = config_.local_aggregation;
  sim_config.ps_machine_level_pulls = config_.local_aggregation;
  sim_config.costs = config_.costs;
  timing_ = std::make_unique<IterationSimulator>(cluster_spec, assignment_,
                                                 config_.gpu_compute_seconds,
                                                 config_.compute_chunks, sim_config,
                                                 sim_arena_.get());
  cluster_ = std::make_unique<Cluster>(cluster_spec);
  initialized_ = true;
}

float GraphRunner::Step(const std::vector<FeedMap>& per_rank_feeds) {
  PX_CHECK_EQ(static_cast<int>(per_rank_feeds.size()), num_ranks())
      << "one feed shard per GPU replica";
  if (!initialized_) {
    InitializeFromSamples(per_rank_feeds);
  }

  // Every replica computes on its shard against its current view.
  VariableStore ps_values = ps_engine_->CurrentValues();
  std::vector<StepResult> per_rank;
  per_rank.reserve(per_rank_feeds.size());
  float loss_sum = 0.0f;
  for (int r = 0; r < num_ranks(); ++r) {
    VariableStore view = ar_engine_->replica(r).Clone();
    for (size_t v = 0; v < assignment_.size(); ++v) {
      if (assignment_[v].method == SyncMethod::kPs) {
        view.Set(static_cast<int>(v), ps_values.Get(static_cast<int>(v)));
      }
    }
    StepResult result =
        executor_.RunStep(view, per_rank_feeds[static_cast<size_t>(r)], loss_);
    loss_sum += result.loss;
    per_rank.push_back(std::move(result));
  }

  // Synchronize: sparse through the PS engine, dense through AR.
  ps_engine_->ApplyStep(per_rank, config_.learning_rate);
  ar_engine_->ApplyStep(per_rank, config_.learning_rate);

  // Advance the simulated clock by this iteration's makespan.
  simulated_seconds_ = timing_->SimulateIteration(*cluster_, simulated_seconds_);
  ++iterations_;
  return loss_sum / static_cast<float>(num_ranks());
}

Tensor GraphRunner::Evaluate(const FeedMap& feeds, NodeId fetch) {
  PX_CHECK(initialized_) << "Evaluate before the first Step";
  return executor_.RunForward(WorkerView(), feeds, fetch);
}

const std::vector<VariableSync>& GraphRunner::assignment() const {
  PX_CHECK(initialized_);
  return assignment_;
}

const DistributedGraph& GraphRunner::distributed_graph() const {
  PX_CHECK(initialized_);
  return *distributed_graph_;
}

VariableStore GraphRunner::WorkerView() const {
  PX_CHECK(initialized_);
  VariableStore view = ar_engine_->replica(0).Clone();
  VariableStore ps_values = ps_engine_->CurrentValues();
  for (size_t v = 0; v < assignment_.size(); ++v) {
    if (assignment_[v].method == SyncMethod::kPs) {
      view.Set(static_cast<int>(v), ps_values.Get(static_cast<int>(v)));
    }
  }
  return view;
}

}  // namespace parallax
