#include "src/core/runner.h"

#include <algorithm>

#include "src/base/strings.h"

namespace parallax {

GraphRunner::GraphRunner(const Graph* graph, NodeId loss, const ResourceSpec& resources,
                         ParallaxConfig config)
    : graph_(graph),
      loss_(loss),
      resources_(resources),
      config_(std::move(config)),
      executor_(graph) {
  PX_CHECK(graph != nullptr);
  PX_CHECK(resources_.IsHomogeneous())
      << "every machine must contribute the same number of GPUs";
  for (const EngineOverride& override : config_.engine_overrides) {
    PX_CHECK(SyncEngineRegistry::Global().Contains(override.engine))
        << "unknown sync engine '" << override.engine << "' (registered: "
        << Join(SyncEngineRegistry::Global().Names(), ", ") << ")";
  }
}

void GraphRunner::InitializeFromSamples(const std::vector<FeedMap>& per_rank_feeds) {
  // 1. Sample backward passes on the initial values to classify variables and measure
  //    alpha (section 5: gradient type identifies sparsity).
  VariableStore initial = VariableStore::InitFrom(*graph_);
  std::vector<StepResult> samples;
  size_t sample_count = std::min<size_t>(per_rank_feeds.size(), 4);
  samples.reserve(sample_count);
  for (size_t r = 0; r < sample_count; ++r) {
    samples.push_back(executor_.RunStep(initial, per_rank_feeds[r], loss_, &exec_scratch_));
  }
  sparsity_ = AnalyzeSparsity(*graph_, loss_, samples);

  cluster_spec_ = resources_.ToClusterSpec(config_.hardware);
  HybridOptions hybrid{config_.alpha_dense_threshold};

  // 2. Partition search over the simulated training loop (section 3.2). The measure
  //    function runs short training at candidate P; Equation 1 is fitted over the
  //    samples and the best predicted P is adopted.
  bool has_partitioned_sparse = false;
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    if (graph_->variables()[v].partitioner_scope &&
        sparsity_.at(static_cast<int>(v)).kind == GradKind::kSparse) {
      has_partitioned_sparse = true;
    }
  }
  chosen_partitions_ = config_.manual_partitions;
  sim_arena_ = std::make_unique<SimulationArena>();
  if (config_.auto_partition && has_partitioned_sparse) {
    PartitionSearchOptions search = config_.search;
    search.initial_partitions = cluster_spec_.num_machines;
    IterationSimConfig sim_config = MakeSimConfig();
    // Every sampled P gets a fresh simulator over the shared arena: task storage and
    // cached collective schedules persist across the whole search, so the thousands of
    // simulated iterations behind SearchPartitions run allocation-free in steady state.
    auto measure = [&](int partitions) {
      std::vector<VariableSync> candidate =
          AssignGraphVariables(*graph_, sparsity_, hybrid, partitions);
      IterationSimulator sim(cluster_spec_, candidate, config_.gpu_compute_seconds,
                             config_.compute_chunks, sim_config, sim_arena_.get());
      return sim.MeasureIterationSeconds(search.warmup_iterations,
                                         search.measured_iterations);
    };
    search_result_ = SearchPartitions(measure, search);
    chosen_partitions_ = search_result_->best_partitions;
    PX_LOG(Info) << "partition search: P=" << chosen_partitions_ << " after "
                 << search_result_->samples.size() << " sampling runs";
  }

  // 3. The SyncPlan: hybrid assignment, then per-variable engine routing. Unmatched
  //    variables follow the hybrid rule; overrides route by name pattern, with the
  //    engine's cost hook supplying the timing-plane method.
  plan_.variables = AssignGraphVariables(*graph_, sparsity_, hybrid, chosen_partitions_);
  plan_.engines.assign(plan_.variables.size(), std::string());
  plan_.num_ranks = num_ranks();
  plan_.ranks_per_machine = cluster_spec_.gpus_per_machine;
  plan_.sparse_partitions = chosen_partitions_;
  plan_.local_aggregation = config_.local_aggregation;
  plan_.fuse_sparse_variables = config_.fuse_sparse_variables;
  plan_.dense_aggregation = config_.dense_aggregation;
  plan_.sparse_aggregation = config_.sparse_aggregation;
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    plan_.engines[v] = plan_.variables[v].method == SyncMethod::kPs ? "ps" : "ar";
    for (const EngineOverride& override : config_.engine_overrides) {
      if (GlobMatch(plan_.variables[v].spec.name, override.pattern)) {
        plan_.engines[v] = override.engine;
      }
    }
  }

  // Instantiate one engine per distinct name, in order of first appearance, and let
  // each engine's cost hook fix the timing-plane method of the variables it received
  // through an override.
  SyncEngineEnv env{graph_, num_ranks()};
  engines_.clear();
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    int index = -1;
    for (size_t e = 0; e < engines_.size(); ++e) {
      if (engines_[e]->name() == plan_.engines[v]) {
        index = static_cast<int>(e);
        break;
      }
    }
    if (index < 0) {
      std::unique_ptr<SyncEngine> engine =
          SyncEngineRegistry::Global().Create(plan_.engines[v], env);
      PX_CHECK(engine != nullptr) << "unknown sync engine '" << plan_.engines[v] << "'";
      index = static_cast<int>(engines_.size());
      engines_.push_back(std::move(engine));
    }
    // The hybrid rule already produced a method consistent with the default engines;
    // overridden variables adopt the override target's model.
    const std::string default_engine =
        plan_.variables[v].method == SyncMethod::kPs ? "ps" : "ar";
    if (plan_.engines[v] != default_engine) {
      plan_.variables[v].method =
          engines_[static_cast<size_t>(index)]->CostMethod(sparsity_.at(static_cast<int>(v)).kind);
    }
  }
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->Prepare(plan_);
  }

  // 4.+5. Graph transformation and the timing plane for this training job.
  RebuildTimingPlane();
  cluster_ = std::make_unique<Cluster>(cluster_spec_);
  MaybeStartMonitor();
  initialized_ = true;
}

IterationSimConfig GraphRunner::MakeSimConfig() const {
  IterationSimConfig sim_config;
  sim_config.ps_local_aggregation = config_.local_aggregation;
  sim_config.ps_machine_level_pulls = config_.local_aggregation;
  sim_config.costs = config_.costs;
  return sim_config;
}

void GraphRunner::RebuildTimingPlane() {
  distributed_graph_.emplace(
      TransformGraph(*graph_, plan_.variables, resources_, config_.local_aggregation));
  timing_ = std::make_unique<IterationSimulator>(cluster_spec_, plan_.variables,
                                                 config_.gpu_compute_seconds,
                                                 config_.compute_chunks, MakeSimConfig(),
                                                 sim_arena_.get());
}

std::vector<VariableSync> GraphRunner::VariablesWithPartitions(int sparse_partitions) const {
  std::vector<VariableSync> variables = plan_.variables;
  for (size_t v = 0; v < variables.size(); ++v) {
    // Same per-variable gate as AssignGraphVariables: partitioner-scoped PS-family
    // variables split up to their row count.
    if (variables[v].method == SyncMethod::kPs &&
        graph_->variables()[v].partitioner_scope) {
      int64_t rows = graph_->variables()[v].shape.rank() >= 1
                         ? graph_->variables()[v].shape.dim(0)
                         : 1;
      variables[v].partitions =
          static_cast<int>(std::min<int64_t>(rows, sparse_partitions));
    }
  }
  return variables;
}

void GraphRunner::Repartition(int sparse_partitions) {
  PX_CHECK(initialized_) << "Repartition before the first Step";
  PX_CHECK_GE(sparse_partitions, 1);
  chosen_partitions_ = sparse_partitions;
  plan_.sparse_partitions = sparse_partitions;
  plan_.variables = VariablesWithPartitions(sparse_partitions);
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->Prepare(plan_);
  }
  RebuildTimingPlane();
}

void GraphRunner::MaybeStartMonitor() {
  if (!config_.adaptive_partitioning.has_value()) {
    return;
  }
  auto monitor = std::make_unique<SparsityMonitor>(*config_.adaptive_partitioning);
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    // Monitor what the PS-family engines can observe: sparse variables whose
    // timing-plane method is PS. (AR-routed sparse variables ride AllGatherv and are
    // untouched by partitioning, so their drift cannot change the decision.)
    if (plan_.variables[v].method == SyncMethod::kPs &&
        sparsity_.at(static_cast<int>(v)).kind == GradKind::kSparse) {
      const int64_t rows = graph_->variables()[v].shape.rank() >= 1
                               ? graph_->variables()[v].shape.dim(0)
                               : 1;
      monitor->Track(static_cast<int>(v), rows, plan_.variables[v].spec.alpha);
    }
  }
  if (monitor->tracked().empty()) {
    PX_LOG(Info) << "adaptive partitioning requested but no sparse PS variable to "
                    "monitor; monitor disabled";
    return;
  }
  monitor_ = std::move(monitor);
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->set_observer(monitor_.get());
  }
}

void GraphRunner::MaybeAdapt() {
  if (monitor_ == nullptr) {
    return;
  }
  monitor_->EndStep();
  if (!monitor_->DriftCheckDue()) {
    return;
  }
  const AdaptivePartitioningPolicy& policy = monitor_->policy();
  int drift_variable = -1;
  const double drift = monitor_->MaxRelativeDrift(&drift_variable);
  if (drift < policy.drift_threshold) {
    monitor_->NoteCheck();
    return;
  }

  // Drift confirmed. Adopt the measured alphas as the plan's workload description —
  // from here on the timing plane and every candidate the re-search simulates cost
  // the access pattern the engines actually observed, not the startup sample.
  for (int v : monitor_->tracked()) {
    plan_.variables[static_cast<size_t>(v)].spec.alpha = monitor_->measured_alpha(v);
  }

  // Re-search over the shared arena: every candidate replays cached schedules and
  // reuses task storage, so the whole search costs milliseconds (docs/perf.md).
  auto measure = [&](int partitions) {
    IterationSimulator sim(cluster_spec_, VariablesWithPartitions(partitions),
                           config_.gpu_compute_seconds, config_.compute_chunks,
                           MakeSimConfig(), sim_arena_.get());
    return sim.MeasureIterationSeconds(config_.search.warmup_iterations,
                                       config_.search.measured_iterations);
  };
  const double current_seconds = measure(chosen_partitions_);
  int best = chosen_partitions_;
  double best_seconds = current_seconds;
  if (policy.repartition) {
    PartitionSearchOptions search = config_.search;
    search.initial_partitions = chosen_partitions_;
    PartitionSearchResult result = SearchPartitions(measure, search);
    if (result.best_partitions != chosen_partitions_) {
      best = result.best_partitions;
      // Measured-vs-measured comparison (not the Equation-1 prediction): both layouts
      // are simulated on the same arena, so the hysteresis test is deterministic and
      // free of model error.
      best_seconds = measure(best);
    }
  }

  AdaptationVerdict verdict;
  verdict.step = iterations_;
  verdict.variable = drift_variable;
  verdict.drift = drift;
  verdict.measured_alpha =
      drift_variable >= 0 ? monitor_->measured_alpha(drift_variable) : 0.0;
  verdict.from_partitions = chosen_partitions_;
  verdict.current_seconds = current_seconds;
  verdict.best_partitions = best;
  verdict.best_seconds = best_seconds;
  verdict.adopted =
      best != chosen_partitions_ && best_seconds < current_seconds * (1.0 - policy.hysteresis);
  verdict.to_partitions = verdict.adopted ? best : chosen_partitions_;

  if (verdict.adopted) {
    PX_LOG(Info) << "adaptive repartition at step " << iterations_ << ": P="
                 << verdict.from_partitions << " -> " << verdict.to_partitions
                 << " (simulated " << current_seconds << "s -> " << best_seconds
                 << "s, drift " << drift << " on variable " << drift_variable << ")";
    Repartition(best);
  } else {
    PX_LOG(Info) << "adaptive re-search at step " << iterations_ << ": keeping P="
                 << chosen_partitions_ << " (best candidate P=" << best << " at "
                 << best_seconds << "s vs " << current_seconds
                 << "s current, hysteresis " << policy.hysteresis << "; drift " << drift
                 << " on variable " << drift_variable << ")";
    // Not adopted — but the plan's alphas changed above, so rebuild the timing plane:
    // the clock should track measured sparsity whether or not the layout moves.
    RebuildTimingPlane();
  }
  monitor_->RecordVerdict(verdict);
}

VariableStore GraphRunner::ComposeView() const {
  VariableStore view;
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    VariableStore part = engine->View();
    for (const auto& [v, value] : part.values()) {
      view.Set(v, value);
    }
  }
  return view;
}

float GraphRunner::Step(const std::vector<FeedMap>& per_rank_feeds) {
  PX_CHECK_EQ(static_cast<int>(per_rank_feeds.size()), num_ranks())
      << "one feed shard per GPU replica";
  if (!initialized_) {
    InitializeFromSamples(per_rank_feeds);
  }

  bool sequential = !engines_.empty();
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    sequential = sequential && engine->SequentialArrival();
  }

  float loss_sum = 0.0f;
  if (sequential) {
    // Barrier-free protocol (every engine is asynchronous): each rank computes against
    // the freshest values and its gradients are applied the moment they exist, so the
    // next rank sees them — the staleness of section 2.1, in deterministic rank order.
    std::vector<StepResult> single(1);
    for (int r = 0; r < num_ranks(); ++r) {
      VariableStore view = ComposeView();
      single[0] = executor_.RunStep(view, per_rank_feeds[static_cast<size_t>(r)], loss_,
                                    &exec_scratch_);
      loss_sum += single[0].loss;
      for (const std::unique_ptr<SyncEngine>& engine : engines_) {
        engine->ApplyStep(single, config_.learning_rate);
      }
    }
  } else {
    // Synchronous barrier: every replica computes on its shard against the step-start
    // view (shared across ranks — reads only, valid until the engines apply the step),
    // then every engine applies the batch to the variables the plan routes to it.
    VariableStore view = ComposeView();
    std::vector<StepResult> per_rank;
    per_rank.reserve(per_rank_feeds.size());
    for (int r = 0; r < num_ranks(); ++r) {
      StepResult result = executor_.RunStep(view, per_rank_feeds[static_cast<size_t>(r)],
                                            loss_, &exec_scratch_);
      loss_sum += result.loss;
      per_rank.push_back(std::move(result));
    }
    for (const std::unique_ptr<SyncEngine>& engine : engines_) {
      engine->ApplyStep(per_rank, config_.learning_rate);
    }
  }

  // Advance the simulated clock by this iteration's makespan, then give the adaptive
  // loop its per-step turn (observation fold, drift check, possible re-search).
  simulated_seconds_ = timing_->SimulateIteration(*cluster_, simulated_seconds_);
  ++iterations_;
  MaybeAdapt();
  return loss_sum / static_cast<float>(num_ranks());
}

Tensor GraphRunner::Evaluate(const FeedMap& feeds, NodeId fetch) {
  PX_CHECK(initialized_) << "Evaluate before the first Step";
  // Clone: fetching a variable node would otherwise hand out a tensor aliasing live
  // engine buffers, which the next Step mutates — Evaluate returns a stable snapshot.
  return executor_.RunForward(ComposeView(), feeds, fetch).Clone();
}

const std::vector<VariableSync>& GraphRunner::assignment() const {
  PX_CHECK(initialized_);
  return plan_.variables;
}

const SyncPlan& GraphRunner::plan() const {
  PX_CHECK(initialized_);
  return plan_;
}

SyncEngine* GraphRunner::engine(const std::string& name) const {
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    if (engine->name() == name) {
      return engine.get();
    }
  }
  return nullptr;
}

const DistributedGraph& GraphRunner::distributed_graph() const {
  PX_CHECK(initialized_);
  return *distributed_graph_;
}

VariableStore GraphRunner::WorkerView() const {
  PX_CHECK(initialized_);
  // A snapshot: engine views may share live engine buffers, so hand out a deep copy.
  return ComposeView().Clone();
}

}  // namespace parallax
