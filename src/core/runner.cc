#include "src/core/runner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/base/strings.h"
#include "src/core/parallel_measure.h"
#include "src/service/planner_service.h"

namespace parallax {

GraphRunner::GraphRunner(const Graph* graph, NodeId loss, const ResourceSpec& resources,
                         ParallaxConfig config)
    : graph_(graph),
      loss_(loss),
      resources_(resources),
      config_(std::move(config)),
      executor_(graph) {
  PX_CHECK(graph != nullptr);
  PX_CHECK(resources_.IsHomogeneous())
      << "every machine must contribute the same number of GPUs";
  for (const EngineOverride& override : config_.engine_overrides) {
    PX_CHECK(SyncEngineRegistry::Global().Contains(override.engine))
        << "unknown sync engine '" << override.engine << "' (registered: "
        << Join(SyncEngineRegistry::Global().Names(), ", ") << ")";
  }
}

void GraphRunner::InitializeFromSamples(const std::vector<FeedMap>& per_rank_feeds) {
  // 1. Sample backward passes on the initial values to classify variables and measure
  //    alpha (section 5: gradient type identifies sparsity). A deferred RestoreFrom
  //    supplies the initial values instead: the sampled alphas then describe the
  //    workload at the restored parameters, not a cold start.
  VariableStore initial = pending_restore_.has_value()
                              ? pending_restore_->store.Clone()
                              : VariableStore::InitFrom(*graph_);
  std::vector<StepResult> samples;
  size_t sample_count = std::min<size_t>(per_rank_feeds.size(), 4);
  samples.reserve(sample_count);
  for (size_t r = 0; r < sample_count; ++r) {
    samples.push_back(executor_.RunStep(initial, per_rank_feeds[r], loss_, &exec_scratch_));
  }
  sparsity_ = AnalyzeSparsity(*graph_, loss_, samples);

  cluster_spec_ = resources_.ToClusterSpec(config_.hardware);
  HybridOptions hybrid{config_.alpha_dense_threshold};

  // 2. Partition search over the simulated training loop (section 3.2). The measure
  //    function runs short training at candidate P; Equation 1 is fitted over the
  //    samples and the best predicted P is adopted.
  bool has_partitioned_sparse = false;
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    if (graph_->variables()[v].partitioner_scope &&
        sparsity_.at(static_cast<int>(v)).kind == GradKind::kSparse) {
      has_partitioned_sparse = true;
    }
  }
  // 3a. The SyncPlan's routing and methods — established BEFORE the search, because
  //     they do not depend on partition counts and the search must simulate the
  //     methods that will actually run (an engine override can move a variable off
  //     PS entirely, which changes what is worth partitioning). Hybrid assignment,
  //     then per-variable engine routing: unmatched variables follow the hybrid rule;
  //     overrides route by name pattern, with the engine's cost hook supplying the
  //     timing-plane method.
  plan_.variables = AssignGraphVariables(*graph_, sparsity_, hybrid, PartitionPlan::Uniform(1));
  plan_.engines.assign(plan_.variables.size(), std::string());
  plan_.num_ranks = num_ranks();
  plan_.ranks_per_machine = cluster_spec_.gpus_per_machine;
  plan_.local_aggregation = config_.local_aggregation;
  plan_.fuse_sparse_variables = config_.fuse_sparse_variables;
  plan_.dense_aggregation = config_.dense_aggregation;
  plan_.sparse_aggregation = config_.sparse_aggregation;
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    plan_.engines[v] = plan_.variables[v].method == SyncMethod::kPs ? "ps" : "ar";
    for (const EngineOverride& override : config_.engine_overrides) {
      if (GlobMatch(plan_.variables[v].spec.name, override.pattern)) {
        plan_.engines[v] = override.engine;
      }
    }
  }

  // Instantiate one engine per distinct name, in order of first appearance, and let
  // each engine's cost hook fix the timing-plane method of the variables it received
  // through an override.
  SyncEngineEnv env{graph_, num_ranks()};
  engines_.clear();
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    int index = -1;
    for (size_t e = 0; e < engines_.size(); ++e) {
      if (engines_[e]->name() == plan_.engines[v]) {
        index = static_cast<int>(e);
        break;
      }
    }
    if (index < 0) {
      std::unique_ptr<SyncEngine> engine =
          SyncEngineRegistry::Global().Create(plan_.engines[v], env);
      PX_CHECK(engine != nullptr) << "unknown sync engine '" << plan_.engines[v] << "'";
      index = static_cast<int>(engines_.size());
      engines_.push_back(std::move(engine));
    }
    // The hybrid rule already produced a method consistent with the default engines;
    // overridden variables adopt the override target's model.
    const std::string default_engine =
        plan_.variables[v].method == SyncMethod::kPs ? "ps" : "ar";
    if (plan_.engines[v] != default_engine) {
      plan_.variables[v].method =
          engines_[static_cast<size_t>(index)]->CostMethod(sparsity_.at(static_cast<int>(v)).kind);
    }
    // Every variable also adopts its engine's compression model (kNone for the
    // built-ins). Stamped before the partition search so every simulated candidate —
    // startup, adaptive, rescale — prices the compressed wire volume; the stamp rides
    // plan_.variables through VariablesWithPartitions into each of them.
    plan_.variables[v].compression =
        engines_[static_cast<size_t>(index)]->CostCompression(
            sparsity_.at(static_cast<int>(v)).kind);
  }

  // 3b. The partition search (uniform or per-variable), simulating candidate layouts
  //     over the routed methods fixed above.
  partition_plan_ = config_.manual_plan.has_value()
                        ? *config_.manual_plan
                        : PartitionPlan::Uniform(std::max(config_.manual_partitions, 1));
  sim_arena_ = std::make_unique<SimulationArena>();
  if (config_.auto_partition && has_partitioned_sparse) {
    PartitionSearchOptions search = SearchOptionsForCluster();
    search.initial_partitions = cluster_spec_.num_machines;
    IterationSimConfig sim_config = MakeSimConfig();
    // Every sampled layout gets a fresh simulator over the shared arena: task storage
    // and cached collective schedules persist across the whole search, so the thousands
    // of simulated iterations behind the search run allocation-free in steady state.
    auto measure_plan = [&](const PartitionPlan& plan) {
      IterationSimulator sim(cluster_spec_, VariablesWithPartitions(plan),
                             config_.gpu_compute_seconds, config_.compute_chunks,
                             sim_config, sim_arena_.get());
      return sim.MeasureIterationSeconds(search.warmup_iterations,
                                         search.measured_iterations);
    };
    std::vector<PartitionSearchVariable> targets;
    if (config_.search_mode == PartitionSearchMode::kPerVariable) {
      targets = SearchTargets();
    }
    if (config_.planner != nullptr) {
      // Shared planning service: the search (or a memoized twin of it) runs on a
      // pooled arena, coalesced with identical queries from other tenants. The
      // introspection results a private search would have filled are synthesized from
      // the service's answer.
      PlannerResult answer = config_.planner->Plan(MakePlannerQuery(search, targets));
      partition_plan_ = answer.plan;
      if (!answer.uniform) {
        PartitionPlanSearchResult synth;
        synth.plan = answer.plan;
        synth.seconds = answer.seconds;
        synth.uniform_seconds = answer.uniform_seconds;
        synth.uniform.best_partitions = answer.best_uniform_partitions;
        synth.uniform.predicted_seconds = answer.uniform_seconds;
        synth.evaluations = answer.evaluations;
        plan_search_result_ = synth;
        search_result_ = synth.uniform;
      } else {
        PartitionSearchResult synth;
        synth.best_partitions = answer.best_uniform_partitions;
        synth.predicted_seconds = answer.seconds;
        search_result_ = synth;
      }
      PX_LOG(Info) << "partition search (shared planner): plan "
                   << partition_plan_.ToString() << " after " << answer.evaluations
                   << " sampling runs"
                   << (answer.cache_hit ? " (cache hit)"
                                        : (answer.coalesced ? " (coalesced)" : ""));
    } else if (!targets.empty()) {
      plan_search_result_ =
          SearchPartitionPlan(measure_plan, MakeSearchBatchMeasure(search), targets, search);
      partition_plan_ = plan_search_result_->plan;
      search_result_ = plan_search_result_->uniform;
      PX_LOG(Info) << "partition search: plan " << partition_plan_.ToString()
                   << " after " << plan_search_result_->evaluations
                   << " sampling runs (best uniform P="
                   << plan_search_result_->uniform.best_partitions << " at "
                   << plan_search_result_->uniform_seconds << "s vs "
                   << plan_search_result_->seconds << "s per-variable)";
      if (plan_search_result_->batch.batches > 0) {
        PX_LOG(Info) << "partition search: " << plan_search_result_->batch.batched_evaluations
                     << " candidates simulated across "
                     << plan_search_result_->batch.batches << " parallel batches ("
                     << plan_search_result_->batch.speculative_waste
                     << " speculative-waste)";
      }
    } else {
      auto measure = [&](int partitions) {
        return measure_plan(PartitionPlan::Uniform(partitions));
      };
      search_result_ = SearchPartitions(
          measure, MakeUniformBatchMeasure(MakeSearchBatchMeasure(search)), search);
      partition_plan_ = PartitionPlan::Uniform(search_result_->best_partitions);
      PX_LOG(Info) << "partition search: uniform P=" << search_result_->best_partitions
                   << " after " << search_result_->samples.size() << " sampling runs";
    }
  }

  // 3c. Stamp the chosen layout onto the plan and hand it to the engines.
  plan_.variables = VariablesWithPartitions(partition_plan_);
  plan_.sparse_partitions = partition_plan_.MaxPartitions();
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->Prepare(plan_);
  }

  // 4.+5. Graph transformation and the timing plane for this training job.
  RebuildTimingPlane();
  cluster_ = std::make_unique<Cluster>(cluster_spec_);
  MaybeStartMonitor();

  // Deferred RestoreFrom: the engines exist now, so the checkpointed values replace
  // the freshly initialized ones and the training clock resumes where the file says,
  // plus the read charge. Replay from here is bit-for-bit regardless of the layout
  // the search above picked — partitioning never affects numerics.
  if (pending_restore_.has_value()) {
    for (const std::unique_ptr<SyncEngine>& engine : engines_) {
      engine->LoadValues(pending_restore_->store);
    }
    iterations_ = pending_restore_->meta.step;
    simulated_seconds_ =
        pending_restore_->meta.simulated_seconds + pending_restore_->read_seconds;
    last_checkpoint_step_ = pending_restore_->meta.step;
    pending_restore_.reset();
  }
  initialized_ = true;
}

IterationSimConfig GraphRunner::MakeSimConfig() const {
  IterationSimConfig sim_config;
  sim_config.ps_local_aggregation = config_.local_aggregation;
  sim_config.ps_machine_level_pulls = config_.local_aggregation;
  sim_config.costs = config_.costs;
  return sim_config;
}

void GraphRunner::RebuildTimingPlane() {
  distributed_graph_.emplace(
      TransformGraph(*graph_, plan_.variables, resources_, config_.local_aggregation));
  timing_ = std::make_unique<IterationSimulator>(cluster_spec_, plan_.variables,
                                                 config_.gpu_compute_seconds,
                                                 config_.compute_chunks, MakeSimConfig(),
                                                 sim_arena_.get());
}

std::vector<VariableSync> GraphRunner::VariablesWithPartitions(
    const PartitionPlan& plan) const {
  std::vector<VariableSync> variables = plan_.variables;
  for (size_t v = 0; v < variables.size(); ++v) {
    // Same per-variable gate as AssignGraphVariables: partitioner-scoped PS-family
    // variables split up to their row count.
    if (variables[v].method == SyncMethod::kPs &&
        graph_->variables()[v].partitioner_scope) {
      int64_t rows = graph_->variables()[v].shape.rank() >= 1
                         ? graph_->variables()[v].shape.dim(0)
                         : 1;
      variables[v].partitions = RowCappedPartitions(plan.For(variables[v].spec.name), rows);
      // A placement rides along only when its length survives the row cap — a vector
      // sized for a count the cap rejected is stale intent, and stamping it would make
      // ResolveShardServers ignore it anyway. Clearing otherwise keeps a placement
      // from an older plan from outliving the plan that carried it.
      const std::vector<int>* placement = plan.PlacementFor(variables[v].spec.name);
      if (placement != nullptr &&
          static_cast<int>(placement->size()) == variables[v].partitions) {
        variables[v].placement = *placement;
      } else {
        variables[v].placement.clear();
      }
    }
  }
  return variables;
}

PartitionSearchOptions GraphRunner::SearchOptionsForCluster() const {
  PartitionSearchOptions search = config_.search;
  if (config_.search_placement) {
    search.placement.enabled = true;
    search.placement.num_machines = cluster_spec_.num_machines;
    search.placement.num_racks = cluster_spec_.topology.num_racks;
    search.placement.nic_bandwidth = cluster_spec_.nic_bandwidth;
    search.placement.spine_bandwidth = cluster_spec_.topology.spine_bandwidth;
  }
  return search;
}

PlanBatchMeasure GraphRunner::MakeSearchBatchMeasure(const PartitionSearchOptions& options) {
  if (options.concurrency.pool == nullptr) {
    return PlanBatchMeasure();
  }
  if (search_arenas_ == nullptr) {
    search_arenas_ = std::make_unique<ArenaPool>();
  }
  ParallelMeasureSpec spec;
  spec.cluster = cluster_spec_;
  // VariablesWithPartitions is a pure read of plan_/graph_ state that no search
  // mutates mid-flight, so concurrent calls from pool workers are safe.
  spec.apply_plan = [this](const PartitionPlan& plan) {
    return VariablesWithPartitions(plan);
  };
  spec.gpu_compute_seconds = config_.gpu_compute_seconds;
  spec.compute_chunks = config_.compute_chunks;
  spec.sim_config = MakeSimConfig();
  spec.warmup_iterations = options.warmup_iterations;
  spec.measured_iterations = options.measured_iterations;
  return MakeParallelPlanMeasure(std::move(spec), options.concurrency,
                                 search_arenas_.get());
}

std::vector<PartitionSearchVariable> GraphRunner::SearchTargets() const {
  // plan_.variables carries the routed method and the current (startup-sampled or
  // monitor-measured) alpha for every variable by the time any search runs, so the
  // targets reflect what will actually execute — including engine overrides that
  // moved a variable off PS.
  std::vector<PartitionSearchVariable> targets;
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    const VariableDef& def = graph_->variables()[v];
    const VariableSparsity& info = sparsity_.at(static_cast<int>(v));
    if (!def.partitioner_scope || info.kind != GradKind::kSparse ||
        plan_.variables[v].method != SyncMethod::kPs) {
      continue;
    }
    PartitionSearchVariable target;
    target.name = def.name;
    target.alpha = plan_.variables[v].spec.alpha;
    target.num_elements = info.num_elements;
    target.max_partitions = def.shape.rank() >= 1 ? def.shape.dim(0) : 1;
    // Warm-start bookkeeping for adaptive re-searches: the count the variable holds
    // now, and whether its measured alpha moved past the drift threshold since the
    // last re-anchor. Without a monitor every variable counts as drifted, which
    // disables the warm start (the conservative default).
    target.previous_partitions = plan_.variables[v].partitions;
    if (monitor_ != nullptr && monitor_->Tracks(static_cast<int>(v))) {
      const double baseline = monitor_->baseline_alpha(static_cast<int>(v));
      const double drift =
          std::abs(monitor_->measured_alpha(static_cast<int>(v)) - baseline) /
          std::max(baseline, 1e-12);
      target.drifted = drift >= monitor_->policy().drift_threshold;
    }
    targets.push_back(std::move(target));
  }
  return targets;
}

PlannerQuery GraphRunner::MakePlannerQuery(
    const PartitionSearchOptions& options,
    const std::vector<PartitionSearchVariable>& targets) const {
  PlannerQuery query;
  query.variables.reserve(plan_.variables.size());
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    PlannerVariable variable;
    variable.sync = plan_.variables[v];
    // Same predicate as VariablesWithPartitions: these are the variables whose
    // partitions/placement the searched plan will override (row-capped).
    variable.partitioned = plan_.variables[v].method == SyncMethod::kPs &&
                           graph_->variables()[v].partitioner_scope;
    variable.rows = graph_->variables()[v].shape.rank() >= 1
                        ? graph_->variables()[v].shape.dim(0)
                        : 1;
    query.variables.push_back(std::move(variable));
  }
  query.targets = targets;
  query.cluster = cluster_spec_;
  query.sim_config = MakeSimConfig();
  query.gpu_compute_seconds = config_.gpu_compute_seconds;
  query.compute_chunks = config_.compute_chunks;
  query.options = options;
  return query;
}

double GraphRunner::MigrationSeconds(const std::vector<VariableSync>& to) const {
  // Same-membership shim: both layouts live on the current cluster.
  const Topology topology(cluster_spec_);
  return MigrationSecondsBetween(plan_.variables, cluster_spec_.num_machines, to,
                                 cluster_spec_.num_machines, topology);
}

double GraphRunner::MigrationSecondsBetween(const std::vector<VariableSync>& from,
                                            int from_machines,
                                            const std::vector<VariableSync>& to,
                                            int to_machines,
                                            const Topology& topology) const {
  PX_CHECK_EQ(to.size(), from.size());
  PX_CHECK_GE(from_machines, 1);
  PX_CHECK_GE(to_machines, 1);
  // Placement-aware estimate: resolve both layouts to effective shard servers with the
  // one ownership rule the simulator and the engines use (ResolveShardServers), then
  // walk each variable's old and new piece ranges in lockstep. Only overlap bytes whose
  // owning server changes move, over the actual path's bottleneck link — a piece that
  // stays put is free even when its neighbours re-split, and a same-rack move never
  // gets charged spine bandwidth it would not use. Every piece that sends or receives
  // any bytes costs one round of request handling. The two layouts may live on
  // different machine counts (a rescale): survivors keep their machine indices, so
  // `topology` must be the larger membership's — it covers every index either side
  // resolves to.
  const std::vector<int> from_servers = ResolveShardServers(from, from_machines);
  const std::vector<int> to_servers = ResolveShardServers(to, to_machines);

  // Element range of piece `piece` out of `count` — the same base/remainder split the
  // simulator's shards and the PS engine's row splitter apply.
  auto piece_range = [](int64_t elements, int count, int piece) {
    const int64_t base = elements / count;
    const int64_t rem = elements % count;
    const int64_t start =
        static_cast<int64_t>(piece) * base + std::min<int64_t>(piece, rem);
    return std::pair<int64_t, int64_t>(start, start + base + (piece < rem ? 1 : 0));
  };

  double transfer_seconds = 0.0;
  double request_seconds = 0.0;
  size_t from_base = 0;
  size_t to_base = 0;
  for (size_t v = 0; v < to.size(); ++v) {
    const VariableSync& from_sync = from[v];
    const VariableSync& to_sync = to[v];
    PX_CHECK(from_sync.method == to_sync.method);
    if (from_sync.method != SyncMethod::kPs) {
      continue;
    }
    const size_t from_at = from_base;
    const size_t to_at = to_base;
    from_base += static_cast<size_t>(from_sync.partitions);
    to_base += static_cast<size_t>(to_sync.partitions);

    bool same = from_sync.partitions == to_sync.partitions;
    for (int p = 0; same && p < from_sync.partitions; ++p) {
      same = from_servers[from_at + static_cast<size_t>(p)] ==
             to_servers[to_at + static_cast<size_t>(p)];
    }
    if (same) {
      continue;  // identical shard layout: the engine keeps these shards as-is
    }

    const int64_t elements = std::max<int64_t>(from_sync.spec.num_elements, 1);
    const double bytes_per_element =
        static_cast<double>(from_sync.spec.bytes()) / static_cast<double>(elements);
    // A count change materializes and re-splits the variable: every old piece is torn
    // down and every new piece built, so each costs one round of request handling even
    // when its bytes happen to stay on the same server. A pure placement change keeps
    // the split and touches only the pieces that actually move.
    const bool resplit = from_sync.partitions != to_sync.partitions;
    if (resplit) {
      request_seconds += static_cast<double>(from_sync.partitions + to_sync.partitions) *
                         config_.costs.request_overhead_seconds;
    }
    int sending = -1;    // last old piece charged a send request
    int receiving = -1;  // last new piece charged a receive request
    int p = 0;
    int q = 0;
    while (p < from_sync.partitions && q < to_sync.partitions) {
      const auto [ps, pe] = piece_range(elements, from_sync.partitions, p);
      const auto [qs, qe] = piece_range(elements, to_sync.partitions, q);
      const int64_t overlap = std::min(pe, qe) - std::max(ps, qs);
      const int src = from_servers[from_at + static_cast<size_t>(p)];
      const int dst = to_servers[to_at + static_cast<size_t>(q)];
      if (overlap > 0 && src != dst) {
        transfer_seconds += static_cast<double>(overlap) * bytes_per_element /
                            topology.PathBandwidth(src, dst);
        if (!resplit && sending != p) {
          sending = p;
          request_seconds += config_.costs.request_overhead_seconds;
        }
        if (!resplit && receiving != q) {
          receiving = q;
          request_seconds += config_.costs.request_overhead_seconds;
        }
      }
      if (pe <= qe) {
        ++p;
      } else {
        ++q;
      }
    }
  }
  return transfer_seconds + request_seconds;
}

void GraphRunner::Repartition(const PartitionPlan& plan) {
  PX_CHECK(initialized_) << "Repartition before the first Step";
  PX_CHECK_GE(plan.default_partitions(), 1);
  std::vector<VariableSync> next = VariablesWithPartitions(plan);
  // Only engines owning a variable whose count or placement actually changes need a
  // re-Prepare; everything else keeps its shards (Prepare is value-preserving either
  // way, this just skips the no-op materialize/re-split round-trips).
  std::vector<bool> engine_dirty(engines_.size(), false);
  for (size_t v = 0; v < next.size(); ++v) {
    if (next[v].partitions == plan_.variables[v].partitions &&
        next[v].placement == plan_.variables[v].placement) {
      continue;
    }
    for (size_t e = 0; e < engines_.size(); ++e) {
      if (engines_[e]->name() == plan_.engines[v]) {
        engine_dirty[e] = true;
      }
    }
  }
  partition_plan_ = plan;
  plan_.sparse_partitions = partition_plan_.MaxPartitions();
  plan_.variables = std::move(next);
  for (size_t e = 0; e < engines_.size(); ++e) {
    if (engine_dirty[e]) {
      engines_[e]->Prepare(plan_);
    }
  }
  RebuildTimingPlane();
}

void GraphRunner::Repartition(int sparse_partitions) {
  PX_CHECK_GE(sparse_partitions, 1);
  Repartition(PartitionPlan::Uniform(sparse_partitions));
}

Status GraphRunner::Rescale(const ResourceSpec& to) {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "Rescale before the first Step — there is no layout to migrate yet");
  }
  if (to.total_gpus() < 1) {
    return Status::InvalidArgument("Rescale target has no GPUs");
  }
  if (!to.IsHomogeneous()) {
    return Status::InvalidArgument(
        "Rescale target must be homogeneous (same GPU count on every machine)");
  }
  const ClusterSpec to_spec = to.ToClusterSpec(config_.hardware);
  if (to_spec.num_machines == cluster_spec_.num_machines &&
      to_spec.gpus_per_machine == cluster_spec_.gpus_per_machine) {
    // Hostnames may differ; the simulated shape is identical, so nothing migrates.
    resources_ = to;
    return Status::Ok();
  }

  // Snapshot the outgoing membership — the migration estimate needs both sides.
  const std::vector<VariableSync> from_variables = plan_.variables;
  const ClusterSpec from_spec = cluster_spec_;
  const int from_ranks = num_ranks();
  const PartitionPlan from_plan = partition_plan_;

  resources_ = to;
  cluster_spec_ = to_spec;
  plan_.num_ranks = num_ranks();
  plan_.ranks_per_machine = cluster_spec_.gpus_per_machine;

  // A placement naming a departed server is stale intent: clear it before any layout
  // is resolved or simulated on the new cluster, or ResolveShardServers would be
  // handed out-of-range machine indices.
  const auto placements = partition_plan_.placements();
  for (const auto& [name, placement] : placements) {
    bool departed = false;
    for (int server : placement) {
      departed = departed || server >= cluster_spec_.num_machines;
    }
    if (departed) {
      partition_plan_.SetPlacement(name, {});
    }
  }

  // Re-search against the NEW topology, adopting the result only if it simulates
  // faster there than the incumbent layout does — the incumbent never loses to its
  // own re-search, so adopted_seconds <= incumbent_seconds by construction.
  auto measure_plan = [&](const PartitionPlan& plan) {
    IterationSimulator sim(cluster_spec_, VariablesWithPartitions(plan),
                           config_.gpu_compute_seconds, config_.compute_chunks,
                           MakeSimConfig(), sim_arena_.get());
    return sim.MeasureIterationSeconds(config_.search.warmup_iterations,
                                       config_.search.measured_iterations);
  };
  const double incumbent_seconds = measure_plan(partition_plan_);
  PartitionPlan best_plan = partition_plan_;
  double best_seconds = incumbent_seconds;
  bool has_partitioned_sparse = false;
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    has_partitioned_sparse =
        has_partitioned_sparse ||
        (graph_->variables()[v].partitioner_scope &&
         sparsity_.at(static_cast<int>(v)).kind == GradKind::kSparse &&
         plan_.variables[v].method == SyncMethod::kPs);
  }
  if (config_.auto_partition && has_partitioned_sparse) {
    PartitionSearchOptions search = SearchOptionsForCluster();
    search.initial_partitions = cluster_spec_.num_machines;
    std::vector<PartitionSearchVariable> targets;
    if (config_.search_mode == PartitionSearchMode::kPerVariable) {
      targets = SearchTargets();
    }
    if (config_.planner != nullptr) {
      // The service searched at the bucket-representative alphas; re-measure its plan
      // locally at the exact ones so the best-of against the incumbent stays
      // apples-to-apples on this runner's own clock.
      PlannerResult answer = config_.planner->Plan(MakePlannerQuery(search, targets));
      const double seconds = measure_plan(answer.plan);
      if (seconds < best_seconds) {
        best_plan = answer.plan;
        best_seconds = seconds;
      }
    } else if (!targets.empty()) {
      PartitionPlanSearchResult result = SearchPartitionPlan(
          measure_plan, MakeSearchBatchMeasure(search), targets, search);
      if (result.seconds < best_seconds) {
        best_plan = result.plan;
        best_seconds = result.seconds;
      }
    } else {
      auto measure = [&](int partitions) {
        return measure_plan(PartitionPlan::Uniform(partitions));
      };
      PartitionSearchResult result = SearchPartitions(
          measure, MakeUniformBatchMeasure(MakeSearchBatchMeasure(search)), search);
      const double seconds = measure(result.best_partitions);
      if (seconds < best_seconds) {
        best_plan = PartitionPlan::Uniform(result.best_partitions);
        best_seconds = seconds;
      }
    }
  }

  partition_plan_ = best_plan;
  plan_.variables = VariablesWithPartitions(partition_plan_);
  plan_.sparse_partitions = partition_plan_.MaxPartitions();
  // Every engine re-Prepares: the rank count changed for all of them. AR resizes its
  // replica set around the incumbent values; PS re-splits only the variables the
  // adopted plan actually moved. Both are value-preserving, which is what makes an
  // immediate N -> M -> N round trip bit-identical.
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->Prepare(plan_);
  }

  // Charge the shard migration over the larger membership's topology (survivors keep
  // their machine indices, so it covers every index either side resolves to).
  const Topology topology(from_spec.num_machines >= cluster_spec_.num_machines
                              ? from_spec
                              : cluster_spec_);
  const double migration_seconds =
      MigrationSecondsBetween(from_variables, from_spec.num_machines, plan_.variables,
                              cluster_spec_.num_machines, topology);
  simulated_seconds_ += migration_seconds;

  RebuildTimingPlane();
  cluster_ = std::make_unique<Cluster>(cluster_spec_);
  if (monitor_ != nullptr) {
    monitor_->NoteMembershipChange();
  }

  RescaleEvent event;
  event.step = iterations_;
  event.from_machines = from_spec.num_machines;
  event.to_machines = cluster_spec_.num_machines;
  event.from_ranks = from_ranks;
  event.to_ranks = num_ranks();
  event.from_plan = from_plan;
  event.to_plan = partition_plan_;
  event.incumbent_seconds = incumbent_seconds;
  event.adopted_seconds = best_seconds;
  event.migration_seconds = migration_seconds;
  rescale_trail_.push_back(std::move(event));
  PX_LOG(Info) << "rescale at step " << iterations_ << ": " << from_spec.num_machines
               << " -> " << cluster_spec_.num_machines << " machines (" << from_ranks
               << " -> " << num_ranks() << " ranks), plan " << from_plan.ToString()
               << " -> " << partition_plan_.ToString() << " (" << incumbent_seconds
               << "s incumbent vs " << best_seconds
               << "s adopted on the new topology, migration " << migration_seconds
               << "s)";
  return Status::Ok();
}

Status GraphRunner::Checkpoint() {
  if (!config_.checkpoint.has_value()) {
    return Status::FailedPrecondition(
        "Checkpoint() without a checkpoint config (RunnerBuilder::WithCheckpoint); "
        "use CheckpointTo(path) for one-off saves");
  }
  return CheckpointTo(config_.checkpoint->path);
}

Status GraphRunner::CheckpointTo(const std::string& path) {
  if (!initialized_) {
    return Status::FailedPrecondition("Checkpoint before the first Step");
  }
  if (path.empty()) {
    return Status::InvalidArgument("empty checkpoint path");
  }
  const double bandwidth = config_.checkpoint.has_value()
                               ? config_.checkpoint->disk_bandwidth
                               : CheckpointConfig{}.disk_bandwidth;
  // The write occupies the cluster for bytes/bandwidth simulated seconds; the stored
  // clock includes that charge, so a restore resumes from *after* the write finished.
  const double write_seconds =
      static_cast<double>(CheckpointFileBytes(*graph_)) / bandwidth;
  CheckpointMeta meta;
  meta.step = iterations_;
  meta.simulated_seconds = simulated_seconds_ + write_seconds;
  PX_RETURN_IF_ERROR(SaveCheckpoint(*graph_, ComposeView(), path, meta));
  simulated_seconds_ += write_seconds;
  last_checkpoint_step_ = iterations_;
  ++checkpoints_written_;
  return Status::Ok();
}

Status GraphRunner::RestoreFrom(const std::string& path) {
  CheckpointMeta meta;
  StatusOr<VariableStore> loaded = LoadCheckpoint(*graph_, path, &meta);
  if (!loaded.ok()) {
    return loaded.status();
  }
  const double bandwidth = config_.checkpoint.has_value()
                               ? config_.checkpoint->disk_bandwidth
                               : CheckpointConfig{}.disk_bandwidth;
  const double read_seconds =
      static_cast<double>(CheckpointFileBytes(*graph_)) / bandwidth;
  if (!initialized_) {
    // Deferred restore: the engines do not exist yet. The first Step samples the
    // restored values and InitializeFromSamples applies them once the engines are
    // prepared — so a fresh runner + RestoreFrom replays a dead run bit-for-bit.
    // last_checkpoint_step_ is set now: the recovery driver reads it to decide which
    // feeds to replay before it ever steps.
    pending_restore_ = PendingRestore{std::move(loaded).value(), meta, read_seconds};
    last_checkpoint_step_ = meta.step;
    return Status::Ok();
  }
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->LoadValues(loaded.value());
  }
  iterations_ = meta.step;
  simulated_seconds_ = meta.simulated_seconds + read_seconds;
  last_checkpoint_step_ = meta.step;
  return Status::Ok();
}

void GraphRunner::MaybeStartMonitor() {
  if (!config_.adaptive_partitioning.has_value()) {
    return;
  }
  auto monitor = std::make_unique<SparsityMonitor>(*config_.adaptive_partitioning);
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    // Monitor what the PS-family engines can observe: sparse variables whose
    // timing-plane method is PS. (AR-routed sparse variables ride AllGatherv and are
    // untouched by partitioning, so their drift cannot change the decision.)
    if (plan_.variables[v].method == SyncMethod::kPs &&
        sparsity_.at(static_cast<int>(v)).kind == GradKind::kSparse) {
      const int64_t rows = graph_->variables()[v].shape.rank() >= 1
                               ? graph_->variables()[v].shape.dim(0)
                               : 1;
      monitor->Track(static_cast<int>(v), rows, plan_.variables[v].spec.alpha);
    }
  }
  if (monitor->tracked().empty()) {
    PX_LOG(Info) << "adaptive partitioning requested but no sparse PS variable to "
                    "monitor; monitor disabled";
    return;
  }
  monitor_ = std::move(monitor);
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->set_observer(monitor_.get());
  }
}

void GraphRunner::MaybeAdapt() {
  if (monitor_ == nullptr) {
    return;
  }
  monitor_->EndStep();
  if (!monitor_->DriftCheckDue()) {
    return;
  }
  const AdaptivePartitioningPolicy& policy = monitor_->policy();
  int drift_variable = -1;
  const double drift = monitor_->MaxRelativeDrift(&drift_variable);
  if (drift < policy.drift_threshold) {
    monitor_->NoteCheck();
    return;
  }

  // Drift confirmed. Adopt the measured alphas as the plan's workload description —
  // from here on the timing plane and every candidate the re-search simulates cost
  // the access pattern the engines actually observed, not the startup sample.
  // plan_alpha prefers the per-rank estimator (no union-inversion bias under
  // correlated workers) over the drift estimator. The observation tap sits AFTER
  // gradient compression, so a top-k variable's measurement is ~ratio * raw alpha;
  // spec.alpha keeps raw pre-wire semantics (pulls are uncompressed) and the
  // simulator re-applies the ratio on the push side, so dividing here is what keeps
  // the compressed wire volume priced exactly once.
  for (int v : monitor_->tracked()) {
    const CompressionSpec& compression =
        plan_.variables[static_cast<size_t>(v)].compression;
    double alpha = monitor_->plan_alpha(v);
    if (compression.kind == CompressionKind::kTopK && compression.ratio > 0.0 &&
        compression.ratio < 1.0) {
      alpha = std::min(1.0, alpha / compression.ratio);
    }
    plan_.variables[static_cast<size_t>(v)].spec.alpha = alpha;
  }

  // Re-search over the shared arena: every candidate replays cached schedules and
  // reuses task storage, so the whole search costs milliseconds (docs/perf.md).
  auto measure_plan = [&](const PartitionPlan& plan) {
    IterationSimulator sim(cluster_spec_, VariablesWithPartitions(plan),
                           config_.gpu_compute_seconds, config_.compute_chunks,
                           MakeSimConfig(), sim_arena_.get());
    return sim.MeasureIterationSeconds(config_.search.warmup_iterations,
                                       config_.search.measured_iterations);
  };
  auto same_layout = [](const std::vector<VariableSync>& a,
                        const std::vector<VariableSync>& b) {
    for (size_t v = 0; v < a.size(); ++v) {
      if (a[v].partitions != b[v].partitions || a[v].placement != b[v].placement) {
        return false;
      }
    }
    return true;
  };
  const double current_seconds = measure_plan(partition_plan_);
  PartitionPlan best_plan = partition_plan_;
  double best_seconds = current_seconds;
  if (policy.repartition) {
    PartitionSearchOptions search = SearchOptionsForCluster();
    search.initial_partitions = partition_plan_.MaxPartitions();
    std::vector<PartitionSearchVariable> targets;
    if (config_.search_mode == PartitionSearchMode::kPerVariable) {
      targets = SearchTargets();
    }
    // Warm start the re-search when the drift is confined to a single variable:
    // the other counts were right at the last verdict and their workloads have not
    // moved, so the descent resumes from the incumbent plan and round 0 sweeps only
    // the drifted coordinate — one sweep instead of a full search.
    if (!targets.empty()) {
      int drifted_targets = 0;
      for (const PartitionSearchVariable& target : targets) {
        drifted_targets += target.drifted ? 1 : 0;
      }
      search.warm_start = drifted_targets == 1;
    }
    if (config_.planner != nullptr) {
      // Shared planner path: take its candidate but re-measure it locally at the
      // measured (unsnapped) alphas, so the hysteresis comparison against
      // current_seconds is the same measured-vs-measured test the private path runs.
      PlannerResult answer = config_.planner->Plan(MakePlannerQuery(search, targets));
      if (!same_layout(VariablesWithPartitions(answer.plan), plan_.variables)) {
        best_plan = answer.plan;
        best_seconds = measure_plan(answer.plan);
      }
    } else if (!targets.empty()) {
      // Per-variable re-search at the measured alphas (coordinate descent; the
      // uniform sweep inside seeds it, unless warm-started). Measured-vs-measured
      // comparison on the same arena, so the hysteresis test is deterministic and
      // free of model error.
      PartitionPlanSearchResult result = SearchPartitionPlan(
          measure_plan, MakeSearchBatchMeasure(search), targets, search);
      if (!same_layout(VariablesWithPartitions(result.plan), plan_.variables)) {
        best_plan = result.plan;
        best_seconds = result.seconds;
      }
    } else {
      auto measure = [&](int partitions) {
        return measure_plan(PartitionPlan::Uniform(partitions));
      };
      PartitionSearchResult result = SearchPartitions(
          measure, MakeUniformBatchMeasure(MakeSearchBatchMeasure(search)), search);
      PartitionPlan candidate = PartitionPlan::Uniform(result.best_partitions);
      if (!same_layout(VariablesWithPartitions(candidate), plan_.variables)) {
        best_plan = candidate;
        best_seconds = measure(result.best_partitions);
      }
    }
  }

  // The swap is not free: re-preparing the changed variables moves their shard bytes
  // between servers. Adopt only when the per-step win pays that back before the loop
  // could revisit the decision — which is gated by BOTH the post-verdict cooldown and
  // the check interval, so the window is whichever is longer.
  std::vector<VariableSync> best_variables = VariablesWithPartitions(best_plan);
  const bool layout_changed = !same_layout(best_variables, plan_.variables);
  const double migration_seconds = layout_changed ? MigrationSeconds(best_variables) : 0.0;
  const double window_steps = static_cast<double>(
      std::max({policy.cooldown_steps, policy.check_interval, 1}));
  const bool amortized =
      (current_seconds - best_seconds) * window_steps >= migration_seconds;

  AdaptationVerdict verdict;
  verdict.step = iterations_;
  verdict.variable = drift_variable;
  verdict.drift = drift;
  verdict.measured_alpha =
      drift_variable >= 0 ? monitor_->measured_alpha(drift_variable) : 0.0;
  verdict.from_plan = partition_plan_;
  verdict.best_plan = best_plan;
  verdict.from_partitions = partition_plan_.MaxPartitions();
  verdict.current_seconds = current_seconds;
  verdict.best_partitions = best_plan.MaxPartitions();
  verdict.best_seconds = best_seconds;
  verdict.migration_seconds = migration_seconds;
  verdict.amortized = amortized;
  verdict.adopted = layout_changed &&
                    best_seconds < current_seconds * (1.0 - policy.hysteresis) &&
                    amortized;
  verdict.to_plan = verdict.adopted ? best_plan : partition_plan_;
  verdict.to_partitions = verdict.to_plan.MaxPartitions();

  if (verdict.adopted) {
    PX_LOG(Info) << "adaptive repartition at step " << iterations_ << ": "
                 << verdict.from_plan.ToString() << " -> " << verdict.to_plan.ToString()
                 << " (simulated " << current_seconds << "s -> " << best_seconds
                 << "s, migration " << migration_seconds << "s, drift " << drift
                 << " on variable " << drift_variable << ")";
    // Charge the transition to the simulated clock: the next iterations overlap a
    // cluster that just spent this long reshuffling shards.
    simulated_seconds_ += migration_seconds;
    Repartition(best_plan);
  } else {
    PX_LOG(Info) << "adaptive re-search at step " << iterations_ << ": keeping "
                 << partition_plan_.ToString() << " (best candidate "
                 << best_plan.ToString() << " at " << best_seconds << "s vs "
                 << current_seconds << "s current, hysteresis " << policy.hysteresis
                 << ", migration " << migration_seconds << "s "
                 << (amortized ? "amortized" : "NOT amortized") << "; drift " << drift
                 << " on variable " << drift_variable << ")";
    // Not adopted — but the plan's alphas changed above, so rebuild the timing plane:
    // the clock should track measured sparsity whether or not the layout moves.
    RebuildTimingPlane();
  }
  monitor_->RecordVerdict(verdict);
}

VariableStore GraphRunner::ComposeView() const {
  VariableStore view;
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    VariableStore part = engine->View();
    for (const auto& [v, value] : part.values()) {
      view.Set(v, value);
    }
  }
  return view;
}

float GraphRunner::Step(const std::vector<FeedMap>& per_rank_feeds) {
  PX_CHECK_EQ(static_cast<int>(per_rank_feeds.size()), num_ranks())
      << "one feed shard per GPU replica";
  if (!initialized_) {
    InitializeFromSamples(per_rank_feeds);
  }

  bool sequential = !engines_.empty();
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    sequential = sequential && engine->SequentialArrival();
  }

  float loss_sum = 0.0f;
  if (sequential) {
    // Barrier-free protocol (every engine is asynchronous): each rank computes against
    // the freshest values and its gradients are applied the moment they exist, so the
    // next rank sees them — the staleness of section 2.1, in deterministic rank order.
    step_results_.resize(1);
    for (int r = 0; r < num_ranks(); ++r) {
      VariableStore view = ComposeView();
      executor_.RunStepInto(view, per_rank_feeds[static_cast<size_t>(r)], loss_,
                            &exec_scratch_, &step_results_[0]);
      loss_sum += step_results_[0].loss;
      for (const std::unique_ptr<SyncEngine>& engine : engines_) {
        engine->ApplyStep(step_results_, config_.learning_rate);
      }
    }
  } else {
    // Synchronous barrier: every replica computes on its shard against the step-start
    // view (shared across ranks — reads only, valid until the engines apply the step),
    // then every engine applies the batch to the variables the plan routes to it.
    // step_results_[r] recycles rank r's gradient storage from the previous step.
    VariableStore view = ComposeView();
    step_results_.resize(per_rank_feeds.size());
    for (int r = 0; r < num_ranks(); ++r) {
      executor_.RunStepInto(view, per_rank_feeds[static_cast<size_t>(r)], loss_,
                            &exec_scratch_, &step_results_[static_cast<size_t>(r)]);
      loss_sum += step_results_[static_cast<size_t>(r)].loss;
    }
    for (const std::unique_ptr<SyncEngine>& engine : engines_) {
      engine->ApplyStep(step_results_, config_.learning_rate);
    }
  }

  // Advance the simulated clock by this iteration's makespan, then give the adaptive
  // loop its per-step turn (observation fold, drift check, possible re-search).
  simulated_seconds_ = timing_->SimulateIteration(*cluster_, simulated_seconds_);
  ++iterations_;
  MaybeAdapt();
  if (config_.checkpoint.has_value() && config_.checkpoint->interval_steps > 0 &&
      iterations_ % config_.checkpoint->interval_steps == 0) {
    const Status status = CheckpointTo(config_.checkpoint->path);
    PX_CHECK(status.ok()) << "periodic checkpoint to '" << config_.checkpoint->path
                          << "' failed: " << status.ToString();
  }
  return loss_sum / static_cast<float>(num_ranks());
}

Tensor GraphRunner::Evaluate(const FeedMap& feeds, NodeId fetch) {
  PX_CHECK(initialized_) << "Evaluate before the first Step";
  // Clone: fetching a variable node would otherwise hand out a tensor aliasing live
  // engine buffers, which the next Step mutates — Evaluate returns a stable snapshot.
  return executor_.RunForward(ComposeView(), feeds, fetch).Clone();
}

const std::vector<VariableSync>& GraphRunner::assignment() const {
  PX_CHECK(initialized_);
  return plan_.variables;
}

const SyncPlan& GraphRunner::plan() const {
  PX_CHECK(initialized_);
  return plan_;
}

SyncEngine* GraphRunner::engine(const std::string& name) const {
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    if (engine->name() == name) {
      return engine.get();
    }
  }
  return nullptr;
}

const DistributedGraph& GraphRunner::distributed_graph() const {
  PX_CHECK(initialized_);
  return *distributed_graph_;
}

VariableStore GraphRunner::WorkerView() const {
  PX_CHECK(initialized_);
  // A snapshot: engine views may share live engine buffers, so hand out a deep copy.
  return ComposeView().Clone();
}

}  // namespace parallax
