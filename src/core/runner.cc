#include "src/core/runner.h"

#include <algorithm>

#include "src/base/strings.h"

namespace parallax {

GraphRunner::GraphRunner(const Graph* graph, NodeId loss, const ResourceSpec& resources,
                         ParallaxConfig config)
    : graph_(graph),
      loss_(loss),
      resources_(resources),
      config_(std::move(config)),
      executor_(graph) {
  PX_CHECK(graph != nullptr);
  PX_CHECK(resources_.IsHomogeneous())
      << "every machine must contribute the same number of GPUs";
  for (const EngineOverride& override : config_.engine_overrides) {
    PX_CHECK(SyncEngineRegistry::Global().Contains(override.engine))
        << "unknown sync engine '" << override.engine << "' (registered: "
        << Join(SyncEngineRegistry::Global().Names(), ", ") << ")";
  }
}

void GraphRunner::InitializeFromSamples(const std::vector<FeedMap>& per_rank_feeds) {
  // 1. Sample backward passes on the initial values to classify variables and measure
  //    alpha (section 5: gradient type identifies sparsity).
  VariableStore initial = VariableStore::InitFrom(*graph_);
  std::vector<StepResult> samples;
  size_t sample_count = std::min<size_t>(per_rank_feeds.size(), 4);
  samples.reserve(sample_count);
  for (size_t r = 0; r < sample_count; ++r) {
    samples.push_back(executor_.RunStep(initial, per_rank_feeds[r], loss_, &exec_scratch_));
  }
  sparsity_ = AnalyzeSparsity(*graph_, loss_, samples);

  cluster_spec_ = resources_.ToClusterSpec(config_.hardware);
  HybridOptions hybrid{config_.alpha_dense_threshold};

  // 2. Partition search over the simulated training loop (section 3.2). The measure
  //    function runs short training at candidate P; Equation 1 is fitted over the
  //    samples and the best predicted P is adopted.
  bool has_partitioned_sparse = false;
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    if (graph_->variables()[v].partitioner_scope &&
        sparsity_.at(static_cast<int>(v)).kind == GradKind::kSparse) {
      has_partitioned_sparse = true;
    }
  }
  chosen_partitions_ = config_.manual_partitions;
  sim_arena_ = std::make_unique<SimulationArena>();
  if (config_.auto_partition && has_partitioned_sparse) {
    PartitionSearchOptions search = config_.search;
    search.initial_partitions = cluster_spec_.num_machines;
    IterationSimConfig sim_config;
    sim_config.ps_local_aggregation = config_.local_aggregation;
    sim_config.ps_machine_level_pulls = config_.local_aggregation;
    sim_config.costs = config_.costs;
    // Every sampled P gets a fresh simulator over the shared arena: task storage and
    // cached collective schedules persist across the whole search, so the thousands of
    // simulated iterations behind SearchPartitions run allocation-free in steady state.
    auto measure = [&](int partitions) {
      std::vector<VariableSync> candidate =
          AssignGraphVariables(*graph_, sparsity_, hybrid, partitions);
      IterationSimulator sim(cluster_spec_, candidate, config_.gpu_compute_seconds,
                             config_.compute_chunks, sim_config, sim_arena_.get());
      return sim.MeasureIterationSeconds(search.warmup_iterations,
                                         search.measured_iterations);
    };
    search_result_ = SearchPartitions(measure, search);
    chosen_partitions_ = search_result_->best_partitions;
    PX_LOG(Info) << "partition search: P=" << chosen_partitions_ << " after "
                 << search_result_->samples.size() << " sampling runs";
  }

  // 3. The SyncPlan: hybrid assignment, then per-variable engine routing. Unmatched
  //    variables follow the hybrid rule; overrides route by name pattern, with the
  //    engine's cost hook supplying the timing-plane method.
  plan_.variables = AssignGraphVariables(*graph_, sparsity_, hybrid, chosen_partitions_);
  plan_.engines.assign(plan_.variables.size(), std::string());
  plan_.num_ranks = num_ranks();
  plan_.ranks_per_machine = cluster_spec_.gpus_per_machine;
  plan_.sparse_partitions = chosen_partitions_;
  plan_.local_aggregation = config_.local_aggregation;
  plan_.fuse_sparse_variables = config_.fuse_sparse_variables;
  plan_.dense_aggregation = config_.dense_aggregation;
  plan_.sparse_aggregation = config_.sparse_aggregation;
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    plan_.engines[v] = plan_.variables[v].method == SyncMethod::kPs ? "ps" : "ar";
    for (const EngineOverride& override : config_.engine_overrides) {
      if (GlobMatch(plan_.variables[v].spec.name, override.pattern)) {
        plan_.engines[v] = override.engine;
      }
    }
  }

  // Instantiate one engine per distinct name, in order of first appearance, and let
  // each engine's cost hook fix the timing-plane method of the variables it received
  // through an override.
  SyncEngineEnv env{graph_, num_ranks()};
  engines_.clear();
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    int index = -1;
    for (size_t e = 0; e < engines_.size(); ++e) {
      if (engines_[e]->name() == plan_.engines[v]) {
        index = static_cast<int>(e);
        break;
      }
    }
    if (index < 0) {
      std::unique_ptr<SyncEngine> engine =
          SyncEngineRegistry::Global().Create(plan_.engines[v], env);
      PX_CHECK(engine != nullptr) << "unknown sync engine '" << plan_.engines[v] << "'";
      index = static_cast<int>(engines_.size());
      engines_.push_back(std::move(engine));
    }
    // The hybrid rule already produced a method consistent with the default engines;
    // overridden variables adopt the override target's model.
    const std::string default_engine =
        plan_.variables[v].method == SyncMethod::kPs ? "ps" : "ar";
    if (plan_.engines[v] != default_engine) {
      plan_.variables[v].method =
          engines_[static_cast<size_t>(index)]->CostMethod(sparsity_.at(static_cast<int>(v)).kind);
    }
  }
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->Prepare(plan_);
  }

  // 4.+5. Graph transformation and the timing plane for this training job.
  RebuildTimingPlane();
  cluster_ = std::make_unique<Cluster>(cluster_spec_);
  initialized_ = true;
}

void GraphRunner::RebuildTimingPlane() {
  distributed_graph_.emplace(
      TransformGraph(*graph_, plan_.variables, resources_, config_.local_aggregation));
  IterationSimConfig sim_config;
  sim_config.ps_local_aggregation = config_.local_aggregation;
  sim_config.ps_machine_level_pulls = config_.local_aggregation;
  sim_config.costs = config_.costs;
  timing_ = std::make_unique<IterationSimulator>(cluster_spec_, plan_.variables,
                                                 config_.gpu_compute_seconds,
                                                 config_.compute_chunks, sim_config,
                                                 sim_arena_.get());
}

void GraphRunner::Repartition(int sparse_partitions) {
  PX_CHECK(initialized_) << "Repartition before the first Step";
  PX_CHECK_GE(sparse_partitions, 1);
  chosen_partitions_ = sparse_partitions;
  plan_.sparse_partitions = sparse_partitions;
  for (size_t v = 0; v < plan_.variables.size(); ++v) {
    // Same per-variable gate as AssignGraphVariables: partitioner-scoped PS-family
    // variables split up to their row count.
    if (plan_.variables[v].method == SyncMethod::kPs &&
        graph_->variables()[v].partitioner_scope) {
      int64_t rows = graph_->variables()[v].shape.rank() >= 1
                         ? graph_->variables()[v].shape.dim(0)
                         : 1;
      plan_.variables[v].partitions =
          static_cast<int>(std::min<int64_t>(rows, sparse_partitions));
    }
  }
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    engine->Prepare(plan_);
  }
  RebuildTimingPlane();
}

VariableStore GraphRunner::ComposeView() const {
  VariableStore view;
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    VariableStore part = engine->View();
    for (const auto& [v, value] : part.values()) {
      view.Set(v, value);
    }
  }
  return view;
}

float GraphRunner::Step(const std::vector<FeedMap>& per_rank_feeds) {
  PX_CHECK_EQ(static_cast<int>(per_rank_feeds.size()), num_ranks())
      << "one feed shard per GPU replica";
  if (!initialized_) {
    InitializeFromSamples(per_rank_feeds);
  }

  bool sequential = !engines_.empty();
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    sequential = sequential && engine->SequentialArrival();
  }

  float loss_sum = 0.0f;
  if (sequential) {
    // Barrier-free protocol (every engine is asynchronous): each rank computes against
    // the freshest values and its gradients are applied the moment they exist, so the
    // next rank sees them — the staleness of section 2.1, in deterministic rank order.
    std::vector<StepResult> single(1);
    for (int r = 0; r < num_ranks(); ++r) {
      VariableStore view = ComposeView();
      single[0] = executor_.RunStep(view, per_rank_feeds[static_cast<size_t>(r)], loss_,
                                    &exec_scratch_);
      loss_sum += single[0].loss;
      for (const std::unique_ptr<SyncEngine>& engine : engines_) {
        engine->ApplyStep(single, config_.learning_rate);
      }
    }
  } else {
    // Synchronous barrier: every replica computes on its shard against the step-start
    // view (shared across ranks — reads only, valid until the engines apply the step),
    // then every engine applies the batch to the variables the plan routes to it.
    VariableStore view = ComposeView();
    std::vector<StepResult> per_rank;
    per_rank.reserve(per_rank_feeds.size());
    for (int r = 0; r < num_ranks(); ++r) {
      StepResult result = executor_.RunStep(view, per_rank_feeds[static_cast<size_t>(r)],
                                            loss_, &exec_scratch_);
      loss_sum += result.loss;
      per_rank.push_back(std::move(result));
    }
    for (const std::unique_ptr<SyncEngine>& engine : engines_) {
      engine->ApplyStep(per_rank, config_.learning_rate);
    }
  }

  // Advance the simulated clock by this iteration's makespan.
  simulated_seconds_ = timing_->SimulateIteration(*cluster_, simulated_seconds_);
  ++iterations_;
  return loss_sum / static_cast<float>(num_ranks());
}

Tensor GraphRunner::Evaluate(const FeedMap& feeds, NodeId fetch) {
  PX_CHECK(initialized_) << "Evaluate before the first Step";
  // Clone: fetching a variable node would otherwise hand out a tensor aliasing live
  // engine buffers, which the next Step mutates — Evaluate returns a stable snapshot.
  return executor_.RunForward(ComposeView(), feeds, fetch).Clone();
}

const std::vector<VariableSync>& GraphRunner::assignment() const {
  PX_CHECK(initialized_);
  return plan_.variables;
}

const SyncPlan& GraphRunner::plan() const {
  PX_CHECK(initialized_);
  return plan_;
}

SyncEngine* GraphRunner::engine(const std::string& name) const {
  for (const std::unique_ptr<SyncEngine>& engine : engines_) {
    if (engine->name() == name) {
      return engine.get();
    }
  }
  return nullptr;
}

const DistributedGraph& GraphRunner::distributed_graph() const {
  PX_CHECK(initialized_);
  return *distributed_graph_;
}

VariableStore GraphRunner::WorkerView() const {
  PX_CHECK(initialized_);
  // A snapshot: engine views may share live engine buffers, so hand out a deep copy.
  return ComposeView().Clone();
}

}  // namespace parallax
