// Measured-sparsity monitoring and the adaptive re-partitioning policy (the closed
// loop behind ROADMAP's "automatic re-partitioning" item).
//
// The partition search (cost_model.h) chooses P for the alpha the runner *measured at
// startup* — a handful of sampled backward passes. When the live access pattern drifts
// (vocabulary warm-up, curriculum phases, epoch boundaries), that P goes stale: the
// accumulator-serialization cost theta1 scales with the rows a step actually touches,
// so the optimum moves with alpha. The SparsityMonitor closes the loop:
//
//   observe   — every applied step, the PS-family engines report each sparse
//               variable's aggregated nnz through the SparseAccessObserver interface
//               (core/sync_engine.h). The counts fall out of the fused aggregation
//               pass's segment table, so observation is free; a detached monitor costs
//               nothing at all. Multi-rank engines additionally tap each worker's own
//               coalesced row count (ObserveRankAccess) — a direct per-worker sample.
//   estimate  — per-step access ratios are folded into TWO EWMAs per variable. The
//               drift estimator folds union observations (k ranks coalesced) inverted
//               through the independent-access model of UnionAlpha: u = 1-(1-a)^k, so
//               a = 1-(1-u)^(1/k); per-worker observations (async pushes, k == 1) fold
//               directly. The plan estimator folds only per-rank samples, which need
//               no inversion — so when correlated workers share hot rows (where the
//               inversion under-reads alpha), the alpha handed to the re-search stays
//               unbiased. plan_alpha() prefers the rank estimator when samples exist.
//   detect    — every check_interval steps (after warmup, outside cooldown) the
//               largest relative deviation of the drift EWMA from its self-calibrated
//               baseline is compared to drift_threshold (estimator-vs-estimator, so a
//               stable inversion bias cancels; the rank estimator plays no gate role).
//   decide    — on drift, the runner re-runs the partition search — uniform or
//               per-variable (a PartitionPlan via coordinate descent), per the
//               configured search mode — against the *measured* plan alphas over the
//               shared SimulationArena, and adopts the new layout via
//               GraphRunner::Repartition only if the simulated iteration time improves
//               by more than the hysteresis margin AND the win amortizes the layout
//               migration's shard-byte cost within the cooldown window. Either way the
//               verdict is appended to the decision trail and the baseline is
//               re-anchored to the measured state, so the same drift never triggers
//               twice.
//
// The monitor is measurement + policy state; the re-search and the repartition stay in
// GraphRunner, which owns the plan, the engines, and the simulation arena. See
// docs/adaptivity.md for the model and a tuning guide.
#ifndef PARALLAX_SRC_CORE_SPARSITY_MONITOR_H_
#define PARALLAX_SRC_CORE_SPARSITY_MONITOR_H_

#include <cstdint>
#include <vector>

#include "src/core/partition_plan.h"
#include "src/core/sync_engine.h"

namespace parallax {

// Policy knobs of the adaptive loop (RunnerBuilder::WithAdaptivePartitioning). The
// defaults favor stability over reactivity; docs/adaptivity.md discusses when to move
// each knob.
struct AdaptivePartitioningPolicy {
  // Weight of the newest per-step estimate in the EWMA: alpha <- (1-d)*alpha + d*obs.
  // Higher reacts faster, lower smooths per-batch noise.
  double ewma_decay = 0.25;
  // Relative deviation |ewma - baseline| / baseline that counts as drift and triggers
  // a re-search.
  double drift_threshold = 0.2;
  // Minimum relative improvement of simulated iteration time required to adopt a new
  // partition count: adopt iff t(new) < t(current) * (1 - hysteresis). Suppresses
  // flapping between near-equivalent layouts.
  double hysteresis = 0.05;
  // Observed steps before the first drift check (lets the EWMA settle).
  int warmup_steps = 8;
  // Steps between drift checks.
  int check_interval = 8;
  // Steps after a re-search verdict before the next check (re-Prepare is cheap but
  // not free; this bounds the worst-case re-search rate).
  int cooldown_steps = 16;
  // When false the loop measures, refreshes the timing plane, and records verdicts,
  // but never swaps the partition count — the pinned-layout control for A/B runs.
  bool repartition = true;
};

// One entry of the decision trail: a drift check that crossed the threshold and the
// re-search verdict it produced.
struct AdaptationVerdict {
  int64_t step = 0;              // runner iteration at which the check fired
  int variable = -1;             // variable with the largest relative drift
  double drift = 0.0;            // that variable's relative drift at the check
  double measured_alpha = 0.0;   // its drift-EWMA alpha at the check
  // The full layouts: incumbent, the re-search's best candidate (== from_plan when the
  // search found nothing better), and the one in force after the verdict. These are
  // the authoritative record — the int fields below are max-over-plan summaries kept
  // for the legacy single-P trail and exact only for uniform plans.
  PartitionPlan from_plan;
  PartitionPlan best_plan;
  PartitionPlan to_plan;
  int from_partitions = 1;       // max over from_plan
  int to_partitions = 1;         // max over the layout in force after the verdict
                                 // (== from_partitions when not adopted)
  int best_partitions = 1;       // max over the re-search's best candidate, adopted or
                                 // not — how near-equal a vetoed alternative was is
                                 // what the hysteresis tuning guide reads off the trail
  double current_seconds = 0.0;  // simulated iteration time at from_plan,
                                 // measured alphas
  double best_seconds = 0.0;     // simulated iteration time at the best candidate
  // Estimated cost of swapping from_plan -> best candidate: re-Prepare materializes
  // and re-splits every variable whose count changes, moving its shard bytes between
  // servers. Charged to the simulated clock when adopted.
  double migration_seconds = 0.0;
  // True iff the per-step win pays the migration back before the loop could revisit
  // the decision: (current - best) * max(cooldown_steps, check_interval) >=
  // migration_seconds. A candidate that clears hysteresis but not amortization is
  // vetoed.
  bool amortized = true;
  bool adopted = false;          // true iff the runner called Repartition
};

class SparsityMonitor : public SparseAccessObserver {
 public:
  explicit SparsityMonitor(AdaptivePartitioningPolicy policy);

  // Registers a variable to monitor. `rows` is the variable's row count (the
  // denominator of every access ratio); `baseline_alpha` is the alpha the current
  // plan was built with — the EWMA starts there and drift is measured against it.
  void Track(int variable, int64_t rows, double baseline_alpha);

  // SparseAccessObserver: accumulates one aggregated-gradient observation for the
  // step in flight. Untracked variables are ignored. A contributions == 1 observation
  // is a per-worker sample and also feeds the rank estimator (it needs no inversion).
  void ObserveSparseStep(int variable, int64_t unique_rows, int contributions) override;

  // SparseAccessObserver: one worker's own coalesced row count — folded into the
  // inversion-free rank estimator behind plan_alpha(). Untracked variables ignored.
  void ObserveRankAccess(int variable, int64_t unique_rows) override;

  // Folds the step's observations into the EWMAs and advances the step counter.
  // Called once per runner Step, after every engine applied its gradients.
  //
  // When the step counter reaches max(warmup_steps, 1) the baselines self-calibrate:
  // every baseline is replaced by the variable's warmed-up EWMA. Drift is therefore
  // measured estimator-against-estimator, so a *stable* estimator bias — e.g. the
  // union inversion under-reading alpha while correlated workers hammer one hot row
  // set — cancels instead of masquerading as drift at the first check.
  void EndStep();

  // True when the warmup / check-interval / cooldown gates all pass — the runner
  // should evaluate drift now.
  bool DriftCheckDue() const;
  // Marks a drift check that stayed below the threshold (restarts check_interval
  // without touching baselines or cooldown).
  void NoteCheck();
  // Appends a re-search verdict to the trail, re-anchors every baseline to the
  // current EWMA, and starts the cooldown.
  void RecordVerdict(const AdaptationVerdict& verdict);
  // The adaptive loop's rescale hook (GraphRunner::Rescale): membership change is
  // treated like adopted drift — baselines re-anchor to the current EWMAs and the
  // cooldown starts — without a trail entry (the runner keeps its own rescale trail).
  void NoteMembershipChange();

  // Largest relative EWMA-vs-baseline deviation over tracked variables; the variable
  // attaining it is written to *argmax_variable (unchanged when nothing is tracked).
  double MaxRelativeDrift(int* argmax_variable) const;

  // ---- introspection ----
  const AdaptivePartitioningPolicy& policy() const { return policy_; }
  // Tracked variable indices, in Track order.
  std::vector<int> tracked() const;
  bool Tracks(int variable) const { return SlotOf(variable) >= 0; }
  // Current EWMA estimate of the per-worker access ratio — the *drift* estimator
  // (union observations inverted through the independent-access model).
  double measured_alpha(int variable) const;
  // The alpha the runner should rebuild the plan with: the per-rank estimator when any
  // rank sample has been observed (unbiased under correlated workers), the drift
  // estimator otherwise. This is what the re-search and the refreshed timing plane
  // consume.
  double plan_alpha(int variable) const;
  // The alpha drift is currently measured against (the plan's alpha at the last
  // re-anchor).
  double baseline_alpha(int variable) const;
  // Observed steps so far.
  int64_t steps() const { return steps_; }
  // Every threshold-crossing check, oldest first.
  const std::vector<AdaptationVerdict>& trail() const { return trail_; }
  // Number of adopted verdicts (successful Repartition calls).
  int repartition_count() const;

 private:
  struct TrackedVariable {
    int variable = -1;
    int64_t rows = 1;
    double baseline = 1.0;
    double ewma = 1.0;
    // Inversion-free estimator over per-rank samples (plan_alpha); tracks ewma until
    // the first rank sample arrives.
    double rank_ewma = 1.0;
    bool any_rank_sample = false;
    // Step-in-flight accumulators: mean of the per-observation alpha estimates.
    double pending_sum = 0.0;
    int pending_count = 0;
    double rank_pending_sum = 0.0;
    int rank_pending_count = 0;
  };

  int SlotOf(int variable) const;

  AdaptivePartitioningPolicy policy_;
  std::vector<TrackedVariable> vars_;
  int64_t steps_ = 0;
  int64_t last_check_step_ = 0;
  int64_t last_verdict_step_ = 0;
  bool any_verdict_ = false;
  bool calibrated_ = false;
  std::vector<AdaptationVerdict> trail_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_SPARSITY_MONITOR_H_
