#include "src/core/partition_plan.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace parallax {

PartitionPlan PartitionPlan::Uniform(int partitions) {
  PartitionPlan plan;
  plan.set_default_partitions(partitions);
  return plan;
}

void PartitionPlan::Set(const std::string& variable, int partitions) {
  PX_CHECK(!variable.empty());
  PX_CHECK_GE(partitions, 1);
  overrides_[variable] = partitions;
}

void PartitionPlan::set_default_partitions(int partitions) {
  PX_CHECK_GE(partitions, 1);
  default_partitions_ = partitions;
}

int PartitionPlan::For(const std::string& variable) const {
  auto it = overrides_.find(variable);
  return it != overrides_.end() ? it->second : default_partitions_;
}

int PartitionPlan::MaxPartitions() const {
  int max_partitions = default_partitions_;
  for (const auto& [name, partitions] : overrides_) {
    max_partitions = std::max(max_partitions, partitions);
  }
  return max_partitions;
}

std::string PartitionPlan::ToString() const {
  if (uniform()) {
    return StrFormat("P=%d", default_partitions_);
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, partitions] : overrides_) {
    if (!first) {
      out += ", ";
    }
    out += StrFormat("%s:%d", name.c_str(), partitions);
    first = false;
  }
  out += StrFormat("; default P=%d}", default_partitions_);
  return out;
}

}  // namespace parallax
