#include "src/core/partition_plan.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace parallax {

PartitionPlan PartitionPlan::Uniform(int partitions) {
  PartitionPlan plan;
  plan.set_default_partitions(partitions);
  return plan;
}

void PartitionPlan::Set(const std::string& variable, int partitions) {
  PX_CHECK(!variable.empty());
  PX_CHECK_GE(partitions, 1);
  overrides_[variable] = partitions;
}

void PartitionPlan::set_default_partitions(int partitions) {
  PX_CHECK_GE(partitions, 1);
  default_partitions_ = partitions;
}

int PartitionPlan::For(const std::string& variable) const {
  auto it = overrides_.find(variable);
  return it != overrides_.end() ? it->second : default_partitions_;
}

void PartitionPlan::SetPlacement(const std::string& variable, std::vector<int> placement) {
  PX_CHECK(!variable.empty());
  if (placement.empty()) {
    placements_.erase(variable);
    return;
  }
  for (int server : placement) {
    PX_CHECK_GE(server, 0);
  }
  placements_[variable] = std::move(placement);
}

const std::vector<int>* PartitionPlan::PlacementFor(const std::string& variable) const {
  auto it = placements_.find(variable);
  return it != placements_.end() ? &it->second : nullptr;
}

int PartitionPlan::MaxPartitions() const {
  int max_partitions = default_partitions_;
  for (const auto& [name, partitions] : overrides_) {
    max_partitions = std::max(max_partitions, partitions);
  }
  return max_partitions;
}

std::string PartitionPlan::ToString() const {
  if (uniform()) {
    return StrFormat("P=%d", default_partitions_);
  }
  std::string out = "{";
  bool first = true;
  // "emb:4@(0,1,2,3)" — count, then the placement servers when the plan carries one.
  auto append = [&](const std::string& name, int partitions) {
    if (!first) {
      out += ", ";
    }
    out += StrFormat("%s:%d", name.c_str(), partitions);
    auto it = placements_.find(name);
    if (it != placements_.end()) {
      out += "@(";
      for (size_t p = 0; p < it->second.size(); ++p) {
        if (p > 0) {
          out += ",";
        }
        out += StrFormat("%d", it->second[p]);
      }
      out += ")";
    }
    first = false;
  };
  for (const auto& [name, partitions] : overrides_) {
    append(name, partitions);
  }
  for (const auto& [name, placement] : placements_) {
    if (overrides_.find(name) == overrides_.end()) {
      append(name, default_partitions_);
    }
  }
  out += StrFormat("; default P=%d}", default_partitions_);
  return out;
}

}  // namespace parallax
