#include "src/core/transform.h"

#include "src/base/strings.h"

namespace parallax {

const char* DistOpRoleName(DistOpRole role) {
  switch (role) {
    case DistOpRole::kModelReplica:
      return "ModelReplica";
    case DistOpRole::kVariableReplica:
      return "VariableReplica";
    case DistOpRole::kAllReduce:
      return "AllReduce";
    case DistOpRole::kAllGatherv:
      return "AllGatherv";
    case DistOpRole::kVariablePiece:
      return "VariablePiece";
    case DistOpRole::kPull:
      return "Pull";
    case DistOpRole::kStitch:
      return "Stitch";
    case DistOpRole::kLocalAgg:
      return "LocalAgg";
    case DistOpRole::kGlobalAgg:
      return "GlobalAgg";
    case DistOpRole::kUpdate:
      return "Update";
    case DistOpRole::kChiefTrigger:
      return "ChiefTrigger";
    case DistOpRole::kQueueNotify:
      return "QueueNotify";
  }
  return "Unknown";
}

std::vector<const DistOp*> DistributedGraph::OpsWithRole(DistOpRole role) const {
  std::vector<const DistOp*> result;
  for (const DistOp& op : ops) {
    if (op.role == role) {
      result.push_back(&op);
    }
  }
  return result;
}

const DistOp* DistributedGraph::FindPiece(int variable, int piece) const {
  for (const DistOp& op : ops) {
    if (op.role == DistOpRole::kVariablePiece && op.variable == variable &&
        op.piece == piece) {
      return &op;
    }
  }
  return nullptr;
}

DistributedGraph TransformGraph(const Graph& graph,
                                const std::vector<VariableSync>& assignment,
                                const ResourceSpec& resources, bool local_aggregation) {
  PX_CHECK_EQ(assignment.size(), graph.variables().size());
  PX_CHECK(resources.IsHomogeneous());
  DistributedGraph dist;
  dist.assignment = assignment;
  dist.num_machines = resources.num_machines();
  dist.gpus_per_machine = static_cast<int>(resources.machines.front().gpu_ids.size());
  dist.chief_rank = 0;
  const int num_ranks = dist.num_machines * dist.gpus_per_machine;

  auto worker_placement = [&](int rank) {
    Placement p;
    p.kind = DeviceKind::kWorkerGpu;
    p.machine = rank / dist.gpus_per_machine;
    p.gpu = rank % dist.gpus_per_machine;
    return p;
  };

  // AR rule: one model replica per GPU (forward + backward ops of the whole graph).
  for (int r = 0; r < num_ranks; ++r) {
    DistOp op;
    op.role = DistOpRole::kModelReplica;
    op.name = StrFormat("replica_%d/model", r);
    op.placement = worker_placement(r);
    op.rank = r;
    dist.ops.push_back(std::move(op));
  }

  bool any_ps_variable = false;
  int server_rr = 0;  // round-robin placement of pieces across server machines
  for (size_t v = 0; v < assignment.size(); ++v) {
    const VariableSync& sync = assignment[v];
    const std::string& var_name = graph.variables()[v].name;
    if (sync.method != SyncMethod::kPs) {
      // AR rule: variable replicas + collective op instance on every GPU.
      DistOpRole collective_role = sync.method == SyncMethod::kArAllReduce
                                       ? DistOpRole::kAllReduce
                                       : DistOpRole::kAllGatherv;
      for (int r = 0; r < num_ranks; ++r) {
        DistOp replica;
        replica.role = DistOpRole::kVariableReplica;
        replica.name = StrFormat("replica_%d/%s", r, var_name.c_str());
        replica.placement = worker_placement(r);
        replica.rank = r;
        replica.variable = static_cast<int>(v);
        dist.ops.push_back(std::move(replica));

        DistOp collective;
        collective.role = collective_role;
        collective.name = StrFormat("replica_%d/%s_grad_sync", r, var_name.c_str());
        collective.placement = worker_placement(r);
        collective.rank = r;
        collective.variable = static_cast<int>(v);
        dist.ops.push_back(std::move(collective));
      }
      continue;
    }

    // PS rule: pieces, per-piece global aggregation + update colocated with the piece.
    any_ps_variable = true;
    for (int p = 0; p < sync.partitions; ++p) {
      Placement server;
      server.kind = DeviceKind::kServerCpu;
      server.machine = server_rr++ % dist.num_machines;

      DistOp piece;
      piece.role = DistOpRole::kVariablePiece;
      piece.name = StrFormat("%s/part_%d", var_name.c_str(), p);
      piece.placement = server;
      piece.variable = static_cast<int>(v);
      piece.piece = p;
      dist.ops.push_back(std::move(piece));

      DistOp agg;
      agg.role = DistOpRole::kGlobalAgg;
      agg.name = StrFormat("%s/part_%d/global_agg", var_name.c_str(), p);
      agg.placement = server;
      agg.variable = static_cast<int>(v);
      agg.piece = p;
      dist.ops.push_back(std::move(agg));

      DistOp update;
      update.role = DistOpRole::kUpdate;
      update.name = StrFormat("%s/part_%d/update", var_name.c_str(), p);
      update.placement = server;
      update.variable = static_cast<int>(v);
      update.piece = p;
      dist.ops.push_back(std::move(update));
    }

    // Local aggregation: one per machine per PS variable (OptPS rule).
    if (local_aggregation) {
      for (int m = 0; m < dist.num_machines; ++m) {
        DistOp local;
        local.role = DistOpRole::kLocalAgg;
        local.name = StrFormat("machine_%d/%s/local_agg", m, var_name.c_str());
        local.placement = Placement{DeviceKind::kWorkerGpu, m, 0};
        local.variable = static_cast<int>(v);
        dist.ops.push_back(std::move(local));
      }
    }

    // Worker-side pulls (one per rank per piece) and stitches (one per rank).
    for (int r = 0; r < num_ranks; ++r) {
      for (int p = 0; p < sync.partitions; ++p) {
        DistOp pull;
        pull.role = DistOpRole::kPull;
        pull.name = StrFormat("replica_%d/%s/pull_%d", r, var_name.c_str(), p);
        pull.placement = worker_placement(r);
        pull.rank = r;
        pull.variable = static_cast<int>(v);
        pull.piece = p;
        dist.ops.push_back(std::move(pull));
      }
      if (sync.partitions > 1) {
        DistOp stitch;
        stitch.role = DistOpRole::kStitch;
        stitch.name = StrFormat("replica_%d/%s/stitch", r, var_name.c_str());
        stitch.placement = worker_placement(r);
        stitch.rank = r;
        stitch.variable = static_cast<int>(v);
        dist.ops.push_back(std::move(stitch));
      }
    }
  }

  // Chief rule (section 5): the chief triggers updates; other workers wait on queues.
  if (any_ps_variable) {
    DistOp trigger;
    trigger.role = DistOpRole::kChiefTrigger;
    trigger.name = "chief/update_trigger";
    trigger.placement = worker_placement(dist.chief_rank);
    trigger.rank = dist.chief_rank;
    dist.ops.push_back(std::move(trigger));
    for (int r = 0; r < num_ranks; ++r) {
      if (r == dist.chief_rank) {
        continue;
      }
      DistOp notify;
      notify.role = DistOpRole::kQueueNotify;
      notify.name = StrFormat("replica_%d/chief_wait_queue", r);
      notify.placement = worker_placement(r);
      notify.rank = r;
      dist.ops.push_back(std::move(notify));
    }
  }
  return dist;
}

}  // namespace parallax
