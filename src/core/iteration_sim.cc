#include "src/core/iteration_sim.h"

#include <algorithm>
#include <cmath>

namespace parallax {

std::vector<int> ResolveShardServers(std::span<const VariableSync> variables,
                                     int num_machines) {
  std::vector<int> servers;
  int server_rr = 0;  // advances for every shard, placed or not, so a placement on one
                      // variable never shifts its neighbors' round-robin assignment
  for (const VariableSync& sync : variables) {
    if (sync.method != SyncMethod::kPs) {
      continue;
    }
    const bool placed =
        static_cast<int>(sync.placement.size()) == sync.partitions;
    for (int p = 0; p < sync.partitions; ++p) {
      int rr = server_rr++ % num_machines;
      int server = placed ? sync.placement[static_cast<size_t>(p)] : rr;
      PX_CHECK_GE(server, 0);
      PX_CHECK_LT(server, num_machines);
      servers.push_back(server);
    }
  }
  return servers;
}

IterationSimulator::IterationSimulator(const ClusterSpec& cluster_spec,
                                       std::vector<VariableSync> variables,
                                       double gpu_compute_seconds, int compute_chunks,
                                       IterationSimConfig config, SimulationArena* arena)
    : cluster_spec_(cluster_spec),
      variables_(std::move(variables)),
      gpu_compute_seconds_(gpu_compute_seconds),
      compute_chunks_(std::max(compute_chunks, 2)),
      config_(config) {
  PX_CHECK(!variables_.empty());
  if (arena != nullptr) {
    arena_ = arena;
  } else {
    owned_arena_ = std::make_unique<SimulationArena>();
    arena_ = owned_arena_.get();
  }
  forward_chunks_ = std::max(1, compute_chunks_ / 2);
  const int backward_chunks = std::max(1, compute_chunks_ - forward_chunks_);
  compute_chunks_ = forward_chunks_ + backward_chunks;

  const int num_vars = static_cast<int>(variables_.size());
  pull_chunk_.resize(static_cast<size_t>(num_vars));
  grad_chunk_.resize(static_cast<size_t>(num_vars));
  // Round-robin shard placement across server machines, unless a variable carries an
  // explicit placement vector (searched placements, ResolveShardServers).
  std::vector<int> servers = ResolveShardServers(variables_, cluster_spec_.num_machines);
  size_t next_server = 0;
  for (int v = 0; v < num_vars; ++v) {
    // Variables are listed in layer order; the first variable is consumed by the first
    // forward chunk and its gradient is produced by the last backward chunk.
    double position = (static_cast<double>(v) + 0.5) / num_vars;
    pull_chunk_[static_cast<size_t>(v)] =
        std::min(forward_chunks_ - 1, static_cast<int>(position * forward_chunks_));
    grad_chunk_[static_cast<size_t>(v)] =
        forward_chunks_ +
        std::min(backward_chunks - 1, static_cast<int>((1.0 - position) * backward_chunks));

    const VariableSync& sync = variables_[static_cast<size_t>(v)];
    PX_CHECK_GE(sync.partitions, 1);
    if (sync.method == SyncMethod::kPs) {
      int64_t base = sync.spec.num_elements / sync.partitions;
      int64_t rem = sync.spec.num_elements % sync.partitions;
      for (int p = 0; p < sync.partitions; ++p) {
        Shard shard;
        shard.var = v;
        shard.piece = p;
        shard.server = servers[next_server++];
        shard.elements = base + (p < rem ? 1 : 0);
        shards_.push_back(shard);
      }
    }
  }
}

int64_t IterationSimulator::SparseIndexBytes(int64_t touched_elements,
                                             int64_t row_elements) const {
  if (!config_.include_index_bytes) {
    return 0;
  }
  return (touched_elements / std::max<int64_t>(row_elements, 1)) * 8;
}

int64_t IterationSimulator::PullBytesPerWorker(const Shard& shard) const {
  const VariableSpec& spec = variables_[static_cast<size_t>(shard.var)].spec;
  if (!spec.is_sparse) {
    return shard.elements * 4;
  }
  int64_t touched = static_cast<int64_t>(spec.alpha * static_cast<double>(shard.elements));
  return touched * 4 + SparseIndexBytes(touched, spec.row_elements);
}

double IterationSimulator::PushAlpha(const VariableSync& sync) const {
  const CompressionSpec& compression = sync.compression;
  if (compression.kind == CompressionKind::kTopK && compression.ratio > 0.0 &&
      compression.ratio < 1.0) {
    return sync.spec.alpha * compression.ratio;
  }
  return sync.spec.alpha;
}

int64_t IterationSimulator::SparseWireBytes(const VariableSync& sync,
                                            int64_t touched) const {
  if (sync.compression.kind == CompressionKind::kInt8) {
    // 1 byte per element plus a float scale per transmitted row.
    const int64_t rows = touched / std::max<int64_t>(sync.spec.row_elements, 1);
    return touched + rows * 4 + SparseIndexBytes(touched, sync.spec.row_elements);
  }
  return touched * 4 + SparseIndexBytes(touched, sync.spec.row_elements);
}

int64_t IterationSimulator::PushBytesPerWorker(const Shard& shard) const {
  const VariableSync& sync = variables_[static_cast<size_t>(shard.var)];
  const VariableSpec& spec = sync.spec;
  if (!spec.is_sparse) {
    if (sync.compression.kind == CompressionKind::kInt8) {
      const int64_t rows = shard.elements / std::max<int64_t>(spec.row_elements, 1);
      return shard.elements + rows * 4;
    }
    return shard.elements * 4;
  }
  const int64_t touched =
      static_cast<int64_t>(PushAlpha(sync) * static_cast<double>(shard.elements));
  return SparseWireBytes(sync, touched);
}

double IterationSimulator::CompressSeconds(const Shard& shard) const {
  const VariableSync& sync = variables_[static_cast<size_t>(shard.var)];
  if (sync.compression.kind == CompressionKind::kNone) {
    return 0.0;
  }
  const int64_t raw_elements =
      sync.spec.is_sparse
          ? static_cast<int64_t>(sync.spec.alpha * static_cast<double>(shard.elements))
          : shard.elements;
  return config_.costs.compress_seconds_per_element * static_cast<double>(raw_elements);
}

SimTime IterationSimulator::SimulateIteration(Cluster& cluster, SimTime start_time) {
  const RankLayout layout = cluster.layout();
  const int num_ranks = layout.num_ranks();
  const int gpus = cluster_spec_.gpus_per_machine;
  const SyncCostParams& costs = config_.costs;
  const CollectiveOptions collective{costs.collective_step_overhead_seconds};

  SimulationArena& a = *arena_;
  TaskGraph& graph = a.graph;

  // The iteration DAG depends only on this simulator's fixed configuration plus the
  // cluster layout, so when the arena still holds this simulator's last build, skip the
  // rebuild and go straight to Execute. (Reset + identical rebuild produces an
  // identical graph — asserted by tests/sim_steady_state_test.cc — so this is purely a
  // time saving, never a behavior change.)
  if (a.built_by == this && a.build_serial == built_serial_ &&
      built_num_machines_ == layout.num_machines && built_gpus_ == layout.gpus_per_machine) {
    TaskResult result = graph.Execute(cluster, start_time);
    if (!built_multi_rank_) {
      return graph.FinishTime(final_task_);
    }
    SimTime barrier_finish = graph.FinishTime(final_task_);
    return barrier_finish == 0.0 ? result.finish_time : barrier_finish;
  }
  graph.Reset();
  a.built_by = this;
  built_serial_ = ++a.build_serial;
  built_num_machines_ = layout.num_machines;
  built_gpus_ = layout.gpus_per_machine;

  std::vector<TaskId>& end_tasks = a.end_tasks;
  end_tasks.clear();

  // Single-GPU job: the graph runs unmodified — no pulls, no collectives, no servers
  // (Parallax leaves a 1-GPU graph alone; the local SGD apply rides the GPU).
  if (num_ranks == 1) {
    TaskId compute = graph.AddGpuCompute(0, 0, gpu_compute_seconds_);
    int64_t total_elements = 0;
    for (const VariableSync& sync : variables_) {
      total_elements += sync.spec.num_elements;
    }
    TaskId apply = graph.AddGpuCompute(
        0, 0,
        costs.gpu_dense_apply_seconds_per_element * static_cast<double>(total_elements),
        {compute});
    final_task_ = apply;
    built_multi_rank_ = false;
    graph.Execute(cluster, start_time);
    return graph.FinishTime(apply);
  }

  // ---- Phase 1: PS pulls ----------------------------------------------------------
  // avail[rank][shard] = task after which the shard's rows are on the rank's machine.
  //
  // Pulls are enqueued deepest-layer-first. All pulls issue at the iteration barrier and
  // share the server's RPC path; under fair multiplexing no variable finishes much
  // before the whole pull burst drains, so the first forward chunk's variables must not
  // be allowed to jump the queue — serving them last models the fair-share drain time
  // on the critical path.
  std::vector<std::vector<TaskId>>& avail = a.avail;
  avail.resize(static_cast<size_t>(num_ranks));
  for (auto& per_rank : avail) {
    per_rank.assign(shards_.size(), kNoTask);
  }
  for (size_t si = shards_.size(); si-- > 0;) {
    const size_t s = si;
    const Shard& shard = shards_[s];
    const VariableSpec& spec = variables_[static_cast<size_t>(shard.var)].spec;
    if (config_.ps_machine_level_pulls) {
      // One pull per machine (by its chief worker), local broadcast over PCIe.
      for (int m = 0; m < cluster_spec_.num_machines; ++m) {
        int64_t bytes;
        if (spec.is_sparse) {
          int64_t touched = static_cast<int64_t>(UnionAlpha(spec.alpha, gpus) *
                                                 static_cast<double>(shard.elements));
          bytes = touched * 4 + SparseIndexBytes(touched, spec.row_elements);
        } else {
          bytes = shard.elements * 4;
        }
        TaskId req = graph.AddCpuWork(shard.server, costs.request_overhead_seconds);
        TaskId xfer = (m == shard.server)
                          ? graph.AddLocalTransfer(m, bytes, {req})
                          : graph.AddTransfer(shard.server, m, bytes, {req});
        TaskId ready = xfer;
        if (gpus > 1) {
          ready = graph.AddLocalTransfer(m, bytes, {xfer});  // broadcast to local GPUs
        }
        for (int g = 0; g < gpus; ++g) {
          avail[static_cast<size_t>(layout.RankOf(m, g))][s] = ready;
        }
      }
    } else {
      // Naive PS: every worker pulls for itself.
      for (int r = 0; r < num_ranks; ++r) {
        int machine = layout.MachineOfRank(r);
        int64_t bytes = PullBytesPerWorker(shard);
        TaskId req = graph.AddCpuWork(shard.server, costs.request_overhead_seconds);
        TaskId xfer = (machine == shard.server)
                          ? graph.AddLocalTransfer(machine, bytes, {req})
                          : graph.AddTransfer(shard.server, machine, bytes, {req});
        avail[static_cast<size_t>(r)][s] = xfer;
      }
    }
  }

  // Per-rank, per-variable readiness gates for the forward pass (stitching partitioned
  // pulls costs worker CPU proportional to the partition count — the theta2 term).
  // gate[rank][var].
  std::vector<std::vector<TaskId>>& gate = a.gate;
  gate.resize(static_cast<size_t>(num_ranks));
  for (auto& per_rank : gate) {
    per_rank.assign(variables_.size(), kNoTask);
  }
  for (int v = 0; v < static_cast<int>(variables_.size()); ++v) {
    if (variables_[static_cast<size_t>(v)].method != SyncMethod::kPs) {
      continue;  // AR variables are resident replicas: no pull
    }
    std::vector<size_t>& var_shards = a.var_shards;
    var_shards.clear();
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].var == v) {
        var_shards.push_back(s);
      }
    }
    for (int r = 0; r < num_ranks; ++r) {
      std::vector<TaskId>& deps = a.deps;
      deps.clear();
      deps.reserve(var_shards.size());
      for (size_t s : var_shards) {
        deps.push_back(avail[static_cast<size_t>(r)][s]);
      }
      if (var_shards.size() > 1) {
        gate[static_cast<size_t>(r)][static_cast<size_t>(v)] = graph.AddCpuWork(
            layout.MachineOfRank(r),
            costs.stitch_seconds_per_partition * static_cast<double>(var_shards.size()),
            std::span<const TaskId>(deps));
      } else {
        gate[static_cast<size_t>(r)][static_cast<size_t>(v)] =
            graph.AddBarrier(std::span<const TaskId>(deps));
      }
    }
  }

  // ---- Phase 2: chunked forward + backward compute per rank ------------------------
  // Each rank's session first dispatches the per-piece ops for this iteration — a
  // client-serial cost growing linearly in the piece count (theta2 of Equation 1).
  const double chunk_seconds = gpu_compute_seconds_ / compute_chunks_;
  const double dispatch_seconds =
      costs.worker_dispatch_seconds_per_piece * static_cast<double>(shards_.size());
  std::vector<std::vector<TaskId>>& chunk_task = a.chunk;
  chunk_task.resize(static_cast<size_t>(num_ranks));
  for (auto& per_rank : chunk_task) {
    per_rank.assign(static_cast<size_t>(compute_chunks_), kNoTask);
  }
  for (int r = 0; r < num_ranks; ++r) {
    TaskId prev = kNoTask;
    if (!shards_.empty() && dispatch_seconds > 0.0) {
      prev = graph.AddCpuWork(layout.MachineOfRank(r), dispatch_seconds);
    }
    for (int c = 0; c < compute_chunks_; ++c) {
      std::vector<TaskId>& deps = a.deps;
      deps.clear();
      if (prev != kNoTask) {
        deps.push_back(prev);
      }
      if (c < forward_chunks_) {
        for (int v = 0; v < static_cast<int>(variables_.size()); ++v) {
          if (pull_chunk_[static_cast<size_t>(v)] == c &&
              gate[static_cast<size_t>(r)][static_cast<size_t>(v)] != kNoTask) {
            deps.push_back(gate[static_cast<size_t>(r)][static_cast<size_t>(v)]);
          }
        }
      }
      prev = graph.AddGpuCompute(layout.MachineOfRank(r), layout.LocalGpuOfRank(r),
                                 chunk_seconds, std::span<const TaskId>(deps));
      chunk_task[static_cast<size_t>(r)][static_cast<size_t>(c)] = prev;
    }
    end_tasks.push_back(prev);
  }

  // ---- Phase 3a: AR dense groups (bucket by producing chunk = Horovod tensor fusion) --
  for (int c = forward_chunks_; c < compute_chunks_; ++c) {
    int64_t group_elements = 0;
    for (int v = 0; v < static_cast<int>(variables_.size()); ++v) {
      if (grad_chunk_[static_cast<size_t>(v)] == c &&
          variables_[static_cast<size_t>(v)].method == SyncMethod::kArAllReduce) {
        group_elements += variables_[static_cast<size_t>(v)].spec.num_elements;
      }
    }
    if (group_elements == 0) {
      continue;
    }
    std::vector<TaskId>& deps = a.collective_deps;
    deps.resize(static_cast<size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      deps[static_cast<size_t>(r)] = chunk_task[static_cast<size_t>(r)][static_cast<size_t>(c)];
    }
    // Rack-aware composition when the cluster has a spine; flat clusters take the
    // historical hierarchical schedule unchanged (bit-identity).
    const bool rack_aware =
        !cluster_spec_.topology.flat() && layout.num_machines > 1;
    const SchedulePlan& plan =
        rack_aware ? a.schedules.TopologyAllReduce(layout, cluster_spec_.topology.num_racks,
                                                   group_elements * 4, collective)
                   : a.schedules.HierarchicalAllReduce(layout, group_elements * 4, collective);
    a.schedules.Instantiate(plan, graph, {}, deps, &a.schedule);
    for (int r = 0; r < num_ranks; ++r) {
      TaskId apply = graph.AddGpuCompute(
          layout.MachineOfRank(r), layout.LocalGpuOfRank(r),
          costs.gpu_dense_apply_seconds_per_element * static_cast<double>(group_elements),
          {a.schedule.done[static_cast<size_t>(r)]});
      end_tasks.push_back(apply);
    }
  }

  // ---- Phase 3b: AR AllGatherv per sparse variable ---------------------------------
  for (int v = 0; v < static_cast<int>(variables_.size()); ++v) {
    const VariableSync& sync = variables_[static_cast<size_t>(v)];
    if (sync.method != SyncMethod::kArAllGatherv) {
      continue;
    }
    int64_t touched = static_cast<int64_t>(sync.spec.alpha *
                                           static_cast<double>(sync.spec.num_elements));
    int64_t block_bytes = touched * 4 + SparseIndexBytes(touched, sync.spec.row_elements);
    int64_t gathered_elements = touched * num_ranks;
    std::vector<TaskId>& deps = a.collective_deps;
    deps.resize(static_cast<size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      deps[static_cast<size_t>(r)] =
          chunk_task[static_cast<size_t>(r)][static_cast<size_t>(
              grad_chunk_[static_cast<size_t>(v)])];
    }
    // OpenMPI tuned-collective behavior: large blocks ride the bandwidth-efficient ring;
    // smaller ones take the broadcast-style path (calibration.h). Both are cached
    // SchedulePlans now — the broadcast fan-in used to be an inline double loop whose
    // per-rank arrival lists were rebuilt (and reallocated) per collective, which adds
    // up past ~100 ranks; its plan emits the identical task sequence.
    bool use_ring = config_.gatherv_algorithm == GathervAlgorithm::kRing ||
                    block_bytes >= costs.gatherv_ring_threshold_bytes;
    if (use_ring) {
      std::vector<int64_t>& blocks = a.blocks;
      blocks.assign(static_cast<size_t>(num_ranks), block_bytes);
      const SchedulePlan& plan = a.schedules.RankRingAllGatherv(layout, blocks, collective);
      a.schedules.Instantiate(plan, graph, {}, deps, &a.schedule);
    } else {
      // Broadcast (OpenMPI-style): every rank ships its block to every other rank.
      // Cross-machine hops are inflated by the OpenMPI effective-bandwidth derate
      // (calibration.h); intra-machine hops ride shared memory / PCIe at full speed.
      int64_t inflated_bytes = static_cast<int64_t>(
          static_cast<double>(block_bytes) * costs.gatherv_cross_machine_inflation);
      const SchedulePlan& plan =
          a.schedules.BroadcastAllGatherv(layout, block_bytes, inflated_bytes);
      a.schedules.Instantiate(plan, graph, {}, deps, &a.schedule);
    }
    for (int r = 0; r < num_ranks; ++r) {
      TaskId apply = graph.AddGpuCompute(
          layout.MachineOfRank(r), layout.LocalGpuOfRank(r),
          costs.gpu_sparse_apply_seconds_per_element *
              static_cast<double>(gathered_elements),
          {a.schedule.done[static_cast<size_t>(r)]});
      end_tasks.push_back(apply);
    }
  }

  // ---- Phase 4: PS pushes, accumulator chains, updates ------------------------------
  // Compression (VariableSync::compression) acts here and only here: the backward
  // output is selected/quantized on the worker (a CpuWork task, added only when a
  // CompressionSpec is in force), the push moves the compressed wire bytes, and the
  // accumulators/update op walk the compressed support. Pulls stay uncompressed.
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    const VariableSync& sync = variables_[static_cast<size_t>(shard.var)];
    const VariableSpec& spec = sync.spec;
    const int producing_chunk = grad_chunk_[static_cast<size_t>(shard.var)];
    const double push_alpha = PushAlpha(sync);
    const double compress_seconds = CompressSeconds(shard);
    int64_t touched_per_rank =
        spec.is_sparse
            ? static_cast<int64_t>(push_alpha * static_cast<double>(shard.elements))
            : shard.elements;

    TaskId acc_tail = kNoTask;
    if (config_.ps_local_aggregation) {
      // Gather local GPUs' gradients over PCIe, coalesce on the machine's cores, push
      // one machine-level gradient; the server's accumulator chains over machines.
      for (int m = 0; m < cluster_spec_.num_machines; ++m) {
        std::vector<TaskId>& local_deps = a.local_deps;
        local_deps.clear();
        for (int g = 0; g < gpus; ++g) {
          local_deps.push_back(chunk_task[static_cast<size_t>(layout.RankOf(m, g))]
                                         [static_cast<size_t>(producing_chunk)]);
        }
        if (compress_seconds > 0.0) {
          // Each local rank's gradient is compressed before it crosses PCIe.
          TaskId compress = graph.AddCpuWork(m, compress_seconds * gpus,
                                             std::span<const TaskId>(local_deps));
          local_deps.clear();
          local_deps.push_back(compress);
        }
        int64_t per_rank_bytes = PushBytesPerWorker(shard);
        TaskId ready;
        if (gpus > 1) {
          TaskId local_gather = graph.AddLocalTransfer(
              m, per_rank_bytes * gpus, std::span<const TaskId>(local_deps));
          if (spec.is_sparse) {
            // Coalescing local sparse gradients walks indices on the host CPU.
            double agg_seconds = costs.sparse_agg_seconds_per_element *
                                 static_cast<double>(touched_per_rank * gpus);
            ready = graph.AddCpuWork(m, agg_seconds, {local_gather});
          } else {
            // Dense local reduction is a vectorized sum folded into the gather
            // (GPU/SIMD-assisted); the PCIe crossing above is the cost.
            ready = local_gather;
          }
        } else {
          ready = graph.AddBarrier(std::span<const TaskId>(local_deps));
        }
        int64_t push_bytes;
        double acc_elements;
        if (spec.is_sparse) {
          int64_t machine_touched = static_cast<int64_t>(
              UnionAlpha(push_alpha, gpus) * static_cast<double>(shard.elements));
          push_bytes = SparseWireBytes(sync, machine_touched);
          acc_elements = static_cast<double>(machine_touched);
        } else {
          push_bytes = PushBytesPerWorker(shard);
          acc_elements = static_cast<double>(shard.elements);
        }
        TaskId push = (m == shard.server)
                          ? graph.AddLocalTransfer(m, push_bytes, {ready})
                          : graph.AddTransfer(m, shard.server, push_bytes, {ready});
        double acc_seconds =
            costs.request_overhead_seconds +
            (spec.is_sparse ? costs.sparse_agg_seconds_per_element
                            : costs.dense_agg_seconds_per_element) *
                acc_elements;
        TaskId acc_deps[2] = {push, acc_tail};
        size_t acc_dep_count = acc_tail != kNoTask ? 2 : 1;
        acc_tail = graph.AddCpuWork(shard.server, acc_seconds,
                                    std::span<const TaskId>(acc_deps, acc_dep_count));
      }
    } else {
      for (int r = 0; r < num_ranks; ++r) {
        int machine = layout.MachineOfRank(r);
        int64_t push_bytes = PushBytesPerWorker(shard);
        TaskId grad_ready =
            chunk_task[static_cast<size_t>(r)][static_cast<size_t>(producing_chunk)];
        if (compress_seconds > 0.0) {
          grad_ready = graph.AddCpuWork(machine, compress_seconds, {grad_ready});
        }
        TaskId push = (machine == shard.server)
                          ? graph.AddLocalTransfer(machine, push_bytes, {grad_ready})
                          : graph.AddTransfer(machine, shard.server, push_bytes,
                                              {grad_ready});
        double acc_seconds =
            costs.request_overhead_seconds +
            (spec.is_sparse ? costs.sparse_agg_seconds_per_element
                            : costs.dense_agg_seconds_per_element) *
                static_cast<double>(touched_per_rank);
        TaskId acc_deps[2] = {push, acc_tail};
        size_t acc_dep_count = acc_tail != kNoTask ? 2 : 1;
        acc_tail = graph.AddCpuWork(shard.server, acc_seconds,
                                    std::span<const TaskId>(acc_deps, acc_dep_count));
      }
    }

    // Update op, colocated with the shard (transformation placement rule). Sparse
    // updates pay for the touched-row scatter plus a full traversal of the piece
    // (accumulator flush + variable write) — the piece-size term partitioning divides.
    double update_elements =
        spec.is_sparse ? UnionAlpha(push_alpha, num_ranks) * static_cast<double>(shard.elements)
                       : static_cast<double>(shard.elements);
    double update_seconds =
        costs.partition_overhead_seconds +
        (spec.is_sparse ? costs.sparse_update_seconds_per_element
                        : costs.dense_update_seconds_per_element) *
            update_elements;
    if (spec.is_sparse) {
      update_seconds +=
          costs.sparse_flush_seconds_per_element * static_cast<double>(shard.elements);
    }
    TaskId update = graph.AddCpuWork(shard.server, update_seconds, {acc_tail});
    end_tasks.push_back(update);
  }

  // ---- Iteration barrier (chief-worker notification through shared queues) ----------
  TaskId barrier = graph.AddBarrier(std::span<const TaskId>(end_tasks));
  final_task_ = barrier;
  built_multi_rank_ = true;
  TaskResult result = graph.Execute(cluster, start_time);
  return graph.FinishTime(barrier) == 0.0 ? result.finish_time : graph.FinishTime(barrier);
}

std::vector<double> IterationSimulator::RunIterations(int iterations) {
  Cluster cluster(cluster_spec_);
  std::vector<double> durations;
  durations.reserve(static_cast<size_t>(iterations));
  SimTime t = 0.0;
  for (int i = 0; i < iterations; ++i) {
    SimTime finish = SimulateIteration(cluster, t);
    durations.push_back(finish - t);
    t = finish;
  }
  return durations;
}

double IterationSimulator::MeasureIterationSeconds(int warmup, int measure) {
  PX_CHECK_GT(measure, 0);
  std::vector<double> durations = RunIterations(warmup + measure);
  double sum = 0.0;
  for (int i = warmup; i < warmup + measure; ++i) {
    sum += durations[static_cast<size_t>(i)];
  }
  return sum / measure;
}

}  // namespace parallax
