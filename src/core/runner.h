// ParallaxRunner — the runtime behind the get_runner API (paper sections 4.1, 4.2).
//
// Given a single-GPU graph, a loss node, and a resource specification, the runner:
//   1. samples a backward pass to classify variables (dense / sparse) and measure alpha,
//   2. runs the partition search for partitioner-scoped sparse variables (section 3.2),
//   3. assigns each variable a synchronization architecture (hybrid rule, section 3.1),
//   4. transforms the graph (section 4.3) — the resulting DistributedGraph is inspectable,
//   5. trains: each Step() executes every GPU replica's forward/backward on its shard of
//      the batch (numerics are real), synchronizes gradients through the PS/AR numeric
//      engines, and advances the simulated clock by the iteration's task-graph makespan.
//
// The runner therefore produces both a *learning curve* (real losses/parameters) and a
// *time axis* (simulated seconds) — the two ingredients of the paper's Figure 7.
#ifndef PARALLAX_SRC_CORE_RUNNER_H_
#define PARALLAX_SRC_CORE_RUNNER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/ar/ar_numeric.h"
#include "src/core/analysis.h"
#include "src/core/cost_model.h"
#include "src/core/iteration_sim.h"
#include "src/core/resources.h"
#include "src/core/transform.h"
#include "src/graph/executor.h"
#include "src/ps/ps_numeric.h"

namespace parallax {

struct ParallaxConfig {
  AggregationMethod dense_aggregation = AggregationMethod::kAverage;
  AggregationMethod sparse_aggregation = AggregationMethod::kAverage;
  // Use local (per-machine) aggregation and machine-level pulls for PS variables.
  bool local_aggregation = true;
  double alpha_dense_threshold = 0.8;
  // Automatic partition search for partitioner-scoped variables; when disabled,
  // manual_partitions is applied directly.
  bool auto_partition = true;
  int manual_partitions = 1;
  PartitionSearchOptions search{.initial_partitions = 8,
                                .min_partitions = 1,
                                .max_partitions = 1024,
                                .warmup_iterations = 10,
                                .measured_iterations = 10};
  // Compute profile of one replica's fwd+bwd for the timing plane.
  double gpu_compute_seconds = 4e-3;
  int compute_chunks = 4;
  float learning_rate = 0.1f;
  // Hardware parameters (bandwidths, cores); machine/GPU counts come from ResourceSpec.
  ClusterSpec hardware = ClusterSpec::Paper();
  SyncCostParams costs;
};

class GraphRunner {
 public:
  GraphRunner(const Graph* graph, NodeId loss, const ResourceSpec& resources,
              ParallaxConfig config);

  // One synchronous data-parallel step; per_rank_feeds[r] is rank r's mini-batch shard.
  // Returns the mean loss across replicas.
  float Step(const std::vector<FeedMap>& per_rank_feeds);

  // Forward evaluation of `fetch` on the chief's current variable view.
  Tensor Evaluate(const FeedMap& feeds, NodeId fetch);

  // ---- introspection ----
  int num_ranks() const { return resources_.total_gpus(); }
  const std::vector<VariableSync>& assignment() const;
  const DistributedGraph& distributed_graph() const;
  int chosen_sparse_partitions() const { return chosen_partitions_; }
  const std::optional<PartitionSearchResult>& partition_search() const { return search_result_; }
  double simulated_seconds() const { return simulated_seconds_; }
  int64_t iterations() const { return iterations_; }
  // The chief worker's view of all variables (PS materialized + AR replica values).
  VariableStore WorkerView() const;

 private:
  void InitializeFromSamples(const std::vector<FeedMap>& per_rank_feeds);

  const Graph* graph_;
  NodeId loss_;
  ResourceSpec resources_;
  ParallaxConfig config_;
  Executor executor_;

  bool initialized_ = false;
  std::vector<VariableSync> assignment_;
  std::optional<DistributedGraph> distributed_graph_;
  std::optional<PartitionSearchResult> search_result_;
  int chosen_partitions_ = 1;

  std::unique_ptr<PsNumericEngine> ps_engine_;
  std::unique_ptr<ArNumericEngine> ar_engine_;
  // One arena for the partition search and the training-time timing plane: cached
  // collective schedules and task storage persist for the runner's lifetime.
  std::unique_ptr<SimulationArena> sim_arena_;
  std::unique_ptr<IterationSimulator> timing_;
  std::unique_ptr<Cluster> cluster_;
  double simulated_seconds_ = 0.0;
  int64_t iterations_ = 0;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_RUNNER_H_
