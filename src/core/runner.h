// ParallaxRunner — the runtime behind the session API (paper sections 4.1, 4.2).
//
// Given a single-GPU graph, a loss node, and a resource specification, the runner:
//   1. samples a backward pass to classify variables (dense / sparse) and measure alpha,
//   2. runs the partition search for partitioner-scoped sparse variables (section 3.2):
//      uniform (one shared P) or per-variable (a PartitionPlan found by coordinate
//      descent at each variable's measured alpha, PartitionSearchMode::kPerVariable),
//   3. assigns each variable a synchronization architecture (hybrid rule, section 3.1)
//      and a SyncEngine (registry name; RunnerBuilder::WithEngine overrides per
//      variable), summarized as one SyncPlan carrying each variable's own partition
//      count,
//   4. transforms the graph (section 4.3) — the resulting DistributedGraph is inspectable,
//   5. trains: each Step() executes every GPU replica's forward/backward on its shard of
//      the batch (numerics are real), hands the per-rank results to every prepared
//      SyncEngine, and advances the simulated clock by the iteration's task-graph
//      makespan,
//   6. adapts (optional, WithAdaptivePartitioning): a SparsityMonitor folds the nnz
//      each engine observed into per-variable measured alphas, and on drift the
//      partition search re-runs against the measured workload, swapping the layout
//      via Repartition when the simulated win clears the hysteresis margin and
//      amortizes the migration's shard-byte cost — which is charged to the simulated
//      clock — before the loop could revisit the decision (docs/adaptivity.md).
//
// The runner therefore produces both a *learning curve* (real losses/parameters) and a
// *time axis* (simulated seconds) — the two ingredients of the paper's Figure 7.
//
// The resource set is NOT fixed for the runner's life: Rescale(ResourceSpec) swaps the
// worker/server membership mid-training — shards migrate value-preservingly, the
// partition/placement search re-runs against the new topology, and the migration's
// bytes are charged to the simulated clock (docs/elasticity.md). Checkpoint/RestoreFrom
// (WithCheckpoint) add crash recovery with replay bounded by the checkpoint interval.
//
// Engines are reached exclusively through the SyncEngine interface
// (core/sync_engine.h); the runner never names a concrete engine type.
// Repartition(plan) swaps the partition layout mid-training (values preserved),
// re-preparing only the engines that own a variable whose count actually changed.
#ifndef PARALLAX_SRC_CORE_RUNNER_H_
#define PARALLAX_SRC_CORE_RUNNER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/cost_model.h"
#include "src/core/iteration_sim.h"
#include "src/core/resources.h"
#include "src/core/sparsity_monitor.h"
#include "src/core/sync_engine.h"
#include "src/core/transform.h"
#include "src/graph/checkpoint.h"
#include "src/graph/executor.h"
#include "src/sim/arena_pool.h"

namespace parallax {

class PlannerService;
struct PlannerQuery;

// Routes every variable whose name matches `pattern` (GlobMatch: '*'/'?') to the
// registered engine `engine`. Later overrides win; unmatched variables follow the
// hybrid rule ("ps" for sparse, "ar" for dense / high-alpha sparse).
struct EngineOverride {
  std::string pattern;
  std::string engine;
};

// Periodic checkpointing (RunnerBuilder::WithCheckpoint): the crash-recovery half of
// elasticity (docs/elasticity.md). Every interval_steps applied steps the runner
// writes the full variable state plus the training clock to `path`; a rank death
// therefore replays at most interval_steps steps after RestoreFrom. Writes and reads
// charge the checkpoint's bytes over disk_bandwidth to the *simulated* clock — the
// recovery cost is honest while the numerics stay untouched.
struct CheckpointConfig {
  std::string path;
  // 0 = no periodic writes; Checkpoint() still works on demand.
  int interval_steps = 0;
  // Bytes per second of the checkpoint store (simulated-clock charge only).
  double disk_bandwidth = 2e9;
};

// One entry of the rescale trail: a membership change GraphRunner::Rescale performed.
// Both seconds are measured on the NEW topology, so adopted_seconds <= incumbent_seconds
// always holds — Rescale keeps the incumbent layout unless the re-search beats it.
struct RescaleEvent {
  int64_t step = 0;
  int from_machines = 0;
  int to_machines = 0;
  int from_ranks = 0;
  int to_ranks = 0;
  PartitionPlan from_plan;
  PartitionPlan to_plan;
  double incumbent_seconds = 0.0;  // old layout simulated on the new cluster
  double adopted_seconds = 0.0;    // layout in force after the rescale
  double migration_seconds = 0.0;  // shard-move estimate charged to the clock
};

struct ParallaxConfig {
  AggregationMethod dense_aggregation = AggregationMethod::kAverage;
  AggregationMethod sparse_aggregation = AggregationMethod::kAverage;
  // Use local (per-machine) aggregation and machine-level pulls for PS variables.
  bool local_aggregation = true;
  double alpha_dense_threshold = 0.8;
  // Automatic partition search for partitioner-scoped variables; when disabled, the
  // manual layout is applied directly (manual_plan when set, else a uniform
  // manual_partitions).
  bool auto_partition = true;
  int manual_partitions = 1;
  std::optional<PartitionPlan> manual_plan;
  // Uniform (one shared P, the default) or per-variable (a PartitionPlan found by
  // coordinate descent) — applies to both the startup search and adaptive re-searches.
  PartitionSearchMode search_mode = PartitionSearchMode::kUniform;
  // Per-variable search only: also search each variable's shard *placement* (which
  // server machine hosts each piece) against the cluster's topology — the greedy
  // bottleneck-utilization seed plus measured-clock swap refinement of
  // PlacementSearchOptions. Off by default: placement-oblivious runs stay bit-identical.
  bool search_placement = false;
  PartitionSearchOptions search{.initial_partitions = 8,
                                .min_partitions = 1,
                                .max_partitions = 1024,
                                .warmup_iterations = 10,
                                .measured_iterations = 10};
  // Compute profile of one replica's fwd+bwd for the timing plane.
  double gpu_compute_seconds = 4e-3;
  int compute_chunks = 4;
  float learning_rate = 0.1f;
  // Hardware parameters (bandwidths, cores); machine/GPU counts come from ResourceSpec.
  ClusterSpec hardware = ClusterSpec::Paper();
  SyncCostParams costs;
  // Batch all sparse variables of a step through one fused workspace pass (PS-family
  // engines); off = per-variable aggregation, kept for benchmarking/verification.
  bool fuse_sparse_variables = true;
  // Per-variable engine routing (normally filled by RunnerBuilder::WithEngine).
  std::vector<EngineOverride> engine_overrides;
  // Adaptive re-partitioning from measured sparsity drift (normally filled by
  // RunnerBuilder::WithAdaptivePartitioning). Disengaged when unset: the runner then
  // attaches no observer and every step is bit-identical to a pre-monitor run.
  std::optional<AdaptivePartitioningPolicy> adaptive_partitioning;
  // Periodic checkpointing (normally filled by RunnerBuilder::WithCheckpoint).
  // Disengaged when unset: Checkpoint()/CheckpointTo still work on demand.
  std::optional<CheckpointConfig> checkpoint;
  // Shared planning front-end (normally filled by RunnerBuilder::WithPlanner). When
  // set, the startup search, adaptive re-searches, and rescale re-searches route
  // through the service's cache/coalescing instead of searching on the private arena;
  // a cache hit is byte-identical to what the private search would have produced.
  // Unset = the private-arena path, the default and the bit-for-bit oracle.
  std::shared_ptr<PlannerService> planner;
};

class GraphRunner {
 public:
  GraphRunner(const Graph* graph, NodeId loss, const ResourceSpec& resources,
              ParallaxConfig config);

  // One synchronous data-parallel step; per_rank_feeds[r] is rank r's mini-batch shard.
  // Returns the mean loss across replicas.
  float Step(const std::vector<FeedMap>& per_rank_feeds);

  // Forward evaluation of `fetch` on the chief's current variable view.
  Tensor Evaluate(const FeedMap& feeds, NodeId fetch);

  // Elastic re-partitioning: swaps the partition layout mid-training. Values are
  // preserved bit-for-bit; only engines owning a variable whose count actually changed
  // are re-Prepared (and the PS engine re-splits only those variables); the timing
  // plane and the distributed graph are rebuilt for the new layout.
  void Repartition(const PartitionPlan& plan);
  // Uniform-plan shim: Repartition(PartitionPlan::Uniform(sparse_partitions)).
  void Repartition(int sparse_partitions);

  // Elastic membership change (docs/elasticity.md): workers and servers join or leave
  // mid-training. Values are preserved bit-for-bit — PS shards re-split around the
  // current values, AR replicas clone on grow / truncate on shrink. The partition and
  // placement search re-runs against the NEW cluster's topology, and the result is
  // adopted only if it beats the incumbent layout simulated on that same topology
  // (placements referencing departed machines are cleared first). The shard-migration
  // estimate — placement-aware, surviving machines keep their indices so stay-put
  // shards are free — is charged to the simulated clock, and the monitor (if any)
  // re-anchors its baselines like an adopted drift verdict. Requires an initialized
  // runner (the first Step samples the graph) and a homogeneous non-empty spec.
  Status Rescale(const ResourceSpec& resources);

  // Writes the full variable state + training clock to the configured checkpoint path
  // (FailedPrecondition without WithCheckpoint). Charges the file's bytes over the
  // configured disk bandwidth to the simulated clock.
  Status Checkpoint();
  // Same, to an explicit path (works without a CheckpointConfig).
  Status CheckpointTo(const std::string& path);
  // Loads a checkpoint into the live engines: values replace the current state, the
  // step counter and simulated clock resume from the stored metadata plus the read
  // charge. On an uninitialized runner the restore is deferred: the first Step samples
  // the restored values and applies them once the engines exist — replay after a rank
  // death is therefore bit-for-bit (partition layout never affects numerics).
  Status RestoreFrom(const std::string& path);

  // ---- introspection ----
  int num_ranks() const { return resources_.total_gpus(); }
  const std::vector<VariableSync>& assignment() const;
  const SyncPlan& plan() const;
  // The prepared engine registered under `name`, or nullptr if the plan routes no
  // variable to it.
  SyncEngine* engine(const std::string& name) const;
  const DistributedGraph& distributed_graph() const;
  // The partition layout in force. Uniform for the int-based entry points; per-variable
  // once a PartitionPlan was searched, passed via WithPartitionPlan, or adopted by the
  // adaptive loop.
  const PartitionPlan& partition_plan() const { return partition_plan_; }
  // DEPRECATED single-number summary: the max partition count over the plan. Exact for
  // uniform plans; a heterogeneous plan cannot be described by one int — read
  // partition_plan() instead.
  int chosen_sparse_partitions() const { return partition_plan_.MaxPartitions(); }
  const std::optional<PartitionSearchResult>& partition_search() const { return search_result_; }
  // The per-variable search's full result (plan, measured seconds, uniform baseline).
  // Set only when the startup search ran in PartitionSearchMode::kPerVariable.
  const std::optional<PartitionPlanSearchResult>& plan_search() const {
    return plan_search_result_;
  }
  double simulated_seconds() const { return simulated_seconds_; }
  int64_t iterations() const { return iterations_; }
  // The adaptive loop's measurement and decision trail (measured alphas per variable,
  // every re-search verdict). Null unless the config enables adaptive partitioning and
  // the plan routes at least one sparse variable to a PS-family engine.
  const SparsityMonitor* sparsity_monitor() const { return monitor_.get(); }
  // Repartitions the adaptive loop performed (0 without a monitor).
  int adaptive_repartitions() const {
    return monitor_ != nullptr ? monitor_->repartition_count() : 0;
  }
  // The membership in force (the constructor's spec until Rescale swaps it).
  const ResourceSpec& resources() const { return resources_; }
  // Every membership change performed, oldest first.
  const std::vector<RescaleEvent>& rescale_trail() const { return rescale_trail_; }
  int rescales() const { return static_cast<int>(rescale_trail_.size()); }
  // Step at which the last checkpoint was written (or restored from); -1 if none.
  int64_t last_checkpoint_step() const { return last_checkpoint_step_; }
  int checkpoints_written() const { return checkpoints_written_; }
  // The chief worker's view of all variables (a fresh snapshot of every engine's View).
  VariableStore WorkerView() const;

 private:
  void InitializeFromSamples(const std::vector<FeedMap>& per_rank_feeds);
  // Union of every engine's View() — tensors may share engine buffers (valid until the
  // next ApplyStep/Prepare), which is exactly the lifetime the step path needs.
  VariableStore ComposeView() const;
  // Rebuilds the timing simulator and the inspectable distributed graph from plan_.
  void RebuildTimingPlane();
  // Simulator configuration shared by the partition search, the training-time timing
  // plane, and the adaptive re-search.
  IterationSimConfig MakeSimConfig() const;
  // Copy of plan_.variables with the partition layout swapped (the same per-variable
  // gate Repartition applies): each partitioner-scoped PS-family variable gets the
  // plan's count for its name, capped at its row count; everything else untouched.
  std::vector<VariableSync> VariablesWithPartitions(const PartitionPlan& plan) const;
  // Cost-model estimate of swapping plan_.variables for `to`, placement-aware: both
  // layouts are resolved to effective shard servers (ResolveShardServers), and only
  // the bytes whose owning server actually changes move — charged over the actual
  // path's bottleneck link (NIC within a rack, min(NIC, spine) across racks; a piece
  // staying on its server moves nothing). Every piece that sends or receives bytes
  // costs one round of request handling.
  double MigrationSeconds(const std::vector<VariableSync>& to) const;
  // Cross-membership generalization behind MigrationSeconds and Rescale: `from` and
  // `to` resolve their shard servers against their own machine counts; `topology` must
  // be the larger cluster's (its machine indices cover both sides — survivors keep
  // their indices, so a shard on a surviving server moves nothing).
  double MigrationSecondsBetween(const std::vector<VariableSync>& from, int from_machines,
                                 const std::vector<VariableSync>& to, int to_machines,
                                 const Topology& topology) const;
  // config_.search with the placement block filled from the cluster topology when
  // config_.search_placement asks for it (call sites still set initial_partitions).
  PartitionSearchOptions SearchOptionsForCluster() const;
  // The variables the per-variable search may re-shard: partitioner-scoped sparse
  // variables the plan routes to PS (engine overrides respected), with the plan's
  // current alphas (startup-sampled at initialization, monitor-measured afterwards).
  // Requires plan_.variables to be routed, which both call sites guarantee.
  std::vector<PartitionSearchVariable> SearchTargets() const;
  // Packages this runner's current search inputs (variables, targets, cluster, sim
  // config, options) as a PlannerService query. The query fully determines the search
  // outcome; alphas are the plan's current (startup-sampled or monitor-measured) ones.
  PlannerQuery MakePlannerQuery(const PartitionSearchOptions& options,
                                const std::vector<PartitionSearchVariable>& targets) const;
  // The batch-measure callback the private searches hand to the batched overloads —
  // candidates fan out over options.concurrency's pool, one leased arena per worker
  // (search_arenas_, created on first use). Null (= serial search) when no pool is
  // configured; results are bit-identical either way (cost_model.h).
  PlanBatchMeasure MakeSearchBatchMeasure(const PartitionSearchOptions& options);
  // Creates the sparsity monitor and attaches it to the engines, when the config asks
  // for adaptive partitioning and the plan has monitorable variables.
  void MaybeStartMonitor();
  // The adaptive loop's per-step tail: fold observations, check drift, re-search
  // (uniform or per-variable per config_.search_mode), and Repartition when the
  // simulated win clears the hysteresis margin AND amortizes the migration cost —
  // which is then charged to the simulated clock — within the cooldown window.
  void MaybeAdapt();

  const Graph* graph_;
  NodeId loss_;
  ResourceSpec resources_;
  ParallaxConfig config_;
  Executor executor_;
  // Gradient buffer plan: backward-pass scratch reused by every RunStep this runner
  // issues (sampling and training).
  ExecScratch exec_scratch_;
  // Per-rank StepResults reused across training steps (RunStepInto recycles their map
  // nodes and gradient storage, so steady-state steps stay off the allocator). Engines
  // must not retain references into them past ApplyStep.
  std::vector<StepResult> step_results_;

  bool initialized_ = false;
  std::unordered_map<int, VariableSparsity> sparsity_;
  SyncPlan plan_;
  // Prepared engines, in order of first appearance in the plan.
  std::vector<std::unique_ptr<SyncEngine>> engines_;
  std::optional<DistributedGraph> distributed_graph_;
  std::optional<PartitionSearchResult> search_result_;
  std::optional<PartitionPlanSearchResult> plan_search_result_;
  // The layout in force for partitioner-scoped sparse variables (uniform until a
  // per-variable search or Repartition(plan) says otherwise).
  PartitionPlan partition_plan_;
  ClusterSpec cluster_spec_;

  // One arena for the partition search and the training-time timing plane: cached
  // collective schedules and task storage persist for the runner's lifetime.
  std::unique_ptr<SimulationArena> sim_arena_;
  // Extra arenas for parallel candidate evaluation (WithSearchConcurrency), created
  // lazily on the first concurrent search and kept warm across startup/adaptive/
  // rescale re-searches.
  std::unique_ptr<ArenaPool> search_arenas_;
  std::unique_ptr<IterationSimulator> timing_;
  std::unique_ptr<Cluster> cluster_;
  double simulated_seconds_ = 0.0;
  int64_t iterations_ = 0;

  // Adaptive re-partitioning: engines report observed nnz here; MaybeAdapt reads the
  // EWMAs back. Engines hold a raw pointer to the monitor, so it must outlive them
  // within any single step (both live for the runner's lifetime once created).
  std::unique_ptr<SparsityMonitor> monitor_;

  // Elasticity state. rescale_trail_ records every membership change;
  // pending_restore_ holds a checkpoint loaded before the first Step (applied to the
  // engines the moment they exist, inside InitializeFromSamples).
  std::vector<RescaleEvent> rescale_trail_;
  struct PendingRestore {
    VariableStore store;
    CheckpointMeta meta;
    double read_seconds = 0.0;
  };
  std::optional<PendingRestore> pending_restore_;
  int64_t last_checkpoint_step_ = -1;
  int checkpoints_written_ = 0;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_RUNNER_H_
