// Framework presets: each baseline and Parallax itself expressed as a per-variable
// synchronization assignment over the unified iteration simulator.
//
//  - kTfPs     — TensorFlow with the PS architecture (the paper's TF-PS baseline):
//                every variable on parameter servers, per-worker pulls/pushes, no local
//                aggregation ("NaivePS" in Table 4).
//  - kHorovod  — the AR architecture: AllReduce (NCCL-style hierarchical ring) for dense
//                variables, AllGatherv (OpenMPI-style broadcast) for sparse ones.
//  - kOptPs    — Parallax's optimized PS: local aggregation + machine-level pulls and
//                smart placement, still PS for everything (Table 4's "OptPS").
//  - kParallax — the hybrid: AR for dense variables, OptPS for sparse ones, with the
//                alpha-threshold escape hatch (sparse variables with alpha close to 1 are
//                treated as dense and AllReduced; paper end of section 3.1).
#ifndef PARALLAX_SRC_CORE_FRAMEWORKS_H_
#define PARALLAX_SRC_CORE_FRAMEWORKS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/iteration_sim.h"
#include "src/models/model_spec.h"

namespace parallax {

enum class Framework {
  kTfPs,
  kHorovod,
  kOptPs,
  kParallax,
};

const char* FrameworkName(Framework framework);

struct FrameworkOptions {
  // Partition count applied to sparse variables synchronized through PS. The paper
  // applies manual partitioning to the baselines too (section 6.2); Parallax's automatic
  // search (core/partition_search.h) fills this in when auto_partition is used.
  int sparse_partitions = 1;
  // Sparse variables with alpha >= this are treated as dense under kParallax.
  double alpha_dense_threshold = 0.8;
  // Overrides the AllGatherv algorithm for AR-synchronized sparse variables.
  GathervAlgorithm gatherv_algorithm = GathervAlgorithm::kBroadcast;
  SyncCostParams costs;
};

// Coarse per-iteration cost estimates used by the hybrid assigner (paper section 3.1:
// AR is chosen for a sparse variable when its balanced-ring efficiency outweighs the
// 1/alpha-times-larger transfer). Both estimates use the same calibration constants as
// the full simulator, so the decision is consistent with what the simulator would show.
double EstimateArSeconds(const VariableSpec& spec, const ClusterSpec& cluster,
                         const SyncCostParams& costs);
// compute_overlap_seconds credits the server-CPU accumulator chain for the backward-pass
// window it hides under (chains start as soon as the first gradients arrive and run on
// CPUs while GPUs keep computing); callers pass a fraction of the model's per-iteration
// compute time.
double EstimatePsSeconds(const VariableSpec& spec, const ClusterSpec& cluster,
                         const SyncCostParams& costs, int partitions,
                         double compute_overlap_seconds = 0.0);

// Per-variable assignment under the given framework. The cluster matters for kParallax:
// the cost-based hybrid decision depends on machine count and bandwidth.
std::vector<VariableSync> AssignVariables(Framework framework, const ModelSpec& model,
                                          const FrameworkOptions& options,
                                          const ClusterSpec& cluster = ClusterSpec::Paper());

// Simulator configuration (local aggregation etc.) under the given framework.
IterationSimConfig SimConfigFor(Framework framework, const FrameworkOptions& options);

// Convenience: a ready-to-run simulator for (framework, cluster, model). Pass a shared
// SimulationArena to reuse task storage and cached schedules across many simulators
// (e.g. every sampled P of a partition search); null gives the simulator a private one.
IterationSimulator MakeFrameworkSimulator(Framework framework, const ClusterSpec& cluster,
                                          const ModelSpec& model,
                                          const FrameworkOptions& options,
                                          SimulationArena* arena = nullptr);

// Steady-state throughput in the model's item unit (images/sec or words/sec).
double MeasureFrameworkThroughput(Framework framework, const ClusterSpec& cluster,
                                  const ModelSpec& model, const FrameworkOptions& options,
                                  int warmup_iterations = 8, int measured_iterations = 12);

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_FRAMEWORKS_H_
