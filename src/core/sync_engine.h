// The synchronization-engine seam (paper section 3.1: the synchronization architecture
// is a *per-variable* decision).
//
// A SyncPlan is the runner's complete per-variable routing: which engine synchronizes
// each variable, with which partition count, under which aggregation semantics. A
// SyncEngine is one synchronization mechanism (parameter server, AllReduce, async PS,
// anything registered) behind a small interface:
//
//   Prepare(plan)    — (re)configure for the variables the plan routes here. The first
//                      call initializes from the graph's initial values; later calls
//                      preserve the current values, which is what makes elastic
//                      mid-training re-partitioning a plain re-Prepare.
//   ApplyStep(...)   — one synchronous data-parallel step over the managed variables.
//   View()           — the managed variables' current values as a worker observes them.
//   CostMethod(kind) — the timing-plane model for a variable of this gradient kind
//                      (the cost hook the iteration simulator consumes).
//
// plus two opt-in hooks: SequentialArrival() (asynchronous per-rank delivery) and
// set_observer() (the sparse-nnz tap behind adaptive re-partitioning,
// core/sparsity_monitor.h).
//
// Engines register by name in the SyncEngineRegistry ("ps", "ar", "async_ps" are
// built in), so new strategies plug into RunnerBuilder::WithEngine without touching
// the runner. The PS/AR/async-PS numeric runtimes in src/ps and src/ar implement this
// interface; this header is the one core interface they are allowed to include.
#ifndef PARALLAX_SRC_CORE_SYNC_ENGINE_H_
#define PARALLAX_SRC_CORE_SYNC_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/comm/reduce.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/models/model_spec.h"

namespace parallax {

// How one variable's gradients are synchronized (the timing-plane vocabulary).
enum class SyncMethod : uint8_t {
  kPs,            // parameter server shard(s): pull / push / accumulate / update
  kArAllReduce,   // dense ring AllReduce (also used for sparse-treated-as-dense)
  kArAllGatherv,  // sparse AllGatherv across ranks
};

// AllGatherv algorithm. kRing is the bandwidth-optimal schedule; kBroadcast models the
// OpenMPI fallback the paper had to use ("we inevitably use OpenMPI for AllGatherv,
// which is not provided by NCCL", section 6.1): every rank sends its block to every
// other rank, which floods the receiving NICs at scale.
enum class GathervAlgorithm : uint8_t {
  kRing,
  kBroadcast,
};

// How a compression engine transforms one variable's gradient before it reaches the
// wire — the timing-plane vocabulary for the compressed-push cost (engines declare
// theirs through SyncEngine::CostCompression; the iteration simulator prices it).
enum class CompressionKind : uint8_t {
  kNone,  // uncompressed (the default for every built-in engine)
  kTopK,  // magnitude top-k row sparsification: only ratio * nnz rows reach the wire
  kInt8,  // per-row int8 quantization: values shrink 4x, one float scale per row
};

struct CompressionSpec {
  CompressionKind kind = CompressionKind::kNone;
  // kTopK: fraction of the touched rows that survive selection (k = ceil(ratio * nnz)).
  double ratio = 1.0;
  // kTopK: unsent rows accumulate into a residual and re-compete next step (DGC-style
  // error feedback) instead of being dropped. Changes numerics, not wire volume.
  bool error_feedback = true;
};

struct VariableSync {
  VariableSpec spec;
  SyncMethod method = SyncMethod::kPs;
  // How this variable's gradient is compressed before the push. Stamped by the runner
  // from the routed engine's CostCompression hook; kNone for the built-in engines. The
  // simulator prices the compressed wire bytes plus the select/quantize compute from
  // this, which is what lets the partition search exploit compression.
  CompressionSpec compression;
  // PS only; >1 splits the shard row-wise across servers. This count is per variable —
  // a PartitionPlan stamps each partitioner-scoped variable's own count here (row-
  // capped), and the PS-family engines split their shards from exactly this field.
  int partitions = 1;
  // PS only; placement[p] is the server machine hosting piece p. Empty (the default)
  // means the historical round-robin assignment; when a PartitionPlan carries a
  // searched placement the runner stamps it here (only if its length matches the
  // row-capped partition count), and the timing plane, the migration estimate, and the
  // PS-family engines all read shard ownership from this one field.
  std::vector<int> placement;
};

// The runner's complete synchronization decision, handed to every engine's Prepare.
// `variables` and `engines` are parallel to Graph::variables().
struct SyncPlan {
  std::vector<VariableSync> variables;
  // Registry name of the engine synchronizing each variable ("ps", "ar", ...).
  std::vector<std::string> engines;

  int num_ranks = 1;
  // Ranks per machine (local-aggregation grouping for PS-family engines).
  int ranks_per_machine = 1;
  // Single-number summary of the partition layout: the max of variables[v].partitions
  // the runner put in force (legacy field — engines consume the per-variable counts in
  // `variables`, never this). A heterogeneous plan is NOT one number; this exists only
  // so old introspection keeps reading something sensible.
  int sparse_partitions = 1;
  bool local_aggregation = true;
  // Batch all of an engine's sparse variables through one fused workspace pass.
  bool fuse_sparse_variables = true;
  AggregationMethod dense_aggregation = AggregationMethod::kAverage;
  AggregationMethod sparse_aggregation = AggregationMethod::kAverage;

  // Indices of the variables the plan routes to `engine`, ascending.
  std::vector<int> ManagedBy(const std::string& engine) const;
};

// Receives the nonzero structure the synchronization path observes while it applies a
// step — the raw signal behind measured alpha (core/sparsity_monitor.h). Observations
// ride data the aggregation kernels compute anyway (coalesced row counts from the fused
// workspace pass), so an attached observer costs one virtual call per sparse variable
// per step and a detached one costs nothing.
class SparseAccessObserver {
 public:
  virtual ~SparseAccessObserver() = default;

  // One sparse variable's aggregated gradient in one applied step: `unique_rows`
  // distinct row indices after coalescing the contributions of `contributions` ranks.
  // contributions == 1 means a per-worker gradient (e.g. an asynchronous push) — a
  // direct access-ratio sample; contributions == R means the union over R workers,
  // which the monitor inverts through the independent-access model (UnionAlpha).
  // Called from the engine's step path (the runner's thread of control), never from
  // kernel worker lanes.
  virtual void ObserveSparseStep(int variable, int64_t unique_rows, int contributions) = 0;

  // Per-rank tap: ONE worker's own coalesced row count for `variable` in the step in
  // flight — a direct access-ratio sample that needs no union inversion, so it stays
  // unbiased even when workers share hot rows (where the independent-access inversion
  // under-reads alpha). Engines with an observer attached call it once per sparse
  // variable per step for a rotating rank (every worker is represented over time at
  // the cost of a single count per step); the default no-op keeps single-sample
  // observers (contributions == 1 paths) free of double counting.
  virtual void ObserveRankAccess(int variable, int64_t unique_rows) {
    (void)variable;
    (void)unique_rows;
  }
};

class SyncEngine {
 public:
  virtual ~SyncEngine() = default;

  // (Re)configures the engine for the plan entries naming it. Must be value-preserving:
  // a second Prepare (e.g. with a new partition count) keeps the variables' current
  // values bit-identical.
  virtual void Prepare(const SyncPlan& plan) = 0;

  // One synchronous training step given every rank's backward results; applies SGD with
  // `learning_rate` to the managed variables.
  virtual void ApplyStep(const std::vector<StepResult>& per_rank, float learning_rate) = 0;

  // Current values of the managed variables, as a worker pulling now observes them.
  // Returned tensors may share the engine's buffers and are valid until the next
  // ApplyStep/Prepare; callers that need a snapshot Clone() the store.
  virtual VariableStore View() const = 0;

  // Overwrites the managed variables' current values from `values` (a full worker
  // view, e.g. a loaded checkpoint), keeping the engine's layout — partition counts,
  // placements, replica structure — untouched. The restore counterpart of the
  // value-preserving re-Prepare: Prepare carries values across a layout change,
  // LoadValues carries a layout across a value change (crash recovery,
  // GraphRunner::RestoreFrom). Engines must copy, never alias, the incoming tensors.
  // Only variables present in `values` AND managed by this engine move; the default
  // no-op suits engines that hold no persistent state.
  virtual void LoadValues(const VariableStore& values) { (void)values; }

  // Cost hook for the timing plane: how the iteration simulator models a variable of
  // this gradient kind when it is synchronized by this engine.
  virtual SyncMethod CostMethod(GradKind kind) const = 0;

  // Companion cost hook: how this engine compresses a gradient of `kind` before the
  // wire. The default (kNone) keeps every existing engine's timing plane untouched;
  // compression engines return their configured spec so the simulator and the
  // partition search price the compressed volume.
  virtual CompressionSpec CostCompression(GradKind kind) const {
    (void)kind;
    return {};
  }

  // Arrival semantics. An engine returning true wants each rank's gradients the moment
  // they are computed — the barrier-free asynchronous protocol: the runner then runs
  // ranks sequentially, refreshing the worker view between them, and delivers each
  // rank's results as a one-element ApplyStep (so rank r+1 computes against the values
  // rank r already moved — staleness, paper section 2.1). Honored only when EVERY
  // engine in the plan agrees; a mixed plan falls back to the synchronous barrier,
  // where per-rank results arrive as one batch in rank order.
  virtual bool SequentialArrival() const { return false; }

  // Registry name this instance answers to in SyncPlan::engines. Concrete engines set
  // their canonical name at construction; the registry overrides it when a factory is
  // registered under a different name.
  const std::string& name() const { return name_; }

  // Attaches (or, with nullptr, detaches) the observer this engine reports sparse
  // access structure to. Honored by the PS-family engines — the ones whose variables
  // the partitioner owns; engines without an observable sparse path ignore the
  // observer, which is the correct default for mechanisms partitioning cannot affect.
  // Virtual so wrapper engines (async PS) can forward the observer to the engine they
  // delegate to. The observer must outlive the engine or be detached first.
  virtual void set_observer(SparseAccessObserver* observer) { observer_ = observer; }

 protected:
  void set_name(std::string name) { name_ = std::move(name); }
  SparseAccessObserver* observer() const { return observer_; }

 private:
  friend class SyncEngineRegistry;
  std::string name_;
  SparseAccessObserver* observer_ = nullptr;
};

// What a registered factory gets to construct an engine; per-step specifics arrive via
// Prepare.
struct SyncEngineEnv {
  const Graph* graph = nullptr;
  int num_ranks = 1;
};

// Name -> factory registry. "ps", "ar", "async_ps", "topk_ps", and "int8_ps" are
// pre-registered; libraries and tests add strategies with Register and reach them
// through RunnerBuilder::WithEngine.
class SyncEngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SyncEngine>(const SyncEngineEnv&)>;

  // The process-wide registry (the one RunnerBuilder consults).
  static SyncEngineRegistry& Global();

  // InvalidArgument naming the offender for a duplicate, empty name, or null factory;
  // the registry is unchanged on error.
  Status Register(const std::string& name, Factory factory);
  bool Contains(const std::string& name) const;
  // Registered names, ascending.
  std::vector<std::string> Names() const;

  // Constructs and names an engine; nullptr for an unknown name (legacy shim over
  // CreateChecked for callers that already validated the name).
  std::unique_ptr<SyncEngine> Create(const std::string& name, const SyncEngineEnv& env) const;
  // Constructs and names an engine; NotFound naming the unknown engine and listing the
  // registered names — the error RunnerBuilder::Build surfaces for a bad WithEngine.
  StatusOr<std::unique_ptr<SyncEngine>> CreateChecked(const std::string& name,
                                                      const SyncEngineEnv& env) const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_SYNC_ENGINE_H_
