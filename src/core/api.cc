#include "src/core/api.h"

#include "src/base/strings.h"

namespace parallax {

RunnerBuilder::RunnerBuilder(const Graph* graph, NodeId loss)
    : graph_(graph), loss_(loss) {}

RunnerBuilder& RunnerBuilder::WithResources(const std::string& resource_info) {
  StatusOr<ResourceSpec> parsed = ParseResourceSpec(resource_info);
  if (!parsed.ok()) {
    resources_status_ = parsed.status();
    has_resources_ = false;
    return *this;
  }
  return WithResources(std::move(parsed).value());
}

RunnerBuilder& RunnerBuilder::WithResources(ResourceSpec resources) {
  resources_ = std::move(resources);
  resources_status_ = Status::Ok();
  has_resources_ = true;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithEngine(const std::string& variable_pattern,
                                         const std::string& engine) {
  config_.engine_overrides.push_back({variable_pattern, engine});
  return *this;
}

RunnerBuilder& RunnerBuilder::WithSearch(const PartitionSearchOptions& search) {
  config_.search = search;
  config_.auto_partition = true;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithSearchMode(PartitionSearchMode mode) {
  config_.search_mode = mode;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithPlacementSearch(bool enabled) {
  config_.search_placement = enabled;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithSearchConcurrency(ThreadPool* pool, int max_workers) {
  config_.search.concurrency.pool = pool;
  config_.search.concurrency.max_workers = max_workers;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithManualPartitions(int partitions) {
  config_.auto_partition = false;
  config_.manual_partitions = partitions;
  config_.manual_plan.reset();
  return *this;
}

RunnerBuilder& RunnerBuilder::WithPartitionPlan(PartitionPlan plan) {
  config_.auto_partition = false;
  config_.manual_plan = std::move(plan);
  return *this;
}

RunnerBuilder& RunnerBuilder::WithAdaptivePartitioning(AdaptivePartitioningPolicy policy) {
  config_.adaptive_partitioning = policy;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithCheckpoint(std::string path, int interval_steps,
                                             double disk_bandwidth) {
  CheckpointConfig checkpoint;
  checkpoint.path = std::move(path);
  checkpoint.interval_steps = interval_steps;
  checkpoint.disk_bandwidth = disk_bandwidth;
  config_.checkpoint = std::move(checkpoint);
  return *this;
}

RunnerBuilder& RunnerBuilder::WithPlanner(std::shared_ptr<PlannerService> planner) {
  config_.planner = std::move(planner);
  return *this;
}

RunnerBuilder& RunnerBuilder::WithLearningRate(float learning_rate) {
  config_.learning_rate = learning_rate;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithLocalAggregation(bool enabled) {
  config_.local_aggregation = enabled;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithAggregation(AggregationMethod dense,
                                              AggregationMethod sparse) {
  config_.dense_aggregation = dense;
  config_.sparse_aggregation = sparse;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithAlphaThreshold(double alpha_dense_threshold) {
  config_.alpha_dense_threshold = alpha_dense_threshold;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithHardware(const ClusterSpec& hardware) {
  config_.hardware = hardware;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithSyncCosts(const SyncCostParams& costs) {
  config_.costs = costs;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithCompute(double gpu_compute_seconds, int compute_chunks) {
  config_.gpu_compute_seconds = gpu_compute_seconds;
  config_.compute_chunks = compute_chunks;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithSparseFusion(bool fuse) {
  config_.fuse_sparse_variables = fuse;
  return *this;
}

RunnerBuilder& RunnerBuilder::WithConfig(ParallaxConfig config) {
  config_ = std::move(config);
  return *this;
}

StatusOr<std::unique_ptr<GraphRunner>> RunnerBuilder::Build() const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  if (!resources_status_.ok()) {
    return resources_status_;
  }
  if (!has_resources_) {
    return Status::InvalidArgument("no resources: call WithResources before Build");
  }
  if (!resources_.IsHomogeneous()) {
    return Status::InvalidArgument(
        "every machine must contribute the same number of GPUs");
  }
  for (const EngineOverride& override : config_.engine_overrides) {
    if (override.pattern.empty()) {
      return Status::InvalidArgument("WithEngine: empty variable pattern");
    }
    if (!SyncEngineRegistry::Global().Contains(override.engine)) {
      return Status::InvalidArgument(StrFormat(
          "WithEngine: unknown sync engine '%s' (registered: %s)",
          override.engine.c_str(),
          Join(SyncEngineRegistry::Global().Names(), ", ").c_str()));
    }
  }
  if (config_.manual_partitions < 1) {
    return Status::InvalidArgument("manual partition count must be >= 1");
  }
  // PartitionPlan's own invariants guarantee every manual_plan count is >= 1.
  if (config_.search.coordinate_margin < 0.0 || config_.search.max_coordinate_rounds < 1) {
    return Status::InvalidArgument(
        "WithSearch: coordinate_margin must be >= 0 and max_coordinate_rounds >= 1");
  }
  if (config_.adaptive_partitioning.has_value()) {
    const AdaptivePartitioningPolicy& policy = *config_.adaptive_partitioning;
    if (policy.ewma_decay <= 0.0 || policy.ewma_decay > 1.0) {
      return Status::InvalidArgument(
          "WithAdaptivePartitioning: ewma_decay must be in (0, 1]");
    }
    if (policy.drift_threshold < 0.0 || policy.hysteresis < 0.0) {
      return Status::InvalidArgument(
          "WithAdaptivePartitioning: drift_threshold and hysteresis must be >= 0");
    }
    if (policy.warmup_steps < 0 || policy.check_interval < 1 || policy.cooldown_steps < 0) {
      return Status::InvalidArgument(
          "WithAdaptivePartitioning: warmup/cooldown must be >= 0 and "
          "check_interval >= 1");
    }
  }
  if (config_.checkpoint.has_value()) {
    const CheckpointConfig& checkpoint = *config_.checkpoint;
    if (checkpoint.path.empty()) {
      return Status::InvalidArgument("WithCheckpoint: empty checkpoint path");
    }
    if (checkpoint.interval_steps < 0) {
      return Status::InvalidArgument(
          "WithCheckpoint: interval_steps must be >= 0 (0 = on-demand only)");
    }
    if (!(checkpoint.disk_bandwidth > 0.0)) {
      return Status::InvalidArgument("WithCheckpoint: disk_bandwidth must be > 0");
    }
  }
  return std::make_unique<GraphRunner>(graph_, loss_, resources_, config_);
}

StatusOr<std::unique_ptr<GraphRunner>> GetRunner(const Graph* graph, NodeId loss,
                                                 const std::string& resource_info,
                                                 ParallaxConfig config) {
  return RunnerBuilder(graph, loss)
      .WithConfig(std::move(config))
      .WithResources(resource_info)
      .Build();
}

}  // namespace parallax
