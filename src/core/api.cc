#include "src/core/api.h"

namespace parallax {

StatusOr<std::unique_ptr<GraphRunner>> GetRunner(const Graph* graph, NodeId loss,
                                                 const std::string& resource_info,
                                                 ParallaxConfig config) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  StatusOr<ResourceSpec> resources = ParseResourceSpec(resource_info);
  if (!resources.ok()) {
    return resources.status();
  }
  if (!resources.value().IsHomogeneous()) {
    return Status::InvalidArgument(
        "every machine must contribute the same number of GPUs");
  }
  return std::make_unique<GraphRunner>(graph, loss, resources.value(), std::move(config));
}

}  // namespace parallax
