#include "src/core/cost_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "src/base/logging.h"
#include "src/base/stats.h"
#include "src/base/thread_pool.h"

namespace parallax {

int EffectiveSearchWorkers(const SearchConcurrency& concurrency, size_t candidates) {
  if (concurrency.pool == nullptr || candidates == 0) {
    return 1;
  }
  int workers = concurrency.pool->num_threads();
  if (concurrency.max_workers > 0) {
    workers = std::min(workers, concurrency.max_workers);
  }
  workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(workers, 1)), candidates));
  return std::max(workers, 1);
}

namespace {

// Every point the doubling/halving sweep of SearchPartitions could visit from these
// options, ordered for SPECULATION: the clamped initial first, then the two arms
// interleaved by distance from it (x2, /2, x4, /4, ...). A wave of W candidates taken
// in this order covers the next rungs of BOTH arms — the points the serial sweep is
// most likely to request — before the far doubling rungs, which are exponentially
// costlier to simulate (task count grows with P) and reached only on long monotone
// runs. Prefetching the raw sweep order instead would spend a 4-wide wave on
// {P, 2P, 4P, 8P} when the sweep usually stops after one rise.
std::vector<int> SpeculationOrder(const PartitionSearchOptions& options) {
  const int initial = std::clamp(options.initial_partitions, options.min_partitions,
                                 options.max_partitions);
  std::vector<int> up;
  for (int p = initial * 2; p <= options.max_partitions; p *= 2) {
    up.push_back(p);
  }
  std::vector<int> down;
  for (int p = initial / 2; p >= options.min_partitions; p /= 2) {
    down.push_back(p);
  }
  std::vector<int> order;
  order.reserve(1 + up.size() + down.size());
  order.push_back(initial);
  for (size_t i = 0; i < std::max(up.size(), down.size()); ++i) {
    if (i < up.size()) {
      order.push_back(up[i]);
    }
    if (i < down.size()) {
      order.push_back(down[i]);
    }
  }
  return order;
}

// How many candidates one speculative wave may hold: the workers the configured
// concurrency can actually run (never fewer than 1 so a degenerate configuration
// still makes progress). Bounds speculative waste by the worker count — a wave never
// reaches past what the pool could simulate concurrently anyway.
int SpeculationLookahead(const SearchConcurrency& concurrency) {
  constexpr size_t kLookaheadCeiling = 64;  // waves wider than this buy nothing
  return std::max(EffectiveSearchWorkers(concurrency, kLookaheadCeiling), 1);
}

}  // namespace

double CostModelFit::ContinuousOptimum() const {
  if (theta1 <= 0.0 || theta2 <= 0.0) {
    return 1.0;
  }
  return std::sqrt(theta1 / theta2);
}

CostModelFit FitCostModel(const std::vector<std::pair<int, double>>& samples) {
  CostModelFit fit;
  if (samples.size() < 3) {
    return fit;
  }
  std::vector<std::array<double, 3>> features;
  std::vector<double> targets;
  features.reserve(samples.size());
  targets.reserve(samples.size());
  for (const auto& [partitions, seconds] : samples) {
    double p = static_cast<double>(partitions);
    features.push_back({1.0, 1.0 / p, p});
    targets.push_back(seconds);
  }
  LeastSquaresFit ls = FitLinear3(features, targets);
  if (!ls.ok) {
    return fit;
  }
  fit.theta0 = ls.theta[0];
  fit.theta1 = ls.theta[1];
  fit.theta2 = ls.theta[2];
  fit.rmse = ls.rmse;
  fit.ok = true;
  return fit;
}

PartitionSearchResult SearchPartitions(const std::function<double(int)>& measure,
                                       const PartitionSearchOptions& options) {
  PX_CHECK_GE(options.min_partitions, 1);
  PX_CHECK_GE(options.max_partitions, options.min_partitions);
  PartitionSearchResult result;

  auto sample = [&](int partitions) {
    double seconds = measure(partitions);
    result.samples.emplace_back(partitions, seconds);
    return seconds;
  };

  const int initial = std::clamp(options.initial_partitions, options.min_partitions,
                                 options.max_partitions);
  double initial_seconds = sample(initial);

  // Double until iteration time starts increasing (paper section 3.2).
  double previous = initial_seconds;
  for (int p = initial * 2; p <= options.max_partitions; p *= 2) {
    double seconds = sample(p);
    if (seconds > previous) {
      break;
    }
    previous = seconds;
  }
  // Halve from the initial point until it starts increasing.
  previous = initial_seconds;
  for (int p = initial / 2; p >= options.min_partitions; p /= 2) {
    double seconds = sample(p);
    if (seconds > previous) {
      break;
    }
    previous = seconds;
  }

  result.fit = FitCostModel(result.samples);

  int sampled_min = result.samples.front().first;
  int sampled_max = result.samples.front().first;
  for (const auto& [p, unused] : result.samples) {
    sampled_min = std::min(sampled_min, p);
    sampled_max = std::max(sampled_max, p);
  }

  if (!result.fit.ok) {
    // Too few samples to fit; fall back to the best measurement.
    auto best = std::min_element(
        result.samples.begin(), result.samples.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    result.best_partitions = best->first;
    result.predicted_seconds = best->second;
    return result;
  }

  // The critical point lies inside the sampled interval (convexity), so evaluating the
  // fitted model there never extrapolates. Candidates: the continuous optimum's integer
  // neighbours plus every sampled point.
  std::vector<int> candidates;
  double continuous = std::clamp(result.fit.ContinuousOptimum(),
                                 static_cast<double>(sampled_min),
                                 static_cast<double>(sampled_max));
  candidates.push_back(std::max(options.min_partitions, static_cast<int>(continuous)));
  candidates.push_back(
      std::min(options.max_partitions, static_cast<int>(std::ceil(continuous))));
  for (const auto& [p, unused] : result.samples) {
    candidates.push_back(p);
  }
  int best = candidates.front();
  double best_pred = result.fit.Predict(best);
  for (int candidate : candidates) {
    double pred = result.fit.Predict(candidate);
    if (pred < best_pred) {
      best_pred = pred;
      best = candidate;
    }
  }
  result.best_partitions = best;
  result.predicted_seconds = best_pred;
  return result;
}

PartitionSearchResult SearchPartitions(const std::function<double(int)>& measure,
                                       const UniformBatchMeasure& measure_batch,
                                       const PartitionSearchOptions& options) {
  // Degrade to the serial sweep when there is no batch measure — or when the
  // configured concurrency yields single-candidate waves, which would pay the batch
  // path's overhead (wave assembly, one batch call per memo miss) for no parallelism.
  if (!measure_batch || SpeculationLookahead(options.concurrency) <= 1) {
    return SearchPartitions(measure, options);
  }
  PX_CHECK_GE(options.min_partitions, 1);
  PX_CHECK_GE(options.max_partitions, options.min_partitions);

  const std::vector<int> order = SpeculationOrder(options);
  const int lookahead = SpeculationLookahead(options.concurrency);
  std::map<int, std::pair<double, bool>> memo;  // P -> (seconds, consumed)
  BatchMeasureStats stats;

  // On every memo miss, simulate the requested P plus the next lookahead-1 fresh
  // candidates in speculation order as one batch. The sweep below then consumes the
  // hits in its own (serial) order; early exits leave the tail of the last wave
  // unconsumed — that is the waste, bounded per wave by lookahead - 1.
  auto speculating_measure = [&](int p) {
    auto it = memo.find(p);
    if (it == memo.end()) {
      std::vector<int> wave{p};
      for (int q : order) {
        if (static_cast<int>(wave.size()) >= lookahead) {
          break;
        }
        if (q == p || memo.find(q) != memo.end()) {
          continue;
        }
        wave.push_back(q);
      }
      const std::vector<double> seconds = measure_batch(wave);
      PX_CHECK_EQ(seconds.size(), wave.size());
      for (size_t i = 0; i < wave.size(); ++i) {
        memo.emplace(wave[i], std::make_pair(seconds[i], false));
      }
      ++stats.batches;
      stats.batched_evaluations += static_cast<int>(wave.size());
      stats.max_batch_size =
          std::max(stats.max_batch_size, static_cast<int>(wave.size()));
      it = memo.find(p);
    }
    it->second.second = true;
    return it->second.first;
  };

  PartitionSearchResult result = SearchPartitions(speculating_measure, options);
  result.batch = stats;
  for (const auto& [p, entry] : memo) {
    if (!entry.second) {
      ++result.batch.speculative_waste;
    }
  }
  return result;
}

namespace {

// Searched variables' counts, in input order.
using CountKey = std::vector<int>;
// Searched variables' shard placements, parallel to CountKey; an empty inner vector
// (or an empty outer vector) means the historical round-robin.
using Placements = std::vector<std::vector<int>>;
// One measurement cache entry is keyed by counts + placements; everything else about
// the plan is fixed across the search. Count-only phases always pass empty placements,
// so placement-oblivious searches pay nothing for the wider key.
using PlanKey = std::pair<CountKey, Placements>;

// seconds + how the entry got here. `requested` flips on the first time the serial
// adoption logic asks for the key — that is when `evaluations` counts it, so the
// counter matches the serial search exactly whether or not the value was prefetched.
// Entries that stay speculative-and-unrequested are the batch's overshoot
// (BatchMeasureStats::speculative_waste).
struct MemoEntry {
  double seconds = 0.0;
  bool requested = false;
  bool speculative = false;
};

}  // namespace

PartitionPlanSearchResult SearchPartitionPlan(
    const std::function<double(const PartitionPlan&)>& measure,
    const std::vector<PartitionSearchVariable>& variables,
    const PartitionSearchOptions& options) {
  return SearchPartitionPlan(measure, PlanBatchMeasure(), variables, options);
}

PartitionPlanSearchResult SearchPartitionPlan(
    const std::function<double(const PartitionPlan&)>& measure,
    const PlanBatchMeasure& measure_batch,
    const std::vector<PartitionSearchVariable>& variables,
    const PartitionSearchOptions& options) {
  if (measure_batch && SpeculationLookahead(options.concurrency) <= 1) {
    // Single-candidate waves buy nothing: drop the batch measure and run the plain
    // serial search (the in-tree factories already return a null measure for one-lane
    // concurrency; this guards direct callers of the batched overload).
    return SearchPartitionPlan(measure, PlanBatchMeasure(), variables, options);
  }
  PX_CHECK(!variables.empty()) << "per-variable search needs at least one variable";
  PX_CHECK_GE(options.min_partitions, 1);
  PX_CHECK_GE(options.max_partitions, options.min_partitions);
  PX_CHECK_GE(options.coordinate_margin, 0.0);
  PX_CHECK_GE(options.max_coordinate_rounds, 1);
  const size_t n = variables.size();

  auto cap_of = [&](size_t v) {
    int cap = options.max_partitions;
    if (variables[v].max_partitions > 0) {
      cap = static_cast<int>(std::min<int64_t>(cap, variables[v].max_partitions));
    }
    return std::max(cap, options.min_partitions);
  };
  auto clamp_count = [&](int p, size_t v) {
    return std::clamp(p, options.min_partitions, cap_of(v));
  };
  auto plan_of = [&](const CountKey& counts, const Placements& placements) {
    PartitionPlan plan;  // default 1: variables outside the search stay whole
    for (size_t v = 0; v < n; ++v) {
      plan.Set(variables[v].name, counts[v]);
      if (!placements.empty() && !placements[v].empty()) {
        plan.SetPlacement(variables[v].name, placements[v]);
      }
    }
    return plan;
  };

  PartitionPlanSearchResult result;
  std::map<PlanKey, MemoEntry> measured;
  auto measure_placed = [&](const CountKey& counts, const Placements& placements) {
    PlanKey key{counts, placements};
    auto it = measured.find(key);
    if (it != measured.end()) {
      MemoEntry& entry = it->second;
      if (!entry.requested) {
        entry.requested = true;
        ++result.evaluations;
      }
      return entry.seconds;
    }
    double seconds = measure(plan_of(counts, placements));
    ++result.evaluations;
    measured.emplace(std::move(key), MemoEntry{seconds, true, false});
    return seconds;
  };
  auto measure_counts = [&](const CountKey& counts) {
    return measure_placed(counts, Placements());
  };
  auto uniform_counts = [&](int p) {
    CountKey counts(n);
    for (size_t v = 0; v < n; ++v) {
      counts[v] = clamp_count(p, v);
    }
    return counts;
  };
  // Speculatively simulate a wave of not-yet-measured keys in one measure_batch call
  // and file the results as memo entries. The serial logic downstream then finds hits
  // for the candidates it would have measured one-by-one; candidates its early exits
  // never reach stay unrequested and are reported as waste. A no-op without a batch
  // measure — the serial path never speculates.
  auto prefetch = [&](const std::vector<PlanKey>& keys) {
    if (!measure_batch) {
      return;
    }
    std::vector<const PlanKey*> fresh;
    std::vector<PartitionPlan> plans;
    for (const PlanKey& key : keys) {
      if (measured.find(key) != measured.end()) {
        continue;
      }
      bool duplicate = false;
      for (const PlanKey* seen : fresh) {
        if (*seen == key) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) {
        continue;
      }
      fresh.push_back(&key);
      plans.push_back(plan_of(key.first, key.second));
    }
    if (plans.empty()) {
      return;
    }
    const std::vector<double> seconds = measure_batch(plans);
    PX_CHECK_EQ(seconds.size(), plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      measured.emplace(*fresh[i], MemoEntry{seconds[i], false, true});
    }
    ++result.batch.batches;
    result.batch.batched_evaluations += static_cast<int>(plans.size());
    result.batch.max_batch_size =
        std::max(result.batch.max_batch_size, static_cast<int>(plans.size()));
  };
  const int lookahead = SpeculationLookahead(options.concurrency);
  // Wave speculation for one sweep: when the serial sweep is about to miss on
  // candidate p, simulate it plus the next lookahead-1 fresh candidates of the
  // sweep's speculation order in one batch. Bounds waste by the worker count and
  // keeps the far (expensive, rarely visited) doubling rungs out of the waves.
  auto wave_before = [&](const std::vector<int>& order,
                         const std::function<CountKey(int)>& counts_of, int p) {
    if (!measure_batch) {
      return;
    }
    PlanKey requested{counts_of(p), Placements()};
    if (measured.find(requested) != measured.end()) {
      return;
    }
    std::vector<PlanKey> wave;
    wave.push_back(std::move(requested));
    for (int q : order) {
      if (static_cast<int>(wave.size()) >= lookahead) {
        break;
      }
      PlanKey key{counts_of(q), Placements()};
      if (measured.find(key) != measured.end()) {
        continue;
      }
      bool duplicate = false;
      for (const PlanKey& seen : wave) {
        if (seen == key) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        wave.push_back(std::move(key));
      }
    }
    prefetch(wave);
  };

  CountKey best;
  double best_seconds = 0.0;

  bool warm = options.warm_start;
  for (size_t v = 0; v < n && warm; ++v) {
    warm = variables[v].previous_partitions > 0;
  }
  if (warm) {
    // Warm start — the previous adopted plan replaces phases 1 and 2 outright: descent
    // resumes from its counts, and the baseline the refined plan must beat is the
    // previous plan itself (the honest comparison for a mid-training re-search).
    result.warm_started = true;
    best.resize(n);
    for (size_t v = 0; v < n; ++v) {
      best[v] = clamp_count(variables[v].previous_partitions, v);
    }
    best_seconds = measure_counts(best);
    result.uniform_seconds = best_seconds;
  } else {
    // Phase 1 — uniform sweep: the paper's doubling/halving search over a shared P
    // (per-variable caps applied, exactly as the assigner would row-cap a uniform plan).
    const std::vector<int> uniform_order =
        measure_batch ? SpeculationOrder(options) : std::vector<int>();
    result.uniform = SearchPartitions(
        [&](int p) {
          wave_before(uniform_order, [&](int q) { return uniform_counts(q); }, p);
          return measure_counts(uniform_counts(p));
        },
        options);
    best = uniform_counts(result.uniform.best_partitions);
    best_seconds = measure_counts(best);
    result.uniform_seconds = best_seconds;

    // Phase 2 — closed-form seed at each variable's measured alpha. theta1 (the cost
    // partitioning divides) is proportional to the rows a step actually touches, so
    // variable v carries a w_v = alpha_v * elements_v share of it; theta2 (per-piece
    // bookkeeping) is paid per piece regardless of which variable the piece belongs to.
    // Splitting Equation 1 accordingly puts variable v's own optimum at
    // sqrt(theta1_v / theta2_v) = P* * sqrt(w_v / mean(w)).
    double continuous = result.uniform.fit.ok
                            ? result.uniform.fit.ContinuousOptimum()
                            : static_cast<double>(result.uniform.best_partitions);
    continuous = std::clamp(continuous, static_cast<double>(options.min_partitions),
                            static_cast<double>(options.max_partitions));
    double weight_sum = 0.0;
    for (const PartitionSearchVariable& variable : variables) {
      weight_sum += std::max(variable.alpha, 0.0) *
                    static_cast<double>(std::max<int64_t>(variable.num_elements, 0));
    }
    if (weight_sum > 0.0) {
      const double mean_weight = weight_sum / static_cast<double>(n);
      CountKey seeded(n);
      for (size_t v = 0; v < n; ++v) {
        const double w =
            std::max(variables[v].alpha, 0.0) *
            static_cast<double>(std::max<int64_t>(variables[v].num_elements, 0));
        const double scaled = continuous * std::sqrt(w / mean_weight);
        seeded[v] = clamp_count(static_cast<int>(std::lround(std::max(scaled, 1.0))), v);
      }
      const double seeded_seconds = measure_counts(seeded);
      if (seeded_seconds < best_seconds) {
        best = std::move(seeded);
        best_seconds = seeded_seconds;
      }
    }
  }

  // Phase 3 — coordinate descent: the existing doubling/halving sweep is the inner
  // loop, run for one variable at a time with every other count pinned. Adopting only
  // margin-beating moves on *measured* times keeps the descent deterministic and
  // terminating (each adoption strictly shrinks the measured objective). A warm-started
  // round 0 sweeps only the drifted variables — the others' counts were right last time
  // and nothing about them changed; later rounds (reached only if round 0 moved) sweep
  // everything, because a drifted variable's new count can shift its neighbours'.
  for (int round = 0; round < options.max_coordinate_rounds; ++round) {
    bool moved = false;
    for (size_t v = 0; v < n; ++v) {
      if (result.warm_started && round == 0 && !variables[v].drifted) {
        continue;
      }
      PartitionSearchOptions coordinate = options;
      coordinate.initial_partitions = best[v];
      coordinate.max_partitions = cap_of(v);
      auto coordinate_counts = [&](int p) {
        CountKey trial = best;
        trial[v] = clamp_count(p, v);
        return trial;
      };
      const std::vector<int> coordinate_order =
          measure_batch ? SpeculationOrder(coordinate) : std::vector<int>();
      PartitionSearchResult sweep = SearchPartitions(
          [&](int p) {
            wave_before(coordinate_order, coordinate_counts, p);
            return measure_counts(coordinate_counts(p));
          },
          coordinate);
      CountKey trial = best;
      trial[v] = clamp_count(sweep.best_partitions, v);
      const double trial_seconds = measure_counts(trial);
      if (trial_seconds < best_seconds * (1.0 - options.coordinate_margin)) {
        best = std::move(trial);
        best_seconds = trial_seconds;
        moved = true;
      }
    }
    ++result.rounds;
    if (!moved) {
      break;
    }
  }

  // Phase 4 — placement (optional): greedily seed each piece onto the server that
  // minimizes the bottleneck link utilization under the static traffic model, refine
  // with bounded busiest-to-idlest swaps on the measured clock, and adopt only if the
  // placed plan measures strictly better than round-robin at the same counts.
  Placements best_placements;
  result.unplaced_seconds = best_seconds;
  const PlacementSearchOptions& pl = options.placement;
  if (pl.enabled && pl.num_machines > 1) {
    const int machines = pl.num_machines;
    const int racks =
        (pl.num_racks > 1 && machines % pl.num_racks == 0) ? pl.num_racks : 1;
    const int per_rack = machines / racks;
    auto rack_of = [per_rack](int m) { return m / per_rack; };

    // Every piece of every searched variable, heaviest traffic first. Per step each
    // worker machine pushes and pulls a piece once, so a piece of b bytes loads its
    // server's NIC with 2b per remote worker (the incast), each remote worker's NIC
    // with 2b, and — when server and worker sit in different racks — both racks' spine
    // links with 2b each.
    struct Piece {
      size_t var;
      int index;
      double bytes;
    };
    std::vector<Piece> pieces;
    for (size_t v = 0; v < n; ++v) {
      const double bytes =
          std::max(variables[v].alpha, 0.0) *
          static_cast<double>(std::max<int64_t>(variables[v].num_elements, 0)) * 4.0 /
          static_cast<double>(best[v]);
      for (int p = 0; p < best[v]; ++p) {
        pieces.push_back({v, p, bytes});
      }
    }
    std::stable_sort(pieces.begin(), pieces.end(),
                     [](const Piece& a, const Piece& b) { return a.bytes > b.bytes; });

    std::vector<double> nic(machines, 0.0);
    std::vector<double> spine(racks, 0.0);
    auto add_piece = [&](std::vector<double>& nic_load, std::vector<double>& spine_load,
                         int server, double bytes) {
      for (int m = 0; m < machines; ++m) {
        if (m == server) {
          continue;
        }
        nic_load[server] += 2.0 * bytes;
        nic_load[m] += 2.0 * bytes;
        if (racks > 1 && rack_of(m) != rack_of(server)) {
          spine_load[rack_of(server)] += 2.0 * bytes;
          spine_load[rack_of(m)] += 2.0 * bytes;
        }
      }
    };
    auto bottleneck = [&](const std::vector<double>& nic_load,
                          const std::vector<double>& spine_load) {
      double worst = 0.0;
      for (double bytes : nic_load) {
        worst = std::max(worst, bytes / pl.nic_bandwidth);
      }
      for (double bytes : spine_load) {
        worst = std::max(worst, bytes / pl.spine_bandwidth);
      }
      return worst;
    };

    Placements placed(n);
    for (size_t v = 0; v < n; ++v) {
      placed[v].assign(best[v], 0);
    }
    std::vector<double> trial_nic, trial_spine;
    for (const Piece& piece : pieces) {
      int chosen = 0;
      double chosen_worst = std::numeric_limits<double>::infinity();
      for (int s = 0; s < machines; ++s) {
        trial_nic = nic;
        trial_spine = spine;
        add_piece(trial_nic, trial_spine, s, piece.bytes);
        const double worst = bottleneck(trial_nic, trial_spine);
        if (worst < chosen_worst) {  // strict: ties keep the lowest server id
          chosen_worst = worst;
          chosen = s;
        }
      }
      add_piece(nic, spine, chosen, piece.bytes);
      placed[piece.var][piece.index] = chosen;
    }

    double placed_seconds = measure_placed(best, placed);

    // Swap refinement: move a piece off the statically busiest NIC onto the idlest and
    // keep the move only when the simulated clock agrees by the margin.
    for (int round = 0; round < pl.max_swap_rounds; ++round) {
      int busiest = 0;
      int idlest = 0;
      for (int m = 1; m < machines; ++m) {
        if (nic[m] > nic[busiest]) {
          busiest = m;
        }
        if (nic[m] < nic[idlest]) {
          idlest = m;
        }
      }
      if (busiest == idlest) {
        break;
      }
      // This round's swap candidates, in scan order (bounded by max_swap_trials).
      // They are independent given the incumbent placement, so waves of them simulate
      // concurrently; the serial first-win scan replays over the memo, and trials
      // past the winning one (within its wave) are the speculation the round wastes.
      std::vector<const Piece*> round_pieces;
      for (const Piece& piece : pieces) {
        if (placed[piece.var][piece.index] != busiest) {
          continue;
        }
        if (static_cast<int>(round_pieces.size()) >= pl.max_swap_trials) {
          break;
        }
        round_pieces.push_back(&piece);
      }
      auto trial_of = [&](const Piece& piece) {
        Placements trial = placed;
        trial[piece.var][piece.index] = idlest;
        return trial;
      };
      bool moved = false;
      for (size_t t = 0; t < round_pieces.size(); ++t) {
        Placements trial = trial_of(*round_pieces[t]);
        if (measure_batch &&
            measured.find(PlanKey{best, trial}) == measured.end()) {
          std::vector<PlanKey> wave;
          wave.emplace_back(best, trial);
          for (size_t q = t + 1;
               q < round_pieces.size() && static_cast<int>(wave.size()) < lookahead;
               ++q) {
            PlanKey key{best, trial_of(*round_pieces[q])};
            if (measured.find(key) == measured.end()) {
              wave.push_back(std::move(key));
            }
          }
          prefetch(wave);
        }
        const double seconds = measure_placed(best, trial);
        if (seconds < placed_seconds * (1.0 - pl.swap_margin)) {
          placed = std::move(trial);
          placed_seconds = seconds;
          moved = true;
          break;
        }
      }
      if (!moved) {
        break;
      }
      std::fill(nic.begin(), nic.end(), 0.0);
      std::fill(spine.begin(), spine.end(), 0.0);
      for (const Piece& piece : pieces) {
        add_piece(nic, spine, placed[piece.var][piece.index], piece.bytes);
      }
    }

    if (placed_seconds < best_seconds) {
      best_placements = std::move(placed);
      best_seconds = placed_seconds;
    }
  }

  for (const auto& [key, entry] : measured) {
    if (entry.speculative && !entry.requested) {
      ++result.batch.speculative_waste;
    }
  }
  result.plan = plan_of(best, best_placements);
  result.seconds = best_seconds;
  return result;
}

}  // namespace parallax
