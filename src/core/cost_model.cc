#include "src/core/cost_model.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/base/logging.h"
#include "src/base/stats.h"

namespace parallax {

double CostModelFit::ContinuousOptimum() const {
  if (theta1 <= 0.0 || theta2 <= 0.0) {
    return 1.0;
  }
  return std::sqrt(theta1 / theta2);
}

CostModelFit FitCostModel(const std::vector<std::pair<int, double>>& samples) {
  CostModelFit fit;
  if (samples.size() < 3) {
    return fit;
  }
  std::vector<std::array<double, 3>> features;
  std::vector<double> targets;
  features.reserve(samples.size());
  targets.reserve(samples.size());
  for (const auto& [partitions, seconds] : samples) {
    double p = static_cast<double>(partitions);
    features.push_back({1.0, 1.0 / p, p});
    targets.push_back(seconds);
  }
  LeastSquaresFit ls = FitLinear3(features, targets);
  if (!ls.ok) {
    return fit;
  }
  fit.theta0 = ls.theta[0];
  fit.theta1 = ls.theta[1];
  fit.theta2 = ls.theta[2];
  fit.rmse = ls.rmse;
  fit.ok = true;
  return fit;
}

PartitionSearchResult SearchPartitions(const std::function<double(int)>& measure,
                                       const PartitionSearchOptions& options) {
  PX_CHECK_GE(options.min_partitions, 1);
  PX_CHECK_GE(options.max_partitions, options.min_partitions);
  PartitionSearchResult result;

  auto sample = [&](int partitions) {
    double seconds = measure(partitions);
    result.samples.emplace_back(partitions, seconds);
    return seconds;
  };

  const int initial = std::clamp(options.initial_partitions, options.min_partitions,
                                 options.max_partitions);
  double initial_seconds = sample(initial);

  // Double until iteration time starts increasing (paper section 3.2).
  double previous = initial_seconds;
  for (int p = initial * 2; p <= options.max_partitions; p *= 2) {
    double seconds = sample(p);
    if (seconds > previous) {
      break;
    }
    previous = seconds;
  }
  // Halve from the initial point until it starts increasing.
  previous = initial_seconds;
  for (int p = initial / 2; p >= options.min_partitions; p /= 2) {
    double seconds = sample(p);
    if (seconds > previous) {
      break;
    }
    previous = seconds;
  }

  result.fit = FitCostModel(result.samples);

  int sampled_min = result.samples.front().first;
  int sampled_max = result.samples.front().first;
  for (const auto& [p, unused] : result.samples) {
    sampled_min = std::min(sampled_min, p);
    sampled_max = std::max(sampled_max, p);
  }

  if (!result.fit.ok) {
    // Too few samples to fit; fall back to the best measurement.
    auto best = std::min_element(
        result.samples.begin(), result.samples.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    result.best_partitions = best->first;
    result.predicted_seconds = best->second;
    return result;
  }

  // The critical point lies inside the sampled interval (convexity), so evaluating the
  // fitted model there never extrapolates. Candidates: the continuous optimum's integer
  // neighbours plus every sampled point.
  std::vector<int> candidates;
  double continuous = std::clamp(result.fit.ContinuousOptimum(),
                                 static_cast<double>(sampled_min),
                                 static_cast<double>(sampled_max));
  candidates.push_back(std::max(options.min_partitions, static_cast<int>(continuous)));
  candidates.push_back(
      std::min(options.max_partitions, static_cast<int>(std::ceil(continuous))));
  for (const auto& [p, unused] : result.samples) {
    candidates.push_back(p);
  }
  int best = candidates.front();
  double best_pred = result.fit.Predict(best);
  for (int candidate : candidates) {
    double pred = result.fit.Predict(candidate);
    if (pred < best_pred) {
      best_pred = pred;
      best = candidate;
    }
  }
  result.best_partitions = best;
  result.predicted_seconds = best_pred;
  return result;
}

}  // namespace parallax
