#include "src/core/sync_engine.h"

#include "src/ar/ar_numeric.h"
#include "src/ps/ps_async.h"
#include "src/ps/ps_numeric.h"

namespace parallax {

std::vector<int> SyncPlan::ManagedBy(const std::string& engine) const {
  PX_CHECK_EQ(engines.size(), variables.size());
  std::vector<int> managed;
  for (size_t v = 0; v < engines.size(); ++v) {
    if (engines[v] == engine) {
      managed.push_back(static_cast<int>(v));
    }
  }
  return managed;
}

SyncEngineRegistry& SyncEngineRegistry::Global() {
  static SyncEngineRegistry* registry = [] {
    auto* r = new SyncEngineRegistry();
    r->Register("ps", [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
      return std::make_unique<PsNumericEngine>(env.graph);
    });
    r->Register("ar", [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
      return std::make_unique<ArNumericEngine>(env.graph, env.num_ranks);
    });
    r->Register("async_ps", [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
      return std::make_unique<AsyncPsEngine>(env.graph);
    });
    return r;
  }();
  return *registry;
}

bool SyncEngineRegistry::Register(const std::string& name, Factory factory) {
  PX_CHECK(!name.empty());
  PX_CHECK(factory != nullptr);
  return factories_.emplace(name, std::move(factory)).second;
}

bool SyncEngineRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> SyncEngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::unique_ptr<SyncEngine> SyncEngineRegistry::Create(const std::string& name,
                                                       const SyncEngineEnv& env) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return nullptr;
  }
  std::unique_ptr<SyncEngine> engine = it->second(env);
  PX_CHECK(engine != nullptr) << "factory for '" << name << "' returned null";
  engine->name_ = name;
  return engine;
}

}  // namespace parallax
