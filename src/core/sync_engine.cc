#include "src/core/sync_engine.h"

#include "src/ar/ar_numeric.h"
#include "src/ps/ps_async.h"
#include "src/ps/ps_numeric.h"
#include "src/sync/int8_ps.h"
#include "src/sync/topk_ps.h"

namespace parallax {

std::vector<int> SyncPlan::ManagedBy(const std::string& engine) const {
  PX_CHECK_EQ(engines.size(), variables.size());
  std::vector<int> managed;
  for (size_t v = 0; v < engines.size(); ++v) {
    if (engines[v] == engine) {
      managed.push_back(static_cast<int>(v));
    }
  }
  return managed;
}

SyncEngineRegistry& SyncEngineRegistry::Global() {
  static SyncEngineRegistry* registry = [] {
    auto* r = new SyncEngineRegistry();
    auto must = [&](Status status) { PX_CHECK(status.ok()) << status.ToString(); };
    must(r->Register("ps", [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
      return std::make_unique<PsNumericEngine>(env.graph);
    }));
    must(r->Register("ar", [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
      return std::make_unique<ArNumericEngine>(env.graph, env.num_ranks);
    }));
    must(r->Register("async_ps",
                     [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
                       return std::make_unique<AsyncPsEngine>(env.graph);
                     }));
    // Gradient compression engines (docs/compression.md): synchronous PS semantics
    // with the gradient transformed before it reaches the accumulators.
    must(r->Register("topk_ps",
                     [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
                       return std::make_unique<TopKPsEngine>(env.graph, TopKPsConfig{});
                     }));
    must(r->Register("int8_ps",
                     [](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
                       return std::make_unique<Int8PsEngine>(env.graph, Int8PsConfig{});
                     }));
    return r;
  }();
  return *registry;
}

Status SyncEngineRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("sync engine registration needs a non-empty name");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("sync engine '" + name + "' registered a null factory");
  }
  if (!factories_.emplace(name, std::move(factory)).second) {
    return Status::InvalidArgument("sync engine '" + name + "' is already registered");
  }
  return Status::Ok();
}

bool SyncEngineRegistry::Contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> SyncEngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::unique_ptr<SyncEngine> SyncEngineRegistry::Create(const std::string& name,
                                                       const SyncEngineEnv& env) const {
  StatusOr<std::unique_ptr<SyncEngine>> engine = CreateChecked(name, env);
  return engine.ok() ? std::move(engine.value()) : nullptr;
}

StatusOr<std::unique_ptr<SyncEngine>> SyncEngineRegistry::CreateChecked(
    const std::string& name, const SyncEngineEnv& env) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string registered;
    for (const std::string& known : Names()) {
      registered += registered.empty() ? known : ", " + known;
    }
    return Status::NotFound("unknown sync engine '" + name + "' (registered: " +
                            registered + ")");
  }
  std::unique_ptr<SyncEngine> engine = it->second(env);
  PX_CHECK(engine != nullptr) << "factory for '" << name << "' returned null";
  engine->name_ = name;
  return engine;
}

}  // namespace parallax
