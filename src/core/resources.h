// Resource specification — the paper's resource_info_file (section 4.1): which machines
// participate and which GPUs each contributes. Parsed from "host:gpu,gpu;host:gpu" text.
// This is the *initial* membership: GraphRunner::Rescale(ResourceSpec) swaps it
// mid-training, migrating shards value-preservingly (docs/elasticity.md).
#ifndef PARALLAX_SRC_CORE_RESOURCES_H_
#define PARALLAX_SRC_CORE_RESOURCES_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/sim/cluster.h"

namespace parallax {

struct MachineInfo {
  std::string hostname;
  std::vector<int> gpu_ids;
};

struct ResourceSpec {
  std::vector<MachineInfo> machines;

  static ResourceSpec Homogeneous(int num_machines, int gpus_per_machine);

  int num_machines() const { return static_cast<int>(machines.size()); }
  int total_gpus() const;
  // True when every machine contributes the same number of GPUs (required by the
  // simulator's rank layout; heterogeneous counts are future work, as in the paper).
  bool IsHomogeneous() const;

  // Maps onto the simulated cluster, inheriting hardware parameters from `base`.
  ClusterSpec ToClusterSpec(const ClusterSpec& base = ClusterSpec::Paper()) const;
};

// Parses "host1:0,1,2;host2:0,1,2". Errors on empty machines or malformed ids.
StatusOr<ResourceSpec> ParseResourceSpec(const std::string& text);

}  // namespace parallax

#endif  // PARALLAX_SRC_CORE_RESOURCES_H_
