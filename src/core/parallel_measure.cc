#include "src/core/parallel_measure.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/base/logging.h"
#include "src/base/thread_pool.h"
#include "src/sim/arena_pool.h"

namespace parallax {

PlanBatchMeasure MakeParallelPlanMeasure(ParallelMeasureSpec spec,
                                         const SearchConcurrency& concurrency,
                                         ArenaPool* arenas) {
  if (concurrency.pool == nullptr || arenas == nullptr) {
    return PlanBatchMeasure();
  }
  // With at most one candidate in flight the serial measure path is strictly better:
  // it reuses the caller's warm arena and skips the pool round-trip.
  if (EffectiveSearchWorkers(concurrency, 2) <= 1) {
    return PlanBatchMeasure();
  }
  PX_CHECK(spec.apply_plan != nullptr);
  auto shared = std::make_shared<ParallelMeasureSpec>(std::move(spec));
  ThreadPool* pool = concurrency.pool;
  const int max_workers = concurrency.max_workers;
  return [shared, pool, max_workers,
          arenas](const std::vector<PartitionPlan>& plans) {
    std::vector<double> seconds(plans.size(), 0.0);
    if (plans.empty()) {
      return seconds;
    }
    const int workers =
        EffectiveSearchWorkers(SearchConcurrency{pool, max_workers}, plans.size());
    auto simulate_range = [&](int64_t begin, int64_t end) {
      ArenaPool::Lease lease = arenas->Acquire();
      for (int64_t i = begin; i < end; ++i) {
        std::vector<VariableSync> variables = shared->apply_plan(plans[i]);
        IterationSimulator simulator(shared->cluster, std::move(variables),
                                     shared->gpu_compute_seconds, shared->compute_chunks,
                                     shared->sim_config, lease.get());
        seconds[i] = simulator.MeasureIterationSeconds(shared->warmup_iterations,
                                                       shared->measured_iterations);
      }
    };
    if (workers <= 1) {
      simulate_range(0, static_cast<int64_t>(plans.size()));
      return seconds;
    }
    // grain = ceil(candidates / workers) bounds active lanes at `workers` (chunk
    // count never exceeds it) while keeping per-lane chunks contiguous — one arena
    // lease per lane, not per candidate.
    const int64_t total = static_cast<int64_t>(plans.size());
    const int64_t grain = (total + workers - 1) / workers;
    pool->ParallelFor(total, grain, simulate_range);
    return seconds;
  };
}

UniformBatchMeasure MakeUniformBatchMeasure(PlanBatchMeasure measure_batch) {
  if (!measure_batch) {
    return UniformBatchMeasure();
  }
  return [measure_batch = std::move(measure_batch)](const std::vector<int>& candidates) {
    std::vector<PartitionPlan> plans;
    plans.reserve(candidates.size());
    for (int p : candidates) {
      plans.push_back(PartitionPlan::Uniform(p));
    }
    return measure_batch(plans);
  };
}

}  // namespace parallax
