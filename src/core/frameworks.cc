#include "src/core/frameworks.h"

#include "src/base/logging.h"

namespace parallax {

const char* FrameworkName(Framework framework) {
  switch (framework) {
    case Framework::kTfPs:
      return "TF-PS";
    case Framework::kHorovod:
      return "Horovod";
    case Framework::kOptPs:
      return "OptPS";
    case Framework::kParallax:
      return "Parallax";
  }
  return "Unknown";
}

double EstimateArSeconds(const VariableSpec& spec, const ClusterSpec& cluster,
                         const SyncCostParams& costs) {
  // Treat the variable as dense: ring AllReduce across machines moves 2(M-1)/M * w per
  // NIC per direction (doubled for the store-and-forward link model), then every GPU
  // applies the aggregated gradient.
  const double m = cluster.num_machines;
  const double bytes = static_cast<double>(spec.bytes());
  double transfer = m > 1 ? 2.0 * 2.0 * (m - 1) / m * bytes / cluster.nic_bandwidth : 0.0;
  double apply = costs.gpu_dense_apply_seconds_per_element *
                 static_cast<double>(spec.num_elements);
  return transfer + apply;
}

double EstimatePsSeconds(const VariableSpec& spec, const ClusterSpec& cluster,
                         const SyncCostParams& costs, int partitions,
                         double compute_overlap_seconds) {
  // PS path with local aggregation: per-machine union gradients feed per-piece
  // accumulator chains (serial over machines), then the update op flushes each piece.
  // Pieces run in parallel across servers/cores, so one piece's chain is the bar.
  const double m = cluster.num_machines;
  const int64_t rows = spec.num_elements / std::max<int64_t>(spec.row_elements, 1);
  const int p = static_cast<int>(
      std::min<int64_t>(rows, std::max(partitions, 1)));
  const double piece_elements = static_cast<double>(spec.num_elements) / p;
  const double machine_union = UnionAlpha(spec.alpha, cluster.gpus_per_machine);
  double chain = m * (machine_union * piece_elements *
                          costs.sparse_agg_seconds_per_element +
                      costs.request_overhead_seconds);
  chain = std::max(0.0, chain - compute_overlap_seconds);
  double flush = costs.sparse_flush_seconds_per_element * piece_elements +
                 costs.sparse_update_seconds_per_element *
                     UnionAlpha(spec.alpha, cluster.total_gpus()) * piece_elements;
  // Per-server share of pull + push traffic (balanced across machines).
  const double alpha_bytes = spec.alpha * static_cast<double>(spec.bytes());
  double transfer =
      m > 1 ? 2.0 * 4.0 * alpha_bytes * (m - 1) / m / m / cluster.nic_bandwidth : 0.0;
  return chain + flush + transfer;
}

std::vector<VariableSync> AssignVariables(Framework framework, const ModelSpec& model,
                                          const FrameworkOptions& options,
                                          const ClusterSpec& cluster) {
  std::vector<VariableSync> assignment;
  assignment.reserve(model.variables.size());
  for (const VariableSpec& spec : model.variables) {
    VariableSync sync;
    sync.spec = spec;
    switch (framework) {
      case Framework::kTfPs:
      case Framework::kOptPs:
        sync.method = SyncMethod::kPs;
        sync.partitions = spec.is_sparse ? options.sparse_partitions : 1;
        break;
      case Framework::kHorovod:
        sync.method = spec.is_sparse ? SyncMethod::kArAllGatherv : SyncMethod::kArAllReduce;
        break;
      case Framework::kParallax:
        if (!spec.is_sparse) {
          sync.method = SyncMethod::kArAllReduce;
        } else if (spec.alpha >= options.alpha_dense_threshold ||
                   EstimateArSeconds(spec, cluster, options.costs) <
                       EstimatePsSeconds(spec, cluster, options.costs,
                                         options.sparse_partitions,
                                         0.4 * model.gpu_compute_seconds)) {
          // "If the alpha value of a sparse variable is close to 1, then it may be
          // helpful to handle the variable as a dense variable and use AllReduce"
          // (section 3.1): chosen when the balanced ring's estimated cost undercuts the
          // PS path despite moving 1/alpha more bytes.
          sync.method = SyncMethod::kArAllReduce;
        } else {
          sync.method = SyncMethod::kPs;
          sync.partitions = options.sparse_partitions;
        }
        break;
    }
    // A variable cannot be split into more pieces than rows.
    int64_t rows = spec.num_elements / std::max<int64_t>(spec.row_elements, 1);
    if (sync.partitions > 1 && rows < sync.partitions) {
      sync.partitions = static_cast<int>(std::max<int64_t>(rows, 1));
    }
    assignment.push_back(std::move(sync));
  }
  return assignment;
}

IterationSimConfig SimConfigFor(Framework framework, const FrameworkOptions& options) {
  IterationSimConfig config;
  config.costs = options.costs;
  config.gatherv_algorithm = options.gatherv_algorithm;
  switch (framework) {
    case Framework::kTfPs:
    case Framework::kHorovod:
      config.ps_local_aggregation = false;
      config.ps_machine_level_pulls = false;
      break;
    case Framework::kOptPs:
    case Framework::kParallax:
      // OptPS = local aggregation on the push path plus smart placement of reads: each
      // machine pulls a variable once (the chief) and fans it out over PCIe, instead of
      // one pull per GPU worker (section 4.3's read-path optimization).
      config.ps_local_aggregation = true;
      config.ps_machine_level_pulls = true;
      break;
  }
  return config;
}

IterationSimulator MakeFrameworkSimulator(Framework framework, const ClusterSpec& cluster,
                                          const ModelSpec& model,
                                          const FrameworkOptions& options,
                                          SimulationArena* arena) {
  return IterationSimulator(cluster, AssignVariables(framework, model, options, cluster),
                            model.gpu_compute_seconds, model.compute_chunks,
                            SimConfigFor(framework, options), arena);
}

double MeasureFrameworkThroughput(Framework framework, const ClusterSpec& cluster,
                                  const ModelSpec& model, const FrameworkOptions& options,
                                  int warmup_iterations, int measured_iterations) {
  IterationSimulator sim = MakeFrameworkSimulator(framework, cluster, model, options);
  double seconds = sim.MeasureIterationSeconds(warmup_iterations, measured_iterations);
  return model.Throughput(seconds, cluster.total_gpus());
}

}  // namespace parallax
