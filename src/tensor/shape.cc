#include "src/tensor/shape.h"

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace parallax {

int64_t TensorShape::dim(int i) const {
  PX_CHECK_GE(i, 0);
  PX_CHECK_LT(i, rank());
  return dims_[static_cast<size_t>(i)];
}

int64_t TensorShape::num_elements() const {
  int64_t count = 1;
  for (int64_t d : dims_) {
    count *= d;
  }
  return count;
}

int64_t TensorShape::row_elements() const {
  PX_CHECK_GE(rank(), 1);
  int64_t count = 1;
  for (size_t i = 1; i < dims_.size(); ++i) {
    count *= dims_[i];
  }
  return count;
}

TensorShape TensorShape::WithDim0(int64_t new_dim0) const {
  PX_CHECK_GE(rank(), 1);
  std::vector<int64_t> dims = dims_;
  dims[0] = new_dim0;
  return TensorShape(std::move(dims));
}

std::string TensorShape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += StrFormat("%lld", static_cast<long long>(dims_[i]));
  }
  out += "]";
  return out;
}

}  // namespace parallax
