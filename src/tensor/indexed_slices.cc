#include "src/tensor/indexed_slices.h"

#include <algorithm>

#include "src/base/strings.h"
#include "src/tensor/sparse_workspace.h"

namespace parallax {
namespace {

// Shared tail of Coalesced and Sum: after the caller filled sort_keys/row_ptrs for
// `total_rows` source rows and ran SortByKey, builds the segment table and reduces each
// sorted run of equal indices into one output row. values_shape supplies the row layout
// for the output tensor ([*, row_elements...]).
IndexedSlices ReduceSortedSegments(SparseWorkspace& ws, int64_t total_rows,
                                   const TensorShape& values_shape,
                                   const TensorShape& dense_shape) {
  const int64_t row = dense_shape.row_elements();
  const std::vector<int64_t>& seg = ws.BuildSegments(total_rows);
  const int64_t num_out = static_cast<int64_t>(seg.size()) - 1;
  std::vector<int64_t> out_indices(static_cast<size_t>(num_out));
  Tensor out_values = Tensor::Zeros(values_shape.WithDim0(num_out));
  auto out = out_values.mutable_floats();
  const std::vector<int64_t>& sorted_keys = ws.sorted_keys();
  const std::vector<int64_t>& pos = ws.sorted_pos();
  const std::vector<const float*>& rows = ws.row_ptrs(total_rows);
  ParallelOverSegments(ws, num_out, total_rows * row, [&](int64_t s_begin, int64_t s_end) {
    for (int64_t s = s_begin; s < s_end; ++s) {
      out_indices[static_cast<size_t>(s)] =
          sorted_keys[static_cast<size_t>(seg[static_cast<size_t>(s)])];
      float* dst = out.data() + s * row;
      for (int64_t i = seg[static_cast<size_t>(s)]; i < seg[static_cast<size_t>(s) + 1]; ++i) {
        const float* src = rows[static_cast<size_t>(pos[static_cast<size_t>(i)])];
        for (int64_t j = 0; j < row; ++j) {
          dst[j] += src[j];
        }
      }
    }
  });
  return IndexedSlices(std::move(out_indices), std::move(out_values), dense_shape);
}

}  // namespace

IndexedSlices::IndexedSlices(std::vector<int64_t> indices, Tensor values,
                             TensorShape dense_shape)
    : indices_(std::move(indices)),
      values_(std::move(values)),
      dense_shape_(std::move(dense_shape)) {
  PX_CHECK_GE(dense_shape_.rank(), 1);
  PX_CHECK_EQ(values_.shape().dim(0), static_cast<int64_t>(indices_.size()));
  PX_CHECK_EQ(values_.shape().row_elements(), dense_shape_.row_elements());
  for (int64_t index : indices_) {
    PX_CHECK_GE(index, 0);
    PX_CHECK_LT(index, dense_shape_.dim(0));
  }
}

void IndexedSlices::ResetForReuse(std::span<const int64_t> indices,
                                  const TensorShape& dense_shape) {
  PX_CHECK_GE(dense_shape.rank(), 1);
  indices_.assign(indices.begin(), indices.end());
  dense_shape_ = dense_shape;  // copy-assign: the dims vector's capacity is reused
  unique_rows_cache_.store(-1, std::memory_order_relaxed);
}

int64_t IndexedSlices::WireBytes() const {
  return nnz_rows() * row_elements() * static_cast<int64_t>(sizeof(float)) +
         nnz_rows() * static_cast<int64_t>(sizeof(int64_t));
}

Tensor IndexedSlices::ToDense() const {
  Tensor dense = Tensor::Zeros(dense_shape_);
  auto out = dense.mutable_floats();
  auto in = values_.floats();
  int64_t row = row_elements();
  for (int64_t i = 0; i < nnz_rows(); ++i) {
    int64_t base = indices_[static_cast<size_t>(i)] * row;
    for (int64_t j = 0; j < row; ++j) {
      out[static_cast<size_t>(base + j)] += in[static_cast<size_t>(i * row + j)];
    }
  }
  return dense;
}

IndexedSlices IndexedSlices::Coalesced(SparseWorkspace* workspace) const {
  const int64_t n = nnz_rows();
  const int64_t row = row_elements();
  if (n == 0) {
    return IndexedSlices({}, Tensor::Zeros(values_.shape().WithDim0(0)), dense_shape_);
  }
  SparseWorkspace local;
  SparseWorkspace& ws = workspace != nullptr ? *workspace : local;

  auto& keys = ws.sort_keys(n);
  auto& rows = ws.row_ptrs(n);
  std::copy(indices_.begin(), indices_.end(), keys.begin());
  const float* in = values_.floats().data();
  for (int64_t i = 0; i < n; ++i) {
    rows[static_cast<size_t>(i)] = in + i * row;
  }
  ws.SortByKey(n, dense_shape_.dim(0) - 1);
  return ReduceSortedSegments(ws, n, values_.shape(), dense_shape_);
}

IndexedSlices IndexedSlices::Sum(const std::vector<IndexedSlices>& slices,
                                 SparseWorkspace* workspace) {
  PX_CHECK(!slices.empty());
  if (slices.size() == 1) {
    return slices.front().Coalesced(workspace);
  }
  const TensorShape& dense_shape = slices.front().dense_shape();
  const int64_t row = slices.front().row_elements();
  int64_t total = 0;
  for (const IndexedSlices& s : slices) {
    PX_CHECK(s.dense_shape() == dense_shape);
    total += s.nnz_rows();
  }
  if (total == 0) {
    return IndexedSlices({}, Tensor::Zeros(slices.front().values().shape().WithDim0(0)),
                         dense_shape);
  }
  SparseWorkspace local;
  SparseWorkspace& ws = workspace != nullptr ? *workspace : local;

  // Global key/row-pointer tables in (slice, row) lexicographic order — the same order
  // Concat would materialize, so the stable sort reproduces its accumulation order.
  auto& keys = ws.sort_keys(total);
  auto& rows = ws.row_ptrs(total);
  int64_t g = 0;
  for (const IndexedSlices& s : slices) {
    auto values = s.values().floats();
    const std::vector<int64_t>& idx = s.indices();
    for (int64_t i = 0; i < s.nnz_rows(); ++i, ++g) {
      keys[static_cast<size_t>(g)] = idx[static_cast<size_t>(i)];
      rows[static_cast<size_t>(g)] = values.data() + i * row;
    }
  }
  ws.SortByKey(total, dense_shape.dim(0) - 1);
  return ReduceSortedSegments(ws, total, slices.front().values().shape(), dense_shape);
}

namespace {

// Shared front half of the fused multi-variable pipeline: one key / row-pointer fill
// over all groups (group-major, (contributor, row) order — the order per-group Sum
// enumerates), one independent stable subsort per group range (cache-sized, group-local
// radix width), and one segment build that never merges across group boundaries.
// Returns false when there are no pairs at all.
struct MultiSortLayout {
  std::vector<int64_t> pair_start;  // [groups + 1] pair range per group
  std::vector<int64_t> width;       // [groups] row elements per group
  std::vector<int64_t> first_seg;   // [groups + 1] segment range per group
  const std::vector<int64_t>* seg = nullptr;  // workspace segment table
  int64_t num_seg = 0;
  int64_t total_elements = 0;
};

bool FusedMultiSort(const std::vector<SparseSumGroup>& groups, SparseWorkspace& ws,
                    MultiSortLayout& layout) {
  const int64_t num_groups = static_cast<int64_t>(groups.size());
  layout.pair_start.assign(static_cast<size_t>(num_groups) + 1, 0);
  layout.width.assign(static_cast<size_t>(num_groups), 0);
  layout.total_elements = 0;
  for (int64_t g = 0; g < num_groups; ++g) {
    const SparseSumGroup& group = groups[static_cast<size_t>(g)];
    PX_CHECK(!group.inputs.empty());
    const TensorShape& dense_shape = group.inputs.front()->dense_shape();
    layout.width[static_cast<size_t>(g)] = dense_shape.row_elements();
    int64_t group_pairs = 0;
    for (const IndexedSlices* s : group.inputs) {
      PX_CHECK(s != nullptr);
      PX_CHECK(s->dense_shape() == dense_shape);
      group_pairs += s->nnz_rows();
      layout.total_elements += s->nnz_rows() * layout.width[static_cast<size_t>(g)];
    }
    layout.pair_start[static_cast<size_t>(g) + 1] =
        layout.pair_start[static_cast<size_t>(g)] + group_pairs;
  }
  const int64_t total = layout.pair_start.back();
  if (total == 0) {
    return false;
  }

  auto& keys = ws.sort_keys(total);
  auto& rows = ws.row_ptrs(total);
  int64_t p = 0;
  for (int64_t g = 0; g < num_groups; ++g) {
    const int64_t row = layout.width[static_cast<size_t>(g)];
    for (const IndexedSlices* s : groups[static_cast<size_t>(g)].inputs) {
      auto values = s->values().floats();
      const std::vector<int64_t>& idx = s->indices();
      for (int64_t i = 0; i < s->nnz_rows(); ++i, ++p) {
        keys[static_cast<size_t>(p)] = idx[static_cast<size_t>(i)];
        rows[static_cast<size_t>(p)] = values.data() + i * row;
      }
    }
  }
  for (int64_t g = 0; g < num_groups; ++g) {
    ws.SortRangeByKey(layout.pair_start[static_cast<size_t>(g)],
                      layout.pair_start[static_cast<size_t>(g) + 1],
                      groups[static_cast<size_t>(g)].inputs.front()->dense_shape().dim(0) - 1);
  }
  layout.seg = &ws.BuildSegmentsInRanges(layout.pair_start);
  layout.num_seg = static_cast<int64_t>(layout.seg->size()) - 1;

  // Group g owns the contiguous segment run [first_seg[g], first_seg[g+1]) — segment
  // starts ascend with the pair ranges.
  layout.first_seg.assign(static_cast<size_t>(num_groups) + 1, 0);
  int64_t s = 0;
  for (int64_t g = 0; g <= num_groups; ++g) {
    while (s < layout.num_seg &&
           (*layout.seg)[static_cast<size_t>(s)] < layout.pair_start[static_cast<size_t>(g)]) {
      ++s;
    }
    layout.first_seg[static_cast<size_t>(g)] = s;
  }
  return true;
}

}  // namespace

std::vector<IndexedSlices> MultiVariableSum(const std::vector<SparseSumGroup>& groups,
                                            SparseWorkspace* workspace) {
  SparseWorkspace local;
  SparseWorkspace& ws = workspace != nullptr ? *workspace : local;
  const int64_t num_groups = static_cast<int64_t>(groups.size());

  auto empty_for = [&](int64_t g) {
    const IndexedSlices& front = *groups[static_cast<size_t>(g)].inputs.front();
    return IndexedSlices({}, Tensor::Zeros(front.values().shape().WithDim0(0)),
                         front.dense_shape());
  };
  MultiSortLayout layout;
  std::vector<IndexedSlices> result;
  result.reserve(static_cast<size_t>(num_groups));
  if (!FusedMultiSort(groups, ws, layout)) {
    for (int64_t g = 0; g < num_groups; ++g) {
      result.push_back(empty_for(g));
    }
    return result;
  }
  const std::vector<int64_t>& seg = *layout.seg;
  const std::vector<int64_t>& first_seg = layout.first_seg;
  const std::vector<int64_t>& sorted_keys = ws.sorted_keys();
  const std::vector<int64_t>& pos = ws.sorted_pos();
  const std::vector<const float*>& rows = ws.row_ptrs(layout.pair_start.back());

  std::vector<std::vector<int64_t>> out_indices(static_cast<size_t>(num_groups));
  std::vector<Tensor> out_values(static_cast<size_t>(num_groups));
  std::vector<float*> out_ptr(static_cast<size_t>(num_groups), nullptr);
  for (int64_t g = 0; g < num_groups; ++g) {
    const int64_t n_out =
        first_seg[static_cast<size_t>(g) + 1] - first_seg[static_cast<size_t>(g)];
    const IndexedSlices& front = *groups[static_cast<size_t>(g)].inputs.front();
    out_indices[static_cast<size_t>(g)].resize(static_cast<size_t>(n_out));
    out_values[static_cast<size_t>(g)] = Tensor::Zeros(front.values().shape().WithDim0(n_out));
    out_ptr[static_cast<size_t>(g)] = out_values[static_cast<size_t>(g)].mutable_floats().data();
  }

  ParallelOverSegments(ws, layout.num_seg, layout.total_elements,
                       [&](int64_t s_begin, int64_t s_end) {
    // Group of the first segment in this range; advances as segments cross group
    // boundaries (empty groups own no segments, so walking lands on the right one).
    int64_t g = static_cast<int64_t>(
                    std::upper_bound(first_seg.begin(), first_seg.end(), s_begin) -
                    first_seg.begin()) -
                1;
    for (int64_t s = s_begin; s < s_end; ++s) {
      while (s >= first_seg[static_cast<size_t>(g) + 1]) {
        ++g;
      }
      const int64_t row = layout.width[static_cast<size_t>(g)];
      const int64_t local_s = s - first_seg[static_cast<size_t>(g)];
      out_indices[static_cast<size_t>(g)][static_cast<size_t>(local_s)] =
          sorted_keys[static_cast<size_t>(seg[static_cast<size_t>(s)])];
      float* dst = out_ptr[static_cast<size_t>(g)] + local_s * row;
      for (int64_t i = seg[static_cast<size_t>(s)]; i < seg[static_cast<size_t>(s) + 1]; ++i) {
        const float* src = rows[static_cast<size_t>(pos[static_cast<size_t>(i)])];
        for (int64_t j = 0; j < row; ++j) {
          dst[j] += src[j];
        }
      }
    }
  });

  for (int64_t g = 0; g < num_groups; ++g) {
    result.emplace_back(std::move(out_indices[static_cast<size_t>(g)]),
                        std::move(out_values[static_cast<size_t>(g)]),
                        groups[static_cast<size_t>(g)].inputs.front()->dense_shape());
  }
  return result;
}

void MultiVariableSumStream(
    const std::vector<SparseSumGroup>& groups, SparseWorkspace* workspace,
    const std::function<void(int64_t, int64_t, const float*)>& consume,
    std::vector<int64_t>* unique_rows_out) {
  SparseWorkspace local;
  SparseWorkspace& ws = workspace != nullptr ? *workspace : local;
  MultiSortLayout layout;
  if (!FusedMultiSort(groups, ws, layout)) {
    if (unique_rows_out != nullptr) {
      unique_rows_out->assign(groups.size(), 0);
    }
    return;
  }
  if (unique_rows_out != nullptr) {
    unique_rows_out->resize(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      (*unique_rows_out)[g] = layout.first_seg[g + 1] - layout.first_seg[g];
    }
  }
  const std::vector<int64_t>& seg = *layout.seg;
  const std::vector<int64_t>& first_seg = layout.first_seg;
  const std::vector<int64_t>& sorted_keys = ws.sorted_keys();
  const std::vector<int64_t>& pos = ws.sorted_pos();
  const std::vector<const float*>& rows = ws.row_ptrs(layout.pair_start.back());

  // Each output row is produced by exactly one lane, so a thread-safe consume
  // (disjoint destinations) parallelizes cleanly. Single-contribution rows — the
  // common case for sparse gradients — stream straight from the input; only genuine
  // duplicates are summed into the per-lane scratch row (a fresh zero accumulation,
  // bit-identical to the materializing reduction).
  ParallelOverSegments(ws, layout.num_seg, layout.total_elements,
                       [&](int64_t s_begin, int64_t s_end) {
    int64_t g = static_cast<int64_t>(
                    std::upper_bound(first_seg.begin(), first_seg.end(), s_begin) -
                    first_seg.begin()) -
                1;
    // Per-thread scratch row, grow-only across chunks and steps: the duplicate-row
    // path stays allocation-free once warm.
    static thread_local std::vector<float> row_buffer;
    for (int64_t s = s_begin; s < s_end; ++s) {
      while (s >= first_seg[static_cast<size_t>(g) + 1]) {
        ++g;
      }
      const int64_t row = layout.width[static_cast<size_t>(g)];
      const int64_t begin = seg[static_cast<size_t>(s)];
      const int64_t end = seg[static_cast<size_t>(s) + 1];
      const int64_t key = sorted_keys[static_cast<size_t>(begin)];
      if (end - begin == 1) {
        consume(g, key, rows[static_cast<size_t>(pos[static_cast<size_t>(begin)])]);
        continue;
      }
      row_buffer.assign(static_cast<size_t>(row), 0.0f);
      for (int64_t i = begin; i < end; ++i) {
        const float* src = rows[static_cast<size_t>(pos[static_cast<size_t>(i)])];
        for (int64_t j = 0; j < row; ++j) {
          row_buffer[static_cast<size_t>(j)] += src[j];
        }
      }
      consume(g, key, row_buffer.data());
    }
  });
}

IndexedSlices IndexedSlices::Concat(const std::vector<IndexedSlices>& slices) {
  PX_CHECK(!slices.empty());
  const TensorShape& dense_shape = slices.front().dense_shape();
  int64_t row = slices.front().row_elements();
  int64_t total_rows = 0;
  for (const IndexedSlices& s : slices) {
    PX_CHECK(s.dense_shape() == dense_shape);
    total_rows += s.nnz_rows();
  }
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(total_rows));
  Tensor values = Tensor::Zeros(slices.front().values().shape().WithDim0(total_rows));
  auto out = values.mutable_floats();
  int64_t offset = 0;
  for (const IndexedSlices& s : slices) {
    indices.insert(indices.end(), s.indices().begin(), s.indices().end());
    auto in = s.values().floats();
    std::copy(in.begin(), in.end(), out.begin() + static_cast<ptrdiff_t>(offset * row));
    offset += s.nnz_rows();
  }
  return IndexedSlices(std::move(indices), std::move(values), dense_shape);
}

void IndexedSlices::Scale(float factor) {
  for (float& v : values_.mutable_floats()) {
    v *= factor;
  }
}

int64_t IndexedSlices::unique_rows() const {
  int64_t cached = unique_rows_cache_.load(std::memory_order_relaxed);
  if (cached >= 0) {
    return cached;
  }
  // Sort a scratch copy and count distinct values — no per-key hash nodes. The result
  // is cached: indices_ is immutable for the lifetime of the object, and concurrent
  // first calls simply store the same value.
  std::vector<int64_t> sorted(indices_);
  std::sort(sorted.begin(), sorted.end());
  int64_t unique = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) {
      ++unique;
    }
  }
  unique_rows_cache_.store(unique, std::memory_order_relaxed);
  return unique;
}

double IndexedSlices::AccessRatio() const {
  if (dense_shape_.dim(0) == 0) {
    return 0.0;
  }
  return static_cast<double>(unique_rows()) / static_cast<double>(dense_shape_.dim(0));
}

std::string IndexedSlices::DebugString() const {
  return StrFormat("IndexedSlices<nnz_rows=%lld dense_shape=%s>",
                   static_cast<long long>(nnz_rows()), dense_shape_.ToString().c_str());
}

}  // namespace parallax
