#include "src/tensor/indexed_slices.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_set>

#include "src/base/strings.h"

namespace parallax {

IndexedSlices::IndexedSlices(std::vector<int64_t> indices, Tensor values,
                             TensorShape dense_shape)
    : indices_(std::move(indices)),
      values_(std::move(values)),
      dense_shape_(std::move(dense_shape)) {
  PX_CHECK_GE(dense_shape_.rank(), 1);
  PX_CHECK_EQ(values_.shape().dim(0), static_cast<int64_t>(indices_.size()));
  PX_CHECK_EQ(values_.shape().row_elements(), dense_shape_.row_elements());
  for (int64_t index : indices_) {
    PX_CHECK_GE(index, 0);
    PX_CHECK_LT(index, dense_shape_.dim(0));
  }
}

int64_t IndexedSlices::WireBytes() const {
  return nnz_rows() * row_elements() * static_cast<int64_t>(sizeof(float)) +
         nnz_rows() * static_cast<int64_t>(sizeof(int64_t));
}

Tensor IndexedSlices::ToDense() const {
  Tensor dense = Tensor::Zeros(dense_shape_);
  auto out = dense.mutable_floats();
  auto in = values_.floats();
  int64_t row = row_elements();
  for (int64_t i = 0; i < nnz_rows(); ++i) {
    int64_t base = indices_[static_cast<size_t>(i)] * row;
    for (int64_t j = 0; j < row; ++j) {
      out[static_cast<size_t>(base + j)] += in[static_cast<size_t>(i * row + j)];
    }
  }
  return dense;
}

IndexedSlices IndexedSlices::Coalesced() const {
  int64_t row = row_elements();
  // Deterministic order: sorted unique indices.
  std::map<int64_t, int64_t> first_slot;  // index -> output slot
  for (int64_t index : indices_) {
    first_slot.emplace(index, 0);
  }
  std::vector<int64_t> out_indices;
  out_indices.reserve(first_slot.size());
  for (auto& [index, slot] : first_slot) {
    slot = static_cast<int64_t>(out_indices.size());
    out_indices.push_back(index);
  }
  Tensor out_values = Tensor::Zeros(
      values_.shape().WithDim0(static_cast<int64_t>(out_indices.size())));
  auto out = out_values.mutable_floats();
  auto in = values_.floats();
  for (int64_t i = 0; i < nnz_rows(); ++i) {
    int64_t slot = first_slot[indices_[static_cast<size_t>(i)]];
    for (int64_t j = 0; j < row; ++j) {
      out[static_cast<size_t>(slot * row + j)] += in[static_cast<size_t>(i * row + j)];
    }
  }
  return IndexedSlices(std::move(out_indices), std::move(out_values), dense_shape_);
}

IndexedSlices IndexedSlices::Sum(const std::vector<IndexedSlices>& slices) {
  PX_CHECK(!slices.empty());
  return Concat(slices).Coalesced();
}

IndexedSlices IndexedSlices::Concat(const std::vector<IndexedSlices>& slices) {
  PX_CHECK(!slices.empty());
  const TensorShape& dense_shape = slices.front().dense_shape();
  int64_t row = slices.front().row_elements();
  int64_t total_rows = 0;
  for (const IndexedSlices& s : slices) {
    PX_CHECK(s.dense_shape() == dense_shape);
    total_rows += s.nnz_rows();
  }
  std::vector<int64_t> indices;
  indices.reserve(static_cast<size_t>(total_rows));
  Tensor values = Tensor::Zeros(slices.front().values().shape().WithDim0(total_rows));
  auto out = values.mutable_floats();
  int64_t offset = 0;
  for (const IndexedSlices& s : slices) {
    indices.insert(indices.end(), s.indices().begin(), s.indices().end());
    auto in = s.values().floats();
    std::copy(in.begin(), in.end(), out.begin() + static_cast<ptrdiff_t>(offset * row));
    offset += s.nnz_rows();
  }
  return IndexedSlices(std::move(indices), std::move(values), dense_shape);
}

void IndexedSlices::Scale(float factor) {
  for (float& v : values_.mutable_floats()) {
    v *= factor;
  }
}

double IndexedSlices::AccessRatio() const {
  if (dense_shape_.dim(0) == 0) {
    return 0.0;
  }
  std::unordered_set<int64_t> unique(indices_.begin(), indices_.end());
  return static_cast<double>(unique.size()) / static_cast<double>(dense_shape_.dim(0));
}

std::string IndexedSlices::DebugString() const {
  return StrFormat("IndexedSlices<nnz_rows=%lld dense_shape=%s>",
                   static_cast<long long>(nnz_rows()), dense_shape_.ToString().c_str());
}

}  // namespace parallax
