// SparseWorkspace: a reusable scratch arena for the sparse aggregation pipeline.
//
// The sparse hot path — Coalesced / Sum / SplitSlicesByPartition / ScatterSgdUpdate —
// runs once per variable per training iteration. Rebuilding its working state (sort
// buffers, permutations, histograms, segment tables) from the heap every call dominated
// the kernels' cost in the seed implementation (a std::map node per distinct row).
// Threading one SparseWorkspace through a training loop makes the steady state
// allocation-free: every buffer is grow-only and reused across calls, so after the first
// iteration at peak nnz the kernels never touch the allocator again. (Output tensors
// handed to callers are still freshly allocated — they escape the call.)
//
// A workspace is single-owner state, like an Rng: one per engine / thread of control,
// never shared concurrently. Kernels accept `SparseWorkspace*` and fall back to a local
// (allocating) workspace when given nullptr, so every call site works without one.
//
// The workspace also carries the ThreadPool the kernels may use for segment-parallel
// reduction; when unset, GlobalSparsePool() is used. Results are bit-identical for every
// pool size (see docs/perf.md for the argument).
#ifndef PARALLAX_SRC_TENSOR_SPARSE_WORKSPACE_H_
#define PARALLAX_SRC_TENSOR_SPARSE_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "src/base/thread_pool.h"

namespace parallax {

class SparseWorkspace {
 public:
  SparseWorkspace() = default;
  explicit SparseWorkspace(ThreadPool* pool) : pool_(pool) {}

  // Pool used for parallel segment reduction; GlobalSparsePool() when none was set.
  ThreadPool& pool() const { return pool_ != nullptr ? *pool_ : GlobalSparsePool(); }
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  // ---- Sort pipeline (used by Coalesced / Sum) -------------------------------------
  //
  // Protocol: fill sort_keys(n) with the row indices, then call SortByKey(n, max_key).
  // Afterwards sorted_keys() holds the keys in ascending order and sorted_pos()[i] is
  // the original position of sorted element i; ties keep their input order (stable), so
  // per-row float accumulation order matches the naive input-order reference exactly.

  // Scratch key buffer, resized to n (contents unspecified).
  std::vector<int64_t>& sort_keys(int64_t n) { return Resized(sort_keys_, n); }

  // Stable-sorts sort_keys()[0, n) ascending, producing the permutation in sorted_pos().
  // Keys must lie in [0, max_key]. LSD radix sort for large n, comparison sort below
  // the cutoff; both stable, both allocation-free once buffers are warm.
  void SortByKey(int64_t n, int64_t max_key);

  // Stable-sorts the subrange sort_keys()[begin, end) in place (sorted_pos()[begin, end)
  // holds the originating positions, which lie in [begin, end)). Lets one key buffer
  // carry many independently-sorted ranges — the multi-variable fused aggregation sorts
  // each variable's contiguous run separately, keeping every sort cache-sized and its
  // radix width at the variable's own key range. The whole key buffer must be sized
  // first (sort_keys(n)); ranges must not overlap.
  void SortRangeByKey(int64_t begin, int64_t end, int64_t max_key);

  const std::vector<int64_t>& sorted_keys() const { return sort_keys_; }
  const std::vector<int64_t>& sorted_pos() const { return sort_pos_; }

  // Builds the segment table over sorted_keys()[0, n): segment_starts()[s] is the first
  // position of segment s, with a final sentinel n. Returns the table; num segments is
  // size() - 1. Requires SortByKey to have run for this n.
  const std::vector<int64_t>& BuildSegments(int64_t n);

  // Segment table over independently-sorted ranges: range_starts[i], range_starts[i+1])
  // delimit the i-th sorted range (first entry 0, last entry n). Equal keys on opposite
  // sides of a range boundary stay in separate segments — boundaries always start a new
  // segment. Returns the table with the final sentinel n.
  const std::vector<int64_t>& BuildSegmentsInRanges(const std::vector<int64_t>& range_starts);

  // ---- General scratch -------------------------------------------------------------

  // Per-source row pointer table for fused multi-slice reduction.
  std::vector<const float*>& row_ptrs(int64_t n) { return Resized(row_ptrs_, n); }
  // Small per-element tags (e.g. partition of each row).
  std::vector<int32_t>& small_ints(int64_t n) { return Resized(small_ints_, n); }
  // Counting buffer (histograms, per-partition counts), zero-filled.
  std::vector<int64_t>& zeroed_counts(int64_t n);
  // Cursor buffer (write offsets during placement), zero-filled.
  std::vector<int64_t>& zeroed_cursors(int64_t n);

  // Frees all scratch capacity (the workspace stays usable).
  void Release();

  // Bytes currently retained across all scratch buffers.
  int64_t RetainedBytes() const;

 private:
  template <typename T>
  static std::vector<T>& Resized(std::vector<T>& buffer, int64_t n) {
    buffer.resize(static_cast<size_t>(n));
    return buffer;
  }

  ThreadPool* pool_ = nullptr;

  std::vector<int64_t> sort_keys_;
  std::vector<int64_t> sort_pos_;
  std::vector<int64_t> alt_keys_;  // radix ping-pong
  std::vector<int64_t> alt_pos_;
  std::vector<int64_t> segment_starts_;
  std::vector<int64_t> histogram_;
  std::vector<int64_t> counts_;
  std::vector<int64_t> cursors_;
  std::vector<const float*> row_ptrs_;
  std::vector<int32_t> small_ints_;
};

// Runs fn(segment_begin, segment_end) over [0, num_segments), in parallel when the
// total element volume justifies it and the workspace's pool has more than one lane.
// Each segment is processed entirely by one lane in ascending order, so the result is
// identical to the sequential fn(0, num_segments) for every pool size.
void ParallelOverSegments(const SparseWorkspace& workspace, int64_t num_segments,
                          int64_t total_elements,
                          const std::function<void(int64_t, int64_t)>& fn);

}  // namespace parallax

#endif  // PARALLAX_SRC_TENSOR_SPARSE_WORKSPACE_H_
