#include "src/tensor/sparse_workspace.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/base/logging.h"

namespace parallax {
namespace {

// Below this size a cache-resident comparison sort beats the radix passes.
constexpr int64_t kComparisonSortCutoff = 2048;

// Segment reduction goes parallel only past this many touched elements; below it the
// ParallelFor handoff costs more than the loop.
constexpr int64_t kParallelElementThreshold = 1 << 15;

constexpr int kRadixBits = 8;
constexpr int64_t kRadixBuckets = int64_t{1} << kRadixBits;

}  // namespace

void SparseWorkspace::SortByKey(int64_t n, int64_t max_key) {
  PX_CHECK_LE(n, static_cast<int64_t>(sort_keys_.size()));
  Resized(sort_pos_, n);
  SortRangeByKey(0, n, max_key);
}

void SparseWorkspace::SortRangeByKey(int64_t begin, int64_t end, int64_t max_key) {
  PX_CHECK_GE(max_key, 0);
  PX_CHECK_GE(begin, 0);
  PX_CHECK_LE(begin, end);
  PX_CHECK_LE(end, static_cast<int64_t>(sort_keys_.size()));
  Resized(sort_pos_, static_cast<int64_t>(sort_keys_.size()));
  std::iota(sort_pos_.begin() + begin, sort_pos_.begin() + end, begin);
  const int64_t n = end - begin;
  if (n < 2) {
    return;
  }

  if (n < kComparisonSortCutoff) {
    // Indirect sort of the permutation; the position tiebreak makes it stable.
    std::sort(sort_pos_.begin() + begin, sort_pos_.begin() + end,
              [&](int64_t a, int64_t b) {
                if (sort_keys_[static_cast<size_t>(a)] != sort_keys_[static_cast<size_t>(b)]) {
                  return sort_keys_[static_cast<size_t>(a)] <
                         sort_keys_[static_cast<size_t>(b)];
                }
                return a < b;
              });
    Resized(alt_keys_, static_cast<int64_t>(sort_keys_.size()));
    for (int64_t i = begin; i < end; ++i) {
      alt_keys_[static_cast<size_t>(i)] =
          sort_keys_[static_cast<size_t>(sort_pos_[static_cast<size_t>(i)])];
    }
    if (begin == 0 && end == static_cast<int64_t>(sort_keys_.size())) {
      std::swap(sort_keys_, alt_keys_);  // full range: swap beats copy-back
    } else {
      std::copy(alt_keys_.begin() + begin, alt_keys_.begin() + end,
                sort_keys_.begin() + begin);
    }
    return;
  }

  // LSD radix over 8-bit digits: stable by construction. Ping-pong between the sort and
  // alt buffers; constant digits are detected via the histogram and skipped. Subrange
  // sorts leave the untouched remainder of the buffers intact (copy-back, no swap).
  Resized(alt_keys_, static_cast<int64_t>(sort_keys_.size()));
  Resized(alt_pos_, static_cast<int64_t>(sort_keys_.size()));
  Resized(histogram_, kRadixBuckets);
  std::vector<int64_t>* keys = &sort_keys_;
  std::vector<int64_t>* pos = &sort_pos_;
  std::vector<int64_t>* keys_out = &alt_keys_;
  std::vector<int64_t>* pos_out = &alt_pos_;
  for (int shift = 0; (max_key >> shift) != 0; shift += kRadixBits) {
    std::fill(histogram_.begin(), histogram_.end(), 0);
    for (int64_t i = begin; i < end; ++i) {
      ++histogram_[static_cast<size_t>(((*keys)[static_cast<size_t>(i)] >> shift) &
                                       (kRadixBuckets - 1))];
    }
    bool constant_digit = false;
    for (int64_t b = 0; b < kRadixBuckets; ++b) {
      if (histogram_[static_cast<size_t>(b)] == n) {
        constant_digit = true;
        break;
      }
    }
    if (constant_digit) {
      continue;
    }
    int64_t running = begin;
    for (int64_t b = 0; b < kRadixBuckets; ++b) {
      int64_t count = histogram_[static_cast<size_t>(b)];
      histogram_[static_cast<size_t>(b)] = running;
      running += count;
    }
    for (int64_t i = begin; i < end; ++i) {
      int64_t key = (*keys)[static_cast<size_t>(i)];
      int64_t dst = histogram_[static_cast<size_t>((key >> shift) & (kRadixBuckets - 1))]++;
      (*keys_out)[static_cast<size_t>(dst)] = key;
      (*pos_out)[static_cast<size_t>(dst)] = (*pos)[static_cast<size_t>(i)];
    }
    std::swap(keys, keys_out);
    std::swap(pos, pos_out);
  }
  if (keys != &sort_keys_) {
    if (begin == 0 && end == static_cast<int64_t>(sort_keys_.size())) {
      std::swap(sort_keys_, alt_keys_);  // full range: swap beats copy-back
      std::swap(sort_pos_, alt_pos_);
    } else {
      std::copy(alt_keys_.begin() + begin, alt_keys_.begin() + end,
                sort_keys_.begin() + begin);
      std::copy(alt_pos_.begin() + begin, alt_pos_.begin() + end,
                sort_pos_.begin() + begin);
    }
  }
}

const std::vector<int64_t>& SparseWorkspace::BuildSegments(int64_t n) {
  PX_CHECK_LE(n, static_cast<int64_t>(sort_keys_.size()));
  segment_starts_.clear();
  for (int64_t i = 0; i < n; ++i) {
    if (i == 0 || sort_keys_[static_cast<size_t>(i)] != sort_keys_[static_cast<size_t>(i - 1)]) {
      segment_starts_.push_back(i);
    }
  }
  segment_starts_.push_back(n);
  return segment_starts_;
}

const std::vector<int64_t>& SparseWorkspace::BuildSegmentsInRanges(
    const std::vector<int64_t>& range_starts) {
  PX_CHECK_GE(range_starts.size(), 2u);
  PX_CHECK_EQ(range_starts.front(), 0);
  const int64_t n = range_starts.back();
  PX_CHECK_LE(n, static_cast<int64_t>(sort_keys_.size()));
  segment_starts_.clear();
  for (size_t r = 0; r + 1 < range_starts.size(); ++r) {
    const int64_t begin = range_starts[r];
    const int64_t end = range_starts[r + 1];
    PX_CHECK_LE(begin, end);
    for (int64_t i = begin; i < end; ++i) {
      // A range boundary always opens a segment: keys in different ranges belong to
      // different key spaces even when their values coincide.
      if (i == begin ||
          sort_keys_[static_cast<size_t>(i)] != sort_keys_[static_cast<size_t>(i - 1)]) {
        segment_starts_.push_back(i);
      }
    }
  }
  segment_starts_.push_back(n);
  return segment_starts_;
}

std::vector<int64_t>& SparseWorkspace::zeroed_counts(int64_t n) {
  Resized(counts_, n);
  std::fill(counts_.begin(), counts_.end(), 0);
  return counts_;
}

std::vector<int64_t>& SparseWorkspace::zeroed_cursors(int64_t n) {
  Resized(cursors_, n);
  std::fill(cursors_.begin(), cursors_.end(), 0);
  return cursors_;
}

void SparseWorkspace::Release() {
  sort_keys_ = {};
  sort_pos_ = {};
  alt_keys_ = {};
  alt_pos_ = {};
  segment_starts_ = {};
  histogram_ = {};
  counts_ = {};
  cursors_ = {};
  row_ptrs_ = {};
  small_ints_ = {};
}

int64_t SparseWorkspace::RetainedBytes() const {
  auto bytes = [](const auto& v) {
    return static_cast<int64_t>(v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  return bytes(sort_keys_) + bytes(sort_pos_) + bytes(alt_keys_) + bytes(alt_pos_) +
         bytes(segment_starts_) + bytes(histogram_) + bytes(counts_) + bytes(cursors_) +
         bytes(row_ptrs_) + bytes(small_ints_);
}

void ParallelOverSegments(const SparseWorkspace& workspace, int64_t num_segments,
                          int64_t total_elements,
                          const std::function<void(int64_t, int64_t)>& fn) {
  if (num_segments <= 0) {
    return;
  }
  ThreadPool& pool = workspace.pool();
  if (pool.num_threads() <= 1 || total_elements < kParallelElementThreshold) {
    fn(0, num_segments);
    return;
  }
  // Aim each chunk at ~16K elements of reduction work so handoff overhead stays small.
  int64_t elements_per_segment =
      std::max<int64_t>(1, total_elements / std::max<int64_t>(num_segments, 1));
  int64_t grain = std::max<int64_t>(1, (int64_t{1} << 14) / elements_per_segment);
  pool.ParallelFor(num_segments, grain, fn);
}

}  // namespace parallax
