// TensorShape: dimension list with the usual conveniences. Row-major layout throughout.
#ifndef PARALLAX_SRC_TENSOR_SHAPE_H_
#define PARALLAX_SRC_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace parallax {

class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit TensorShape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of all dimensions; 1 for a scalar (rank 0).
  int64_t num_elements() const;

  // Product of dimensions [1, rank); the size of one "row" for 2-D-style access.
  // Requires rank >= 1.
  int64_t row_elements() const;

  // Returns a copy with dim(0) replaced. Requires rank >= 1.
  TensorShape WithDim0(int64_t new_dim0) const;

  bool operator==(const TensorShape& other) const { return dims_ == other.dims_; }
  bool operator!=(const TensorShape& other) const { return dims_ != other.dims_; }

  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_TENSOR_SHAPE_H_
