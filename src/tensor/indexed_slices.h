// IndexedSlices: the sparse-gradient representation, mirroring TensorFlow's type of the
// same name. A gradient with respect to a variable accessed through Gather touches only a
// subset of rows; IndexedSlices stores those row indices plus a dense block of row values.
//
// The existence of this type — rather than a flag — is load-bearing for Parallax: the
// sparsity analyzer classifies a variable as sparse exactly when autodiff produces an
// IndexedSlices gradient for it (paper section 5, "Identifying the sparsity of a variable").
#ifndef PARALLAX_SRC_TENSOR_INDEXED_SLICES_H_
#define PARALLAX_SRC_TENSOR_INDEXED_SLICES_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace parallax {

class SparseWorkspace;

class IndexedSlices {
 public:
  IndexedSlices() = default;

  // indices: row ids into the dense variable (may contain duplicates, as raw gradients
  // from embedding lookups do). values: shape [indices.size(), row_elements...].
  // dense_shape: shape of the variable this gradient applies to.
  IndexedSlices(std::vector<int64_t> indices, Tensor values, TensorShape dense_shape);

  // Copies/moves carry the unique-rows cache along (the atomic member is not copyable
  // by default).
  IndexedSlices(const IndexedSlices& other)
      : indices_(other.indices_),
        values_(other.values_),
        dense_shape_(other.dense_shape_),
        unique_rows_cache_(other.unique_rows_cache_.load(std::memory_order_relaxed)) {}
  IndexedSlices(IndexedSlices&& other) noexcept
      : indices_(std::move(other.indices_)),
        values_(std::move(other.values_)),
        dense_shape_(std::move(other.dense_shape_)),
        unique_rows_cache_(
            other.unique_rows_cache_.exchange(-1, std::memory_order_relaxed)) {}
  IndexedSlices& operator=(const IndexedSlices& other) {
    indices_ = other.indices_;
    values_ = other.values_;
    dense_shape_ = other.dense_shape_;
    unique_rows_cache_.store(other.unique_rows_cache_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    return *this;
  }
  IndexedSlices& operator=(IndexedSlices&& other) noexcept {
    indices_ = std::move(other.indices_);
    values_ = std::move(other.values_);
    dense_shape_ = std::move(other.dense_shape_);
    unique_rows_cache_.store(other.unique_rows_cache_.exchange(-1, std::memory_order_relaxed),
                             std::memory_order_relaxed);
    return *this;
  }

  // Rebuilds this object in place for pooled reuse: the indices are copied into the
  // existing vector (capacity reused), the dense shape replaced, and the unique-rows
  // cache invalidated. The values tensor is left untouched — the caller fills it
  // through mutable_values(), typically with an *Into kernel so its buffer is reused
  // too. The steady-state-allocation-free counterpart of constructing a fresh object.
  void ResetForReuse(std::span<const int64_t> indices, const TensorShape& dense_shape);

  int64_t nnz_rows() const { return static_cast<int64_t>(indices_.size()); }
  const std::vector<int64_t>& indices() const { return indices_; }
  const Tensor& values() const { return values_; }
  Tensor& mutable_values() { return values_; }
  const TensorShape& dense_shape() const { return dense_shape_; }
  int64_t row_elements() const { return dense_shape_.row_elements(); }

  // Bytes this gradient occupies on the wire: values + indices. The paper's analysis
  // neglects index bytes; we carry them for honest accounting (they are small).
  int64_t WireBytes() const;

  // Expands to a dense tensor of dense_shape (duplicate indices accumulate).
  Tensor ToDense() const;

  // Coalesces duplicate indices by summing their rows; output indices are sorted.
  // This is the "gradient aggregation ... iterating through nonzero indices one by one"
  // operation whose cost partitioning parallelizes (paper section 3.2).
  //
  // Implemented as a stable sort over the indices plus one segmented-reduction pass over
  // contiguous row blocks; per-row accumulation order equals input order, so the result
  // is bit-identical to the naive slot-map reference. Pass a SparseWorkspace to reuse
  // sort/segment scratch across calls (steady-state allocation-free except the output).
  IndexedSlices Coalesced(SparseWorkspace* workspace = nullptr) const;

  // Sums a list of slices into one coalesced slices object. All inputs must share
  // dense_shape. Used by accumulators (PS global aggregation) and local aggregation.
  //
  // Fused k-way: sorts (row index, source row) pairs drawn from all inputs and reduces
  // straight out of the input value buffers — no intermediate Concat tensor. Pair order
  // is (input slice, row) lexicographic, so accumulation per output row is bit-identical
  // to Concat(slices).Coalesced().
  static IndexedSlices Sum(const std::vector<IndexedSlices>& slices,
                           SparseWorkspace* workspace = nullptr);

  // Concatenates (gathers) slices without coalescing — the AllGatherv aggregation
  // semantics: [grad(X1), ..., grad(XN)] (paper section 2.1).
  static IndexedSlices Concat(const std::vector<IndexedSlices>& slices);

  // Multiplies all values by the scalar (for gradient averaging).
  void Scale(float factor);

  // Number of distinct row indices. Computed on first use by sorting a scratch copy
  // (no per-key hash nodes) and cached — indices_ is immutable after construction, so
  // repeated calls are free.
  int64_t unique_rows() const;

  // The fraction of the variable's rows touched by this gradient (after dedup):
  // the per-batch alpha of paper section 2.2.
  double AccessRatio() const;

  std::string DebugString() const;

 private:
  std::vector<int64_t> indices_;
  Tensor values_;            // [nnz_rows, row_elements]
  TensorShape dense_shape_;  // shape of the corresponding dense variable
  // Lazily computed from the immutable indices_; atomic so concurrent const readers
  // stay race-free (both writers would store the same value).
  mutable std::atomic<int64_t> unique_rows_cache_{-1};
};

// One variable's contributions inside a multi-variable fused sum. All inputs share a
// dense_shape; contributor order defines the per-row accumulation order, exactly as in
// IndexedSlices::Sum.
struct SparseSumGroup {
  std::vector<const IndexedSlices*> inputs;  // non-empty, non-null
};

// Fused multi-variable aggregation: sums every group's contributions through ONE shared
// workspace pass — a single key/row-pointer fill, one segment build, and one
// (potentially parallel) segmented reduction over all groups — instead of one full Sum
// pipeline per variable. Each group's contiguous key range is stable-sorted
// independently (SortRangeByKey), so every sort stays cache-sized and keeps the group's
// own radix width; group ranges never mix, which is what composite keys would have
// bought at the cost of wider sorts. This is the kernel behind batching all sparse
// variables of a training step through a single SparseWorkspace pass.
//
// result[g] is bit-identical to IndexedSlices::Sum over group g's inputs (and to
// Coalesced for a single input): pairs are enumerated group-major in (contributor, row)
// order and each subsort is stable, so each output row accumulates the same values in
// the same order; segments never cross group boundaries (BuildSegmentsInRanges).
std::vector<IndexedSlices> MultiVariableSum(const std::vector<SparseSumGroup>& groups,
                                            SparseWorkspace* workspace = nullptr);

// Streaming form of MultiVariableSum: the same shared pass, but every coalesced output
// row is handed to `consume(group, row_index, row_values)` instead of being
// materialized into per-group tensors. This is the aggregate-and-apply fusion of the
// PS engine's step path — with the scale and the SGD update folded into `consume`, a
// step's sparse synchronization touches no intermediate gradient tensor at all.
//
// `row_values` points either directly at the (sole) contributing input row or at a
// reusable scratch sum — consume must treat it as read-only and not retain it. Rows
// arrive coalesced (each (group, row) exactly once, summed in the order
// MultiVariableSum uses); distinct rows may be consumed concurrently from different
// lanes, so `consume` must only write through its own (group, row).
//
// When `unique_rows_out` is non-null it is resized to groups.size() and filled with
// each group's coalesced row count — the number of distinct indices in the group's
// aggregated gradient. The counts fall out of the segment table the pass builds
// anyway (one subtraction per group), so observation costs nothing beyond the copy;
// passing nullptr — the default — skips even that. This is the nnz tap behind the
// sparsity monitor's measured alpha (core/sparsity_monitor.h).
void MultiVariableSumStream(
    const std::vector<SparseSumGroup>& groups, SparseWorkspace* workspace,
    const std::function<void(int64_t, int64_t, const float*)>& consume,
    std::vector<int64_t>* unique_rows_out = nullptr);

}  // namespace parallax

#endif  // PARALLAX_SRC_TENSOR_INDEXED_SLICES_H_
