#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/tensor/sparse_workspace.h"

namespace parallax {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  PX_CHECK(a.shape() == b.shape())
      << "shape mismatch: " << a.shape().ToString() << " vs " << b.shape().ToString();
}

// Parallel scatter engages only past this many touched elements (and needs >1 lane and
// sorted indices); below it the shard setup outweighs the row updates.
constexpr int64_t kParallelScatterThreshold = 1 << 16;
constexpr int kMaxScatterShards = 32;

}  // namespace

void AddInPlace(Tensor& out, const Tensor& in) {
  CheckSameShape(out, in);
  auto dst = out.mutable_floats();
  auto src = in.floats();
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i] += src[i];
  }
}

void AxpyInPlace(Tensor& out, float alpha, const Tensor& in) {
  CheckSameShape(out, in);
  auto dst = out.mutable_floats();
  auto src = in.floats();
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i] += alpha * src[i];
  }
}

void ScaleInPlace(Tensor& out, float factor) {
  for (float& v : out.mutable_floats()) {
    v *= factor;
  }
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a.Clone();
  AddInPlace(out, b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a.Clone();
  AxpyInPlace(out, -1.0f, b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a.Clone();
  auto dst = out.mutable_floats();
  auto src = b.floats();
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i] *= src[i];
  }
  return out;
}

Tensor Scale(const Tensor& a, float factor) {
  Tensor out = a.Clone();
  ScaleInPlace(out, factor);
  return out;
}

namespace {

// Prepares `out` as the destination of a dense kernel: reuses its buffer when it is a
// uniquely-owned float tensor of the right shape, otherwise swaps in fresh zeroed
// storage. `zero_fill` is for accumulating kernels; fully-overwriting kernels skip it.
float* PrepareDense(Tensor& out, const TensorShape& shape, bool zero_fill) {
  if (!out.is_float() || !(out.shape() == shape) || !out.UniquelyOwned()) {
    out = Tensor::Zeros(shape);
    return out.mutable_floats().data();
  }
  auto data = out.mutable_floats();
  if (zero_fill) {
    std::fill(data.begin(), data.end(), 0.0f);
  }
  return data.data();
}

// PrepareDense for a [rows, cols] target without constructing a TensorShape on the hot
// path — the steady-state reuse check compares dims directly, so a kernel whose output
// buffer is reusable performs zero allocations (the shape vector included).
float* PrepareDense2D(Tensor& out, int64_t rows, int64_t cols, bool zero_fill) {
  if (out.is_float() && out.UniquelyOwned() && out.shape().rank() == 2 &&
      out.shape().dim(0) == rows && out.shape().dim(1) == cols) {
    auto data = out.mutable_floats();
    if (zero_fill) {
      std::fill(data.begin(), data.end(), 0.0f);
    }
    return data.data();
  }
  out = Tensor::Zeros(TensorShape({rows, cols}));
  return out.mutable_floats().data();
}

// Same, for a 1-D [n] target.
float* PrepareDense1D(Tensor& out, int64_t n, bool zero_fill) {
  if (out.is_float() && out.UniquelyOwned() && out.shape().rank() == 1 &&
      out.shape().dim(0) == n) {
    auto data = out.mutable_floats();
    if (zero_fill) {
      std::fill(data.begin(), data.end(), 0.0f);
    }
    return data.data();
  }
  out = Tensor::Zeros(TensorShape({n}));
  return out.mutable_floats().data();
}

// Same, for `like` with dim 0 replaced by `rows` (the GatherRows/ConcatRows shape):
// like.WithDim0(rows) is only materialized on the cold (allocate) path.
float* PrepareDenseRows(Tensor& out, const TensorShape& like, int64_t rows, bool zero_fill) {
  const std::vector<int64_t>& want = like.dims();
  const std::vector<int64_t>& have = out.shape().dims();
  bool match = out.is_float() && out.UniquelyOwned() && have.size() == want.size() &&
               !have.empty() && have[0] == rows;
  for (size_t d = 1; match && d < want.size(); ++d) {
    match = have[d] == want[d];
  }
  if (match) {
    auto data = out.mutable_floats();
    if (zero_fill) {
      std::fill(data.begin(), data.end(), 0.0f);
    }
    return data.data();
  }
  out = Tensor::Zeros(like.WithDim0(rows));
  return out.mutable_floats().data();
}

}  // namespace

void MatMulInto(Tensor& out, const Tensor& a, const Tensor& b) {
  PX_CHECK_EQ(a.shape().rank(), 2);
  PX_CHECK_EQ(b.shape().rank(), 2);
  int64_t m = a.shape().dim(0);
  int64_t k = a.shape().dim(1);
  int64_t n = b.shape().dim(1);
  PX_CHECK_EQ(k, b.shape().dim(0));
  float* cv = PrepareDense2D(out, m, n, /*zero_fill=*/true);
  auto av = a.floats();
  auto bv = b.floats();
  // i-k-j loop order: unit-stride inner loop over both B and C rows.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      float aip = av[static_cast<size_t>(i * k + p)];
      if (aip == 0.0f) {
        continue;
      }
      const float* brow = &bv[static_cast<size_t>(p * n)];
      float* crow = cv + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += aip * brow[j];
      }
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulInto(c, a, b);
  return c;
}

void MatMulTransposeAInto(Tensor& out, const Tensor& a, const Tensor& b) {
  PX_CHECK_EQ(a.shape().rank(), 2);
  PX_CHECK_EQ(b.shape().rank(), 2);
  int64_t k = a.shape().dim(0);
  int64_t m = a.shape().dim(1);
  int64_t n = b.shape().dim(1);
  PX_CHECK_EQ(k, b.shape().dim(0));
  float* cv = PrepareDense2D(out, m, n, /*zero_fill=*/true);
  auto av = a.floats();
  auto bv = b.floats();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = &av[static_cast<size_t>(p * m)];
    const float* brow = &bv[static_cast<size_t>(p * n)];
    for (int64_t i = 0; i < m; ++i) {
      float aip = arow[i];
      if (aip == 0.0f) {
        continue;
      }
      float* crow = cv + i * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += aip * brow[j];
      }
    }
  }
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulTransposeAInto(c, a, b);
  return c;
}

void MatMulTransposeBInto(Tensor& out, const Tensor& a, const Tensor& b) {
  PX_CHECK_EQ(a.shape().rank(), 2);
  PX_CHECK_EQ(b.shape().rank(), 2);
  int64_t m = a.shape().dim(0);
  int64_t k = a.shape().dim(1);
  int64_t n = b.shape().dim(0);
  PX_CHECK_EQ(k, b.shape().dim(1));
  // Every element is assigned below — no zero fill needed.
  float* cv = PrepareDense2D(out, m, n, /*zero_fill=*/false);
  auto av = a.floats();
  auto bv = b.floats();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = &av[static_cast<size_t>(i * k)];
    float* crow = cv + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = &bv[static_cast<size_t>(j * k)];
      float sum = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        sum += arow[p] * brow[p];
      }
      crow[j] = sum;
    }
  }
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  Tensor c;
  MatMulTransposeBInto(c, a, b);
  return c;
}

Tensor Transpose2D(const Tensor& a) {
  PX_CHECK_EQ(a.shape().rank(), 2);
  int64_t m = a.shape().dim(0);
  int64_t n = a.shape().dim(1);
  Tensor out = Tensor::Zeros(TensorShape({n, m}));
  auto src = a.floats();
  auto dst = out.mutable_floats();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      dst[static_cast<size_t>(j * m + i)] = src[static_cast<size_t>(i * n + j)];
    }
  }
  return out;
}

void TanhInto(Tensor& out, const Tensor& a) {
  float* dst = PrepareDense(out, a.shape(), /*zero_fill=*/false);
  auto src = a.floats();
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::tanh(src[i]);
  }
}

Tensor Tanh(const Tensor& a) {
  Tensor out;
  TanhInto(out, a);
  return out;
}

void TanhGradInto(Tensor& out, const Tensor& output, const Tensor& grad) {
  CheckSameShape(output, grad);
  float* dst = PrepareDense(out, grad.shape(), /*zero_fill=*/false);
  auto g = grad.floats();
  auto y = output.floats();
  for (size_t i = 0; i < g.size(); ++i) {
    dst[i] = g[i] * (1.0f - y[i] * y[i]);
  }
}

Tensor TanhGrad(const Tensor& output, const Tensor& grad) {
  Tensor out;
  TanhGradInto(out, output, grad);
  return out;
}

void ReluInto(Tensor& out, const Tensor& a) {
  float* dst = PrepareDense(out, a.shape(), /*zero_fill=*/false);
  auto src = a.floats();
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(src[i], 0.0f);
  }
}

Tensor Relu(const Tensor& a) {
  Tensor out;
  ReluInto(out, a);
  return out;
}

void ReluGradInto(Tensor& out, const Tensor& input, const Tensor& grad) {
  CheckSameShape(input, grad);
  float* dst = PrepareDense(out, grad.shape(), /*zero_fill=*/false);
  auto g = grad.floats();
  auto x = input.floats();
  for (size_t i = 0; i < g.size(); ++i) {
    dst[i] = x[i] <= 0.0f ? 0.0f : g[i];
  }
}

Tensor ReluGrad(const Tensor& input, const Tensor& grad) {
  Tensor out;
  ReluGradInto(out, input, grad);
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = a.Clone();
  for (float& v : out.mutable_floats()) {
    v = 1.0f / (1.0f + std::exp(-v));
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& logits) {
  Tensor out;
  SoftmaxRowsInto(out, logits);
  return out;
}

void SoftmaxRowsInto(Tensor& out, const Tensor& logits) {
  PX_CHECK_EQ(logits.shape().rank(), 2);
  int64_t rows = logits.shape().dim(0);
  int64_t cols = logits.shape().dim(1);
  float* dst = PrepareDense(out, logits.shape(), /*zero_fill=*/false);
  auto src = logits.floats();
  std::copy(src.begin(), src.end(), dst);
  std::span<float> data(dst, static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r) {
    float* row = &data[static_cast<size_t>(r * cols)];
    float max_val = row[0];
    for (int64_t c = 1; c < cols; ++c) {
      max_val = std::max(max_val, row[c]);
    }
    float sum = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_val);
      sum += row[c];
    }
    for (int64_t c = 0; c < cols; ++c) {
      row[c] /= sum;
    }
  }
}

float SoftmaxCrossEntropy(const Tensor& logits, const Tensor& labels, Tensor* grad_logits) {
  Tensor probs;
  return SoftmaxCrossEntropyInto(probs, logits, labels, grad_logits);
}

float SoftmaxCrossEntropyInto(Tensor& probs, const Tensor& logits, const Tensor& labels,
                              Tensor* grad_logits) {
  PX_CHECK_EQ(logits.shape().rank(), 2);
  int64_t rows = logits.shape().dim(0);
  int64_t cols = logits.shape().dim(1);
  auto label_ids = labels.ints();
  PX_CHECK_EQ(static_cast<int64_t>(label_ids.size()), rows);
  SoftmaxRowsInto(probs, logits);
  auto p = probs.floats();
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    int64_t label = label_ids[static_cast<size_t>(r)];
    PX_CHECK_GE(label, 0);
    PX_CHECK_LT(label, cols);
    float prob = std::max(p[static_cast<size_t>(r * cols + label)], 1e-12f);
    loss -= std::log(prob);
  }
  loss /= static_cast<double>(rows);
  if (grad_logits != nullptr) {
    CopyInto(*grad_logits, probs);
    auto g = grad_logits->mutable_floats();
    float inv_rows = 1.0f / static_cast<float>(rows);
    for (int64_t r = 0; r < rows; ++r) {
      int64_t label = label_ids[static_cast<size_t>(r)];
      g[static_cast<size_t>(r * cols + label)] -= 1.0f;
    }
    for (float& v : g) {
      v *= inv_rows;
    }
  }
  return static_cast<float>(loss);
}

void GatherRowsInto(Tensor& out, const Tensor& params, std::span<const int64_t> indices) {
  PX_CHECK_GE(params.shape().rank(), 1);
  int64_t row = params.shape().row_elements();
  float* dst = PrepareDenseRows(out, params.shape(), static_cast<int64_t>(indices.size()),
                                /*zero_fill=*/false);
  auto src = params.floats();
  for (size_t i = 0; i < indices.size(); ++i) {
    int64_t index = indices[i];
    PX_CHECK_GE(index, 0);
    PX_CHECK_LT(index, params.shape().dim(0));
    std::copy_n(src.begin() + static_cast<ptrdiff_t>(index * row),
                row, dst + static_cast<int64_t>(i) * row);
  }
}

Tensor GatherRows(const Tensor& params, std::span<const int64_t> indices) {
  Tensor out;
  GatherRowsInto(out, params, indices);
  return out;
}

void ScatterAddInPlace(Tensor& params, const IndexedSlices& slices) {
  PX_CHECK(params.shape() == slices.dense_shape())
      << params.shape().ToString() << " vs " << slices.dense_shape().ToString();
  int64_t row = params.shape().row_elements();
  auto dst = params.mutable_floats();
  auto src = slices.values().floats();
  for (int64_t i = 0; i < slices.nnz_rows(); ++i) {
    int64_t base = slices.indices()[static_cast<size_t>(i)] * row;
    for (int64_t j = 0; j < row; ++j) {
      dst[static_cast<size_t>(base + j)] += src[static_cast<size_t>(i * row + j)];
    }
  }
}

void ScatterSgdUpdate(Tensor& params, const IndexedSlices& grad, float learning_rate,
                      SparseWorkspace* workspace) {
  PX_CHECK(params.shape() == grad.dense_shape());
  const int64_t n = grad.nnz_rows();
  const int64_t row = params.shape().row_elements();
  auto dst = params.mutable_floats();
  auto src = grad.values().floats();
  const std::vector<int64_t>& indices = grad.indices();
  auto update_range = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      float* d = dst.data() + indices[static_cast<size_t>(i)] * row;
      const float* s = src.data() + i * row;
      for (int64_t j = 0; j < row; ++j) {
        d[j] -= learning_rate * s[j];
      }
    }
  };

  ThreadPool& pool = workspace != nullptr ? workspace->pool() : GlobalSparsePool();
  if (pool.num_threads() > 1 && n * row >= kParallelScatterThreshold &&
      std::is_sorted(indices.begin(), indices.end())) {
    // Shard boundaries snapped forward to the next index change, so every destination
    // row belongs to exactly one shard (duplicates stay together, in input order).
    std::array<int64_t, kMaxScatterShards + 1> bounds;
    int shards = std::min(pool.num_threads(), kMaxScatterShards);
    int used = 0;
    bounds[0] = 0;
    for (int t = 1; t <= shards; ++t) {
      int64_t b = t == shards ? n : t * n / shards;
      while (b < n && b > 0 && indices[static_cast<size_t>(b)] == indices[static_cast<size_t>(b - 1)]) {
        ++b;
      }
      if (b > bounds[static_cast<size_t>(used)]) {
        bounds[static_cast<size_t>(++used)] = b;
      }
    }
    pool.ParallelFor(used, 1, [&](int64_t shard_begin, int64_t shard_end) {
      for (int64_t t = shard_begin; t < shard_end; ++t) {
        update_range(bounds[static_cast<size_t>(t)], bounds[static_cast<size_t>(t) + 1]);
      }
    });
    return;
  }
  update_range(0, n);
}

Tensor SliceRows(const Tensor& input, int64_t row_begin, int64_t row_end) {
  PX_CHECK_GE(input.shape().rank(), 1);
  PX_CHECK_GE(row_begin, 0);
  PX_CHECK_LE(row_begin, row_end);
  PX_CHECK_LE(row_end, input.shape().dim(0));
  int64_t row = input.shape().row_elements();
  if (input.is_int()) {
    Tensor out(DataType::kInt64, input.shape().WithDim0(row_end - row_begin));
    auto src = input.ints();
    auto dst = out.mutable_ints();
    std::copy_n(src.begin() + static_cast<ptrdiff_t>(row_begin * row),
                (row_end - row_begin) * row, dst.begin());
    return out;
  }
  Tensor out = Tensor::Zeros(input.shape().WithDim0(row_end - row_begin));
  auto src = input.floats();
  auto dst = out.mutable_floats();
  std::copy_n(src.begin() + static_cast<ptrdiff_t>(row_begin * row), (row_end - row_begin) * row,
              dst.begin());
  return out;
}

void SliceColsInto(Tensor& out, const Tensor& input, int64_t col_begin, int64_t col_end) {
  PX_CHECK_EQ(input.shape().rank(), 2);
  PX_CHECK_GE(col_begin, 0);
  PX_CHECK_LE(col_begin, col_end);
  PX_CHECK_LE(col_end, input.shape().dim(1));
  int64_t rows = input.shape().dim(0);
  int64_t cols = input.shape().dim(1);
  int64_t out_cols = col_end - col_begin;
  float* dst = PrepareDense2D(out, rows, out_cols, /*zero_fill=*/false);
  auto src = input.floats();
  for (int64_t r = 0; r < rows; ++r) {
    std::copy_n(src.begin() + static_cast<ptrdiff_t>(r * cols + col_begin), out_cols,
                dst + r * out_cols);
  }
}

Tensor SliceCols(const Tensor& input, int64_t col_begin, int64_t col_end) {
  Tensor out;
  SliceColsInto(out, input, col_begin, col_end);
  return out;
}

void ColumnSumInto(Tensor& out, const Tensor& input) {
  PX_CHECK_EQ(input.shape().rank(), 2);
  int64_t rows = input.shape().dim(0);
  int64_t cols = input.shape().dim(1);
  float* dst = PrepareDense1D(out, cols, /*zero_fill=*/true);
  auto src = input.floats();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      dst[c] += src[static_cast<size_t>(r * cols + c)];
    }
  }
}

Tensor ColumnSum(const Tensor& input) {
  Tensor out;
  ColumnSumInto(out, input);
  return out;
}

void CopyInto(Tensor& out, const Tensor& in) {
  PX_CHECK(in.is_float());
  float* dst = PrepareDense(out, in.shape(), /*zero_fill=*/false);
  auto src = in.floats();
  std::copy(src.begin(), src.end(), dst);
}

void ConcatRowsInto(Tensor& out, std::span<const Tensor* const> parts) {
  PX_CHECK(!parts.empty());
  int64_t total_rows = 0;
  const TensorShape& first = parts.front()->shape();
  for (const Tensor* part : parts) {
    PX_CHECK(part != nullptr && part->is_float());
    PX_CHECK_GE(part->shape().rank(), 1);
    PX_CHECK_EQ(part->shape().row_elements(), first.row_elements());
    total_rows += part->shape().dim(0);
  }
  float* dst = PrepareDenseRows(out, first, total_rows, /*zero_fill=*/false);
  for (const Tensor* part : parts) {
    auto src = part->floats();
    std::copy(src.begin(), src.end(), dst);
    dst += src.size();
  }
}

void ConcatColsPairInto(Tensor& out, const Tensor& a, const Tensor& b) {
  PX_CHECK_EQ(a.shape().rank(), 2);
  PX_CHECK_EQ(b.shape().rank(), 2);
  PX_CHECK_EQ(a.shape().dim(0), b.shape().dim(0));
  int64_t rows = a.shape().dim(0);
  int64_t pa = a.shape().dim(1);
  int64_t pb = b.shape().dim(1);
  float* dst = PrepareDense2D(out, rows, pa + pb, /*zero_fill=*/false);
  auto av = a.floats();
  auto bv = b.floats();
  for (int64_t r = 0; r < rows; ++r) {
    std::copy_n(av.begin() + static_cast<ptrdiff_t>(r * pa), pa, dst + r * (pa + pb));
    std::copy_n(bv.begin() + static_cast<ptrdiff_t>(r * pb), pb,
                dst + r * (pa + pb) + pa);
  }
}

Tensor ConcatColsPair(const Tensor& a, const Tensor& b) {
  Tensor out;
  ConcatColsPairInto(out, a, b);
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& pieces) {
  PX_CHECK(!pieces.empty());
  int64_t row = pieces.front().shape().row_elements();
  int64_t total = 0;
  for (const Tensor& piece : pieces) {
    PX_CHECK_EQ(piece.shape().row_elements(), row);
    total += piece.shape().dim(0);
  }
  Tensor out = Tensor::Zeros(pieces.front().shape().WithDim0(total));
  auto dst = out.mutable_floats();
  int64_t offset = 0;
  for (const Tensor& piece : pieces) {
    auto src = piece.floats();
    std::copy(src.begin(), src.end(), dst.begin() + static_cast<ptrdiff_t>(offset * row));
    offset += piece.shape().dim(0);
  }
  return out;
}

Tensor RandomNormal(TensorShape shape, Rng& rng, float stddev) {
  Tensor out = Tensor::Zeros(std::move(shape));
  for (float& v : out.mutable_floats()) {
    v = static_cast<float>(rng.NextGaussian()) * stddev;
  }
  return out;
}

Tensor GlorotUniform(TensorShape shape, Rng& rng) {
  PX_CHECK_EQ(shape.rank(), 2);
  float limit = std::sqrt(6.0f / static_cast<float>(shape.dim(0) + shape.dim(1)));
  Tensor out = Tensor::Zeros(std::move(shape));
  for (float& v : out.mutable_floats()) {
    v = static_cast<float>(rng.NextUniform(-limit, limit));
  }
  return out;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto av = a.floats();
  auto bv = b.floats();
  float max_diff = 0.0f;
  for (size_t i = 0; i < av.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(av[i] - bv[i]));
  }
  return max_diff;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  return a.shape() == b.shape() && MaxAbsDiff(a, b) <= atol;
}

}  // namespace parallax
