// Dense tensor with shared (copy-on-nothing) storage.
//
// Two element types are supported: Float32 for model parameters/activations/gradients and
// Int64 for index data (token ids, gather indices) — mirroring the split TensorFlow makes
// between value tensors and index tensors. Math kernels (tensor_ops.h) operate on Float32;
// Int64 tensors flow through the graph as inputs to Gather-style ops.
//
// Copying a Tensor shares the underlying buffer (cheap, like TF). Mutating accessors
// require the caller to hold a uniquely-owned tensor or accept aliasing; library code that
// updates variables in place does so deliberately (variable buffers are the one piece of
// shared mutable state, owned by a single simulated process).
#ifndef PARALLAX_SRC_TENSOR_TENSOR_H_
#define PARALLAX_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/tensor/shape.h"

namespace parallax {

enum class DataType : int {
  kFloat32 = 0,
  kInt64 = 1,
};

size_t DataTypeSize(DataType dtype);
const char* DataTypeName(DataType dtype);

class Tensor {
 public:
  // Default: empty float tensor of shape [0].
  Tensor() : Tensor(DataType::kFloat32, TensorShape({0})) {}

  // Allocates zero-initialized storage of the given shape.
  Tensor(DataType dtype, TensorShape shape);

  static Tensor Zeros(TensorShape shape) { return Tensor(DataType::kFloat32, std::move(shape)); }
  static Tensor Filled(TensorShape shape, float value);
  static Tensor FromVector(std::vector<float> values, TensorShape shape);
  static Tensor FromIndices(std::vector<int64_t> values, TensorShape shape);
  static Tensor Scalar(float value) { return Filled(TensorShape({}), value); }

  DataType dtype() const { return dtype_; }
  const TensorShape& shape() const { return shape_; }
  int64_t num_elements() const { return shape_.num_elements(); }

  bool is_float() const { return dtype_ == DataType::kFloat32; }
  bool is_int() const { return dtype_ == DataType::kInt64; }

  std::span<const float> floats() const;
  std::span<float> mutable_floats();
  std::span<const int64_t> ints() const;
  std::span<int64_t> mutable_ints();

  float at(int64_t index) const;

  // Deep copy (new buffer).
  Tensor Clone() const;

  // True if both tensors view the same buffer.
  bool SharesBufferWith(const Tensor& other) const;

  // True when no other Tensor shares this buffer — the condition under which the
  // destination-passing kernels (tensor_ops.h, *Into) may overwrite it in place.
  bool UniquelyOwned() const {
    return (float_data_ == nullptr || float_data_.use_count() == 1) &&
           (int_data_ == nullptr || int_data_.use_count() == 1);
  }

  // Frobenius-style reductions over Float32 data.
  double Sum() const;
  double L2Norm() const;

  std::string DebugString(int64_t max_entries = 8) const;

 private:
  DataType dtype_;
  TensorShape shape_;
  std::shared_ptr<std::vector<float>> float_data_;
  std::shared_ptr<std::vector<int64_t>> int_data_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_TENSOR_TENSOR_H_
