// Dense and sparse compute kernels. These are the numeric workhorses behind the graph
// executor, the collectives (element-wise reduction), and the parameter-server update
// path (gather / scatter / coalesce).
//
// All kernels are deterministic: reductions run in a fixed order so that distributed
// engines can be compared bit-for-bit against the single-device reference.
#ifndef PARALLAX_SRC_TENSOR_TENSOR_OPS_H_
#define PARALLAX_SRC_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/rng.h"
#include "src/tensor/indexed_slices.h"
#include "src/tensor/tensor.h"

namespace parallax {

class SparseWorkspace;

// ---- Element-wise dense kernels ----

// out += in (shapes must match).
void AddInPlace(Tensor& out, const Tensor& in);
// out += alpha * in.
void AxpyInPlace(Tensor& out, float alpha, const Tensor& in);
// out *= factor.
void ScaleInPlace(Tensor& out, float factor);
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);  // Hadamard product
Tensor Scale(const Tensor& a, float factor);

// ---- Linear algebra ----

// C = A x B with A: [m, k], B: [k, n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// C = A^T x B with A: [k, m], B: [k, n] -> [m, n]. (Backward of MatMul wrt rhs.)
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);
// C = A x B^T with A: [m, k], B: [n, k] -> [m, n]. (Backward of MatMul wrt lhs.)
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);
Tensor Transpose2D(const Tensor& a);

// ---- Nonlinearities ----

Tensor Tanh(const Tensor& a);
Tensor TanhGrad(const Tensor& output, const Tensor& grad);  // grad * (1 - output^2)
Tensor Relu(const Tensor& a);
Tensor ReluGrad(const Tensor& input, const Tensor& grad);
Tensor Sigmoid(const Tensor& a);

// Row-wise softmax over the last dimension of a 2-D tensor (numerically stabilized).
Tensor SoftmaxRows(const Tensor& logits);
// Mean cross-entropy loss over rows given int64 labels [rows]; also returns the gradient
// with respect to the logits (softmax - onehot) / rows via the out parameter.
float SoftmaxCrossEntropy(const Tensor& logits, const Tensor& labels, Tensor* grad_logits);

// ---- Sparse access kernels ----

// Rows of params selected by indices: result shape [indices.size(), row_elements...].
Tensor GatherRows(const Tensor& params, std::span<const int64_t> indices);
// params[indices[i], :] += slices row i (duplicates accumulate).
void ScatterAddInPlace(Tensor& params, const IndexedSlices& slices);
// params[indices[i], :] -= lr * slices row i — the sparse SGD update.
//
// For large sorted-index gradients (what Coalesced/Sum produce) the update runs across
// the workspace's thread pool, split at index boundaries so each destination row is
// owned by exactly one lane; per-row accumulation order is input order either way, so
// the result is bit-identical to the sequential loop for every pool size. Unsorted or
// small gradients take the sequential path.
void ScatterSgdUpdate(Tensor& params, const IndexedSlices& grad, float learning_rate,
                      SparseWorkspace* workspace = nullptr);
// Contiguous row slice [row_begin, row_end) of a rank>=1 tensor.
Tensor SliceRows(const Tensor& input, int64_t row_begin, int64_t row_end);
// Contiguous column slice [col_begin, col_end) of a 2-D tensor.
Tensor SliceCols(const Tensor& input, int64_t col_begin, int64_t col_end);
// Sum over rows of a 2-D tensor -> [cols]. (Backward of broadcasting BiasAdd.)
Tensor ColumnSum(const Tensor& input);
// Concatenates two 2-D tensors along columns: [m,p] ++ [m,q] -> [m,p+q].
Tensor ConcatColsPair(const Tensor& a, const Tensor& b);
// Inverse of row partitioning: concatenates pieces along dim 0 (the "stitch" whose
// overhead grows with the partition count; paper section 3.2).
Tensor ConcatRows(const std::vector<Tensor>& pieces);

// ---- Destination-passing variants (the executor's gradient buffer plan) ----
//
// Each XInto computes exactly the values of X but writes them into `out`, reusing its
// buffer when `out` already is a uniquely-owned float tensor of the result shape;
// otherwise `out` is replaced with fresh storage. Threading the same `out` tensors
// through a training loop makes the backward pass reuse one set of gradient buffers
// across steps. Results are bit-identical to the allocating variants.
//
// Precondition: `out` must not alias any input (an in-place reuse overwrites the buffer
// before the inputs are fully read). The executor's slot discipline guarantees this —
// a node is never its own input, and each scratch slot is uniquely owned.

void MatMulInto(Tensor& out, const Tensor& a, const Tensor& b);
void MatMulTransposeAInto(Tensor& out, const Tensor& a, const Tensor& b);
void MatMulTransposeBInto(Tensor& out, const Tensor& a, const Tensor& b);
void TanhInto(Tensor& out, const Tensor& a);
void TanhGradInto(Tensor& out, const Tensor& output, const Tensor& grad);
void ReluInto(Tensor& out, const Tensor& a);
void ReluGradInto(Tensor& out, const Tensor& input, const Tensor& grad);
void ColumnSumInto(Tensor& out, const Tensor& input);
void SliceColsInto(Tensor& out, const Tensor& input, int64_t col_begin, int64_t col_end);
void ConcatColsPairInto(Tensor& out, const Tensor& a, const Tensor& b);
void GatherRowsInto(Tensor& out, const Tensor& params, std::span<const int64_t> indices);
// out <- in (element copy; the buffer-reusing counterpart of in.Clone()).
void CopyInto(Tensor& out, const Tensor& in);
// out <- rows of all parts concatenated (parts share trailing dims; out gets
// [sum(rows), trailing...]). The buffer-reusing counterpart of IndexedSlices::Concat's
// value assembly.
void ConcatRowsInto(Tensor& out, std::span<const Tensor* const> parts);
// out <- row-wise softmax of logits.
void SoftmaxRowsInto(Tensor& out, const Tensor& logits);
// SoftmaxCrossEntropy with every intermediate in caller-owned buffers: the row
// probabilities land in `probs` and the gradient (when requested) in *grad_logits,
// both via buffer reuse. Bit-identical to SoftmaxCrossEntropy, which wraps this.
float SoftmaxCrossEntropyInto(Tensor& probs, const Tensor& logits, const Tensor& labels,
                              Tensor* grad_logits);

// ---- Initializers ----

Tensor RandomNormal(TensorShape shape, Rng& rng, float stddev = 1.0f);
// Glorot/Xavier uniform for a [fan_in, fan_out] matrix.
Tensor GlorotUniform(TensorShape shape, Rng& rng);

// ---- Comparisons ----

// Max |a - b| over all elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace parallax

#endif  // PARALLAX_SRC_TENSOR_TENSOR_OPS_H_
