#include "src/tensor/tensor.h"

#include <cmath>

#include "src/base/strings.h"

namespace parallax {

size_t DataTypeSize(DataType dtype) {
  switch (dtype) {
    case DataType::kFloat32:
      return 4;
    case DataType::kInt64:
      return 8;
  }
  return 0;
}

const char* DataTypeName(DataType dtype) {
  switch (dtype) {
    case DataType::kFloat32:
      return "float32";
    case DataType::kInt64:
      return "int64";
  }
  return "unknown";
}

Tensor::Tensor(DataType dtype, TensorShape shape) : dtype_(dtype), shape_(std::move(shape)) {
  size_t count = static_cast<size_t>(shape_.num_elements());
  if (dtype_ == DataType::kFloat32) {
    float_data_ = std::make_shared<std::vector<float>>(count, 0.0f);
  } else {
    int_data_ = std::make_shared<std::vector<int64_t>>(count, 0);
  }
}

Tensor Tensor::Filled(TensorShape shape, float value) {
  Tensor t(DataType::kFloat32, std::move(shape));
  for (float& x : t.mutable_floats()) {
    x = value;
  }
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values, TensorShape shape) {
  PX_CHECK_EQ(static_cast<int64_t>(values.size()), shape.num_elements());
  Tensor t;
  t.dtype_ = DataType::kFloat32;
  t.shape_ = std::move(shape);
  t.float_data_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::FromIndices(std::vector<int64_t> values, TensorShape shape) {
  PX_CHECK_EQ(static_cast<int64_t>(values.size()), shape.num_elements());
  Tensor t;
  t.dtype_ = DataType::kInt64;
  t.shape_ = std::move(shape);
  t.int_data_ = std::make_shared<std::vector<int64_t>>(std::move(values));
  return t;
}

std::span<const float> Tensor::floats() const {
  PX_CHECK(is_float()) << "expected float tensor, got " << DataTypeName(dtype_);
  return {float_data_->data(), float_data_->size()};
}

std::span<float> Tensor::mutable_floats() {
  PX_CHECK(is_float()) << "expected float tensor, got " << DataTypeName(dtype_);
  return {float_data_->data(), float_data_->size()};
}

std::span<const int64_t> Tensor::ints() const {
  PX_CHECK(is_int()) << "expected int64 tensor, got " << DataTypeName(dtype_);
  return {int_data_->data(), int_data_->size()};
}

std::span<int64_t> Tensor::mutable_ints() {
  PX_CHECK(is_int()) << "expected int64 tensor, got " << DataTypeName(dtype_);
  return {int_data_->data(), int_data_->size()};
}

float Tensor::at(int64_t index) const {
  PX_CHECK_GE(index, 0);
  PX_CHECK_LT(index, num_elements());
  return floats()[static_cast<size_t>(index)];
}

Tensor Tensor::Clone() const {
  Tensor copy;
  copy.dtype_ = dtype_;
  copy.shape_ = shape_;
  if (is_float()) {
    copy.float_data_ = std::make_shared<std::vector<float>>(*float_data_);
  } else {
    copy.int_data_ = std::make_shared<std::vector<int64_t>>(*int_data_);
  }
  return copy;
}

bool Tensor::SharesBufferWith(const Tensor& other) const {
  return (float_data_ != nullptr && float_data_ == other.float_data_) ||
         (int_data_ != nullptr && int_data_ == other.int_data_);
}

double Tensor::Sum() const {
  double sum = 0.0;
  for (float v : floats()) {
    sum += v;
  }
  return sum;
}

double Tensor::L2Norm() const {
  double sum = 0.0;
  for (float v : floats()) {
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

std::string Tensor::DebugString(int64_t max_entries) const {
  std::string out =
      StrFormat("Tensor<%s %s>[", DataTypeName(dtype_), shape_.ToString().c_str());
  int64_t shown = std::min<int64_t>(max_entries, num_elements());
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) {
      out += ", ";
    }
    if (is_float()) {
      out += StrFormat("%g", floats()[static_cast<size_t>(i)]);
    } else {
      out += StrFormat("%lld", static_cast<long long>(ints()[static_cast<size_t>(i)]));
    }
  }
  if (shown < num_elements()) {
    out += ", ...";
  }
  out += "]";
  return out;
}

}  // namespace parallax
