#include "src/ar/ar_numeric.h"

#include <algorithm>

#include "src/tensor/tensor_ops.h"

namespace parallax {

ArNumericEngine::ArNumericEngine(const Graph* graph, int num_ranks, ArNumericConfig config)
    : graph_(graph), config_(std::move(config)) {
  PX_CHECK(graph != nullptr);
  PX_CHECK_GE(num_ranks, 1);
  set_name("ar");
  replicas_.reserve(static_cast<size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    replicas_.push_back(VariableStore::InitFrom(*graph));
  }
}

void ArNumericEngine::Prepare(const SyncPlan& plan) {
  // Replicas persist (value-preserving re-Prepare); only the routing and aggregation
  // semantics are refreshed — unless the plan's rank count moved (an elastic rescale),
  // in which case the replica set grows or shrinks around the incumbent values.
  config_.dense_aggregation = plan.dense_aggregation;
  config_.sparse_aggregation = plan.sparse_aggregation;
  config_.managed_variables = plan.ManagedBy(name());
  const size_t ranks = static_cast<size_t>(std::max(plan.num_ranks, 1));
  if (ranks < replicas_.size()) {
    replicas_.resize(ranks);
  }
  while (replicas_.size() < ranks) {
    // Between steps every replica holds identical values, so a joining rank bootstraps
    // from a deep copy of replica 0 — the broadcast a real AR job performs on join.
    replicas_.push_back(replicas_.front().Clone());
  }
}

VariableStore ArNumericEngine::View() const {
  VariableStore view;
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    if (Manages(static_cast<int>(v))) {
      view.Set(static_cast<int>(v), replicas_.front().Get(static_cast<int>(v)));
    }
  }
  return view;
}

bool ArNumericEngine::Manages(int variable_index) const {
  if (config_.managed_variables.empty()) {
    return true;
  }
  for (int v : config_.managed_variables) {
    if (v == variable_index) {
      return true;
    }
  }
  return false;
}

void ArNumericEngine::ApplyStep(const std::vector<StepResult>& per_rank,
                                float learning_rate) {
  PX_CHECK_EQ(per_rank.size(), replicas_.size());
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    int key = static_cast<int>(v);
    if (!Manages(key)) {
      continue;
    }
    if (per_rank.front().grads.find(key) == per_rank.front().grads.end()) {
      continue;
    }
    bool is_sparse = per_rank.front().grads.at(key).is_sparse();
    if (is_sparse) {
      std::vector<IndexedSlices> contributions;
      contributions.reserve(per_rank.size());
      for (const StepResult& r : per_rank) {
        contributions.push_back(r.grads.at(key).sparse());
      }
      IndexedSlices aggregated =
          AllGathervAggregate(contributions, config_.sparse_aggregation);
      GradValue grad = GradValue::MakeSparse(std::move(aggregated));
      for (VariableStore& replica : replicas_) {
        replica.ApplySgd(key, grad, learning_rate);
      }
    } else {
      std::vector<Tensor> contributions;
      contributions.reserve(per_rank.size());
      for (const StepResult& r : per_rank) {
        contributions.push_back(r.grads.at(key).dense());
      }
      Tensor aggregated = AllReduceAggregate(contributions, config_.dense_aggregation);
      GradValue grad = GradValue::MakeDense(std::move(aggregated));
      for (VariableStore& replica : replicas_) {
        replica.ApplySgd(key, grad, learning_rate);
      }
    }
  }
  if (!config_.skip_consistency_check) {
    CheckReplicasConsistent();
  }
}

void ArNumericEngine::LoadValues(const VariableStore& values) {
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    const int key = static_cast<int>(v);
    if (!Manages(key) || !values.Contains(key)) {
      continue;
    }
    for (VariableStore& replica : replicas_) {
      replica.Set(key, values.Get(key).Clone());
    }
  }
}

const VariableStore& ArNumericEngine::replica(int rank) const {
  PX_CHECK_GE(rank, 0);
  PX_CHECK_LT(static_cast<size_t>(rank), replicas_.size());
  return replicas_[static_cast<size_t>(rank)];
}

VariableStore& ArNumericEngine::mutable_replica(int rank) {
  PX_CHECK_GE(rank, 0);
  PX_CHECK_LT(static_cast<size_t>(rank), replicas_.size());
  return replicas_[static_cast<size_t>(rank)];
}

void ArNumericEngine::CheckReplicasConsistent() const {
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    if (!Manages(static_cast<int>(v))) {
      continue;
    }
    const Tensor& reference = replicas_.front().Get(static_cast<int>(v));
    for (size_t r = 1; r < replicas_.size(); ++r) {
      PX_CHECK(AllClose(reference, replicas_[r].Get(static_cast<int>(v)), 0.0f))
          << "replica divergence on variable " << graph_->variables()[v].name
          << " at rank " << r << " — identical aggregated gradients must keep replicas "
          << "bit-identical";
    }
  }
}

}  // namespace parallax
