// Numeric runtime of the AllReduce architecture (Horovod-style, paper section 2.1):
// every rank holds a full replica of all variables; dense gradients are AllReduce-summed,
// sparse gradients are AllGatherv-concatenated, and every replica applies the identical
// aggregated gradient — so replicas never diverge.
//
// The replica-consistency invariant is checked after every step (cheap hash comparison),
// because it is the correctness property that makes the AR architecture "simple": all
// workers always have the same variable values (paper section 2.1).
//
// ArNumericEngine implements the SyncEngine interface (core/sync_engine.h) and registers
// as "ar". Its timing-plane cost hook routes dense gradients to ring AllReduce and
// sparse ones to AllGatherv.
#ifndef PARALLAX_SRC_AR_AR_NUMERIC_H_
#define PARALLAX_SRC_AR_AR_NUMERIC_H_

#include <vector>

#include "src/comm/reduce.h"
#include "src/core/sync_engine.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"

namespace parallax {

struct ArNumericConfig {
  AggregationMethod dense_aggregation = AggregationMethod::kAverage;
  AggregationMethod sparse_aggregation = AggregationMethod::kAverage;
  // If true, the post-step replica equality check is skipped (for large models).
  bool skip_consistency_check = false;
  // Variable indices this engine owns; empty means all (hybrid routing).
  std::vector<int> managed_variables;
};

class ArNumericEngine : public SyncEngine {
 public:
  ArNumericEngine(const Graph* graph, int num_ranks, ArNumericConfig config = {});

  // SyncEngine:
  // Refreshes routing/aggregation semantics, and — when the plan's rank count moved
  // (GraphRunner::Rescale) — resizes the replica set value-preservingly: joining ranks
  // clone the incumbent replica (all replicas are identical between steps), leaving
  // ranks are dropped. Values never change across a Prepare, only the replica count.
  void Prepare(const SyncPlan& plan) override;
  // One synchronous step: aggregates per-rank gradients with collective semantics and
  // applies the result to every replica.
  void ApplyStep(const std::vector<StepResult>& per_rank, float learning_rate) override;
  // Managed variables of replica 0 (identical on every rank). Tensors share the
  // replica's buffers: valid until the next ApplyStep.
  VariableStore View() const override;
  SyncMethod CostMethod(GradKind kind) const override {
    return kind == GradKind::kSparse ? SyncMethod::kArAllGatherv
                                     : SyncMethod::kArAllReduce;
  }
  // Checkpoint restore: every replica adopts the managed variables' loaded values
  // (deep copies — replicas must never share buffers).
  void LoadValues(const VariableStore& values) override;

  // Rank r's replica (all replicas are identical after any step).
  const VariableStore& replica(int rank) const;
  VariableStore& mutable_replica(int rank);
  int num_ranks() const { return static_cast<int>(replicas_.size()); }

 private:
  void CheckReplicasConsistent() const;
  bool Manages(int variable_index) const;

  const Graph* graph_;
  ArNumericConfig config_;
  std::vector<VariableStore> replicas_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_AR_AR_NUMERIC_H_
