// Row-range partitioning of variables — TensorFlow's fixed_size_partitioner semantics,
// which is what Parallax's partitioner() scope tunes (paper sections 3.2, 4.1).
//
// A variable with R rows split P ways gives the first R % P pieces ceil(R/P) rows and the
// rest floor(R/P). Sparse gradients are routed to pieces by row id and re-indexed into
// piece-local coordinates; pulls are reassembled ("stitched") by the inverse mapping.
#ifndef PARALLAX_SRC_PS_PARTITION_H_
#define PARALLAX_SRC_PS_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/tensor/indexed_slices.h"
#include "src/tensor/tensor.h"

namespace parallax {

class SparseWorkspace;

class RowPartition {
 public:
  RowPartition(int64_t num_rows, int num_partitions);

  int num_partitions() const { return num_partitions_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t RowBegin(int partition) const;
  int64_t RowsIn(int partition) const { return RowBegin(partition + 1) - RowBegin(partition); }
  int PartitionOfRow(int64_t row) const;

 private:
  int64_t num_rows_;
  int num_partitions_;
  int64_t base_rows_;   // floor(num_rows / num_partitions)
  int64_t remainder_;   // num_rows % num_partitions
};

// Splits a sparse gradient into per-piece gradients with piece-local row indices.
// Pieces with no touched rows come back empty (nnz_rows == 0) but present. Rows keep
// their input order within each piece.
//
// Two passes: count rows per piece (tagging each row with its piece), then place rows
// directly at their final offsets — outputs are allocated exactly-sized up front, and
// with a SparseWorkspace the tag/count scratch is reused across calls.
std::vector<IndexedSlices> SplitSlicesByPartition(const IndexedSlices& slices,
                                                  const RowPartition& partition,
                                                  SparseWorkspace* workspace = nullptr);

// Splits a dense tensor into per-piece row blocks.
std::vector<Tensor> SplitRowsByPartition(const Tensor& value, const RowPartition& partition);

// Inverse of SplitRowsByPartition: stitches pieces back into the full tensor.
Tensor StitchPartitions(const std::vector<Tensor>& pieces, const RowPartition& partition);

}  // namespace parallax

#endif  // PARALLAX_SRC_PS_PARTITION_H_
