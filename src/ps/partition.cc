#include "src/ps/partition.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/math.h"
#include "src/tensor/sparse_workspace.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {

RowPartition::RowPartition(int64_t num_rows, int num_partitions)
    : num_rows_(num_rows), num_partitions_(num_partitions) {
  PX_CHECK_GT(num_rows, 0);
  PX_CHECK_GT(num_partitions, 0);
  PX_CHECK_LE(static_cast<int64_t>(num_partitions), num_rows)
      << "more partitions than rows";
  base_rows_ = num_rows / num_partitions;
  remainder_ = num_rows % num_partitions;
}

int64_t RowPartition::RowBegin(int partition) const {
  PX_CHECK_GE(partition, 0);
  PX_CHECK_LE(partition, num_partitions_);
  // Balanced split: first `remainder_` pieces hold base+1 rows — the same convention
  // (and the same base/math.h formula) the ring collectives use to chunk a gradient.
  return BalancedSplitBegin(num_rows_, num_partitions_, partition);
}

int RowPartition::PartitionOfRow(int64_t row) const {
  PX_CHECK_GE(row, 0);
  PX_CHECK_LT(row, num_rows_);
  // Rows [0, remainder*(base+1)) live in the larger pieces.
  int64_t large_span = remainder_ * (base_rows_ + 1);
  if (row < large_span) {
    return static_cast<int>(row / (base_rows_ + 1));
  }
  return static_cast<int>(remainder_ + (row - large_span) / base_rows_);
}

std::vector<IndexedSlices> SplitSlicesByPartition(const IndexedSlices& slices,
                                                  const RowPartition& partition,
                                                  SparseWorkspace* workspace) {
  const int p_count = partition.num_partitions();
  const int64_t n = slices.nnz_rows();
  const int64_t row = slices.row_elements();
  SparseWorkspace local;
  SparseWorkspace& ws = workspace != nullptr ? *workspace : local;

  const std::vector<int64_t>& indices = slices.indices();
  auto& piece_of = ws.small_ints(n);
  auto& counts = ws.zeroed_counts(p_count);
  for (int64_t i = 0; i < n; ++i) {
    int p = partition.PartitionOfRow(indices[static_cast<size_t>(i)]);
    piece_of[static_cast<size_t>(i)] = p;
    ++counts[static_cast<size_t>(p)];
  }

  // Exact-size outputs, then direct placement via per-piece cursors.
  std::vector<std::vector<int64_t>> piece_indices(static_cast<size_t>(p_count));
  std::vector<Tensor> piece_values;
  piece_values.reserve(static_cast<size_t>(p_count));
  std::vector<float*> piece_dst(static_cast<size_t>(p_count));
  std::vector<int64_t> piece_row_begin(static_cast<size_t>(p_count));
  for (int p = 0; p < p_count; ++p) {
    piece_indices[static_cast<size_t>(p)].resize(
        static_cast<size_t>(counts[static_cast<size_t>(p)]));
    piece_values.push_back(
        Tensor::Zeros(slices.values().shape().WithDim0(counts[static_cast<size_t>(p)])));
    piece_dst[static_cast<size_t>(p)] = piece_values.back().mutable_floats().data();
    piece_row_begin[static_cast<size_t>(p)] = partition.RowBegin(p);
  }
  const float* values = slices.values().floats().data();
  auto& cursors = ws.zeroed_cursors(p_count);
  for (int64_t i = 0; i < n; ++i) {
    int p = piece_of[static_cast<size_t>(i)];
    int64_t slot = cursors[static_cast<size_t>(p)]++;
    piece_indices[static_cast<size_t>(p)][static_cast<size_t>(slot)] =
        indices[static_cast<size_t>(i)] - piece_row_begin[static_cast<size_t>(p)];
    std::copy_n(values + i * row, row, piece_dst[static_cast<size_t>(p)] + slot * row);
  }

  std::vector<IndexedSlices> pieces;
  pieces.reserve(static_cast<size_t>(p_count));
  for (int p = 0; p < p_count; ++p) {
    TensorShape piece_shape = slices.dense_shape().WithDim0(partition.RowsIn(p));
    pieces.emplace_back(std::move(piece_indices[static_cast<size_t>(p)]),
                        std::move(piece_values[static_cast<size_t>(p)]),
                        std::move(piece_shape));
  }
  return pieces;
}

std::vector<Tensor> SplitRowsByPartition(const Tensor& value, const RowPartition& partition) {
  std::vector<Tensor> pieces;
  pieces.reserve(static_cast<size_t>(partition.num_partitions()));
  for (int p = 0; p < partition.num_partitions(); ++p) {
    pieces.push_back(SliceRows(value, partition.RowBegin(p), partition.RowBegin(p + 1)));
  }
  return pieces;
}

Tensor StitchPartitions(const std::vector<Tensor>& pieces, const RowPartition& partition) {
  PX_CHECK_EQ(static_cast<int>(pieces.size()), partition.num_partitions());
  Tensor full = ConcatRows(pieces);
  PX_CHECK_EQ(full.shape().dim(0), partition.num_rows());
  return full;
}

}  // namespace parallax
