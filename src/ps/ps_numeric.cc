#include "src/ps/ps_numeric.h"

#include "src/tensor/tensor_ops.h"

namespace parallax {

PsVariable::PsVariable(Tensor initial, int partitions) : shape_(initial.shape()) {
  if (partitions > 1) {
    PX_CHECK_GE(shape_.rank(), 1);
    partition_.emplace(shape_.dim(0), partitions);
    pieces_ = SplitRowsByPartition(initial, *partition_);
  } else {
    pieces_.push_back(initial.Clone());
  }
}

Tensor PsVariable::Materialize() const {
  if (!partition_) {
    return pieces_.front().Clone();
  }
  return StitchPartitions(pieces_, *partition_);
}

void PsVariable::ApplyDenseSgd(const Tensor& grad, float learning_rate) {
  PX_CHECK(grad.shape() == shape_);
  if (!partition_) {
    AxpyInPlace(pieces_.front(), -learning_rate, grad);
    return;
  }
  std::vector<Tensor> grad_pieces = SplitRowsByPartition(grad, *partition_);
  for (size_t p = 0; p < pieces_.size(); ++p) {
    AxpyInPlace(pieces_[p], -learning_rate, grad_pieces[p]);
  }
}

void PsVariable::ApplySparseSgd(const IndexedSlices& grad, float learning_rate,
                                SparseWorkspace* workspace) {
  PX_CHECK(grad.dense_shape() == shape_);
  if (!partition_) {
    ScatterSgdUpdate(pieces_.front(), grad, learning_rate, workspace);
    return;
  }
  std::vector<IndexedSlices> grad_pieces =
      SplitSlicesByPartition(grad, *partition_, workspace);
  for (size_t p = 0; p < pieces_.size(); ++p) {
    if (grad_pieces[p].nnz_rows() > 0) {
      ScatterSgdUpdate(pieces_[p], grad_pieces[p], learning_rate, workspace);
    }
  }
}

PsNumericEngine::PsNumericEngine(const Graph* graph, PsNumericConfig config)
    : graph_(graph), config_(config) {
  PX_CHECK(graph != nullptr);
  PX_CHECK_GE(config_.sparse_partitions, 1);
  PX_CHECK_GE(config_.ranks_per_machine, 1);
  for (const VariableDef& def : graph->variables()) {
    // Only partitioner-scoped variables are split (Figure 3 line 9); TF would refuse to
    // partition a variable of fewer rows than pieces, and so do we.
    int partitions = 1;
    if (def.partitioner_scope && def.shape.rank() >= 1 &&
        def.shape.dim(0) >= config_.sparse_partitions) {
      partitions = config_.sparse_partitions;
    }
    variables_.emplace_back(def.initial_value, partitions);
  }
}

bool PsNumericEngine::Manages(int variable_index) const {
  if (config_.managed_variables.empty()) {
    return true;
  }
  for (int v : config_.managed_variables) {
    if (v == variable_index) {
      return true;
    }
  }
  return false;
}

void PsNumericEngine::ApplyStep(const std::vector<StepResult>& per_rank,
                                float learning_rate) {
  PX_CHECK(!per_rank.empty());
  const int num_ranks = static_cast<int>(per_rank.size());
  const int ranks_per_machine = config_.local_aggregation ? config_.ranks_per_machine : 1;
  PX_CHECK_EQ(num_ranks % ranks_per_machine, 0)
      << "ranks must fill machines evenly for local aggregation";

  for (size_t v = 0; v < variables_.size(); ++v) {
    int key = static_cast<int>(v);
    if (!Manages(key)) {
      continue;
    }
    // Collect contributions; every rank must agree on whether the gradient exists and
    // whether it is sparse (same graph on every replica).
    if (per_rank.front().grads.find(key) == per_rank.front().grads.end()) {
      for (const StepResult& r : per_rank) {
        PX_CHECK(r.grads.find(key) == r.grads.end()) << "inconsistent gradient presence";
      }
      continue;
    }
    bool is_sparse = per_rank.front().grads.at(key).is_sparse();
    if (is_sparse) {
      // Two-level aggregation: local (per machine) coalesced sums, then the global
      // accumulator sums the machine contributions. Without local aggregation the
      // accumulator sums the per-rank gradients directly.
      std::vector<IndexedSlices> global_inputs;
      for (int base = 0; base < num_ranks; base += ranks_per_machine) {
        std::vector<IndexedSlices> local;
        local.reserve(static_cast<size_t>(ranks_per_machine));
        for (int r = base; r < base + ranks_per_machine; ++r) {
          local.push_back(per_rank[static_cast<size_t>(r)].grads.at(key).sparse());
        }
        global_inputs.push_back(local.size() == 1
                                    ? local.front()
                                    : IndexedSlices::Sum(local, &workspace_));
      }
      IndexedSlices aggregated = IndexedSlices::Sum(global_inputs, &workspace_);
      if (config_.sparse_aggregation == AggregationMethod::kAverage) {
        aggregated.Scale(1.0f / static_cast<float>(num_ranks));
      }
      variables_[v].ApplySparseSgd(aggregated, learning_rate, &workspace_);
    } else {
      std::vector<Tensor> global_inputs;
      for (int base = 0; base < num_ranks; base += ranks_per_machine) {
        std::vector<Tensor> local;
        local.reserve(static_cast<size_t>(ranks_per_machine));
        for (int r = base; r < base + ranks_per_machine; ++r) {
          local.push_back(per_rank[static_cast<size_t>(r)].grads.at(key).dense());
        }
        global_inputs.push_back(local.size() == 1 ? local.front() : AllReduceSum(local));
      }
      Tensor aggregated = AllReduceSum(global_inputs);
      if (config_.dense_aggregation == AggregationMethod::kAverage) {
        ScaleInPlace(aggregated, 1.0f / static_cast<float>(num_ranks));
      }
      variables_[v].ApplyDenseSgd(aggregated, learning_rate);
    }
  }
}

VariableStore PsNumericEngine::CurrentValues() const {
  VariableStore store;
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (Manages(static_cast<int>(v))) {
      store.Set(static_cast<int>(v), variables_[v].Materialize());
    }
  }
  return store;
}

}  // namespace parallax
