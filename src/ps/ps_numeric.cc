#include "src/ps/ps_numeric.h"

#include <algorithm>

#include "src/core/partition_plan.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {

PsVariable::PsVariable(Tensor initial, int partitions) : shape_(initial.shape()) {
  if (partitions > 1) {
    PX_CHECK_GE(shape_.rank(), 1);
    partition_.emplace(shape_.dim(0), partitions);
    pieces_ = SplitRowsByPartition(initial, *partition_);
  } else {
    pieces_.push_back(initial.Clone());
  }
}

Tensor PsVariable::Materialize() const {
  if (!partition_) {
    return pieces_.front().Clone();
  }
  return StitchPartitions(pieces_, *partition_);
}

void PsVariable::ApplyDenseSgd(const Tensor& grad, float learning_rate) {
  PX_CHECK(grad.shape() == shape_);
  if (!partition_) {
    AxpyInPlace(pieces_.front(), -learning_rate, grad);
    return;
  }
  std::vector<Tensor> grad_pieces = SplitRowsByPartition(grad, *partition_);
  for (size_t p = 0; p < pieces_.size(); ++p) {
    AxpyInPlace(pieces_[p], -learning_rate, grad_pieces[p]);
  }
}

void PsVariable::ApplySparseSgd(const IndexedSlices& grad, float learning_rate,
                                SparseWorkspace* workspace) {
  PX_CHECK(grad.dense_shape() == shape_);
  if (!partition_) {
    ScatterSgdUpdate(pieces_.front(), grad, learning_rate, workspace);
    return;
  }
  std::vector<IndexedSlices> grad_pieces =
      SplitSlicesByPartition(grad, *partition_, workspace);
  for (size_t p = 0; p < pieces_.size(); ++p) {
    if (grad_pieces[p].nnz_rows() > 0) {
      ScatterSgdUpdate(pieces_[p], grad_pieces[p], learning_rate, workspace);
    }
  }
}

float* PsVariable::MutableRow(int64_t row) {
  const int64_t width = shape_.row_elements();
  if (!partition_) {
    return pieces_.front().mutable_floats().data() + row * width;
  }
  const int piece = partition_->PartitionOfRow(row);
  const int64_t local = row - partition_->RowBegin(piece);
  return pieces_[static_cast<size_t>(piece)].mutable_floats().data() + local * width;
}

PsNumericEngine::PsNumericEngine(const Graph* graph) : graph_(graph) {
  PX_CHECK(graph != nullptr);
  set_name("ps");
}

PsNumericEngine::PsNumericEngine(const Graph* graph, PsNumericConfig config)
    : PsNumericEngine(graph) {
  Reconfigure(std::move(config));
}

void PsNumericEngine::Prepare(const SyncPlan& plan) {
  PsNumericConfig config;
  config.sparse_partitions = plan.sparse_partitions;
  // The plan's layout is per variable: each entry already carries its own (row-capped)
  // partition count, which is what the shards are split from.
  config.variable_partitions.reserve(plan.variables.size());
  config.variable_placements.reserve(plan.variables.size());
  for (const VariableSync& sync : plan.variables) {
    config.variable_partitions.push_back(sync.partitions);
    config.variable_placements.push_back(sync.placement);
  }
  config.local_aggregation = plan.local_aggregation;
  config.dense_aggregation = plan.dense_aggregation;
  config.sparse_aggregation = plan.sparse_aggregation;
  config.ranks_per_machine = plan.ranks_per_machine;
  config.managed_variables = plan.ManagedBy(name());
  config.fuse_sparse_variables = plan.fuse_sparse_variables;
  Reconfigure(std::move(config));
}

void PsNumericEngine::Reconfigure(PsNumericConfig config) {
  PX_CHECK_GE(config.sparse_partitions, 1);
  PX_CHECK_GE(config.ranks_per_machine, 1);
  if (!config.variable_partitions.empty()) {
    PX_CHECK_EQ(config.variable_partitions.size(), graph_->variables().size())
        << "variable_partitions must be parallel to the graph's variables";
  }
  if (!config.variable_placements.empty()) {
    PX_CHECK_EQ(config.variable_placements.size(), graph_->variables().size())
        << "variable_placements must be parallel to the graph's variables";
  }
  // Re-preparation preserves values: shards are rebuilt around the current state, not
  // the initializers — what makes a mid-training partition swap a plain re-Prepare.
  // Variables whose partition count does not change are moved over untouched (no
  // materialize + re-split), so swapping a plan that moves one variable costs only
  // that variable's bytes.
  const bool preserve = !variables_.empty();
  std::vector<PsVariable> next;
  next.reserve(graph_->variables().size());
  for (size_t v = 0; v < graph_->variables().size(); ++v) {
    const VariableDef& def = graph_->variables()[v];
    // Only partitioner-scoped variables are split (Figure 3 line 9). On the plan path
    // the count is per variable and row-capped (the same RowCappedPartitions gate the
    // assigner and the simulator's layout use, so the engine always builds the layout
    // that was timed). The legacy direct-config path keeps its historical
    // all-or-nothing gate: a variable of fewer rows than the uniform count stays
    // whole, as TF's fixed_size_partitioner would have refused to split it.
    int partitions = 1;
    if (def.partitioner_scope && def.shape.rank() >= 1) {
      if (!config.variable_partitions.empty()) {
        partitions = RowCappedPartitions(config.variable_partitions[v], def.shape.dim(0));
      } else if (def.shape.dim(0) >= config.sparse_partitions) {
        partitions = config.sparse_partitions;
      }
    }
    if (!preserve) {
      next.emplace_back(def.initial_value, partitions);
    } else if (variables_[v].num_partitions() == partitions) {
      next.push_back(std::move(variables_[v]));
    } else {
      next.emplace_back(variables_[v].Materialize(), partitions);
    }
  }
  config_ = std::move(config);
  variables_ = std::move(next);
}

void PsNumericEngine::LoadValues(const VariableStore& values) {
  PX_CHECK_EQ(variables_.size(), graph_->variables().size())
      << "LoadValues before Prepare/Reconfigure";
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (!Manages(static_cast<int>(v)) || !values.Contains(static_cast<int>(v))) {
      continue;
    }
    // The PsVariable constructor splits (or clones) the incoming tensor, so the shards
    // never alias the caller's buffer; the partition count in force is kept.
    variables_[v] =
        PsVariable(values.Get(static_cast<int>(v)), variables_[v].num_partitions());
  }
}

bool PsNumericEngine::Manages(int variable_index) const {
  if (config_.managed_variables.empty()) {
    return true;
  }
  for (int v : config_.managed_variables) {
    if (v == variable_index) {
      return true;
    }
  }
  return false;
}

void PsNumericEngine::ApplyStep(const std::vector<StepResult>& per_rank,
                                float learning_rate) {
  PX_CHECK(!per_rank.empty());
  PX_CHECK(!variables_.empty()) << "ApplyStep before Prepare/configuration";
  const int num_ranks = static_cast<int>(per_rank.size());
  const int ranks_per_machine = config_.local_aggregation ? config_.ranks_per_machine : 1;
  PX_CHECK_EQ(num_ranks % ranks_per_machine, 0)
      << "ranks must fill machines evenly for local aggregation";

  // Dense variables take the per-variable AllReduce-style path; sparse ones are
  // collected and batched through the fused multi-variable aggregation below. Variables
  // are independent (aggregation never mixes them numerically), so the split changes
  // nothing about the values.
  std::vector<int> sparse_vars;
  for (size_t v = 0; v < variables_.size(); ++v) {
    int key = static_cast<int>(v);
    if (!Manages(key)) {
      continue;
    }
    // Collect contributions; every rank must agree on whether the gradient exists and
    // whether it is sparse (same graph on every replica).
    if (per_rank.front().grads.find(key) == per_rank.front().grads.end()) {
      for (const StepResult& r : per_rank) {
        PX_CHECK(r.grads.find(key) == r.grads.end()) << "inconsistent gradient presence";
      }
      continue;
    }
    if (per_rank.front().grads.at(key).is_sparse()) {
      sparse_vars.push_back(key);
      continue;
    }
    std::vector<Tensor> global_inputs;
    for (int base = 0; base < num_ranks; base += ranks_per_machine) {
      std::vector<Tensor> local;
      local.reserve(static_cast<size_t>(ranks_per_machine));
      for (int r = base; r < base + ranks_per_machine; ++r) {
        local.push_back(per_rank[static_cast<size_t>(r)].grads.at(key).dense());
      }
      global_inputs.push_back(local.size() == 1 ? local.front() : AllReduceSum(local));
    }
    Tensor aggregated = AllReduceSum(global_inputs);
    if (config_.dense_aggregation == AggregationMethod::kAverage) {
      ScaleInPlace(aggregated, 1.0f / static_cast<float>(num_ranks));
    }
    variables_[v].ApplyDenseSgd(aggregated, learning_rate);
  }

  // Per-rank taps: one worker's own coalesced row count is a direct access-ratio
  // sample (no union inversion). One rotating rank per step — the estimator still
  // sees every worker over time, but the tap costs a single coalesce-count per
  // variable per step (a fraction of the aggregation pass's own sort work; training
  // gradients are fresh every step, so unique_rows() is a real count here, not a
  // cache hit). Emitted only for multi-rank steps — a single-rank step's aggregate
  // observation below IS the rank sample, and double-reporting it would overweight
  // it in the monitor's estimators.
  if (observer() != nullptr && num_ranks > 1 && !sparse_vars.empty()) {
    const auto tap_rank = static_cast<size_t>(observe_rotation_++ % num_ranks);
    for (int v : sparse_vars) {
      observer()->ObserveRankAccess(v, per_rank[tap_rank].grads.at(v).sparse().unique_rows());
    }
  }

  if (config_.fuse_sparse_variables && sparse_vars.size() > 1) {
    ApplySparseFused(sparse_vars, per_rank, learning_rate, ranks_per_machine);
  } else {
    for (int v : sparse_vars) {
      ApplySparsePerVariable(v, per_rank, learning_rate, ranks_per_machine);
    }
  }
}

void PsNumericEngine::ApplySparsePerVariable(int variable_index,
                                             const std::vector<StepResult>& per_rank,
                                             float learning_rate, int ranks_per_machine) {
  const int num_ranks = static_cast<int>(per_rank.size());
  // Two-level aggregation: local (per machine) coalesced sums, then the global
  // accumulator sums the machine contributions. Without local aggregation the
  // accumulator sums the per-rank gradients directly.
  std::vector<IndexedSlices> global_inputs;
  for (int base = 0; base < num_ranks; base += ranks_per_machine) {
    std::vector<IndexedSlices> local;
    local.reserve(static_cast<size_t>(ranks_per_machine));
    for (int r = base; r < base + ranks_per_machine; ++r) {
      local.push_back(per_rank[static_cast<size_t>(r)].grads.at(variable_index).sparse());
    }
    global_inputs.push_back(local.size() == 1 ? local.front()
                                              : IndexedSlices::Sum(local, &workspace_));
  }
  IndexedSlices aggregated = IndexedSlices::Sum(global_inputs, &workspace_);
  if (observer() != nullptr) {
    // Sum's output is coalesced, so its nnz *is* the union row count — the same number
    // the fused path reads off its segment table.
    observer()->ObserveSparseStep(variable_index, aggregated.nnz_rows(), num_ranks);
  }
  if (config_.sparse_aggregation == AggregationMethod::kAverage) {
    aggregated.Scale(1.0f / static_cast<float>(num_ranks));
  }
  variables_[static_cast<size_t>(variable_index)].ApplySparseSgd(aggregated, learning_rate,
                                                                &workspace_);
}

void PsNumericEngine::ApplySparseFused(const std::vector<int>& variables,
                                       const std::vector<StepResult>& per_rank,
                                       float learning_rate, int ranks_per_machine) {
  const int num_ranks = static_cast<int>(per_rank.size());
  const int num_machines = num_ranks / ranks_per_machine;
  const size_t n_vars = variables.size();

  // Level 1 — local aggregation: every machine sums its ranks' gradients for ALL
  // variables in one fused pass. Skipped when each machine contributes one rank: the
  // raw gradient *is* the machine's contribution (exactly the per-variable path's
  // `local.size() == 1` shortcut), so the global level consumes the raw slices.
  std::vector<std::vector<IndexedSlices>> machine_bundles;
  std::vector<SparseSumGroup> groups(n_vars);
  if (ranks_per_machine > 1) {
    machine_bundles.reserve(static_cast<size_t>(num_machines));
    for (int m = 0; m < num_machines; ++m) {
      for (size_t i = 0; i < n_vars; ++i) {
        groups[i].inputs.clear();
        for (int r = m * ranks_per_machine; r < (m + 1) * ranks_per_machine; ++r) {
          groups[i].inputs.push_back(
              &per_rank[static_cast<size_t>(r)].grads.at(variables[i]).sparse());
        }
      }
      machine_bundles.push_back(MultiVariableSum(groups, &workspace_));
    }
  }

  // Level 2 — global accumulation fused with the update: one streaming pass sums each
  // coalesced row, applies the aggregation scale, and writes the SGD update straight
  // into the owning shard row. No aggregated gradient tensor is ever materialized —
  // the element-wise operations (sum in a fresh zero buffer, *= scale, dst -= lr * v)
  // are exactly those of Sum + Scale + SplitSlicesByPartition + ScatterSgdUpdate, so
  // the result is bit-identical to the per-variable path.
  for (size_t i = 0; i < n_vars; ++i) {
    groups[i].inputs.clear();
    for (int m = 0; m < num_machines; ++m) {
      groups[i].inputs.push_back(
          ranks_per_machine > 1
              ? &machine_bundles[static_cast<size_t>(m)][i]
              : &per_rank[static_cast<size_t>(m)].grads.at(variables[i]).sparse());
    }
    PX_CHECK(groups[i].inputs.front()->dense_shape() ==
             variables_[static_cast<size_t>(variables[i])].shape());
  }
  const bool average = config_.sparse_aggregation == AggregationMethod::kAverage;
  const float scale = 1.0f / static_cast<float>(num_ranks);
  // The observation tap: with no observer the stream is asked for nothing and the
  // step is instruction-for-instruction the unobserved one.
  std::vector<int64_t>* unique_out = observer() != nullptr ? &observed_unique_ : nullptr;
  MultiVariableSumStream(groups, &workspace_,
                         [&](int64_t g, int64_t row, const float* values) {
    PsVariable& variable = variables_[static_cast<size_t>(variables[static_cast<size_t>(g)])];
    const int64_t width = variable.shape().row_elements();
    float* dst = variable.MutableRow(row);
    if (average) {
      // (v * scale) then (lr * scaled) — the float sequence of Scale + ScatterSgdUpdate.
      for (int64_t j = 0; j < width; ++j) {
        dst[j] -= learning_rate * (values[j] * scale);
      }
    } else {
      for (int64_t j = 0; j < width; ++j) {
        dst[j] -= learning_rate * values[j];
      }
    }
  }, unique_out);
  if (observer() != nullptr) {
    for (size_t i = 0; i < n_vars; ++i) {
      observer()->ObserveSparseStep(variables[i], observed_unique_[i], num_ranks);
    }
  }
}

VariableStore PsNumericEngine::CurrentValues() const {
  VariableStore store;
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (Manages(static_cast<int>(v))) {
      store.Set(static_cast<int>(v), variables_[v].Materialize());
    }
  }
  return store;
}

}  // namespace parallax
