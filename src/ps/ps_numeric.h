// Numeric runtime of the Parameter Server architecture: partitioned variable shards,
// synchronous gradient accumulators, optional per-machine local aggregation, and
// chief-triggered updates (paper sections 4.3 and 5).
//
// This engine computes the *values* PS training produces — the timing plane lives in
// core/iteration_sim.h. The protocol structure matches the paper's optimized PS:
//   1. each worker pushes its gradient (or each machine pushes a locally-aggregated one),
//   2. per-shard accumulators sum contributions in deterministic arrival order,
//   3. once every expected contribution arrived, the chief worker triggers the update op
//      colocated with the shard,
//   4. workers observe the new values (the shared-queue notification barrier).
//
// PsNumericEngine implements the SyncEngine interface (core/sync_engine.h) and registers
// as "ps": Prepare routes the plan's PS variables here, and a re-Prepare with a new
// partition count re-splits the shards around the *current* values (elastic
// re-partitioning). By default all sparse variables of a step are aggregated in one
// fused MultiVariableSum pass per level instead of one sort pipeline per variable.
#ifndef PARALLAX_SRC_PS_PS_NUMERIC_H_
#define PARALLAX_SRC_PS_PS_NUMERIC_H_

#include <optional>
#include <vector>

#include "src/comm/reduce.h"
#include "src/core/sync_engine.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/ps/partition.h"
#include "src/tensor/sparse_workspace.h"

namespace parallax {

struct PsNumericConfig {
  // Uniform partition count applied to every partitioner-scoped variable (legacy
  // direct-configuration path; ignored when variable_partitions is set).
  int sparse_partitions = 1;
  // Per-variable partition counts, parallel to Graph::variables() — what Prepare fills
  // from the SyncPlan's per-variable layout. Empty = fall back to the uniform
  // sparse_partitions above with its historical all-or-nothing row gate.
  std::vector<int> variable_partitions;
  // Per-variable shard placements, parallel to Graph::variables() when non-empty; an
  // empty inner vector means round-robin. The numeric runtime stores every shard in
  // process, so placement changes values not at all — the field records the layout in
  // force so introspection agrees with the plan, and a placement-only Reconfigure is a
  // pure config update: counts unchanged means no shard is materialized or re-split.
  std::vector<std::vector<int>> variable_placements;
  // Aggregate per machine before pushing (OptPS / Parallax local aggregation).
  bool local_aggregation = false;
  // How gradients combine across workers.
  AggregationMethod dense_aggregation = AggregationMethod::kAverage;
  AggregationMethod sparse_aggregation = AggregationMethod::kAverage;
  // Ranks per machine (for local aggregation grouping).
  int ranks_per_machine = 1;
  // Variable indices this engine owns; empty means all (the hybrid runner assigns only
  // the PS-routed subset here and the AR-routed subset to the AR engine).
  std::vector<int> managed_variables;
  // Batch all sparse variables of a step through one fused workspace pass per
  // aggregation level (bit-identical to the per-variable pipeline; see
  // MultiVariableSum). Off = one Sum pipeline per variable, kept for comparison.
  bool fuse_sparse_variables = true;
};

// One variable as the servers store it: whole (dense or unpartitioned) or row-partitioned.
class PsVariable {
 public:
  PsVariable(Tensor initial, int partitions);

  // Full current value (stitched) — what a worker pull materializes.
  Tensor Materialize() const;

  void ApplyDenseSgd(const Tensor& grad, float learning_rate);
  // Splits the aggregated sparse gradient by partition and scatter-updates each piece —
  // the per-piece update ops the transformation colocates with the shards. The caller's
  // workspace (if any) backs the split/scatter scratch.
  void ApplySparseSgd(const IndexedSlices& grad, float learning_rate,
                      SparseWorkspace* workspace = nullptr);

  // Storage row holding global row `row` (resolved through the partition). The fused
  // aggregate-and-apply path updates shard rows in place through this; distinct rows
  // may be written concurrently.
  float* MutableRow(int64_t row);

  const TensorShape& shape() const { return shape_; }
  int num_partitions() const { return partition_ ? partition_->num_partitions() : 1; }

 private:
  TensorShape shape_;
  std::optional<RowPartition> partition_;
  std::vector<Tensor> pieces_;  // one entry when unpartitioned
};

// The server group: every variable's shards plus the synchronous aggregation logic.
class PsNumericEngine : public SyncEngine {
 public:
  // Unconfigured engine (the registry path): Prepare(plan) routes variables here.
  explicit PsNumericEngine(const Graph* graph);
  // Directly configured engine (tests, standalone use).
  PsNumericEngine(const Graph* graph, PsNumericConfig config);

  // SyncEngine:
  void Prepare(const SyncPlan& plan) override;
  // One synchronous training step given each rank's backward results (all ranks must
  // report a gradient for the same variable set). Applies SGD with `learning_rate`.
  void ApplyStep(const std::vector<StepResult>& per_rank, float learning_rate) override;
  VariableStore View() const override { return CurrentValues(); }
  SyncMethod CostMethod(GradKind) const override { return SyncMethod::kPs; }
  // Re-splits each managed variable's shards around the values in `values` (checkpoint
  // restore), keeping every partition count. Requires a prior Prepare/Reconfigure.
  void LoadValues(const VariableStore& values) override;

  // Swaps in a new configuration, preserving the variables' current values. Only
  // variables whose partition count actually changes are materialized and re-split;
  // unchanged variables keep their shards as-is — what makes a mostly-stable
  // PartitionPlan swap cheap. Prepare is this plus plan routing.
  void Reconfigure(PsNumericConfig config);

  // Current full values, as workers observe them after the chief's notification.
  VariableStore CurrentValues() const;

  const PsNumericConfig& config() const { return config_; }

 private:
  bool Manages(int variable_index) const;
  void ApplySparsePerVariable(int variable_index, const std::vector<StepResult>& per_rank,
                              float learning_rate, int ranks_per_machine);
  void ApplySparseFused(const std::vector<int>& variables,
                        const std::vector<StepResult>& per_rank, float learning_rate,
                        int ranks_per_machine);

  const Graph* graph_;
  PsNumericConfig config_;
  std::vector<PsVariable> variables_;
  // Scratch arena for the sparse aggregation pipeline (sort buffers, segment tables,
  // split cursors); reused every ApplyStep so steady-state aggregation never allocates
  // scratch. Not thread-safe: owned by the step path, like the engine's variables.
  SparseWorkspace workspace_;
  // Per-group coalesced row counts from the fused pass, reported to the attached
  // SparseAccessObserver; sized only when an observer is present.
  std::vector<int64_t> observed_unique_;
  // Which rank the per-rank access tap samples this step (round-robin across steps,
  // so every worker is represented without counting all of them every step).
  int64_t observe_rotation_ = 0;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_PS_PS_NUMERIC_H_
