// Asynchronous parameter-server training (paper section 2.1: "Parallax supports both
// synchronous and asynchronous training").
//
// In asynchronous mode there are no accumulators and no chief barrier: each worker's
// gradient is applied to the shared variables the moment it arrives, and workers read
// whatever values the servers currently hold. Updates are therefore computed against
// *stale* parameters — the staleness the paper cites as the reason most users train
// synchronously (section 2.1's accuracy discussion). The engine exposes the arrival
// order explicitly so tests can reproduce any interleaving deterministically.
#ifndef PARALLAX_SRC_PS_PS_ASYNC_H_
#define PARALLAX_SRC_PS_PS_ASYNC_H_

#include "src/ps/ps_numeric.h"

namespace parallax {

class AsyncPsEngine {
 public:
  AsyncPsEngine(const Graph* graph, PsNumericConfig config);

  // Applies one worker's gradients immediately (no aggregation, no barrier). The
  // learning rate is applied per push, matching TF's asynchronous replica semantics.
  void PushGradients(const StepResult& grads, float learning_rate);

  // What a worker pulling right now would observe.
  VariableStore CurrentValues() const;

  int64_t pushes_applied() const { return pushes_applied_; }

 private:
  PsNumericEngine engine_;  // reuses shard storage; async path bypasses accumulators
  int64_t pushes_applied_ = 0;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_PS_PS_ASYNC_H_
