// Asynchronous parameter-server training (paper section 2.1: "Parallax supports both
// synchronous and asynchronous training").
//
// In asynchronous mode there are no accumulators and no chief barrier: each worker's
// gradient is applied to the shared variables the moment it arrives, and workers read
// whatever values the servers currently hold. Updates are therefore computed against
// *stale* parameters — the staleness the paper cites as the reason most users train
// synchronously (section 2.1's accuracy discussion). The engine exposes the arrival
// order explicitly so tests can reproduce any interleaving deterministically.
//
// AsyncPsEngine implements the SyncEngine interface (core/sync_engine.h) and registers
// as "async_ps", which is what makes PushGradients reachable from the runner: a runner
// step delivers every rank's gradients as one deterministic arrival sequence (rank
// order), each push applied against the values the previous push left behind.
#ifndef PARALLAX_SRC_PS_PS_ASYNC_H_
#define PARALLAX_SRC_PS_PS_ASYNC_H_

#include "src/ps/ps_numeric.h"

namespace parallax {

class AsyncPsEngine : public SyncEngine {
 public:
  // Unconfigured engine (the registry path): Prepare(plan) routes variables here.
  explicit AsyncPsEngine(const Graph* graph);
  AsyncPsEngine(const Graph* graph, PsNumericConfig config);

  // SyncEngine:
  void Prepare(const SyncPlan& plan) override;
  // Applies the given ranks' pushes in arrival (rank) order, each immediately. In the
  // runner's sequential-arrival mode this is called once per rank with a single result
  // — the fully asynchronous protocol, where rank r+1 computed against values rank r
  // already moved. In a mixed plan (barrier fallback) the whole batch arrives at once
  // and is drained as one deterministic arrival sequence.
  void ApplyStep(const std::vector<StepResult>& per_rank, float learning_rate) override;
  VariableStore View() const override { return engine_.CurrentValues(); }
  SyncMethod CostMethod(GradKind) const override { return SyncMethod::kPs; }
  bool SequentialArrival() const override { return true; }
  // Checkpoint restore: the inner engine owns the shards, so it does the loading.
  void LoadValues(const VariableStore& values) override { engine_.LoadValues(values); }
  // Forwarded to the inner engine, whose step path does the reporting. Each push is a
  // single-contributor apply, so observations arrive as per-worker access-ratio
  // samples (contributions == 1) — no union inversion needed.
  void set_observer(SparseAccessObserver* observer) override {
    SyncEngine::set_observer(observer);
    engine_.set_observer(observer);
  }

  // Applies one worker's gradients immediately (no aggregation, no barrier). The
  // learning rate is applied per push, matching TF's asynchronous replica semantics.
  void PushGradients(const StepResult& grads, float learning_rate);

  // What a worker pulling right now would observe.
  VariableStore CurrentValues() const;

  int64_t pushes_applied() const { return pushes_applied_; }

 private:
  PsNumericEngine engine_;  // reuses shard storage; async path bypasses accumulators
  int64_t pushes_applied_ = 0;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_PS_PS_ASYNC_H_
