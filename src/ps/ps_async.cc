#include "src/ps/ps_async.h"

namespace parallax {

namespace {

PsNumericConfig ForAsync(PsNumericConfig config) {
  // No accumulators, no per-machine grouping: every push stands alone.
  config.local_aggregation = false;
  config.ranks_per_machine = 1;
  // A single push *is* the whole contribution; averaging would shrink it.
  config.dense_aggregation = AggregationMethod::kSum;
  config.sparse_aggregation = AggregationMethod::kSum;
  return config;
}

}  // namespace

AsyncPsEngine::AsyncPsEngine(const Graph* graph) : engine_(graph) {
  set_name("async_ps");
}

AsyncPsEngine::AsyncPsEngine(const Graph* graph, PsNumericConfig config)
    : engine_(graph, ForAsync(std::move(config))) {
  set_name("async_ps");
}

void AsyncPsEngine::Prepare(const SyncPlan& plan) {
  // The inner engine must manage the variables routed to *this* engine's name, so the
  // plan is translated into an explicit config instead of forwarding Prepare.
  PsNumericConfig config;
  config.sparse_partitions = plan.sparse_partitions;
  config.variable_partitions.reserve(plan.variables.size());
  for (const VariableSync& sync : plan.variables) {
    config.variable_partitions.push_back(sync.partitions);
  }
  config.managed_variables = plan.ManagedBy(name());
  config.fuse_sparse_variables = plan.fuse_sparse_variables;
  engine_.Reconfigure(ForAsync(std::move(config)));
}

void AsyncPsEngine::ApplyStep(const std::vector<StepResult>& per_rank,
                              float learning_rate) {
  for (const StepResult& grads : per_rank) {
    PushGradients(grads, learning_rate);
  }
}

void AsyncPsEngine::PushGradients(const StepResult& grads, float learning_rate) {
  // One contributor, applied immediately: the degenerate single-rank synchronous step
  // *is* the asynchronous update (sum over one worker, no waiting).
  std::vector<StepResult> single;
  single.push_back(grads);
  engine_.ApplyStep(single, learning_rate);
  ++pushes_applied_;
}

VariableStore AsyncPsEngine::CurrentValues() const { return engine_.CurrentValues(); }

}  // namespace parallax
