#include "src/sync/topk_ps.h"

#include <cmath>

#include "src/sync/compression.h"
#include "src/tensor/tensor_ops.h"

namespace parallax {

Status RegisterTopKPsEngine(const std::string& name, TopKPsConfig config) {
  return SyncEngineRegistry::Global().Register(
      name, [config](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
        return std::make_unique<TopKPsEngine>(env.graph, config);
      });
}

TopKPsEngine::TopKPsEngine(const Graph* graph, TopKPsConfig config)
    : config_(config), engine_(graph), graph_(graph) {
  PX_CHECK(graph != nullptr);
  PX_CHECK_GT(config_.ratio, 0.0);
  set_name("topk_ps");
}

void TopKPsEngine::Prepare(const SyncPlan& plan) {
  // Same translation as the async wrapper: the inner engine must manage the variables
  // routed to *this* engine's registry name.
  PsNumericConfig config;
  config.sparse_partitions = plan.sparse_partitions;
  config.variable_partitions.reserve(plan.variables.size());
  config.variable_placements.reserve(plan.variables.size());
  for (const VariableSync& sync : plan.variables) {
    config.variable_partitions.push_back(sync.partitions);
    config.variable_placements.push_back(sync.placement);
  }
  config.local_aggregation = plan.local_aggregation;
  config.dense_aggregation = plan.dense_aggregation;
  config.sparse_aggregation = plan.sparse_aggregation;
  config.ranks_per_machine = plan.ranks_per_machine;
  config.managed_variables = plan.ManagedBy(name());
  config.fuse_sparse_variables = plan.fuse_sparse_variables;

  managed_.assign(graph_->variables().size(), 0);
  for (int v : config.managed_variables) {
    managed_[static_cast<size_t>(v)] = 1;
  }
  engine_.Reconfigure(std::move(config));
}

CompressionSpec TopKPsEngine::CostCompression(GradKind kind) const {
  if (kind != GradKind::kSparse || config_.ratio >= 1.0) {
    return {};
  }
  return {CompressionKind::kTopK, config_.ratio, config_.error_feedback};
}

void TopKPsEngine::CompressSparse(VarState& state, const IndexedSlices& incoming,
                                  GradValue& out) {
  const TensorShape& shape = incoming.dense_shape();
  const int64_t rows = shape.dim(0);
  const int64_t width = shape.row_elements();
  if (state.residual.num_elements() != shape.num_elements()) {
    state.residual = Tensor::Zeros(shape);
    state.in_active.assign(static_cast<size_t>(rows), 0);
    state.active.clear();
  }

  if (!config_.error_feedback) {
    // Naive top-k: the residual carries exactly this step's gradient — unsent rows
    // are dropped, not remembered.
    auto values = state.residual.mutable_floats();
    for (int64_t row : state.active) {
      std::fill_n(values.data() + row * width, width, 0.0f);
      state.in_active[static_cast<size_t>(row)] = 0;
    }
    state.active.clear();
  }

  ScatterAddInPlace(state.residual, incoming);
  for (int64_t row : incoming.indices()) {
    if (!state.in_active[static_cast<size_t>(row)]) {
      state.in_active[static_cast<size_t>(row)] = 1;
      state.active.push_back(row);
    }
  }

  // Score every active row by residual energy, compacting rows that zeroed out (sent
  // last step, or exact cancellation) so the active set tracks the true support.
  auto residual = state.residual.floats();
  state.scores.clear();
  size_t kept = 0;
  for (size_t i = 0; i < state.active.size(); ++i) {
    const int64_t row = state.active[i];
    const float* data = residual.data() + row * width;
    float energy = 0.0f;
    for (int64_t j = 0; j < width; ++j) {
      energy += data[j] * data[j];
    }
    if (energy == 0.0f) {
      state.in_active[static_cast<size_t>(row)] = 0;
      continue;
    }
    state.active[kept++] = row;
    state.scores.push_back(energy);
  }
  state.active.resize(kept);

  // k tracks the *incoming* gradient's support, so the wire volume is ratio * nnz no
  // matter how much residual mass is waiting.
  const int64_t nnz = incoming.unique_rows();
  int64_t k = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(config_.ratio * static_cast<double>(nnz))));
  k = std::min(k, static_cast<int64_t>(state.active.size()));
  TopKSelectRows(state.active, state.scores, k, selected_, &workspace_);

  if (!out.is_sparse()) {
    out = GradValue::MakeSparse(IndexedSlices());
  }
  IndexedSlices& compressed = out.mutable_sparse();
  compressed.ResetForReuse(selected_, shape);
  GatherRowsInto(compressed.mutable_values(), state.residual, selected_);
  last_selected_rows_ += static_cast<int64_t>(selected_.size());

  // Sent mass leaves the residual; with error feedback everything else stays and
  // re-competes next step.
  auto values = state.residual.mutable_floats();
  for (int64_t row : selected_) {
    std::fill_n(values.data() + row * width, width, 0.0f);
  }
}

void TopKPsEngine::ApplyStep(const std::vector<StepResult>& per_rank,
                             float learning_rate) {
  if (config_.ratio >= 1.0) {
    // Identity configuration: delegate on the ORIGINAL results. Re-coalescing through
    // the residual would reorder float accumulation, and the equivalence suite holds
    // this path to bit-identity with "ps".
    engine_.ApplyStep(per_rank, learning_rate);
    return;
  }
  last_selected_rows_ = 0;
  compressed_.resize(per_rank.size());
  state_.resize(per_rank.size());
  for (size_t r = 0; r < per_rank.size(); ++r) {
    compressed_[r].loss = per_rank[r].loss;
    for (size_t v = 0; v < managed_.size(); ++v) {
      const int key = static_cast<int>(v);
      auto it = per_rank[r].grads.find(key);
      if (!managed_[v] || it == per_rank[r].grads.end()) {
        compressed_[r].grads.erase(key);
        continue;
      }
      if (!it->second.is_sparse()) {
        compressed_[r].grads[key] = it->second;  // dense rides uncompressed
        continue;
      }
      CompressSparse(state_[r][key], it->second.sparse(), compressed_[r].grads[key]);
    }
  }
  engine_.ApplyStep(compressed_, learning_rate);
}

}  // namespace parallax
