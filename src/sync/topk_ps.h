// "topk_ps": synchronous parameter-server training with per-variable top-k magnitude
// sparsification and optional error-feedback residual accumulation (docs/compression.md).
//
// The engine wraps the PS numeric runtime the way the async engine does: Prepare
// translates the SyncPlan into an explicit PsNumericConfig for the variables routed
// here, and ApplyStep hands the inner engine *compressed* per-rank gradients — each
// rank's sparse gradient is folded into that rank's residual, the k highest-energy
// rows are selected (k = ceil(ratio * incoming nnz), deterministic tie-break), sent,
// and zeroed from the residual. With error_feedback on, unsent rows stay in the
// residual and re-compete next step (DGC-style); off, the residual is cleared every
// step — naive top-k, the ablation baseline the convergence harness compares against.
//
// Because the inner engine aggregates the compressed slices, an attached
// SparseAccessObserver sees *post-compression* nnz — the composition that lets the
// adaptive partitioner price the compressed wire volume. Dense gradients pass through
// untouched. ratio >= 1.0 short-circuits to a direct delegate call (bit-identical to
// "ps", including float summation order — asserted by the equivalence suite).
#ifndef PARALLAX_SRC_SYNC_TOPK_PS_H_
#define PARALLAX_SRC_SYNC_TOPK_PS_H_

#include <unordered_map>
#include <vector>

#include "src/ps/ps_numeric.h"
#include "src/tensor/sparse_workspace.h"

namespace parallax {

struct TopKPsConfig {
  // Fraction of the incoming gradient's unique rows that survive selection:
  // k = max(1, ceil(ratio * nnz)). >= 1.0 disables compression entirely (exact "ps"
  // pass-through).
  double ratio = 0.1;
  // Accumulate unsent rows into the residual (error feedback) instead of dropping
  // them. The convergence harness demonstrates this is what keeps top-k inside the
  // envelope; naive mode exists as the ablation.
  bool error_feedback = true;
};

// Registers a TopKPsEngine factory with `config` under `name` in the global registry —
// how tests and applications reach non-default ratios / naive mode through
// RunnerBuilder::WithEngine. Same Status contract as SyncEngineRegistry::Register.
Status RegisterTopKPsEngine(const std::string& name, TopKPsConfig config);

class TopKPsEngine : public SyncEngine {
 public:
  TopKPsEngine(const Graph* graph, TopKPsConfig config);

  // SyncEngine:
  void Prepare(const SyncPlan& plan) override;
  void ApplyStep(const std::vector<StepResult>& per_rank, float learning_rate) override;
  VariableStore View() const override { return engine_.CurrentValues(); }
  SyncMethod CostMethod(GradKind) const override { return SyncMethod::kPs; }
  CompressionSpec CostCompression(GradKind kind) const override;
  // Checkpoint restore moves the inner engine's shard values. Residuals are transient
  // optimizer-side state and restart at zero, like a fresh run's.
  void LoadValues(const VariableStore& values) override { engine_.LoadValues(values); }
  void set_observer(SparseAccessObserver* observer) override {
    SyncEngine::set_observer(observer);
    engine_.set_observer(observer);
  }

  const TopKPsConfig& config() const { return config_; }
  // Rows selected (summed over managed sparse variables and ranks) in the last
  // ApplyStep — what the compression actually shipped; tests read it.
  int64_t last_selected_rows() const { return last_selected_rows_; }

 private:
  // Per (rank, variable) compression state: the residual, its active-row bookkeeping,
  // and the selection scratch. Grow-only, reused every step.
  struct VarState {
    Tensor residual;                 // dense [rows, width]; lazily allocated
    std::vector<uint8_t> in_active;  // row -> currently in `active`
    std::vector<int64_t> active;     // rows with (potentially) nonzero residual
    std::vector<float> scores;       // parallel to `active` after scoring
  };

  void CompressSparse(VarState& state, const IndexedSlices& incoming, GradValue& out);

  TopKPsConfig config_;
  PsNumericEngine engine_;
  const Graph* graph_;
  std::vector<uint8_t> managed_;  // parallel to Graph::variables()
  // Engine-owned compressed per-rank results: the runner hands every engine the SAME
  // StepResult batch, so compression must never mutate the incoming gradients.
  std::vector<StepResult> compressed_;
  std::vector<std::unordered_map<int, VarState>> state_;  // [rank][variable]
  std::vector<int64_t> selected_;
  SparseWorkspace workspace_;
  int64_t last_selected_rows_ = 0;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_SYNC_TOPK_PS_H_
