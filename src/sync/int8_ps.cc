#include "src/sync/int8_ps.h"

#include "src/sync/compression.h"

namespace parallax {

Status RegisterInt8PsEngine(const std::string& name, Int8PsConfig config) {
  return SyncEngineRegistry::Global().Register(
      name, [config](const SyncEngineEnv& env) -> std::unique_ptr<SyncEngine> {
        return std::make_unique<Int8PsEngine>(env.graph, config);
      });
}

Int8PsEngine::Int8PsEngine(const Graph* graph, Int8PsConfig config)
    : config_(config), engine_(graph), graph_(graph) {
  PX_CHECK(graph != nullptr);
  set_name("int8_ps");
}

void Int8PsEngine::Prepare(const SyncPlan& plan) {
  PsNumericConfig config;
  config.sparse_partitions = plan.sparse_partitions;
  config.variable_partitions.reserve(plan.variables.size());
  config.variable_placements.reserve(plan.variables.size());
  for (const VariableSync& sync : plan.variables) {
    config.variable_partitions.push_back(sync.partitions);
    config.variable_placements.push_back(sync.placement);
  }
  config.local_aggregation = plan.local_aggregation;
  config.dense_aggregation = plan.dense_aggregation;
  config.sparse_aggregation = plan.sparse_aggregation;
  config.ranks_per_machine = plan.ranks_per_machine;
  config.managed_variables = plan.ManagedBy(name());
  config.fuse_sparse_variables = plan.fuse_sparse_variables;

  managed_.assign(graph_->variables().size(), 0);
  for (int v : config.managed_variables) {
    managed_[static_cast<size_t>(v)] = 1;
  }
  engine_.Reconfigure(std::move(config));
}

CompressionSpec Int8PsEngine::CostCompression(GradKind kind) const {
  (void)kind;
  if (config_.identity) {
    return {};
  }
  return {CompressionKind::kInt8, 1.0, false};
}

void Int8PsEngine::QuantizeGrad(const GradValue& incoming, GradValue& out) {
  if (incoming.is_sparse()) {
    const IndexedSlices& slices = incoming.sparse();
    if (!out.is_sparse()) {
      out = GradValue::MakeSparse(IndexedSlices());
    }
    IndexedSlices& q = out.mutable_sparse();
    q.ResetForReuse(slices.indices(), slices.dense_shape());
    if (q.mutable_values().shape() != slices.values().shape() ||
        !q.mutable_values().UniquelyOwned()) {
      q.mutable_values() = Tensor::Zeros(slices.values().shape());
    }
    QuantizeDequantizeInt8Rows(slices.values().floats(),
                               q.mutable_values().mutable_floats(), slices.nnz_rows(),
                               slices.row_elements());
    return;
  }
  const Tensor& dense = incoming.dense();
  if (out.is_sparse() || out.dense().shape() != dense.shape() ||
      !out.dense().UniquelyOwned()) {
    out = GradValue::MakeDense(Tensor::Zeros(dense.shape()));
  }
  const int64_t rows = dense.shape().rank() >= 1 ? dense.shape().dim(0) : 1;
  const int64_t width = dense.num_elements() / std::max<int64_t>(rows, 1);
  QuantizeDequantizeInt8Rows(dense.floats(), out.mutable_dense().mutable_floats(),
                             rows, width);
}

void Int8PsEngine::ApplyStep(const std::vector<StepResult>& per_rank,
                             float learning_rate) {
  if (config_.identity) {
    engine_.ApplyStep(per_rank, learning_rate);
    return;
  }
  quantized_.resize(per_rank.size());
  for (size_t r = 0; r < per_rank.size(); ++r) {
    quantized_[r].loss = per_rank[r].loss;
    for (size_t v = 0; v < managed_.size(); ++v) {
      const int key = static_cast<int>(v);
      auto it = per_rank[r].grads.find(key);
      if (!managed_[v] || it == per_rank[r].grads.end()) {
        quantized_[r].grads.erase(key);
        continue;
      }
      QuantizeGrad(it->second, quantized_[r].grads[key]);
    }
  }
  engine_.ApplyStep(quantized_, learning_rate);
}

}  // namespace parallax
