#include "src/sync/compression.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace parallax {

void TopKSelectRows(std::span<const int64_t> rows, std::span<const float> scores,
                    int64_t k, std::vector<int64_t>& selected,
                    SparseWorkspace* workspace) {
  PX_CHECK_EQ(rows.size(), scores.size());
  selected.clear();
  const int64_t n = static_cast<int64_t>(rows.size());
  if (k <= 0 || n == 0) {
    return;
  }
  if (k >= n) {
    selected.assign(rows.begin(), rows.end());
    std::sort(selected.begin(), selected.end());
    return;
  }
  SparseWorkspace local;
  SparseWorkspace& ws = workspace != nullptr ? *workspace : local;
  // Candidate permutation in borrowed scratch: partition the positions around the k-th
  // candidate under the total order (score desc, row asc). The order is strict across
  // distinct candidates, so the selected set — and with it the ascending output — is
  // unique no matter how nth_element arranges equal-ranked duplicates.
  std::vector<int64_t>& pos = ws.sort_keys(n);
  for (int64_t i = 0; i < n; ++i) {
    pos[static_cast<size_t>(i)] = i;
  }
  auto better = [&](int64_t a, int64_t b) {
    const float sa = scores[static_cast<size_t>(a)];
    const float sb = scores[static_cast<size_t>(b)];
    if (sa != sb) {
      return sa > sb;
    }
    return rows[static_cast<size_t>(a)] < rows[static_cast<size_t>(b)];
  };
  std::nth_element(pos.begin(), pos.begin() + static_cast<size_t>(k - 1),
                   pos.begin() + static_cast<size_t>(n), better);
  selected.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    selected.push_back(rows[static_cast<size_t>(pos[static_cast<size_t>(i)])]);
  }
  std::sort(selected.begin(), selected.end());
}

void QuantizeDequantizeInt8Rows(std::span<const float> src, std::span<float> dst,
                                int64_t rows, int64_t row_width,
                                std::vector<float>* scales) {
  PX_CHECK_EQ(static_cast<int64_t>(src.size()), rows * row_width);
  PX_CHECK_EQ(src.size(), dst.size());
  if (scales != nullptr) {
    scales->resize(static_cast<size_t>(rows));
  }
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = src.data() + r * row_width;
    float* out = dst.data() + r * row_width;
    float maxabs = 0.0f;
    for (int64_t j = 0; j < row_width; ++j) {
      maxabs = std::max(maxabs, std::abs(in[j]));
    }
    const float scale = maxabs / 127.0f;
    if (scales != nullptr) {
      (*scales)[static_cast<size_t>(r)] = scale;
    }
    if (scale == 0.0f) {
      std::fill(out, out + row_width, 0.0f);
      continue;
    }
    for (int64_t j = 0; j < row_width; ++j) {
      const float q = std::clamp(std::nearbyintf(in[j] / scale), -127.0f, 127.0f);
      out[j] = q * scale;
    }
  }
}

}  // namespace parallax
