// Gradient compression kernels (docs/compression.md): the top-k row selection behind
// the "topk_ps" engine and the per-row int8 quantize-dequantize behind "int8_ps".
//
// Both kernels are deterministic and allocation-free once their scratch is warm — the
// selection borrows a SparseWorkspace buffer for its candidate permutation, the
// quantizer is a pure two-pass scan. The engines in this directory compose them with
// the PS numeric runtime; the property tests in tests/compression_kernel_test.cc pin
// their semantics against naive references.
#ifndef PARALLAX_SRC_SYNC_COMPRESSION_H_
#define PARALLAX_SRC_SYNC_COMPRESSION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/sparse_workspace.h"

namespace parallax {

// Selects the k highest-scoring rows out of `rows`/`scores` (parallel arrays) into
// `selected`, ascending by row id. Ordering is (score descending, row id ascending) —
// the deterministic tie-break that makes selection reproducible across runs and
// duplicate-magnitude inputs. k <= 0 selects nothing; k >= rows.size() selects every
// row. Duplicate row ids are legal (each candidate competes independently; equal
// (score, row) candidates are interchangeable, so the selected row multiset is still
// deterministic). `workspace` backs the candidate permutation; nullptr allocates
// locally.
void TopKSelectRows(std::span<const int64_t> rows, std::span<const float> scores,
                    int64_t k, std::vector<int64_t>& selected,
                    SparseWorkspace* workspace = nullptr);

// Per-row symmetric int8 quantize-dequantize over a [rows, row_width] value block:
// scale_r = maxabs(row r) / 127, v' = clamp(round(v / scale_r), -127, 127) * scale_r.
// An all-zero row gets scale 0 and stays zero. `dst` may alias `src` (in-place).
// Round-trip error per element is bounded by scale_r / 2, the row maximum survives
// exactly up to float rounding, and identical inputs produce identical outputs. When
// `scales` is non-null it is resized to `rows` and filled
// with the per-row scales — the vector that rides the simulated wire alongside the
// int8 payload.
void QuantizeDequantizeInt8Rows(std::span<const float> src, std::span<float> dst,
                                int64_t rows, int64_t row_width,
                                std::vector<float>* scales = nullptr);

}  // namespace parallax

#endif  // PARALLAX_SRC_SYNC_COMPRESSION_H_
