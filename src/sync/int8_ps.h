// "int8_ps": synchronous parameter-server training with per-row int8 gradient
// quantization (docs/compression.md).
//
// Same wrapper shape as "topk_ps": Prepare translates the SyncPlan into the inner
// PS numeric runtime's config, and ApplyStep hands it quantize-dequantized per-rank
// gradients — every managed gradient row (sparse slice rows AND dense rows) is
// symmetrically quantized to int8 against its own max-abs scale and immediately
// dequantized, so the values the accumulators sum are exactly the values an int8 wire
// format would reconstruct. The timing plane prices 1 byte per element plus a 4-byte
// scale per row (CostCompression -> kInt8). Gradient support is untouched: the
// observer sees the same nnz as uncompressed PS, and identity mode (a pass-through
// quantizer) is bit-identical to "ps" — the equivalence suite asserts it.
#ifndef PARALLAX_SRC_SYNC_INT8_PS_H_
#define PARALLAX_SRC_SYNC_INT8_PS_H_

#include <vector>

#include "src/ps/ps_numeric.h"

namespace parallax {

struct Int8PsConfig {
  // Identity quantizer: skip the transform entirely and delegate to the inner engine
  // on the original results (exact "ps" pass-through; the equivalence-suite control).
  bool identity = false;
};

// Registers an Int8PsEngine factory with `config` under `name` in the global registry.
// Same Status contract as SyncEngineRegistry::Register.
Status RegisterInt8PsEngine(const std::string& name, Int8PsConfig config);

class Int8PsEngine : public SyncEngine {
 public:
  Int8PsEngine(const Graph* graph, Int8PsConfig config);

  // SyncEngine:
  void Prepare(const SyncPlan& plan) override;
  void ApplyStep(const std::vector<StepResult>& per_rank, float learning_rate) override;
  VariableStore View() const override { return engine_.CurrentValues(); }
  SyncMethod CostMethod(GradKind) const override { return SyncMethod::kPs; }
  CompressionSpec CostCompression(GradKind kind) const override;
  void LoadValues(const VariableStore& values) override { engine_.LoadValues(values); }
  void set_observer(SparseAccessObserver* observer) override {
    SyncEngine::set_observer(observer);
    engine_.set_observer(observer);
  }

  const Int8PsConfig& config() const { return config_; }

 private:
  void QuantizeGrad(const GradValue& incoming, GradValue& out);

  Int8PsConfig config_;
  PsNumericEngine engine_;
  const Graph* graph_;
  std::vector<uint8_t> managed_;  // parallel to Graph::variables()
  // Engine-owned quantized per-rank results — the incoming StepResults are shared
  // with every other engine and must never be mutated.
  std::vector<StepResult> quantized_;
};

}  // namespace parallax

#endif  // PARALLAX_SRC_SYNC_INT8_PS_H_
